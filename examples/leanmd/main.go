// LeanMD example: a small molecular dynamics run on both executors.
//
// The virtual-time run charges Itanium-calibrated costs for a paper-scale
// system (216 cells, 3,024 cell-pair objects) and reports per-step times
// under a 16ms wide-area latency; the real-time run simulates genuine
// Lennard-Jones + Coulomb physics on this machine and reports energy
// conservation.
//
// Run:  go run ./examples/leanmd
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func main() {
	// Part 1: paper-scale timing on the virtual-time engine.
	fmt.Println("LeanMD on the virtual-time engine (paper-scale costs, 32 PEs, 16ms WAN)")
	p := leanmd.DefaultParams()
	p.AtomsPerCell = 8 // numerics scale; cost model charges 200 model atoms
	p.Model = leanmd.DefaultModel()
	prog, g, err := leanmd.BuildProgram(p)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(32, 16*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	res := v.(*leanmd.Result)
	fmt.Printf("  %d cells, %d cell-pair objects (%d per PE)\n",
		g.NumCells, g.NumPairs(), (g.NumCells+g.NumPairs())/32)
	fmt.Printf("  per-step: %v  — a 16ms WAN is invisible next to the step time,\n", res.PerStep.Round(time.Millisecond))
	fmt.Println("  because pairs with local coordinates execute while remote ones wait.")

	// Part 2: real physics on the real-time runtime.
	fmt.Println()
	fmt.Println("LeanMD on the real-time runtime (genuine physics, 4 PEs, 5ms WAN)")
	q := leanmd.DefaultParams()
	q.NX, q.NY, q.NZ = 3, 3, 3
	q.AtomsPerCell = 16
	q.Steps, q.Warmup = 30, 5
	prog2, g2, err := leanmd.BuildProgram(q)
	if err != nil {
		log.Fatal(err)
	}
	topo2, err := topology.TwoClusters(4, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.NewRuntime(topo2, prog2)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	res2 := v2.(*leanmd.Result)
	fmt.Printf("  %d atoms in %d cells / %d pairs, %d steps\n",
		g2.NumCells*q.AtomsPerCell, g2.NumCells, g2.NumPairs(), q.Steps)
	fmt.Printf("  total energy: %.6f -> %.6f  (drift %.4f%%)\n", res2.EWarm, res2.EFinal, 100*res2.Drift())
	fmt.Printf("  wall per-step: %v\n", res2.PerStep.Round(time.Microsecond))
}
