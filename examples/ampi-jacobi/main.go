// AMPI Jacobi: an unmodified MPI-style program gaining latency tolerance
// from the runtime — the paper's Adaptive MPI story.
//
// The program is a textbook 1-D Jacobi relaxation written against the
// blocking MPI-ish API (Sendrecv, Allreduce, Barrier). It is run twice on
// the virtual-time engine with a 10ms WAN between the two clusters:
//
//   - 4 ranks on 4 PEs (classic MPI: one process per processor), and
//   - 32 ranks on the same 4 PEs ("processor virtualization": each PE
//     hosts 8 rank threads).
//
// The code is identical; only the rank count changes. With many ranks per
// PE, a rank blocked in Sendrecv on a wide-area ghost exchange leaves the
// PE to its co-resident ranks, and the virtual-time per-step cost drops.
//
// A third run demonstrates AtSync rank migration: the same relaxation with
// a deliberately imbalanced workload (a quarter of the ranks model dense
// regions costing 4x the compute), written as a restartable loop over
// explicit PUP-able state. At the sync point the grid-aware balancer
// migrates rank threads off the overloaded PE, and the per-step cost
// drops without any change to the communication code.
//
// Run:  go run ./examples/ampi-jacobi
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/ampi"
	"gridmdo/internal/balance"
	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

const (
	cellsTotal = 8192
	steps      = 30
	workPerMsg = 500 * time.Microsecond // modeled compute per rank per step
)

func jacobi(c *ampi.Comm) {
	per := cellsTotal / c.Size()
	cur := make([]float64, per+2)
	next := make([]float64, per+2)
	for i := 0; i < per; i++ {
		cur[i+1] = stencil.Init(c.Rank()*per+i, 0)
	}
	for s := 0; s < steps; s++ {
		if c.Rank() > 0 {
			v, _ := c.Sendrecv(c.Rank()-1, s, cur[1], c.Rank()-1, s)
			cur[0] = v.(float64)
		}
		if c.Rank() < c.Size()-1 {
			v, _ := c.Sendrecv(c.Rank()+1, s, cur[per], c.Rank()+1, s)
			cur[per+1] = v.(float64)
		}
		for i := 1; i <= per; i++ {
			g := c.Rank()*per + i - 1
			if g == 0 || g == cellsTotal-1 {
				next[i] = cur[i]
				continue
			}
			next[i] = 0.5 * (cur[i-1] + cur[i+1])
		}
		cur, next = next, cur
		c.Charge(workPerMsg) // modeled per-step compute on the virtual machine
	}
	// A final residual-ish reduction, as real MPI codes do.
	var local float64
	for i := 1; i <= per; i++ {
		local += cur[i]
	}
	sum := c.Allreduce(local, core.OpSum)
	if c.Rank() == 0 {
		fmt.Printf("    field sum after %d steps: %.6f\n", steps, sum.(float64))
	}
}

func run(ranks int) time.Duration {
	prog, err := ampi.BuildProgram(ranks, jacobi)
	if err != nil {
		log.Fatal(err)
	}
	return simulate(prog)
}

func simulate(prog *core.Program) time.Duration {
	topo, err := topology.TwoClusters(4, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_, final, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return final
}

// migState is a migratable rank's explicit state: everything Run needs to
// resume from scratch on another PE. Progress is recorded here *before*
// AtSync, so a migrated rank's re-entered Run never repeats a step.
type migState struct {
	Step    int
	StartPE int
	Cur     []float64
}

func (s *migState) PUP(p *core.PUP) {
	p.Int(&s.Step)
	p.Int(&s.StartPE)
	p.Float64s(&s.Cur)
}

// migratableJacobi is the same relaxation written against the migratable
// API, with a quarter of the ranks charging 4x compute per step to model
// dense regions. syncEvery == 0 disables the load-balancing barrier.
func migratableJacobi(syncEvery int) ampi.MigratableMain {
	return ampi.MigratableMain{
		NewState: func(rank, size int) core.PUPable {
			per := cellsTotal / size
			st := &migState{StartPE: -1, Cur: make([]float64, per)}
			for i := range st.Cur {
				st.Cur[i] = stencil.Init(rank*per+i, 0)
			}
			return st
		},
		Run: func(c *ampi.Comm, stAny core.PUPable) {
			st := stAny.(*migState)
			if st.StartPE < 0 {
				st.StartPE = c.PE()
			}
			r, per := c.Rank(), cellsTotal/c.Size()
			// Compute-dominated regime: dense ranks cost 8ms per step, so
			// the PE hosting all of them is the bottleneck, not the WAN.
			const baseWork = 2 * time.Millisecond
			heavy := r < c.Size()/4
			for st.Step < steps {
				s := st.Step
				cur := make([]float64, per+2)
				copy(cur[1:], st.Cur)
				if r > 0 {
					v, _ := c.Sendrecv(r-1, s, cur[1], r-1, s)
					cur[0] = v.(float64)
				}
				if r < c.Size()-1 {
					v, _ := c.Sendrecv(r+1, s, cur[per], r+1, s)
					cur[per+1] = v.(float64)
				}
				next := make([]float64, per)
				for i := 1; i <= per; i++ {
					g := r*per + i - 1
					if g == 0 || g == cellsTotal-1 {
						next[i-1] = cur[i]
						continue
					}
					next[i-1] = 0.5 * (cur[i-1] + cur[i+1])
				}
				st.Cur = next
				work := baseWork
				if heavy {
					work *= 4
				}
				c.Charge(work)
				st.Step++
				if syncEvery > 0 && st.Step%syncEvery == 0 && st.Step < steps {
					c.AtSync()
				}
			}
			moved := 0
			if c.PE() != st.StartPE {
				moved = 1
			}
			counts := c.Allgather(moved)
			if c.Rank() == 0 {
				total := 0
				for _, v := range counts {
					total += v.(int)
				}
				fmt.Printf("    ranks that finished on a different PE than they started: %d of %d\n",
					total, c.Size())
			}
		},
	}
}

func runMigratable(lb core.Strategy, syncEvery int) time.Duration {
	var opts []ampi.Option
	if lb != nil {
		opts = append(opts, ampi.WithLB(lb))
	}
	prog, err := ampi.BuildMigratableProgram(32, migratableJacobi(syncEvery), opts...)
	if err != nil {
		log.Fatal(err)
	}
	return simulate(prog)
}

func main() {
	fmt.Println("AMPI 1-D Jacobi over a 10ms WAN (4 PEs, two clusters) — same code, two rank counts")
	fmt.Println()
	fmt.Println("  4 ranks on 4 PEs (no virtualization):")
	t4 := run(4)
	fmt.Printf("    virtual time: %v\n\n", t4.Round(time.Millisecond))
	fmt.Println("  32 ranks on 4 PEs (8 virtual processors per PE):")
	t32 := run(32)
	fmt.Printf("    virtual time: %v\n\n", t32.Round(time.Millisecond))
	fmt.Printf("Speedup from virtualization alone: %.2fx — the runtime overlapped the\n",
		float64(t4)/float64(t32))
	fmt.Println("wide-area ghost exchanges with other ranks' compute. No MPI-level")
	fmt.Println("code changed between the two runs.")

	fmt.Println()
	fmt.Println("AtSync rank migration: same Jacobi, but a quarter of the ranks cost 4x")
	fmt.Println("per step, all of them starting on one PE.")
	fmt.Println()
	fmt.Println("  imbalanced, no load balancing:")
	tImb := runMigratable(nil, 0)
	fmt.Printf("    virtual time: %v\n\n", tImb.Round(time.Millisecond))
	fmt.Println("  imbalanced, grid-aware balancer at step 10:")
	tLB := runMigratable(balance.Grid{}, 10)
	fmt.Printf("    virtual time: %v\n\n", tLB.Round(time.Millisecond))
	fmt.Printf("Speedup from migration: %.2fx — rank threads (state + unexpected-message\n",
		float64(tImb)/float64(tLB))
	fmt.Println("queue) moved off the hot PE through the same PUP path chare arrays use.")
}
