// AMPI Jacobi: an unmodified MPI-style program gaining latency tolerance
// from the runtime — the paper's Adaptive MPI story.
//
// The program is a textbook 1-D Jacobi relaxation written against the
// blocking MPI-ish API (Sendrecv, Allreduce, Barrier). It is run twice on
// the virtual-time engine with a 10ms WAN between the two clusters:
//
//   - 4 ranks on 4 PEs (classic MPI: one process per processor), and
//   - 32 ranks on the same 4 PEs ("processor virtualization": each PE
//     hosts 8 rank threads).
//
// The code is identical; only the rank count changes. With many ranks per
// PE, a rank blocked in Sendrecv on a wide-area ghost exchange leaves the
// PE to its co-resident ranks, and the virtual-time per-step cost drops.
//
// Run:  go run ./examples/ampi-jacobi
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/ampi"
	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

const (
	cellsTotal = 8192
	steps      = 30
	workPerMsg = 500 * time.Microsecond // modeled compute per rank per step
)

func jacobi(c *ampi.Comm) {
	per := cellsTotal / c.Size()
	cur := make([]float64, per+2)
	next := make([]float64, per+2)
	for i := 0; i < per; i++ {
		cur[i+1] = stencil.Init(c.Rank()*per+i, 0)
	}
	for s := 0; s < steps; s++ {
		if c.Rank() > 0 {
			v, _ := c.Sendrecv(c.Rank()-1, s, cur[1], c.Rank()-1, s)
			cur[0] = v.(float64)
		}
		if c.Rank() < c.Size()-1 {
			v, _ := c.Sendrecv(c.Rank()+1, s, cur[per], c.Rank()+1, s)
			cur[per+1] = v.(float64)
		}
		for i := 1; i <= per; i++ {
			g := c.Rank()*per + i - 1
			if g == 0 || g == cellsTotal-1 {
				next[i] = cur[i]
				continue
			}
			next[i] = 0.5 * (cur[i-1] + cur[i+1])
		}
		cur, next = next, cur
		c.Charge(workPerMsg) // modeled per-step compute on the virtual machine
	}
	// A final residual-ish reduction, as real MPI codes do.
	var local float64
	for i := 1; i <= per; i++ {
		local += cur[i]
	}
	sum := c.Allreduce(local, core.OpSum)
	if c.Rank() == 0 {
		fmt.Printf("    field sum after %d steps: %.6f\n", steps, sum.(float64))
	}
}

func run(ranks int) time.Duration {
	prog, err := ampi.BuildProgram(ranks, jacobi)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, final, err := e.Run(); err != nil {
		log.Fatal(err)
	} else {
		return final
	}
	return 0
}

func main() {
	fmt.Println("AMPI 1-D Jacobi over a 10ms WAN (4 PEs, two clusters) — same code, two rank counts")
	fmt.Println()
	fmt.Println("  4 ranks on 4 PEs (no virtualization):")
	t4 := run(4)
	fmt.Printf("    virtual time: %v\n\n", t4.Round(time.Millisecond))
	fmt.Println("  32 ranks on 4 PEs (8 virtual processors per PE):")
	t32 := run(32)
	fmt.Printf("    virtual time: %v\n\n", t32.Round(time.Millisecond))
	fmt.Printf("Speedup from virtualization alone: %.2fx — the runtime overlapped the\n",
		float64(t4)/float64(t32))
	fmt.Println("wide-area ghost exchanges with other ranks' compute. No MPI-level")
	fmt.Println("code changed between the two runs.")
}
