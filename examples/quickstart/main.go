// Quickstart: the smallest useful GridMDO program.
//
// It builds a two-cluster machine with a 25ms wide-area link, then runs
// two experiments on the real-time runtime:
//
//  1. A chare on cluster 0 asks a chare on cluster 1 a question and the
//     PE sits idle until the answer returns (one object per PE — no
//     latency tolerance possible).
//  2. The same exchange, but the asking PE also hosts a pipeline of
//     worker chares with local messages to chew through. The scheduler
//     interleaves them into the WAN wait, and the elapsed time barely
//     grows — the paper's point, in ~100 lines.
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

const (
	arrAsker     core.ArrayID = 0
	arrResponder core.ArrayID = 1
	arrWorker    core.ArrayID = 2
)

// asker lives on PE 0 and performs WAN round trips.
type asker struct {
	rounds    int
	remaining int
}

func (a *asker) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case 0: // kick
		a.remaining = a.rounds
		ctx.Send(core.ElemRef{Array: arrResponder, Index: 0}, 0, "ping")
	case 1: // reply from across the WAN
		a.remaining--
		if a.remaining == 0 {
			ctx.ExitWith(ctx.Time())
			return
		}
		ctx.Send(core.ElemRef{Array: arrResponder, Index: 0}, 0, "ping")
	}
}

// responder lives on PE 1 (the remote cluster).
type responder struct{}

func (responder) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	ctx.Send(core.ElemRef{Array: arrAsker, Index: 0}, 1, "pong")
}

// worker chares ping-pong a token among themselves on PE 0, doing real
// (if small) computation on each hop.
type worker struct {
	n      int
	bucket float64
}

func (w *worker) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	hops := data.(int)
	// Some genuine local work.
	for i := 0; i < 200_000; i++ {
		w.bucket += float64(i%7) * 1e-9
	}
	if hops <= 0 {
		return
	}
	ctx.Send(core.ElemRef{Array: arrWorker, Index: (ctx.Elem().Index + 1) % w.n}, 0, hops-1)
}

func run(withAsker, withWorkers bool) time.Duration {
	const wan = 25 * time.Millisecond
	topo, err := topology.TwoClusters(2, wan)
	if err != nil {
		log.Fatal(err)
	}
	const nWorkers = 4
	prog := &core.Program{
		Arrays: []core.ArraySpec{
			{ID: arrAsker, N: 1, Map: func(int, int) int { return 0 },
				New: func(int) core.Chare { return &asker{rounds: 4} }},
			{ID: arrResponder, N: 1, Map: func(int, int) int { return 1 },
				New: func(int) core.Chare { return responder{} }},
			{ID: arrWorker, N: nWorkers, Map: func(int, int) int { return 0 },
				New: func(int) core.Chare { return &worker{n: nWorkers} }},
		},
		Start: func(ctx *core.Ctx) {
			if withAsker {
				ctx.Send(core.ElemRef{Array: arrAsker, Index: 0}, 0, nil)
			}
			if withWorkers {
				// 400 hops of local work share PE 0 with the asker.
				ctx.Send(core.ElemRef{Array: arrWorker, Index: 0}, 0, 400)
			}
		},
	}
	var opts []core.Option
	if !withAsker {
		opts = append(opts, core.WithQuiescence())
	}
	rt, err := core.NewRuntime(topo, prog, opts...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func main() {
	fmt.Println("GridMDO quickstart: masking a 25ms WAN with message-driven objects")
	fmt.Println()

	idle := run(true, false)
	fmt.Printf("A: 4 WAN round trips, PE otherwise idle:  %v\n", idle.Round(time.Millisecond))

	work := run(false, true)
	fmt.Printf("B: 400 local work messages, no WAN:       %v\n", work.Round(time.Millisecond))

	busy := run(true, true)
	fmt.Printf("C: both together on the same PE:          %v\n", busy.Round(time.Millisecond))

	saved := idle + work - busy
	fmt.Println()
	fmt.Printf("C is %v less than A+B: while WAN replies were in flight, the\n", saved.Round(time.Millisecond))
	fmt.Println("scheduler kept the PE busy executing local worker chares. That")
	fmt.Println("overlap — obtained with no application-level changes — is the")
	fmt.Println("technique the paper evaluates. (On a multi-core machine the")
	fmt.Println("overlap is even closer to perfect; see internal/sim for the")
	fmt.Println("noise-free virtual-time version of this experiment.)")
}
