// Stencil2D: the paper's five-point stencil experiment in miniature.
//
// Sweeps the inter-cluster latency for several virtualization degrees on
// the virtual-time executor and prints a small version of Figure 3's
// 8-processor panel: higher degrees of virtualization keep the per-step
// time flat deeper into the latency sweep.
//
// Run:  go run ./examples/stencil2d
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

func perStep(procs, vx int, lat time.Duration) time.Duration {
	p := &stencil.Params{
		Width: 1024, Height: 1024,
		VX: vx, VY: vx,
		Steps: 16, Warmup: 6,
		Model: stencil.DefaultModel(),
	}
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(procs, lat)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return v.(*stencil.Result).PerStep
}

func main() {
	const procs = 8
	degrees := []int{4, 8, 16} // 16, 64, 256 objects
	lats := []time.Duration{0, 1e6, 2e6, 4e6, 8e6, 16e6, 32e6}

	fmt.Printf("1024x1024 five-point stencil on %d processors (two clusters of %d)\n", procs, procs/2)
	fmt.Printf("per-step time (ms) vs one-way inter-cluster latency\n\n")
	fmt.Printf("%10s", "latency")
	for _, d := range degrees {
		fmt.Printf(" %12d obj", d*d)
	}
	fmt.Println()
	for _, lat := range lats {
		fmt.Printf("%10s", lat)
		for _, d := range degrees {
			fmt.Printf(" %14.3fms", float64(perStep(procs, d, lat))/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nNote the flat region extending (and the knee softening) as the")
	fmt.Println("object count grows: more objects per PE give the scheduler more")
	fmt.Println("local work to overlap with wide-area ghost exchanges.")
}
