// Taskfarm: the paper's "master-slave" application class.
//
// A master on cluster 0 farms independent 50ms tasks to workers spread
// across both clusters of an 8-PE machine. With enough tasks prefetched
// per worker, even a 64ms wide-area link barely moves the makespan —
// quantifying the paper's §1 observation that master-slave applications
// "typically have small communication requirements and ... communication
// delays are often not on the critical path."
//
// Run:  go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/sim"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
)

func makespan(lat time.Duration, prefetch int) time.Duration {
	prog, err := taskfarm.BuildProgramFor(&taskfarm.Params{
		Tasks: 200, Prefetch: prefetch, TaskCost: 50 * time.Millisecond, TaskBytes: 2048,
		Workers: 7, DedicatedMaster: true, // PE 0 serves the master only
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(8, lat)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return v.(*taskfarm.Result).Makespan
}

func main() {
	fmt.Println("Task farm: 200 × 50ms tasks, 8 workers across two clusters")
	fmt.Println()
	fmt.Printf("%10s %16s %16s\n", "latency", "prefetch=1", "prefetch=4")
	for _, lat := range []time.Duration{0, 4e6, 16e6, 64e6, 256e6} {
		fmt.Printf("%10s %16s %16s\n", lat,
			makespan(lat, 1).Round(time.Millisecond),
			makespan(lat, 4).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("With one task in flight, remote workers idle a round trip between")
	fmt.Println("tasks; with four prefetched, dispatch rides inside compute and the")
	fmt.Println("farm shrugs off the wide area — no runtime tricks required, which")
	fmt.Println("is why the paper's problem statement focuses on the tightly-coupled")
	fmt.Println("classes instead.")
}
