// Taskfarm: the paper's "master-slave" application class.
//
// Part 1: a master on cluster 0 farms independent 50ms tasks to workers
// spread across both clusters of an 8-PE machine. With enough tasks
// prefetched per worker, even a 64ms wide-area link barely moves the
// makespan — quantifying the paper's §1 observation that master-slave
// applications "typically have small communication requirements and ...
// communication delays are often not on the critical path."
//
// Part 2: latency masking is not the only ceiling. A single dispatcher
// that spends AT per assignment saturates at JT/AT workers (the WRONJ
// knee) no matter how deep the prefetch; past it, added workers buy
// nothing. Sharding the master into a chare array of dispatchers — each
// owning a slice of the task space, granting in batches, stealing from
// random victims when its slice drains — restores near-linear scaling
// over the identical task set (the order-independent checksum proves
// every task ran exactly once either way). See DESIGN.md §9.
//
// Run:  go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"
	"time"

	"gridmdo/internal/sim"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
)

func makespan(lat time.Duration, prefetch int) time.Duration {
	prog, err := taskfarm.BuildProgramFor(&taskfarm.Params{
		Tasks: 200, Prefetch: prefetch, TaskCost: 50 * time.Millisecond, TaskBytes: 2048,
		Workers: 7, DedicatedMaster: true, // PE 0 serves the master only
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(8, lat)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return v.(*taskfarm.Result).Makespan
}

// farmAtScale runs tasks×10ms work on W workers (one per PE, split across
// two clusters) under either one dispatcher or `shards` dispatcher shards
// with batched grants and randomized stealing.
func farmAtScale(workers, shards int, steal bool) *taskfarm.Result {
	p := &taskfarm.Params{
		Tasks: 20000, Prefetch: 2, Workers: workers,
		TaskCost: 10 * time.Millisecond, AssignCost: 200 * time.Microsecond,
		CostSkew: 4, Seed: 1,
	}
	if shards > 1 {
		p.Shards = shards
		p.Batch = 16
		p.Steal = steal
	}
	prog, err := taskfarm.BuildProgram(p)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.TwoClusters(workers, 4*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 50_000_000})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return v.(*taskfarm.Result)
}

func main() {
	fmt.Println("Task farm: 200 × 50ms tasks, 8 workers across two clusters")
	fmt.Println()
	fmt.Printf("%10s %16s %16s\n", "latency", "prefetch=1", "prefetch=4")
	for _, lat := range []time.Duration{0, 4e6, 16e6, 64e6, 256e6} {
		fmt.Printf("%10s %16s %16s\n", lat,
			makespan(lat, 1).Round(time.Millisecond),
			makespan(lat, 4).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("With one task in flight, remote workers idle a round trip between")
	fmt.Println("tasks; with four prefetched, dispatch rides inside compute and the")
	fmt.Println("farm shrugs off the wide area — no runtime tricks required, which")
	fmt.Println("is why the paper's problem statement focuses on the tightly-coupled")
	fmt.Println("classes instead.")

	fmt.Println()
	fmt.Println("Past the knee: 20000 × 10ms tasks, 200µs per assignment (knee at 50")
	fmt.Println("workers), 4x cost skew across the task space")
	fmt.Println()
	fmt.Printf("%8s %8s %14s %12s %8s %8s\n",
		"workers", "config", "makespan", "tasks/s", "steals", "stolen")
	var check uint64
	for _, w := range []int{26, 50, 100, 200} {
		single := farmAtScale(w, 1, false)
		sharded := farmAtScale(w, 4, true)
		check = single.Checksum
		if sharded.Checksum != single.Checksum {
			log.Fatalf("checksum diverged: %#x vs %#x", sharded.Checksum, single.Checksum)
		}
		for _, r := range []struct {
			name string
			res  *taskfarm.Result
		}{{"single", single}, {"4-shard", sharded}} {
			fmt.Printf("%8d %8s %14s %12.0f %8d %8d\n",
				w, r.name, r.res.Makespan.Round(time.Millisecond),
				20000/r.res.Makespan.Seconds(), r.res.Steals, r.res.StolenTask)
		}
	}
	fmt.Println()
	fmt.Printf("Below the knee both are compute-bound (stealing already smooths the\n"+
		"skew a little); past it the single master's assignment loop is the\n"+
		"bottleneck and its curve flattens, while the sharded farm keeps\n"+
		"scaling — 1.6x the throughput at 200 workers. Checksum %#x\n"+
		"is bit-identical in all eight runs: stealing moved tasks, never\n"+
		"duplicated or dropped one.\n", check)
}
