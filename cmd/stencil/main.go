// Command stencil runs the five-point stencil application standalone on
// either executor.
//
//	stencil -procs 8 -objects 64 -latency 4ms                 # virtual time
//	stencil -executor realtime -procs 4 -objects 16 -steps 20 # wall clock
//	stencil -executor tcp -procs 4 -objects 64                # two TCP nodes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gridmdo/internal/bench"
	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/trace"
)

func main() {
	var (
		executor = flag.String("executor", "sim", "sim|realtime|tcp")
		procs    = flag.Int("procs", 8, "processors, split evenly over two clusters (1 = single cluster)")
		objects  = flag.Int("objects", 64, "virtualization degree (perfect square)")
		width    = flag.Int("width", 2048, "mesh width")
		height   = flag.Int("height", 2048, "mesh height")
		steps    = flag.Int("steps", 12, "time steps")
		warmup   = flag.Int("warmup", 4, "warmup steps excluded from per-step timing")
		latency  = flag.Duration("latency", 4*time.Millisecond, "one-way inter-cluster latency")
		prio     = flag.Bool("prioritize-wan", false, "deliver cross-cluster messages first (sim only)")
		bundle   = flag.Bool("bundle", false, "bundle per-handler same-destination messages (sim only)")
		timeline = flag.Bool("timeline", false, "print a per-PE utilization timeline (sim only)")
		traceOut = flag.String("trace-out", "", "write a trace snapshot (for gridtrace) to this file")
	)
	flag.Parse()

	cfg := bench.StencilConfig{
		Width: *width, Height: *height,
		Steps: *steps, Warmup: *warmup,
		Model: stencil.DefaultModel(),
	}
	var (
		res *stencil.Result
		err error
		tr  *trace.Tracer
	)
	if *timeline || *traceOut != "" {
		tr = trace.New(*procs)
	}
	var rtOpts []core.Option
	if tr != nil {
		rtOpts = append(rtOpts, core.WithTrace(tr))
	}
	start := time.Now()
	switch *executor {
	case "sim":
		res, err = bench.StencilSim(cfg, *procs, *objects, *latency, sim.Options{PrioritizeWAN: *prio, Bundle: *bundle, Trace: tr})
	case "realtime":
		res, err = bench.StencilRealtime(cfg, *procs, *objects, *latency, rtOpts...)
	case "tcp":
		res, err = bench.StencilTCP(cfg, *procs, *objects, *latency, rtOpts...)
	default:
		err = fmt.Errorf("unknown executor %q", *executor)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stencil: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("stencil %dx%d  procs=%d objects=%d latency=%v executor=%s\n",
		*width, *height, *procs, *objects, *latency, *executor)
	fmt.Printf("  per-step: %v   total: %v (%d steps, %d warmup)\n",
		res.PerStep, res.Total, res.Steps, res.Warmup)
	fmt.Printf("  checksum: %.6f\n", res.Checksum)
	if *timeline && tr != nil {
		fmt.Println()
		tr.RenderTimeline(os.Stdout, res.FinishAt, 100)
	}
	if *traceOut != "" {
		horizon := res.FinishAt
		if *executor != "sim" {
			horizon = time.Since(start)
		}
		if err := writeTrace(*traceOut, tr, *procs, horizon); err != nil {
			fmt.Fprintf(os.Stderr, "stencil: trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace snapshots the whole run (every PE; the TCP executor's two
// runtimes share the tracer) for cmd/gridtrace.
func writeTrace(path string, tr *trace.Tracer, procs int, horizon time.Duration) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Snapshot(0, 0, procs, horizon).Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
