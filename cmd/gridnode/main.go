// Command gridnode hosts one node (one OS process, a contiguous range of
// PEs) of a multi-process GridMDO run over TCP — the paper's co-allocated
// deployment, with each gridnode process standing in for one cluster's
// allocation. Node 0 is the coordinator: it starts the program, reports
// the result, and announces shutdown to the workers.
//
// Processes may start in any order (connections retry with backoff for
// ~15 seconds). For example:
//
//	gridnode -node 1 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4 &
//	gridnode -node 0 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4
//
// Every process must be given identical application flags; the node count
// is the number of comma-separated addresses, and PEs are split evenly
// across nodes (procs must be divisible by the node count). With two
// nodes, the node boundary coincides with the cluster boundary, so all
// node-to-node TCP traffic is the "wide area" path and carries the
// configured injected latency.
//
// Observability: -metrics serves the runtime's registry over HTTP
// (Prometheus text at /metrics, JSON with ?format=json), and
// -metrics-out writes a JSON snapshot of the same registry when the run
// completes. Both cover the core scheduler series (per-PE) and the VMI
// device series (per-device).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// config carries the parsed command line into run.
type config struct {
	node                  int
	addrList, app         string
	procs                 int
	latency               time.Duration
	objects, width        int
	cells, atoms          int
	steps, warmup         int
	reliable              bool
	metricsAddr, snapshot string
	traceOut              string
	traceCap              int

	// onMetrics, when non-nil, receives the bound metrics address once the
	// endpoint is listening (tests scrape it during a live run).
	onMetrics func(addr string)
}

func main() {
	var cfg config
	flag.IntVar(&cfg.node, "node", 0, "this process's node index")
	flag.StringVar(&cfg.addrList, "addrs", "", "comma-separated listen addresses, one per node")
	flag.StringVar(&cfg.app, "app", "stencil", "stencil|leanmd")
	flag.IntVar(&cfg.procs, "procs", 4, "total PEs across all nodes")
	flag.DurationVar(&cfg.latency, "latency", 1725*time.Microsecond, "one-way inter-cluster latency")
	flag.IntVar(&cfg.objects, "objects", 64, "stencil: virtualization degree (perfect square)")
	flag.IntVar(&cfg.width, "width", 1024, "stencil: mesh width and height")
	flag.IntVar(&cfg.cells, "cells", 4, "leanmd: cells per axis")
	flag.IntVar(&cfg.atoms, "atoms", 8, "leanmd: atoms per cell")
	flag.IntVar(&cfg.steps, "steps", 10, "time steps")
	flag.IntVar(&cfg.warmup, "warmup", 3, "warmup steps")
	flag.BoolVar(&cfg.reliable, "reliable", false, "interpose the end-to-end reliability layer over TCP")
	flag.StringVar(&cfg.metricsAddr, "metrics", "", "serve the metrics registry over HTTP on this address (e.g. 127.0.0.1:9300)")
	flag.StringVar(&cfg.snapshot, "metrics-out", "", "write a JSON metrics snapshot to this file when the run completes")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write this node's causal trace snapshot (for cmd/gridtrace) to this file")
	flag.IntVar(&cfg.traceCap, "trace-cap", trace.DefaultCapacity, "per-PE trace ring capacity (events; rounded up to a power of two)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		os.Exit(1)
	}
}

func buildProgram(cfg config) (*core.Program, error) {
	switch cfg.app {
	case "stencil":
		v := 1
		for v*v < cfg.objects {
			v++
		}
		if v*v != cfg.objects {
			return nil, fmt.Errorf("objects=%d is not a perfect square", cfg.objects)
		}
		return stencil.BuildProgram(&stencil.Params{
			Width: cfg.width, Height: cfg.width, VX: v, VY: v,
			Steps: cfg.steps, Warmup: cfg.warmup,
		})
	case "leanmd":
		p := leanmd.DefaultParams()
		p.NX, p.NY, p.NZ = cfg.cells, cfg.cells, cfg.cells
		p.AtomsPerCell = cfg.atoms
		p.Steps, p.Warmup = cfg.steps, cfg.warmup
		prog, _, err := leanmd.BuildProgram(p)
		return prog, err
	default:
		return nil, fmt.Errorf("unknown app %q", cfg.app)
	}
}

func run(cfg config) error {
	addrs := strings.Split(cfg.addrList, ",")
	nodes := len(addrs)
	if cfg.addrList == "" || nodes < 2 {
		return fmt.Errorf("need -addrs with at least two addresses")
	}
	if cfg.node < 0 || cfg.node >= nodes {
		return fmt.Errorf("node %d out of range for %d addresses", cfg.node, nodes)
	}
	if cfg.procs%nodes != 0 {
		return fmt.Errorf("procs=%d not divisible by %d nodes", cfg.procs, nodes)
	}
	perNode := cfg.procs / nodes

	topo, err := topology.TwoClusters(cfg.procs, cfg.latency)
	if err != nil {
		return err
	}
	prog, err := buildProgram(cfg)
	if err != nil {
		return err
	}

	addrMap := make(map[int]string, nodes)
	for i, a := range addrs {
		addrMap[i] = a
	}
	nodeOf := func(pe int) int { return pe / perNode }

	reg := metrics.NewRegistry()
	var rt *core.Runtime
	builder := vmi.NewChainBuilder(cfg.node, addrMap, func(pe int32) int { return nodeOf(int(pe)) }).
		Metrics(reg).
		OnControl(func(f *vmi.Frame) {
			if f.Dst == vmi.ControlShutdown && rt != nil {
				rt.Stop()
			}
		})
	if cfg.reliable {
		builder.Reliable(vmi.ReliableConfig{})
	}
	stack, err := builder.Build()
	if err != nil {
		return err
	}
	if _, err := stack.Listen(); err != nil {
		return err
	}
	defer stack.Close()

	art := &artifacts{
		metricsPath: cfg.snapshot, reg: reg,
		tracePath: cfg.traceOut,
		node:      cfg.node, peLo: cfg.node * perNode, peHi: (cfg.node + 1) * perNode,
		start: time.Now(),
	}
	rtOpts := []core.Option{
		core.WithCluster(core.ClusterConfig{
			Transport: stack,
			NodeOf:    nodeOf,
			Node:      cfg.node,
			PELo:      cfg.node * perNode,
			PEHi:      (cfg.node + 1) * perNode,
		}),
		core.WithMetrics(reg),
	}
	if cfg.traceOut != "" {
		ringCap := cfg.traceCap
		if ringCap <= 0 {
			ringCap = trace.DefaultCapacity
		}
		art.tr = trace.NewWithCapacity(cfg.procs, ringCap)
		rtOpts = append(rtOpts, core.WithTrace(art.tr))
	}
	rt, err = core.NewRuntime(topo, prog, rtOpts...)
	if err != nil {
		return err
	}
	// Trace timestamps are relative to the runtime epoch; record it so
	// gridtrace can re-base snapshots from separately started processes.
	art.start = rt.Epoch()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	watchSignals(sigCh, art, os.Exit)

	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Fprintf(os.Stderr, "gridnode %d: metrics on http://%s/metrics\n", cfg.node, ln.Addr())
		if cfg.onMetrics != nil {
			cfg.onMetrics(ln.Addr().String())
		}
	}

	fmt.Fprintf(os.Stderr, "gridnode %d/%d: hosting PEs [%d,%d) of %s on %s\n",
		cfg.node, nodes, cfg.node*perNode, (cfg.node+1)*perNode, topo, addrMap[cfg.node])

	v, err := rt.Run()
	if err != nil {
		return err
	}

	if cfg.node == 0 {
		switch res := v.(type) {
		case *stencil.Result:
			fmt.Printf("stencil: per-step %v, total %v, checksum %.6f\n", res.PerStep, res.Total, res.Checksum)
		case *leanmd.Result:
			fmt.Printf("leanmd: per-step %v, total %v, drift %.4f%%\n", res.PerStep, res.Total, 100*res.Drift())
		default:
			fmt.Printf("result: %v\n", v)
		}
		// Announce shutdown to the workers.
		for n := 1; n < nodes; n++ {
			if err := stack.SendControl(n, &vmi.Frame{Src: int32(cfg.node), Dst: vmi.ControlShutdown}); err != nil {
				fmt.Fprintf(os.Stderr, "gridnode: shutdown announce to node %d: %v\n", n, err)
			}
		}
		// Give the frames time to flush before closing connections.
		time.Sleep(100 * time.Millisecond)
	}

	return art.flush()
}

// artifacts is everything gridnode flushes at the end of a run — the
// metrics snapshot and the trace snapshot. flush is idempotent so the
// normal completion path and the signal handler can race safely.
type artifacts struct {
	once sync.Once
	err  error

	metricsPath string
	reg         *metrics.Registry

	tracePath        string
	tr               *trace.Tracer
	node, peLo, peHi int
	start            time.Time
}

// flush writes every configured artifact exactly once and remembers the
// first error for later calls.
func (a *artifacts) flush() error {
	a.once.Do(func() {
		if a.metricsPath != "" && a.reg != nil {
			if err := writeSnapshot(a.metricsPath, a.reg); err != nil && a.err == nil {
				a.err = fmt.Errorf("metrics snapshot: %w", err)
			}
		}
		if a.tracePath != "" && a.tr != nil {
			if err := a.writeTrace(); err != nil && a.err == nil {
				a.err = fmt.Errorf("trace snapshot: %w", err)
			}
		}
	})
	return a.err
}

func (a *artifacts) writeTrace() error {
	if dir := filepath.Dir(a.tracePath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(a.tracePath)
	if err != nil {
		return err
	}
	snap := a.tr.Snapshot(a.node, a.peLo, a.peHi, time.Since(a.start))
	snap.EpochUnixNs = a.start.UnixNano()
	if err := snap.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// watchSignals flushes the artifacts and exits with the conventional
// 128+signal status when a signal arrives, so an interrupted run (SIGINT,
// SIGTERM from a batch scheduler) still leaves its observability data
// behind. The channel is injected for tests; exit is os.Exit in main.
func watchSignals(ch <-chan os.Signal, a *artifacts, exit func(int)) {
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "gridnode: caught %v, flushing artifacts\n", sig)
		if err := a.flush(); err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		}
		code := 128
		if s, isSys := sig.(syscall.Signal); isSys {
			code += int(s)
		}
		exit(code)
	}()
}

// writeSnapshot dumps the registry as indented JSON, the same structure
// the benchmark harness records next to its results.
func writeSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
