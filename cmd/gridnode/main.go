// Command gridnode hosts one node (one OS process, a contiguous range of
// PEs) of a multi-process GridMDO run over TCP — the paper's co-allocated
// deployment, with each gridnode process standing in for one cluster's
// allocation. Node 0 is the coordinator: it starts the program, reports
// the result, and announces shutdown to the workers.
//
// Processes may start in any order (connections retry with backoff for
// ~15 seconds). For example:
//
//	gridnode -node 1 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4 &
//	gridnode -node 0 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4
//
// Every process must be given identical application flags; the node count
// is the number of comma-separated addresses, and PEs are split evenly
// across nodes (procs must be divisible by the node count). With two
// nodes, the node boundary coincides with the cluster boundary, so all
// node-to-node TCP traffic is the "wide area" path and carries the
// configured injected latency.
//
// Migration and fault tolerance ride the PUP serialization layer: -lb
// enables AtSync load balancing (migrations between nodes travel as
// ordinary runtime messages over the same TCP chain), and -checkpoint /
// -restart snapshot and restore the program across runs — each node
// writes a partial checkpoint file, and a restart merges them, so the
// restarted run may use a different PE or node count.
//
// Observability: -metrics serves the runtime's registry over HTTP
// (Prometheus text at /metrics, JSON with ?format=json), and
// -metrics-out writes a JSON snapshot of the same registry when the run
// completes. Both cover the core scheduler series (per-PE) and the VMI
// device series (per-device). The same HTTP server answers /healthz and
// /readyz (readiness drops during membership drain) and, with -pprof,
// net/http/pprof under /debug/pprof/.
//
// The telemetry plane rides the same control path as membership: with
// -telemetry each node runs an agent shipping metric deltas and trace
// digests to node 0 as ControlTelemetry frames, and with -collector this
// node (normally node 0) merges them into the live cluster view at
// /v1/cluster/{metrics,overlap,health} and /v1/jobs/{id}/trace.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"gridmdo/internal/appflags"
	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/telemetry"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// config carries the parsed command line into run. The flag groups live
// in internal/appflags, shared with cmd/gridgate so both binaries parse
// and validate an identical program shape.
type config struct {
	appflags.Cluster
	appflags.Sim
	appflags.Stencil
	appflags.LeanMD
	appflags.Farm
	appflags.Obs

	app                 string
	checkpoint, restart string
	collector           bool

	// onMetrics, when non-nil, receives the bound metrics address once the
	// endpoint is listening (tests scrape it during a live run).
	onMetrics func(addr string)
	// onCollector, when non-nil, receives the telemetry collector built for
	// -collector (tests read the cluster view without scraping HTTP).
	onCollector func(c *telemetry.Collector)
	// onRuntime, when non-nil, receives the runtime right after
	// construction (tests inspect Locations before and after the run).
	onRuntime func(rt *core.Runtime)
	// onResult, when non-nil, receives node 0's program result.
	onResult func(v any)
	// onMembership, when non-nil, receives the membership manager once it
	// is wired (tests drive joins/drains and read the member table).
	onMembership func(m *core.Membership)
}

func main() {
	var cfg config
	fs := flag.CommandLine
	cfg.Cluster.Register(fs)
	cfg.Sim.Register(fs)
	cfg.Stencil.Register(fs)
	cfg.LeanMD.Register(fs)
	cfg.Farm.Register(fs)
	cfg.Obs.Register(fs, 0)
	fs.StringVar(&cfg.app, "app", "stencil", "stencil|leanmd|taskfarm")
	fs.BoolVar(&cfg.collector, "collector", false, "run the cluster telemetry collector on this node (serves /v1/cluster/* on the -metrics address)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "write this node's checkpoint to <prefix>.node<N> when the run completes")
	fs.StringVar(&cfg.restart, "restart", "", "restore program state from <prefix>.node* (or a single merged file) before running")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		os.Exit(1)
	}
}

// buildProgram assembles the selected application. With elastic set
// (-membership), initial placement is confined to the founding nodes'
// PEs; the taskfarm Params come back so run can late-bind the drain hook
// once the membership manager exists.
func buildProgram(cfg config, reg *metrics.Registry, elastic *taskfarm.ElasticConfig) (*core.Program, *taskfarm.Params, error) {
	switch cfg.app {
	case "stencil":
		p, err := cfg.Stencil.Params(cfg.Sim, elastic)
		if err != nil {
			return nil, nil, err
		}
		prog, err := stencil.BuildProgram(p)
		return prog, nil, err
	case "leanmd":
		if cfg.LB != "" {
			return nil, nil, fmt.Errorf("-lb supports -app stencil only")
		}
		if elastic != nil {
			return nil, nil, fmt.Errorf("-membership supports -app stencil and taskfarm only")
		}
		prog, _, err := leanmd.BuildProgram(cfg.LeanMD.Params(cfg.Sim))
		return prog, nil, err
	case "taskfarm":
		if cfg.LB != "" {
			return nil, nil, fmt.Errorf("-lb supports -app stencil only")
		}
		p := cfg.Farm.Params(cfg.Procs, reg, elastic)
		prog, err := taskfarm.BuildProgram(p)
		return prog, p, err
	default:
		return nil, nil, fmt.Errorf("unknown app %q", cfg.app)
	}
}

func run(cfg config) error {
	// The cluster boundary defaults to an even split (the paper's
	// two-cluster machine) but -split models unequal co-allocations, where
	// one site contributes more PEs than the other and the wide-area
	// boundary no longer coincides with a process boundary.
	lay, err := cfg.Cluster.Resolve()
	if err != nil {
		return err
	}
	addrs, nodes, perNode := lay.Addrs, lay.Nodes, lay.PerNode
	topo := lay.Topo
	nodeOf := lay.NodeOf

	if cfg.Serve {
		if cfg.app != "taskfarm" {
			return fmt.Errorf("-serve supports -app taskfarm only")
		}
		if cfg.Node == 0 {
			return fmt.Errorf("-serve backends must have -node >= 1 (node 0 is the gateway: run cmd/gridgate)")
		}
	}

	// Elastic membership: -joiners names the nodes that start outside the
	// member set; everyone else is a founding Active member. The epoch
	// fence lives in the Reliable layer, so -membership implies -reliable.
	joiner, err := cfg.Cluster.JoinerSet(nodes)
	if err != nil {
		return err
	}
	var elastic *taskfarm.ElasticConfig
	if cfg.Membership {
		cfg.Reliable = true
		elastic = &taskfarm.ElasticConfig{
			NodeOf:     nodeOf,
			ActiveNode: func(node int) bool { return node >= 0 && node < nodes && !joiner[node] },
			CoordNode:  0,
		}
	} else if len(joiner) > 0 {
		return fmt.Errorf("-joiners requires -membership")
	}

	// The registry is created before the program so applications that
	// publish their own series (taskfarm) can hold handles into it; the
	// same registry later instruments the runtime and the VMI stack.
	reg := metrics.NewRegistry()
	prog, tfp, err := buildProgram(cfg, reg, elastic)
	if err != nil {
		return err
	}
	if cfg.restart != "" {
		ck, err := readCheckpoint(cfg.restart)
		if err != nil {
			return err
		}
		if err := ck.Install(prog); err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gridnode %d: restored checkpoint %s\n", cfg.Node, cfg.restart)
	}

	addrMap := make(map[int]string, nodes)
	for i, a := range addrs {
		addrMap[i] = a
	}

	// Readiness starts false and flips true once the runtime is about to
	// serve; membership and drain state feed it below.
	health := telemetry.NewHealth()
	health.Set("startup", "runtime not started")

	// The collector is built before the stack listens so a telemetry frame
	// from a fast peer never races its construction.
	var coll *telemetry.Collector
	if cfg.collector {
		coll = telemetry.NewCollector(telemetry.CollectorConfig{})
		if cfg.onCollector != nil {
			cfg.onCollector(coll)
		}
	}

	var rt *core.Runtime
	var mem *core.Membership
	builder := vmi.NewChainBuilder(cfg.Node, addrMap, func(pe int32) int { return nodeOf(int(pe)) }).
		Metrics(reg).
		OnControl(func(f *vmi.Frame) {
			switch f.Dst {
			case vmi.ControlShutdown:
				if rt != nil {
					rt.Stop()
				}
			case vmi.ControlMembership:
				if mem != nil {
					mem.HandleControl(f)
				}
			case vmi.ControlTelemetry:
				if coll != nil {
					_ = coll.Ingest(f.Body) // bad frames are counted, never fatal
				}
			}
		})
	if cfg.Reliable {
		builder.Reliable(vmi.ReliableConfig{})
	}
	stack, err := builder.Build()
	if err != nil {
		return err
	}

	// Membership is wired before Listen so a control frame from a fast
	// peer never races the manager's construction.
	var notifier *taskfarm.Notifier
	if cfg.Membership {
		var initial []core.Member
		for n := 0; n < nodes; n++ {
			if joiner[n] {
				continue
			}
			initial = append(initial, core.Member{Node: int32(n), State: core.MemberActive, Addr: addrs[n]})
		}
		mcfg := core.MembershipConfig{
			Node:        cfg.Node,
			Coordinator: 0,
			Stack:       stack,
			NodeOf:      nodeOf,
			NumPE:       cfg.Procs,
			Initial:     initial,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "gridnode %d: "+format+"\n", append([]any{cfg.Node}, args...)...)
			},
		}
		if cfg.checkpoint != "" {
			prefix := cfg.checkpoint
			mcfg.CheckpointFor = func(node int) *core.Checkpoint {
				return readPartialCheckpoint(fmt.Sprintf("%s.node%d", prefix, node))
			}
		}
		if tfp != nil {
			notifier = taskfarm.NewNotifier(tfp)
			mcfg.OnChange = notifier.OnChange
		}
		mem, err = core.NewMembership(mcfg)
		if err != nil {
			return err
		}
		defer mem.Close()
		mem.Instrument(reg)
		// Readiness tracks the member table: a node that is joining,
		// draining, or dead should fall out of load-balancer rotation.
		health.AddCheck("membership", func() error {
			st, ok := mem.StateOf(cfg.Node)
			if !ok {
				return fmt.Errorf("node %d not in the member table", cfg.Node)
			}
			if st != core.MemberActive {
				return fmt.Errorf("node %d is %v, want Active", cfg.Node, st)
			}
			return nil
		})
		if tfp != nil {
			// Late-bound: the root's drain-complete hook marks the node
			// Left at the coordinator.
			tfp.OnDrained = mem.NotifyDrained
		}
		if cfg.onMembership != nil {
			cfg.onMembership(mem)
		}
	}

	if _, err := stack.Listen(); err != nil {
		return err
	}
	defer stack.Close()

	art := &artifacts{
		metricsPath: cfg.MetricsOut, reg: reg,
		tracePath: cfg.TraceOut,
		node:      cfg.Node, peLo: cfg.Node * perNode, peHi: (cfg.Node + 1) * perNode,
		start: time.Now(),
	}
	rtOpts := []core.Option{
		core.WithCluster(core.ClusterConfig{
			Transport: stack,
			NodeOf:    nodeOf,
			Node:      cfg.Node,
			PELo:      cfg.Node * perNode,
			PEHi:      (cfg.Node + 1) * perNode,
		}),
		core.WithMetrics(reg),
	}
	if mem != nil {
		rtOpts = append(rtOpts, core.WithMembership(mem))
	}
	if cfg.TraceOut != "" || cfg.Telemetry {
		art.tr = trace.NewWithCapacity(cfg.Procs, cfg.TraceRingCap())
		rtOpts = append(rtOpts, core.WithTrace(art.tr))
	}
	rt, err = core.NewRuntime(topo, prog, rtOpts...)
	if err != nil {
		return err
	}
	if cfg.onRuntime != nil {
		cfg.onRuntime(rt)
	}
	if notifier != nil {
		notifier.Bind(rt, cfg.Node)
	}
	// Trace timestamps are relative to the runtime epoch; record it so
	// gridtrace can re-base snapshots from separately started processes.
	art.start = rt.Epoch()

	// The telemetry agent ships reports to node 0 over the control path.
	// On the collector node itself SendControl self-delivers synchronously,
	// so the same wiring serves both roles.
	if cfg.Telemetry {
		agent, err := telemetry.NewAgent(telemetry.AgentConfig{
			Node:     cfg.Node,
			Registry: reg,
			Tracer:   art.tr,
			Epoch:    rt.Epoch(),
			NumPE:    cfg.Procs,
			Interval: cfg.TelemetryInterval,
			SpanFilter: func(ev trace.Event) bool {
				// Keep application causality; quiescence probes and stop
				// messages are runtime chatter.
				return ev.MsgKind != byte(core.KindQD) && ev.MsgKind != byte(core.KindStop)
			},
			Send: func(b []byte) error {
				return stack.SendControl(0, &vmi.Frame{Src: int32(cfg.Node), Dst: vmi.ControlTelemetry, Body: b})
			},
		})
		if err != nil {
			return err
		}
		agent.Start()
		defer agent.Stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	// SIGTERM on a membership-enabled worker node drains instead of
	// killing: the node's chares are evicted onto the survivors, the
	// coordinator marks it Left, and the process exits cleanly.
	var drainFn func() bool
	if mem != nil && cfg.Node != 0 {
		drainFn = func() bool {
			// Readiness drops the moment the drain starts, before any chare
			// has moved, so a probing balancer stops routing here first.
			health.Set("draining", "SIGTERM drain in progress")
			if err := mem.RequestDrain(60 * time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "gridnode %d: drain: %v\n", cfg.Node, err)
				return false
			}
			return true
		}
	}
	watchSignals(sigCh, art, os.Exit, drainFn)

	if cfg.MetricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", health.Healthz)
		mux.HandleFunc("/readyz", health.Readyz)
		if cfg.Pprof {
			telemetry.MountPprof(mux)
		}
		if coll != nil {
			mux.Handle("GET /v1/jobs/", coll.JobTraceHandler())
			coll.Mount(mux, 3*cfg.TelemetryInterval)
		}
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Fprintf(os.Stderr, "gridnode %d: metrics on http://%s/metrics\n", cfg.Node, ln.Addr())
		if cfg.onMetrics != nil {
			cfg.onMetrics(ln.Addr().String())
		}
	}

	fmt.Fprintf(os.Stderr, "gridnode %d/%d: hosting PEs [%d,%d) of %s on %s\n",
		cfg.Node, nodes, cfg.Node*perNode, (cfg.Node+1)*perNode, topo, addrMap[cfg.Node])

	if mem != nil && joiner[cfg.Node] {
		fmt.Fprintf(os.Stderr, "gridnode %d: requesting admission to the member set\n", cfg.Node)
		if err := mem.RequestJoin(60 * time.Second); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gridnode %d: admitted\n", cfg.Node)
	}

	// The scheduler loop is about to serve; readiness now rests on the
	// membership check alone (joiners flip Active through it).
	health.Set("startup", "")

	v, err := rt.Run()
	if err != nil {
		return err
	}

	if cfg.checkpoint != "" {
		// Each node snapshots the elements it hosts; a restart merges the
		// per-node partial files back into one complete checkpoint, so the
		// restarted run may use a different PE or node count.
		path := fmt.Sprintf("%s.node%d", cfg.checkpoint, cfg.Node)
		if err := writeCheckpoint(path, rt); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gridnode %d: wrote checkpoint %s\n", cfg.Node, path)
	}

	if cfg.Node == 0 {
		if cfg.onResult != nil {
			cfg.onResult(v)
		}
		switch res := v.(type) {
		case *stencil.Result:
			fmt.Printf("stencil: per-step %v, total %v, checksum %.6f\n", res.PerStep, res.Total, res.Checksum)
		case *leanmd.Result:
			fmt.Printf("leanmd: per-step %v, total %v, drift %.4f%%\n", res.PerStep, res.Total, 100*res.Drift())
		case *taskfarm.Result:
			fmt.Printf("taskfarm: tasks %d, makespan %v, checksum %#x, shards %d, steals %d, stolen %d\n",
				res.Tasks, res.Makespan, res.Checksum, res.Shards, res.Steals, res.StolenTask)
		default:
			fmt.Printf("result: %v\n", v)
		}
		// Announce shutdown to the workers. Nodes that left or died have
		// no process to notify (and dialing them would stall the exit).
		for n := 1; n < nodes; n++ {
			if mem != nil {
				// A node outside the table (a joiner that never joined)
				// still gets the announcement — it is listening and would
				// otherwise wait forever.
				if st, ok := mem.StateOf(n); ok && (st == core.MemberLeft || st == core.MemberDead) {
					continue
				}
			}
			if err := stack.SendControl(n, &vmi.Frame{Src: int32(cfg.Node), Dst: vmi.ControlShutdown}); err != nil {
				fmt.Fprintf(os.Stderr, "gridnode: shutdown announce to node %d: %v\n", n, err)
			}
		}
		// Give the frames time to flush before closing connections.
		time.Sleep(100 * time.Millisecond)
	}

	return art.flush()
}

// artifacts is everything gridnode flushes at the end of a run — the
// metrics snapshot and the trace snapshot. flush is idempotent so the
// normal completion path and the signal handler can race safely.
type artifacts struct {
	once sync.Once
	err  error

	metricsPath string
	reg         *metrics.Registry

	tracePath        string
	tr               *trace.Tracer
	node, peLo, peHi int
	start            time.Time
}

// flush writes every configured artifact exactly once and remembers the
// first error for later calls.
func (a *artifacts) flush() error {
	a.once.Do(func() {
		if a.metricsPath != "" && a.reg != nil {
			if err := writeSnapshot(a.metricsPath, a.reg); err != nil && a.err == nil {
				a.err = fmt.Errorf("metrics snapshot: %w", err)
			}
		}
		if a.tracePath != "" && a.tr != nil {
			if err := a.writeTrace(); err != nil && a.err == nil {
				a.err = fmt.Errorf("trace snapshot: %w", err)
			}
		}
	})
	return a.err
}

func (a *artifacts) writeTrace() error {
	if dir := filepath.Dir(a.tracePath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(a.tracePath)
	if err != nil {
		return err
	}
	snap := a.tr.Snapshot(a.node, a.peLo, a.peHi, time.Since(a.start))
	snap.EpochUnixNs = a.start.UnixNano()
	if err := snap.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCheckpoint snapshots this node's share of the program state (a
// partial checkpoint on multi-process runs) to path through the PUP layer.
func writeCheckpoint(path string, rt *core.Runtime) error {
	ck, err := rt.Checkpoint()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ck.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readPartialCheckpoint loads one node's partial checkpoint file for the
// death-recovery path, or nil when the node never wrote one (its elements
// are then constructed fresh on the survivors).
func readPartialCheckpoint(path string) *core.Checkpoint {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	ck, err := core.DecodeCheckpoint(f)
	if err != nil {
		return nil
	}
	return ck
}

// readCheckpoint loads a checkpoint for -restart: every <prefix>.node*
// partial file merged by element index, or — when no per-node files exist
// — the prefix itself as a single complete checkpoint. The node count of
// the writing run does not need to match this one; placement is recomputed
// at install time.
func readCheckpoint(prefix string) (*core.Checkpoint, error) {
	paths, err := filepath.Glob(prefix + ".node*")
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		paths = []string{prefix}
	}
	parts := make([]*core.Checkpoint, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		ck, err := core.DecodeCheckpoint(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		parts = append(parts, ck)
	}
	if len(parts) == 1 && !parts[0].Partial {
		return parts[0], nil
	}
	ck, err := core.MergeCheckpoints(parts...)
	if err != nil {
		return nil, fmt.Errorf("merge %d checkpoint files under %s: %w", len(parts), prefix, err)
	}
	return ck, nil
}

// watchSignals flushes the artifacts and exits with the conventional
// 128+signal status when a signal arrives, so an interrupted run (SIGINT,
// SIGTERM from a batch scheduler) still leaves its observability data
// behind. With drain non-nil (elastic membership), SIGTERM first tries a
// clean drain — evict this node's chares onto the survivors and leave the
// member set — and exits 0 when it succeeds. The channel is injected for
// tests; exit is os.Exit in main.
func watchSignals(ch <-chan os.Signal, a *artifacts, exit func(int), drain func() bool) {
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		if sig == syscall.SIGTERM && drain != nil {
			fmt.Fprintf(os.Stderr, "gridnode: caught %v, draining\n", sig)
			if drain() {
				if err := a.flush(); err != nil {
					fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
				}
				exit(0)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "gridnode: caught %v, flushing artifacts\n", sig)
		if err := a.flush(); err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		}
		code := 128
		if s, isSys := sig.(syscall.Signal); isSys {
			code += int(s)
		}
		exit(code)
	}()
}

// writeSnapshot dumps the registry as indented JSON, the same structure
// the benchmark harness records next to its results.
func writeSnapshot(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
