// Command gridnode hosts one node (one OS process, a contiguous range of
// PEs) of a multi-process GridMDO run over TCP — the paper's co-allocated
// deployment, with each gridnode process standing in for one cluster's
// allocation. Node 0 is the coordinator: it starts the program, reports
// the result, and announces shutdown to the workers.
//
// Processes may start in any order (connections retry with backoff for
// ~15 seconds). For example:
//
//	gridnode -node 1 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4 &
//	gridnode -node 0 -addrs 127.0.0.1:9101,127.0.0.1:9102 -app stencil -procs 4
//
// Every process must be given identical application flags; the node count
// is the number of comma-separated addresses, and PEs are split evenly
// across nodes (procs must be divisible by the node count). With two
// nodes, the node boundary coincides with the cluster boundary, so all
// node-to-node TCP traffic is the "wide area" path and carries the
// configured injected latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

func main() {
	var (
		node    = flag.Int("node", 0, "this process's node index")
		addrs   = flag.String("addrs", "", "comma-separated listen addresses, one per node")
		app     = flag.String("app", "stencil", "stencil|leanmd")
		procs   = flag.Int("procs", 4, "total PEs across all nodes")
		latency = flag.Duration("latency", 1725*time.Microsecond, "one-way inter-cluster latency")
		objects = flag.Int("objects", 64, "stencil: virtualization degree (perfect square)")
		width   = flag.Int("width", 1024, "stencil: mesh width and height")
		cells   = flag.Int("cells", 4, "leanmd: cells per axis")
		atoms   = flag.Int("atoms", 8, "leanmd: atoms per cell")
		steps   = flag.Int("steps", 10, "time steps")
		warmup  = flag.Int("warmup", 3, "warmup steps")
	)
	flag.Parse()
	if err := run(*node, *addrs, *app, *procs, *latency, *objects, *width, *cells, *atoms, *steps, *warmup); err != nil {
		fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		os.Exit(1)
	}
}

func run(node int, addrList, app string, procs int, latency time.Duration,
	objects, width, cells, atoms, steps, warmup int) error {

	addrs := strings.Split(addrList, ",")
	nodes := len(addrs)
	if addrList == "" || nodes < 2 {
		return fmt.Errorf("need -addrs with at least two addresses")
	}
	if node < 0 || node >= nodes {
		return fmt.Errorf("node %d out of range for %d addresses", node, nodes)
	}
	if procs%nodes != 0 {
		return fmt.Errorf("procs=%d not divisible by %d nodes", procs, nodes)
	}
	perNode := procs / nodes

	topo, err := topology.TwoClusters(procs, latency)
	if err != nil {
		return err
	}

	var prog *core.Program
	switch app {
	case "stencil":
		v := 1
		for v*v < objects {
			v++
		}
		if v*v != objects {
			return fmt.Errorf("objects=%d is not a perfect square", objects)
		}
		prog, err = stencil.BuildProgram(&stencil.Params{
			Width: width, Height: width, VX: v, VY: v, Steps: steps, Warmup: warmup,
		})
	case "leanmd":
		p := leanmd.DefaultParams()
		p.NX, p.NY, p.NZ = cells, cells, cells
		p.AtomsPerCell = atoms
		p.Steps, p.Warmup = steps, warmup
		prog, _, err = leanmd.BuildProgram(p)
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	if err != nil {
		return err
	}

	addrMap := make(map[int]string, nodes)
	for i, a := range addrs {
		addrMap[i] = a
	}
	nodeOf := func(pe int) int { return pe / perNode }

	var rt *core.Runtime
	tcp := vmi.NewTCP(node, addrMap, func(pe int32) int { return nodeOf(int(pe)) }, func(f *vmi.Frame) error {
		return rt.InjectFrame(f)
	})
	tcp.OnControl = func(f *vmi.Frame) {
		if f.Dst == vmi.ControlShutdown && rt != nil {
			rt.Stop()
		}
	}
	if _, err := tcp.Listen(); err != nil {
		return err
	}
	defer tcp.Close()

	rt, err = core.NewRuntime(topo, prog, core.Options{
		Transport: tcp,
		NodeOf:    nodeOf,
		Node:      node,
		PELo:      node * perNode,
		PEHi:      (node + 1) * perNode,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "gridnode %d/%d: hosting PEs [%d,%d) of %s on %s\n",
		node, nodes, node*perNode, (node+1)*perNode, topo, addrMap[node])

	v, err := rt.Run()
	if err != nil {
		return err
	}

	if node == 0 {
		switch res := v.(type) {
		case *stencil.Result:
			fmt.Printf("stencil: per-step %v, total %v, checksum %.6f\n", res.PerStep, res.Total, res.Checksum)
		case *leanmd.Result:
			fmt.Printf("leanmd: per-step %v, total %v, drift %.4f%%\n", res.PerStep, res.Total, 100*res.Drift())
		default:
			fmt.Printf("result: %v\n", v)
		}
		// Announce shutdown to the workers.
		for n := 1; n < nodes; n++ {
			if err := tcp.SendControl(n, &vmi.Frame{Src: int32(node), Dst: vmi.ControlShutdown}); err != nil {
				fmt.Fprintf(os.Stderr, "gridnode: shutdown announce to node %d: %v\n", n, err)
			}
		}
		// Give the frames time to flush before closing connections.
		time.Sleep(100 * time.Millisecond)
	}
	return nil
}
