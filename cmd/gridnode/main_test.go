package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
)

// freePort reserves an ephemeral loopback port and returns its address.
// The listener is closed before use, so a parallel process could steal the
// port, but gridnode's dial retries tolerate the resulting startup skew.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestGridnodeServesMetrics runs a two-node stencil in-process, scrapes
// the node-0 /metrics endpoint while the run is live, and checks the
// end-of-run JSON snapshot: per-PE core series and per-device VMI series
// must exist and the flow counters must be nonzero. This is the metrics
// job CI runs.
func TestGridnodeServesMetrics(t *testing.T) {
	base := config{
		addrList: freePort(t) + "," + freePort(t),
		app:      "stencil",
		procs:    2,
		latency:  time.Millisecond,
		objects:  4, width: 64,
		steps: 600, warmup: 2,
	}
	cfg1 := base
	cfg1.node = 1
	cfg0 := base
	cfg0.node = 0
	cfg0.metricsAddr = "127.0.0.1:0"
	cfg0.snapshot = filepath.Join(t.TempDir(), "metrics.json")
	ready := make(chan string, 1)
	cfg0.onMetrics = func(addr string) { ready <- addr }

	errs := make(chan error, 2)
	go func() { errs <- run(cfg1) }()
	go func() { errs <- run(cfg0) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("metrics endpoint never came up")
	}

	// Scrape during the live run until the core series move.
	var live metrics.Snapshot
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("live scrape never showed nonzero core series")
		}
		snap, err := scrapeJSON(addr)
		if err == nil && snap.Value("core_msgs_processed_total") > 0 && snap.Value("vmi_tcp_frames_out_total") > 0 {
			live = snap
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Prometheus text default, with TYPE headers.
	promBody, err := scrapeText(addr)
	if err == nil { // the run may have just finished; the snapshot file covers that case
		if !strings.Contains(promBody, "# TYPE core_msgs_processed_total counter") {
			t.Errorf("prom exposition missing TYPE line:\n%.400s", promBody)
		}
	}

	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("gridnode run never finished")
		}
	}

	// The live scrape already proved per-PE and per-device series flow;
	// spot-check identities.
	assertSeries(t, "live", live)

	// End-of-run snapshot file.
	data, err := os.ReadFile(cfg0.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var final metrics.Snapshot
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatal(err)
	}
	assertSeries(t, "snapshot", final)
	if final.Value("core_msgs_processed_total") < live.Value("core_msgs_processed_total") {
		t.Error("final snapshot regressed below the live scrape")
	}
}

func assertSeries(t *testing.T, phase string, snap metrics.Snapshot) {
	t.Helper()
	for _, name := range []string{
		"core_msgs_sent_total",
		"core_msgs_processed_total",
		"core_msgs_enqueued_total",
		"core_queue_depth",
		"core_handler_nanos",
		"vmi_tcp_frames_out_total",
		"vmi_tcp_frames_in_total",
		"vmi_tcp_write_batch_bytes",
		"vmi_delay_occupancy",
	} {
		if !snap.Has(name) {
			t.Errorf("%s: series %s missing", phase, name)
		}
	}
	for _, name := range []string{"core_msgs_processed_total", "vmi_tcp_frames_out_total", "vmi_tcp_bytes_out_total"} {
		if snap.Value(name) == 0 {
			t.Errorf("%s: series %s is zero", phase, name)
		}
	}
	// Per-PE identity: node 0 hosts PE 0.
	var perPE bool
	for _, s := range snap.Series {
		if s.Name == "core_msgs_processed_total" && strings.Contains(s.Labels, `pe="0"`) {
			perPE = true
		}
	}
	if !perPE {
		t.Errorf(`%s: no core_msgs_processed_total{pe="0"} series`, phase)
	}
}

func scrapeJSON(addr string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics?format=json", addr))
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func scrapeText(addr string) (string, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestSignalFlushWritesArtifacts drives the signal path with a fake
// channel: a SIGTERM must flush the metrics and trace snapshots exactly
// once and exit with the conventional 128+signal status.
func TestSignalFlushWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.Counter("test_series").Inc()
	tr := trace.New(2)
	tr.Record(trace.Event{PE: 1, Kind: trace.EvBegin, At: time.Millisecond, MsgID: 7})

	art := &artifacts{
		metricsPath: filepath.Join(dir, "metrics.json"),
		reg:         reg,
		tracePath:   filepath.Join(dir, "node1.trace.json"),
		tr:          tr,
		node:        1, peLo: 1, peHi: 2,
		start: time.Now().Add(-time.Second),
	}

	ch := make(chan os.Signal, 1)
	codes := make(chan int, 1)
	watchSignals(ch, art, func(code int) { codes <- code })
	ch <- syscall.SIGTERM

	select {
	case code := <-codes:
		if want := 128 + int(syscall.SIGTERM); code != want {
			t.Errorf("exit code %d, want %d", code, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal watcher never exited")
	}

	var m metrics.Snapshot
	data, err := os.ReadFile(art.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Has("test_series") {
		t.Error("metrics snapshot missing test_series")
	}

	tf, err := os.Open(art.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	snap, err := trace.ReadSnapshot(tf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Node != 1 || snap.PELo != 1 || snap.PEHi != 2 {
		t.Errorf("snapshot PE range: %+v", snap)
	}
	if len(snap.Events) != 1 || snap.Events[0].MsgID != 7 {
		t.Errorf("snapshot events: %+v", snap.Events)
	}

	// A second flush (the normal-completion path racing the handler) is a
	// no-op, not a rewrite.
	if err := os.Remove(art.metricsPath); err != nil {
		t.Fatal(err)
	}
	if err := art.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(art.metricsPath); !os.IsNotExist(err) {
		t.Error("second flush rewrote the metrics snapshot")
	}
}

// TestWatchSignalsClosedChannel: closing the channel (signal.Stop on the
// normal path) must end the watcher without flushing or exiting.
func TestWatchSignalsClosedChannel(t *testing.T) {
	art := &artifacts{}
	ch := make(chan os.Signal)
	exited := make(chan int, 1)
	watchSignals(ch, art, func(code int) { exited <- code })
	close(ch)
	select {
	case code := <-exited:
		t.Fatalf("watcher exited with %d on channel close", code)
	case <-time.After(100 * time.Millisecond):
	}
}
