package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gridmdo/internal/appflags"
	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
	"gridmdo/internal/trace"
)

// freePort reserves an ephemeral loopback port and returns its address.
// The listener is closed before use, so a parallel process could steal the
// port, but gridnode's dial retries tolerate the resulting startup skew.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestGridnodeServesMetrics runs a two-node stencil in-process, scrapes
// the node-0 /metrics endpoint while the run is live, and checks the
// end-of-run JSON snapshot: per-PE core series and per-device VMI series
// must exist and the flow counters must be nonzero. This is the metrics
// job CI runs.
func TestGridnodeServesMetrics(t *testing.T) {
	base := config{
		Cluster: appflags.Cluster{
			Addrs:   freePort(t) + "," + freePort(t),
			Procs:   2,
			Latency: time.Millisecond,
		},
		Stencil: appflags.Stencil{Objects: 4, Width: 64},
		Sim:     appflags.Sim{Steps: 600, Warmup: 2},
		app:     "stencil",
	}
	cfg1 := base
	cfg1.Node = 1
	cfg0 := base
	cfg0.Node = 0
	cfg0.MetricsAddr = "127.0.0.1:0"
	cfg0.MetricsOut = filepath.Join(t.TempDir(), "metrics.json")
	ready := make(chan string, 1)
	cfg0.onMetrics = func(addr string) { ready <- addr }

	errs := make(chan error, 2)
	go func() { errs <- run(cfg1) }()
	go func() { errs <- run(cfg0) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("metrics endpoint never came up")
	}

	// Scrape during the live run until the core series move.
	var live metrics.Snapshot
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("live scrape never showed nonzero core series")
		}
		snap, err := scrapeJSON(addr)
		if err == nil && snap.Value("core_msgs_processed_total") > 0 && snap.Value("vmi_tcp_frames_out_total") > 0 {
			live = snap
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Prometheus text default, with TYPE headers.
	promBody, err := scrapeText(addr)
	if err == nil { // the run may have just finished; the snapshot file covers that case
		if !strings.Contains(promBody, "# TYPE core_msgs_processed_total counter") {
			t.Errorf("prom exposition missing TYPE line:\n%.400s", promBody)
		}
	}

	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("gridnode run never finished")
		}
	}

	// The live scrape already proved per-PE and per-device series flow;
	// spot-check identities.
	assertSeries(t, "live", live)

	// End-of-run snapshot file.
	data, err := os.ReadFile(cfg0.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var final metrics.Snapshot
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatal(err)
	}
	assertSeries(t, "snapshot", final)
	if final.Value("core_msgs_processed_total") < live.Value("core_msgs_processed_total") {
		t.Error("final snapshot regressed below the live scrape")
	}
}

func assertSeries(t *testing.T, phase string, snap metrics.Snapshot) {
	t.Helper()
	for _, name := range []string{
		"core_msgs_sent_total",
		"core_msgs_processed_total",
		"core_msgs_enqueued_total",
		"core_queue_depth",
		"core_handler_nanos",
		"vmi_tcp_frames_out_total",
		"vmi_tcp_frames_in_total",
		"vmi_tcp_write_batch_bytes",
		"vmi_delay_occupancy",
	} {
		if !snap.Has(name) {
			t.Errorf("%s: series %s missing", phase, name)
		}
	}
	for _, name := range []string{"core_msgs_processed_total", "vmi_tcp_frames_out_total", "vmi_tcp_bytes_out_total"} {
		if snap.Value(name) == 0 {
			t.Errorf("%s: series %s is zero", phase, name)
		}
	}
	// Per-PE identity: node 0 hosts PE 0.
	var perPE bool
	for _, s := range snap.Series {
		if s.Name == "core_msgs_processed_total" && strings.Contains(s.Labels, `pe="0"`) {
			perPE = true
		}
	}
	if !perPE {
		t.Errorf(`%s: no core_msgs_processed_total{pe="0"} series`, phase)
	}
}

func scrapeJSON(addr string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics?format=json", addr))
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func scrapeText(addr string) (string, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// runPair runs a two-node gridnode in-process (node 1 as worker) and
// returns node 0's program result. mod, when non-nil, adjusts each node's
// config before launch.
func runPair(t *testing.T, base config, mod func(node int, c *config)) any {
	t.Helper()
	base.Addrs = freePort(t) + "," + freePort(t)
	resCh := make(chan any, 1)
	errs := make(chan error, 2)
	for n := 1; n >= 0; n-- {
		cfg := base
		cfg.Node = n
		if n == 0 {
			cfg.onResult = func(v any) { resCh <- v }
		}
		if mod != nil {
			mod(n, &cfg)
		}
		go func() { errs <- run(cfg) }()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("gridnode run never finished")
		}
	}
	select {
	case v := <-resCh:
		return v
	default:
		t.Fatal("node 0 produced no result")
		return nil
	}
}

// TestGridnodeGridLBMigratesAcrossProcesses is the -lb acceptance run: a
// two-process stencil with an unequal cluster split (-split 3, so cluster
// 0 spans both processes) must complete a grid-aware balancing round in
// which elements migrate across the process boundary, with both nodes'
// location tables agreeing afterwards. The grid strategy never migrates
// across the WAN, so every move stays within cluster 0 — and the ones
// that land on the far side of the node boundary travel the same
// TCP chain as application messages.
func TestGridnodeGridLBMigratesAcrossProcesses(t *testing.T) {
	const (
		procs   = 4
		objects = 16
		perNode = 2
	)
	base := config{
		Cluster: appflags.Cluster{
			Procs:   procs,
			Split:   3, // cluster 0 = PEs {0,1,2}: spans node 0 ({0,1}) and node 1 ({2,3})
			Latency: time.Millisecond,
		},
		Stencil: appflags.Stencil{Objects: objects, Width: 128, LB: "grid"},
		Sim:     appflags.Sim{Steps: 8, Warmup: 1},
		app:     "stencil",
	}
	snapshot := filepath.Join(t.TempDir(), "metrics.json")

	var rts [2]*core.Runtime
	var initial [2][]int32
	v := runPair(t, base, func(node int, c *config) {
		if node == 0 {
			c.MetricsOut = snapshot
		}
		c.onRuntime = func(rt *core.Runtime) {
			rts[node] = rt
			pes := make([]int32, objects)
			for i := range pes {
				pes[i] = rt.Locations().PEOf(core.ElemRef{Array: 0, Index: i})
			}
			initial[node] = pes
		}
	})
	res, ok := v.(*stencil.Result)
	if !ok {
		t.Fatalf("result = %T, want *stencil.Result", v)
	}
	if res.Checksum == 0 {
		t.Error("run produced a zero checksum")
	}

	// The balancer ran at least one round with migrations (counters live
	// on the node hosting PE 0).
	data, err := os.ReadFile(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if rounds := snap.Value("core_lb_rounds_total"); rounds < 1 {
		t.Errorf("core_lb_rounds_total = %d, want >= 1", rounds)
	}
	if moves := snap.Value("core_lb_moves_total"); moves < 1 {
		t.Errorf("core_lb_moves_total = %d, want >= 1", moves)
	}

	// Location tables: both processes agree, and at least one element
	// crossed the node boundary.
	nodeOf := func(pe int32) int { return int(pe) / perNode }
	crossed := 0
	for i := 0; i < objects; i++ {
		ref := core.ElemRef{Array: 0, Index: i}
		pe0, pe1 := rts[0].Locations().PEOf(ref), rts[1].Locations().PEOf(ref)
		if pe0 != pe1 {
			t.Errorf("element %d: node 0 places it on PE %d, node 1 on PE %d", i, pe0, pe1)
		}
		if initial[0][i] != initial[1][i] {
			t.Errorf("element %d: initial placement disagrees across nodes (%d vs %d)", i, initial[0][i], initial[1][i])
		}
		if nodeOf(initial[0][i]) != nodeOf(pe0) {
			crossed++
		}
	}
	if crossed == 0 {
		t.Error("no element migrated across the process boundary")
	}
	t.Logf("%d of %d elements crossed the process boundary", crossed, objects)
}

// TestGridnodeCheckpointRestartDifferentPEs is the fault-tolerance
// acceptance run: a 4-PE two-process stencil writes per-node partial
// checkpoints; a 2-PE two-process restart merges them and must reproduce
// the verification checksum bit-identically versus a straight 2-PE run.
// (With two blocks per PE and two nodes, every reduction fold site
// combines exactly two values, and IEEE-754 addition is commutative, so
// both 2-PE checksums are bit-deterministic; bitwise equality therefore
// proves the PUP round-trip preserved the field exactly.)
func TestGridnodeCheckpointRestartDifferentPEs(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "ck")
	base := config{
		Cluster: appflags.Cluster{Latency: time.Millisecond},
		Stencil: appflags.Stencil{Objects: 4, Width: 64},
		Sim:     appflags.Sim{Steps: 6, Warmup: 0},
		app:     "stencil",
	}

	checksum := func(v any) float64 {
		t.Helper()
		res, ok := v.(*stencil.Result)
		if !ok {
			t.Fatalf("result = %T, want *stencil.Result", v)
		}
		return res.Checksum
	}

	// Run A: 4 PEs across two processes, checkpointing at completion.
	a := base
	a.Procs = 4
	a.checkpoint = prefix
	sumA := checksum(runPair(t, a, nil))
	for n := 0; n < 2; n++ {
		if _, err := os.Stat(fmt.Sprintf("%s.node%d", prefix, n)); err != nil {
			t.Fatalf("missing checkpoint part: %v", err)
		}
	}

	// Run B: restart the merged checkpoint on 2 PEs (different PE count,
	// different placement). Restored blocks have completed all steps, so
	// the run reports the restored field's checksum.
	b := base
	b.Procs = 2
	b.restart = prefix
	sumB := checksum(runPair(t, b, nil))

	// Run C: the same program straight through on 2 PEs.
	c := base
	c.Procs = 2
	sumC := checksum(runPair(t, c, nil))

	if math.Float64bits(sumB) != math.Float64bits(sumC) {
		t.Errorf("restart checksum %x (%.17g) != straight-run checksum %x (%.17g)",
			math.Float64bits(sumB), sumB, math.Float64bits(sumC), sumC)
	}
	// The 4-PE run folds four root partials in arrival order, so it is
	// only guaranteed equal up to association of the float64 sums.
	if diff := math.Abs(sumA - sumB); diff > 1e-9*math.Abs(sumB) {
		t.Errorf("4-PE checksum %.17g differs from restored checksum %.17g by %g", sumA, sumB, diff)
	}
}

// TestSignalFlushWritesArtifacts drives the signal path with a fake
// channel: a SIGTERM must flush the metrics and trace snapshots exactly
// once and exit with the conventional 128+signal status.
func TestSignalFlushWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.Counter("test_series").Inc()
	tr := trace.New(2)
	tr.Record(trace.Event{PE: 1, Kind: trace.EvBegin, At: time.Millisecond, MsgID: 7})

	art := &artifacts{
		metricsPath: filepath.Join(dir, "metrics.json"),
		reg:         reg,
		tracePath:   filepath.Join(dir, "node1.trace.json"),
		tr:          tr,
		node:        1, peLo: 1, peHi: 2,
		start: time.Now().Add(-time.Second),
	}

	ch := make(chan os.Signal, 1)
	codes := make(chan int, 1)
	watchSignals(ch, art, func(code int) { codes <- code }, nil)
	ch <- syscall.SIGTERM

	select {
	case code := <-codes:
		if want := 128 + int(syscall.SIGTERM); code != want {
			t.Errorf("exit code %d, want %d", code, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal watcher never exited")
	}

	var m metrics.Snapshot
	data, err := os.ReadFile(art.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Has("test_series") {
		t.Error("metrics snapshot missing test_series")
	}

	tf, err := os.Open(art.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	snap, err := trace.ReadSnapshot(tf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Node != 1 || snap.PELo != 1 || snap.PEHi != 2 {
		t.Errorf("snapshot PE range: %+v", snap)
	}
	if len(snap.Events) != 1 || snap.Events[0].MsgID != 7 {
		t.Errorf("snapshot events: %+v", snap.Events)
	}

	// A second flush (the normal-completion path racing the handler) is a
	// no-op, not a rewrite.
	if err := os.Remove(art.metricsPath); err != nil {
		t.Fatal(err)
	}
	if err := art.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(art.metricsPath); !os.IsNotExist(err) {
		t.Error("second flush rewrote the metrics snapshot")
	}
}

// TestWatchSignalsClosedChannel: closing the channel (signal.Stop on the
// normal path) must end the watcher without flushing or exiting.
func TestWatchSignalsClosedChannel(t *testing.T) {
	art := &artifacts{}
	ch := make(chan os.Signal)
	exited := make(chan int, 1)
	watchSignals(ch, art, func(code int) { exited <- code }, nil)
	close(ch)
	select {
	case code := <-exited:
		t.Fatalf("watcher exited with %d on channel close", code)
	case <-time.After(100 * time.Millisecond):
	}
}
