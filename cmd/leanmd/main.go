// Command leanmd runs the LeanMD molecular dynamics application
// standalone on either executor.
//
//	leanmd -procs 32 -latency 32ms               # virtual time, paper scale
//	leanmd -executor realtime -procs 4 -steps 20 # wall clock
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gridmdo/internal/bench"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/sim"
	"gridmdo/internal/trace"
)

func main() {
	var (
		executor = flag.String("executor", "sim", "sim|realtime|tcp")
		procs    = flag.Int("procs", 8, "processors, split evenly over two clusters (1 = single cluster)")
		cells    = flag.Int("cells", 6, "cells per axis (paper: 6 => 216 cells, 3024 pairs)")
		atoms    = flag.Int("atoms", 12, "atoms actually simulated per cell")
		steps    = flag.Int("steps", 8, "time steps")
		warmup   = flag.Int("warmup", 3, "warmup steps excluded from per-step timing")
		latency  = flag.Duration("latency", 4*time.Millisecond, "one-way inter-cluster latency")
		timeline = flag.Bool("timeline", false, "print a per-PE utilization timeline (sim only)")
		bundle   = flag.Bool("bundle", false, "bundle per-handler same-destination messages (sim only)")
	)
	flag.Parse()

	cfg := bench.MDConfig{
		NX: *cells, NY: *cells, NZ: *cells,
		AtomsPerCell: *atoms,
		Steps:        *steps, Warmup: *warmup,
		Model: leanmd.DefaultModel(),
	}
	var (
		res *leanmd.Result
		err error
		tr  *trace.Tracer
	)
	if *timeline {
		tr = trace.New(*procs)
	}
	switch *executor {
	case "sim":
		res, err = bench.LeanMDSim(cfg, *procs, *latency, sim.Options{Bundle: *bundle, Trace: tr})
	case "realtime":
		res, err = bench.LeanMDRealtime(cfg, *procs, *latency)
	case "tcp":
		res, err = bench.LeanMDTCP(cfg, *procs, *latency)
	default:
		err = fmt.Errorf("unknown executor %q", *executor)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "leanmd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("leanmd %d cells / %d pairs  procs=%d latency=%v executor=%s\n",
		res.Cells, res.Pairs, *procs, *latency, *executor)
	fmt.Printf("  per-step: %v   total: %v (%d steps, %d warmup)\n",
		res.PerStep, res.Total, res.Steps, res.Warmup)
	fmt.Printf("  energy: %.6f -> %.6f (drift %.4f%%)\n", res.EWarm, res.EFinal, 100*res.Drift())
	if tr != nil {
		fmt.Println()
		tr.RenderTimeline(os.Stdout, res.FinishAt, 100)
	}
}
