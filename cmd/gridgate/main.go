// Command gridgate is the grid's job-submission front door: an HTTP/JSON
// gateway (internal/gate) wired onto a serve-mode taskfarm. External
// clients POST jobs; the gateway admits them against per-tenant quotas,
// schedules them with weighted fair queueing, injects them into the live
// farm as message-driven tasks, and streams results back — the farm
// masks the wide-area latency, the gate masks the farm.
//
// gridgate is node 0 of a multi-process cluster whose remaining nodes
// run `gridnode -serve` with identical cluster and farm flags:
//
//	gridnode -serve -app taskfarm -node 1 -addrs 127.0.0.1:9101,127.0.0.1:9102 -shards 2 -procs 4 &
//	gridgate -addrs 127.0.0.1:9101,127.0.0.1:9102 -shards 2 -procs 4 -listen 127.0.0.1:8080
//
// Run without -addrs it hosts the whole farm in one process — the
// single-machine deployment the soak benchmark drives.
//
// The HTTP surface (see internal/gate):
//
//	POST /v1/jobs                  {"tenant": "...", "key": "...", "wait": bool}
//	GET  /v1/jobs/{id}             status
//	GET  /v1/jobs/{id}/result      409 until complete
//	GET  /v1/jobs/{id}/events      ndjson status stream
//	GET  /metrics                  registry; ?tenant= narrows, ?format=json|prom
//
// gridgate also hosts the cluster telemetry collector: backends started
// with -telemetry ship metric deltas and trace digests here as
// ControlTelemetry frames, and the merged view is served beside the job
// API:
//
//	GET  /v1/cluster/metrics       aggregated cluster snapshot
//	GET  /v1/cluster/overlap       per-step masked/exposed across nodes
//	GET  /v1/cluster/health        per-node report liveness
//	GET  /v1/cluster/slo           per-tenant burn-rate evaluation
//	GET  /v1/jobs/{id}/trace       one job's cross-process span tree
//	GET  /healthz, /readyz         liveness and readiness probes
//
// SIGTERM/SIGINT stop the runtime, fail in-flight jobs with 503, and
// announce shutdown to the backends.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridmdo/internal/appflags"
	"gridmdo/internal/core"
	"gridmdo/internal/gate"
	"gridmdo/internal/metrics"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/telemetry"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// config carries the parsed command line into run. Cluster and Farm come
// from internal/appflags, shared with cmd/gridnode so the gateway and
// its backends build the identical serve-farm program.
type config struct {
	appflags.Cluster
	appflags.Farm
	appflags.Obs

	listen      string
	tenants     string
	maxInflight int
	submitBatch int
	idemTTL     time.Duration
	sloLatency  time.Duration
	sloBudget   float64

	// onListen, when non-nil, receives the bound HTTP address (tests).
	onListen func(addr string)
	// onRuntime, when non-nil, receives the runtime (tests stop it).
	onRuntime func(rt *core.Runtime)
	// onService, when non-nil, receives the farm service (tests audit it).
	onService func(s *taskfarm.Service)
	// onCollector, when non-nil, receives the telemetry collector (tests
	// read the cluster view without scraping HTTP).
	onCollector func(c *telemetry.Collector)
}

func main() {
	var cfg config
	fs := flag.CommandLine
	cfg.Cluster.Register(fs)
	cfg.Farm.Register(fs)
	cfg.Obs.Register(fs, 0)
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:8080", "HTTP listen address for job submission")
	fs.StringVar(&cfg.tenants, "tenants", "default", "admitted tenants as name[:weight[:maxqueue]],...")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 0, "max tasks in the farm at once (0 = gate default)")
	fs.IntVar(&cfg.submitBatch, "submit-batch", 0, "max jobs coalesced per farm submission (0 = gate default)")
	fs.DurationVar(&cfg.idemTTL, "idem-ttl", 0, "idempotency key lifetime (0 = gate default)")
	fs.DurationVar(&cfg.sloLatency, "slo-latency", 100*time.Millisecond, "per-tenant latency objective for SLO burn tracking")
	fs.Float64Var(&cfg.sloBudget, "slo-budget", 0.01, "SLO error budget (fraction of requests allowed over the objective)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gridgate: %v\n", err)
		os.Exit(1)
	}
}

// parseTenants decodes the -tenants spec: comma-separated entries of
// name, name:weight, or name:weight:maxqueue.
func parseTenants(spec string) ([]gate.TenantConfig, error) {
	if spec == "" {
		return nil, fmt.Errorf("need -tenants with at least one tenant")
	}
	var out []gate.TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		tc := gate.TenantConfig{Name: parts[0]}
		if tc.Name == "" {
			return nil, fmt.Errorf("empty tenant name in %q", spec)
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("bad tenant entry %q (want name[:weight[:maxqueue]])", entry)
		}
		if len(parts) > 1 {
			w, err := strconv.Atoi(parts[1])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight in tenant entry %q", entry)
			}
			tc.Weight = w
		}
		if len(parts) > 2 {
			q, err := strconv.Atoi(parts[2])
			if err != nil || q < 1 {
				return nil, fmt.Errorf("bad maxqueue in tenant entry %q", entry)
			}
			tc.MaxQueue = q
		}
		out = append(out, tc)
	}
	return out, nil
}

func run(cfg config) error {
	tenants, err := parseTenants(cfg.tenants)
	if err != nil {
		return err
	}

	// The gateway IS the serve farm's node 0: it hosts the root chare
	// (where completions surface) and the first dispatcher shard, so a
	// submission's injection and its result delivery never cross a
	// process boundary twice.
	cfg.Serve = true
	single := cfg.Addrs == ""
	var lay *appflags.Layout
	var topo *topology.Topology
	if single {
		split := cfg.Split
		if split == 0 {
			split = cfg.Procs / 2
		}
		if split <= 0 || split >= cfg.Procs {
			return fmt.Errorf("split=%d out of range for %d PEs", split, cfg.Procs)
		}
		topo, err = topology.New([]int{split, cfg.Procs - split}, topology.WithInterLatency(cfg.Latency))
		if err != nil {
			return err
		}
	} else {
		if cfg.Node != 0 {
			return fmt.Errorf("gridgate must be node 0 (got -node %d); backends run gridnode -serve", cfg.Node)
		}
		lay, err = cfg.Cluster.Resolve()
		if err != nil {
			return err
		}
		topo = lay.Topo
	}

	reg := metrics.NewRegistry()
	p := cfg.Farm.Params(cfg.Procs, reg, nil)
	svc, err := taskfarm.NewService(p)
	if err != nil {
		return err
	}
	prog, err := taskfarm.BuildProgram(p)
	if err != nil {
		return err
	}

	// The gateway always hosts the telemetry collector: it is the cluster's
	// coordinator, every backend's control path terminates here, and the
	// job API it serves is where per-job traces are queried. SLO burn
	// tracking rides the collector's JobDone observer hook.
	sloCfg := telemetry.DefaultSLOConfig()
	sloCfg.Objective = cfg.sloLatency
	sloCfg.Budget = cfg.sloBudget
	coll := telemetry.NewCollector(telemetry.CollectorConfig{
		SLO: telemetry.NewSLOTracker(sloCfg),
	})
	if cfg.onCollector != nil {
		cfg.onCollector(coll)
	}
	health := telemetry.NewHealth()
	health.Set("startup", "ingress not open")

	var rt *core.Runtime
	var stack *vmi.Stack
	rtOpts := []core.Option{core.WithMetrics(reg)}
	if !single {
		builder := vmi.NewChainBuilder(0, lay.AddrMap, func(pe int32) int { return lay.NodeOf(int(pe)) }).
			Metrics(reg).
			OnControl(func(f *vmi.Frame) {
				switch f.Dst {
				case vmi.ControlShutdown:
					if rt != nil {
						rt.Stop()
					}
				case vmi.ControlTelemetry:
					_ = coll.Ingest(f.Body) // bad frames are counted, never fatal
				}
			})
		if cfg.Reliable {
			builder.Reliable(vmi.ReliableConfig{})
		}
		stack, err = builder.Build()
		if err != nil {
			return err
		}
		if _, err := stack.Listen(); err != nil {
			return err
		}
		defer stack.Close()
		rtOpts = append(rtOpts, core.WithCluster(core.ClusterConfig{
			Transport: stack,
			NodeOf:    lay.NodeOf,
			Node:      0,
			PELo:      0,
			PEHi:      lay.PerNode,
		}))
	}

	// Tracing: job roots and injection sends recorded here stitch to the
	// backends' execution spans in the collector, so the tracer runs
	// whenever telemetry does.
	var tr *trace.Tracer
	if cfg.TraceOut != "" || cfg.Telemetry {
		tr = trace.NewWithCapacity(cfg.Procs, cfg.TraceRingCap())
		rtOpts = append(rtOpts, core.WithTrace(tr))
	}

	gw, err := gate.New(gate.Config{
		Tenants:     tenants,
		MaxInflight: cfg.maxInflight,
		SubmitBatch: cfg.submitBatch,
		IdemTTL:     cfg.idemTTL,
		Metrics:     reg,
		Observer:    coll,
	}, svc)
	if err != nil {
		return err
	}
	svc.OnResult(gw.OnResult)

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("gate listener: %w", err)
	}
	defer ln.Close()

	// The outer mux layers the cluster view over the gateway's job API.
	// Go 1.22 routing keeps /v1/jobs/{id}/trace out of the gateway's
	// catch-all while leaving every other job route untouched.
	staleAfter := 3 * cfg.TelemetryInterval
	if staleAfter <= 0 {
		staleAfter = 3 * telemetry.DefaultInterval
	}
	mux := http.NewServeMux()
	mux.Handle("/", gw.Handler())
	mux.Handle("GET /v1/jobs/{id}/trace", coll.JobTraceHandler())
	coll.Mount(mux, staleAfter)
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)
	if cfg.Pprof {
		telemetry.MountPprof(mux)
	}
	srv := &http.Server{Handler: mux}

	// -metrics serves the diagnostics surface on a second address for
	// deployments that keep the job API private: the local registry plus
	// the same probes and cluster view.
	if cfg.MetricsAddr != "" {
		dln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer dln.Close()
		diag := http.NewServeMux()
		diag.Handle("/metrics", reg.Handler())
		diag.HandleFunc("/healthz", health.Healthz)
		diag.HandleFunc("/readyz", health.Readyz)
		diag.Handle("GET /v1/jobs/", coll.JobTraceHandler())
		coll.Mount(diag, staleAfter)
		if cfg.Pprof {
			telemetry.MountPprof(diag)
		}
		go func() { _ = http.Serve(dln, diag) }()
		fmt.Fprintf(os.Stderr, "gridgate: diagnostics on http://%s/metrics\n", dln.Addr())
	}

	// The ingress opens only once the runtime's schedulers are live, and
	// closes (failing residual jobs with 503) the moment the runtime
	// exits — the Lifecycle hooks bracket exactly the window in which the
	// farm can absorb work.
	rtOpts = append(rtOpts, core.WithLifecycle(core.Lifecycle{
		OnStart: func() {
			go func() { _ = srv.Serve(ln) }()
			health.Set("startup", "")
			fmt.Fprintf(os.Stderr, "gridgate: accepting jobs on http://%s/v1/jobs\n", ln.Addr())
			if cfg.onListen != nil {
				cfg.onListen(ln.Addr().String())
			}
		},
		OnExit: func(v any, err error) {
			health.Set("shutdown", "runtime exited; failing residual jobs")
			gw.Close(err)
		},
	}))

	rt, err = core.NewRuntime(topo, prog, rtOpts...)
	if err != nil {
		return err
	}
	svc.Bind(rt)
	if cfg.onRuntime != nil {
		cfg.onRuntime(rt)
	}
	if cfg.onService != nil {
		cfg.onService(svc)
	}

	// The gateway's own telemetry agent feeds the embedded collector
	// directly — no control frame for the zero-hop case.
	if cfg.Telemetry {
		agent, err := telemetry.NewAgent(telemetry.AgentConfig{
			Node:     0,
			Registry: reg,
			Tracer:   tr,
			Epoch:    rt.Epoch(),
			NumPE:    cfg.Procs,
			Interval: cfg.TelemetryInterval,
			SpanFilter: func(ev trace.Event) bool {
				return ev.MsgKind != byte(core.KindQD) && ev.MsgKind != byte(core.KindStop)
			},
			Send: func(b []byte) error { return coll.Ingest(b) },
		})
		if err != nil {
			return err
		}
		agent.Start()
		defer agent.Stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		if sig, ok := <-sigCh; ok {
			fmt.Fprintf(os.Stderr, "gridgate: caught %v, stopping\n", sig)
			health.Set("draining", "shutdown signal received")
			rt.Stop()
		}
	}()

	if !single {
		fmt.Fprintf(os.Stderr, "gridgate 0/%d: hosting PEs [0,%d) of %s on %s\n",
			lay.Nodes, lay.PerNode, topo, lay.AddrMap[0])
	}

	if _, err := rt.Run(); err != nil {
		return err
	}
	_ = srv.Close()

	fmt.Printf("gridgate: %d jobs completed, %d double-executions\n", svc.Completed(), svc.DoubleExecs())

	if !single {
		// Announce shutdown to the backends, then give the frames time to
		// flush before the deferred stack.Close tears the connections down.
		for n := 1; n < lay.Nodes; n++ {
			if err := stack.SendControl(n, &vmi.Frame{Src: 0, Dst: vmi.ControlShutdown}); err != nil {
				fmt.Fprintf(os.Stderr, "gridgate: shutdown announce to node %d: %v\n", n, err)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}

	if cfg.TraceOut != "" && tr != nil {
		peHi := cfg.Procs
		if !single {
			peHi = lay.PerNode
		}
		if err := writeTraceSnapshot(cfg.TraceOut, tr, peHi, rt.Epoch()); err != nil {
			return fmt.Errorf("trace snapshot: %w", err)
		}
	}

	if cfg.MetricsOut != "" {
		f, err := os.Create(cfg.MetricsOut)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// writeTraceSnapshot dumps node 0's trace for cmd/gridtrace, epoch-stamped
// so it merges with snapshots from separately started backends.
func writeTraceSnapshot(path string, tr *trace.Tracer, peHi int, epoch time.Time) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := tr.Snapshot(0, 0, peHi, time.Since(epoch))
	snap.EpochUnixNs = epoch.UnixNano()
	if err := snap.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
