package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/appflags"
	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/telemetry"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestParseTenants(t *testing.T) {
	tcs, err := parseTenants("acme:3:128, initech, batch:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 3 || tcs[0].Weight != 3 || tcs[0].MaxQueue != 128 ||
		tcs[1].Name != "initech" || tcs[2].Weight != 2 || tcs[2].MaxQueue != 0 {
		t.Errorf("parsed %+v", tcs)
	}
	for _, bad := range []string{"", "a:x", "a:0", "a:1:0", "a:1:2:3", ":3"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

type jobReply struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Duplicate bool     `json:"duplicate"`
	Value     *float64 `json:"value"`
}

func submitJob(t *testing.T, base, body string) jobReply {
	t.Helper()
	resp, err := http.Post("http://"+base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var jr jobReply
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// TestGridgateStandalone boots the whole gateway stack in one process:
// HTTP ingress, admission, the serve farm, and result retrieval —
// including idempotent resubmits that must map to the original job.
func TestGridgateStandalone(t *testing.T) {
	cfg := config{
		Cluster: appflags.Cluster{Procs: 4, Latency: time.Millisecond},
		Farm:    appflags.Farm{Shards: 2, Batch: 8, Prefetch: 2, Spin: 200, Skew: 1, Steal: true},
		listen:  "127.0.0.1:0",
		tenants: "acme:2,initech",
	}
	ready := make(chan string, 1)
	rts := make(chan *core.Runtime, 1)
	svcs := make(chan *taskfarm.Service, 1)
	cfg.onListen = func(addr string) { ready <- addr }
	cfg.onRuntime = func(rt *core.Runtime) { rts <- rt }
	cfg.onService = func(s *taskfarm.Service) { svcs <- s }
	errs := make(chan error, 1)
	go func() { errs <- run(cfg) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("gate never came up")
	}
	rt, svc := <-rts, <-svcs

	// Submit with wait=true from both tenants, a third of the keys
	// duplicated. Duplicates must return the original completed job.
	const jobs = 60
	var wg sync.WaitGroup
	idByKey := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "acme"
			if i%2 == 1 {
				tenant = "initech"
			}
			jr := submitJob(t, addr, fmt.Sprintf(`{"tenant":%q,"key":"k%d","wait":true}`, tenant, i))
			if jr.State != "done" || jr.Value == nil {
				t.Errorf("job %d: %+v", i, jr)
			}
			idByKey[i] = jr.ID
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i += 3 {
		tenant := "acme"
		if i%2 == 1 {
			tenant = "initech"
		}
		jr := submitJob(t, addr, fmt.Sprintf(`{"tenant":%q,"key":"k%d"}`, tenant, i))
		if !jr.Duplicate || jr.ID != idByKey[i] {
			t.Errorf("resubmit k%d returned %+v, want duplicate of %s", i, jr, idByKey[i])
		}
	}

	// The farm must have executed each distinct job exactly once.
	if got := svc.Completed(); got != jobs {
		t.Errorf("farm completed %d, want %d", got, jobs)
	}
	if d := svc.DoubleExecs(); d != 0 {
		t.Errorf("%d double executions", d)
	}

	// Per-tenant metrics are visible through the gate's own endpoint.
	resp, err := http.Get("http://" + addr + "/metrics?tenant=acme&format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := snap.Value("gate_jobs_completed_total"); v != jobs/2 {
		t.Errorf("acme completed %d, want %d", v, jobs/2)
	}

	rt.Stop()
	select {
	case err := <-errs:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("gridgate never exited")
	}

	// After shutdown the ingress must be gone.
	if _, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(`{"tenant":"acme"}`)); err == nil {
		t.Error("ingress still accepting after shutdown")
	}
}

// serveBackend assembles what `gridnode -serve` runs: a worker node of
// the serve farm over the real TCP chain, stopping on the gateway's
// shutdown announcement.
func serveBackend(t *testing.T, cfg config, node int, errs chan<- error) {
	lay, err := cfg.Cluster.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	farm := cfg.Farm
	farm.Serve = true
	p := farm.Params(cfg.Procs, reg, nil)
	prog, err := taskfarm.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var rt *core.Runtime
	var mu sync.Mutex
	builder := vmi.NewChainBuilder(node, lay.AddrMap, func(pe int32) int { return lay.NodeOf(int(pe)) }).
		Metrics(reg).
		OnControl(func(f *vmi.Frame) {
			if f.Dst == vmi.ControlShutdown {
				mu.Lock()
				r := rt
				mu.Unlock()
				if r != nil {
					r.Stop()
				}
			}
		})
	if cfg.Reliable {
		builder.Reliable(vmi.ReliableConfig{})
	}
	stack, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Listen(); err != nil {
		t.Fatal(err)
	}
	rtOpts := []core.Option{
		core.WithCluster(core.ClusterConfig{
			Transport: stack,
			NodeOf:    lay.NodeOf,
			Node:      node,
			PELo:      lay.PELo(node),
			PEHi:      lay.PEHi(node),
		}),
		core.WithMetrics(reg),
	}
	var tr *trace.Tracer
	if cfg.Telemetry {
		tr = trace.NewWithCapacity(cfg.Procs, trace.DefaultCapacity)
		rtOpts = append(rtOpts, core.WithTrace(tr))
	}
	r, err := core.NewRuntime(lay.Topo, prog, rtOpts...)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	rt = r
	mu.Unlock()
	var agent *telemetry.Agent
	if cfg.Telemetry {
		agent, err = telemetry.NewAgent(telemetry.AgentConfig{
			Node: node, Registry: reg, Tracer: tr,
			Epoch: r.Epoch(), NumPE: cfg.Procs,
			Interval: cfg.TelemetryInterval,
			Send: func(b []byte) error {
				return stack.SendControl(0, &vmi.Frame{Src: int32(node), Dst: vmi.ControlTelemetry, Body: b})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		agent.Start()
	}
	go func() {
		_, err := r.Run()
		if agent != nil {
			agent.Stop()
		}
		stack.Close()
		errs <- err
	}()
}

// TestGridgateClusterBackend runs the full deployment shape in-process:
// gridgate as node 0, a -serve backend as node 1, jobs flowing over the
// gate's HTTP ingress and executing on both nodes' PEs. The reliability
// layer is on, as in the CI smoke: cross-node job injection uses
// rt.Post, whose frames must carry a truthful source PE or the
// receiver's acks route back to itself and the farm wedges.
func TestGridgateClusterBackend(t *testing.T) {
	addrs := freePort(t) + "," + freePort(t)
	cfg := config{
		Cluster: appflags.Cluster{Addrs: addrs, Procs: 4, Latency: time.Millisecond, Reliable: true},
		Farm:    appflags.Farm{Shards: 2, Batch: 8, Prefetch: 2, Spin: 200, Skew: 1, Steal: true},
		listen:  "127.0.0.1:0",
		tenants: "acme",
	}

	backendErr := make(chan error, 1)
	backendCfg := cfg
	backendCfg.Node = 1
	serveBackend(t, backendCfg, 1, backendErr)

	ready := make(chan string, 1)
	rts := make(chan *core.Runtime, 1)
	svcs := make(chan *taskfarm.Service, 1)
	cfg.onListen = func(addr string) { ready <- addr }
	cfg.onRuntime = func(rt *core.Runtime) { rts <- rt }
	cfg.onService = func(s *taskfarm.Service) { svcs <- s }
	gateErr := make(chan error, 1)
	go func() { gateErr <- run(cfg) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(15 * time.Second):
		t.Fatal("gate never came up")
	}
	rt, svc := <-rts, <-svcs

	const jobs = 40
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr := submitJob(t, addr, fmt.Sprintf(`{"tenant":"acme","key":"c%d","wait":true}`, i))
			if jr.State != "done" {
				t.Errorf("job %d: %+v", i, jr)
			}
		}(i)
	}
	wg.Wait()
	if got, d := svc.Completed(), svc.DoubleExecs(); got != jobs || d != 0 {
		t.Errorf("completed %d (want %d), doubles %d", got, jobs, d)
	}

	rt.Stop()
	for _, ch := range []chan error{gateErr, backendErr} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("process never exited")
		}
	}
}

// TestGridgateTelemetryTrace is the end-to-end telemetry assertion over a
// real TCP deployment: gridgate (collector) as node 0, a -telemetry
// backend as node 1. Jobs submitted over HTTP must yield (a) a cluster
// metrics view whose worker task counter aggregates to the exact
// submitted total, and (b) at least one job trace whose span tree crosses
// both processes with no broken parent links.
func TestGridgateTelemetryTrace(t *testing.T) {
	addrs := freePort(t) + "," + freePort(t)
	cfg := config{
		Cluster: appflags.Cluster{Addrs: addrs, Procs: 4, Latency: time.Millisecond, Reliable: true},
		Farm:    appflags.Farm{Shards: 2, Batch: 4, Prefetch: 2, Spin: 2000, Skew: 1},
		Obs:     appflags.Obs{Telemetry: true, TelemetryInterval: 50 * time.Millisecond},
		listen:  "127.0.0.1:0",
		tenants: "acme",
	}

	backendErr := make(chan error, 1)
	backendCfg := cfg
	backendCfg.Node = 1
	serveBackend(t, backendCfg, 1, backendErr)

	ready := make(chan string, 1)
	rts := make(chan *core.Runtime, 1)
	colls := make(chan *telemetry.Collector, 1)
	cfg.onListen = func(addr string) { ready <- addr }
	cfg.onRuntime = func(rt *core.Runtime) { rts <- rt }
	cfg.onCollector = func(c *telemetry.Collector) { colls <- c }
	gateErr := make(chan error, 1)
	go func() { gateErr <- run(cfg) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(15 * time.Second):
		t.Fatal("gate never came up")
	}
	rt, coll := <-rts, <-colls

	const jobs = 30
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr := submitJob(t, addr, fmt.Sprintf(`{"tenant":"acme","key":"t%d","wait":true}`, i))
			if jr.State != "done" {
				t.Errorf("job %d: %+v", i, jr)
			}
			ids[i] = jr.ID
		}(i)
	}
	wg.Wait()

	// Live aggregation: every node's worker counter reaches the collector
	// within a few reporting periods, and their cluster-wide sum is the
	// exact number of tasks the farm executed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := coll.ClusterMetrics().Value("taskfarm_worker_tasks_total"); v == jobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster worker counter stuck at %d, want %d",
				coll.ClusterMetrics().Value("taskfarm_worker_tasks_total"), jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ns := coll.Nodes(); len(ns) != 2 {
		t.Errorf("collector heard from %d nodes, want 2: %+v", len(ns), ns)
	}

	// Job tracing: some job's span tree must cross both processes. Spans
	// trickle in over a couple of reports (the resend factor), so poll.
	var crossed *telemetry.JobTraceDoc
	for time.Now().Before(deadline) && crossed == nil {
		for _, id := range ids {
			doc, ok := coll.JobTrace(id)
			if ok && len(doc.Nodes) >= 2 {
				crossed = doc
				break
			}
		}
		if crossed == nil {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if crossed == nil {
		t.Fatal("no job trace crossed two processes")
	}
	seen := make(map[uint64]bool, len(crossed.Spans))
	for _, s := range crossed.Spans {
		seen[s.ID] = true
	}
	if !seen[crossed.Root] {
		t.Error("trace lost its own root span")
	}
	for _, s := range crossed.Spans {
		if s.ID != crossed.Root && !seen[s.Parent] {
			t.Errorf("span %#x has broken parent link %#x", s.ID, s.Parent)
		}
	}

	// The same trace is served over HTTP next to the job API, and the
	// cluster endpoints answer on the gate's own listener.
	for _, path := range []string{
		"/v1/jobs/" + crossed.JobID + "/trace",
		"/v1/cluster/metrics?format=json",
		"/v1/cluster/health",
		"/v1/cluster/slo",
		"/healthz", "/readyz",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	// SLO: 30 fast jobs against a 100ms objective must not be burning.
	var slo struct {
		Tenants []telemetry.SLOStatus `json:"tenants"`
	}
	resp, err := http.Get("http://" + addr + "/v1/cluster/slo")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slo.Tenants) != 1 || slo.Tenants[0].Firing {
		t.Errorf("slo view: %+v", slo.Tenants)
	}

	rt.Stop()
	for _, ch := range []chan error{gateErr, backendErr} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("process never exited")
		}
	}
}
