// Command gridsim regenerates the paper's evaluation artifacts: Figure 3
// and Table 1 (five-point stencil), Figure 4 and Table 2 (LeanMD), and the
// DESIGN.md ablations. Results print as aligned text tables; -csv also
// writes machine-readable files.
//
// Usage:
//
//	gridsim -experiment all                # everything, paper-scale
//	gridsim -experiment figure3 -fast      # scaled-down quick look
//	gridsim -experiment table1 -skip-realtime
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gridmdo/internal/appflags"
	"gridmdo/internal/bench"
	"gridmdo/internal/metrics"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "figure3|figure4|table1|table2|ablations|gridlb-tcp|classes|sdsc|irregular|taskfarm-scale|membership|gate-soak|telemetry|sim-scale|all")
		fast         = flag.Bool("fast", false, "use the scaled-down fast profile")
		skipRealtime = flag.Bool("skip-realtime", false, "skip wall-clock (host) columns in tables 1 and 2")
		csvDir       = flag.String("csv", "", "also write CSV files into this directory")
		svgDir       = flag.String("svg", "", "also write SVG charts (figures only) into this directory")
		metricsOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot of the real-time runs to this file")
		farmJSON     = flag.String("farm-json", "", "write the taskfarm-scale throughput curves as JSON to this file (e.g. BENCH_taskfarm.json)")
		memJSON      = flag.String("membership-json", "", "write the membership recovery measurements as JSON to this file (e.g. BENCH_membership.json)")
		gateJSON     = flag.String("gate-json", "", "write the gateway soak measurements as JSON to this file (e.g. BENCH_gate.json)")
		telemJSON    = flag.String("telemetry-json", "", "write the telemetry-plane measurements as JSON to this file (e.g. BENCH_telemetry.json)")
		traceOut     = flag.String("trace-out", "", "write per-run trace snapshots and overlap reports of the real-time runs into this directory (analyze with gridtrace)")
		scaleJSON    = flag.String("simscale-json", "", "write the engine-scaling measurements as JSON to this file (e.g. BENCH_simscale.json)")
		quiet        = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	var eng appflags.Engine
	eng.Register(flag.CommandLine)
	flag.Parse()
	if err := eng.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		os.Exit(2)
	}
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })

	profile := bench.PaperProfile()
	if *fast {
		profile = bench.FastProfile()
	}
	// The engine flags steer the sim-scale sweep: -topo pins the machine,
	// -engine seq drops the parallel arms, -engine par narrows them to
	// -sim-workers (the sequential arm always runs — it is the reference
	// the checksums and speedups are measured against), and -pack-cold
	// resizes the big arm's live set.
	if flagSet["topo"] {
		profile.SimScale.Spec = eng.Topo
	}
	if flagSet["engine"] || flagSet["sim-workers"] {
		switch eng.Engine {
		case "seq":
			profile.SimScale.Workers = nil
		case "par":
			profile.SimScale.Workers = []int{eng.Workers}
		}
	}
	if flagSet["pack-cold"] {
		profile.SimScale.Big.PackCap = eng.PackCold
	}
	if *metricsOut != "" {
		profile.Metrics = metrics.NewRegistry()
	}
	profile.TraceDir = *traceOut
	progress := os.Stderr
	if *quiet {
		progress = nil
	}

	run := func(name string) error {
		start := time.Now()
		var csvName string
		var render func() error
		switch name {
		case "figure3":
			fig, err := bench.Figure3(progress, profile)
			if err != nil {
				return err
			}
			csvName = "figure3.csv"
			render = func() error {
				fig.Render(os.Stdout)
				if err := writeSVG(*svgDir, "figure3.svg", fig); err != nil {
					return err
				}
				return writeCSV(*csvDir, csvName, fig.CSV)
			}
		case "figure4":
			fig, err := bench.Figure4(progress, profile)
			if err != nil {
				return err
			}
			csvName = "figure4.csv"
			render = func() error {
				fig.Render(os.Stdout)
				if err := writeSVG(*svgDir, "figure4.svg", fig); err != nil {
					return err
				}
				return writeCSV(*csvDir, csvName, fig.CSV)
			}
		case "table1":
			tbl, err := bench.Table1(progress, profile, *skipRealtime)
			if err != nil {
				return err
			}
			csvName = "table1.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "table2":
			tbl, err := bench.Table2(progress, profile, *skipRealtime)
			if err != nil {
				return err
			}
			csvName = "table2.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "ablations":
			prio, err := bench.AblationPriority(progress, profile)
			if err != nil {
				return err
			}
			lb, err := bench.AblationGridLB(progress, profile)
			if err != nil {
				return err
			}
			het, err := bench.AblationHetero(progress, profile)
			if err != nil {
				return err
			}
			virt, err := bench.AblationVirtualization(progress, profile)
			if err != nil {
				return err
			}
			bun, err := bench.AblationBundling(progress, profile)
			if err != nil {
				return err
			}
			render = func() error {
				prio.Render(os.Stdout)
				lb.Render(os.Stdout)
				het.Render(os.Stdout)
				virt.Render(os.Stdout)
				bun.Render(os.Stdout)
				if err := writeCSV(*csvDir, "ablation_priority.csv", prio.CSV); err != nil {
					return err
				}
				if err := writeCSV(*csvDir, "ablation_gridlb.csv", lb.CSV); err != nil {
					return err
				}
				if err := writeCSV(*csvDir, "ablation_hetero.csv", het.CSV); err != nil {
					return err
				}
				if err := writeCSV(*csvDir, "ablation_bundling.csv", bun.CSV); err != nil {
					return err
				}
				return writeCSV(*csvDir, "ablation_virtualization.csv", virt.CSV)
			}
		case "gridlb-tcp":
			tbl, err := bench.GridLBTCP(progress, profile)
			if err != nil {
				return err
			}
			csvName = "gridlb_tcp.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "classes":
			tbl, err := bench.Classes(progress, profile)
			if err != nil {
				return err
			}
			csvName = "classes.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "irregular":
			tbl, err := bench.Irregular(progress, profile)
			if err != nil {
				return err
			}
			csvName = "irregular.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "sdsc":
			tbl, err := bench.SDSC(progress, profile)
			if err != nil {
				return err
			}
			csvName = "sdsc.csv"
			render = func() error { tbl.Render(os.Stdout); return writeCSV(*csvDir, csvName, tbl.CSV) }
		case "taskfarm-scale":
			tbl, rep, err := bench.TaskfarmScale(progress, profile)
			if err != nil {
				return err
			}
			csvName = "taskfarm_scale.csv"
			render = func() error {
				tbl.Render(os.Stdout)
				if !rep.ChecksumsMatch {
					fmt.Fprintln(os.Stderr, "gridsim: WARNING: taskfarm checksums diverged across configurations")
				}
				if *farmJSON != "" {
					if err := writeFarmJSON(*farmJSON, rep); err != nil {
						return err
					}
				}
				return writeCSV(*csvDir, csvName, tbl.CSV)
			}
		case "membership":
			tbl, rep, err := bench.MembershipRecovery(progress, profile)
			if err != nil {
				return err
			}
			csvName = "membership.csv"
			render = func() error {
				tbl.Render(os.Stdout)
				if !rep.ChecksumsMatch {
					fmt.Fprintln(os.Stderr, "gridsim: WARNING: membership checksums diverged from the undisturbed baseline")
				}
				if *memJSON != "" {
					if err := writeMembershipJSON(*memJSON, rep); err != nil {
						return err
					}
				}
				return writeCSV(*csvDir, csvName, tbl.CSV)
			}
		case "gate-soak":
			tbl, rep, err := bench.GateSoak(progress, profile)
			if err != nil {
				if tbl != nil {
					tbl.Render(os.Stdout)
				}
				if rep != nil && *gateJSON != "" {
					_ = writeGateJSON(*gateJSON, rep)
				}
				return err
			}
			csvName = "gate_soak.csv"
			render = func() error {
				tbl.Render(os.Stdout)
				if *gateJSON != "" {
					if err := writeGateJSON(*gateJSON, rep); err != nil {
						return err
					}
				}
				return writeCSV(*csvDir, csvName, tbl.CSV)
			}
		case "telemetry":
			tbl, rep, err := bench.Telemetry(progress, profile)
			if err != nil {
				if tbl != nil {
					tbl.Render(os.Stdout)
				}
				if rep != nil && *telemJSON != "" {
					_ = writeTelemetryJSON(*telemJSON, rep)
				}
				return err
			}
			csvName = "telemetry.csv"
			render = func() error {
				tbl.Render(os.Stdout)
				if *telemJSON != "" {
					if err := writeTelemetryJSON(*telemJSON, rep); err != nil {
						return err
					}
				}
				return writeCSV(*csvDir, csvName, tbl.CSV)
			}
		case "sim-scale":
			tbl, rep, err := bench.SimScale(progress, profile)
			if err != nil {
				return err
			}
			csvName = "sim_scale.csv"
			render = func() error {
				tbl.Render(os.Stdout)
				if !rep.ChecksumsMatch {
					fmt.Fprintln(os.Stderr, "gridsim: WARNING: parallel-engine checksums diverged from the sequential reference")
				}
				if !rep.Big.WithinBound {
					fmt.Fprintln(os.Stderr, "gridsim: WARNING: cold-store arm exceeded its heap bound")
				}
				if *scaleJSON != "" {
					if err := writeSimScaleJSON(*scaleJSON, rep); err != nil {
						return err
					}
				}
				return writeCSV(*csvDir, csvName, tbl.CSV)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err := render(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"figure3", "table1", "figure4", "table2", "ablations", "gridlb-tcp", "classes", "sdsc", "irregular", "taskfarm-scale", "membership", "gate-soak", "telemetry", "sim-scale"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if len(profile.Metrics.Snapshot().Series) == 0 {
			fmt.Fprintf(os.Stderr, "gridsim: warning: no metrics recorded — metrics cover the real-time/TCP runs (table1, table2), not virtual-time-only experiments\n")
		}
		if err := writeSnapshot(*metricsOut, profile.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: metrics snapshot: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeFarmJSON dumps the taskfarm-scale report (the BENCH_taskfarm.json
// artifact).
func writeFarmJSON(path string, rep *bench.FarmReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMembershipJSON dumps the membership recovery report (the
// BENCH_membership.json artifact).
func writeMembershipJSON(path string, rep *bench.MembershipReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeGateJSON dumps the gateway soak report (the BENCH_gate.json
// artifact).
func writeGateJSON(path string, rep *bench.GateReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTelemetryJSON dumps the telemetry-plane report (the
// BENCH_telemetry.json artifact).
func writeTelemetryJSON(path string, rep *bench.TelemetryReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSimScaleJSON dumps the engine-scaling report (the
// BENCH_simscale.json artifact).
func writeSimScaleJSON(path string, rep *bench.SimScaleReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSnapshot dumps the accumulated real-time-run registry as indented
// JSON, next to wherever the caller keeps the CSV results.
func writeSnapshot(path string, reg *metrics.Registry) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSVG(dir, name string, fig *bench.Figure) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fig.SVG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir, name string, fn func(w io.Writer)) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	fn(f)
	return f.Close()
}
