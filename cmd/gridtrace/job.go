// Job-trace export: converts the collector's /v1/jobs/{id}/trace JSON
// (one job's cross-process span tree) into Chrome trace-event JSON. The
// merged-snapshot path in chrome.go works from raw events; this one works
// from the collector's already-stitched spans, whose timestamps are wall
// clock (each agent's report re-based them), so spans from separately
// started processes line up without further work.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"gridmdo/internal/telemetry"
)

// exportJobFile reads a JobTraceDoc from path ("-" for stdin, so the
// collector endpoint pipes straight in: curl .../trace | gridtrace
// -job -) and writes Chrome trace JSON to out (stdout when empty).
func exportJobFile(path, out string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var doc telemetry.JobTraceDoc
	dec := json.NewDecoder(in)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: not a job trace document: %w", path, err)
	}
	if doc.Root == 0 || len(doc.Spans) == 0 {
		return fmt.Errorf("%s: no spans (job not admitted at this collector, or trace aged out)", path)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := writeJobChrome(w, &doc); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("wrote Chrome trace for job %s (%d spans, nodes %v, complete=%v) to %s\n",
			doc.JobID, len(doc.Spans), doc.Nodes, doc.Complete, out)
	}
	return nil
}

// writeJobChrome emits one X slice per span (begin→end on the executing
// node's PE row; the HTTP-side root rides a synthetic "gate" row) plus
// flow arrows for every parent link, so Perfetto draws the causal tree
// across process rows.
func writeJobChrome(w io.Writer, doc *telemetry.JobTraceDoc) error {
	t0 := int64(math.MaxInt64)
	for _, s := range doc.Spans {
		for _, t := range []int64{s.SendUnixNs, s.EnqueueUnixNs, s.BeginUnixNs, s.EndUnixNs} {
			if t > 0 && t < t0 {
				t0 = t
			}
		}
	}
	if t0 == math.MaxInt64 {
		return fmt.Errorf("job %s: spans carry no timestamps", doc.JobID)
	}
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	byID := make(map[uint64]telemetry.SpanRecord, len(doc.Spans))
	for _, s := range doc.Spans {
		byID[s.ID] = s
	}
	// spanStart is the earliest known point of a span; flow arrows land here.
	spanStart := func(s telemetry.SpanRecord) int64 {
		for _, t := range []int64{s.SendUnixNs, s.EnqueueUnixNs, s.BeginUnixNs, s.EndUnixNs} {
			if t > 0 {
				return t
			}
		}
		return t0
	}

	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	for _, s := range doc.Spans {
		name, cat := msgKindName(s.Kind), "span"
		if s.ID == doc.Root {
			name, cat = "job "+doc.JobID, "job"
		}
		begin, end := s.BeginUnixNs, s.EndUnixNs
		if begin == 0 {
			begin = spanStart(s)
		}
		dur := 0.0
		if end > begin {
			dur = us(end) - us(begin)
		}
		emit(`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"id":%d,"parent":%d}}`,
			name, cat, us(begin), dur, s.Node, s.PE, s.ID, s.Parent)

		// Flight slice: send→enqueue is the wire (plus injected latency).
		if s.SendUnixNs > 0 && s.EnqueueUnixNs > s.SendUnixNs {
			emit(`{"name":"flight","cat":"flight","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"id":%d}}`,
				us(s.SendUnixNs), us(s.EnqueueUnixNs)-us(s.SendUnixNs), s.Node, s.PE, s.ID)
		}

		if p, ok := byID[s.Parent]; ok {
			emit(`{"name":"cause","cat":"flow","ph":"s","id":%d,"ts":%.3f,"pid":%d,"tid":%d}`,
				s.ID, us(spanStart(p)), p.Node, p.PE)
			emit(`{"name":"cause","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%.3f,"pid":%d,"tid":%d}`,
				s.ID, us(spanStart(s)), s.Node, s.PE)
		}
	}
	for _, n := range doc.Nodes {
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"node %d"}}`, n, n)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}
