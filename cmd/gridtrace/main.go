// Command gridtrace is the trace analyzer: it merges the per-node trace
// snapshots written by gridnode, gridsim, and the bench harness back into
// one causal event stream (message IDs are node-unique, so cross-node
// send→enqueue edges reconnect) and reports, Projections-style:
//
//   - a per-PE terminal timeline (busy fraction per time bucket),
//   - the overlap profile — compute vs. comm-wait vs. masked latency,
//     run-wide and per application step,
//   - the critical path of the run (flight / queue / compute per hop),
//
// and optionally exports the stream as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing:
//
//	gridtrace traces/*.trace.json
//	gridtrace -chrome run.json traces/node0.trace.json traces/node1.trace.json
//
// With -job it instead converts one job's cross-process span tree — the
// JSON served by the collector at /v1/jobs/{id}/trace — to the same
// Chrome format:
//
//	curl -s http://gate:8080/v1/jobs/J1/trace > j1.json
//	gridtrace -job j1.json -chrome j1.chrome.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/trace"
)

func main() {
	var (
		buckets  = flag.Int("buckets", 100, "timeline buckets (0 disables the timeline)")
		steps    = flag.Bool("steps", true, "per-step overlap table (needs step marks in the trace)")
		critical = flag.Bool("critpath", true, "critical-path analysis")
		chrome   = flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto/chrome://tracing) to this file")
		job      = flag.String("job", "", "convert a /v1/jobs/{id}/trace JSON document (\"-\" reads stdin) to Chrome trace JSON (-chrome, or stdout) and exit")
	)
	flag.Parse()
	if *job != "" {
		if err := exportJobFile(*job, *chrome); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gridtrace [flags] snapshot.trace.json ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// A multi-file merge skips unreadable or corrupt snapshots (a killed
	// node leaves a truncated file behind) and analyzes the survivors;
	// only an empty survivor set is fatal.
	snaps := make([]*trace.Snapshot, 0, flag.NArg())
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			warn(err)
			continue
		}
		s, err := trace.ReadSnapshot(f)
		f.Close()
		if err != nil {
			warn(fmt.Errorf("%s: skipped: %w", path, err))
			continue
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		fatal(fmt.Errorf("no readable snapshots among %d file(s)", flag.NArg()))
	}

	if err := analyze(os.Stdout, snaps, analyzeOpts{
		Buckets:  *buckets,
		Steps:    *steps,
		CritPath: *critical,
	}); err != nil {
		fatal(err)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		evs, _, _ := trace.Merge(snaps...)
		err = trace.WriteChrome(f, evs, nodeOfFunc(snaps))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", *chrome)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gridtrace: %v\n", err)
	os.Exit(1)
}

func warn(err error) {
	fmt.Fprintf(os.Stderr, "gridtrace: warning: %v\n", err)
}

type analyzeOpts struct {
	Buckets  int
	Steps    bool
	CritPath bool
}

// analyze merges the snapshots and writes every requested report to w.
func analyze(w io.Writer, snaps []*trace.Snapshot, opts analyzeOpts) error {
	if len(snaps) == 0 {
		return fmt.Errorf("no snapshots")
	}
	evs, numPE, horizon := trace.Merge(snaps...)
	var dropped uint64
	for _, s := range snaps {
		dropped += s.Dropped
	}
	fmt.Fprintf(w, "%d events from %d snapshot(s), %d PEs, horizon %v",
		len(evs), len(snaps), numPE, horizon.Round(time.Microsecond))
	if dropped > 0 {
		fmt.Fprintf(w, " (%d events lost to ring wrap)", dropped)
	}
	fmt.Fprintln(w)

	if opts.Buckets > 0 {
		fmt.Fprintln(w)
		trace.RenderTimelineEvents(w, evs, numPE, horizon, opts.Buckets)
	}

	fmt.Fprintln(w)
	trace.ComputeOverlap(evs, numPE, horizon).Report(w)

	if opts.Steps {
		if so := trace.StepOverlaps(evs, numPE, horizon); len(so) > 1 || (len(so) == 1 && so[0].Step >= 0) {
			fmt.Fprintln(w)
			fmt.Fprintf(w, "per-step overlap:\n  %-6s %12s %12s %8s\n", "step", "masked", "exposed", "masked%")
			for _, s := range so {
				tot := s.Totals()
				fmt.Fprintf(w, "  %-6d %12v %12v %7.1f%%\n",
					s.Step, tot.Masked, tot.Exposed, 100*s.MaskedFraction())
			}
		}
	}

	if opts.CritPath {
		fmt.Fprintln(w)
		trace.CriticalPath(appEvents(evs)).Report(w, msgKindName)
	}
	return nil
}

// appEvents drops runtime-protocol traffic (quiescence probes, shutdown)
// from the stream so the critical path terminates at the application's
// last handler, not at the QD chatter that follows it.
func appEvents(evs []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(evs))
	for _, ev := range evs {
		switch core.Kind(ev.MsgKind) {
		case core.KindQD, core.KindStop:
			continue
		}
		out = append(out, ev)
	}
	return out
}

// nodeOfFunc maps global PE → node using the snapshots' PE ranges.
func nodeOfFunc(snaps []*trace.Snapshot) func(pe int) int {
	return func(pe int) int {
		for _, s := range snaps {
			if pe >= s.PELo && pe < s.PEHi {
				return s.Node
			}
		}
		return 0
	}
}

func msgKindName(k byte) string {
	switch core.Kind(k) {
	case core.KindApp:
		return "app"
	case core.KindStart:
		return "start"
	case core.KindReduce:
		return "reduce"
	case core.KindLB:
		return "lb"
	case core.KindQD:
		return "qd"
	case core.KindBundle:
		return "bundle"
	case core.KindStop:
		return "stop"
	}
	return fmt.Sprintf("kind%d", k)
}
