package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gridmdo/internal/bench"
	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/trace"
)

// traceStencilTCP runs the two-node TCP stencil with a tracer shared by
// both runtimes and returns the run's snapshot (all PEs, one snapshot —
// the merge path is exercised by splitting it per node below).
func traceStencilTCP(t *testing.T, procs, objects int, lat time.Duration) *trace.Snapshot {
	t.Helper()
	cfg := bench.StencilConfig{
		Width: 1024, Height: 1024,
		Steps: 8, Warmup: 2,
		Model: stencil.DefaultModel(),
	}
	tr := trace.New(procs)
	start := time.Now()
	if _, err := bench.StencilTCP(cfg, procs, objects, lat, core.WithTrace(tr)); err != nil {
		t.Fatalf("stencil tcp V=%d: %v", objects, err)
	}
	return tr.Snapshot(0, 0, procs, time.Since(start))
}

// splitSnapshot carves one all-PE snapshot into per-node snapshots, as if
// each node had written its own file.
func splitSnapshot(s *trace.Snapshot, procs int) []*trace.Snapshot {
	half := procs / 2
	out := []*trace.Snapshot{
		{Node: 0, PELo: 0, PEHi: half, Horizon: s.Horizon},
		{Node: 1, PELo: half, PEHi: procs, Horizon: s.Horizon},
	}
	for _, ev := range s.Events {
		n := 0
		if ev.PE >= half {
			n = 1
		}
		out[n].Events = append(out[n].Events, ev)
	}
	return out
}

// traceStencilSim runs the two-cluster stencil on the virtual-time engine
// and returns its snapshot. Virtual time models the PEs as genuinely
// parallel regardless of host core count, so the overlap measurements are
// exact and deterministic — this is the executor the paper's "artificial
// latency" experiments use.
func traceStencilSim(t *testing.T, procs, objects int, lat time.Duration) *trace.Snapshot {
	t.Helper()
	cfg := bench.StencilConfig{
		Width: 1024, Height: 1024,
		Steps: 8, Warmup: 2,
		Model: stencil.DefaultModel(),
	}
	tr := trace.New(procs)
	res, err := bench.StencilSim(cfg, procs, objects, lat, sim.Options{Trace: tr})
	if err != nil {
		t.Fatalf("stencil sim V=%d: %v", objects, err)
	}
	return tr.Snapshot(0, 0, procs, res.FinishAt)
}

// TestMaskedFractionGrowsWithVirtualization is the PR's acceptance check,
// the paper's signature measured directly: on a delayed two-cluster link,
// raising the virtualization degree V/P raises the masked fraction (more
// objects per PE → more compute available to hide each flight). The WAN
// flight itself never leaves the dependency chain — the ghost must cross
// the link every step — so what shifts on the critical path is its
// composition: the exposed comm-wait share falls as the same flights
// become masked by other objects' compute. Virtual time makes the numbers
// exact, so the assertions can demand real margins rather than bare
// inequalities.
func TestMaskedFractionGrowsWithVirtualization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 8.4M cell updates per run")
	}
	const procs = 4
	const lat = 4 * time.Millisecond

	type run struct {
		masked    float64
		cpExposed float64 // exposed comm-wait share of the critical path
		commWait  time.Duration
	}
	measure := func(objects int) run {
		snap := traceStencilSim(t, procs, objects, lat)
		evs, numPE, horizon := trace.Merge(splitSnapshot(snap, procs)...)
		ov := trace.ComputeOverlap(evs, numPE, horizon)
		cp := trace.CriticalPath(appEvents(evs))
		if len(cp.Hops) == 0 {
			t.Fatalf("V=%d: empty critical path", objects)
		}
		return run{
			masked:    ov.MaskedFraction(),
			cpExposed: cp.ExposedFraction(),
			commWait:  ov.Totals().CommWait,
		}
	}

	low := measure(4)   // V/P = 1: nothing to overlap with
	high := measure(64) // V/P = 16: pipelined objects mask the flights

	t.Logf("masked fraction: V=4 %.3f, V=64 %.3f", low.masked, high.masked)
	t.Logf("critical-path exposed share: V=4 %.3f, V=64 %.3f", low.cpExposed, high.cpExposed)
	t.Logf("total comm-wait: V=4 %v, V=64 %v", low.commWait, high.commWait)

	if high.masked < low.masked+0.2 {
		t.Errorf("masked fraction did not grow with V/P: V=4 %.3f, V=64 %.3f", low.masked, high.masked)
	}
	if high.cpExposed >= low.cpExposed {
		t.Errorf("critical path did not shift off comm-wait: exposed share V=4 %.3f, V=64 %.3f",
			low.cpExposed, high.cpExposed)
	}
	if high.commWait >= low.commWait {
		t.Errorf("total exposed comm-wait did not fall: V=4 %v, V=64 %v", low.commWait, high.commWait)
	}
}

// TestTCPWaitRatioFallsWithVirtualization is the wall-clock companion to
// the sim acceptance test: over real TCP sockets with the delay device
// injecting the WAN latency, higher V/P must lower exposed comm-wait per
// unit of compute. Only steady-state steps (past warmup) are measured —
// connection establishment and first-step cold caches otherwise dominate.
// On a single-core host the two runtimes time-slice one CPU, so the
// absolute masked fraction is distorted (no real parallelism to measure);
// the wait-per-compute ratio is the signal that survives.
func TestTCPWaitRatioFallsWithVirtualization(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock two-node runs")
	}
	const procs = 4
	const warmup = 2
	const lat = 2 * time.Millisecond

	measure := func(objects int) float64 {
		snap := traceStencilTCP(t, procs, objects, lat)
		evs, numPE, horizon := trace.Merge(splitSnapshot(snap, procs)...)
		var busy, exposed time.Duration
		for _, so := range trace.StepOverlaps(evs, numPE, horizon) {
			if so.Step < warmup {
				continue
			}
			tot := so.Totals()
			busy += tot.Busy
			exposed += tot.Exposed
		}
		if busy == 0 {
			t.Fatalf("V=%d: no steady-state busy time", objects)
		}
		return float64(exposed) / float64(busy)
	}

	low := measure(4)
	high := measure(64)
	t.Logf("steady-state comm-wait per unit compute: V=4 %.2f, V=64 %.2f", low, high)
	if high >= low {
		t.Errorf("comm-wait per unit compute did not fall with V/P: V=4 %.2f, V=64 %.2f", low, high)
	}
}

// TestAnalyzeReports drives the full analyzer over a real two-node trace
// and checks every report section renders.
func TestAnalyzeReports(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock two-node run")
	}
	const procs = 4
	snap := traceStencilTCP(t, procs, 16, time.Millisecond)
	var buf bytes.Buffer
	err := analyze(&buf, splitSnapshot(snap, procs), analyzeOpts{Buckets: 40, Steps: true, CritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"snapshot(s)",
		"overlap profile",
		"masked latency",
		"per-step overlap",
		"critical path",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}

	// The Chrome export of the same stream must be valid JSON with flow
	// events linking the TCP hop (checked structurally in the trace
	// package; here we only need the CLI-facing path to not error).
	evs, _, _ := trace.Merge(splitSnapshot(snap, procs)...)
	var cb bytes.Buffer
	if err := trace.WriteChrome(&cb, evs, nodeOfFunc(splitSnapshot(snap, procs))); err != nil {
		t.Fatal(err)
	}
	if cb.Len() == 0 {
		t.Error("empty Chrome export")
	}
}

func TestAnalyzeNoSnapshots(t *testing.T) {
	if err := analyze(&bytes.Buffer{}, nil, analyzeOpts{}); err == nil {
		t.Error("analyze(nil) succeeded")
	}
}
