module gridmdo

go 1.22
