// Package gridmdo_bench holds the top-level testing.B benchmarks: one per
// table and figure of the paper's evaluation (scaled-down fast-profile
// versions of the cmd/gridsim experiments, so `go test -bench=.` touches
// every artifact), the DESIGN.md ablations, and micro-benchmarks of the
// runtime's hot paths.
//
// Paper-scale regeneration is cmd/gridsim's job; these benchmarks exist
// to track the performance of the reproduction itself and to exercise
// every experiment's code path under `-bench`.
package gridmdo_bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridmdo/internal/balance"
	"gridmdo/internal/bench"
	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// reportPerStep attaches the experiment's own metric to the benchmark.
func reportPerStep(b *testing.B, perStep time.Duration) {
	b.ReportMetric(float64(perStep)/1e6, "ms/step(virtual)")
}

// BenchmarkFigure3 regenerates Figure 3 points: stencil per-step time
// under artificial latency, across processor counts and virtualization
// degrees.
func BenchmarkFigure3(b *testing.B) {
	cfg := bench.FastProfile().Stencil
	for _, procs := range []int{8, 32} {
		for _, objects := range []int{64, 256} {
			for _, lat := range []time.Duration{0, 8 * time.Millisecond} {
				name := fmt.Sprintf("P%d/V%d/L%v", procs, objects, lat)
				b.Run(name, func(b *testing.B) {
					var last *stencil.Result
					for i := 0; i < b.N; i++ {
						res, err := bench.StencilSim(cfg, procs, objects, lat, sim.Options{})
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					reportPerStep(b, last.PerStep)
				})
			}
		}
	}
}

// BenchmarkTable1 regenerates one Table 1 row through all three
// instruments: virtual-time, real-time with the delay device, and
// real-time over TCP sockets.
func BenchmarkTable1(b *testing.B) {
	cfg := bench.StencilConfig{Width: 256, Height: 256, Steps: 6, Warmup: 2, Model: stencil.DefaultModel()}
	lat := 1725 * time.Microsecond
	b.Run("sim/P8/V64", func(b *testing.B) {
		var last *stencil.Result
		for i := 0; i < b.N; i++ {
			res, err := bench.StencilSim(cfg, 8, 64, lat, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPerStep(b, last.PerStep)
	})
	b.Run("realtime-delay/P8/V64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.StencilRealtime(cfg, 8, 64, lat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("realtime-tcp/P8/V64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.StencilTCP(cfg, 8, 64, lat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4 regenerates Figure 4 points: LeanMD per-step time
// versus latency across processor counts.
func BenchmarkFigure4(b *testing.B) {
	cfg := bench.FastProfile().MD
	for _, procs := range []int{8, 32} {
		for _, lat := range []time.Duration{time.Millisecond, 64 * time.Millisecond} {
			name := fmt.Sprintf("P%d/L%v", procs, lat)
			b.Run(name, func(b *testing.B) {
				var last *leanmd.Result
				for i := 0; i < b.N; i++ {
					res, err := bench.LeanMDSim(cfg, procs, lat, sim.Options{})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportPerStep(b, last.PerStep)
			})
		}
	}
}

// BenchmarkTable2 regenerates one Table 2 row through all three
// instruments.
func BenchmarkTable2(b *testing.B) {
	cfg := bench.MDConfig{NX: 3, NY: 3, NZ: 3, AtomsPerCell: 6, Steps: 5, Warmup: 2, Model: leanmd.DefaultModel()}
	lat := 1725 * time.Microsecond
	b.Run("sim/P8", func(b *testing.B) {
		var last *leanmd.Result
		for i := 0; i < b.N; i++ {
			res, err := bench.LeanMDSim(cfg, 8, lat, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportPerStep(b, last.PerStep)
	})
	b.Run("realtime-delay/P8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.LeanMDRealtime(cfg, 8, lat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("realtime-tcp/P8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.LeanMDTCP(cfg, 8, lat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPriority measures WAN message prioritization on/off.
func BenchmarkAblationPriority(b *testing.B) {
	cfg := bench.FastProfile().Stencil
	for _, prio := range []bool{false, true} {
		b.Run(fmt.Sprintf("wanprio=%v", prio), func(b *testing.B) {
			var last *stencil.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.StencilSim(cfg, 16, 256, 8*time.Millisecond, sim.Options{PrioritizeWAN: prio})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPerStep(b, last.PerStep)
		})
	}
}

// BenchmarkAblationGridLB measures balancing strategies from a
// half-empty placement (every other PE idle).
func BenchmarkAblationGridLB(b *testing.B) {
	base := bench.FastProfile().Stencil
	for _, tc := range []struct {
		name     string
		strategy core.Strategy
	}{{"none", nil}, {"greedy", balance.Greedy{}}, {"grid", balance.Grid{}}} {
		b.Run(tc.name, func(b *testing.B) {
			var last *stencil.Result
			for i := 0; i < b.N; i++ {
				p := &stencil.Params{
					Width: base.Width, Height: base.Height, VX: 16, VY: 16,
					Steps: base.Steps, Warmup: 3, Model: base.Model,
					InitialMap: func(i, numPE int) int {
						pe := core.BlockMap(i, 256, numPE)
						half := numPE / 2
						if pe < half {
							return pe / 2
						}
						return half + (pe-half)/2
					},
				}
				if tc.strategy != nil {
					p.LB, p.LBAtStep = tc.strategy, 2
				}
				res, err := bench.StencilSimParams(p, 8, 8*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPerStep(b, last.PerStep)
		})
	}
}

// BenchmarkAblationVirtualization sweeps the virtualization degree at
// zero latency.
func BenchmarkAblationVirtualization(b *testing.B) {
	cfg := bench.FastProfile().Stencil
	for _, v := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("V%d", v), func(b *testing.B) {
			var last *stencil.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.StencilSim(cfg, 8, v, 0, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportPerStep(b, last.PerStep)
		})
	}
}

// ---------------------------------------------------------------------------
// Runtime hot-path micro-benchmarks.

func BenchmarkQueuePushPop(b *testing.B) {
	q := core.NewQueue()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(&core.Message{Prio: int32(i % 7)})
		if i%8 == 7 {
			for q.TryPop() != nil {
			}
		}
	}
}

func BenchmarkQueuePushPopBatch(b *testing.B) {
	// The real-time scheduler's drain pattern: bursts of pushes emptied
	// through PopBatch under one lock acquisition.
	q := core.NewQueue()
	batch := make([]*core.Message, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(&core.Message{Prio: int32(i % 7)})
		if i%8 == 7 {
			for q.Len() > 0 {
				batch = q.PopBatch(batch[:0])
			}
		}
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	// The transport hot path: append-encode into a reused coalescing
	// buffer, zero-copy decode out of a reused reader buffer.
	body := bytes.Repeat([]byte("ghost row data  "), 128) // 2 KiB
	f := &vmi.Frame{Src: 1, Dst: 2, Seq: 3, Body: body}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = f.AppendEncode(buf[:0])
		var g vmi.Frame
		if _, err := g.DecodeBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWirePayloadKinds measures the message codec per payload kind:
// every binary fast path plus the gob fallback, over the same
// append-encode/decode cycle the TCP send path runs.
func BenchmarkWirePayloadKinds(b *testing.B) {
	f64s := make([]float64, 256) // a 2 KiB ghost row
	for i := range f64s {
		f64s[i] = float64(i) * 0.5
	}
	bundle := core.MakeBundle([]*core.Message{
		{Kind: core.KindApp, To: core.ElemRef{Array: 0, Index: 1}, Data: f64s[:32], Bytes: 256},
		{Kind: core.KindApp, To: core.ElemRef{Array: 0, Index: 2}, Data: f64s[:32], Bytes: 256},
		{Kind: core.KindApp, To: core.ElemRef{Array: 0, Index: 3}, Data: f64s[:32], Bytes: 256},
		{Kind: core.KindApp, To: core.ElemRef{Array: 0, Index: 4}, Data: f64s[:32], Bytes: 256},
	})
	cases := []struct {
		name string
		data any
	}{
		{"nil", nil},
		{"int", 42},
		{"int64", int64(1) << 40},
		{"float64", 3.14},
		{"f64slice-2KiB", f64s},
		{"string", "resume-from-sync"},
		{"bytes-2KiB", bytes.Repeat([]byte{0xAB}, 2048)},
		{"reducepartial", core.ReducePartial{Array: 1, Seq: 9, Op: core.OpSum, Value: 1.5, Contribs: 32}},
		{"bundle-4msgs", bundle.Data},
		{"gob-fallback", benchGobPayload{A: 7, B: "fallback"}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			m := &core.Message{Kind: core.KindApp, To: core.ElemRef{Array: 1, Index: 2}, Data: tc.data}
			buf := make([]byte, 0, 8192)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = core.AppendMessage(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.DecodeMessage(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(buf)), "wire-bytes")
		})
	}
}

// benchGobPayload has no registered binary codec, so it travels via the
// codec's gob fallback.
type benchGobPayload struct {
	A int
	B string
}

func init() { core.RegisterPayload(benchGobPayload{}) }

func BenchmarkDelayDeviceZeroLatency(b *testing.B) {
	d := vmi.NewDelayDevice(func(src, dst int32) time.Duration { return 0 })
	defer d.Close()
	sink := func(*vmi.Frame) error { return nil }
	f := &vmi.Frame{Src: 0, Dst: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Send(f, sink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForceKernel(b *testing.B) {
	p := leanmd.DefaultParams()
	p.AtomsPerCell = 32
	g, err := leanmd.NewGeometry(3, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	ff := p.Field()
	s := leanmd.BuildSystem(p, g)
	n := p.AtomsPerCell
	fa := make([]leanmd.Vec3, n)
	fb := make([]leanmd.Vec3, n)
	q := p.Charges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range fa {
			fa[j], fb[j] = leanmd.Vec3{}, leanmd.Vec3{}
		}
		ff.CellInteraction(s.Pos[:n], s.Pos[n:2*n], q, q, fa, fb)
	}
	b.ReportMetric(float64(n*n), "interactions/op")
}

func BenchmarkSimEventLoop(b *testing.B) {
	// Measures raw engine throughput: a message ring with no charges.
	topo, err := topology.TwoClusters(8, 0,
		topology.WithIntraLink(topology.Link{}),
		topology.WithInterLink(topology.Link{}),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog := ringProgram(64, 2000)
		e, err := sim.New(topo, prog, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000, "msgs/op")
}

type ringChare struct{ n int }

func (r *ringChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	hops := data.(int)
	if hops <= 0 {
		ctx.Exit()
		return
	}
	next := (ctx.Elem().Index + 1) % r.n
	ctx.Send(core.ElemRef{Array: 0, Index: next}, 0, hops-1)
}

func ringProgram(n, hops int) *core.Program {
	return &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare { return &ringChare{n: n} },
		}},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, hops)
		},
	}
}

// TestBenchmarkConfigsAreRunnable keeps `go test ./...` (without -bench)
// exercising each benchmark configuration once, so a broken experiment
// fails tests rather than only failing under -bench.
func TestBenchmarkConfigsAreRunnable(t *testing.T) {
	cfg := bench.StencilConfig{Width: 128, Height: 128, Steps: 4, Warmup: 1, Model: stencil.DefaultModel()}
	if _, err := bench.StencilSim(cfg, 4, 16, time.Millisecond, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	md := bench.MDConfig{NX: 2, NY: 2, NZ: 2, AtomsPerCell: 4, Steps: 3, Warmup: 1, Model: leanmd.DefaultModel()}
	if _, err := bench.LeanMDSim(md, 4, time.Millisecond, sim.Options{}); err != nil {
		t.Fatal(err)
	}
}
