package taskfarm

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/topology"
)

// TestShardedChecksumMatchesSingleMaster is the acceptance bit-identity
// check: the sharded farm (with stealing and skew scrambling completion
// order) must produce the exact checksum of the single-master farm.
func TestShardedChecksumMatchesSingleMaster(t *testing.T) {
	single := &Params{Tasks: 500, Prefetch: 2, TaskCost: time.Millisecond}
	sharded := &Params{
		Tasks: 500, Prefetch: 2, TaskCost: time.Millisecond,
		Shards: 4, Batch: 8, Steal: true, Seed: 42, CostSkew: 8,
	}
	rs := runFarm(t, single, 8, 2*time.Millisecond)
	rh := runFarm(t, sharded, 8, 2*time.Millisecond)
	if rs.Checksum != rh.Checksum {
		t.Errorf("checksum mismatch: single %#x, sharded %#x", rs.Checksum, rh.Checksum)
	}
	if want := ExpectedChecksum(500); rs.Checksum != want {
		t.Errorf("single-master checksum %#x, want %#x", rs.Checksum, want)
	}
	if math.Abs(rh.Sum-expectedSum(500)) > 1e-9 {
		t.Errorf("sharded sum = %v, want %v", rh.Sum, expectedSum(500))
	}
}

// TestShardedAllTasksExactlyOnce: per-worker and per-shard tallies must
// both account for every task exactly once, even when stealing moves
// ownership around.
func TestShardedAllTasksExactlyOnce(t *testing.T) {
	p := &Params{
		Tasks: 777, Prefetch: 2, TaskCost: time.Millisecond,
		Shards: 3, Batch: 4, Steal: true, Seed: 7, CostSkew: 4,
	}
	res := runFarm(t, p, 8, 2*time.Millisecond)
	totW, totS := 0, 0
	for _, n := range res.PerWorker {
		totW += n
	}
	for _, n := range res.PerShard {
		totS += n
	}
	if totW != 777 || totS != 777 {
		t.Errorf("per-worker sums to %d, per-shard to %d, want 777", totW, totS)
	}
	if res.Shards != 3 || len(res.PerShard) != 3 {
		t.Errorf("shard accounting: Shards=%d PerShard=%v", res.Shards, res.PerShard)
	}
}

// TestStealingUnderSkew: a linear cost ramp drains the cheap low-index
// shards early; with stealing on they must acquire work from the
// expensive end, and the acquired tasks must show up in the counters.
func TestStealingUnderSkew(t *testing.T) {
	p := &Params{
		Tasks: 600, Prefetch: 2, TaskCost: time.Millisecond,
		Shards: 4, Batch: 4, Steal: true, Seed: 1, CostSkew: 16,
	}
	res := runFarm(t, p, 8, time.Millisecond)
	if res.Steals == 0 {
		t.Fatal("no steals despite a 16x cost skew")
	}
	if res.StolenTask == 0 {
		t.Error("steals recorded but no tasks moved")
	}
	// Stealing must actually help: the same skewed farm without stealing
	// is bounded by the static owner of the expensive tail.
	q := *p
	q.Steal = false
	noSteal := runFarm(t, &q, 8, time.Millisecond)
	if res.Checksum != noSteal.Checksum {
		t.Errorf("stealing changed the checksum: %#x vs %#x", res.Checksum, noSteal.Checksum)
	}
	if float64(res.Makespan) > 0.95*float64(noSteal.Makespan) {
		t.Errorf("stealing did not help under skew: %v with vs %v without", res.Makespan, noSteal.Makespan)
	}
}

// TestShardingBeatsSingleMasterPastKnee reproduces the WRONJ knee in
// virtual time: with AT = 1ms and JT = 8ms a single dispatcher saturates
// at JT/AT = 8 workers. At 32 workers on 32 PEs the single master is
// assignment-bound (Tasks x AT); eight shards put each dispatcher well
// under its own knee (4 workers each), so the farm returns to being
// compute-bound.
func TestShardingBeatsSingleMasterPastKnee(t *testing.T) {
	const workers = 32
	base := Params{
		Tasks: 2048, Prefetch: 2, Workers: workers,
		TaskCost: 8 * time.Millisecond, AssignCost: time.Millisecond,
	}
	single := base
	sharded := base
	sharded.Shards = 8
	sharded.Batch = 1
	ms := runFarm(t, &single, workers, 0).Makespan
	mh := runFarm(t, &sharded, workers, 0).Makespan
	// Single master is assignment-bound: >= Tasks * AssignCost.
	if ms < 2048*time.Millisecond {
		t.Errorf("single-master makespan %v below the assignment bound", ms)
	}
	if float64(mh) > 0.4*float64(ms) {
		t.Errorf("8 shards gave %v vs single %v; want well under 0.4x past the knee", mh, ms)
	}
}

// TestBatchingAmortizesGrants: with Batch=16 the grant-message count must
// drop close to 16x (the guided taper grants the tail in slivers, so the
// ratio lands a little under the full factor), and the farm still
// completes every task.
func TestBatchingAmortizesGrants(t *testing.T) {
	run := func(batch int) (grants, granted int64, res *Result) {
		reg := metrics.NewRegistry()
		p := &Params{
			Tasks: 960, Prefetch: 2, TaskCost: time.Millisecond,
			Shards: 2, Batch: batch, Metrics: reg,
		}
		res = runFarm(t, p, 4, time.Millisecond)
		return reg.Counter("taskfarm_grants_total").Value(),
			reg.Counter("taskfarm_tasks_granted_total").Value(), res
	}
	g1, _, r1 := run(1)
	g16, granted16, r16 := run(16)
	if r1.Checksum != r16.Checksum {
		t.Errorf("batching changed the checksum: %#x vs %#x", r1.Checksum, r16.Checksum)
	}
	if g1 != 960 {
		t.Errorf("batch=1 sent %d grants, want 960", g1)
	}
	if lo, hi := int64(960/16), int64(960/8); g16 < lo || g16 > hi {
		t.Errorf("batch=16 sent %d grants, want within [%d,%d]", g16, lo, hi)
	}
	if granted16 != 960 {
		t.Errorf("batch=16 granted %d tasks, want 960", granted16)
	}
}

// TestShardedRealtime runs the sharded farm on the wall-clock runtime:
// same checksum, real spin work, steals possible.
func TestShardedRealtime(t *testing.T) {
	prog, err := BuildProgram(&Params{
		Tasks: 120, Prefetch: 2, Workers: 4, Spin: 5_000,
		Shards: 2, Batch: 4, Steal: true, Seed: 3, CostSkew: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*Result)
	if res.Checksum != ExpectedChecksum(120) {
		t.Errorf("realtime sharded checksum %#x, want %#x", res.Checksum, ExpectedChecksum(120))
	}
	if res.Makespan <= 0 {
		t.Error("no makespan measured")
	}
}

// TestShardedMetrics: the published series must agree with the Result's
// own accounting.
func TestShardedMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := &Params{
		Tasks: 400, Prefetch: 2, TaskCost: time.Millisecond,
		Shards: 4, Batch: 4, Steal: true, Seed: 9, CostSkew: 8,
		Metrics: reg,
	}
	res := runFarm(t, p, 8, time.Millisecond)
	if got := reg.Counter("taskfarm_tasks_granted_total").Value(); got != 400 {
		t.Errorf("granted counter %d, want 400", got)
	}
	if got := reg.Counter("taskfarm_steals_total").Value(); got != int64(res.Steals) {
		t.Errorf("steals counter %d, Result says %d", got, res.Steals)
	}
	if got := reg.Counter("taskfarm_stolen_tasks_total").Value(); got != int64(res.StolenTask) {
		t.Errorf("stolen counter %d, Result says %d", got, res.StolenTask)
	}
	var perShard int64
	for i := 0; i < p.Shards; i++ {
		perShard += reg.Counter("taskfarm_shard_tasks_total", metrics.L("shard", string(rune('0'+i)))).Value()
	}
	if perShard != 400 {
		t.Errorf("per-shard counters sum to %d, want 400", perShard)
	}
	if reg.Histogram("taskfarm_assign_wait_ns", metrics.DurationBuckets).Count() == 0 {
		t.Error("no assignment waits observed")
	}
}

// TestShardedValidation covers the sharded-specific error paths.
func TestShardedValidation(t *testing.T) {
	bad := []*Params{
		{Tasks: 1, Prefetch: 1, Shards: -1},
		{Tasks: 1, Prefetch: 1, Batch: -2},
		{Tasks: 1, Prefetch: 1, AssignCost: -time.Second},
		{Tasks: 1, Prefetch: 1, CostSkew: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	// More shards than workers cannot grant everywhere; must be rejected.
	if _, err := BuildProgram(&Params{Tasks: 10, Prefetch: 1, Workers: 2, Shards: 4}); err == nil {
		t.Error("4 shards over 2 workers accepted")
	}
}

// TestBatchCodecRoundTrip pins every sharded-protocol payload through the
// full wire codec with concrete-type equality, like
// TestWireCodecPayloadKinds does for the built-ins.
func TestBatchCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		data any
	}{
		{"task-batch", taskBatchMsg{Shard: 3, Ranges: []taskRange{{Lo: 100, N: 16}, {Lo: 900, N: 4}}, bytes: 640}},
		{"task-batch-empty", taskBatchMsg{Shard: 0}},
		{"result-batch", resultBatchMsg{Worker: 7, Done: 16, Sum: 17.25, Check: 0xDEADBEEF, bytes: 640}},
		{"result-batch-serve", resultBatchMsg{Worker: 7, Done: 3, Sum: 3.5, Check: 99,
			Ranges: []taskRange{{Lo: 40, N: 2}, {Lo: 99, N: 1}}, Values: []float64{1.5, 1.25, 0.75}, bytes: 192}},
		{"steal-req", stealReqMsg{Thief: 2}},
		{"steal-rsp", stealRspMsg{Victim: 1, Ranges: []taskRange{{Lo: 5000, N: 123}}}},
		{"steal-rsp-empty", stealRspMsg{Victim: 1}},
		{"progress", progressMsg{Shard: 2, Done: 8, Sum: -3.5, Check: 42}},
		{"progress-serve", progressMsg{Shard: 2, Done: 2, Sum: 2.5, Check: 7,
			Ranges: []taskRange{{Lo: 10, N: 2}}, Values: []float64{1.0, 1.5}}},
		{"submit", submitMsg{Ranges: []taskRange{{Lo: 0, N: 64}}}},
		{"submit-empty", submitMsg{}},
		{"report", shardReportMsg{Shard: 1, PerW: []int32{10, 0, 32}, Granted: 42, Steals: 2, StealFails: 1, Stolen: 20, Victimized: 4}},
		{"task", taskMsg{Seq: 9000, bytes: 64}},
		{"result", resultMsg{Seq: 9000, Worker: 3, Value: math.Pi, bytes: 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := &core.Message{Kind: core.KindApp, To: core.ElemRef{Array: ArrayShard, Index: 1}, Data: tc.data}
			b, err := core.EncodeMessage(in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := core.DecodeMessage(b)
			if err != nil {
				t.Fatal(err)
			}
			if !equalPayload(out.Data, tc.data) {
				t.Errorf("payload: got %#v, want %#v", out.Data, tc.data)
			}
		})
	}
}

// equalPayload compares protocol payloads treating nil and empty range
// slices as equal (the codec does not distinguish them).
func equalPayload(a, b any) bool {
	switch x := a.(type) {
	case taskBatchMsg:
		y, ok := b.(taskBatchMsg)
		return ok && x.Shard == y.Shard && x.bytes == y.bytes && equalRanges(x.Ranges, y.Ranges)
	case stealRspMsg:
		y, ok := b.(stealRspMsg)
		return ok && x.Victim == y.Victim && equalRanges(x.Ranges, y.Ranges)
	case resultBatchMsg:
		y, ok := b.(resultBatchMsg)
		return ok && x.Worker == y.Worker && x.Done == y.Done && x.Sum == y.Sum &&
			x.Check == y.Check && x.bytes == y.bytes &&
			equalRanges(x.Ranges, y.Ranges) && equalValues(x.Values, y.Values)
	case progressMsg:
		y, ok := b.(progressMsg)
		return ok && x.Shard == y.Shard && x.Done == y.Done && x.Sum == y.Sum &&
			x.Check == y.Check && equalRanges(x.Ranges, y.Ranges) && equalValues(x.Values, y.Values)
	case submitMsg:
		y, ok := b.(submitMsg)
		return ok && equalRanges(x.Ranges, y.Ranges)
	case shardReportMsg:
		y, ok := b.(shardReportMsg)
		if !ok || x.Shard != y.Shard || x.Granted != y.Granted || x.Steals != y.Steals ||
			x.StealFails != y.StealFails || x.Stolen != y.Stolen || x.Victimized != y.Victimized ||
			len(x.PerW) != len(y.PerW) {
			return false
		}
		for i := range x.PerW {
			if x.PerW[i] != y.PerW[i] {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func equalValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalRanges(a, b []taskRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzBatchCodec round-trips fuzzed batch-protocol messages through the
// wire codec and asserts byte-for-byte stability, mirroring
// core.FuzzWireCodec for the application payloads.
func FuzzBatchCodec(f *testing.F) {
	f.Add(uint8(0), int64(0), int64(1), int64(100), uint64(7))
	f.Add(uint8(1), int64(3), int64(-5), int64(1<<40), uint64(1)<<63)
	f.Add(uint8(5), int64(200), int64(17), int64(0), uint64(0xFFFFFFFFFFFFFFFF))
	f.Fuzz(func(t *testing.T, kind uint8, a, b, c int64, u uint64) {
		ranges := []taskRange{{Lo: b, N: c & 0xFFFF}, {Lo: b + (c & 0xFF), N: a & 0xFF}}
		var data any
		switch kind % 6 {
		case 0:
			data = taskBatchMsg{Shard: int32(a), Ranges: ranges, bytes: int(c & 0xFFFF)}
		case 1:
			data = resultBatchMsg{Worker: int32(a), Done: int32(b), Sum: math.Float64frombits(u), Check: u, bytes: int(c & 0xFFFF)}
		case 2:
			data = stealReqMsg{Thief: int32(a)}
		case 3:
			data = stealRspMsg{Victim: int32(a), Ranges: ranges}
		case 4:
			data = progressMsg{Shard: int32(a), Done: int32(b), Sum: math.Float64frombits(u), Check: u}
		case 5:
			data = shardReportMsg{Shard: int32(a), PerW: []int32{int32(b), int32(c)}, Granted: c, Steals: a, StealFails: b, Stolen: c, Victimized: a}
		}
		in := &core.Message{Kind: core.KindApp, To: core.ElemRef{Array: ArrayShard, Index: int(a & 0xFFFF)}, Data: data}
		enc1, err := core.EncodeMessage(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := core.DecodeMessage(enc1)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		enc2, err := core.EncodeMessage(out)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("batch codec not byte-stable:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}

// shardTestParams builds a Params good for PUP testing.
func shardTestParams() *Params {
	return &Params{Tasks: 1000, Prefetch: 2, Workers: 8, Shards: 4, Batch: 8, Steal: true, Seed: 5}
}

// TestShardPUPRoundTrip: pack a mid-run shard, restore it into a fresh
// element, and require the repack to be byte-identical.
func TestShardPUPRoundTrip(t *testing.T) {
	p := shardTestParams()
	s := newShard(p, 1, newFarmMetrics(p))
	// Mutate into a mid-run state: partial grants, a steal in flight.
	s.popFront(100)
	s.pending = append(s.pending, taskRange{Lo: 900, N: 25})
	s.avail += 25
	s.out[0], s.out[1] = 2, 1
	s.perW[0], s.perW[1] = 48, 52
	s.granted, s.grants = 103, 17
	s.steals, s.stealFails = 2, 1
	s.stolenIn, s.victimized = 25, 10
	s.fails = 1
	s.stealing = true
	s.nextRand()

	data, err := core.PUPPack(s)
	if err != nil {
		t.Fatal(err)
	}
	r := newShard(p, 1, newFarmMetrics(p))
	if err := core.PUPUnpack(r, data); err != nil {
		t.Fatal(err)
	}
	if r.avail != s.avail || !equalRanges(r.pending, s.pending) {
		t.Errorf("deque not restored: avail %d vs %d, pending %v vs %v", r.avail, s.avail, r.pending, s.pending)
	}
	if r.rng != s.rng || r.fails != s.fails || r.stealing != s.stealing {
		t.Error("steal state not restored")
	}
	data2, err := core.PUPPack(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("repack differs from original pack")
	}
}

// TestRootPUPRoundTrip: same discipline for the root collector.
func TestRootPUPRoundTrip(t *testing.T) {
	p := shardTestParams()
	r := &root{p: p, shards: 4, workers: 8,
		started: 5 * time.Millisecond, makespan: 0,
		done: 400, sum: 123.5, check: 0xABCD, reports: 0,
		perW: []int{50, 50, 50, 50, 50, 50, 50, 50}, perShard: []int{100, 100, 100, 100},
	}
	data, err := core.PUPPack(r)
	if err != nil {
		t.Fatal(err)
	}
	q := &root{p: p, shards: 4, workers: 8}
	if err := core.PUPUnpack(q, data); err != nil {
		t.Fatal(err)
	}
	if q.done != 400 || q.check != 0xABCD || len(q.perW) != 8 {
		t.Errorf("root not restored: %+v", q)
	}
	data2, err := core.PUPPack(q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("repack differs from original pack")
	}
	// A checkpoint from a different shard count must be rejected.
	bad := &root{p: p, shards: 2, workers: 8}
	if err := core.PUPUnpack(bad, data); err == nil {
		t.Error("restore accepted a checkpoint with the wrong shard count")
	}
}

// FuzzShardPUP feeds arbitrary bytes to the shard restore path: it must
// error or restore, never panic, and a successful restore must repack.
func FuzzShardPUP(f *testing.F) {
	p := shardTestParams()
	if data, err := core.PUPPack(newShard(p, 0, newFarmMetrics(p))); err == nil {
		f.Add(data)
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newShard(p, 0, newFarmMetrics(p))
		if err := core.PUPUnpack(s, data); err != nil {
			return
		}
		if _, err := core.PUPPack(s); err != nil {
			t.Fatalf("restored shard cannot repack: %v", err)
		}
	})
}

// TestImbalance pins the helper's edge cases.
func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Errorf("Imbalance(nil) = %v", got)
	}
	if got := Imbalance([]int{5, 0, 5}); got != 0 {
		t.Errorf("Imbalance with a zero entry = %v", got)
	}
	if got := Imbalance([]int{2, 8}); got != 4 {
		t.Errorf("Imbalance([2 8]) = %v, want 4", got)
	}
}
