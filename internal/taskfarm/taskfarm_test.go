package taskfarm

import (
	"math"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func runFarm(t *testing.T, p *Params, procs int, lat time.Duration) *Result {
	t.Helper()
	prog, err := BuildProgramFor(p, procs)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v.(*Result)
}

func expectedSum(tasks int) float64 {
	var s float64
	for i := 0; i < tasks; i++ {
		s += TaskValue(i)
	}
	return s
}

func TestAllTasksExecutedExactlyOnce(t *testing.T) {
	p := &Params{Tasks: 137, Prefetch: 2, TaskCost: time.Millisecond}
	res := runFarm(t, p, 4, 5*time.Millisecond)
	if res.Tasks != 137 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	if math.Abs(res.Sum-expectedSum(137)) > 1e-9 {
		t.Errorf("sum = %v, want %v", res.Sum, expectedSum(137))
	}
	total := 0
	for _, n := range res.PerWorker {
		total += n
	}
	if total != 137 {
		t.Errorf("per-worker counts sum to %d", total)
	}
}

func TestSelfSchedulingBalances(t *testing.T) {
	// Homogeneous workers, task cost above the resupply round trip:
	// completion counts should be near-uniform.
	p := &Params{Tasks: 400, Prefetch: 2, TaskCost: 10 * time.Millisecond}
	res := runFarm(t, p, 8, 4*time.Millisecond) // RTT 8ms < 10ms cost
	min, max := res.PerWorker[0], res.PerWorker[0]
	for _, n := range res.PerWorker {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Error("a worker got no tasks")
	}
	if float64(max) > 1.5*float64(min) {
		t.Errorf("self-scheduling imbalance: min=%d max=%d", min, max)
	}
}

// TestSelfSchedulingAdaptsToStarvation: when tasks are far cheaper than
// the resupply round trip, self-scheduling correctly feeds the workers
// near the master more — remote workers are throughput-limited by the
// WAN, and the farm routes work around them instead of stalling.
func TestSelfSchedulingAdaptsToStarvation(t *testing.T) {
	p := &Params{Tasks: 400, Prefetch: 2, TaskCost: time.Millisecond}
	res := runFarm(t, p, 8, 4*time.Millisecond) // RTT 8ms >> 1ms cost
	local, remote := 0, 0
	for w, n := range res.PerWorker {
		if w < 4 { // cluster 0, with the master
			local += n
		} else {
			remote += n
		}
	}
	if local <= remote {
		t.Errorf("local workers completed %d tasks vs remote %d; expected adaptive skew toward the master's cluster", local, remote)
	}
	if remote == 0 {
		t.Error("remote cluster did no work at all")
	}
}

// TestPrefetchMasksLatency is the class's latency-tolerance mechanism:
// with one task in flight a remote worker idles a full round trip between
// tasks; with two, dispatch overlaps compute.
func TestPrefetchMasksLatency(t *testing.T) {
	const cost = 20 * time.Millisecond
	const lat = 16 * time.Millisecond // RTT 32ms > cost
	base := &Params{Tasks: 160, TaskCost: cost}

	run := func(prefetch int) time.Duration {
		p := *base
		p.Prefetch = prefetch
		return runFarm(t, &p, 8, lat).Makespan
	}
	p1 := run(1)
	p2 := run(2)
	p3 := run(3)

	// Prefetch 1: every remote task pays the RTT serially; expect
	// roughly tasks/workers × (cost + RTT) for the remote half.
	if p1 < time.Duration(160/8)*cost+10*lat {
		t.Errorf("prefetch=1 makespan %v implausibly fast", p1)
	}
	// Prefetch 2 with RTT > cost still leaves gaps; >= 3 should be
	// compute-bound. Either way each level must help substantially.
	if float64(p2) > 0.8*float64(p1) {
		t.Errorf("prefetch=2 (%v) did not improve on prefetch=1 (%v)", p2, p1)
	}
	computeBound := time.Duration(160/8) * cost
	if p3 < computeBound {
		t.Errorf("makespan %v below compute bound %v", p3, computeBound)
	}
	if float64(p3) > 1.4*float64(computeBound) {
		t.Errorf("prefetch=3 makespan %v, want near compute bound %v", p3, computeBound)
	}
}

// TestLatencyInsensitivityWithCoarseTasks reproduces the paper's §1
// claim: with coarse tasks and prefetching, wide-area latency moves the
// makespan only marginally.
func TestLatencyInsensitivityWithCoarseTasks(t *testing.T) {
	// Prefetch must cover the resupply round trip: 1 + ceil(RTT/cost) =
	// 1 + ceil(128/50) = 4 keeps remote workers saturated.
	p := &Params{Tasks: 80, Prefetch: 4, TaskCost: 50 * time.Millisecond}
	m0 := runFarm(t, p, 8, 0).Makespan
	m64 := runFarm(t, p, 8, 64*time.Millisecond).Makespan
	if float64(m64) > 1.35*float64(m0) {
		t.Errorf("64ms latency grew makespan %v -> %v; master-worker class should tolerate it", m0, m64)
	}
}

func TestRealtimeFarm(t *testing.T) {
	prog, err := BuildProgramFor(&Params{Tasks: 50, Prefetch: 2, Spin: 10_000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*Result)
	if math.Abs(res.Sum-expectedSum(50)) > 1e-9 {
		t.Errorf("sum = %v", res.Sum)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan measured")
	}
}

func TestDedicatedMasterAvoidsResupplyStalls(t *testing.T) {
	// With a worker sharing PE 0, its 50ms tasks block the master's
	// result handling and stall every other worker's resupply at
	// prefetch 1; a dedicated master PE removes the stall.
	shared := &Params{Tasks: 96, Prefetch: 1, TaskCost: 50 * time.Millisecond, Workers: 8}
	dedicated := &Params{Tasks: 96, Prefetch: 1, TaskCost: 50 * time.Millisecond, Workers: 7, DedicatedMaster: true}
	ms := runFarm(t, shared, 8, 0).Makespan
	md := runFarm(t, dedicated, 8, 0).Makespan
	if float64(md) > 0.85*float64(ms) {
		t.Errorf("dedicated master (%v) did not beat co-located master (%v)", md, ms)
	}
	// Dedicated farm should sit near its compute bound: 96/7 ceil = 14 rounds.
	bound := 14 * 50 * time.Millisecond
	if float64(md) > 1.2*float64(bound) {
		t.Errorf("dedicated makespan %v, want near %v", md, bound)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []*Params{
		{Tasks: 0, Prefetch: 1},
		{Tasks: 1, Prefetch: 0},
		{Tasks: 1, Prefetch: 1, TaskCost: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := BuildProgram(&Params{Tasks: 1, Prefetch: 1}); err == nil {
		t.Error("zero workers accepted by BuildProgram")
	}
}
