package taskfarm

import (
	"encoding/binary"
	"fmt"
	"math"

	"gridmdo/internal/core"
)

// The sharded farm's wire protocol. Batched grants and results amortize
// per-message framing the way core.Queue's PopBatch amortizes the queue
// lock: one message carries Batch tasks, so the dispatcher's per-task
// cost degrades from (assign + frame) to (assign + frame/Batch). Every
// protocol type below registers a compact varint payload codec in the
// wire-codec registry, so none of them ever touches the gob fallback —
// at millions of tasks the codec *is* the hot path.

// taskRange is a contiguous run of task sequence numbers [Lo, Lo+N).
// Shards track and transfer the task space as range lists, so a grant of
// 64 consecutive tasks costs a handful of varint bytes, not 64 integers.
type taskRange struct {
	Lo int64
	N  int64
}

// taskBatchMsg grants a batch of tasks to one worker.
type taskBatchMsg struct {
	Shard  int32       // granting shard; results return to it
	Ranges []taskRange // tasks in execution order
	bytes  int         // modeled payload size (TaskBytes × task count)
}

// PayloadBytes implements core.Sizer.
func (t taskBatchMsg) PayloadBytes() int {
	if t.bytes > 0 {
		return t.bytes
	}
	return core.DefaultPayloadBytes
}

// count is the number of tasks granted.
func (t taskBatchMsg) count() int64 {
	var n int64
	for _, r := range t.Ranges {
		n += r.N
	}
	return n
}

// resultBatchMsg returns one grant's aggregated results. Values are
// pre-reduced by the worker: the float sum (verification, tolerance
// compare) and the wrapping bit-pattern checksum (bit-exact compare,
// order-independent by construction). Serve farms additionally echo the
// executed ranges with one value per task (in range order), so the
// submitter can route each result back to the job that asked for it;
// batch runs leave both nil and pay nothing extra on the wire.
type resultBatchMsg struct {
	Worker int32
	Done   int32
	Sum    float64
	Check  uint64
	Ranges []taskRange // serve farms only
	Values []float64   // serve farms only; len == total task count of Ranges
	bytes  int
}

// PayloadBytes implements core.Sizer.
func (r resultBatchMsg) PayloadBytes() int {
	if r.bytes > 0 {
		return r.bytes
	}
	return core.DefaultPayloadBytes
}

// stealReqMsg asks a victim shard for work.
type stealReqMsg struct {
	Thief int32
}

// stealRspMsg answers a steal request; empty Ranges means the victim had
// nothing to spare.
type stealRspMsg struct {
	Victim int32
	Ranges []taskRange
}

// progressMsg reports a completion delta from a shard to the root
// collector — one per result batch, so the root's message load is 1/Batch
// of the task count and its per-message work is a few adds.
type progressMsg struct {
	Shard  int32
	Done   int32
	Sum    float64
	Check  uint64
	Ranges []taskRange // serve farms only (see resultBatchMsg)
	Values []float64   // serve farms only
}

// submitMsg injects externally submitted task ranges into a live shard's
// pending deque — the serve farm's ingest path. Posted (not Sent) by a
// Service from outside the runtime's PE goroutines.
type submitMsg struct {
	Ranges []taskRange
}

// shardReportMsg is a shard's final tally, sent when the root announces
// global completion.
type shardReportMsg struct {
	Shard      int32
	PerW       []int32 // completed per owned worker, wLo-relative
	Granted    int64
	Steals     int64
	StealFails int64
	Stolen     int64
	Victimized int64
}

// Payload codec tags (application range starts at 64).
const (
	tagTaskBatch   byte = 64
	tagResultBatch byte = 65
	tagStealReq    byte = 66
	tagStealRsp    byte = 67
	tagProgress    byte = 68
	tagShardReport byte = 69
	tagTask        byte = 70
	tagResult      byte = 71
	tagSubmit      byte = 72
)

// appendRanges encodes a range list: uvarint count, then per range a
// signed-varint delta from the previous range's end (the first is
// absolute) and a uvarint length. Grants usually carry one or two
// near-adjacent ranges, so the whole list is a few bytes.
func appendRanges(dst []byte, rs []taskRange) []byte {
	dst = core.AppendUvarint(dst, uint64(len(rs)))
	prevEnd := int64(0)
	for _, r := range rs {
		dst = core.AppendVarint(dst, r.Lo-prevEnd)
		dst = core.AppendUvarint(dst, uint64(r.N))
		prevEnd = r.Lo + r.N
	}
	return dst
}

func consumeRanges(b []byte) ([]taskRange, []byte, error) {
	n, b, err := core.ConsumeUvarint(b)
	if err != nil {
		return nil, b, err
	}
	// Each range costs at least two bytes; reject counts the remaining
	// input cannot satisfy before allocating.
	if n > uint64(len(b)) {
		return nil, b, fmt.Errorf("%w: range list count %d exceeds input", core.ErrBadWire, n)
	}
	if n == 0 {
		return nil, b, nil
	}
	rs := make([]taskRange, n)
	prevEnd := int64(0)
	for i := range rs {
		var d int64
		var c uint64
		if d, b, err = core.ConsumeVarint(b); err != nil {
			return nil, b, err
		}
		if c, b, err = core.ConsumeUvarint(b); err != nil {
			return nil, b, err
		}
		rs[i] = taskRange{Lo: prevEnd + d, N: int64(c)}
		prevEnd = rs[i].Lo + rs[i].N
	}
	return rs, b, nil
}

// appendValues encodes a per-task value list: uvarint count then 8 bytes
// per value. Empty (the batch-run case) costs one byte.
func appendValues(dst []byte, vs []float64) []byte {
	dst = core.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

func consumeValues(b []byte) ([]float64, []byte, error) {
	n, b, err := core.ConsumeUvarint(b)
	if err != nil {
		return nil, b, err
	}
	if n*8 > uint64(len(b)) {
		return nil, b, fmt.Errorf("%w: value list count %d exceeds input", core.ErrBadWire, n)
	}
	if n == 0 {
		return nil, b, nil
	}
	vs := make([]float64, n)
	for i := range vs {
		if vs[i], b, err = consumeF64(b); err != nil {
			return nil, b, err
		}
	}
	return vs, b, nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func consumeF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, fmt.Errorf("%w: truncated float64", core.ErrBadWire)
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func init() {
	core.RegisterPayloadCodec(tagTaskBatch, taskBatchMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(taskBatchMsg)
			dst = core.AppendVarint(dst, int64(m.Shard))
			dst = core.AppendUvarint(dst, uint64(m.bytes))
			return appendRanges(dst, m.Ranges), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			var m taskBatchMsg
			s, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			by, b, err := core.ConsumeUvarint(b)
			if err != nil {
				return nil, b, err
			}
			rs, b, err := consumeRanges(b)
			if err != nil {
				return nil, b, err
			}
			m.Shard, m.bytes, m.Ranges = int32(s), int(by), rs
			return m, b, nil
		},
	})
	core.RegisterPayloadCodec(tagResultBatch, resultBatchMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(resultBatchMsg)
			dst = core.AppendVarint(dst, int64(m.Worker))
			dst = core.AppendVarint(dst, int64(m.Done))
			dst = core.AppendUvarint(dst, uint64(m.bytes))
			dst = appendF64(dst, m.Sum)
			dst = binary.BigEndian.AppendUint64(dst, m.Check)
			dst = appendRanges(dst, m.Ranges)
			return appendValues(dst, m.Values), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			var m resultBatchMsg
			w, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			d, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			by, b, err := core.ConsumeUvarint(b)
			if err != nil {
				return nil, b, err
			}
			sum, b, err := consumeF64(b)
			if err != nil {
				return nil, b, err
			}
			if len(b) < 8 {
				return nil, b, fmt.Errorf("%w: truncated checksum", core.ErrBadWire)
			}
			m.Worker, m.Done, m.bytes = int32(w), int32(d), int(by)
			m.Sum, m.Check = sum, binary.BigEndian.Uint64(b)
			b = b[8:]
			if m.Ranges, b, err = consumeRanges(b); err != nil {
				return nil, b, err
			}
			if m.Values, b, err = consumeValues(b); err != nil {
				return nil, b, err
			}
			return m, b, nil
		},
	})
	core.RegisterPayloadCodec(tagStealReq, stealReqMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			return core.AppendVarint(dst, int64(v.(stealReqMsg).Thief)), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			t, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			return stealReqMsg{Thief: int32(t)}, b, nil
		},
	})
	core.RegisterPayloadCodec(tagStealRsp, stealRspMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(stealRspMsg)
			dst = core.AppendVarint(dst, int64(m.Victim))
			return appendRanges(dst, m.Ranges), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			vi, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			rs, b, err := consumeRanges(b)
			if err != nil {
				return nil, b, err
			}
			return stealRspMsg{Victim: int32(vi), Ranges: rs}, b, nil
		},
	})
	core.RegisterPayloadCodec(tagProgress, progressMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(progressMsg)
			dst = core.AppendVarint(dst, int64(m.Shard))
			dst = core.AppendVarint(dst, int64(m.Done))
			dst = appendF64(dst, m.Sum)
			dst = binary.BigEndian.AppendUint64(dst, m.Check)
			dst = appendRanges(dst, m.Ranges)
			return appendValues(dst, m.Values), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			var m progressMsg
			s, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			d, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			sum, b, err := consumeF64(b)
			if err != nil {
				return nil, b, err
			}
			if len(b) < 8 {
				return nil, b, fmt.Errorf("%w: truncated checksum", core.ErrBadWire)
			}
			m.Shard, m.Done, m.Sum, m.Check = int32(s), int32(d), sum, binary.BigEndian.Uint64(b)
			b = b[8:]
			if m.Ranges, b, err = consumeRanges(b); err != nil {
				return nil, b, err
			}
			if m.Values, b, err = consumeValues(b); err != nil {
				return nil, b, err
			}
			return m, b, nil
		},
	})
	core.RegisterPayloadCodec(tagSubmit, submitMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			return appendRanges(dst, v.(submitMsg).Ranges), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			rs, b, err := consumeRanges(b)
			if err != nil {
				return nil, b, err
			}
			return submitMsg{Ranges: rs}, b, nil
		},
	})
	core.RegisterPayloadCodec(tagShardReport, shardReportMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(shardReportMsg)
			dst = core.AppendVarint(dst, int64(m.Shard))
			dst = core.AppendUvarint(dst, uint64(len(m.PerW)))
			for _, n := range m.PerW {
				dst = core.AppendUvarint(dst, uint64(n))
			}
			dst = core.AppendVarint(dst, m.Granted)
			dst = core.AppendVarint(dst, m.Steals)
			dst = core.AppendVarint(dst, m.StealFails)
			dst = core.AppendVarint(dst, m.Stolen)
			return core.AppendVarint(dst, m.Victimized), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			var m shardReportMsg
			s, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			m.Shard = int32(s)
			n, b, err := core.ConsumeUvarint(b)
			if err != nil {
				return nil, b, err
			}
			if n > uint64(len(b)) {
				return nil, b, fmt.Errorf("%w: per-worker tally count %d exceeds input", core.ErrBadWire, n)
			}
			if n > 0 {
				m.PerW = make([]int32, n)
				for i := range m.PerW {
					var c uint64
					if c, b, err = core.ConsumeUvarint(b); err != nil {
						return nil, b, err
					}
					m.PerW[i] = int32(c)
				}
			}
			for _, dst := range []*int64{&m.Granted, &m.Steals, &m.StealFails, &m.Stolen, &m.Victimized} {
				if *dst, b, err = core.ConsumeVarint(b); err != nil {
					return nil, b, err
				}
			}
			return m, b, nil
		},
	})
	// The single-master protocol rides the same registry: taskMsg and
	// resultMsg predate the batch layer but there is no reason for them
	// to pay the gob fallback on TCP deployments.
	core.RegisterPayloadCodec(tagTask, taskMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(taskMsg)
			dst = core.AppendVarint(dst, int64(m.Seq))
			return core.AppendUvarint(dst, uint64(m.bytes)), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			s, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			by, b, err := core.ConsumeUvarint(b)
			if err != nil {
				return nil, b, err
			}
			return taskMsg{Seq: int(s), bytes: int(by)}, b, nil
		},
	})
	core.RegisterPayloadCodec(tagResult, resultMsg{}, core.PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			m := v.(resultMsg)
			dst = core.AppendVarint(dst, int64(m.Seq))
			dst = core.AppendVarint(dst, int64(m.Worker))
			dst = core.AppendUvarint(dst, uint64(m.bytes))
			return appendF64(dst, m.Value), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			s, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			w, b, err := core.ConsumeVarint(b)
			if err != nil {
				return nil, b, err
			}
			by, b, err := core.ConsumeUvarint(b)
			if err != nil {
				return nil, b, err
			}
			val, b, err := consumeF64(b)
			if err != nil {
				return nil, b, err
			}
			return resultMsg{Seq: int(s), Worker: int(w), Value: val, bytes: int(by)}, b, nil
		},
	})
}
