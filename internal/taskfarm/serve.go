package taskfarm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gridmdo/internal/core"
)

// Serve-mode farming: the farm as a long-running service instead of a
// fixed batch. A Params with Serve set builds the same sharded topology
// (root, dispatcher shards, workers) but starts with an empty task space
// and never exits on its own; task ranges enter through a Service bound
// to the live runtime, riding the same rt.Post path the elastic Notifier
// uses for membership events. The shards treat injected ranges exactly
// like statically owned ones — prefetch pipelining, batching, and work
// stealing all apply — so an externally fed farm masks latency the same
// way a batch farm does.

// Submitter accepts externally generated tasks into a live farm. The
// gate package's ingest loop depends on this shape (structurally, not
// nominally), so anything that can allocate contiguous task sequence
// numbers and get them executed can stand in for a real farm in tests.
type Submitter interface {
	// Submit injects n tasks and returns the sequence number of the
	// first; the tasks occupy [lo, lo+n). It is safe to call from any
	// goroutine.
	Submit(n int) (lo int64, err error)
}

// Service is the ingest front of a serve farm. It allocates task
// sequence numbers, posts submissions round-robin onto the dispatcher
// shards, and routes per-task completions (delivered to the root chare
// via Params.OnTaskDone) back to the embedding process's callback.
//
// Construction order mirrors the elastic Notifier: NewService wires
// itself into the Params before BuildProgram consumes them, then Bind
// attaches the runtime once it exists. Submissions before Bind fail
// rather than queue — the caller owns buffering (the gate's admission
// queues do exactly that).
type Service struct {
	p *Params

	mu   sync.Mutex
	rt   *core.Runtime
	next int64    // next unallocated task seq
	rr   int      // round-robin shard cursor
	done []uint64 // completion bitmap, indexed by seq

	onResult atomic.Pointer[func(seq int64, value float64)]

	completed atomic.Int64
	doubles   atomic.Int64
}

// NewService prepares a serve farm's ingest service. Params must have
// Serve set; the service installs itself as the farm's OnTaskDone hook.
func NewService(p *Params) (*Service, error) {
	if !p.Serve {
		return nil, fmt.Errorf("taskfarm: NewService requires Params.Serve")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.OnTaskDone != nil {
		return nil, fmt.Errorf("taskfarm: Params.OnTaskDone is owned by the Service in serve mode")
	}
	s := &Service{p: p}
	p.OnTaskDone = s.taskDone
	return s, nil
}

// Bind attaches the live runtime. Call it on the process hosting the
// root and shards (the gateway node) after the runtime is built and
// before serving traffic.
func (s *Service) Bind(rt *core.Runtime) {
	s.mu.Lock()
	s.rt = rt
	s.mu.Unlock()
}

// OnResult registers the completion callback. fn runs on the root
// chare's PE goroutine — it must be cheap and non-blocking (hand off to
// a channel or lock-free structure, don't do I/O).
func (s *Service) OnResult(fn func(seq int64, value float64)) {
	s.onResult.Store(&fn)
}

// Submit implements Submitter: it allocates n consecutive sequence
// numbers, posts them as one range to the next shard in round-robin
// order, and returns the first. The per-message cost is therefore
// amortized over the batch the caller accumulated, mirroring the grant
// batching on the worker side.
func (s *Service) Submit(n int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("taskfarm: submit %d tasks", n)
	}
	s.mu.Lock()
	if s.rt == nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("taskfarm: service not bound to a runtime")
	}
	lo := s.next
	s.next += int64(n)
	sh := s.rr
	s.rr = (s.rr + 1) % s.p.Shards
	rt := s.rt
	s.mu.Unlock()
	rt.Post(core.ElemRef{Array: ArrayShard, Index: sh}, entrySubmit,
		submitMsg{Ranges: []taskRange{{Lo: lo, N: int64(n)}}})
	return lo, nil
}

// SubmitTraced is Submit with a causal trace parent: the submission
// message posted to the shard carries parent as its trace Parent, and
// the message's ID is returned alongside the range start — so a
// telemetry span tree rooted at, say, a gateway job's admission links
// injection → shard grant → worker execution causally. parent 0 is
// plain Submit with the ID still returned.
func (s *Service) SubmitTraced(n int, parent uint64) (int64, uint64, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("taskfarm: submit %d tasks", n)
	}
	s.mu.Lock()
	if s.rt == nil {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("taskfarm: service not bound to a runtime")
	}
	lo := s.next
	s.next += int64(n)
	sh := s.rr
	s.rr = (s.rr + 1) % s.p.Shards
	rt := s.rt
	s.mu.Unlock()
	msgID := rt.PostTraced(core.ElemRef{Array: ArrayShard, Index: sh}, entrySubmit,
		submitMsg{Ranges: []taskRange{{Lo: lo, N: int64(n)}}}, parent)
	return lo, msgID, nil
}

// taskDone is the farm's OnTaskDone hook: bookkeeping first (so the
// double-execution audit sees every completion even if the callback
// panics), then the registered callback.
func (s *Service) taskDone(seq int64, value float64) {
	s.mu.Lock()
	w, b := int(seq/64), uint64(1)<<(seq%64)
	for w >= len(s.done) {
		s.done = append(s.done, 0)
	}
	dup := s.done[w]&b != 0
	s.done[w] |= b
	s.mu.Unlock()
	if dup {
		// A task executed twice. The farm's exactly-once machinery
		// (FIFO settlement + epoch fencing) should make this impossible;
		// the counter exists so soak tests can assert it stays 0.
		s.doubles.Add(1)
		return
	}
	s.completed.Add(1)
	if fn := s.onResult.Load(); fn != nil {
		(*fn)(seq, value)
	}
}

// Completed reports how many distinct tasks have finished.
func (s *Service) Completed() int64 { return s.completed.Load() }

// DoubleExecs reports how many completions arrived for an
// already-completed sequence number — 0 unless exactly-once is broken.
func (s *Service) DoubleExecs() int64 { return s.doubles.Load() }

// Submitted reports how many task sequence numbers have been allocated.
func (s *Service) Submitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

var _ Submitter = (*Service)(nil)
