package taskfarm

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
)

// The sharded farm replaces the single dispatcher with a chare array of
// dispatcher shards. The WRONJ analysis (SNIPPETS.md §2) caps a single
// master's useful worker count at JT/AT — job time over per-assignment
// dispatcher time; past that knee extra workers just queue at the master.
// Sharding multiplies the aggregate assignment rate by the shard count
// (each shard owns a contiguous slice of the task space and of the worker
// array, so the slices never contend), batching divides the per-task
// framing cost by Batch, and randomized work stealing keeps the static
// partition from stranding cycles when per-task cost is skewed.
//
// Topology of a sharded run:
//
//	root (ArrayMaster/0, PE 0)      — aggregates progress, owns the exit
//	shards (ArrayShard/s)           — own tasks [s·T/S, (s+1)·T/S) and
//	                                  workers [s·W/S, (s+1)·W/S); placed
//	                                  on the PE of their first worker
//	workers (ArrayWorker/w)         — block-mapped over all PEs
//
// Steady state per worker: the owning shard keeps Prefetch grants in
// flight; each resultBatchMsg triggers one new grant, and forwards a
// progressMsg delta to the root. When a shard's pending deque drains it
// asks a uniformly random other shard for half its pending work, bounded
// by StealTries consecutive refusals (an exhausted thief stays out of the
// steal market — stealing is an optimization, every task has an owner
// whose workers will run it regardless).

// farmMetrics bundles the farm's metrics handles. Handles are nil-safe,
// so a farm built without a registry carries no-op handles rather than
// branching at every observation site.
type farmMetrics struct {
	assignWait *metrics.Histogram // worker-observed gap between batches
	grants     *metrics.Counter   // grant messages sent
	granted    *metrics.Counter   // tasks granted
	steals     *metrics.Counter   // successful steal acquisitions
	stealFails *metrics.Counter   // steal requests answered empty
	stolen     *metrics.Counter   // tasks moved between shards

	// workerDone counts tasks executed by workers hosted on this process.
	// Unlike grants/granted/shardTasks — which increment on the shard
	// side and so accumulate only where the shards live — every task
	// lands in exactly one worker's count, so summing this series across
	// a cluster's nodes yields the exact number of tasks executed: the
	// invariant the telemetry collector's aggregate view is checked
	// against.
	workerDone *metrics.Counter

	shardTasks []*metrics.Counter // completed per shard (sharded farms)
}

func newFarmMetrics(p *Params) *farmMetrics {
	r := p.Metrics // nil is a valid "metrics off" registry
	fm := &farmMetrics{
		assignWait: r.Histogram("taskfarm_assign_wait_ns", metrics.DurationBuckets),
		grants:     r.Counter("taskfarm_grants_total"),
		granted:    r.Counter("taskfarm_tasks_granted_total"),
		steals:     r.Counter("taskfarm_steals_total"),
		stealFails: r.Counter("taskfarm_steal_fails_total"),
		stolen:     r.Counter("taskfarm_stolen_tasks_total"),
		workerDone: r.Counter("taskfarm_worker_tasks_total"),
	}
	if p.Shards > 1 {
		fm.shardTasks = make([]*metrics.Counter, p.Shards)
		for i := range fm.shardTasks {
			fm.shardTasks[i] = r.Counter("taskfarm_shard_tasks_total",
				metrics.L("shard", strconv.Itoa(i)))
		}
	}
	return fm
}

func (fm *farmMetrics) shardDone(id int, n int64) {
	if id < len(fm.shardTasks) {
		fm.shardTasks[id].Add(n)
	}
}

// stealTries is the effective consecutive-failure bound.
func (p *Params) stealTries() int {
	if p.StealTries <= 0 {
		return 4
	}
	return p.StealTries
}

// recvBatch executes one grant and replies with pre-reduced results. The
// gap between finishing the previous batch and this one arriving is the
// worker-observed assignment wait — the WRONJ "rest" time that grows
// past the knee.
func (w *worker) recvBatch(ctx *core.Ctx, t taskBatchMsg) {
	w.fm.assignWait.Observe(int64(ctx.Time() - w.lastDone))
	var (
		sum    float64
		check  uint64
		done   int32
		values []float64
	)
	if w.p.Serve {
		// A serve farm's submitters want each task's value back, not just
		// the reduction — echo them alongside the granted ranges.
		values = make([]float64, 0, t.count())
	}
	for _, r := range t.Ranges {
		for seq := r.Lo; seq < r.Lo+r.N; seq++ {
			v := runTask(ctx, w.p, int(seq))
			sum += v
			check += math.Float64bits(v)
			done++
			if values != nil {
				values = append(values, v)
			}
		}
	}
	w.lastDone = ctx.Time()
	w.fm.workerDone.Add(int64(done))
	rb := resultBatchMsg{Worker: int32(w.id), Done: done, Sum: sum, Check: check,
		bytes: w.p.TaskBytes * int(done)}
	if values != nil {
		rb.Ranges, rb.Values = t.Ranges, values
	}
	ctx.Send(core.ElemRef{Array: ArrayShard, Index: int(t.Shard)}, entryResultBatch, rb)
}

// shard is one dispatcher in the sharded farm.
type shard struct {
	p   *Params
	id  int
	fm  *farmMetrics
	wLo int // first owned worker (absolute index)

	// pending is the undispatched task deque as ranges: grants pop the
	// front (preserving sequential order for cache-friendly victims),
	// steals pop the back (the work the owner would reach last).
	pending []taskRange
	avail   int64 // total tasks across pending

	out  []int   // outstanding grants per owned worker (wLo-relative)
	perW []int32 // completed per owned worker (wLo-relative)

	granted    int64 // tasks granted
	grants     int64 // grant messages
	steals     int64 // successful acquisitions as thief
	stealFails int64 // refused requests as thief
	stolenIn   int64 // tasks acquired by stealing
	victimized int64 // tasks given away

	rng      uint64 // splitmix64 state for victim selection
	fails    int    // consecutive refusals this drain episode
	stealing bool   // a steal request is in flight

	// Elastic state (see elastic.go; quiet in static farms). outRanges
	// mirrors out as the FIFO of granted-but-unsettled task ranges per
	// owned worker — results settle it from the front by task count, a
	// death re-queues whatever remains. grantable/drainNode are nil
	// until the first membership notification.
	outRanges [][]taskRange
	grantable []bool  // grants may flow to this worker (nil: all may)
	drainNode []int32 // node draining under this worker, -1 none (nil: none)
}

// newShard builds shard id with its statically owned task and worker
// slices. The pending deque is populated at construction, not at
// entryShardStart, so a steal request that races ahead of the start
// broadcast still sees the victim's real inventory.
func newShard(p *Params, id int, fm *farmMetrics) *shard {
	ns, nw := p.Shards, p.Workers
	wLo, wHi := id*nw/ns, (id+1)*nw/ns
	tLo, tHi := id*p.Tasks/ns, (id+1)*p.Tasks/ns
	s := &shard{
		p: p, id: id, fm: fm, wLo: wLo,
		out:       make([]int, wHi-wLo),
		perW:      make([]int32, wHi-wLo),
		outRanges: make([][]taskRange, wHi-wLo),
		rng:       p.Seed ^ (uint64(id+1) * 0xd1342543de82ef95),
	}
	if tHi > tLo {
		s.pending = []taskRange{{Lo: int64(tLo), N: int64(tHi - tLo)}}
		s.avail = int64(tHi - tLo)
	}
	return s
}

// nextRand steps the splitmix64 generator — deterministic, per-shard, and
// PUPable, unlike math/rand's hidden global state.
func (s *shard) nextRand() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *shard) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case entryShardStart:
		s.fill(ctx)
		s.maybeSteal(ctx) // a zero-task shard can start thieving at once
	case entryResultBatch:
		rb := data.(resultBatchMsg)
		wi := int(rb.Worker) - s.wLo
		s.out[wi]--
		s.settleOutstanding(wi, int64(rb.Done))
		s.perW[wi] += rb.Done
		s.fm.shardDone(s.id, int64(rb.Done))
		ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryProgress,
			progressMsg{Shard: int32(s.id), Done: rb.Done, Sum: rb.Sum, Check: rb.Check,
				Ranges: rb.Ranges, Values: rb.Values})
		if s.avail > 0 {
			s.grantTo(ctx, wi)
		} else {
			s.maybeSteal(ctx)
		}
		s.drainClearCheck(ctx, wi)
	case entrySubmit:
		sm := data.(submitMsg)
		var n int64
		for _, r := range sm.Ranges {
			n += r.N
		}
		if n == 0 {
			break
		}
		s.pending = append(s.pending, sm.Ranges...)
		s.avail += n
		// New inventory reopens the steal market for this shard's next
		// drain episode and tops every idle worker back up.
		s.fails = 0
		s.fill(ctx)
	case entryStealReq:
		rq := data.(stealReqMsg)
		var give []taskRange
		// Hand over half of pending, but never break a final batch: a
		// victim with one batch or less refuses, which is what lets the
		// endgame converge (all-refused thieves retire after StealTries).
		if s.avail > int64(s.p.batch()) {
			give = s.popBack(s.avail / 2)
			var n int64
			for _, r := range give {
				n += r.N
			}
			s.victimized += n
			s.fm.stolen.Add(n)
		}
		ctx.Send(core.ElemRef{Array: ArrayShard, Index: int(rq.Thief)}, entryStealRsp,
			stealRspMsg{Victim: int32(s.id), Ranges: give})
	case entryStealRsp:
		rsp := data.(stealRspMsg)
		s.stealing = false
		var got int64
		for _, r := range rsp.Ranges {
			got += r.N
		}
		if got > 0 {
			s.steals++
			s.stolenIn += got
			s.fails = 0
			s.fm.steals.Inc()
			s.pending = append(s.pending, rsp.Ranges...)
			s.avail += got
			s.fill(ctx)
		} else {
			s.fails++
			s.stealFails++
			s.fm.stealFails.Inc()
		}
		s.maybeSteal(ctx)
	case entryMembers:
		mm := data.(shardMembersMsg)
		s.grantable = mm.Grantable
		s.drainNode = mm.Drain
		for _, wi := range mm.Requeue {
			s.requeueWorker(int(wi))
		}
		s.fill(ctx)
		s.maybeSteal(ctx)
		for wi := range s.out {
			s.drainClearCheck(ctx, wi)
		}
	case entryReportReq:
		ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryReport,
			shardReportMsg{
				Shard: int32(s.id), PerW: s.perW,
				Granted: s.granted, Steals: s.steals, StealFails: s.stealFails,
				Stolen: s.stolenIn, Victimized: s.victimized,
			})
	default:
		panic(fmt.Sprintf("taskfarm: shard got entry %d", entry))
	}
}

// chunk is the guided-self-scheduling grant size: Batch while inventory
// is deep, shrinking with the remaining pool (divided across the up-to
// 2 x Prefetch x workers grants the pipeline keeps in flight) so the tail
// is granted in slivers. Without the taper a large Batch x Prefetch x
// workers product pre-grants the shard's whole slice into worker queues
// at start, where neither stealing nor self-scheduling can rebalance it.
func (s *shard) chunk() int64 {
	c := s.avail / int64(2*s.p.Prefetch*len(s.out))
	if c < 1 {
		c = 1
	}
	if b := int64(s.p.batch()); c > b {
		c = b
	}
	return c
}

// grantTo pops one chunk and sends it to owned worker wi. The per-task
// AssignCost charge is what makes the dispatcher a modeled bottleneck —
// batching amortizes framing, not assignment work.
func (s *shard) grantTo(ctx *core.Ctx, wi int) {
	if !s.canGrant(wi) {
		return
	}
	rs := s.popFront(s.chunk())
	if len(rs) == 0 {
		return
	}
	var n int64
	for _, r := range rs {
		n += r.N
	}
	if s.p.AssignCost > 0 {
		ctx.Charge(time.Duration(n) * s.p.AssignCost)
	}
	s.grants++
	s.granted += n
	s.out[wi]++
	s.outRanges[wi] = append(s.outRanges[wi], rs...)
	s.fm.grants.Inc()
	s.fm.granted.Add(n)
	ctx.Send(core.ElemRef{Array: ArrayWorker, Index: s.wLo + wi}, entryTaskBatch,
		taskBatchMsg{Shard: int32(s.id), Ranges: rs, bytes: s.p.TaskBytes * int(n)})
}

// fill tops every owned worker up to Prefetch outstanding grants,
// round-robin so a short supply seeds workers evenly.
func (s *shard) fill(ctx *core.Ctx) {
	for more := true; more && s.avail > 0; {
		more = false
		for wi := range s.out {
			if s.avail == 0 {
				break
			}
			if s.out[wi] < s.p.Prefetch && s.canGrant(wi) {
				s.grantTo(ctx, wi)
				more = true
			}
		}
	}
}

// maybeSteal fires one steal request at a uniformly random other shard if
// this shard is drained, no request is already in flight, and the drain
// episode hasn't exhausted its tries.
func (s *shard) maybeSteal(ctx *core.Ctx) {
	ns := s.p.Shards
	if !s.p.Steal || ns < 2 || s.stealing || s.avail > 0 || s.fails >= s.p.stealTries() {
		return
	}
	v := int(s.nextRand() % uint64(ns-1))
	if v >= s.id {
		v++
	}
	s.stealing = true
	ctx.Send(core.ElemRef{Array: ArrayShard, Index: v}, entryStealReq,
		stealReqMsg{Thief: int32(s.id)})
}

// popFront removes up to n tasks from the front of the deque.
func (s *shard) popFront(n int64) []taskRange {
	var out []taskRange
	for n > 0 && len(s.pending) > 0 {
		r := &s.pending[0]
		take := r.N
		if take > n {
			take = n
		}
		out = append(out, taskRange{Lo: r.Lo, N: take})
		r.Lo += take
		r.N -= take
		n -= take
		s.avail -= take
		if r.N == 0 {
			s.pending = s.pending[1:]
		}
	}
	return out
}

// popBack removes up to n tasks from the back of the deque.
func (s *shard) popBack(n int64) []taskRange {
	var out []taskRange
	for n > 0 && len(s.pending) > 0 {
		r := &s.pending[len(s.pending)-1]
		take := r.N
		if take > n {
			take = n
		}
		out = append(out, taskRange{Lo: r.Lo + r.N - take, N: take})
		r.N -= take
		n -= take
		s.avail -= take
		if r.N == 0 {
			s.pending = s.pending[:len(s.pending)-1]
		}
	}
	return out
}

// canGrant reports whether grants may flow to owned worker wi. A farm
// that never saw a membership notification grants to everyone.
func (s *shard) canGrant(wi int) bool {
	return s.grantable == nil || s.grantable[wi]
}

// settleOutstanding removes n completed tasks from the front of worker
// wi's outstanding-range FIFO. Grants are executed and answered in
// order and the transport delivers in order, so a result always settles
// the oldest unsettled ranges.
func (s *shard) settleOutstanding(wi int, n int64) {
	q := s.outRanges[wi]
	for n > 0 && len(q) > 0 {
		r := &q[0]
		take := r.N
		if take > n {
			take = n
		}
		r.Lo += take
		r.N -= take
		n -= take
		if r.N == 0 {
			q = q[1:]
		}
	}
	s.outRanges[wi] = q
}

// requeueWorker returns worker wi's unsettled grants to the front of the
// pending deque — the death path. The worker's node is gone, so no
// result for these ranges can ever arrive (frames from the dead node
// are epoch-fenced below the runtime); granting them again is safe.
func (s *shard) requeueWorker(wi int) {
	q := s.outRanges[wi]
	if len(q) == 0 {
		s.out[wi] = 0
		return
	}
	var n int64
	for _, r := range q {
		n += r.N
	}
	s.pending = append(append([]taskRange{}, q...), s.pending...)
	s.avail += n
	s.out[wi] = 0
	s.outRanges[wi] = nil
}

// drainClearCheck tells the root when a draining worker's outstanding
// count reaches zero — this shard's contribution to drain completion.
// Fires once per worker per drain episode.
func (s *shard) drainClearCheck(ctx *core.Ctx, wi int) {
	if s.drainNode == nil || s.drainNode[wi] < 0 || s.out[wi] != 0 {
		return
	}
	node := s.drainNode[wi]
	s.drainNode[wi] = -1
	ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryDrainClear,
		drainClearMsg{Node: node, Worker: int32(s.wLo + wi)})
}

// root aggregates shard progress and owns the run's exit. It never
// touches individual tasks: its message load is one progressMsg per
// result batch plus one report per shard, so it is not a WRONJ
// bottleneck at any modeled scale.
type root struct {
	p       *Params
	shards  int
	workers int

	started  time.Duration
	makespan time.Duration
	done     int
	sum      float64
	check    uint64

	reports    int
	perW       []int
	perShard   []int
	steals     int
	stealFails int
	stolen     int

	// Drain bookkeeping (elastic farms): per draining node, how many
	// worker clears to await and which workers have cleared. Coordinator-
	// local and transient — a checkpoint taken mid-drain restarts the
	// drain, it does not lose tasks.
	drainExpect map[int32]int
	drainSeen   map[int32]map[int32]bool
}

// checkDrained fires Params.OnDrained once every expected worker on a
// draining node has cleared its outstanding grants.
func (r *root) checkDrained(node int32) {
	if len(r.drainSeen[node]) < r.drainExpect[node] {
		return
	}
	delete(r.drainSeen, node)
	delete(r.drainExpect, node)
	if r.p.OnDrained != nil {
		r.p.OnDrained(int(node))
	}
}

func (r *root) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case entryStart:
		r.started = ctx.Time()
		r.perW = make([]int, r.workers)
		r.perShard = make([]int, r.shards)
		ctx.Broadcast(ArrayShard, entryShardStart, nil)
	case entryProgress:
		pm := data.(progressMsg)
		r.done += int(pm.Done)
		r.sum += pm.Sum
		r.check += pm.Check
		if r.p.OnTaskDone != nil {
			i := 0
			for _, rg := range pm.Ranges {
				for seq := rg.Lo; seq < rg.Lo+rg.N; seq++ {
					r.p.OnTaskDone(seq, pm.Values[i])
					i++
				}
			}
		}
		if !r.p.Serve && r.done == r.p.Tasks {
			// Makespan is pinned here; the report round-trip below is
			// accounting, not farm time. A serve farm never self-exits:
			// its task space is open-ended and the embedding process owns
			// the runtime's lifetime.
			r.makespan = ctx.Time() - r.started
			ctx.Broadcast(ArrayShard, entryReportReq, nil)
		}
	case entryMembersRoot:
		rm := data.(rootMembersMsg)
		if r.drainSeen == nil {
			r.drainExpect = make(map[int32]int)
			r.drainSeen = make(map[int32]map[int32]bool)
		}
		r.drainExpect[rm.DrainNode] = int(rm.Expect)
		if r.drainSeen[rm.DrainNode] == nil {
			r.drainSeen[rm.DrainNode] = make(map[int32]bool)
		}
		r.checkDrained(rm.DrainNode)
	case entryDrainClear:
		dc := data.(drainClearMsg)
		seen := r.drainSeen[dc.Node]
		if seen == nil {
			break // the node already completed its drain
		}
		seen[dc.Worker] = true
		r.checkDrained(dc.Node)
	case entryReport:
		rm := data.(shardReportMsg)
		s := int(rm.Shard)
		wLo := s * r.workers / r.shards
		total := 0
		for i, c := range rm.PerW {
			r.perW[wLo+i] = int(c)
			total += int(c)
		}
		r.perShard[s] = total
		r.steals += int(rm.Steals)
		r.stealFails += int(rm.StealFails)
		r.stolen += int(rm.Stolen)
		r.reports++
		if r.reports == r.shards {
			ctx.ExitWith(&Result{
				Makespan:   r.makespan,
				PerTask:    r.makespan / time.Duration(r.p.Tasks),
				Tasks:      r.p.Tasks,
				Workers:    r.workers,
				Sum:        r.sum,
				Checksum:   r.check,
				PerWorker:  r.perW,
				Shards:     r.shards,
				PerShard:   r.perShard,
				Steals:     r.steals,
				StealFails: r.stealFails,
				StolenTask: r.stolen,
			})
		}
	default:
		panic(fmt.Sprintf("taskfarm: root got entry %d", entry))
	}
}

// buildSharded assembles the sharded farm program. Shard s is placed on
// the PE of its first owned worker, so grant/result traffic is intra-PE
// or at worst intra-cluster; only steal and progress traffic crosses the
// machine.
func buildSharded(p *Params) (*core.Program, error) {
	nw, ns := p.Workers, p.Shards
	fm := newFarmMetrics(p)
	workerPE := func(i, numPE int) int {
		if e := p.Elastic; e != nil {
			act := e.activePEs(numPE)
			return act[core.BlockMap(i, nw, len(act))]
		}
		if p.DedicatedMaster {
			if numPE == 1 {
				return 0
			}
			return 1 + core.BlockMap(i, nw, numPE-1)
		}
		return core.BlockMap(i, nw, numPE)
	}
	// Elastic farms pin the root and every dispatcher shard to the
	// coordinator's PEs: the membership notifier, the dispatchers, and
	// the drain protocol then share one process, and grants are the only
	// application traffic that crosses nodes.
	shardPE := func(s, numPE int) int {
		if e := p.Elastic; e != nil {
			cp := e.coordPEs(numPE)
			return cp[s%len(cp)]
		}
		return workerPE(s*nw/ns, numPE)
	}
	rootPE := func(_, numPE int) int {
		if e := p.Elastic; e != nil {
			return e.coordPEs(numPE)[0]
		}
		return 0
	}
	return &core.Program{
		Arrays: []core.ArraySpec{
			{
				ID: ArrayMaster, N: 1,
				Map: rootPE,
				New: func(int) core.Chare { return &root{p: p, shards: ns, workers: nw} },
			},
			{
				ID: ArrayWorker, N: nw,
				Map: workerPE,
				New: func(i int) core.Chare { return &worker{p: p, id: i, fm: fm} },
			},
			{
				ID: ArrayShard, N: ns,
				Map: shardPE,
				New: func(s int) core.Chare { return newShard(p, s, fm) },
			},
		},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryStart, nil)
		},
	}, nil
}
