// Package taskfarm implements a master/worker ("master-slave") farm, the
// application class the paper's introduction names as naturally
// Grid-tolerant: "master-slave style applications are also good
// candidates for Grid environments because they typically have small
// communication requirements and because communication delays are often
// not on the critical path."
//
// The farm self-schedules: the master seeds each worker with Prefetch
// outstanding tasks and sends a new one as each result returns, so a
// worker with Prefetch >= 2 always has a task in hand while the next one
// is in flight — the class's own latency-masking mechanism, complementing
// the object-level overlap the tightly-coupled applications rely on.
package taskfarm

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
)

// Arrays. The sharded farm (shard.go) adds ArrayShard; the single-master
// program uses only the first two.
const (
	ArrayMaster core.ArrayID = 0
	ArrayWorker core.ArrayID = 1
	ArrayShard  core.ArrayID = 2
)

// Entry methods.
const (
	entryStart       core.EntryID = 0  // master/root: begin farming
	entryTask        core.EntryID = 1  // worker: one task
	entryResult      core.EntryID = 2  // master: a worker's result
	entryTaskBatch   core.EntryID = 3  // worker: a batch of tasks from a shard
	entryResultBatch core.EntryID = 4  // shard: a worker's batched results
	entryStealReq    core.EntryID = 5  // shard: another shard asks for work
	entryStealRsp    core.EntryID = 6  // shard: a victim's reply (possibly empty)
	entryProgress    core.EntryID = 7  // root: completion delta from a shard
	entryShardStart  core.EntryID = 8  // shard: begin dispatching
	entryReportReq   core.EntryID = 9  // shard: root asks for the final tally
	entryReport      core.EntryID = 10 // root: a shard's final tally
	entryMembers     core.EntryID = 11 // shard: worker-set change (elastic farms)
	entryMembersRoot core.EntryID = 12 // root: drain expectation (elastic farms)
	entryDrainClear  core.EntryID = 13 // root: a draining worker's grants all settled
	entrySubmit      core.EntryID = 14 // shard: externally submitted tasks (serve farms)
)

// Params configures a farm run.
type Params struct {
	// Tasks is the number of independent work units.
	Tasks int
	// Workers is the worker count; 0 means one per PE.
	Workers int
	// Prefetch is the number of tasks kept in flight per worker (>= 1).
	Prefetch int
	// TaskCost is the modeled compute per task on the reference machine.
	TaskCost time.Duration
	// TaskBytes is the modeled payload size of task and result messages.
	TaskBytes int
	// Spin, if positive, makes workers do that many iterations of real
	// arithmetic per task (for wall-clock runs).
	Spin int

	// DedicatedMaster keeps workers off the master's PE (PE 0), so a
	// worker's compute never delays task resupply. Requires at least two
	// PEs when used with BuildProgramFor.
	DedicatedMaster bool

	// AssignCost is the modeled dispatcher CPU per task assignment — the
	// WRONJ "AT". The master (or shard) charges it for every task it
	// grants, so a single dispatcher's throughput caps at 1/AssignCost
	// and the knee at Workers ~= TaskCost/AssignCost is reproducible in
	// virtual time.
	AssignCost time.Duration

	// Shards > 1 replaces the single master with a chare array of
	// dispatcher shards (shard.go), each owning a contiguous slice of the
	// task space and of the worker array. 0 or 1 keeps the single master.
	Shards int

	// Batch is the number of tasks per grant message in the sharded farm
	// (results return batched the same way). 0 means 1: one task per
	// message, the single-master wire behavior.
	Batch int

	// Steal lets a drained shard take pending tasks from a randomly
	// chosen victim shard. Only meaningful with Shards > 1.
	Steal bool

	// StealTries bounds consecutive failed steal attempts per drain
	// episode (0 means a default of 4). The counter resets whenever the
	// shard acquires tasks.
	StealTries int

	// Seed seeds the per-shard victim-selection PRNG, keeping randomized
	// stealing deterministic under the virtual-time engine.
	Seed uint64

	// CostSkew, when > 1, ramps the modeled per-task cost (and Spin
	// iterations) linearly from 1x at task 0 to CostSkew-x at the last
	// task. Task *values* are unchanged, so skewed and uniform runs
	// produce identical checksums; the skew exists to drain low-index
	// shards early and exercise stealing.
	CostSkew float64

	// Metrics, when non-nil, publishes farm series into this registry:
	// the worker-observed assignment-wait histogram (the WRONJ "rest"
	// time), grant/steal counters, and a per-shard completed-task
	// counter. Works under both executors — handles are plain atomics.
	Metrics *metrics.Registry

	// Elastic, when non-nil, prepares the farm for a changing node set
	// (see elastic.go): dispatchers are pinned to the membership
	// coordinator, workers are placed on initially-Active nodes only,
	// and the farm reacts to join/drain/death notifications delivered
	// by a Notifier. Requires Shards >= 1 (the sharded protocol carries
	// the outstanding-grant tracking the recovery path needs).
	Elastic *ElasticConfig

	// OnDrained is called from the root's handler when every
	// outstanding grant to a draining node's workers has settled — wire
	// it to core.Membership.NotifyDrained. Elastic farms only.
	OnDrained func(node int)

	// Serve turns the farm into an open-ended service: it starts with an
	// empty task space (Tasks must be 0) and executes ranges injected into
	// live shards by a Service (see serve.go). The root never exits on its
	// own — the embedding process owns the runtime's lifetime. Requires
	// Shards >= 1: external submission rides the sharded wire protocol.
	Serve bool

	// OnTaskDone is called from the root's handler for every completed
	// task in a serve farm, with the task's sequence number and computed
	// value. Called on the root's PE goroutine; keep it cheap and
	// non-blocking. Serve farms only.
	OnTaskDone func(seq int64, value float64)
}

// Validate checks parameter consistency. It is the single authority on
// what a well-formed Params looks like — BuildProgram, BuildProgramFor,
// and NewService all call it — and it reports every violation at once
// via errors.Join, not just the first.
//
// Workers == 0 means "one per PE" and is resolved by BuildProgramFor;
// Validate accepts it, and checks that depend on the worker count apply
// only once Workers is concrete.
func (p *Params) Validate() error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("taskfarm: "+format, args...))
	}
	if p.Serve {
		if p.Tasks != 0 {
			add("serve farm starts empty: Tasks must be 0 (have %d)", p.Tasks)
		}
		if p.Shards < 1 {
			add("serve farm requires Shards >= 1 (have %d): submission rides the sharded protocol", p.Shards)
		}
	} else if p.Tasks <= 0 {
		add("%d tasks", p.Tasks)
	}
	if p.Prefetch <= 0 {
		add("prefetch %d (must be >= 1)", p.Prefetch)
	}
	if p.TaskCost < 0 {
		add("negative task cost")
	}
	if p.AssignCost < 0 {
		add("negative assign cost")
	}
	if p.Shards < 0 {
		add("%d shards", p.Shards)
	}
	if p.Workers < 0 {
		add("%d workers", p.Workers)
	}
	if p.Batch < 0 {
		add("negative batch size")
	}
	// The sharded protocol grants in batches; Batch <= 0 used to be
	// silently coerced to 1, hiding misconfiguration behind a 16x-slower
	// wire. With sharding enabled it is now an explicit error.
	if p.sharded() && p.Batch <= 0 {
		add("sharded farm requires Batch >= 1 (have %d)", p.Batch)
	}
	if p.Workers > 0 && p.sharded() && p.Workers < p.Shards {
		add("%d shards need at least that many workers (have %d)", p.Shards, p.Workers)
	}
	if p.CostSkew != 0 && p.CostSkew < 1 {
		add("cost skew %v < 1", p.CostSkew)
	}
	if p.Elastic != nil {
		if p.Shards < 1 {
			add("elastic farm requires Shards >= 1 (have %d)", p.Shards)
		}
		if p.Elastic.NodeOf == nil || p.Elastic.ActiveNode == nil {
			add("elastic farm requires NodeOf and ActiveNode")
		}
	}
	return errors.Join(errs...)
}

// sharded reports whether the farm uses the sharded dispatcher protocol
// (dispatcher shard array, batched grants) rather than the single master.
func (p *Params) sharded() bool {
	return p.Shards > 1 || p.Elastic != nil || p.Serve
}

// batch reports the effective grant batch size.
func (p *Params) batch() int {
	if p.Batch <= 0 {
		return 1
	}
	return p.Batch
}

// costMul is the skew factor for task seq: 1 at seq 0, rising linearly to
// CostSkew at the last task. 1 everywhere when no skew is configured.
func (p *Params) costMul(seq int) float64 {
	if p.CostSkew <= 1 || p.Tasks <= 1 {
		return 1
	}
	return 1 + (p.CostSkew-1)*float64(seq)/float64(p.Tasks-1)
}

// Result is the run outcome.
type Result struct {
	Makespan  time.Duration
	PerTask   time.Duration // makespan / tasks
	Tasks     int
	Workers   int
	Sum       float64 // aggregated task outputs (verification)
	PerWorker []int   // tasks completed per worker

	// Checksum is the wrapping uint64 sum of each task value's IEEE-754
	// bit pattern. Integer addition commutes, so single-master and
	// sharded farms produce bit-identical checksums for the same task
	// set regardless of result arrival order (the float Sum cannot
	// promise that).
	Checksum uint64

	// Sharded-farm extras (zero/nil for the single-master program).
	Shards     int   // dispatcher shard count
	PerShard   []int // tasks granted (and completed) by each shard
	Steals     int   // successful steal acquisitions
	StealFails int   // steal requests answered empty
	StolenTask int   // tasks that moved between shards
}

// Imbalance reports max/min of a per-entity completion tally (0 when any
// entity completed nothing, Inf-free by construction).
func Imbalance(tally []int) float64 {
	if len(tally) == 0 {
		return 0
	}
	min, max := tally[0], tally[0]
	for _, n := range tally {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// taskMsg is one unit of work.
type taskMsg struct {
	Seq   int
	bytes int
}

// PayloadBytes implements core.Sizer.
func (t taskMsg) PayloadBytes() int {
	if t.bytes > 0 {
		return t.bytes
	}
	return core.DefaultPayloadBytes
}

// resultMsg carries a task's output back.
type resultMsg struct {
	Seq    int
	Worker int
	Value  float64
	bytes  int
}

// PayloadBytes implements core.Sizer.
func (r resultMsg) PayloadBytes() int {
	if r.bytes > 0 {
		return r.bytes
	}
	return core.DefaultPayloadBytes
}

// TaskValue is the deterministic "science" of task seq; the master sums
// these for verification.
func TaskValue(seq int) float64 {
	return math.Sin(float64(seq)*0.1) + 1.0
}

// ExpectedChecksum is the order-independent checksum of a full task set,
// computable without running the farm (tests and the CI smoke use it).
func ExpectedChecksum(tasks int) uint64 {
	var c uint64
	for seq := 0; seq < tasks; seq++ {
		c += math.Float64bits(TaskValue(seq))
	}
	return c
}

// spinSink absorbs the spin loop's accumulator so the compiler cannot
// prove the arithmetic dead and elide the loop — wall-clock runs must pay
// the modeled work. The wrapping bit-pattern add is race-safe across the
// real-time runtime's PE goroutines; the value itself is never read.
var spinSink atomic.Uint64

// runTask computes task seq: the deterministic value, the optional spin
// work (scaled by the cost skew), and the modeled charge. Both the
// single-message and batched worker paths go through here so their
// results are identical by construction.
func runTask(ctx *core.Ctx, p *Params, seq int) float64 {
	v := TaskValue(seq)
	mul := p.costMul(seq)
	if p.Spin > 0 {
		iters := int(float64(p.Spin) * mul)
		acc := 0.0
		for i := 0; i < iters; i++ {
			acc += float64(i%13) * 1e-12
		}
		spinSink.Add(math.Float64bits(acc))
	}
	if p.TaskCost > 0 {
		ctx.Charge(time.Duration(float64(p.TaskCost) * mul))
	}
	return v
}

// master coordinates the farm.
type master struct {
	p       *Params
	workers int

	next    int
	done    int
	sum     float64
	check   uint64
	perW    []int
	started time.Duration
}

func (m *master) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case entryStart:
		m.started = ctx.Time()
		m.perW = make([]int, m.workers)
		// Seed every worker with Prefetch tasks (or fewer if the farm is
		// small).
	seed:
		for round := 0; round < m.p.Prefetch; round++ {
			for w := 0; w < m.workers; w++ {
				if m.next >= m.p.Tasks {
					break seed
				}
				m.sendTask(ctx, w)
			}
		}
	case entryResult:
		r := data.(resultMsg)
		m.done++
		m.sum += r.Value
		m.check += math.Float64bits(r.Value)
		m.perW[r.Worker]++
		if m.next < m.p.Tasks {
			m.sendTask(ctx, r.Worker)
		}
		if m.done == m.p.Tasks {
			mk := ctx.Time() - m.started
			ctx.ExitWith(&Result{
				Makespan:  mk,
				PerTask:   mk / time.Duration(m.p.Tasks),
				Tasks:     m.p.Tasks,
				Workers:   m.workers,
				Sum:       m.sum,
				Checksum:  m.check,
				PerWorker: m.perW,
				Shards:    1,
				PerShard:  []int{m.done},
			})
		}
	default:
		panic(fmt.Sprintf("taskfarm: master got entry %d", entry))
	}
}

func (m *master) sendTask(ctx *core.Ctx, w int) {
	ctx.Charge(m.p.AssignCost)
	ctx.Send(core.ElemRef{Array: ArrayWorker, Index: w}, entryTask,
		taskMsg{Seq: m.next, bytes: m.p.TaskBytes})
	m.next++
}

// worker executes tasks. The same chare serves both farm shapes: the
// single master feeds it one taskMsg at a time; shards feed it
// taskBatchMsg grants and get resultBatchMsg replies.
type worker struct {
	p  *Params
	id int
	fm *farmMetrics

	// lastDone is the executor time at which this worker finished its
	// previous batch; the gap to the next batch's arrival is the
	// worker-observed assignment wait (the WRONJ "rest" time).
	lastDone time.Duration
}

func (w *worker) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case entryTask:
		t := data.(taskMsg)
		w.fm.assignWait.Observe(int64(ctx.Time() - w.lastDone))
		v := runTask(ctx, w.p, t.Seq)
		w.lastDone = ctx.Time()
		ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryResult,
			resultMsg{Seq: t.Seq, Worker: w.id, Value: v, bytes: w.p.TaskBytes})
	case entryTaskBatch:
		w.recvBatch(ctx, data.(taskBatchMsg))
	default:
		panic(fmt.Sprintf("taskfarm: worker got entry %d", entry))
	}
}

// BuildProgram assembles the farm. The master (or, with Shards > 1, the
// root collector plus the dispatcher shard array) lives on PE 0; workers
// are block-mapped over all PEs (so in a two-cluster machine half of them
// sit across the WAN from the master).
func BuildProgram(p *Params) (*core.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// An array's size must be fixed before the program sees a machine, so
	// Workers == 0 ("one per PE") cannot be resolved here: it is an error,
	// and callers that want the per-PE default must go through
	// BuildProgramFor, which knows numPE and fills Workers in.
	if p.Workers <= 0 {
		return nil, fmt.Errorf("taskfarm: Workers must be set (use BuildProgramFor for one-per-PE)")
	}
	if p.sharded() {
		return buildSharded(p)
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{
			{
				ID: ArrayMaster, N: 1,
				Map: func(int, int) int { return 0 },
				New: func(int) core.Chare { return nil }, // set below
			},
			{
				ID: ArrayWorker, N: 1, // set below
				New: func(int) core.Chare { return nil },
			},
		},
	}
	prog.Start = func(ctx *core.Ctx) {
		ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryStart, nil)
	}
	nw := p.Workers
	fm := newFarmMetrics(p)
	prog.Arrays[ArrayMaster].New = func(int) core.Chare { return &master{p: p, workers: nw} }
	prog.Arrays[ArrayWorker].N = nw
	prog.Arrays[ArrayWorker].New = func(i int) core.Chare { return &worker{p: p, id: i, fm: fm} }
	if p.DedicatedMaster {
		prog.Arrays[ArrayWorker].Map = func(i, numPE int) int {
			if numPE == 1 {
				return 0
			}
			return 1 + core.BlockMap(i, nw, numPE-1)
		}
	}
	return prog, nil
}

// BuildProgramFor builds the farm with one worker per PE of a machine
// with numPE processors.
func BuildProgramFor(p *Params, numPE int) (*core.Program, error) {
	q := *p
	if q.Workers <= 0 {
		q.Workers = numPE
	}
	return BuildProgram(&q)
}

func init() {
	core.RegisterPayload(taskMsg{})
	core.RegisterPayload(resultMsg{})
}
