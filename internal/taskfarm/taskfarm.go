// Package taskfarm implements a master/worker ("master-slave") farm, the
// application class the paper's introduction names as naturally
// Grid-tolerant: "master-slave style applications are also good
// candidates for Grid environments because they typically have small
// communication requirements and because communication delays are often
// not on the critical path."
//
// The farm self-schedules: the master seeds each worker with Prefetch
// outstanding tasks and sends a new one as each result returns, so a
// worker with Prefetch >= 2 always has a task in hand while the next one
// is in flight — the class's own latency-masking mechanism, complementing
// the object-level overlap the tightly-coupled applications rely on.
package taskfarm

import (
	"fmt"
	"math"
	"time"

	"gridmdo/internal/core"
)

// Arrays.
const (
	ArrayMaster core.ArrayID = 0
	ArrayWorker core.ArrayID = 1
)

// Entry methods.
const (
	entryStart  core.EntryID = 0 // master: begin farming
	entryTask   core.EntryID = 1 // worker: one task
	entryResult core.EntryID = 2 // master: a worker's result
)

// Params configures a farm run.
type Params struct {
	// Tasks is the number of independent work units.
	Tasks int
	// Workers is the worker count; 0 means one per PE.
	Workers int
	// Prefetch is the number of tasks kept in flight per worker (>= 1).
	Prefetch int
	// TaskCost is the modeled compute per task on the reference machine.
	TaskCost time.Duration
	// TaskBytes is the modeled payload size of task and result messages.
	TaskBytes int
	// Spin, if positive, makes workers do that many iterations of real
	// arithmetic per task (for wall-clock runs).
	Spin int

	// DedicatedMaster keeps workers off the master's PE (PE 0), so a
	// worker's compute never delays task resupply. Requires at least two
	// PEs when used with BuildProgramFor.
	DedicatedMaster bool
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.Tasks <= 0 {
		return fmt.Errorf("taskfarm: %d tasks", p.Tasks)
	}
	if p.Prefetch <= 0 {
		return fmt.Errorf("taskfarm: prefetch %d", p.Prefetch)
	}
	if p.TaskCost < 0 {
		return fmt.Errorf("taskfarm: negative task cost")
	}
	return nil
}

// Result is the run outcome.
type Result struct {
	Makespan  time.Duration
	PerTask   time.Duration // makespan / tasks
	Tasks     int
	Workers   int
	Sum       float64 // aggregated task outputs (verification)
	PerWorker []int   // tasks completed per worker
}

// taskMsg is one unit of work.
type taskMsg struct {
	Seq   int
	bytes int
}

// PayloadBytes implements core.Sizer.
func (t taskMsg) PayloadBytes() int {
	if t.bytes > 0 {
		return t.bytes
	}
	return core.DefaultPayloadBytes
}

// resultMsg carries a task's output back.
type resultMsg struct {
	Seq    int
	Worker int
	Value  float64
	bytes  int
}

// PayloadBytes implements core.Sizer.
func (r resultMsg) PayloadBytes() int {
	if r.bytes > 0 {
		return r.bytes
	}
	return core.DefaultPayloadBytes
}

// TaskValue is the deterministic "science" of task seq; the master sums
// these for verification.
func TaskValue(seq int) float64 {
	return math.Sin(float64(seq)*0.1) + 1.0
}

// master coordinates the farm.
type master struct {
	p       *Params
	workers int

	next    int
	done    int
	sum     float64
	perW    []int
	started time.Duration
}

func (m *master) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case entryStart:
		m.started = ctx.Time()
		m.perW = make([]int, m.workers)
		// Seed every worker with Prefetch tasks (or fewer if the farm is
		// small).
	seed:
		for round := 0; round < m.p.Prefetch; round++ {
			for w := 0; w < m.workers; w++ {
				if m.next >= m.p.Tasks {
					break seed
				}
				m.sendTask(ctx, w)
			}
		}
	case entryResult:
		r := data.(resultMsg)
		m.done++
		m.sum += r.Value
		m.perW[r.Worker]++
		if m.next < m.p.Tasks {
			m.sendTask(ctx, r.Worker)
		}
		if m.done == m.p.Tasks {
			mk := ctx.Time() - m.started
			ctx.ExitWith(&Result{
				Makespan:  mk,
				PerTask:   mk / time.Duration(m.p.Tasks),
				Tasks:     m.p.Tasks,
				Workers:   m.workers,
				Sum:       m.sum,
				PerWorker: m.perW,
			})
		}
	default:
		panic(fmt.Sprintf("taskfarm: master got entry %d", entry))
	}
}

func (m *master) sendTask(ctx *core.Ctx, w int) {
	ctx.Send(core.ElemRef{Array: ArrayWorker, Index: w}, entryTask,
		taskMsg{Seq: m.next, bytes: m.p.TaskBytes})
	m.next++
}

// worker executes tasks.
type worker struct {
	p  *Params
	id int
}

func (w *worker) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	if entry != entryTask {
		panic(fmt.Sprintf("taskfarm: worker got entry %d", entry))
	}
	t := data.(taskMsg)
	v := TaskValue(t.Seq)
	if w.p.Spin > 0 {
		acc := 0.0
		for i := 0; i < w.p.Spin; i++ {
			acc += float64(i%13) * 1e-12
		}
		v += acc * 0 // keep the work, not the value
	}
	if w.p.TaskCost > 0 {
		ctx.Charge(w.p.TaskCost)
	}
	ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryResult,
		resultMsg{Seq: t.Seq, Worker: w.id, Value: v, bytes: w.p.TaskBytes})
}

// BuildProgram assembles the farm. The master lives on PE 0; workers are
// block-mapped over all PEs (so in a two-cluster machine half of them sit
// across the WAN from the master).
func BuildProgram(p *Params) (*core.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{
			{
				ID: ArrayMaster, N: 1,
				Map: func(int, int) int { return 0 },
				New: func(int) core.Chare { return nil }, // set below
			},
			{
				ID: ArrayWorker, N: 1, // set below
				New: func(int) core.Chare { return nil },
			},
		},
	}
	prog.Start = func(ctx *core.Ctx) {
		ctx.Send(core.ElemRef{Array: ArrayMaster, Index: 0}, entryStart, nil)
	}
	// Worker count defaults to one per PE; resolved at build time via a
	// closure over the params, but the array size must be fixed now, so a
	// zero Workers is resolved when the program is instantiated on a
	// machine — callers that leave Workers zero must use BuildProgramFor.
	if p.Workers <= 0 {
		return nil, fmt.Errorf("taskfarm: Workers must be set (use BuildProgramFor for one-per-PE)")
	}
	nw := p.Workers
	prog.Arrays[ArrayMaster].New = func(int) core.Chare { return &master{p: p, workers: nw} }
	prog.Arrays[ArrayWorker].N = nw
	prog.Arrays[ArrayWorker].New = func(i int) core.Chare { return &worker{p: p, id: i} }
	if p.DedicatedMaster {
		prog.Arrays[ArrayWorker].Map = func(i, numPE int) int {
			if numPE == 1 {
				return 0
			}
			return 1 + core.BlockMap(i, nw, numPE-1)
		}
	}
	return prog, nil
}

// BuildProgramFor builds the farm with one worker per PE of a machine
// with numPE processors.
func BuildProgramFor(p *Params, numPE int) (*core.Program, error) {
	q := *p
	if q.Workers <= 0 {
		q.Workers = numPE
	}
	return BuildProgram(&q)
}

func init() {
	core.RegisterPayload(taskMsg{})
	core.RegisterPayload(resultMsg{})
}
