package taskfarm

import (
	"math"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

// TestServeFarmExecutesSubmissions drives a live serve farm through the
// Service: tasks submitted after the runtime started must execute
// exactly once each, with their values routed back through OnResult.
func TestServeFarmExecutesSubmissions(t *testing.T) {
	p := &Params{Serve: true, Prefetch: 2, Workers: 4, Shards: 2, Batch: 8, Steal: true, Spin: 100}
	svc, err := NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Single(4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	svc.Bind(rt)

	var mu sync.Mutex
	got := make(map[int64]float64)
	done := make(chan struct{}, 1)
	const total = 500
	svc.OnResult(func(seq int64, v float64) {
		mu.Lock()
		got[seq] = v
		n := len(got)
		mu.Unlock()
		if n == total {
			done <- struct{}{}
		}
	})

	runDone := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		runDone <- err
	}()

	// Submit in uneven batches from several goroutines, like the gate's
	// ingest pump under concurrent tenants.
	var wg sync.WaitGroup
	sizes := []int{1, 7, 64, 128, 100, 200}
	for _, n := range sizes {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if _, err := svc.Submit(n); err != nil {
				t.Error(err)
			}
		}(n)
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out: %d/%d tasks completed", svc.Completed(), total)
	}
	rt.Stop()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	if n := svc.Submitted(); n != total {
		t.Errorf("submitted %d, want %d", n, total)
	}
	if n := svc.Completed(); n != total {
		t.Errorf("completed %d, want %d", n, total)
	}
	if d := svc.DoubleExecs(); d != 0 {
		t.Errorf("%d double executions", d)
	}
	for seq := int64(0); seq < total; seq++ {
		v, ok := got[seq]
		if !ok {
			t.Fatalf("task %d never completed", seq)
		}
		if want := TaskValue(int(seq)); math.Abs(v-want) > 1e-12 {
			t.Errorf("task %d value %v, want %v", seq, v, want)
		}
	}
}

// TestServeParamsValidate pins serve-mode parameter rules and the
// aggregated-error contract.
func TestServeParamsValidate(t *testing.T) {
	if err := (&Params{Serve: true, Prefetch: 1, Shards: 1, Batch: 4}).Validate(); err != nil {
		t.Errorf("minimal serve params rejected: %v", err)
	}
	if err := (&Params{Serve: true, Tasks: 10, Prefetch: 1, Shards: 1, Batch: 4}).Validate(); err == nil {
		t.Error("serve farm with preset Tasks accepted")
	}
	if err := (&Params{Serve: true, Prefetch: 1, Shards: 0, Batch: 4}).Validate(); err == nil {
		t.Error("serve farm without shards accepted")
	}
	// Sharding with Batch <= 0 used to be silently coerced to 1.
	if err := (&Params{Tasks: 10, Prefetch: 1, Shards: 2, Workers: 4}).Validate(); err == nil {
		t.Error("sharded farm with Batch 0 accepted")
	}
	// One Validate call reports every violation, not just the first.
	err := (&Params{Serve: true, Tasks: -1, Prefetch: 0, Shards: 0}).Validate()
	if err == nil {
		t.Fatal("multiply-invalid params accepted")
	}
	for _, frag := range []string{"Tasks", "prefetch", "Shards"} {
		if !containsFold(err.Error(), frag) {
			t.Errorf("aggregated error %q missing %q", err, frag)
		}
	}
	// NewService refuses non-serve params.
	if _, err := NewService(&Params{Tasks: 10, Prefetch: 1}); err == nil {
		t.Error("NewService accepted a batch farm")
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
