package taskfarm

import (
	"gridmdo/internal/core"
)

// PUP implements core.Migratable. The farm's bookkeeping is plain
// scalars plus the per-worker tally; Params travel with the program, not
// the checkpoint.
func (m *master) PUP(p *core.PUP) {
	workers := m.workers
	p.Int(&workers)
	p.Int(&m.next)
	p.Int(&m.done)
	p.Float64(&m.sum)
	p.Ints(&m.perW)
	p.Duration(&m.started)
	if p.Unpacking() {
		if workers != m.workers {
			p.Errorf("taskfarm: restore master: checkpoint has %d workers, program wants %d", workers, m.workers)
			return
		}
		if m.perW != nil && len(m.perW) != m.workers {
			p.Errorf("taskfarm: restore master: per-worker tally has %d entries, want %d", len(m.perW), m.workers)
		}
	}
}

// PUP implements core.Migratable. Workers rebuild identity and parameters
// from the program; only the batch-boundary clock travels (it feeds the
// assignment-wait histogram, and a migrated worker must not report its
// migration gap as dispatcher starvation).
func (w *worker) PUP(p *core.PUP) {
	p.Duration(&w.lastDone)
}

// PUP implements core.Migratable. The shard's whole scheduling state
// travels: the pending deque, per-worker grant/completion tallies, steal
// counters, and the PRNG state (so a restored shard continues the same
// victim sequence — checkpoint/restore never forks the random stream).
func (s *shard) PUP(p *core.PUP) {
	n := len(s.pending)
	p.Int(&n)
	if p.Unpacking() {
		// A serve farm's task space is open-ended (Tasks == 0), so its
		// pending-range count has no static bound to check against.
		if n < 0 || (!s.p.Serve && n > s.p.Tasks) {
			p.Errorf("taskfarm: restore shard %d: %d pending ranges for a %d-task farm", s.id, n, s.p.Tasks)
			return
		}
		s.pending = make([]taskRange, n)
	}
	for i := range s.pending {
		p.Int64(&s.pending[i].Lo)
		p.Int64(&s.pending[i].N)
	}
	p.Int64(&s.avail)
	p.Ints(&s.out)
	p.Int32s(&s.perW)
	p.Int64(&s.granted)
	p.Int64(&s.grants)
	p.Int64(&s.steals)
	p.Int64(&s.stealFails)
	p.Int64(&s.stolenIn)
	p.Int64(&s.victimized)
	p.Uint64(&s.rng)
	p.Int(&s.fails)
	p.Bool(&s.stealing)
	// Elastic bookkeeping: the outstanding-range FIFOs must survive a
	// migration or a node's death — they are exactly what gets re-queued
	// when a worker's node dies.
	if p.Unpacking() {
		s.outRanges = make([][]taskRange, len(s.out))
	}
	for i := range s.outRanges {
		m := len(s.outRanges[i])
		p.Int(&m)
		if p.Unpacking() {
			if m < 0 || (!s.p.Serve && m > s.p.Tasks) {
				p.Errorf("taskfarm: restore shard %d: %d outstanding ranges for worker %d", s.id, m, s.wLo+i)
				return
			}
			if m > 0 {
				s.outRanges[i] = make([]taskRange, m)
			}
		}
		for j := range s.outRanges[i] {
			p.Int64(&s.outRanges[i][j].Lo)
			p.Int64(&s.outRanges[i][j].N)
		}
	}
	ng := len(s.grantable)
	p.Int(&ng)
	if p.Unpacking() {
		if ng != 0 && ng != len(s.out) {
			p.Errorf("taskfarm: restore shard %d: grantable sized %d, shard owns %d workers", s.id, ng, len(s.out))
			return
		}
		s.grantable = nil
		if ng > 0 {
			s.grantable = make([]bool, ng)
		}
	}
	for i := range s.grantable {
		p.Bool(&s.grantable[i])
	}
	p.Int32s(&s.drainNode)
	if p.Unpacking() {
		owned := (s.id+1)*s.p.Workers/s.p.Shards - s.id*s.p.Workers/s.p.Shards
		if len(s.out) != owned || len(s.perW) != owned {
			p.Errorf("taskfarm: restore shard %d: tallies sized %d/%d, shard owns %d workers",
				s.id, len(s.out), len(s.perW), owned)
		}
		if s.drainNode != nil && len(s.drainNode) != owned {
			p.Errorf("taskfarm: restore shard %d: drain marks sized %d, shard owns %d workers",
				s.id, len(s.drainNode), owned)
		}
	}
}

// PUP implements core.Migratable. The root is plain aggregation state.
func (r *root) PUP(p *core.PUP) {
	shards := r.shards
	p.Int(&shards)
	p.Duration(&r.started)
	p.Duration(&r.makespan)
	p.Int(&r.done)
	p.Float64(&r.sum)
	p.Uint64(&r.check)
	p.Int(&r.reports)
	p.Ints(&r.perW)
	p.Ints(&r.perShard)
	p.Int(&r.steals)
	p.Int(&r.stealFails)
	p.Int(&r.stolen)
	if p.Unpacking() {
		if shards != r.shards {
			p.Errorf("taskfarm: restore root: checkpoint has %d shards, program wants %d", shards, r.shards)
			return
		}
		if r.perW != nil && len(r.perW) != r.workers {
			p.Errorf("taskfarm: restore root: per-worker tally has %d entries, want %d", len(r.perW), r.workers)
		}
		if r.perShard != nil && len(r.perShard) != r.shards {
			p.Errorf("taskfarm: restore root: per-shard tally has %d entries, want %d", len(r.perShard), r.shards)
		}
	}
}

var (
	_ core.Migratable = (*master)(nil)
	_ core.Migratable = (*worker)(nil)
	_ core.Migratable = (*shard)(nil)
	_ core.Migratable = (*root)(nil)
)
