package taskfarm

import (
	"gridmdo/internal/core"
)

// PUP implements core.Migratable. The farm's bookkeeping is plain
// scalars plus the per-worker tally; Params travel with the program, not
// the checkpoint.
func (m *master) PUP(p *core.PUP) {
	workers := m.workers
	p.Int(&workers)
	p.Int(&m.next)
	p.Int(&m.done)
	p.Float64(&m.sum)
	p.Ints(&m.perW)
	p.Duration(&m.started)
	if p.Unpacking() {
		if workers != m.workers {
			p.Errorf("taskfarm: restore master: checkpoint has %d workers, program wants %d", workers, m.workers)
			return
		}
		if m.perW != nil && len(m.perW) != m.workers {
			p.Errorf("taskfarm: restore master: per-worker tally has %d entries, want %d", len(m.perW), m.workers)
		}
	}
}

// PUP implements core.Migratable. Workers are stateless between tasks —
// identity and parameters rebuild from the program — so nothing travels.
func (w *worker) PUP(p *core.PUP) {}

var (
	_ core.Migratable = (*master)(nil)
	_ core.Migratable = (*worker)(nil)
)
