package taskfarm

import (
	"sync"

	"gridmdo/internal/core"
)

// Elastic farming: the sharded farm keeps running while the node set
// changes underneath it (core/membership.go). The division of labor:
//
//   - Placement: with Elastic set, the root and every dispatcher shard
//     are pinned to the membership coordinator's PEs, and workers are
//     block-mapped over the PEs of the *initially Active* nodes only.
//     A joiner therefore starts empty; it picks up work when recovery
//     re-homes workers onto it.
//
//   - Notification: a Notifier registered as Membership.OnChange turns
//     each table change into per-chare messages (entryMembers to every
//     shard, entryMembersRoot to the root). Because the dispatchers all
//     live on the coordinator process, only the coordinator's Notifier
//     sends; other processes just track worker placement.
//
//   - Death: a dead node's workers are re-homed by the membership layer
//     before OnChange fires, so by the time a shard sees the Requeue
//     list, its lost workers already have live PEs. The shard pushes the
//     lost outstanding ranges back onto the front of its pending deque
//     and refills — each lost task is granted again exactly once (the
//     dead node's unreported results are fenced by the epoch bump, and
//     results that beat the bump were already settled FIFO).
//
//   - Drain: shards stop granting to workers on a Draining node and
//     report to the root as each such worker's outstanding count reaches
//     zero. When the root has a report for every worker the node hosted,
//     it calls Params.OnDrained — wired to Membership.NotifyDrained —
//     and the node is marked Left; its (now idle) workers are re-homed
//     fresh and granting to them resumes. Undispatched tasks are never
//     blocked on a drain: they simply wait for the re-home.

// ElasticConfig ties a farm to the cluster's membership geometry.
type ElasticConfig struct {
	// NodeOf maps a PE to its owning node (same map the cluster config
	// uses).
	NodeOf func(pe int) int
	// ActiveNode reports whether a node is Active in the *initial*
	// member table; placement only targets these nodes' PEs.
	ActiveNode func(node int) bool
	// CoordNode is the membership coordinator's node; the root and all
	// dispatcher shards are pinned to its PEs.
	CoordNode int
}

// activePEs lists the PEs placement may target, in ascending order.
func (e *ElasticConfig) activePEs(numPE int) []int {
	var out []int
	for pe := 0; pe < numPE; pe++ {
		if e.ActiveNode(e.NodeOf(pe)) {
			out = append(out, pe)
		}
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// coordPEs lists the coordinator node's PEs, in ascending order.
func (e *ElasticConfig) coordPEs(numPE int) []int {
	var out []int
	for pe := 0; pe < numPE; pe++ {
		if e.NodeOf(pe) == e.CoordNode {
			out = append(out, pe)
		}
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// The notification payloads never cross the wire: the notifier and the
// dispatchers share the coordinator process, so the messages ride the
// local queues with Data intact and need no payload codec.

// shardMembersMsg tells a shard how its owned workers stand after a
// table change. All slices are wLo-relative.
type shardMembersMsg struct {
	Grantable []bool  // grants may flow to this worker
	Drain     []int32 // node being drained under this worker, or -1
	Requeue   []int32 // workers whose outstanding grants died with their node
}

// rootMembersMsg tells the root how many workers a draining node hosts —
// the number of drain-clear reports to await before the drain completes.
type rootMembersMsg struct {
	DrainNode int32
	Expect    int32
}

// drainClearMsg reports that one draining worker's outstanding grants
// reached zero. Worker is the absolute index (the root's idempotence
// key — repeated clears for the same worker collapse).
type drainClearMsg struct {
	Node   int32
	Worker int32
}

// Notifier adapts Membership.OnChange to the farm's chares. Register
// OnChange on the MembershipConfig, then Bind the runtime once it
// exists; table changes arriving before Bind are ignored (the initial
// placement already reflects the initial table).
type Notifier struct {
	p *Params

	mu         sync.Mutex
	rt         *core.Runtime
	self       int
	workerNode []int // last known node of each worker (absolute index)
	prev       map[int32]core.MemberState
}

// NewNotifier builds a notifier for an elastic farm (Params.Elastic must
// be set).
func NewNotifier(p *Params) *Notifier {
	return &Notifier{p: p}
}

// Bind attaches the runtime and snapshots worker placement. selfNode is
// this process's node number.
func (n *Notifier) Bind(rt *core.Runtime, selfNode int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rt, n.self = rt, selfNode
	loc := rt.Locations()
	n.workerNode = make([]int, n.p.Workers)
	for w := range n.workerNode {
		n.workerNode[w] = n.p.Elastic.NodeOf(int(loc.PEOf(core.ElemRef{Array: ArrayWorker, Index: w})))
	}
}

// OnChange is the Membership.OnChange hook. It runs on the membership
// apply path — after the epoch fence and element recovery, so worker
// locations already reflect the new table when it reads them.
func (n *Notifier) OnChange(t core.MemberTable) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rt == nil {
		return
	}
	e := n.p.Elastic
	state := make(map[int32]core.MemberState, len(t.Members))
	var dead, drain []int32
	for _, mb := range t.Members {
		state[mb.Node] = mb.State
		if pv, seen := n.prev[mb.Node]; seen && pv == mb.State {
			continue
		}
		switch mb.State {
		case core.MemberDead:
			dead = append(dead, mb.Node)
		case core.MemberDraining:
			drain = append(drain, mb.Node)
		}
	}
	if n.prev == nil {
		n.prev = make(map[int32]core.MemberState, len(t.Members))
	}
	for nd, st := range state {
		n.prev[nd] = st
	}
	loc := n.rt.Locations()
	if n.self != e.CoordNode {
		// No dispatchers here; just keep the placement snapshot fresh.
		for w := range n.workerNode {
			n.workerNode[w] = e.NodeOf(int(loc.PEOf(core.ElemRef{Array: ArrayWorker, Index: w})))
		}
		return
	}
	nw, ns := n.p.Workers, n.p.Shards
	// Drain expectations go to the root before any shard can report a
	// clear (the clears are triggered by the shard messages below).
	for _, dn := range drain {
		var cnt int32
		for w := 0; w < nw; w++ {
			if int32(n.workerNode[w]) == dn {
				cnt++
			}
		}
		n.rt.Post(core.ElemRef{Array: ArrayMaster, Index: 0}, entryMembersRoot,
			rootMembersMsg{DrainNode: dn, Expect: cnt})
	}
	for s := 0; s < ns; s++ {
		wLo, wHi := s*nw/ns, (s+1)*nw/ns
		mm := shardMembersMsg{
			Grantable: make([]bool, wHi-wLo),
			Drain:     make([]int32, wHi-wLo),
		}
		for w := wLo; w < wHi; w++ {
			cur := e.NodeOf(int(loc.PEOf(core.ElemRef{Array: ArrayWorker, Index: w})))
			st := state[int32(cur)]
			mm.Grantable[w-wLo] = st == core.MemberActive
			mm.Drain[w-wLo] = -1
			if st == core.MemberDraining {
				mm.Drain[w-wLo] = int32(cur)
			}
			for _, dn := range dead {
				if int32(n.workerNode[w]) == dn {
					mm.Requeue = append(mm.Requeue, int32(w-wLo))
				}
			}
			n.workerNode[w] = cur
		}
		n.rt.Post(core.ElemRef{Array: ArrayShard, Index: s}, entryMembers, mm)
	}
}
