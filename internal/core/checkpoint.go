package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Checkpointing captures every array element's state at a quiescent point
// (after Run has returned) and rebuilds it into a fresh Program — on the
// same machine, or on a different processor count ("shrink and expand the
// set of processors used by a parallel job", §2.1 of the paper; element
// placement is recomputed from the array's Map for the new machine).
//
// Elements of checkpointed arrays must implement Migratable, and their
// ArraySpec must provide Restore.

// ElemState is one element's serialized state.
type ElemState struct {
	Index int
	Data  []byte
}

// ArrayState is one array's serialized elements, sorted by index.
type ArrayState struct {
	ID    ArrayID
	N     int
	Elems []ElemState
}

// Checkpoint is a whole-program snapshot.
type Checkpoint struct {
	Arrays []ArrayState
}

// Checkpoint snapshots all elements hosted by this runtime. It must be
// called after Run has returned (the quiescent point); a multi-process
// runtime would capture only the local PEs and is rejected.
func (rt *Runtime) Checkpoint() (*Checkpoint, error) {
	if rt.opts.Transport != nil {
		return nil, fmt.Errorf("core: checkpoint of a multi-process runtime is not supported")
	}
	hosts := make([]*PEHost, len(rt.pes))
	for i, ps := range rt.pes {
		hosts[i] = ps.host
	}
	return BuildCheckpoint(rt.prog, hosts)
}

// BuildCheckpoint assembles a checkpoint from the hosts of an executor at
// a quiescent point. It is exported for executor implementations.
func BuildCheckpoint(prog *Program, hosts []*PEHost) (*Checkpoint, error) {
	byArray := make(map[ArrayID]map[int][]byte)
	for _, h := range hosts {
		var err error
		h.Each(func(ref ElemRef, ch Chare) {
			if err != nil {
				return
			}
			m, ok := ch.(Migratable)
			if !ok {
				err = fmt.Errorf("core: element %v does not implement Migratable", ref)
				return
			}
			data, perr := m.Pack()
			if perr != nil {
				err = fmt.Errorf("core: pack %v: %w", ref, perr)
				return
			}
			if byArray[ref.Array] == nil {
				byArray[ref.Array] = make(map[int][]byte)
			}
			byArray[ref.Array][ref.Index] = data
		})
		if err != nil {
			return nil, err
		}
	}
	ck := &Checkpoint{}
	for ai := range prog.Arrays {
		spec := &prog.Arrays[ai]
		elems := byArray[spec.ID]
		if len(elems) != spec.N {
			return nil, fmt.Errorf("core: array %d checkpointed %d of %d elements", spec.ID, len(elems), spec.N)
		}
		st := ArrayState{ID: spec.ID, N: spec.N, Elems: make([]ElemState, 0, spec.N)}
		idxs := make([]int, 0, spec.N)
		for i := range elems {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			st.Elems = append(st.Elems, ElemState{Index: i, Data: elems[i]})
		}
		ck.Arrays = append(ck.Arrays, st)
	}
	return ck, nil
}

// Encode writes the checkpoint with gob framing.
func (c *Checkpoint) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reverses Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return &c, nil
}

// Install rewires prog so each array's elements are constructed from this
// checkpoint (via ArraySpec.Restore) instead of ArraySpec.New. The
// program may then be run on any topology. Arrays absent from the
// checkpoint keep their constructors.
func (c *Checkpoint) Install(prog *Program) error {
	states := make(map[ArrayID]*ArrayState, len(c.Arrays))
	for i := range c.Arrays {
		states[c.Arrays[i].ID] = &c.Arrays[i]
	}
	for ai := range prog.Arrays {
		spec := &prog.Arrays[ai]
		st, ok := states[spec.ID]
		if !ok {
			continue
		}
		if st.N != spec.N {
			return fmt.Errorf("core: checkpoint has %d elements for array %d, program declares %d", st.N, spec.ID, spec.N)
		}
		if spec.Restore == nil {
			return fmt.Errorf("core: array %d has no Restore constructor", spec.ID)
		}
		data := make(map[int][]byte, len(st.Elems))
		for _, e := range st.Elems {
			data[e.Index] = e.Data
		}
		restore := spec.Restore
		spec.New = func(i int) Chare {
			ch, err := restore(i, data[i])
			if err != nil {
				panic(fmt.Sprintf("core: restore element %d of array %d: %v", i, spec.ID, err))
			}
			return ch
		}
	}
	return nil
}

// Each visits every element on this host in deterministic (array, index)
// order. It must only be called from the host's scheduler context or
// while the executor is stopped.
func (h *PEHost) Each(fn func(ref ElemRef, ch Chare)) {
	refs := make([]ElemRef, 0, len(h.elems))
	for ref := range h.elems {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Array != refs[j].Array {
			return refs[i].Array < refs[j].Array
		}
		return refs[i].Index < refs[j].Index
	})
	for _, ref := range refs {
		fn(ref, h.elems[ref])
	}
}
