package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Checkpointing captures every array element's state at a quiescent point
// (after Run has returned) and rebuilds it into a fresh Program — on the
// same machine, or on a different processor count ("shrink and expand the
// set of processors used by a parallel job", §2.1 of the paper; element
// placement is recomputed from the array's Map for the new machine).
//
// Elements of checkpointed arrays must implement Migratable — the same
// PUP method that serves load-balancer migration. A multi-process runtime
// produces a partial checkpoint covering its local PEs; the per-node
// parts are merged by element index with MergeCheckpoints before Install.

// ElemState is one element's serialized state.
type ElemState struct {
	Index int
	Data  []byte
}

// ArrayState is one array's serialized elements, sorted by index.
type ArrayState struct {
	ID    ArrayID
	N     int
	Elems []ElemState
}

// Checkpoint is a program snapshot. Partial marks a single node's share
// of a multi-process run; partial checkpoints must be merged with
// MergeCheckpoints before they can be installed.
type Checkpoint struct {
	Arrays  []ArrayState
	Partial bool
}

// Checkpoint snapshots all elements hosted by this runtime. It must be
// called after Run has returned (the quiescent point). On a multi-process
// runtime it returns this node's partial checkpoint — each node writes
// its own part, and the parts are joined with MergeCheckpoints.
func (rt *Runtime) Checkpoint() (*Checkpoint, error) {
	hosts := make([]*PEHost, len(rt.pes))
	for i, ps := range rt.pes {
		hosts[i] = ps.host
	}
	if rt.opts.Transport != nil {
		return buildCheckpoint(rt.prog, hosts, true)
	}
	return BuildCheckpoint(rt.prog, hosts)
}

// BuildCheckpoint assembles a complete checkpoint from the hosts of an
// executor at a quiescent point. It is exported for executor
// implementations; every element of every array must be present.
func BuildCheckpoint(prog *Program, hosts []*PEHost) (*Checkpoint, error) {
	return buildCheckpoint(prog, hosts, false)
}

func buildCheckpoint(prog *Program, hosts []*PEHost, partial bool) (*Checkpoint, error) {
	byArray := make(map[ArrayID]map[int][]byte)
	for _, h := range hosts {
		var err error
		h.Each(func(ref ElemRef, ch Chare) {
			if err != nil {
				return
			}
			m, ok := ch.(Migratable)
			if !ok {
				err = fmt.Errorf("core: element %v of type %T does not implement Migratable", ref, ch)
				return
			}
			data, perr := PUPPackCheckpoint(m)
			if perr != nil {
				err = fmt.Errorf("core: pack %v: %w", ref, perr)
				return
			}
			if byArray[ref.Array] == nil {
				byArray[ref.Array] = make(map[int][]byte)
			}
			byArray[ref.Array][ref.Index] = data
		})
		if err != nil {
			return nil, err
		}
		if cerr := h.ColdError(); cerr != nil {
			return nil, cerr
		}
	}
	ck := &Checkpoint{Partial: partial}
	for ai := range prog.Arrays {
		spec := &prog.Arrays[ai]
		elems := byArray[spec.ID]
		if !partial && len(elems) != spec.N {
			return nil, fmt.Errorf("core: array %d checkpointed %d of %d elements", spec.ID, len(elems), spec.N)
		}
		st := ArrayState{ID: spec.ID, N: spec.N, Elems: make([]ElemState, 0, len(elems))}
		idxs := make([]int, 0, len(elems))
		for i := range elems {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			st.Elems = append(st.Elems, ElemState{Index: i, Data: elems[i]})
		}
		ck.Arrays = append(ck.Arrays, st)
	}
	return ck, nil
}

// StateOf returns an element's checkpointed state bytes, if the
// checkpoint (possibly partial) has them. Used by membership recovery to
// restore a dead node's elements onto survivors.
func (ck *Checkpoint) StateOf(ref ElemRef) ([]byte, bool) {
	if ck == nil {
		return nil, false
	}
	for ai := range ck.Arrays {
		if ck.Arrays[ai].ID != ref.Array {
			continue
		}
		elems := ck.Arrays[ai].Elems
		i := sort.Search(len(elems), func(i int) bool { return elems[i].Index >= ref.Index })
		if i < len(elems) && elems[i].Index == ref.Index {
			return elems[i].Data, true
		}
	}
	return nil, false
}

// MergeCheckpoints joins per-node partial checkpoints (one per gridnode
// process) into one complete checkpoint. Arrays are merged by ID and
// elements by index; every element must appear exactly once across the
// parts, and each array must end up complete.
func MergeCheckpoints(parts ...*Checkpoint) (*Checkpoint, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: merge of zero checkpoints")
	}
	type arr struct {
		n     int
		elems map[int][]byte
	}
	arrays := make(map[ArrayID]*arr)
	var order []ArrayID
	for pi, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("core: merge: part %d is nil", pi)
		}
		for i := range part.Arrays {
			st := &part.Arrays[i]
			a, ok := arrays[st.ID]
			if !ok {
				a = &arr{n: st.N, elems: make(map[int][]byte)}
				arrays[st.ID] = a
				order = append(order, st.ID)
			}
			if a.n != st.N {
				return nil, fmt.Errorf("core: merge: array %d declared with %d and %d elements", st.ID, a.n, st.N)
			}
			for _, e := range st.Elems {
				if _, dup := a.elems[e.Index]; dup {
					return nil, fmt.Errorf("core: merge: element %d of array %d appears in more than one part", e.Index, st.ID)
				}
				a.elems[e.Index] = e.Data
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	ck := &Checkpoint{}
	for _, id := range order {
		a := arrays[id]
		if len(a.elems) != a.n {
			return nil, fmt.Errorf("core: merge: array %d has %d of %d elements across parts", id, len(a.elems), a.n)
		}
		st := ArrayState{ID: id, N: a.n, Elems: make([]ElemState, 0, a.n)}
		idxs := make([]int, 0, a.n)
		for i := range a.elems {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			st.Elems = append(st.Elems, ElemState{Index: i, Data: a.elems[i]})
		}
		ck.Arrays = append(ck.Arrays, st)
	}
	return ck, nil
}

// Encode writes the checkpoint with gob framing.
func (c *Checkpoint) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reverses Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return &c, nil
}

// Install rewires prog so each array's elements are constructed from this
// checkpoint instead of ArraySpec.New. If the array provides a Restore
// constructor it is used; otherwise the element is built with New and its
// state is restored through its PUP method (the common case — validation
// lives in PUP's unpacking branch). The program may then be run on any
// topology. Arrays absent from the checkpoint keep their constructors.
func (c *Checkpoint) Install(prog *Program) error {
	if c.Partial {
		return fmt.Errorf("core: cannot install a partial checkpoint; merge the per-node parts first")
	}
	states := make(map[ArrayID]*ArrayState, len(c.Arrays))
	for i := range c.Arrays {
		states[c.Arrays[i].ID] = &c.Arrays[i]
	}
	for ai := range prog.Arrays {
		spec := &prog.Arrays[ai]
		st, ok := states[spec.ID]
		if !ok {
			continue
		}
		if st.N != spec.N {
			return fmt.Errorf("core: checkpoint has %d elements for array %d, program declares %d", st.N, spec.ID, spec.N)
		}
		data := make(map[int][]byte, len(st.Elems))
		for _, e := range st.Elems {
			data[e.Index] = e.Data
		}
		id := spec.ID
		if spec.Restore != nil {
			restore := spec.Restore
			spec.New = func(i int) Chare {
				ch, err := restore(i, data[i])
				if err != nil {
					panic(fmt.Sprintf("core: restore element %d of array %d: %v", i, id, err))
				}
				return ch
			}
			continue
		}
		construct := spec.New
		spec.New = func(i int) Chare {
			ch := construct(i)
			pu, ok := ch.(PUPable)
			if !ok {
				panic(fmt.Sprintf("core: restore element %d of array %d: type %T implements neither PUPable nor a Restore constructor", i, id, ch))
			}
			if err := PUPUnpackCheckpoint(pu, data[i]); err != nil {
				panic(fmt.Sprintf("core: restore element %d of array %d: %v", i, id, err))
			}
			return ch
		}
	}
	return nil
}

// Each visits every element on this host in deterministic (array, index)
// order, including PUP-packed cold elements (rebuilt transiently, without
// disturbing the live set). It must only be called from the host's
// scheduler context or while the executor is stopped.
func (h *PEHost) Each(fn func(ref ElemRef, ch Chare)) {
	refs := make([]ElemRef, 0, h.NumElements())
	for ref := range h.elems {
		refs = append(refs, ref)
	}
	if h.cold != nil {
		for ref := range h.cold.packed {
			refs = append(refs, ref)
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Array != refs[j].Array {
			return refs[i].Array < refs[j].Array
		}
		return refs[i].Index < refs[j].Index
	})
	for _, ref := range refs {
		if ch, ok := h.elems[ref]; ok {
			fn(ref, ch)
		} else if ch, ok := h.peekCold(ref); ok {
			fn(ref, ch)
		}
	}
}
