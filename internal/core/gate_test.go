package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStepGateBasicFlow(t *testing.T) {
	g := NewStepGate(2)
	if g.Ready() {
		t.Fatal("ready with no messages")
	}
	if _, ok := g.Deliver(0, "a"); !ok {
		t.Fatal("current-step message not accepted")
	}
	// Future-step message buffers.
	if _, ok := g.Deliver(1, "early"); ok {
		t.Fatal("future message accepted as current")
	}
	if g.PendingFuture() != 1 {
		t.Fatalf("pending = %d", g.PendingFuture())
	}
	if _, ok := g.Deliver(0, "b"); !ok || !g.Ready() {
		t.Fatal("step 0 not complete after two messages")
	}
	pend := g.Advance()
	if g.Step() != 1 || len(pend) != 1 || pend[0] != "early" {
		t.Fatalf("advance: step=%d pend=%v", g.Step(), pend)
	}
	if g.Got() != 1 {
		t.Fatalf("early message not counted: got=%d", g.Got())
	}
	if g.Ready() {
		t.Fatal("step 1 ready with 1 of 2")
	}
}

func TestStepGatePanicsOnStaleMessage(t *testing.T) {
	g := NewStepGate(1)
	g.Deliver(0, nil)
	g.Advance()
	defer func() {
		if recover() == nil {
			t.Error("stale message accepted")
		}
	}()
	g.Deliver(0, nil)
}

func TestStepGateAdvanceBeforeReadyPanics(t *testing.T) {
	g := NewStepGate(1)
	defer func() {
		if recover() == nil {
			t.Error("premature Advance allowed")
		}
	}()
	g.Advance()
}

func TestStepGateZeroNeed(t *testing.T) {
	// Objects with no neighbors are immediately ready every step.
	g := NewStepGate(0)
	for s := 0; s < 5; s++ {
		if !g.Ready() {
			t.Fatalf("step %d not ready", s)
		}
		g.Advance()
	}
	if g.Step() != 5 {
		t.Fatalf("step = %d", g.Step())
	}
}

// Property: for any interleaving where each of S steps gets exactly N
// messages (possibly early by any amount), the gate delivers exactly N
// messages per step in non-decreasing step order and ends drained.
func TestStepGateInterleavingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := 1 + rng.Intn(6)
		need := 1 + rng.Intn(4)
		type tagged struct{ step, id int }
		var msgs []tagged
		for s := 0; s < steps; s++ {
			for i := 0; i < need; i++ {
				msgs = append(msgs, tagged{s, i})
			}
		}
		// Shuffle with the constraint that a step's messages may arrive
		// early but never late: sort by (step + random non-negative skew)
		// is complex; instead shuffle fully and deliver lazily — the gate
		// itself enforces order by buffering.
		rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })

		g := NewStepGate(need)
		applied := make(map[int]int)
		apply := func(m any) { applied[g.Step()]++ }
		drain := func() {
			for g.Ready() && g.Step() < steps {
				if g.Step() == steps-1 {
					// final step: advance past end not required
				}
				pend := g.Advance()
				for _, m := range pend {
					apply(m)
				}
			}
		}
		for _, m := range msgs {
			if v, ok := g.Deliver(m.step, m); ok {
				apply(v)
			}
			drain()
		}
		for s := 0; s < steps; s++ {
			if applied[s] != need {
				return false
			}
		}
		return g.PendingFuture() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
