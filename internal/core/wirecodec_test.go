package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// TestWireCodecPayloadKinds round-trips one message per registered binary
// fast path and checks the payload survives with its concrete type.
func TestWireCodecPayloadKinds(t *testing.T) {
	cases := []struct {
		name string
		data any
	}{
		{"nil", nil},
		{"int", -42},
		{"int64", int64(1) << 40},
		{"float64", 3.14159},
		{"float64-special", math.Inf(-1)},
		{"f64slice", []float64{1, -2.5, math.MaxFloat64}},
		{"f64slice-empty", []float64{}},
		{"string", "ghost row"},
		{"bytes", []byte{0, 1, 2, 255}},
		{"bool", true},
		{"reduce", ReducePartial{Array: 3, Seq: 17, Op: OpMax, Value: 2.25, Contribs: 9}},
		{"reduce-nested-slice", ReducePartial{Array: 1, Seq: 2, Op: OpSum, Value: []float64{9, 8}, Contribs: 4}},
		{"qd-probe", qdMsg{Probe: true, Wave: 7}},
		{"qd-reply", qdMsg{Wave: 7, Sent: 123, Processed: 120}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := &Message{
				Kind: KindApp, To: ElemRef{Array: 2, Index: 1 << 33}, Entry: -1,
				Prio: -5, Bytes: 4096, SrcPE: 11, DstPE: 13, Data: tc.data,
				ID: uint64(1)<<48 | 99, Parent: uint64(1)<<48 | 42,
			}
			b, err := EncodeMessage(in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := DecodeMessage(b)
			if err != nil {
				t.Fatal(err)
			}
			if out.Kind != in.Kind || out.To != in.To || out.Entry != in.Entry ||
				out.Prio != in.Prio || out.Bytes != in.Bytes || out.SrcPE != in.SrcPE || out.DstPE != in.DstPE {
				t.Errorf("header mismatch: %+v", out)
			}
			if out.ID != in.ID || out.Parent != in.Parent {
				t.Errorf("trace context lost: ID %#x Parent %#x", out.ID, out.Parent)
			}
			if !reflect.DeepEqual(out.Data, tc.data) {
				t.Errorf("payload: got %#v (%T), want %#v (%T)", out.Data, out.Data, tc.data, tc.data)
			}
		})
	}
}

// TestWireCodecBundleRecursion checks that bundle payloads encode their
// sub-messages recursively, headers included.
func TestWireCodecBundleRecursion(t *testing.T) {
	in := MakeBundle([]*Message{
		{Kind: KindApp, To: ElemRef{0, 1}, Entry: 2, SrcPE: 0, DstPE: 1, Data: []float64{1, 2, 3}, Bytes: 24},
		{Kind: KindApp, To: ElemRef{0, 2}, Entry: 3, SrcPE: 0, DstPE: 1, Data: "hello", Bytes: 5},
		{Kind: KindApp, To: ElemRef{0, 3}, Entry: 4, SrcPE: 0, DstPE: 1, Data: nil, Bytes: 0},
	})
	b, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	subs := BundleMessages(out)
	if len(subs) != 3 {
		t.Fatalf("decoded %d sub-messages", len(subs))
	}
	if !reflect.DeepEqual(subs[0].Data, []float64{1, 2, 3}) || subs[1].Data != "hello" || subs[2].Data != nil {
		t.Errorf("bundle payloads corrupted: %v", subs)
	}
	if subs[1].To != (ElemRef{0, 2}) || subs[1].Entry != 3 {
		t.Errorf("sub-message header lost: %+v", subs[1])
	}
}

// TestWireCodecDecodeDoesNotAlias: decoded reference payloads must be
// fresh copies, because the transport recycles the input buffer.
func TestWireCodecDecodeDoesNotAlias(t *testing.T) {
	in := &Message{Kind: KindApp, Data: []byte("aliased?"), Bytes: 8}
	b, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xEE
	}
	if got := out.Data.([]byte); !bytes.Equal(got, []byte("aliased?")) {
		t.Errorf("decoded payload aliases the wire buffer: %q", got)
	}
}

// TestWireCodecAppendMessage: AppendMessage must extend dst in place
// (given capacity) and produce the same bytes as EncodeMessage.
func TestWireCodecAppendMessage(t *testing.T) {
	m := &Message{Kind: KindReduce, Data: ReducePartial{Array: 1, Seq: 5, Op: OpMin, Value: int64(8), Contribs: 2}}
	plain, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 512)
	appended, err := AppendMessage(buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if &appended[0] != &buf[:1][0] {
		t.Error("AppendMessage reallocated despite sufficient capacity")
	}
	if !bytes.Equal(appended, plain) {
		t.Error("AppendMessage and EncodeMessage disagree")
	}
}

// unregisteredPayload deliberately has no binary codec and no gob
// registration conflict: it exercises the fallback path.
type unregisteredPayload struct {
	Name  string
	Count int64
}

// TestWireCodecGobFallback: unregistered payload types travel via the gob
// fallback and equal the value gob alone would produce.
func TestWireCodecGobFallback(t *testing.T) {
	RegisterPayload(unregisteredPayload{})
	in := &Message{Kind: KindApp, Data: unregisteredPayload{Name: "x", Count: 3}}
	b, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := out.Data.(unregisteredPayload); !ok || got != (unregisteredPayload{Name: "x", Count: 3}) {
		t.Errorf("fallback payload: %#v", out.Data)
	}
}

// appPayload exercises RegisterPayloadCodec. Registration lives in an init
// so repeated test runs in one process (-count=N) don't trip the
// duplicate-tag panic.
type appPayload struct{ N byte }

func init() {
	RegisterPayloadCodec(200, appPayload{}, PayloadCodec{
		Append: func(dst []byte, v any) ([]byte, error) {
			return append(dst, v.(appPayload).N), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			if len(b) < 1 {
				return nil, b, ErrBadWire
			}
			return appPayload{N: b[0]}, b[1:], nil
		},
	})
}

// TestRegisterPayloadCodec: an application-registered binary codec is used
// for both directions and rejects reserved tags.
func TestRegisterPayloadCodec(t *testing.T) {
	in := &Message{Kind: KindApp, Data: appPayload{N: 77}}
	b, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[msgHeaderLen-1] != 200 {
		t.Errorf("custom codec not used: tag %d", b[msgHeaderLen-1])
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data != (appPayload{N: 77}) {
		t.Errorf("custom payload: %#v", out.Data)
	}
	for _, tag := range []byte{0, 10, 63, 255} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("reserved tag %d accepted", tag)
				}
			}()
			RegisterPayloadCodec(tag, struct{ X int }{}, PayloadCodec{
				Append: func(dst []byte, v any) ([]byte, error) { return dst, nil },
				Decode: func(b []byte) (any, []byte, error) { return nil, b, nil },
			})
		}()
	}
}

// FuzzWireCodec round-trips structured random messages through the binary
// codec and asserts byte-for-byte stability: decode(encode(m)) must
// re-encode to the identical byte string. Unregistered payloads must take
// the gob fallback and still round-trip.
func FuzzWireCodec(f *testing.F) {
	f.Add(uint8(0), int64(0), int64(0), false, "seed", []byte{1, 2, 3})
	f.Add(uint8(3), int64(-9), int64(1<<40), true, "", []byte{})
	f.Add(uint8(200), int64(7), int64(-1), true, "payload", []byte{0xFF})
	f.Fuzz(func(t *testing.T, kind uint8, a, b int64, flag bool, s string, raw []byte) {
		// Build a payload whose shape depends on the fuzzed inputs so every
		// tag gets coverage, including nesting.
		var data any
		switch kind % 10 {
		case 0:
			data = nil
		case 1:
			data = int(a)
		case 2:
			data = b
		case 3:
			data = math.Float64frombits(uint64(a))
		case 4:
			data = []float64{float64(a), float64(b)}
		case 5:
			data = s
		case 6:
			data = append([]byte(nil), raw...)
		case 7:
			data = flag
		case 8:
			data = ReducePartial{Array: ArrayID(a), Seq: b, Op: ReduceOp(kind % 3), Value: s, Contribs: int(a % 1000)}
		case 9:
			data = []*Message{
				{Kind: KindApp, To: ElemRef{Array: 1, Index: int(a % 4096)}, Data: b, Bytes: int(b % 4096)},
				{Kind: KindApp, To: ElemRef{Array: 2, Index: int(b % 4096)}, Data: s},
			}
		}
		in := &Message{
			Kind: Kind(kind % 7), To: ElemRef{Array: ArrayID(a), Index: int(b)},
			Entry: EntryID(b), Prio: int32(a), Bytes: int(a % (1 << 30)), SrcPE: int32(b), DstPE: int32(a),
			ID: uint64(a), Parent: uint64(b),
			Data: data,
		}
		enc1, err := EncodeMessage(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := DecodeMessage(enc1)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		enc2, err := EncodeMessage(out)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("codec not byte-stable:\n first %x\nsecond %x", enc1, enc2)
		}
		// Gob-fallback equivalence: the same payload boxed in an
		// unregistered wrapper must still round-trip (values, not bytes —
		// the fallback is a different wire form by construction).
		if kind%10 == 5 { // strings are comparable and gob-safe
			wrapped := &Message{Kind: in.Kind, Data: fuzzWrapper{S: s}}
			wb, err := EncodeMessage(wrapped)
			if err != nil {
				t.Fatalf("fallback encode: %v", err)
			}
			wout, err := DecodeMessage(wb)
			if err != nil {
				t.Fatalf("fallback decode: %v", err)
			}
			if got, ok := wout.Data.(fuzzWrapper); !ok || got.S != s {
				t.Fatalf("fallback payload mismatch: %#v", wout.Data)
			}
		}
	})
}

// FuzzTraceWire targets the extended trace-context header: the causal ID and
// Parent fields must survive the wire byte-for-byte (including node-seeded
// high bits), sit at their fixed offsets, and version-1 frames must be
// rejected rather than misparsed as trace bytes.
func FuzzTraceWire(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1)<<48|1, uint64(1)<<48) // node-seeded IDs (node 1)
	f.Add(uint64(0xFFFF)<<48|42, uint64(7)<<48|9)
	f.Add(^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, id, parent uint64) {
		in := &Message{
			Kind: KindApp, To: ElemRef{Array: 1, Index: 2}, SrcPE: 3, DstPE: 4,
			ID: id, Parent: parent, Data: "x",
		}
		enc, err := EncodeMessage(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(enc[40:]); got != id {
			t.Fatalf("ID not at offset 40: got %#x, want %#x", got, id)
		}
		if got := binary.BigEndian.Uint64(enc[48:]); got != parent {
			t.Fatalf("Parent not at offset 48: got %#x, want %#x", got, parent)
		}
		out, err := DecodeMessage(enc)
		if err != nil {
			t.Fatal(err)
		}
		if out.ID != id || out.Parent != parent {
			t.Fatalf("trace context mismatch: ID %#x want %#x, Parent %#x want %#x",
				out.ID, id, out.Parent, parent)
		}
		enc2, err := EncodeMessage(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("trace header not byte-stable")
		}
		// A version-1 frame (the pre-trace 41-byte header) must be rejected.
		old := append([]byte(nil), enc...)
		old[2] = 1
		if _, err := DecodeMessage(old); err == nil {
			t.Fatal("version-1 frame accepted")
		}
	})
}

type fuzzWrapper struct{ S string }

func init() { RegisterPayload(fuzzWrapper{}) }

// FuzzDecodeMessage feeds arbitrary bytes to the decoder: it must error or
// decode, never panic, and anything it decodes must re-encode stably.
func FuzzDecodeMessage(f *testing.F) {
	seed := &Message{Kind: KindApp, Data: []float64{1, 2}}
	if b, err := EncodeMessage(seed); err == nil {
		f.Add(b)
	}
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			// Decoded a payload the encoder cannot express; acceptable
			// only for the gob fallback, which is self-describing.
			return
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if m2.Kind != m.Kind || m2.To != m.To || m2.Prio != m.Prio {
			t.Fatalf("unstable header: %+v vs %+v", m, m2)
		}
	})
}
