package core

import (
	"strconv"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
)

// coreMetrics holds the scheduler's pre-registered metric handles, one
// slot per hosted PE (indexed by pe - PELo). Handles are nil when the
// corresponding registry call returned nil, and every method on them is
// nil-safe, so the scheduler updates them unconditionally.
type coreMetrics struct {
	enqueued  []*metrics.Counter   // core_msgs_enqueued_total{pe}
	idleNs    []*metrics.Counter   // core_idle_nanos_total{pe}
	qDepthHW  []*metrics.Gauge     // core_queue_depth_high_water{pe}
	handlerNs []*metrics.Histogram // core_handler_nanos{pe}
	beginAt   []paddedNanos        // per-PE open handler start time
}

// paddedNanos is a cache-line-padded int64. Each slot is written and read
// only by its own PE's scheduler goroutine (via EvBegin/EvEnd), so no
// atomics are needed; the padding keeps neighbouring PEs off the same
// line.
type paddedNanos struct {
	v int64
	_ [56]byte
}

// idleCounter returns the idle-time counter for local PE slot i, or nil
// when metrics are off — the scheduler hoists this lookup out of its loop
// and skips the clock reads entirely on nil.
func (m *coreMetrics) idleCounter(i int) *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.idleNs[i]
}

// instrument registers the runtime's series on reg and returns the event
// sink that keeps them current. Cumulative flow counts that the runtime
// already tracks (sentByPE, processedByPE, queue depth) are exported as
// Func metrics read at collection time; only the series with no existing
// source (enqueue count, handler time, idle time, depth high-water) get
// live handles updated from the scheduler.
func (rt *Runtime) instrument(reg *metrics.Registry) trace.Sink {
	if reg == nil {
		return nil
	}
	n := len(rt.pes)
	m := &coreMetrics{
		enqueued:  make([]*metrics.Counter, n),
		idleNs:    make([]*metrics.Counter, n),
		qDepthHW:  make([]*metrics.Gauge, n),
		handlerNs: make([]*metrics.Histogram, n),
		beginAt:   make([]paddedNanos, n),
	}
	for i, ps := range rt.pes {
		pe := metrics.L("pe", strconv.Itoa(ps.id))
		id := ps.id
		reg.CounterFunc("core_msgs_sent_total", func() int64 { return rt.sentByPE[id].Load() }, pe)
		reg.CounterFunc("core_msgs_processed_total", func() int64 { return rt.processedByPE[id].Load() }, pe)
		q := ps.q
		reg.GaugeFunc("core_queue_depth", func() int64 { return int64(q.Len()) }, pe)
		m.enqueued[i] = reg.Counter("core_msgs_enqueued_total", pe)
		m.idleNs[i] = reg.Counter("core_idle_nanos_total", pe)
		m.qDepthHW[i] = reg.Gauge("core_queue_depth_high_water", pe)
		m.handlerNs[i] = reg.Histogram("core_handler_nanos", metrics.DurationBuckets, pe)
	}
	// Load-balancing progress, exported from the protocol root (PE 0).
	// Meaningful only on the node hosting PE 0, but registered wherever an
	// LBMgr exists so snapshots stay uniform across nodes.
	if lb := rt.pes[0].lb; lb != nil {
		reg.CounterFunc("core_lb_rounds_total", func() int64 { return int64(lb.Rounds()) })
		reg.CounterFunc("core_lb_moves_total", func() int64 { return int64(lb.TotalMoves()) })
	}
	rt.dly.Instrument(reg, metrics.L("node", strconv.Itoa(rt.opts.Node)))
	rt.met = m
	return &metricsSink{m: m, lo: rt.opts.PELo}
}

// metricsSink adapts scheduler trace events into metric updates — the
// metrics half of the shared trace.Sink surface, teed next to the tracer
// so the scheduler emits each event exactly once.
type metricsSink struct {
	m  *coreMetrics
	lo int
}

// Record implements trace.Sink. Lock-free: a couple of atomic adds per
// event, no allocations.
func (s *metricsSink) Record(ev trace.Event) {
	i := ev.PE - s.lo
	if i < 0 || i >= len(s.m.enqueued) {
		return
	}
	switch ev.Kind {
	case trace.EvEnqueue:
		s.m.enqueued[i].Inc()
	case trace.EvBegin:
		s.m.beginAt[i].v = int64(ev.At)
	case trace.EvEnd:
		s.m.handlerNs[i].Observe(int64(ev.At) - s.m.beginAt[i].v)
	}
}
