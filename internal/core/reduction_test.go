package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCombineOps(t *testing.T) {
	if got := Combine(OpSum, 2.5, 3.5).(float64); got != 6.0 {
		t.Errorf("sum = %v", got)
	}
	if got := Combine(OpMax, int64(2), int64(9)).(int64); got != 9 {
		t.Errorf("max = %v", got)
	}
	if got := Combine(OpMin, 4, 1).(int); got != 1 {
		t.Errorf("min = %v", got)
	}
	v := Combine(OpSum, []float64{1, 2}, []float64{10, 20}).([]float64)
	if v[0] != 11 || v[1] != 22 {
		t.Errorf("vector sum = %v", v)
	}
}

func TestCombinePanicsOnMismatch(t *testing.T) {
	for _, fn := range []func(){
		func() { Combine(OpSum, []float64{1}, []float64{1, 2}) },
		func() { Combine(OpSum, "a", "b") },
		func() { Combine(ReduceOp(99), 1.0, 2.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Combine with OpSum over a shuffled slice equals the direct sum
// (commutativity/associativity of the reduction tree).
func TestCombineSumProperty(t *testing.T) {
	prop := func(vals []int8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var direct int64
		for _, v := range vals {
			direct += int64(v)
		}
		shuffled := append([]int8(nil), vals...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		acc := int64(0)
		for _, v := range shuffled {
			acc = Combine(OpSum, acc, int64(v)).(int64)
		}
		return acc == direct
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// twoPEReduction wires two ReduceMgrs with a synchronous in-test "network"
// and drives a reduction over a 6-element array split 4/2.
func TestReduceMgrProtocol(t *testing.T) {
	locals := []int{4, 2}
	const total = 6
	var results []any
	var mgrs [2]*ReduceMgr
	emit := func(m *Message) {
		if m.Kind != KindReduce || m.DstPE != 0 {
			t.Fatalf("unexpected emit %v", m)
		}
		if err := mgrs[0].HandlePartial(m); err != nil {
			t.Fatal(err)
		}
	}
	for pe := range mgrs {
		pe := pe
		mgrs[pe] = NewReduceMgr(pe,
			func(ArrayID) int { return locals[pe] },
			func(ArrayID) int { return total },
			emit,
			func(a ArrayID, seq int64, v any) { results = append(results, v) },
		)
	}
	// Two pipelined rounds, contributions interleaved across PEs.
	for seq := int64(1); seq <= 2; seq++ {
		for i := 0; i < 4; i++ {
			mgrs[0].Contribute(0, seq, float64(i), OpSum)
		}
	}
	for seq := int64(1); seq <= 2; seq++ {
		for i := 0; i < 2; i++ {
			mgrs[1].Contribute(0, seq, 100.0, OpSum)
		}
	}
	if len(results) != 2 {
		t.Fatalf("completed %d rounds, want 2", len(results))
	}
	for _, r := range results {
		if r.(float64) != 206 { // 0+1+2+3 + 2*100
			t.Errorf("round result = %v, want 206", r)
		}
	}
	if mgrs[0].PendingLocal() != 0 || mgrs[0].PendingRoot() != 0 {
		t.Error("root manager leaked state")
	}
}

func TestReduceMgrOverflowDetected(t *testing.T) {
	mgr := NewReduceMgr(0,
		func(ArrayID) int { return 1 },
		func(ArrayID) int { return 1 },
		func(*Message) {},
		func(ArrayID, int64, any) {},
	)
	m := &Message{Kind: KindReduce, Data: ReducePartial{Array: 0, Seq: 1, Op: OpSum, Value: 1.0, Contribs: 2}}
	if err := mgr.HandlePartial(m); err == nil {
		t.Error("overflowing partial accepted")
	}
}

func TestReduceMgrBadPayload(t *testing.T) {
	mgr := NewReduceMgr(0, func(ArrayID) int { return 1 }, func(ArrayID) int { return 1 },
		func(*Message) {}, func(ArrayID, int64, any) {})
	if err := mgr.HandlePartial(&Message{Kind: KindReduce, Data: "junk"}); err == nil {
		t.Error("bad payload accepted")
	}
}

func TestLocationsMoveAndCounts(t *testing.T) {
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 8, New: func(int) Chare { return nil }}},
		Start:  func(*Ctx) {},
	}
	loc := NewLocations(prog, 4)
	for pe := 0; pe < 4; pe++ {
		if got := loc.LocalCount(0, pe); got != 2 {
			t.Fatalf("PE %d count = %d, want 2", pe, got)
		}
	}
	if loc.Owners(0) != 4 {
		t.Fatalf("owners = %d", loc.Owners(0))
	}
	from, err := loc.Move(ElemRef{0, 0}, 3)
	if err != nil || from != 0 {
		t.Fatalf("move: from=%d err=%v", from, err)
	}
	if loc.PEOf(ElemRef{0, 0}) != 3 {
		t.Error("move did not take effect")
	}
	if loc.LocalCount(0, 0) != 1 || loc.LocalCount(0, 3) != 3 {
		t.Error("counts not updated")
	}
	// Move the second element off PE 0: owners drops.
	if _, err := loc.Move(ElemRef{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if loc.Owners(0) != 3 {
		t.Errorf("owners = %d, want 3", loc.Owners(0))
	}
	if _, err := loc.Move(ElemRef{0, 99}, 1); err == nil {
		t.Error("move of unknown element accepted")
	}
	elems := loc.ElementsOn(0, 2)
	if len(elems) != 3 {
		t.Errorf("ElementsOn(2) = %v", elems)
	}
}

func TestProgramValidate(t *testing.T) {
	ok := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return nil }}},
		Start:  func(*Ctx) {},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := []*Program{
		{},
		{Start: func(*Ctx) {}},
		{Start: func(*Ctx) {}, Arrays: []ArraySpec{{ID: 1, N: 1, New: func(int) Chare { return nil }}}},
		{Start: func(*Ctx) {}, Arrays: []ArraySpec{{ID: 0, N: 0, New: func(int) Chare { return nil }}}},
		{Start: func(*Ctx) {}, Arrays: []ArraySpec{{ID: 0, N: 1}}},
		{Start: func(*Ctx) {}, Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return nil }}},
			LB: &LBConfig{}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

// Property: DecodeMessage never panics on arbitrary bytes — it either
// decodes or errors.
func TestDecodeMessageNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeMessage(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	type testPayload struct{ A, B int }
	RegisterPayload(testPayload{})
	in := &Message{
		Kind: KindApp, To: ElemRef{Array: 1, Index: 42}, Entry: 3,
		Prio: -2, Bytes: 1024, SrcPE: 5, DstPE: 9,
		Data: testPayload{A: 7, B: 8},
	}
	b, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.To != in.To || out.Entry != in.Entry ||
		out.Prio != in.Prio || out.Bytes != in.Bytes || out.SrcPE != in.SrcPE || out.DstPE != in.DstPE {
		t.Errorf("header mismatch: %+v", out)
	}
	if p, ok := out.Data.(testPayload); !ok || p != (testPayload{7, 8}) {
		t.Errorf("payload mismatch: %#v", out.Data)
	}
	if _, err := DecodeMessage([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}
