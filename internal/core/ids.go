// Package core implements the message-driven object model at the center of
// the paper: programs are decomposed into many more parallel objects
// (chares, organized into indexed chare arrays) than physical processors;
// objects communicate through asynchronous prioritized messages; and each
// processing element (PE) runs a scheduler that executes whichever object
// has a deliverable message. Latency tolerance — the paper's subject —
// falls out of this model: while messages from a remote cluster are in
// flight, the scheduler keeps the PE busy with objects whose messages have
// already arrived.
//
// The package provides the shared programming model (Program, ArraySpec,
// Chare, Ctx), the runtime protocol state machines (reductions, quiescence
// detection, load-balancing sync), and the real-time executor (Runtime),
// which runs one scheduler goroutine per PE with VMI device chains between
// them. A virtual-time executor sharing the same programming model lives
// in internal/sim.
package core

import "fmt"

// ArrayID identifies a chare array within a Program.
type ArrayID int32

// EntryID selects which entry method of a chare a message invokes.
// Non-negative values are application-defined; negative values are
// reserved for the runtime.
type EntryID int32

// EntryResumeFromSync is delivered to an element after a load-balancing
// step it joined via Ctx.AtSync completes (possibly on a new PE).
const EntryResumeFromSync EntryID = -1

// ElemRef names one element of one chare array.
type ElemRef struct {
	Array ArrayID
	Index int
}

func (r ElemRef) String() string { return fmt.Sprintf("a%d[%d]", r.Array, r.Index) }

// Chare is a message-driven object. Recv is invoked by a PE's scheduler
// with exactly-one-at-a-time semantics per PE; a chare never needs
// internal locking for its own state. Handlers run to completion and may
// send any number of messages through ctx.
type Chare interface {
	Recv(ctx *Ctx, entry EntryID, data any)
}

// Sizer lets a payload declare its modeled wire size in bytes. Executors
// use it for bandwidth modeling and (in the real-time runtime) to decide
// buffer sizes; payloads without it are modeled at DefaultPayloadBytes.
type Sizer interface {
	PayloadBytes() int
}

// DefaultPayloadBytes is the modeled size of payloads that do not
// implement Sizer.
const DefaultPayloadBytes = 64

// Section is a static multicast target: an ordered set of array elements.
// Ctx.Multicast delivers one message per member.
type Section struct {
	Members []ElemRef
}

// NewSection builds a section from element references.
func NewSection(members ...ElemRef) *Section {
	return &Section{Members: append([]ElemRef(nil), members...)}
}
