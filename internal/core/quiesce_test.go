package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

func TestQDHandlesBadPayload(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.handleQD(rt.pes[0], &Message{Kind: KindQD, Data: "junk"}); err == nil {
		t.Error("junk QD payload accepted")
	}
	rt.ExitWith(nil)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQDWithDelayedTraffic(t *testing.T) {
	// A chain of sends across a 20ms WAN: the detector must not fire
	// while frames sit in the delay device.
	topo := mustTopo(t, 2, 20*time.Millisecond)
	var lastAt time.Duration
	var rtRef *Runtime
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					n := data.(int)
					lastAt = ctx.Time()
					if n > 0 {
						ctx.Send(ElemRef{0, 1 - ctx.Elem().Index}, 0, n-1)
					}
				})
			},
		}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 3) },
	}
	rt, err := NewRuntime(topo, prog, WithQuiescence())
	if err != nil {
		t.Fatal(err)
	}
	rtRef = rt
	_ = rtRef
	start := time.Now()
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 3 WAN crossings of 20ms must have completed before quiescence.
	if elapsed < 60*time.Millisecond {
		t.Errorf("quiescence declared after %v, before the 60ms of WAN flight completed", elapsed)
	}
	if lastAt < 60*time.Millisecond {
		t.Errorf("last handler at %v: chain did not finish", lastAt)
	}
	sent, processed := rt.Counters()
	if sent != processed {
		t.Errorf("counters diverge after quiescence: %d vs %d", sent, processed)
	}
}

// TestQDMultiProcess runs quiescence detection across two TCP-joined
// runtimes: probes and replies cross the wire.
func TestQDMultiProcess(t *testing.T) {
	topo, err := topology.TwoClusters(2, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mkProg := func(hits *int) *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						*hits++
						if n := data.(int); n > 0 {
							ctx.Send(ElemRef{0, 1 - ctx.Elem().Index}, 0, n-1)
						}
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 4) },
		}
	}

	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{{0: "127.0.0.1:0"}, {1: "127.0.0.1:0"}}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	var hits [2]int
	for node := 0; node < 2; node++ {
		rt, err := NewRuntime(topo, mkProg(&hits[node]),
			WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}),
			WithQuiescence())
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}
	done := make(chan error, 1)
	go func() {
		_, err := rts[1].Run()
		done <- err
	}()
	if _, err := rts[0].Run(); err != nil {
		t.Fatal(err)
	}
	// Coordinator detected quiescence; announce shutdown to the worker.
	rts[1].Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never stopped")
	}
	// The 5-hop chain alternates between the two elements.
	if hits[0] != 3 || hits[1] != 2 {
		t.Errorf("handler hits = %v, want [3 2]", hits)
	}
}
