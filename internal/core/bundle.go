package core

import "sort"

// Message bundling, the analog of Charm++'s communication-optimization
// strategies (§2.1 of the paper: "optimized communication libraries"):
// application messages produced by one handler execution for the same
// destination PE are combined into a single bundle that pays the
// per-message transport overhead once. Bundles are split back into their
// messages at the destination's enqueue point, so scheduler semantics are
// unchanged except that a bundle's messages share one arrival instant
// (they already shared one departure).
//
// Only default-priority application messages bundle; prioritized traffic
// (including WAN-prioritized messages) and runtime protocol messages are
// routed individually so their delivery ordering guarantees hold.

// BundleEligible reports whether a message may join a bundle.
func BundleEligible(m *Message) bool {
	return m.Kind == KindApp && m.Prio == 0 && m.DstPE != m.SrcPE
}

// PendingBundles accumulates one handler's outgoing messages per
// destination PE. It is owned by a single scheduler (or the simulator
// thread) and never shared.
type PendingBundles struct {
	byDst map[int32][]*Message
}

// NewPendingBundles builds an empty accumulator.
func NewPendingBundles() *PendingBundles {
	return &PendingBundles{byDst: make(map[int32][]*Message)}
}

// Add appends a routed (destination-resolved) message.
func (p *PendingBundles) Add(m *Message) {
	p.byDst[m.DstPE] = append(p.byDst[m.DstPE], m)
}

// Empty reports whether anything is buffered.
func (p *PendingBundles) Empty() bool { return len(p.byDst) == 0 }

// Has reports whether a destination already has a pending group.
func (p *PendingBundles) Has(dst int32) bool {
	_, ok := p.byDst[dst]
	return ok
}

// Drain returns the accumulated messages grouped per destination in
// ascending PE order (for deterministic virtual-time replay) and resets
// the buffer.
func (p *PendingBundles) Drain() [][]*Message {
	if len(p.byDst) == 0 {
		return nil
	}
	dsts := make([]int32, 0, len(p.byDst))
	for d := range p.byDst {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	out := make([][]*Message, 0, len(dsts))
	for _, d := range dsts {
		out = append(out, p.byDst[d])
		delete(p.byDst, d)
	}
	return out
}

// bundleHeaderBytes is the modeled per-sub-message framing cost inside a
// bundle.
const bundleHeaderBytes = 16

// MakeBundle wraps a group of same-destination messages into one bundle
// message. Groups of one are returned as-is.
func MakeBundle(group []*Message) *Message {
	if len(group) == 1 {
		return group[0]
	}
	total := 0
	for _, m := range group {
		total += m.Bytes + bundleHeaderBytes
	}
	return &Message{
		Kind:  KindBundle,
		SrcPE: group[0].SrcPE,
		DstPE: group[0].DstPE,
		Bytes: total,
		Data:  group,
	}
}

// BundleMessages extracts a bundle's contents.
func BundleMessages(m *Message) []*Message {
	return m.Data.([]*Message)
}
