package core

import (
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// Backend is the executor-side interface behind a Ctx. The real-time
// runtime (this package) and the virtual-time simulator (internal/sim)
// each implement it; application code sees only Ctx and so runs unchanged
// on either executor.
type Backend interface {
	// Route transmits a message. For KindApp the backend resolves the
	// destination PE from its location table.
	Route(m *Message)
	// Now is the executor clock: wall time since run start (real-time) or
	// virtual time (simulator), observed at the current execution point.
	Now() time.Duration
	// Charge accounts d of modeled execution time to the running handler.
	// The simulator advances its PE clock by it; the real-time runtime
	// records it for load statistics only.
	Charge(d time.Duration)
	// NumPE reports the machine size.
	NumPE() int
	// Topo exposes the machine topology.
	Topo() *topology.Topology
	// ArrayN reports the declared element count of an array.
	ArrayN(a ArrayID) int
	// ExitWith ends the run, making v the executor's result. The first
	// call wins; later calls are ignored.
	ExitWith(v any)
	// Contribute folds one element's reduction contribution (round seq)
	// into the PE-local partial.
	Contribute(from ElemRef, pe int, a ArrayID, seq int64, v any, op ReduceOp)
	// AtSync marks one element as having reached the load-balancing
	// barrier on pe.
	AtSync(from ElemRef, pe int)
	// Record emits an event into the executor's instrumentation sink
	// (tracer, metrics adapter). No-op when nothing is configured; must be
	// cheap enough to call from hot paths.
	Record(ev trace.Event)
}

// Ctx is the handle a handler uses to interact with the runtime. A Ctx is
// only valid for the duration of the handler invocation it was passed to;
// chares must not retain it. (The sole exception is the AMPI layer, whose
// rank threads hold the PE's execution slot while they run — see
// internal/ampi.)
type Ctx struct {
	b     Backend
	pe    int
	elem  ElemRef   // valid for KindApp handlers; {-1, -1} otherwise
	meta  *elemMeta // per-element runtime metadata; nil for non-element handlers
	msgID uint64    // causal ID of the message this handler is executing (0 outside app dispatch)
}

// elemMeta is executor-held per-element state.
type elemMeta struct {
	redSeq int64 // reduction rounds this element has contributed to
	load   time.Duration
	wanMsg int
	msgs   int
	atSync bool
}

// NoElem is the ElemRef used for handlers that do not run on an array
// element (Start, OnReduction).
var NoElem = ElemRef{Array: -1, Index: -1}

func newCtx(b Backend, pe int, elem ElemRef, meta *elemMeta) *Ctx {
	return &Ctx{b: b, pe: pe, elem: elem, meta: meta}
}

// Send delivers data to entry of the element to, asynchronously.
func (c *Ctx) Send(to ElemRef, entry EntryID, data any, opts ...SendOpt) {
	m := &Message{
		Kind:  KindApp,
		To:    to,
		Entry: entry,
		Data:  data,
		Bytes: payloadBytes(data),
		SrcPE: int32(c.pe),
	}
	for _, o := range opts {
		o(m)
	}
	c.b.Route(m)
	if c.meta != nil {
		c.meta.msgs++
		if c.b.Topo().CrossesWAN(c.pe, int(m.DstPE)) {
			c.meta.wanMsg++
		}
	}
}

// Multicast sends data to every member of a section. Each member receives
// an independent message (the paper's LeanMD cells multicast coordinates
// to their 26 dependent cell-pairs this way).
func (c *Ctx) Multicast(sec *Section, entry EntryID, data any, opts ...SendOpt) {
	for _, ref := range sec.Members {
		c.Send(ref, entry, data, opts...)
	}
}

// Broadcast sends data to every element of an array.
func (c *Ctx) Broadcast(a ArrayID, entry EntryID, data any, opts ...SendOpt) {
	n := c.b.ArrayN(a)
	for i := 0; i < n; i++ {
		c.Send(ElemRef{Array: a, Index: i}, entry, data, opts...)
	}
}

// Contribute folds v into the current reduction round of this element's
// array. Every element of the array must contribute exactly once per
// round, with the same op; when the round completes, Program.OnReduction
// runs on PE 0 with the combined value.
func (c *Ctx) Contribute(v any, op ReduceOp) {
	if c.meta == nil {
		panic("core: Contribute outside an array element handler")
	}
	c.meta.redSeq++
	c.b.Contribute(c.elem, c.pe, c.elem.Array, c.meta.redSeq, v, op)
}

// AtSync enters the load-balancing barrier. The element must not send or
// expect application messages until its EntryResumeFromSync entry runs
// (possibly on a different PE).
func (c *Ctx) AtSync() {
	if c.meta == nil {
		panic("core: AtSync outside an array element handler")
	}
	c.meta.atSync = true
	c.b.AtSync(c.elem, c.pe)
}

// Charge accounts modeled execution time to this handler; see
// Backend.Charge.
func (c *Ctx) Charge(d time.Duration) { c.b.Charge(d) }

// Time returns the executor clock at the current execution point.
func (c *Ctx) Time() time.Duration { return c.b.Now() }

// PE reports the PE this handler is executing on.
func (c *Ctx) PE() int { return c.pe }

// NumPE reports the machine size.
func (c *Ctx) NumPE() int { return c.b.NumPE() }

// Topo exposes the machine topology (cluster layout, latencies).
func (c *Ctx) Topo() *topology.Topology { return c.b.Topo() }

// Elem reports the element this handler runs on, or NoElem.
func (c *Ctx) Elem() ElemRef { return c.elem }

// ArrayN reports the element count of array a.
func (c *Ctx) ArrayN(a ArrayID) int { return c.b.ArrayN(a) }

// ExitWith ends the run with result v.
func (c *Ctx) ExitWith(v any) { c.b.ExitWith(v) }

// Exit ends the run with a nil result.
func (c *Ctx) Exit() { c.b.ExitWith(nil) }

// MsgID reports the causal trace ID of the message this handler is
// executing (0 when untraced or outside application dispatch). Libraries
// layered on the scheduler (AMPI) stamp it onto events they emit so their
// activity joins the message DAG.
func (c *Ctx) MsgID() uint64 { return c.msgID }

// Mark records a free-form annotation on this PE's trace timeline. The
// overlap profiler segments steps at Mark("step", n, 0) boundaries;
// anything else is carried through to the exported views untouched.
func (c *Ctx) Mark(note string, arg1, arg2 int64) {
	c.b.Record(trace.Event{PE: c.pe, Kind: trace.EvNote, At: c.b.Now(), Note: note, Arg1: arg1, Arg2: arg2, MsgID: c.msgID})
}

// Record emits a trace event of the given kind at the current execution
// point, stamped with this handler's PE and causal message ID. This is the
// surface runtime libraries (internal/ampi) use to join the causal DAG.
func (c *Ctx) Record(kind trace.Kind, arg1, arg2 int64) {
	c.b.Record(trace.Event{PE: c.pe, Kind: kind, At: c.b.Now(), Arg1: arg1, Arg2: arg2, MsgID: c.msgID})
}
