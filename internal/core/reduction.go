package core

import "fmt"

// ReduceOp selects how reduction contributions are combined.
type ReduceOp uint8

// Built-in reduction operations. They apply to float64, int64, int, and
// element-wise to []float64.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Combine folds two reduction values under op. It panics on mixed or
// unsupported types: reductions are structural, and a type mismatch is a
// programming error best caught loudly.
func Combine(op ReduceOp, a, b any) any {
	switch av := a.(type) {
	case float64:
		bv := b.(float64)
		return combineF64(op, av, bv)
	case int64:
		bv := b.(int64)
		return combineI64(op, av, bv)
	case int:
		bv := b.(int)
		return int(combineI64(op, int64(av), int64(bv)))
	case []float64:
		bv := b.([]float64)
		if len(av) != len(bv) {
			panic(fmt.Sprintf("core: reduction of []float64 with mismatched lengths %d and %d", len(av), len(bv)))
		}
		out := make([]float64, len(av))
		for i := range av {
			out[i] = combineF64(op, av[i], bv[i])
		}
		return out
	}
	panic(fmt.Sprintf("core: unsupported reduction value type %T", a))
}

func combineF64(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("core: unknown reduction op %d", op))
}

func combineI64(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("core: unknown reduction op %d", op))
}

// ReducePartial is the KindReduce payload: one PE's combined contribution
// for one reduction round.
type ReducePartial struct {
	Array ArrayID
	Seq   int64
	Op    ReduceOp
	Value any
	// Contribs is how many elements this partial folds together; the root
	// uses it to know when every element has been heard from, which stays
	// correct even if elements migrate between rounds.
	Contribs int
}

// PayloadBytes implements Sizer: partials are small control messages.
func (ReducePartial) PayloadBytes() int { return 48 }

type redKey struct {
	a   ArrayID
	seq int64
}

type redAgg struct {
	n  int
	v  any
	op ReduceOp
}

// ReduceMgr implements the reduction protocol for one PE. Elements
// contribute locally; when every local element of the array has
// contributed to a round, the PE emits a partial to the root (PE 0); when
// the root has folded partials covering every element of the array, it
// invokes onResult. All methods must be called from the PE's scheduler.
type ReduceMgr struct {
	pe         int
	localCount func(a ArrayID) int // elements of a on this PE
	totalCount func(a ArrayID) int // total elements of a
	emit       func(m *Message)
	onResult   func(a ArrayID, seq int64, v any)

	local map[redKey]*redAgg // contributions gathering on this PE
	root  map[redKey]*rootAgg
}

type rootAgg struct {
	redAgg
	elems int // total element contributions folded so far
}

// NewReduceMgr builds a reduction manager for pe. onResult is only invoked
// on PE 0.
func NewReduceMgr(pe int, localCount, totalCount func(a ArrayID) int, emit func(*Message), onResult func(ArrayID, int64, any)) *ReduceMgr {
	return &ReduceMgr{
		pe:         pe,
		localCount: localCount,
		totalCount: totalCount,
		emit:       emit,
		onResult:   onResult,
		local:      make(map[redKey]*redAgg),
		root:       make(map[redKey]*rootAgg),
	}
}

// Contribute folds one element's contribution into round seq of array a.
func (r *ReduceMgr) Contribute(a ArrayID, seq int64, v any, op ReduceOp) {
	k := redKey{a: a, seq: seq}
	agg, ok := r.local[k]
	if !ok {
		agg = &redAgg{v: v, op: op, n: 1}
		r.local[k] = agg
	} else {
		if agg.op != op {
			panic(fmt.Sprintf("core: reduction round %v mixes ops %v and %v", k, agg.op, op))
		}
		agg.v = Combine(op, agg.v, v)
		agg.n++
	}
	if agg.n >= r.localCount(a) {
		delete(r.local, k)
		r.emit(&Message{
			Kind:  KindReduce,
			SrcPE: int32(r.pe),
			DstPE: 0,
			Data:  ReducePartial{Array: a, Seq: seq, Op: op, Value: agg.v, Contribs: agg.n},
			Bytes: ReducePartial{}.PayloadBytes(),
		})
	}
}

// HandlePartial folds a KindReduce message at the root.
func (r *ReduceMgr) HandlePartial(m *Message) error {
	p, ok := m.Data.(ReducePartial)
	if !ok {
		return fmt.Errorf("core: KindReduce message with payload %T", m.Data)
	}
	k := redKey{a: p.Array, seq: p.Seq}
	agg, ok := r.root[k]
	if !ok {
		agg = &rootAgg{redAgg: redAgg{v: p.Value, op: p.Op, n: 1}, elems: p.Contribs}
		r.root[k] = agg
	} else {
		agg.v = Combine(p.Op, agg.v, p.Value)
		agg.n++
		agg.elems += p.Contribs
	}
	total := r.totalCount(p.Array)
	if agg.elems > total {
		return fmt.Errorf("core: reduction %v overflowed: %d contributions for %d elements", k, agg.elems, total)
	}
	if agg.elems == total {
		delete(r.root, k)
		r.onResult(p.Array, p.Seq, agg.v)
	}
	return nil
}

// PendingLocal reports reduction rounds still gathering on this PE
// (useful in tests and for quiescence diagnostics).
func (r *ReduceMgr) PendingLocal() int { return len(r.local) }

// PendingRoot reports rounds still gathering at the root.
func (r *ReduceMgr) PendingRoot() int { return len(r.root) }
