package core

import (
	"encoding/binary"
	"fmt"
)

// Varint helpers for application payload codecs (RegisterPayloadCodec).
// They wrap encoding/binary's varint forms with the package's structural
// error convention: every parse failure wraps ErrBadWire, so a malformed
// application payload surfaces exactly like a malformed built-in one and
// the transport's reject-and-report path stays uniform. Batch payloads
// (many small integers per message — sequence numbers, counts, deltas)
// should prefer these over fixed-width fields: a task index that fits a
// byte costs a byte, which is where most of a batch codec's compactness
// comes from.

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ConsumeUvarint parses one unsigned varint from the front of b and
// returns the remainder. Truncated or overlong input wraps ErrBadWire.
func ConsumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad uvarint", ErrBadWire)
	}
	return v, b[n:], nil
}

// AppendVarint appends v in zig-zag signed varint form.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// ConsumeVarint parses one signed varint from the front of b and returns
// the remainder. Truncated or overlong input wraps ErrBadWire.
func ConsumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad varint", ErrBadWire)
	}
	return v, b[n:], nil
}
