package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// funcChare adapts a function to the Chare interface for tests.
type funcChare func(ctx *Ctx, entry EntryID, data any)

func (f funcChare) Recv(ctx *Ctx, entry EntryID, data any) { f(ctx, entry, data) }

func mustTopo(t *testing.T, p int, lat time.Duration) *topology.Topology {
	t.Helper()
	topo, err := topology.TwoClusters(p, lat)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPingPongAcrossClusters(t *testing.T) {
	const rounds = 5
	const lat = 10 * time.Millisecond
	topo := mustTopo(t, 2, lat)

	// Element 0 on PE 0 (cluster 0), element 1 on PE 1 (cluster 1).
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					n := data.(int)
					if n >= 2*rounds {
						ctx.ExitWith(n)
						return
					}
					other := ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}
					ctx.Send(other, 0, n+1)
				})
			},
		}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 2*rounds {
		t.Errorf("final count = %v", v)
	}
	// 2*rounds WAN crossings, each at least lat.
	if el := time.Since(start); el < time.Duration(2*rounds)*lat {
		t.Errorf("elapsed %v, want >= %v: latency not injected", el, time.Duration(2*rounds)*lat)
	}
	sent, processed := rt.Counters()
	if sent != processed {
		t.Errorf("counters diverge: sent=%d processed=%d", sent, processed)
	}
}

func TestReductionEndToEnd(t *testing.T) {
	topo := mustTopo(t, 4, time.Millisecond)
	const n = 8
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: n,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					ctx.Contribute(float64(ctx.Elem().Index), OpSum)
				})
			},
		}},
		Start: func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(ElemRef{0, i}, 0, nil)
			}
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) {
			ctx.ExitWith(v)
		},
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(float64); got != 28 { // 0+1+...+7
		t.Errorf("reduction = %v, want 28", got)
	}
}

func TestRunToQuiescence(t *testing.T) {
	topo := mustTopo(t, 2, time.Millisecond)
	var hits sync.Map
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 4,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					hits.Store(ctx.Elem().Index, true)
					n := data.(int)
					if n > 0 {
						next := ElemRef{0, (ctx.Elem().Index + 1) % 4}
						ctx.Send(next, 0, n-1)
					}
				})
			},
		}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 10) },
	}
	rt, err := NewRuntime(topo, prog, WithQuiescence())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		if _, err := rt.Run(); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("quiescence never detected")
	}
	for i := 0; i < 4; i++ {
		if _, ok := hits.Load(i); !ok {
			t.Errorf("element %d never ran", i)
		}
	}
}

func TestPriorityDeliveryOrder(t *testing.T) {
	topo, err := topology.Single(1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					switch entry {
					case 0: // burst sender: enqueue with shuffled priorities
						for _, p := range []int32{3, -1, 2, 0, -5, 1} {
							ctx.Send(ElemRef{0, 1}, 1, int(p), WithPrio(p))
						}
					case 1:
						got = append(got, int32(data.(int)))
						if len(got) == 6 {
							ctx.ExitWith(nil)
						}
					}
				})
			},
		}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, nil) },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int32{-5, -1, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestPrioritizeWANOption(t *testing.T) {
	topo := mustTopo(t, 2, 0) // two clusters, zero latency: routing is sync
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(i int) Chare {
			return funcChare(func(*Ctx, EntryID, any) {})
		}}},
		Start: func(*Ctx) {},
	}
	rt, err := NewRuntime(topo, prog, WithWANPriority())
	if err != nil {
		t.Fatal(err)
	}
	wan := &Message{Kind: KindApp, To: ElemRef{0, 1}, SrcPE: 0}
	rt.Route(wan)
	if wan.Prio != -1 {
		t.Errorf("WAN message priority = %d, want -1", wan.Prio)
	}
	local := &Message{Kind: KindApp, To: ElemRef{0, 0}, SrcPE: 0}
	rt.Route(local)
	if local.Prio != 0 {
		t.Errorf("local message priority = %d, want 0", local.Prio)
	}
	// Application-set priorities are preserved.
	custom := &Message{Kind: KindApp, To: ElemRef{0, 1}, SrcPE: 0, Prio: 5}
	rt.Route(custom)
	if custom.Prio != 5 {
		t.Errorf("custom priority overridden: %d", custom.Prio)
	}
	rt.ExitWith(nil)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerPanicSurfacesAsError(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(i int) Chare {
			return funcChare(func(*Ctx, EntryID, any) { panic("boom") })
		}}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, nil) },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("panic not surfaced: %v", err)
	}
}

func TestSendToMissingElementFails(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(i int) Chare {
			return funcChare(func(ctx *Ctx, entry EntryID, data any) {})
		}}},
		Start: func(ctx *Ctx) {
			// Out-of-range index routes to the clamp PE but no element exists.
			ctx.Send(ElemRef{Array: 0, Index: 1}, 0, nil)
		},
	}
	rt, err := NewRuntime(topo, prog, WithQuiescence())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatalf("valid send failed: %v", err)
	}
}

func TestMulticastReachesAllMembers(t *testing.T) {
	topo := mustTopo(t, 4, time.Millisecond)
	const n = 12
	var mu sync.Mutex
	seen := make(map[int]int)
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: n,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					mu.Lock()
					seen[ctx.Elem().Index]++
					mu.Unlock()
					ctx.Contribute(1.0, OpSum)
				})
			},
		}},
		Start: func(ctx *Ctx) {
			var refs []ElemRef
			for i := 0; i < n; i++ {
				refs = append(refs, ElemRef{0, i})
			}
			ctx.Multicast(NewSection(refs...), 0, "coords")
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) { ctx.ExitWith(v) },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != n {
		t.Errorf("reduction = %v, want %d", v, n)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("element %d received %d multicasts", i, seen[i])
		}
	}
}

// moveAllTo is a trivial LB strategy for protocol tests.
type moveAllTo int

func (moveAllTo) Name() string { return "move-all" }
func (m moveAllTo) Plan(s *LBStats) []Move {
	var out []Move
	for _, e := range s.Elems {
		out = append(out, Move{Ref: e.Ref, ToPE: int(m)})
	}
	return out
}

func TestLoadBalancingProtocol(t *testing.T) {
	topo := mustTopo(t, 2, time.Millisecond)
	const n = 4
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: n,
			New: func(i int) Chare {
				return &migChare{fn: func(ctx *Ctx, entry EntryID, data any) {
					switch entry {
					case 0:
						ctx.AtSync()
					case EntryResumeFromSync:
						// Report the PE we resumed on.
						ctx.Contribute(float64(ctx.PE()), OpSum)
					}
				}}
			},
		}},
		Start: func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(ElemRef{0, i}, 0, nil)
			}
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) { ctx.ExitWith(v) },
		LB:          &LBConfig{Arrays: []ArrayID{0}, Strategy: moveAllTo(1)},
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All n elements resumed on PE 1: sum of PEs = n*1.
	if v.(float64) != n {
		t.Errorf("post-LB PE sum = %v, want %d (all elements on PE 1)", v, n)
	}
	if got := rt.loc.LocalCount(0, 1); got != n {
		t.Errorf("PE 1 owns %d elements after LB, want %d", got, n)
	}
}

func TestTraceRecordsActivity(t *testing.T) {
	topo := mustTopo(t, 2, time.Millisecond)
	tr := trace.New(2)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(i int) Chare {
			return funcChare(func(ctx *Ctx, entry EntryID, data any) {
				if ctx.Elem().Index == 0 {
					ctx.Send(ElemRef{0, 1}, 0, nil)
				} else {
					ctx.ExitWith(nil)
				}
			})
		}}},
		Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, nil) },
	}
	rt, err := NewRuntime(topo, prog, WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("no trace events recorded")
	}
	var begins, sends int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.EvBegin:
			begins++
		case trace.EvSend:
			sends++
		}
	}
	if begins < 3 || sends < 2 {
		t.Errorf("begins=%d sends=%d, want >=3 begins and >=2 sends", begins, sends)
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
	}
	if _, err := NewRuntime(topo, &Program{}); err == nil {
		t.Error("invalid program accepted")
	}
	if _, err := NewRuntime(topo, prog, WithCluster(ClusterConfig{Transport: fakeTransport{}, PELo: 0, PEHi: 1})); err == nil {
		t.Error("multi-process without NodeOf accepted")
	}
	if _, err := NewRuntime(topo, prog, WithCluster(ClusterConfig{Transport: fakeTransport{}, NodeOf: func(int) int { return 0 }, PELo: 1, PEHi: 1})); err == nil {
		t.Error("empty PE range accepted")
	}
	// Multi-process quiescence detection is supported (wave protocol).
	if _, err := NewRuntime(topo, prog, WithCluster(ClusterConfig{Transport: fakeTransport{}, NodeOf: func(int) int { return 0 }, PELo: 0, PEHi: 1}), WithQuiescence()); err != nil {
		t.Errorf("multi-process quiescence rejected: %v", err)
	}
	// Load-balanced elements must serialize through PUP; a non-Migratable
	// chare type is rejected up front, single- or multi-process.
	lbProg := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
		LB:     &LBConfig{Arrays: []ArrayID{0}, Strategy: moveAllTo(0)},
	}
	if _, err := NewRuntime(topo, lbProg, WithCluster(ClusterConfig{Transport: fakeTransport{}, NodeOf: func(int) int { return 0 }, PELo: 0, PEHi: 1})); err == nil {
		t.Error("multi-process load balancing of non-Migratable elements accepted")
	}
	// With Migratable elements, multi-process load balancing is supported.
	lbOK := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return &migChare{fn: func(*Ctx, EntryID, any) {}} }}},
		Start:  func(*Ctx) {},
		LB:     &LBConfig{Arrays: []ArrayID{0}, Strategy: moveAllTo(0)},
	}
	if _, err := NewRuntime(topo, lbOK, WithCluster(ClusterConfig{Transport: fakeTransport{}, NodeOf: func(int) int { return 0 }, PELo: 0, PEHi: 1})); err != nil {
		t.Errorf("multi-process load balancing rejected: %v", err)
	}
}

type fakeTransport struct{}

func (fakeTransport) Send(*vmi.Frame) error { return nil }
