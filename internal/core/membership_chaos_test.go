package core_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmdo/internal/balance"
	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// Chaos membership suite: elastic clusters — joins, drains, and deaths
// injected mid-run under seeded frame drops — must finish with results
// bit-identical to an undisturbed static cluster. The schedules are
// seed-deterministic ({join, drain, kill} order and spacing derive from
// the chaos seed), fenced traffic from a zombie node must be counted and
// dropped, and a drained node must end up hosting nothing.

// memberNode is one process of an elastic in-process cluster.
type memberNode struct {
	stack  *vmi.Stack
	reg    *metrics.Registry
	mem    *core.Membership
	rt     *core.Runtime
	notif  *taskfarm.Notifier
	params *taskfarm.Params
}

// memberSetup configures buildMemberCluster. Exactly one of farm / prog
// must be set. Joiner nodes are excluded from the initial member table
// (and from initial placement) and enter via RequestJoin.
type memberSetup struct {
	n      int
	joiner map[int]bool
	relCfg func(node int) vmi.ReliableConfig
	faults func(node int) []vmi.SendDevice
	farm   func(node int) *taskfarm.Params
	prog   func(node int, e *taskfarm.ElasticConfig) *core.Program
}

type memberHarness struct {
	t       *testing.T
	nodes   []*memberNode
	elastic *taskfarm.ElasticConfig
	off     sync.Once
}

// safeLog forwards protocol logs to t.Logf but goes quiet once the test
// body finishes — membership and stack goroutines outlive the assertion
// phase, and logging to a finished test panics.
type safeLog struct {
	mu   sync.Mutex
	t    *testing.T
	done bool
}

func (l *safeLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.done {
		l.t.Logf(format, args...)
	}
}

func (l *safeLog) quiet() {
	l.mu.Lock()
	l.done = true
	l.mu.Unlock()
}

// buildMemberCluster wires an n-node cluster (one PE per node) with a
// Membership manager per process. Construction order matters: stacks and
// managers exist before Listen, runtimes before the address book opens,
// so no control frame can ever race a half-built process — the same
// guarantee cmd/gridnode provides by wiring membership before Listen.
func buildMemberCluster(t *testing.T, s memberSetup) *memberHarness {
	t.Helper()
	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	h := &memberHarness{t: t, nodes: make([]*memberNode, s.n)}
	h.elastic = &taskfarm.ElasticConfig{
		NodeOf:     nodeOf,
		ActiveNode: func(node int) bool { return node >= 0 && node < s.n && !s.joiner[node] },
		CoordNode:  0,
	}
	var initial []core.Member
	for i := 0; i < s.n; i++ {
		if !s.joiner[i] {
			initial = append(initial, core.Member{Node: int32(i), State: core.MemberActive})
		}
	}
	lg := &safeLog{t: t}
	for i := 0; i < s.n; i++ {
		nd := &memberNode{reg: metrics.NewRegistry()}
		h.nodes[i] = nd
		addrs := make(map[int]string, s.n)
		for j := 0; j < s.n; j++ {
			addrs[j] = ""
		}
		addrs[i] = "127.0.0.1:0"
		b := vmi.NewChainBuilder(i, addrs, routeFn).
			Metrics(nd.reg).
			OnControl(func(f *vmi.Frame) {
				if f.Dst == vmi.ControlMembership && nd.mem != nil {
					nd.mem.HandleControl(f)
				}
			})
		if s.faults != nil {
			b = b.Faults(s.faults(i), nil)
		}
		b = b.Reliable(s.relCfg(i))
		st, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		nd.stack = st
		var onChange func(core.MemberTable)
		if s.farm != nil {
			nd.params = s.farm(i)
			nd.params.Elastic = h.elastic
			nd.params.Metrics = nd.reg
			nd.notif = taskfarm.NewNotifier(nd.params)
			onChange = nd.notif.OnChange
		}
		mem, err := core.NewMembership(core.MembershipConfig{
			Node:        i,
			Coordinator: 0,
			Stack:       st,
			NodeOf:      nodeOf,
			NumPE:       s.n,
			Initial:     initial,
			Interval:    50 * time.Millisecond,
			OnChange:    onChange,
			Logf: func(format string, args ...any) {
				lg.logf("node %d: "+format, append([]any{i}, args...)...)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.mem = mem
		if nd.params != nil {
			nd.params.OnDrained = mem.NotifyDrained
		}
	}
	addrs := make([]string, s.n)
	for i, nd := range h.nodes {
		a, err := nd.stack.Listen()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	topo, err := topology.Single(s.n)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range h.nodes {
		var prog *core.Program
		if s.farm != nil {
			prog, err = taskfarm.BuildProgram(nd.params)
		} else {
			prog = s.prog(i, h.elastic)
		}
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.NewRuntime(topo, prog,
			core.WithCluster(core.ClusterConfig{
				Transport: nd.stack,
				NodeOf:    nodeOf,
				Node:      i,
				PELo:      i,
				PEHi:      i + 1,
			}),
			core.WithMetrics(nd.reg),
			core.WithMembership(nd.mem))
		if err != nil {
			t.Fatal(err)
		}
		nd.rt = rt
		if nd.notif != nil {
			nd.notif.Bind(rt, i)
		}
		nd.mem.Instrument(nd.reg)
	}
	// Only now does traffic start to flow.
	for i, nd := range h.nodes {
		for j, a := range addrs {
			if j != i {
				nd.stack.SetAddr(j, a)
			}
		}
	}
	t.Cleanup(h.shutdown)
	t.Cleanup(lg.quiet) // runs before shutdown: silence logs first
	return h
}

func (h *memberHarness) shutdown() {
	h.off.Do(func() {
		for _, nd := range h.nodes {
			nd.mem.Close()
		}
		for _, nd := range h.nodes {
			nd.stack.Close()
		}
	})
}

// memberRun is an in-flight cluster run: events are injected between
// start and await.
type memberRun struct {
	h     *memberHarness
	coord chan runOutcome
	done  chan struct{}
}

type runOutcome struct {
	v   any
	err error
}

func (h *memberHarness) start() *memberRun {
	r := &memberRun{h: h, coord: make(chan runOutcome, 1), done: make(chan struct{})}
	var wg sync.WaitGroup
	for i := 1; i < len(h.nodes); i++ {
		nd := h.nodes[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A fenced zombie legitimately dies with a transport error;
			// worker exit status is not part of the run's verdict.
			_, _ = nd.rt.Run()
		}()
	}
	go func() {
		v, err := h.nodes[0].rt.Run()
		r.coord <- runOutcome{v, err}
	}()
	go func() {
		wg.Wait()
		close(r.done)
	}()
	return r
}

// await blocks for the coordinator's result, then stops every worker
// runtime (the stacks stay up so post-run assertions can observe late
// zombie traffic).
func (r *memberRun) await(timeout time.Duration) (any, error) {
	t := r.h.t
	t.Helper()
	var out runOutcome
	select {
	case out = <-r.coord:
	case <-time.After(timeout):
		t.Fatal("coordinator did not finish within timeout")
	}
	for i := 1; i < len(r.h.nodes); i++ {
		r.h.nodes[i].rt.Stop()
	}
	select {
	case <-r.done:
	case <-time.After(15 * time.Second):
		t.Fatal("worker nodes never stopped")
	}
	return out.v, out.err
}

// awaitCounter polls one registry counter until it reaches min.
func awaitCounter(t *testing.T, reg *metrics.Registry, name string, min int64, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		if v := reg.Snapshot().Value(name); v >= min {
			return
		}
		if time.Now().After(limit) {
			t.Fatalf("%s never reached %d within %v", name, min, deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

// gauntletFarm sizes the elastic farm so the run comfortably outlasts a
// {join, drain, kill} schedule fired shortly after the first grants.
func gauntletFarm(seed int64) func(node int) *taskfarm.Params {
	return func(node int) *taskfarm.Params {
		return &taskfarm.Params{
			Tasks:    4000,
			Workers:  6,
			Prefetch: 2,
			Batch:    5,
			Spin:     80000,
			Shards:   2,
			Seed:     uint64(seed),
		}
	}
}

func farmResult(t *testing.T, v any) *taskfarm.Result {
	t.Helper()
	res, ok := v.(*taskfarm.Result)
	if !ok {
		t.Fatalf("run result = %T, want *taskfarm.Result", v)
	}
	return res
}

// staticFarmChecksum runs the undisturbed 3-node elastic farm (no faults,
// no membership events) and returns its checksum — the reference every
// chaos schedule must reproduce bit-for-bit.
func staticFarmChecksum(t *testing.T, seed int64) uint64 {
	t.Helper()
	h := buildMemberCluster(t, memberSetup{
		n:      3,
		relCfg: func(int) vmi.ReliableConfig { return vmi.ReliableConfig{} },
		farm:   gauntletFarm(seed),
	})
	v, err := h.start().await(60 * time.Second)
	if err != nil {
		t.Fatalf("static run failed: %v", err)
	}
	res := farmResult(t, v)
	if want := taskfarm.ExpectedChecksum(res.Tasks); res.Checksum != want {
		t.Fatalf("static checksum %#x does not match offline expectation %#x", res.Checksum, want)
	}
	h.shutdown()
	return res.Checksum
}

// TestMembershipChaosElasticFarm is the acceptance gauntlet: a 3-node
// farm plus one joiner, 5%% seeded drops under the reliability layer on
// every path, and a seeded schedule firing all three membership events —
// node 3 joins, node 1 drains, node 2 is declared dead while its process
// keeps running (a fenced zombie). The run must complete with a checksum
// bit-identical to the undisturbed static cluster, the zombie's stale
// frames must be counted and dropped, and the drained/dead nodes must
// end up hosting zero workers. Three consecutive seeds run as subtests.
func TestMembershipChaosElasticFarm(t *testing.T) {
	seed := coreChaosSeed(t)
	static := staticFarmChecksum(t, seed)

	for i := int64(0); i < 3; i++ {
		s := seed + i
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			runMembershipGauntlet(t, s, static)
		})
	}
}

func runMembershipGauntlet(t *testing.T, seed int64, static uint64) {
	var fds []*vmi.FaultDevice
	h := buildMemberCluster(t, memberSetup{
		n:      4,
		joiner: map[int]bool{3: true},
		relCfg: func(int) vmi.ReliableConfig { return vmi.ReliableConfig{RTO: 5 * time.Millisecond} },
		faults: func(node int) []vmi.SendDevice {
			fd := vmi.NewFaultDevice(seed*4+int64(node), vmi.FaultPlan{Drop: 0.05})
			fds = append(fds, fd)
			return []vmi.SendDevice{fd}
		},
		farm: gauntletFarm(seed),
	})
	for _, fd := range fds {
		defer fd.Close()
	}

	run := h.start()
	// Events fire once the farm is demonstrably mid-run, in a
	// seed-derived order with seed-derived spacing. Join and drain block
	// on protocol completion, so they run concurrently with the rest of
	// the schedule; the kill is an instant coordinator-side declaration.
	awaitCounter(t, h.nodes[0].reg, "taskfarm_tasks_granted_total", 100, 30*time.Second)
	rng := rand.New(rand.NewSource(seed))
	order := []string{"join", "drain", "kill"}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	t.Logf("membership schedule (seed %d): %v", seed, order)
	joinErr := make(chan error, 1)
	drainErr := make(chan error, 1)
	for _, ev := range order {
		time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		switch ev {
		case "join":
			go func() { joinErr <- h.nodes[3].mem.RequestJoin(30 * time.Second) }()
		case "drain":
			go func() { drainErr <- h.nodes[1].mem.RequestDrain(60 * time.Second) }()
		case "kill":
			if !h.nodes[0].mem.MarkDead(2, errors.New("chaos: injected kill")) {
				t.Error("MarkDead(2) was a no-op")
			}
		}
	}

	v, err := run.await(120 * time.Second)
	if err != nil {
		t.Fatalf("chaos run failed (seed %d): %v", seed, err)
	}
	res := farmResult(t, v)
	if want := taskfarm.ExpectedChecksum(res.Tasks); res.Checksum != want {
		t.Errorf("checksum %#x, want offline expectation %#x (seed %d)", res.Checksum, want, seed)
	}
	if res.Checksum != static {
		t.Errorf("checksum %#x diverged from static-cluster run %#x (seed %d)", res.Checksum, static, seed)
	}
	select {
	case err := <-joinErr:
		if err != nil {
			t.Errorf("join failed (seed %d): %v", seed, err)
		}
	case <-time.After(40 * time.Second):
		t.Error("join never resolved")
	}
	select {
	case err := <-drainErr:
		if err != nil {
			t.Errorf("drain failed (seed %d): %v", seed, err)
		}
	case <-time.After(70 * time.Second):
		t.Error("drain never resolved")
	}

	mem0 := h.nodes[0].mem
	for node, want := range map[int]core.MemberState{1: core.MemberLeft, 2: core.MemberDead, 3: core.MemberActive} {
		if st, ok := mem0.StateOf(node); !ok || st != want {
			t.Errorf("node %d state = %v (known %v), want %v", node, st, ok, want)
		}
	}
	if mem0.Evacuated() == 0 {
		t.Error("no elements were evacuated despite a drain and a death")
	}
	// The zombie keeps retransmitting unacked pre-death frames; every
	// arrival carries the old epoch and must be counted and dropped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h.nodes[0].stack.Reliable().Stats().StaleEpochDropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("zombie traffic produced no stale-epoch drops (seed %d): %+v",
				seed, h.nodes[0].stack.Reliable().Stats())
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v := h.nodes[0].reg.Snapshot().Value("vmi_rel_stale_epoch_dropped_total"); v != h.nodes[0].stack.Reliable().Stats().StaleEpochDropped {
		t.Errorf("registry stale-drop series %d disagrees with stats %d",
			v, h.nodes[0].stack.Reliable().Stats().StaleEpochDropped)
	}

	// Placement invariants: nothing lives on the drained or dead node,
	// every worker lives somewhere, exactly once.
	loc := h.nodes[0].rt.Locations()
	for _, pe := range []int{1, 2} {
		if n := loc.LocalCount(taskfarm.ArrayWorker, pe); n != 0 {
			t.Errorf("PE %d still hosts %d workers after leaving the cluster", pe, n)
		}
	}
	total := 0
	for pe := 0; pe < 4; pe++ {
		total += loc.LocalCount(taskfarm.ArrayWorker, pe)
	}
	if total != res.Workers {
		t.Errorf("worker elements: %d placed, want %d exactly-once", total, res.Workers)
	}
	var dropped int64
	for _, fd := range fds {
		dropped += fd.Stats().Dropped
	}
	if dropped == 0 {
		t.Error("fault schedule dropped nothing; the run proved nothing about chaos")
	}
	t.Logf("seed %d: drops=%d evacuated=%d staleDrops=%d joins=%d",
		seed, dropped, mem0.Evacuated(), h.nodes[0].stack.Reliable().Stats().StaleEpochDropped, total)
}

// TestMembershipDeathDetectedByBudget kills a node for real — runtime
// stopped, stack closed, as close to kill -9 as one process gets — and
// requires the coordinator's Reliable layer to detect it by retransmit
// budget exhaustion, declare it dead, re-home its workers, and still
// finish with the exact checksum.
func TestMembershipDeathDetectedByBudget(t *testing.T) {
	seed := coreChaosSeed(t)
	var fds []*vmi.FaultDevice
	h := buildMemberCluster(t, memberSetup{
		n: 3,
		relCfg: func(int) vmi.ReliableConfig {
			return vmi.ReliableConfig{RTO: 3 * time.Millisecond, RTOMax: 15 * time.Millisecond}
		},
		faults: func(node int) []vmi.SendDevice {
			fd := vmi.NewFaultDevice(seed*8+int64(node), vmi.FaultPlan{Drop: 0.05})
			fds = append(fds, fd)
			return []vmi.SendDevice{fd}
		},
		farm: gauntletFarm(seed),
	})
	for _, fd := range fds {
		defer fd.Close()
	}
	// Dead listeners refuse instantly; don't spend seconds in dial
	// backoff for a peer the budget is about to declare dead.
	for _, nd := range h.nodes {
		nd.stack.TCP().DialAttempts = 2
	}

	run := h.start()
	awaitCounter(t, h.nodes[0].reg, "taskfarm_tasks_granted_total", 100, 30*time.Second)
	h.nodes[2].rt.Stop()
	h.nodes[2].stack.Close()

	v, err := run.await(120 * time.Second)
	if err != nil {
		t.Fatalf("run failed after hard kill (seed %d): %v", seed, err)
	}
	res := farmResult(t, v)
	if want := taskfarm.ExpectedChecksum(res.Tasks); res.Checksum != want {
		t.Errorf("checksum %#x, want %#x: tasks lost or duplicated across the kill", res.Checksum, want)
	}
	if st, ok := h.nodes[0].mem.StateOf(2); !ok || st != core.MemberDead {
		t.Errorf("killed node state = %v (known %v), want dead", st, ok)
	}
	if h.nodes[0].mem.Evacuated() == 0 {
		t.Error("death re-homed no elements")
	}
	if pf := h.nodes[0].stack.Reliable().Stats().PeerFailures; pf == 0 {
		t.Error("the retransmit budget never declared the peer failed; death was not detected, only asserted")
	}
	if n := h.nodes[0].rt.Locations().LocalCount(taskfarm.ArrayWorker, 2); n != 0 {
		t.Errorf("dead PE still hosts %d workers", n)
	}
}

// TestMembershipChaosStencilJoinDrain exercises the LB-driven side of
// elasticity: a stencil with periodic AtSync balancing gains a joiner
// mid-run (the balancer must start using it) and then drains a founding
// node (the balancer must evacuate it before the drain completes) — all
// under 5%% seeded drops, with the final checksum bit-identical to a
// static 3-node run.
func TestMembershipChaosStencilJoinDrain(t *testing.T) {
	seed := coreChaosSeed(t)
	mkParams := func() *stencil.Params {
		return &stencil.Params{
			Width: 48, Height: 48, VX: 4, VY: 4,
			Steps: 240, Warmup: 0,
			LB: balance.Greedy{}, LBEvery: 2,
		}
	}
	// bitSum accumulates the wrapping bit-pattern sum of every block's
	// final interior cells via the Collect hook. Integer addition
	// commutes, so the value is independent of block placement and
	// completion order — the float OpSum reduction is not (IEEE addition
	// is non-associative, and membership churn reorders the fold), which
	// is why the bit-identity assertion lives here and the reduction
	// checksum only gets a tolerance check.
	mkProg := func(p *stencil.Params, bitSum *atomic.Uint64) func(node int, e *taskfarm.ElasticConfig) *core.Program {
		return func(node int, e *taskfarm.ElasticConfig) *core.Program {
			nObj := p.VX * p.VY
			p := *p
			p.InitialMap = func(i, numPE int) int {
				var act []int
				for pe := 0; pe < numPE; pe++ {
					if e.ActiveNode(e.NodeOf(pe)) {
						act = append(act, pe)
					}
				}
				return act[core.BlockMap(i, nObj, len(act))]
			}
			p.Collect = func(bx, by, x0, y0, w, h int, vals []float64) {
				var c uint64
				for _, v := range vals {
					c += math.Float64bits(v)
				}
				bitSum.Add(c)
			}
			prog, err := stencil.BuildProgram(&p)
			if err != nil {
				t.Fatal(err)
			}
			return prog
		}
	}

	var baseBits atomic.Uint64
	base := buildMemberCluster(t, memberSetup{
		n:      3,
		relCfg: func(int) vmi.ReliableConfig { return vmi.ReliableConfig{} },
		prog:   mkProg(mkParams(), &baseBits),
	})
	bv, err := base.start().await(120 * time.Second)
	if err != nil {
		t.Fatalf("static stencil run failed: %v", err)
	}
	baseRes, ok := bv.(*stencil.Result)
	if !ok {
		t.Fatalf("static result = %T, want *stencil.Result", bv)
	}
	base.shutdown()

	var fds []*vmi.FaultDevice
	var chaosBits atomic.Uint64
	h := buildMemberCluster(t, memberSetup{
		n:      4,
		joiner: map[int]bool{3: true},
		relCfg: func(int) vmi.ReliableConfig { return vmi.ReliableConfig{RTO: 5 * time.Millisecond} },
		faults: func(node int) []vmi.SendDevice {
			fd := vmi.NewFaultDevice(seed*16+int64(node), vmi.FaultPlan{Drop: 0.05})
			fds = append(fds, fd)
			return []vmi.SendDevice{fd}
		},
		prog: mkProg(mkParams(), &chaosBits),
	})
	for _, fd := range fds {
		defer fd.Close()
	}
	run := h.start()
	// Join once balancing has demonstrably started, then drain a founder
	// once the joiner is in. Both block on protocol completion, so their
	// success implies the LB evacuated in time.
	awaitCounter(t, h.nodes[0].reg, "core_lb_rounds_total", 2, 60*time.Second)
	if err := h.nodes[3].mem.RequestJoin(30 * time.Second); err != nil {
		t.Fatalf("join failed: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := h.nodes[1].mem.RequestDrain(60 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	cv, err := run.await(120 * time.Second)
	if err != nil {
		t.Fatalf("chaos stencil run failed (seed %d): %v", seed, err)
	}
	chaosRes, ok := cv.(*stencil.Result)
	if !ok {
		t.Fatalf("chaos result = %T, want *stencil.Result", cv)
	}
	if cb, bb := chaosBits.Load(), baseBits.Load(); cb != bb {
		t.Errorf("stencil cell checksum diverged across join+drain (seed %d): %#x vs %#x",
			seed, cb, bb)
	}
	// The reduction's float sum folds in placement-dependent order, so it
	// may wobble in the last ulps; it must still agree to tolerance.
	if d := math.Abs(chaosRes.Checksum - baseRes.Checksum); d > 1e-6*math.Abs(baseRes.Checksum) {
		t.Errorf("stencil reduction checksum diverged across join+drain (seed %d): %v vs %v",
			seed, chaosRes.Checksum, baseRes.Checksum)
	}
	loc := h.nodes[0].rt.Locations()
	if n := loc.LocalCount(0, 1); n != 0 {
		t.Errorf("drained PE 1 still hosts %d stencil blocks", n)
	}
	if n := loc.LocalCount(0, 3); n == 0 {
		t.Error("joiner PE 3 never received a stencil block from the balancer")
	}
	if h.nodes[0].mem.Evacuated() == 0 {
		t.Error("drain evacuated no elements")
	}
	total := 0
	for pe := 0; pe < 4; pe++ {
		total += loc.LocalCount(0, pe)
	}
	if want := mkParams().VX * mkParams().VY; total != want {
		t.Errorf("stencil blocks: %d placed, want %d exactly-once", total, want)
	}
	t.Logf("seed %d: evacuated=%d joinerBlocks=%d", seed, h.nodes[0].mem.Evacuated(), loc.LocalCount(0, 3))
}

// TestMembershipDrainGatesRedial is the dial-gate regression: once a
// peer has drained out of the cluster, nothing may redial it — a send
// that would need a fresh connection fails fast with ErrDialGated
// instead of entering the dial-retry loop — and the whole run must not
// leak a single goroutine (hand-rolled leak check, no external deps).
func TestMembershipDrainGatesRedial(t *testing.T) {
	before := goruntime.NumGoroutine()

	h := buildMemberCluster(t, memberSetup{
		n:      2,
		relCfg: func(int) vmi.ReliableConfig { return vmi.ReliableConfig{} },
		farm: func(int) *taskfarm.Params {
			return &taskfarm.Params{
				Tasks: 2000, Workers: 4, Prefetch: 2, Batch: 5,
				Spin: 60000, Shards: 1, Seed: 7,
			}
		},
	})
	run := h.start()
	awaitCounter(t, h.nodes[0].reg, "taskfarm_tasks_granted_total", 50, 30*time.Second)
	if err := h.nodes[1].mem.RequestDrain(60 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// Sever any connection that survived the drain, so the next send to
	// the departed peer must dial — and the gate must veto that dial.
	for h.nodes[0].stack.TCP().DropConn(1) {
	}
	err := h.nodes[0].stack.TCP().Send(&vmi.Frame{Src: 0, Dst: 1, Body: []byte("ghost")})
	if !errors.Is(err, vmi.ErrDialGated) {
		t.Errorf("send to drained peer: err = %v, want ErrDialGated", err)
	}
	// The veto must happen before the retry loop, not during it: no
	// goroutine may be sitting in dialRetry toward the departed peer.
	buf := make([]byte, 1<<20)
	if dump := string(buf[:goruntime.Stack(buf, true)]); strings.Contains(dump, "dialRetry") {
		t.Error("a dial-retry loop is running against a drained peer")
	}

	v, runErr := run.await(60 * time.Second)
	if runErr != nil {
		t.Fatalf("run failed: %v", runErr)
	}
	res := farmResult(t, v)
	if want := taskfarm.ExpectedChecksum(res.Tasks); res.Checksum != want {
		t.Errorf("checksum %#x, want %#x", res.Checksum, want)
	}

	// Tear everything down, then require the goroutine count to return
	// to its pre-test baseline: a leaked reconnect loop never exits, so
	// it would hold the count up forever.
	h.shutdown()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := goruntime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			n := goruntime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after teardown\n%s",
				before, goruntime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// nopChare is the placement-property test's inert element.
type nopChare struct{}

func (nopChare) Recv(*core.Ctx, core.EntryID, any) {}

// TestPlanDrainProperty: for 50 seeded random location tables, PlanDrain
// must evacuate the drained PEs completely, move nothing it does not
// have to, target only live PEs, and leave every element reachable
// exactly once.
func TestPlanDrainProperty(t *testing.T) {
	seed := coreChaosSeed(t)
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)))
		numPE := 2 + rng.Intn(8)
		nArrays := 1 + rng.Intn(3)
		specs := make([]core.ArraySpec, nArrays)
		arrays := make([]core.ArrayID, nArrays)
		totalElems := 0
		for a := range specs {
			n := 1 + rng.Intn(40)
			totalElems += n
			specs[a] = core.ArraySpec{ID: core.ArrayID(a), N: n,
				New: func(int) core.Chare { return nopChare{} }}
			arrays[a] = core.ArrayID(a)
		}
		prog := &core.Program{Arrays: specs, Start: func(*core.Ctx) {}}
		loc := core.NewLocations(prog, numPE)
		// Scatter elements over random PEs — 50 seeded LB outcomes.
		for a := range specs {
			for i := 0; i < specs[a].N; i++ {
				ref := core.ElemRef{Array: core.ArrayID(a), Index: i}
				to := rng.Intn(numPE)
				if int(loc.PEOf(ref)) != to {
					if _, err := loc.Move(ref, to); err != nil {
						t.Fatalf("trial %d: scatter move: %v", trial, err)
					}
				}
			}
		}
		// Drain a random proper subset of PEs (at least one survivor).
		evac := make(map[int]bool)
		for len(evac) == 0 {
			for pe := 0; pe < numPE; pe++ {
				if rng.Intn(3) == 0 && len(evac) < numPE-1 {
					evac[pe] = true
				}
			}
		}
		evacFn := func(pe int) bool { return evac[pe] }
		alive := func(pe int) bool { return !evac[pe] }

		moves := core.PlanDrain(loc, arrays, numPE, evacFn, alive)
		seen := make(map[core.ElemRef]bool)
		for _, mv := range moves {
			if seen[mv.Ref] {
				t.Fatalf("trial %d (seed %d): element %v moved twice", trial, seed+int64(trial), mv.Ref)
			}
			seen[mv.Ref] = true
			if from := int(loc.PEOf(mv.Ref)); !evac[from] {
				t.Fatalf("trial %d: plan moves %v off non-drained PE %d", trial, mv.Ref, from)
			}
			if !alive(mv.ToPE) {
				t.Fatalf("trial %d: plan targets drained/dead PE %d", trial, mv.ToPE)
			}
			if _, err := loc.Move(mv.Ref, mv.ToPE); err != nil {
				t.Fatalf("trial %d: applying plan: %v", trial, err)
			}
		}
		// Post-state: drained PEs empty, every element exactly once.
		count := 0
		for pe := 0; pe < numPE; pe++ {
			for a := range specs {
				refs := loc.ElementsOn(core.ArrayID(a), pe)
				if evac[pe] && len(refs) > 0 {
					t.Fatalf("trial %d: PE %d still hosts %d elements of array %d after drain",
						trial, pe, len(refs), a)
				}
				count += len(refs)
				for _, ref := range refs {
					if int(loc.PEOf(ref)) != pe {
						t.Fatalf("trial %d: %v listed on PE %d but PEOf says %d",
							trial, ref, pe, loc.PEOf(ref))
					}
				}
			}
		}
		if count != totalElems {
			t.Fatalf("trial %d: %d elements reachable after drain, want %d exactly-once",
				trial, count, totalElems)
		}
	}
}
