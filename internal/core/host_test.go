package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// stubBackend satisfies Backend for host-level unit tests.
type stubBackend struct {
	topo *topology.Topology
	sent []*Message
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &stubBackend{topo: topo}
}

func (s *stubBackend) Route(m *Message)                                       { s.sent = append(s.sent, m) }
func (s *stubBackend) Now() time.Duration                                     { return 0 }
func (s *stubBackend) Charge(time.Duration)                                   {}
func (s *stubBackend) NumPE() int                                             { return s.topo.NumPE() }
func (s *stubBackend) Topo() *topology.Topology                               { return s.topo }
func (s *stubBackend) ArrayN(ArrayID) int                                     { return 4 }
func (s *stubBackend) ExitWith(any)                                           {}
func (s *stubBackend) Contribute(ElemRef, int, ArrayID, int64, any, ReduceOp) {}
func (s *stubBackend) AtSync(ElemRef, int)                                    {}
func (s *stubBackend) Record(trace.Event)                                     {}

func TestPEHostEachDeterministicOrder(t *testing.T) {
	b := newStubBackend(t)
	h := NewPEHost(b, 0)
	refs := []ElemRef{{1, 2}, {0, 5}, {1, 0}, {0, 1}}
	for _, r := range refs {
		h.AddElement(r, funcChare(func(*Ctx, EntryID, any) {}))
	}
	var got []ElemRef
	h.Each(func(ref ElemRef, ch Chare) { got = append(got, ref) })
	want := []ElemRef{{0, 1}, {0, 5}, {1, 0}, {1, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order %v, want %v", got, want)
		}
	}
	if h.NumElements() != 4 {
		t.Errorf("NumElements = %d", h.NumElements())
	}
	if !h.Has(ElemRef{1, 2}) || h.Has(ElemRef{9, 9}) {
		t.Error("Has wrong")
	}
}

func TestPEHostDeliverToMissingElement(t *testing.T) {
	b := newStubBackend(t)
	h := NewPEHost(b, 0)
	err := h.DeliverApp(&Message{Kind: KindApp, To: ElemRef{0, 0}})
	if err == nil {
		t.Error("delivery to missing element succeeded")
	}
	if err := h.ResumeFromSync(ElemRef{0, 0}); err == nil {
		t.Error("resume of missing element succeeded")
	}
}

func TestPEHostStatsAndReset(t *testing.T) {
	b := newStubBackend(t)
	h := NewPEHost(b, 0)
	h.AddElement(ElemRef{0, 0}, funcChare(func(*Ctx, EntryID, any) {}))
	h.AddElement(ElemRef{1, 0}, funcChare(func(*Ctx, EntryID, any) {}))
	h.AddLoad(ElemRef{0, 0}, 5*time.Millisecond)
	h.AddLoad(ElemRef{9, 9}, time.Hour) // unknown ref: ignored

	stats := h.StatsAndReset([]ArrayID{0})
	if len(stats) != 1 {
		t.Fatalf("stats for %d elements, want 1 (array filter)", len(stats))
	}
	if stats[0].Load != 5*time.Millisecond {
		t.Errorf("load = %v", stats[0].Load)
	}
	// Reset happened.
	stats2 := h.StatsAndReset([]ArrayID{0})
	if stats2[0].Load != 0 {
		t.Errorf("load not reset: %v", stats2[0].Load)
	}
}

func TestPEHostWanCounting(t *testing.T) {
	// The Ctx checks CrossesWAN against the DstPE the backend resolved,
	// so the stub needs a resolver: element index 1 lives on PE 1, which
	// is in the other cluster.
	b := &resolvingBackend{
		stubBackend: newStubBackend(t),
		resolve: func(m *Message) {
			if m.To.Index == 1 {
				m.DstPE = 1
			}
		},
	}
	h := NewPEHost(b, 0) // PE 0 in cluster 0
	h.AddElement(ElemRef{0, 0}, funcChare(func(ctx *Ctx, e EntryID, d any) {
		ctx.Send(ElemRef{0, 0}, 0, nil) // local
		ctx.Send(ElemRef{0, 1}, 0, nil) // crosses the WAN
	}))
	if err := h.DeliverApp(&Message{Kind: KindApp, To: ElemRef{0, 0}}); err != nil {
		t.Fatal(err)
	}
	stats := h.StatsAndReset([]ArrayID{0})
	if stats[0].Msgs != 2 {
		t.Errorf("msgs = %d, want 2", stats[0].Msgs)
	}
	if stats[0].WanMsgs != 1 {
		t.Errorf("wan msgs = %d, want 1", stats[0].WanMsgs)
	}
}

type resolvingBackend struct {
	*stubBackend
	resolve func(*Message)
}

func (r *resolvingBackend) Route(m *Message) {
	r.resolve(m)
	r.stubBackend.Route(m)
}

func TestPEHostAllAtSync(t *testing.T) {
	b := newStubBackend(t)
	h := NewPEHost(b, 0)
	h.AddElement(ElemRef{0, 0}, funcChare(func(ctx *Ctx, e EntryID, d any) { ctx.AtSync() }))
	h.AddElement(ElemRef{0, 1}, funcChare(func(ctx *Ctx, e EntryID, d any) { ctx.AtSync() }))
	if h.AllAtSync([]ArrayID{0}) {
		t.Error("AllAtSync before any sync")
	}
	if err := h.DeliverApp(&Message{Kind: KindApp, To: ElemRef{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if h.AllAtSync([]ArrayID{0}) {
		t.Error("AllAtSync with one of two synced")
	}
	if err := h.DeliverApp(&Message{Kind: KindApp, To: ElemRef{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if !h.AllAtSync([]ArrayID{0}) {
		t.Error("AllAtSync false after both synced")
	}
	// Arrays not mentioned don't block.
	if !h.AllAtSync([]ArrayID{}) {
		t.Error("empty array filter should be vacuously true")
	}
}
