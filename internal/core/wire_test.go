package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// TestWireDeviceChain runs the two-node TCP ping-pong with compression,
// checksumming, and encryption applied to every wide-area frame — the VMI
// "manipulate message data as it is passed from module to module"
// capability, end to end through the runtime.
func TestWireDeviceChain(t *testing.T) {
	const rounds = 3
	topo, err := topology.TwoClusters(2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}

	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						n := data.(int)
						if n >= 2*rounds {
							ctx.ExitWith(n)
							return
						}
						// A compressible payload exercises the flate path.
						ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1,
							WithBytes(4096))
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
		}
	}

	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{{0: "127.0.0.1:0"}, {1: "127.0.0.1:0"}}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	for node := 0; node < 2; node++ {
		cipher, err := vmi.NewCipherDevice(key)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(topo, mkProg(),
			WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}),
			WithWireDevices(
				[]vmi.SendDevice{&vmi.CompressDevice{MinSize: 16}, vmi.ChecksumDevice{}, cipher},
				[]vmi.RecvDevice{cipher, vmi.ChecksumDevice{}, &vmi.CompressDevice{MinSize: 16}},
			))
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}
	done := make(chan error, 1)
	go func() {
		_, err := rts[1].Run()
		done <- err
	}()
	v, err := rts[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 2*rounds {
		t.Errorf("result %v through transform chain", v)
	}
	rts[1].Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWireChainMismatchFails: a receiver without the matching recv chain
// must fail to decode transformed frames, surfacing an error rather than
// corrupting state.
func TestWireChainMismatchFails(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{ID: 0, N: 2, New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) { ctx.ExitWith(nil) })
			}}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 1}, 0, 99, WithBytes(4096)) },
		}
	}
	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{{0: "127.0.0.1:0"}, {1: "127.0.0.1:0"}}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, _ := tcps[0].Listen()
	a1, _ := tcps[1].Listen()
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	cipher, err := vmi.NewCipherDevice(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 encrypts; node 1 has no recv chain.
	rts[0], err = NewRuntime(topo, mkProg(),
		WithCluster(ClusterConfig{Transport: tcps[0], NodeOf: nodeOf, Node: 0, PELo: 0, PEHi: 1}),
		WithWireDevices([]vmi.SendDevice{cipher}, nil))
	if err != nil {
		t.Fatal(err)
	}
	rts[1], err = NewRuntime(topo, mkProg(),
		WithCluster(ClusterConfig{Transport: tcps[1], NodeOf: nodeOf, Node: 1, PELo: 1, PEHi: 2}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := rts[1].Run()
		done <- err
	}()
	// Node 0 just sends and waits for exit; node 1 should fail decoding.
	go func() {
		time.Sleep(2 * time.Second)
		rts[0].Stop() // in case nothing else unblocks it
	}()
	_, _ = rts[0].Run()
	select {
	case err := <-done:
		if err == nil {
			t.Error("mismatched wire chain decoded successfully")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver neither failed nor stopped")
	}
}
