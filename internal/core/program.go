package core

import "fmt"

// ArraySpec declares one chare array of a Program.
type ArraySpec struct {
	// ID must be unique within the program and index arrays densely from 0.
	ID ArrayID
	// N is the number of elements; indices run [0, N).
	N int
	// New constructs element i's initial state. Called once per element on
	// its initial PE before the program starts.
	New func(i int) Chare
	// Map gives element i's initial PE. Nil means block mapping:
	// contiguous ranges of ceil(N/P) elements per PE.
	Map func(i int, numPE int) int
	// Restore rebuilds a migrated element from Pack output. Required only
	// if elements of this array migrate.
	Restore func(i int, data []byte) (Chare, error)
}

// BlockMap is the default placement: contiguous index ranges, one per PE.
// With the paper's two-cluster topologies (cluster 0 = PEs [0, P/2)), a
// block map puts the first half of the index space on cluster 0.
func BlockMap(i, n, numPE int) int {
	per := (n + numPE - 1) / numPE
	pe := i / per
	if pe >= numPE {
		pe = numPE - 1
	}
	return pe
}

// Program is a complete message-driven application, runnable unchanged on
// the real-time runtime or the virtual-time simulator.
type Program struct {
	// Arrays declares the chare arrays. Element construction order is
	// deterministic: arrays in slice order, elements in index order.
	Arrays []ArraySpec

	// Start runs as the first handler on PE 0.
	Start func(ctx *Ctx)

	// OnReduction, if non-nil, runs on PE 0 each time an array-wide
	// reduction completes. seq is the per-array reduction round.
	OnReduction func(ctx *Ctx, array ArrayID, seq int64, value any)

	// LB, if non-nil, enables AtSync load balancing for the listed arrays.
	LB *LBConfig
}

// Validate checks structural invariants of the program.
func (p *Program) Validate() error {
	if p.Start == nil {
		return fmt.Errorf("core: program has no Start")
	}
	if len(p.Arrays) == 0 {
		return fmt.Errorf("core: program declares no arrays")
	}
	for i, a := range p.Arrays {
		if int(a.ID) != i {
			return fmt.Errorf("core: array %d has ID %d; IDs must be dense from 0", i, a.ID)
		}
		if a.N <= 0 {
			return fmt.Errorf("core: array %d has %d elements", a.ID, a.N)
		}
		if a.New == nil {
			return fmt.Errorf("core: array %d has no constructor", a.ID)
		}
	}
	if p.LB != nil {
		if p.LB.Strategy == nil {
			return fmt.Errorf("core: LB config has no strategy")
		}
		if len(p.LB.Arrays) == 0 {
			return fmt.Errorf("core: LB config lists no arrays")
		}
		for _, id := range p.LB.Arrays {
			if int(id) < 0 || int(id) >= len(p.Arrays) {
				return fmt.Errorf("core: LB config references unknown array %d", id)
			}
		}
	}
	return nil
}

// placement resolves the initial PE of element i of spec a.
func (a *ArraySpec) placement(i, numPE int) int {
	if a.Map != nil {
		pe := a.Map(i, numPE)
		if pe < 0 || pe >= numPE {
			// Clamp rather than crash: a map function bug should surface
			// as bad balance, not an out-of-range panic inside the runtime.
			if pe < 0 {
				return 0
			}
			return numPE - 1
		}
		return pe
	}
	return BlockMap(i, a.N, numPE)
}
