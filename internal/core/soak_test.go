package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// TestSoakJitteredQuiescence pushes a few thousand randomly-routed,
// randomly-prioritized messages through the real-time runtime with
// jittered wide-area latencies, message bundling, and wave-based
// quiescence detection all enabled at once — the kitchen-sink
// configuration — and checks the system drains completely with every
// message accounted for.
func TestSoakJitteredQuiescence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		pes      = 8
		elems    = 64
		seeds    = 40
		hopsEach = 120
	)
	topo, err := topology.TwoClusters(pes, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Int64
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: elems,
			New: func(i int) Chare {
				rng := rand.New(rand.NewSource(int64(i) + 99))
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					delivered.Add(1)
					hops := data.(int)
					if hops <= 0 {
						return
					}
					ctx.Send(ElemRef{0, rng.Intn(elems)}, 0, hops-1,
						WithPrio(int32(rng.Intn(5)-2)),
						WithBytes(rng.Intn(2048)))
				})
			},
		}},
		Start: func(ctx *Ctx) {
			for s := 0; s < seeds; s++ {
				ctx.Send(ElemRef{0, s % elems}, 0, hopsEach)
			}
		},
	}
	rt, err := NewRuntime(topo, prog,
		WithQuiescence(),
		WithBundling(),
		WithLatency(vmi.JitteredLatency(func(src, dst int32) time.Duration {
			return topo.Latency(int(src), int(dst))
		}, 0.4, 7)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		if _, err := rt.Run(); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("soak run never quiesced")
	}
	want := int64(seeds * (hopsEach + 1))
	if got := delivered.Load(); got != want {
		t.Errorf("delivered %d handler invocations, want %d", got, want)
	}
	sent, processed := rt.Counters()
	if sent != processed {
		t.Errorf("counters diverge after quiescence: %d vs %d", sent, processed)
	}
}
