package core

import (
	"fmt"
	"sync"
)

// Locations is the runtime's location manager: it tracks which PE owns
// each array element and derived counts needed by the reduction and
// load-balancing protocols. Reads are frequent (every send); writes happen
// only during element creation and load-balancing migrations.
type Locations struct {
	mu     sync.RWMutex
	pe     [][]int32 // per array, per element: owning PE
	counts [][]int   // per array, per PE: elements owned
	owners []int     // per array: number of PEs owning >= 1 element
}

// NewLocations builds the location table for a program on numPE PEs using
// each array's initial placement.
func NewLocations(p *Program, numPE int) *Locations {
	l := &Locations{
		pe:     make([][]int32, len(p.Arrays)),
		counts: make([][]int, len(p.Arrays)),
		owners: make([]int, len(p.Arrays)),
	}
	for ai := range p.Arrays {
		spec := &p.Arrays[ai]
		l.pe[ai] = make([]int32, spec.N)
		l.counts[ai] = make([]int, numPE)
		for i := 0; i < spec.N; i++ {
			pe := spec.placement(i, numPE)
			l.pe[ai][i] = int32(pe)
			l.counts[ai][pe]++
		}
		for _, c := range l.counts[ai] {
			if c > 0 {
				l.owners[ai]++
			}
		}
	}
	return l
}

// PEOf reports the PE currently owning an element.
func (l *Locations) PEOf(ref ElemRef) int32 {
	l.mu.RLock()
	pe := l.pe[ref.Array][ref.Index]
	l.mu.RUnlock()
	return pe
}

// LocalCount reports how many elements of array a live on PE pe.
func (l *Locations) LocalCount(a ArrayID, pe int) int {
	l.mu.RLock()
	n := l.counts[a][pe]
	l.mu.RUnlock()
	return n
}

// Owners reports how many PEs own at least one element of array a.
func (l *Locations) Owners(a ArrayID) int {
	l.mu.RLock()
	n := l.owners[a]
	l.mu.RUnlock()
	return n
}

// Move records an element's migration to a new PE and returns its previous
// PE. It must only be called while the application is at a load-balancing
// sync point (no application messages in flight to the element).
func (l *Locations) Move(ref ElemRef, toPE int) (fromPE int32, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(ref.Array) >= len(l.pe) || ref.Index < 0 || ref.Index >= len(l.pe[ref.Array]) {
		return 0, fmt.Errorf("core: move of unknown element %v", ref)
	}
	from := l.pe[ref.Array][ref.Index]
	if int(from) == toPE {
		return from, nil
	}
	counts := l.counts[ref.Array]
	counts[from]--
	if counts[from] == 0 {
		l.owners[ref.Array]--
	}
	if counts[toPE] == 0 {
		l.owners[ref.Array]++
	}
	counts[toPE]++
	l.pe[ref.Array][ref.Index] = int32(toPE)
	return from, nil
}

// ElementsOn returns the elements of array a currently on PE pe, in index
// order.
func (l *Locations) ElementsOn(a ArrayID, pe int) []ElemRef {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []ElemRef
	for i, p := range l.pe[a] {
		if int(p) == pe {
			out = append(out, ElemRef{Array: a, Index: i})
		}
	}
	return out
}
