package core

import (
	"fmt"
	"sort"
)

// Element recovery off dead or drained nodes. The membership layer
// (membership.go) decides *when* a node's PEs must be evacuated; this file
// implements *how*: a deterministic plan every process computes
// identically, applied to the local location table immediately and to the
// owning PE's host via a KindMember scheduler message — PEHost is only
// touched by its own scheduler goroutine, so construction cannot happen
// on the membership apply path directly.
//
// Application messages can outrun the construction message (a dispatcher
// on another node may target the re-homed element the moment it applies
// the same table), so the scheduler parks app messages addressed to an
// element that is expected-but-not-yet-constructed and replays them, in
// arrival order, right after the KindMember construction runs.

// memberRecover is the KindMember payload: (re)construct the target
// element on the destination PE, restoring State when present (PUP
// checkpoint encoding) and constructing fresh otherwise. It never crosses
// the wire — each process enqueues its own share of the plan locally.
type memberRecover struct {
	State []byte
}

// PlanDrain deterministically re-homes every element currently on an
// evacuating PE onto the least-loaded alive PE (ties break toward the
// lowest PE number). All processes of a run call it with identical
// inputs — the shared location table and the member table's PE
// predicates — and therefore compute identical plans, keeping their
// location tables in agreement without any extra coordination. It is
// also the planner behind the load balancer's drain handling and is
// exported for tests and tools.
func PlanDrain(loc *Locations, arrays []ArrayID, numPE int, evac func(pe int) bool, alive func(pe int) bool) []Move {
	var targets []int
	load := make(map[int]int)
	for pe := 0; pe < numPE; pe++ {
		if alive(pe) && !evac(pe) {
			targets = append(targets, pe)
			for _, a := range arrays {
				load[pe] += loc.LocalCount(a, pe)
			}
		}
	}
	if len(targets) == 0 {
		return nil
	}
	sort.Ints(targets)
	var moves []Move
	for _, a := range arrays {
		for pe := 0; pe < numPE; pe++ {
			if !evac(pe) {
				continue
			}
			for _, ref := range loc.ElementsOn(a, pe) {
				best := targets[0]
				for _, t := range targets[1:] {
					if load[t] < load[best] {
						best = t
					}
				}
				load[best]++
				moves = append(moves, Move{Ref: ref, ToPE: best})
			}
		}
	}
	return moves
}

// recoverNode applies the drain plan for a node's PEs: location moves on
// this process's table, plus KindMember construction messages for every
// element re-homed onto a local PE (restored from ck when it has the
// element's state, fresh otherwise). Returns the number of elements
// re-homed. Safe to call from any goroutine.
func (rt *Runtime) recoverNode(deadPEs []int, alive func(pe int) bool, ck *Checkpoint) int {
	if len(deadPEs) == 0 {
		return 0
	}
	evac := make(map[int]bool, len(deadPEs))
	for _, pe := range deadPEs {
		evac[pe] = true
	}
	arrays := make([]ArrayID, len(rt.prog.Arrays))
	for i := range rt.prog.Arrays {
		arrays[i] = rt.prog.Arrays[i].ID
	}
	moves := PlanDrain(rt.loc, arrays, rt.topo.NumPE(), func(pe int) bool { return evac[pe] }, alive)
	for _, mv := range moves {
		if mv.ToPE >= rt.opts.PELo && mv.ToPE < rt.opts.PEHi {
			var state []byte
			if ck != nil {
				state, _ = ck.StateOf(mv.Ref)
			}
			// Expected-arrival mark before the location move: once the move
			// is visible, other goroutines route app messages at the new PE,
			// and they must find the parking slot armed.
			rt.expectArrival(mv.Ref)
			rt.sentByPE[mv.ToPE].Add(1)
			rt.enqueueLocal(&Message{
				Kind: KindMember, To: mv.Ref, Data: &memberRecover{State: state},
				SrcPE: int32(mv.ToPE), DstPE: int32(mv.ToPE), ID: rt.msgSeq.Add(1),
			})
		}
		if _, err := rt.loc.Move(mv.Ref, mv.ToPE); err != nil {
			rt.fail(err)
			return len(moves)
		}
	}
	return len(moves)
}

// expectArrival arms message parking for an element about to be
// constructed on a local PE.
func (rt *Runtime) expectArrival(ref ElemRef) {
	rt.arrMu.Lock()
	if rt.arriving == nil {
		rt.arriving = make(map[ElemRef][]*Message)
	}
	if _, ok := rt.arriving[ref]; !ok {
		rt.arriving[ref] = nil
	}
	rt.arrMu.Unlock()
}

// parkIfArriving buffers an app message for an element this PE does not
// host yet but is expecting from recovery. Runs on the PE scheduler.
func (rt *Runtime) parkIfArriving(ps *peState, m *Message) bool {
	if ps.host.Has(m.To) {
		return false
	}
	rt.arrMu.Lock()
	defer rt.arrMu.Unlock()
	if rt.arriving == nil {
		return false
	}
	parked, ok := rt.arriving[m.To]
	if !ok {
		return false
	}
	rt.arriving[m.To] = append(parked, m)
	return true
}

// takeArrivals disarms parking for ref and returns the buffered messages.
func (rt *Runtime) takeArrivals(ref ElemRef) []*Message {
	rt.arrMu.Lock()
	defer rt.arrMu.Unlock()
	parked, ok := rt.arriving[ref]
	if ok {
		delete(rt.arriving, ref)
	}
	return parked
}

// handleMember runs a KindMember construction on the owning PE's
// scheduler: build the element (restoring checkpointed state when
// carried), install it, and replay any messages that arrived early.
func (rt *Runtime) handleMember(ps *peState, m *Message) error {
	rec, ok := m.Data.(*memberRecover)
	if !ok {
		return fmt.Errorf("core: KindMember message with payload %T", m.Data)
	}
	ref := m.To
	a := int(ref.Array)
	if a < 0 || a >= len(rt.prog.Arrays) {
		return fmt.Errorf("core: recovering element %v names unknown array", ref)
	}
	if !ps.host.Has(ref) {
		ch := rt.prog.Arrays[a].New(ref.Index)
		if rec.State != nil {
			mg, ok := ch.(Migratable)
			if !ok {
				return fmt.Errorf("core: recovering element %v constructed as non-Migratable %T", ref, ch)
			}
			if err := PUPUnpackCheckpoint(mg, rec.State); err != nil {
				return fmt.Errorf("core: restore recovered element %v: %w", ref, err)
			}
		}
		ps.host.AddElement(ref, ch)
	}
	for _, pm := range rt.takeArrivals(ref) {
		if err := ps.host.DeliverApp(pm); err != nil {
			return err
		}
	}
	return nil
}
