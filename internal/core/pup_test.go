package core

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// pupEverything exercises every visitor method.
type pupEverything struct {
	i   int
	i64 int64
	i32 int32
	u64 uint64
	f   float64
	b   bool
	d   time.Duration
	s   string
	by  []byte
	fs  []float64
	is  []int
	i3s []int32
}

func (v *pupEverything) PUP(p *PUP) {
	p.Int(&v.i)
	p.Int64(&v.i64)
	p.Int32(&v.i32)
	p.Uint64(&v.u64)
	p.Float64(&v.f)
	p.Bool(&v.b)
	p.Duration(&v.d)
	p.String(&v.s)
	p.Bytes(&v.by)
	p.Float64s(&v.fs)
	p.Ints(&v.is)
	p.Int32s(&v.i3s)
}

func TestPUPRoundTrip(t *testing.T) {
	in := &pupEverything{
		i: -42, i64: math.MinInt64, i32: -7, u64: math.MaxUint64,
		f: math.Inf(-1), b: true, d: 3 * time.Second,
		s: "hello, grid", by: []byte{0, 1, 255},
		fs:  []float64{0, -0.0, math.Pi, math.NaN()},
		is:  []int{1, -2, 3},
		i3s: []int32{math.MaxInt32, math.MinInt32},
	}
	data, err := PUPPack(in)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PUPSize(in)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("sized %d, packed %d", n, len(data))
	}
	out := &pupEverything{}
	if err := PUPUnpack(out, data); err != nil {
		t.Fatal(err)
	}
	// NaN defeats == on the struct; compare via a repack instead, which is
	// also the invariant migration relies on: pack∘unpack∘pack is identity.
	data2, err := PUPPack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("pack→unpack→pack not byte-identical:\n%x\n%x", data, data2)
	}
	if out.i != in.i || out.s != in.s || out.b != in.b || out.d != in.d {
		t.Errorf("scalars: %+v != %+v", out, in)
	}
}

func TestPUPUnpackRejectsBadInput(t *testing.T) {
	good, err := PUPPack(&pupEverything{s: "x", by: []byte{1}, fs: []float64{1}, is: []int{1}, i3s: []int32{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every byte boundary must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if err := PUPUnpack(&pupEverything{}, good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Trailing garbage is rejected too.
	if err := PUPUnpack(&pupEverything{}, append(append([]byte(nil), good...), 0xEE)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// pupValidating demonstrates the Errorf contract: unpack-side validation
// failures surface as errors from PUPUnpack.
type pupValidating struct{ n int }

func (v *pupValidating) PUP(p *PUP) {
	p.Int(&v.n)
	if p.Unpacking() && v.n < 0 {
		p.Errorf("negative count %d", v.n)
	}
}

func TestPUPErrorf(t *testing.T) {
	data, err := PUPPack(&pupValidating{n: -3})
	if err != nil {
		t.Fatal(err)
	}
	err = PUPUnpack(&pupValidating{}, data)
	if err == nil || err.Error() != "negative count -3" {
		t.Errorf("validation error: %v", err)
	}
}

// pupAsymmetric packs more than it sizes; PUPPack must refuse it.
type pupAsymmetric struct{}

func (pupAsymmetric) PUP(p *PUP) {
	x := 1
	p.Int(&x)
	if p.Packing() {
		p.Int(&x)
	}
}

func TestPUPAsymmetryDetected(t *testing.T) {
	if _, err := PUPPack(pupAsymmetric{}); err == nil {
		t.Error("asymmetric PUP method packed")
	}
}

// fuzzPUPBlob is a generic state carrier for the fuzzer.
type fuzzPUPBlob struct {
	a  int64
	f  float64
	s  string
	by []byte
	fs []float64
}

func (v *fuzzPUPBlob) PUP(p *PUP) {
	p.Int64(&v.a)
	p.Float64(&v.f)
	p.String(&v.s)
	p.Bytes(&v.by)
	p.Float64s(&v.fs)
}

// FuzzPUPUnpack feeds arbitrary bytes to PUPUnpack (must never panic) and
// checks the pack→unpack→pack identity on whatever round-trips.
func FuzzPUPUnpack(f *testing.F) {
	seed, _ := PUPPack(&fuzzPUPBlob{a: 1, f: 2.5, s: "seed", by: []byte{9}, fs: []float64{1, 2}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		v := &fuzzPUPBlob{}
		if err := PUPUnpack(v, data); err != nil {
			return
		}
		repacked, err := PUPPack(v)
		if err != nil {
			t.Fatalf("unpacked fine but repack failed: %v", err)
		}
		if !bytes.Equal(repacked, data) {
			t.Fatalf("repack differs from accepted input:\n%x\n%x", data, repacked)
		}
	})
}
