package core

import (
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// Options is the consolidated configuration record of a real-time
// Runtime. It is populated through the Option functions passed to
// NewRuntime — construction is the only time these knobs can be set, so
// every dependency (tracer, metrics registry, transport, failure hook) is
// in place before the first message moves.
type Options struct {
	// Trace, if non-nil, receives scheduler events.
	Trace *trace.Tracer

	// Metrics, if non-nil, receives the runtime's counter/gauge/histogram
	// series (per-PE message flow, queue depths, handler and idle time,
	// delay-device occupancy). Registration happens at construction;
	// updates are allocation-free atomics.
	Metrics *metrics.Registry

	// Sinks are additional event receivers teed together with Trace and
	// the metrics adapter — the shared instrumentation surface of the
	// executor (see trace.Sink).
	Sinks []trace.Sink

	// FailureHook, if non-nil, is called once with the first runtime
	// error, before Run returns it — the constructed-in replacement for
	// installing transport error handlers after the fact.
	FailureHook func(error)

	// LB overrides the program's load-balancing configuration for this
	// runtime (nil keeps prog.LB). Works on single- and multi-process
	// runtimes; balanced elements must implement Migratable (PUP).
	LB *LBConfig

	// PrioritizeWAN implements the paper's §6 proposal: messages that
	// cross cluster boundaries are tagged with a higher delivery priority
	// than local messages (unless the application already set one).
	PrioritizeWAN bool

	// Bundle combines the default-priority application messages each
	// handler sends to one destination PE into a single transport frame
	// (the Charm++ communication-optimization analog; see bundle.go).
	Bundle bool

	// RunToQuiescence ends the run when no messages remain anywhere in
	// the system (queues, handlers, delay devices, transport links),
	// detected by a wave-based counting protocol driven from PE 0 — see
	// quiesce.go. It works across processes; worker nodes still need the
	// coordinator's shutdown announcement to return from Run. Without
	// this option, the program must call Ctx.ExitWith.
	RunToQuiescence bool

	// Multi-process configuration. A nil Transport means all PEs live in
	// this process. Otherwise this process hosts PEs [PELo, PEHi) and
	// NodeOf maps every PE to its owning process.
	Transport Transport
	NodeOf    func(pe int) int
	Node      int
	PELo      int
	PEHi      int

	// Membership, if non-nil, attaches an elastic-membership manager (see
	// membership.go): the runtime binds its recovery hooks, and the load
	// balancer consults it for placement and drain handling.
	Membership *Membership

	// Lifecycle hooks bracket the program's execution (see Lifecycle).
	Lifecycle Lifecycle

	// LatencyFor, if non-nil, overrides the topology's one-way latency
	// for the delay device — e.g. vmi.JitteredLatency for runs with
	// realistic wide-area variance.
	LatencyFor func(src, dst int32) time.Duration

	// WireSend and WireRecv are VMI device chains applied to serialized
	// frames on their way to / from the Transport — e.g. compression and
	// checksumming of wide-area traffic ("capabilities such as encrypting
	// or compressing the data"). Every process must configure matching
	// chains. Ignored without a Transport. Prefer building the whole
	// stack (transforms, reliability, faults, TCP) with vmi.NewChainBuilder
	// and passing the Stack via WithCluster; these fields remain for
	// chains that must run above a custom Transport.
	WireSend []vmi.SendDevice
	WireRecv []vmi.RecvDevice
}

// Option configures a Runtime at construction.
type Option func(*Options)

// WithTrace attaches a tracer to the runtime's event sink.
func WithTrace(t *trace.Tracer) Option {
	return func(o *Options) { o.Trace = t }
}

// WithMetrics attaches a metrics registry: the runtime registers its
// per-PE and delay-device series on it at construction, and transports
// built by vmi.NewChainBuilder share the same registry for per-device
// series.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *Options) { o.Metrics = reg }
}

// WithSink tees an additional event sink next to the tracer and metrics
// adapter.
func WithSink(s trace.Sink) Option {
	return func(o *Options) { o.Sinks = append(o.Sinks, s) }
}

// WithFailureHook installs a hook called once with the first runtime
// error (transport failures included), before Run returns it.
func WithFailureHook(h func(error)) Option {
	return func(o *Options) { o.FailureHook = h }
}

// WithLB overrides the program's load-balancing configuration.
func WithLB(cfg *LBConfig) Option {
	return func(o *Options) { o.LB = cfg }
}

// WithWANPriority enables the paper's §6 cross-cluster prioritization.
func WithWANPriority() Option {
	return func(o *Options) { o.PrioritizeWAN = true }
}

// WithBundling enables per-destination message bundling.
func WithBundling() Option {
	return func(o *Options) { o.Bundle = true }
}

// WithQuiescence ends the run by quiescence detection instead of an
// explicit ExitWith.
func WithQuiescence() Option {
	return func(o *Options) { o.RunToQuiescence = true }
}

// WithLatency overrides the topology's one-way latency function for the
// delay device.
func WithLatency(f func(src, dst int32) time.Duration) Option {
	return func(o *Options) { o.LatencyFor = f }
}

// ClusterConfig places this process in a multi-process run: the transport
// carrying remote frames (usually a vmi.Stack), the PE→node map, and the
// contiguous local PE range.
type ClusterConfig struct {
	Transport  Transport
	NodeOf     func(pe int) int
	Node       int
	PELo, PEHi int
}

// WithCluster configures the multi-process topology. Transports that
// implement the vmi.Stack binding contract are completed by the runtime —
// frame delivery and the failure path attach during NewRuntime, so no
// post-hoc SetErrHandler call is needed (or supported) in caller code.
func WithCluster(c ClusterConfig) Option {
	return func(o *Options) {
		o.Transport = c.Transport
		o.NodeOf = c.NodeOf
		o.Node = c.Node
		o.PELo = c.PELo
		o.PEHi = c.PEHi
	}
}

// WithMembership attaches an elastic-membership manager built with
// NewMembership. The manager must wrap the same vmi.Stack the cluster
// config passes as Transport.
func WithMembership(m *Membership) Option {
	return func(o *Options) { o.Membership = m }
}

// Lifecycle brackets a runtime's program-lifetime: OnStart fires on the
// Run goroutine after the schedulers launch (so Post and the location
// table are usable) and before Run blocks; OnExit fires with the run's
// outcome after the schedulers stop, before Run returns. Long-running
// embeddings — gridgate serving HTTP in front of a farm — use these to
// open their ingress only while the runtime can absorb work, and to
// fail pending requests when it no longer can.
type Lifecycle struct {
	OnStart func()
	OnExit  func(v any, err error)
}

// WithLifecycle installs program-lifetime hooks.
func WithLifecycle(lc Lifecycle) Option {
	return func(o *Options) { o.Lifecycle = lc }
}

// WithWireDevices applies serialized-frame device chains above the
// transport (see Options.WireSend/WireRecv). Stacks built with
// vmi.NewChainBuilder carry their transforms internally and do not need
// this.
func WithWireDevices(send []vmi.SendDevice, recv []vmi.RecvDevice) Option {
	return func(o *Options) {
		o.WireSend = send
		o.WireRecv = recv
	}
}

// binder is the construction-time completion contract of vmi.Stack:
// NewRuntime binds its frame-delivery entry and failure path through it.
type binder interface {
	Bind(deliver vmi.RecvFunc, onErr func(error))
}

// legacyErrHandler matches transports that predate the Bind contract.
// Deprecated in vmi; recognized here so out-of-tree transports keep
// working.
type legacyErrHandler interface {
	SetErrHandler(func(error))
}
