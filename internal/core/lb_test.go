package core

import (
	"strings"
	"testing"
	"time"

	"gridmdo/internal/topology"
)

// migChare wraps a handler func with a no-op PUP method so it passes the
// Migratable audit NewRuntime runs over load-balanced arrays.
type migChare struct {
	fn func(ctx *Ctx, entry EntryID, data any)
}

func (m *migChare) Recv(ctx *Ctx, entry EntryID, data any) { m.fn(ctx, entry, data) }
func (m *migChare) PUP(*PUP)                               {}

// mkLBMgr assembles an LBMgr over a stub host for protocol error tests.
func mkLBMgr(t *testing.T, pe int) (*LBMgr, *PEHost, *[]*Message) {
	t.Helper()
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b := &stubBackend{topo: topo}
	h := NewPEHost(b, pe)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(int) Chare { return &migChare{fn: func(*Ctx, EntryID, any) {}} }}},
		Start:  func(*Ctx) {},
	}
	loc := NewLocations(prog, 2)
	var sent []*Message
	cfg := &LBConfig{Arrays: []ArrayID{0}, Strategy: moveAllTo(0)}
	mgr := NewLBMgr(pe, cfg, topo, loc, h, prog, func(m *Message) { sent = append(sent, m) })
	return mgr, h, &sent
}

func TestLBMgrBadPayload(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	if err := mgr.Handle(&Message{Kind: KindLB, Data: "junk"}); err == nil {
		t.Error("junk payload accepted")
	}
	if err := mgr.Handle(&Message{Kind: KindLB, Data: lbMsg{Phase: lbPhase(99)}}); err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestLBMgrStatsAtNonRoot(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 1)
	err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{Phase: lbStats}})
	if err == nil {
		t.Error("stats accepted at non-root PE")
	}
}

func TestLBMgrDuplicateReport(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	m := &Message{Kind: KindLB, SrcPE: 1, Data: lbMsg{Phase: lbStats, Stats: []ElemLoad{{Ref: ElemRef{0, 1}, PE: 1}}}}
	if err := mgr.Handle(m); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Handle(m); err == nil {
		t.Error("duplicate report accepted")
	}
}

func TestLBMgrEvictMissingElement(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{
		Phase: lbEvict, Moves: []Move{{Ref: ElemRef{0, 1}, ToPE: 1}},
	}})
	if err == nil {
		t.Error("eviction of missing element accepted")
	}
}

// TestLBMgrEvictNonDestructive checks the all-or-nothing contract: a plan
// with any invalid move must leave the host and the location table
// untouched, ship nothing, and report every problem in one error.
func TestLBMgrEvictNonDestructive(t *testing.T) {
	mgr, h, sent := mkLBMgr(t, 0)
	good := ElemRef{0, 0}
	h.AddElement(good, &migChare{fn: func(*Ctx, EntryID, any) {}})
	err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{
		Phase: lbEvict, Moves: []Move{
			{Ref: good, ToPE: 1},
			{Ref: ElemRef{0, 1}, ToPE: 1}, // not hosted here
			{Ref: good, ToPE: 10_000},     // out-of-range destination
		},
	}})
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	for _, want := range []string{"missing element", "out-of-range", "no elements migrated"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q missing %q", err, want)
		}
	}
	if !h.Has(good) {
		t.Error("valid element was evicted despite failed plan")
	}
	if got := mgr.loc.PEOf(good); got != 0 {
		t.Errorf("location table mutated: element on PE %d", got)
	}
	if len(*sent) != 0 {
		t.Errorf("%d messages emitted by failed evict", len(*sent))
	}
}

// TestLBEvictStateBytes checks that an eviction reports honest Bytes:
// the PUP-serialized element state must be counted, not a fixed guess.
func TestLBEvictStateBytes(t *testing.T) {
	mgr, h, sent := mkLBMgr(t, 0)
	ref := ElemRef{0, 0}
	big := &counterChare{n: 7}
	h.AddElement(ref, big)
	if err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{
		Phase: lbEvict, Moves: []Move{{Ref: ref, ToPE: 1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if len(*sent) != 1 {
		t.Fatalf("emitted %d messages, want 1", len(*sent))
	}
	m := (*sent)[0]
	p := m.Data.(lbMsg)
	if len(p.State) == 0 {
		t.Fatal("arrive message carries no serialized state")
	}
	want := 32 + len(p.State) + lbMetaBytes
	if m.Bytes != want {
		t.Errorf("Bytes = %d, want %d (32 + state %d + meta %d)", m.Bytes, want, len(p.State), lbMetaBytes)
	}
}

func TestLBMgrElementAtSyncWithoutConfigIsNoop(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &stubBackend{topo: topo}
	h := NewPEHost(b, 0)
	mgr := NewLBMgr(0, nil, topo, nil, h, nil, func(*Message) { t.Error("emitted without config") })
	mgr.ElementAtSync() // must not panic or emit
}

func TestLBMgrInvalidMovesDropped(t *testing.T) {
	// Strategy returning out-of-range and no-op moves: the round must
	// complete with zero migrations (resume broadcast only).
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) Chare {
				return &migChare{fn: func(ctx *Ctx, entry EntryID, data any) {
					switch entry {
					case 0:
						ctx.AtSync()
					case EntryResumeFromSync:
						ctx.Contribute(1.0, OpSum)
					}
				}}
			},
		}},
		Start: func(ctx *Ctx) {
			ctx.Send(ElemRef{0, 0}, 0, nil)
			ctx.Send(ElemRef{0, 1}, 0, nil)
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) { ctx.ExitWith(v) },
		LB:          &LBConfig{Arrays: []ArrayID{0}, Strategy: bogusStrategy{}},
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 2 {
		t.Errorf("round did not complete: %v", v)
	}
	lb := rt.pes[0].lb
	if lb.Rounds() != 1 || lb.LastMoves() != 0 {
		t.Errorf("rounds=%d moves=%d, want 1 round, 0 moves", lb.Rounds(), lb.LastMoves())
	}
}

// TestLBAuditRejectsNonMigratable: enabling LB over an array whose
// elements lack a PUP method must fail at construction, naming the type.
func TestLBAuditRejectsNonMigratable(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
		LB:     &LBConfig{Arrays: []ArrayID{0}, Strategy: bogusStrategy{}},
	}
	_, err = NewRuntime(topo, prog)
	if err == nil {
		t.Fatal("runtime accepted a load-balanced array of non-Migratable elements")
	}
	if !strings.Contains(err.Error(), "funcChare") || !strings.Contains(err.Error(), "Migratable") {
		t.Errorf("error %q does not name the offending type", err)
	}
}

// bogusStrategy plans only invalid or no-op moves.
type bogusStrategy struct{}

func (bogusStrategy) Name() string { return "bogus" }
func (bogusStrategy) Plan(s *LBStats) []Move {
	var out []Move
	for _, e := range s.Elems {
		out = append(out, Move{Ref: e.Ref, ToPE: -5})     // out of range
		out = append(out, Move{Ref: e.Ref, ToPE: e.PE})   // no-op
		out = append(out, Move{Ref: e.Ref, ToPE: 10_000}) // out of range
	}
	return out
}

func TestLBMsgPayloadBytes(t *testing.T) {
	m := lbMsg{Stats: make([]ElemLoad, 3), Moves: make([]Move, 2)}
	if m.PayloadBytes() <= 32 {
		t.Errorf("payload bytes = %d", m.PayloadBytes())
	}
	// Serialized state and metadata must be part of the modeled size.
	with := lbMsg{State: make([]byte, 1000), Meta: &elemMeta{}}
	if with.PayloadBytes() < 1000+lbMetaBytes {
		t.Errorf("payload bytes %d ignores state", with.PayloadBytes())
	}
}

// TestLBMsgWireRoundTrip pushes every phase of the protocol through the
// binary wire codec: no phase may fall back to gob, and decoded messages
// must match the originals field for field.
func TestLBMsgWireRoundTrip(t *testing.T) {
	msgs := []lbMsg{
		{Phase: lbStats, Stats: []ElemLoad{
			{Ref: ElemRef{0, 3}, PE: 1, Load: 7 * time.Millisecond, Msgs: 12, WanMsgs: 5},
			{Ref: ElemRef{1, 0}, PE: 0, Load: time.Microsecond, Msgs: 1, WanMsgs: 0},
		}},
		{Phase: lbEvict, Moves: []Move{{Ref: ElemRef{0, 3}, ToPE: 2}, {Ref: ElemRef{1, 1}, ToPE: 0}}},
		{Phase: lbArrive, Elem: ElemRef{0, 3}, State: []byte{1, 2, 3, 4, 5},
			Meta: &elemMeta{redSeq: 9, load: 3 * time.Millisecond, wanMsg: 4, msgs: 17, atSync: true}},
		{Phase: lbAck},
		{Phase: lbResume, Moves: []Move{{Ref: ElemRef{0, 3}, ToPE: 2}}},
	}
	for _, in := range msgs {
		m := &Message{Kind: KindLB, SrcPE: 1, DstPE: 0, Bytes: in.PayloadBytes(), Data: in}
		wire, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("phase %d: %v", in.Phase, err)
		}
		if wire[56] != tagLB {
			t.Fatalf("phase %d encoded with tag %d, want tagLB (%d) — gob fallback?", in.Phase, wire[56], tagLB)
		}
		out, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("phase %d: %v", in.Phase, err)
		}
		got := out.Data.(lbMsg)
		if got.Phase != in.Phase || len(got.Stats) != len(in.Stats) || len(got.Moves) != len(in.Moves) || got.Elem != in.Elem {
			t.Fatalf("phase %d: decoded %+v != %+v", in.Phase, got, in)
		}
		for i := range in.Stats {
			if got.Stats[i] != in.Stats[i] {
				t.Errorf("stat %d: %+v != %+v", i, got.Stats[i], in.Stats[i])
			}
		}
		for i := range in.Moves {
			if got.Moves[i] != in.Moves[i] {
				t.Errorf("move %d: %+v != %+v", i, got.Moves[i], in.Moves[i])
			}
		}
		if string(got.State) != string(in.State) {
			t.Errorf("state: %v != %v", got.State, in.State)
		}
		if (got.Meta == nil) != (in.Meta == nil) {
			t.Fatalf("meta presence mismatch")
		}
		if in.Meta != nil && *got.Meta != *in.Meta {
			t.Errorf("meta: %+v != %+v", *got.Meta, *in.Meta)
		}
	}
}
