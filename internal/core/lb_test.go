package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
)

// mkLBMgr assembles an LBMgr over a stub host for protocol error tests.
func mkLBMgr(t *testing.T, pe int) (*LBMgr, *PEHost, *[]*Message) {
	t.Helper()
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b := &stubBackend{topo: topo}
	h := NewPEHost(b, pe)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 2, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
	}
	loc := NewLocations(prog, 2)
	var sent []*Message
	cfg := &LBConfig{Arrays: []ArrayID{0}, Strategy: moveAllTo(0)}
	mgr := NewLBMgr(pe, cfg, topo, loc, h, func(m *Message) { sent = append(sent, m) })
	return mgr, h, &sent
}

func TestLBMgrBadPayload(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	if err := mgr.Handle(&Message{Kind: KindLB, Data: "junk"}); err == nil {
		t.Error("junk payload accepted")
	}
	if err := mgr.Handle(&Message{Kind: KindLB, Data: lbMsg{Phase: lbPhase(99)}}); err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestLBMgrStatsAtNonRoot(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 1)
	err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{Phase: lbStats}})
	if err == nil {
		t.Error("stats accepted at non-root PE")
	}
}

func TestLBMgrDuplicateReport(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	m := &Message{Kind: KindLB, SrcPE: 1, Data: lbMsg{Phase: lbStats, Stats: []ElemLoad{{Ref: ElemRef{0, 1}, PE: 1}}}}
	if err := mgr.Handle(m); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Handle(m); err == nil {
		t.Error("duplicate report accepted")
	}
}

func TestLBMgrEvictMissingElement(t *testing.T) {
	mgr, _, _ := mkLBMgr(t, 0)
	err := mgr.Handle(&Message{Kind: KindLB, SrcPE: 0, Data: lbMsg{
		Phase: lbEvict, Moves: []Move{{Ref: ElemRef{0, 1}, ToPE: 1}},
	}})
	if err == nil {
		t.Error("eviction of missing element accepted")
	}
}

func TestLBMgrElementAtSyncWithoutConfigIsNoop(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &stubBackend{topo: topo}
	h := NewPEHost(b, 0)
	mgr := NewLBMgr(0, nil, topo, nil, h, func(*Message) { t.Error("emitted without config") })
	mgr.ElementAtSync() // must not panic or emit
}

func TestLBMgrInvalidMovesDropped(t *testing.T) {
	// Strategy returning out-of-range and no-op moves: the round must
	// complete with zero migrations (resume broadcast only).
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, entry EntryID, data any) {
					switch entry {
					case 0:
						ctx.AtSync()
					case EntryResumeFromSync:
						ctx.Contribute(1.0, OpSum)
					}
				})
			},
		}},
		Start: func(ctx *Ctx) {
			ctx.Send(ElemRef{0, 0}, 0, nil)
			ctx.Send(ElemRef{0, 1}, 0, nil)
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) { ctx.ExitWith(v) },
		LB:          &LBConfig{Arrays: []ArrayID{0}, Strategy: bogusStrategy{}},
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 2 {
		t.Errorf("round did not complete: %v", v)
	}
	lb := rt.pes[0].lb
	if lb.Rounds() != 1 || lb.LastMoves() != 0 {
		t.Errorf("rounds=%d moves=%d, want 1 round, 0 moves", lb.Rounds(), lb.LastMoves())
	}
}

// bogusStrategy plans only invalid or no-op moves.
type bogusStrategy struct{}

func (bogusStrategy) Name() string { return "bogus" }
func (bogusStrategy) Plan(s *LBStats) []Move {
	var out []Move
	for _, e := range s.Elems {
		out = append(out, Move{Ref: e.Ref, ToPE: -5})     // out of range
		out = append(out, Move{Ref: e.Ref, ToPE: e.PE})   // no-op
		out = append(out, Move{Ref: e.Ref, ToPE: 10_000}) // out of range
	}
	return out
}

func TestLBMsgPayloadBytes(t *testing.T) {
	m := lbMsg{Stats: make([]ElemLoad, 3), Moves: make([]Move, 2)}
	if m.PayloadBytes() <= 32 {
		t.Errorf("payload bytes = %d", m.PayloadBytes())
	}
}
