package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/vmi"
)

// Elastic cluster membership: a coordinator-owned versioned member table
// replicated to every process over VMI control frames, with an epoch
// number that fences traffic from processes declared dead.
//
// The protocol is deliberately small. All mutation happens on one
// coordinator node (node 0 in gridnode deployments); every other process
// only learns the table through coordinator broadcasts and applies the
// highest version it has seen. Control frames bypass the Reliable layer
// (they are the channel that *defines* liveness, so they cannot depend on
// it), which means a broadcast can be lost with a dying connection — the
// coordinator therefore re-broadcasts the current table on a short period
// (anti-entropy) and receivers deduplicate by version.
//
// Member lifecycle:
//
//	Joining  -> Active            (coordinator accepts a -join request)
//	Active   -> Draining -> Left  (SIGTERM drain: stop placing work, let
//	                               outstanding work finish, evacuate)
//	any      -> Dead              (Reliable retransmit budget exhausted)
//
// A death bumps the cluster epoch. The new epoch is stamped on every
// subsequently sent Reliable frame; survivors restamp retransmissions, so
// traffic between live nodes keeps flowing, while frames from the dead
// process (which still carries the old epoch) are counted and dropped at
// the Reliable layer before any application code can see them.

// MemberState is a member's position in the lifecycle.
type MemberState uint8

const (
	// MemberJoining: the process announced itself but the coordinator has
	// not yet admitted it.
	MemberJoining MemberState = iota
	// MemberActive: full participant; placement may target its PEs.
	MemberActive
	// MemberDraining: finishing outstanding work; no new work is placed on
	// it and the load balancer evacuates its elements.
	MemberDraining
	// MemberDead: declared failed; fenced by epoch bump, elements restored
	// onto survivors.
	MemberDead
	// MemberLeft: drained cleanly and allowed to exit.
	MemberLeft
)

func (s MemberState) String() string {
	switch s {
	case MemberJoining:
		return "joining"
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	case MemberDead:
		return "dead"
	case MemberLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Member is one process's entry in the member table.
type Member struct {
	Node  int32
	State MemberState
	// Addr is the member's VMI listen address, carried in the table so
	// that processes that started before a joiner existed learn where to
	// dial it.
	Addr string
}

// MemberTable is the replicated membership view. Version increases with
// every coordinator mutation; Epoch increases only on declared deaths and
// fences stale traffic at the Reliable layer. Members is sorted by Node.
type MemberTable struct {
	Version uint64
	Epoch   uint32
	Members []Member
}

// clone returns a deep copy (the Members slice is shared state otherwise).
func (t *MemberTable) clone() MemberTable {
	c := *t
	c.Members = append([]Member(nil), t.Members...)
	return c
}

// find returns the index of node in Members, or -1.
func (t *MemberTable) find(node int32) int {
	for i := range t.Members {
		if t.Members[i].Node == node {
			return i
		}
	}
	return -1
}

// StateOf reports a node's state and whether the node is in the table.
func (t *MemberTable) StateOf(node int) (MemberState, bool) {
	if i := t.find(int32(node)); i >= 0 {
		return t.Members[i].State, true
	}
	return 0, false
}

// Membership wire codec -----------------------------------------------------
//
// Control-frame payloads use a versioned binary format in the style of the
// message codec: magic, format version, varint fields. Decoders are
// strict — unknown magic, short input, and trailing bytes all fail — so a
// corrupted control frame is rejected rather than half-applied.

const (
	memberTableMagic0 = 'M'
	memberTableMagic1 = 'T'
	memberMsgMagic0   = 'M'
	memberMsgMagic1   = 'M'
	memberWireVersion = 1
)

// membershipOp discriminates membership control messages.
type membershipOp uint8

const (
	// memberOpJoin: joiner -> coordinator. From is the joiner, Addr its
	// listen address.
	memberOpJoin membershipOp = iota + 1
	// memberOpTable: coordinator -> everyone. Table carries the view.
	memberOpTable
	// memberOpDrainReq: draining process -> coordinator (SIGTERM).
	memberOpDrainReq
	// memberOpDrainDone: any process that observed the drain finish ->
	// coordinator. Node is the drained member.
	memberOpDrainDone
	// memberOpDeadReport: worker -> coordinator after its Reliable layer
	// exhausted the retransmit budget toward Node.
	memberOpDeadReport
)

// MembershipMsg is the payload of a ControlMembership frame.
type MembershipMsg struct {
	Op   membershipOp
	From int32        // sending node
	Node int32        // subject node (join/drain/death ops)
	Addr string       // join: the joiner's listen address
	Tbl  *MemberTable // table op only
}

// AppendMemberTable appends t in wire form.
func AppendMemberTable(dst []byte, t *MemberTable) []byte {
	dst = append(dst, memberTableMagic0, memberTableMagic1, memberWireVersion)
	dst = AppendUvarint(dst, t.Version)
	dst = AppendUvarint(dst, uint64(t.Epoch))
	dst = AppendUvarint(dst, uint64(len(t.Members)))
	for _, m := range t.Members {
		dst = AppendVarint(dst, int64(m.Node))
		dst = append(dst, byte(m.State))
		dst = AppendUvarint(dst, uint64(len(m.Addr)))
		dst = append(dst, m.Addr...)
	}
	return dst
}

// consumeMemberTable parses a table from the front of b, returning the
// remainder.
func consumeMemberTable(b []byte) (*MemberTable, []byte, error) {
	if len(b) < 3 || b[0] != memberTableMagic0 || b[1] != memberTableMagic1 {
		return nil, b, fmt.Errorf("%w: bad member-table magic", ErrBadWire)
	}
	if b[2] != memberWireVersion {
		return nil, b, fmt.Errorf("%w: member-table version %d", ErrBadWire, b[2])
	}
	b = b[3:]
	var t MemberTable
	var v uint64
	var err error
	if v, b, err = ConsumeUvarint(b); err != nil {
		return nil, b, err
	}
	t.Version = v
	if v, b, err = ConsumeUvarint(b); err != nil {
		return nil, b, err
	}
	if v > vmi.MaxEpoch {
		return nil, b, fmt.Errorf("%w: epoch %d exceeds 24-bit range", ErrBadWire, v)
	}
	t.Epoch = uint32(v)
	if v, b, err = ConsumeUvarint(b); err != nil {
		return nil, b, err
	}
	const maxMembers = 1 << 16 // defensive cap for decoding
	if v > maxMembers {
		return nil, b, fmt.Errorf("%w: member count %d", ErrBadWire, v)
	}
	t.Members = make([]Member, 0, v)
	var prev int64 = -1 << 62
	for i := uint64(0); i < v; i++ {
		var m Member
		var node int64
		if node, b, err = ConsumeVarint(b); err != nil {
			return nil, b, err
		}
		if node <= prev {
			return nil, b, fmt.Errorf("%w: member nodes not strictly increasing", ErrBadWire)
		}
		prev = node
		m.Node = int32(node)
		if len(b) < 1 {
			return nil, b, fmt.Errorf("%w: truncated member state", ErrBadWire)
		}
		if b[0] > byte(MemberLeft) {
			return nil, b, fmt.Errorf("%w: member state %d", ErrBadWire, b[0])
		}
		m.State = MemberState(b[0])
		b = b[1:]
		var alen uint64
		if alen, b, err = ConsumeUvarint(b); err != nil {
			return nil, b, err
		}
		if alen > uint64(len(b)) {
			return nil, b, fmt.Errorf("%w: truncated member addr", ErrBadWire)
		}
		m.Addr = string(b[:alen])
		b = b[alen:]
		t.Members = append(t.Members, m)
	}
	return &t, b, nil
}

// DecodeMemberTable parses a wire-form member table. Trailing bytes are an
// error.
func DecodeMemberTable(b []byte) (*MemberTable, error) {
	t, rest, err := consumeMemberTable(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after member table", ErrBadWire, len(rest))
	}
	return t, nil
}

// AppendMembershipMsg appends m in wire form.
func AppendMembershipMsg(dst []byte, m *MembershipMsg) []byte {
	dst = append(dst, memberMsgMagic0, memberMsgMagic1, memberWireVersion, byte(m.Op))
	dst = AppendVarint(dst, int64(m.From))
	dst = AppendVarint(dst, int64(m.Node))
	dst = AppendUvarint(dst, uint64(len(m.Addr)))
	dst = append(dst, m.Addr...)
	if m.Tbl != nil {
		dst = append(dst, 1)
		dst = AppendMemberTable(dst, m.Tbl)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// DecodeMembershipMsg parses a wire-form membership message. Trailing
// bytes are an error.
func DecodeMembershipMsg(b []byte) (*MembershipMsg, error) {
	if len(b) < 4 || b[0] != memberMsgMagic0 || b[1] != memberMsgMagic1 {
		return nil, fmt.Errorf("%w: bad membership magic", ErrBadWire)
	}
	if b[2] != memberWireVersion {
		return nil, fmt.Errorf("%w: membership version %d", ErrBadWire, b[2])
	}
	var m MembershipMsg
	m.Op = membershipOp(b[3])
	if m.Op < memberOpJoin || m.Op > memberOpDeadReport {
		return nil, fmt.Errorf("%w: membership op %d", ErrBadWire, b[3])
	}
	b = b[4:]
	var sv int64
	var uv uint64
	var err error
	if sv, b, err = ConsumeVarint(b); err != nil {
		return nil, err
	}
	m.From = int32(sv)
	if sv, b, err = ConsumeVarint(b); err != nil {
		return nil, err
	}
	m.Node = int32(sv)
	if uv, b, err = ConsumeUvarint(b); err != nil {
		return nil, err
	}
	if uv > uint64(len(b)) {
		return nil, fmt.Errorf("%w: truncated membership addr", ErrBadWire)
	}
	m.Addr = string(b[:uv])
	b = b[uv:]
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated membership table flag", ErrBadWire)
	}
	hasTable := b[0]
	b = b[1:]
	switch hasTable {
	case 0:
	case 1:
		if m.Tbl, b, err = consumeMemberTable(b); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: membership table flag %d", ErrBadWire, hasTable)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after membership message", ErrBadWire, len(b))
	}
	return &m, nil
}

// Manager --------------------------------------------------------------------

// MembershipConfig configures a Membership manager. Every process of a
// run constructs one with the same Coordinator and the same Initial set;
// joiners list the members they know about (at minimum the coordinator)
// and add themselves with RequestJoin.
type MembershipConfig struct {
	// Node is this process.
	Node int
	// Coordinator owns the table. Its death is not survivable (the
	// dispatcher and the table would both be lost) — that is the
	// documented single point of failure of this protocol.
	Coordinator int
	// Stack is the process's VMI stack; the manager sends control frames
	// through it and installs the epoch, dial gate, and peer-failure
	// handler on it.
	Stack *vmi.Stack
	// NodeOf maps a PE to its owning process (same function the runtime
	// uses); NumPE is the full PE space.
	NodeOf func(pe int) int
	NumPE  int
	// Initial is the starting member set. All founding processes must pass
	// identical sets (it becomes table version 1 everywhere).
	Initial []Member
	// Interval is the coordinator's anti-entropy re-broadcast period.
	// Control frames bypass the Reliable layer, so a lost broadcast is
	// repaired only by this timer. Zero means 200ms.
	Interval time.Duration
	// OnChange, if non-nil, is called with a table snapshot after every
	// applied change, after runtime-level recovery for that change has
	// been queued. Runs on the manager's apply path — keep it brief and
	// do not call back into mutating Membership methods synchronously.
	OnChange func(t MemberTable)
	// CheckpointFor, if non-nil, supplies the most recent checkpoint state
	// for a node declared dead; elements that have an entry are restored
	// from it, the rest are constructed fresh.
	CheckpointFor func(node int) *Checkpoint
	// Logf, if non-nil, receives protocol progress lines.
	Logf func(format string, args ...any)
}

// Membership tracks cluster membership for one process. Construct it with
// NewMembership before the runtime and pass it to NewRuntime via
// WithMembership, which binds the runtime-side recovery hooks.
type Membership struct {
	cfg MembershipConfig

	// applyMu serializes table application (and coordinator mutation), so
	// the side effects of version N are complete before version N+1's
	// begin. mu guards only the table snapshot for concurrent readers.
	applyMu sync.Mutex
	mu      sync.Mutex
	tbl     MemberTable

	rt *Runtime // bound by WithMembership during NewRuntime

	activeCh chan struct{} // closed when the local node becomes Active
	leftCh   chan struct{} // closed when the local node becomes Left
	actOnce  sync.Once
	leftOnce sync.Once

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// counters (metrics / tests)
	joins       atomic.Int64
	drains      atomic.Int64
	deaths      atomic.Int64
	evacuated   atomic.Int64 // elements re-homed off dead or drained nodes
	staleTables atomic.Int64
	broadcasts  atomic.Int64
}

// NewMembership builds a manager. The initial member set becomes table
// version 1; the epoch starts at 1 so that epoch 0 ("no fencing") is never
// a live cluster epoch.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Stack == nil {
		return nil, fmt.Errorf("core: membership needs a vmi stack")
	}
	if cfg.NodeOf == nil {
		return nil, fmt.Errorf("core: membership needs NodeOf")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	m := &Membership{
		cfg:      cfg,
		activeCh: make(chan struct{}),
		leftCh:   make(chan struct{}),
		stopCh:   make(chan struct{}),
	}
	m.tbl = MemberTable{Version: 1, Epoch: 1, Members: append([]Member(nil), cfg.Initial...)}
	sort.Slice(m.tbl.Members, func(i, j int) bool { return m.tbl.Members[i].Node < m.tbl.Members[j].Node })
	if st, ok := m.tbl.StateOf(cfg.Node); ok && st == MemberActive {
		m.actOnce.Do(func() { close(m.activeCh) })
	}
	// The stack-side hooks that do not depend on the runtime install now,
	// so fencing is live before the first application frame.
	cfg.Stack.SetEpoch(m.tbl.Epoch)
	cfg.Stack.SetDialGate(m.allowDial)
	if rel := cfg.Stack.Reliable(); rel != nil {
		rel.SetOnPeerFail(m.PeerFailed)
	}
	for _, mb := range m.tbl.Members {
		if mb.Addr != "" && int(mb.Node) != cfg.Node {
			cfg.Stack.SetAddr(int(mb.Node), mb.Addr)
		}
	}
	if m.isCoordinator() {
		m.wg.Add(1)
		go m.antiEntropyLoop()
	}
	return m, nil
}

func (m *Membership) isCoordinator() bool { return m.cfg.Node == m.cfg.Coordinator }

func (m *Membership) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// bind attaches the runtime (called by NewRuntime via WithMembership).
// Taken under applyMu: a control frame can arrive between Listen and
// NewRuntime, and the apply path reads rt under the same lock.
func (m *Membership) bind(rt *Runtime) {
	m.applyMu.Lock()
	m.rt = rt
	m.applyMu.Unlock()
}

// Close stops the manager's goroutines. It does not mutate the table.
func (m *Membership) Close() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.wg.Wait()
}

// Table returns a snapshot of the current member table.
func (m *Membership) Table() MemberTable {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tbl.clone()
}

// Epoch reports the current cluster epoch.
func (m *Membership) Epoch() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tbl.Epoch
}

// StateOf reports a node's membership state.
func (m *Membership) StateOf(node int) (MemberState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tbl.StateOf(node)
}

// PlaceablePE reports whether new work or migrated elements may target pe:
// its node must be an Active member.
func (m *Membership) PlaceablePE(pe int) bool {
	st, ok := m.StateOf(m.cfg.NodeOf(pe))
	return ok && st == MemberActive
}

// ReachablePE reports whether pe's node can still receive protocol
// traffic (not Dead, not Left).
func (m *Membership) ReachablePE(pe int) bool {
	st, ok := m.StateOf(m.cfg.NodeOf(pe))
	return !ok || (st != MemberDead && st != MemberLeft)
}

// ActiveCh is closed once the local node is an Active member (joiners
// wait on it after RequestJoin).
func (m *Membership) ActiveCh() <-chan struct{} { return m.activeCh }

// LeftCh is closed once the local node has fully drained and may exit.
func (m *Membership) LeftCh() <-chan struct{} { return m.leftCh }

// Evacuated reports how many elements have been re-homed off dead or
// drained nodes by this process's recovery path.
func (m *Membership) Evacuated() int64 { return m.evacuated.Load() }

// StaleTables reports how many out-of-date table broadcasts were ignored.
func (m *Membership) StaleTables() int64 { return m.staleTables.Load() }

// allowDial is the TCP dial gate: never dial a node known to be Dead or
// Left. Unknown nodes stay dialable (bootstrap, joiners mid-admission).
func (m *Membership) allowDial(node int) bool {
	st, ok := m.StateOf(node)
	return !ok || (st != MemberDead && st != MemberLeft)
}

// pesOf lists the PEs owned by node under the static PE->node map.
func (m *Membership) pesOf(node int) []int {
	var pes []int
	for pe := 0; pe < m.cfg.NumPE; pe++ {
		if m.cfg.NodeOf(pe) == node {
			pes = append(pes, pe)
		}
	}
	return pes
}

// Instrument registers the manager's series on reg.
func (m *Membership) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("membership_version", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.tbl.Version)
	})
	reg.GaugeFunc("membership_epoch", func() int64 { return int64(m.Epoch()) })
	reg.CounterFunc("membership_joins_total", m.joins.Load)
	reg.CounterFunc("membership_drains_total", m.drains.Load)
	reg.CounterFunc("membership_deaths_total", m.deaths.Load)
	reg.CounterFunc("membership_evacuated_elements_total", m.evacuated.Load)
	reg.CounterFunc("membership_stale_tables_total", m.staleTables.Load)
	reg.CounterFunc("membership_broadcasts_total", m.broadcasts.Load)
}

// Control-frame plumbing -----------------------------------------------------

// HandleControl processes a ControlMembership frame (wire OnControl
// handlers route frames with Dst == vmi.ControlMembership here). It runs
// on the transport's read goroutine; table application is synchronous so
// that any frame the peer sent *after* the broadcast observes its
// effects.
func (m *Membership) HandleControl(f *vmi.Frame) {
	msg, err := DecodeMembershipMsg(f.Body)
	if err != nil {
		m.logf("membership: dropping bad control frame: %v", err)
		return
	}
	switch msg.Op {
	case memberOpTable:
		if msg.Tbl != nil {
			m.applyTable(msg.Tbl)
		}
	case memberOpJoin:
		if m.isCoordinator() {
			m.AdmitJoin(int(msg.From), msg.Addr)
		}
	case memberOpDrainReq:
		if m.isCoordinator() {
			m.MarkDraining(int(msg.From))
		}
	case memberOpDrainDone:
		if m.isCoordinator() {
			m.MarkLeft(int(msg.Node))
		}
	case memberOpDeadReport:
		if m.isCoordinator() {
			m.MarkDead(int(msg.Node), fmt.Errorf("reported by node %d", msg.From))
		}
	}
}

// sendControl ships a membership message to node, best effort: control
// frames that fail to send are repaired by anti-entropy or sender retry.
func (m *Membership) sendControl(node int, msg *MembershipMsg) {
	f := &vmi.Frame{Src: int32(m.cfg.Node), Dst: vmi.ControlMembership, Body: AppendMembershipMsg(nil, msg)}
	if err := m.cfg.Stack.SendControl(node, f); err != nil {
		m.logf("membership: control send to node %d: %v", node, err)
	}
}

// broadcastTo ships the current table to every reachable member except
// this process, plus the just-departed nodes in farewell. A node that
// drained to Left must still receive the table that says so — it is the
// release its RequestDrain blocks on — and it rides the still-open
// connection; every later broadcast skips Left nodes, so a departed
// process is never redialed. Dead nodes get nothing, ever: a zombie is
// fenced out precisely by staying ignorant of the new epoch.
func (m *Membership) broadcastTo(farewell []int) {
	t := m.Table()
	m.broadcasts.Add(1)
	sent := make(map[int]bool, len(farewell))
	for _, n := range farewell {
		if n != m.cfg.Node && !sent[n] {
			sent[n] = true
			m.sendControl(n, &MembershipMsg{Op: memberOpTable, From: int32(m.cfg.Node), Tbl: &t})
		}
	}
	for _, mb := range t.Members {
		if int(mb.Node) == m.cfg.Node || mb.State == MemberDead || mb.State == MemberLeft || sent[int(mb.Node)] {
			continue
		}
		m.sendControl(int(mb.Node), &MembershipMsg{Op: memberOpTable, From: int32(m.cfg.Node), Tbl: &t})
	}
}

// broadcast is the anti-entropy form: current members only, no farewells.
func (m *Membership) broadcast() { m.broadcastTo(nil) }

func (m *Membership) antiEntropyLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-tick.C:
			m.broadcast()
		}
	}
}

// Coordinator mutations ------------------------------------------------------

// mutate applies fn to a copy of the table on the coordinator, bumps the
// version, applies the new table locally (running all recovery effects),
// and broadcasts it. fn returns false to abort (no-op mutation).
func (m *Membership) mutate(fn func(t *MemberTable) bool) bool {
	if !m.isCoordinator() {
		return false
	}
	m.applyMu.Lock()
	m.mu.Lock()
	next := m.tbl.clone()
	m.mu.Unlock()
	if !fn(&next) {
		m.applyMu.Unlock()
		return false
	}
	next.Version++
	m.applyLocked(&next, m.broadcastTo)
	m.applyMu.Unlock()
	return true
}

// AdmitJoin (coordinator) admits node as an Active member at addr.
// Idempotent: re-joining an Active member only refreshes its address.
func (m *Membership) AdmitJoin(node int, addr string) bool {
	changed := m.mutate(func(t *MemberTable) bool {
		if i := t.find(int32(node)); i >= 0 {
			mb := &t.Members[i]
			switch mb.State {
			case MemberActive:
				if mb.Addr == addr {
					return false
				}
			case MemberDead:
				// A dead node's identity is fenced; it must come back under
				// a fresh node number to rejoin.
				return false
			}
			mb.State = MemberActive
			mb.Addr = addr
			return true
		}
		t.Members = append(t.Members, Member{Node: int32(node), State: MemberActive, Addr: addr})
		sort.Slice(t.Members, func(i, j int) bool { return t.Members[i].Node < t.Members[j].Node })
		return true
	})
	if changed {
		m.joins.Add(1)
		m.logf("membership: node %d joined (%s)", node, addr)
	}
	return changed
}

// MarkDraining (coordinator) moves node to Draining: placement stops
// targeting it and its work is allowed to finish.
func (m *Membership) MarkDraining(node int) bool {
	changed := m.mutate(func(t *MemberTable) bool {
		i := t.find(int32(node))
		if i < 0 || t.Members[i].State != MemberActive {
			return false
		}
		t.Members[i].State = MemberDraining
		return true
	})
	if changed {
		m.drains.Add(1)
		m.logf("membership: node %d draining", node)
	}
	return changed
}

// MarkLeft (coordinator) completes a drain: the node's remaining elements
// (if any) are re-homed onto survivors and the node may exit. No epoch
// bump — a drained process stops sending before it exits, so there is
// nothing to fence.
func (m *Membership) MarkLeft(node int) bool {
	changed := m.mutate(func(t *MemberTable) bool {
		i := t.find(int32(node))
		if i < 0 || t.Members[i].State != MemberDraining {
			return false
		}
		t.Members[i].State = MemberLeft
		return true
	})
	if changed {
		m.logf("membership: node %d left", node)
	}
	return changed
}

// MarkDead (coordinator) declares node failed: the epoch is bumped (every
// surviving process fences the dead node's stale frames), its peer state
// is forgotten, and its elements are restored onto survivors from the
// last checkpoint where available.
func (m *Membership) MarkDead(node int, cause error) bool {
	if node == m.cfg.Coordinator {
		// Coordinator self-death is not a table mutation anyone could
		// learn about; callers handle coordinator failure as run failure.
		return false
	}
	changed := m.mutate(func(t *MemberTable) bool {
		i := t.find(int32(node))
		if i < 0 || t.Members[i].State == MemberDead || t.Members[i].State == MemberLeft {
			return false
		}
		t.Members[i].State = MemberDead
		if t.Epoch < vmi.MaxEpoch {
			t.Epoch++
		}
		return true
	})
	if changed {
		m.deaths.Add(1)
		m.logf("membership: node %d declared dead (%v), epoch now %d", node, cause, m.Epoch())
	}
	return changed
}

// NotifyDrained reports that node's outstanding work is finished and its
// elements are evacuated (or about to be): callable from any process that
// can observe the fact (the LB root, the taskfarm dispatcher). On the
// coordinator it completes the drain directly; elsewhere it is forwarded.
func (m *Membership) NotifyDrained(node int) {
	if m.isCoordinator() {
		m.MarkLeft(node)
		return
	}
	m.sendControl(m.cfg.Coordinator, &MembershipMsg{Op: memberOpDrainDone, From: int32(m.cfg.Node), Node: int32(node)})
}

// Worker requests ------------------------------------------------------------

// RequestJoin announces this process to the coordinator and waits until
// the table shows it Active. The request is re-sent on the anti-entropy
// period until admitted or the deadline passes.
func (m *Membership) RequestJoin(timeout time.Duration) error {
	if m.isCoordinator() {
		return fmt.Errorf("core: coordinator cannot join itself")
	}
	addr := m.cfg.Stack.Addr()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		m.sendControl(m.cfg.Coordinator, &MembershipMsg{Op: memberOpJoin, From: int32(m.cfg.Node), Addr: addr})
		select {
		case <-m.activeCh:
			return nil
		case <-m.stopCh:
			return fmt.Errorf("core: membership closed while joining")
		case <-deadline.C:
			return fmt.Errorf("core: join of node %d not admitted within %v", m.cfg.Node, timeout)
		case <-tick.C:
		}
	}
}

// RequestDrain asks the coordinator to drain this process and waits until
// the drain completes (LeftCh closes). The caller then stops its runtime
// and exits.
func (m *Membership) RequestDrain(timeout time.Duration) error {
	if m.isCoordinator() {
		return fmt.Errorf("core: coordinator drain is not supported")
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		m.sendControl(m.cfg.Coordinator, &MembershipMsg{Op: memberOpDrainReq, From: int32(m.cfg.Node)})
		select {
		case <-m.leftCh:
			return nil
		case <-m.stopCh:
			return fmt.Errorf("core: membership closed while draining")
		case <-deadline.C:
			return fmt.Errorf("core: drain of node %d not completed within %v", m.cfg.Node, timeout)
		case <-tick.C:
		}
	}
}

// PeerFailed is the Reliable layer's peer-failure handler: a peer's
// retransmit budget is exhausted. Returning true tells the layer to drop
// the peer's state and keep the stack alive. Already-fenced peers are
// dropped immediately; otherwise the failure is escalated to the
// coordinator (or handled locally if this is the coordinator) and the
// layer continues — the death broadcast arrives asynchronously.
func (m *Membership) PeerFailed(node int, err error) bool {
	if st, ok := m.StateOf(node); ok && (st == MemberDead || st == MemberLeft) {
		return true
	}
	if node == m.cfg.Coordinator {
		// Losing the coordinator is unsurvivable: no one can mutate the
		// table or fence us. Fail the stack (and with it the run).
		return false
	}
	if m.isCoordinator() {
		go m.MarkDead(node, err)
	} else {
		go m.sendControl(m.cfg.Coordinator, &MembershipMsg{Op: memberOpDeadReport, From: int32(m.cfg.Node), Node: int32(node)})
	}
	return true
}

// Table application ----------------------------------------------------------

// applyTable installs a received table if it is newer than the local one,
// running all local effects of the transition.
func (m *Membership) applyTable(t *MemberTable) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.applyLocked(t, nil)
}

// applyLocked is the single place a new table takes effect. Caller holds
// applyMu. Effects run in a fixed order — epoch fence first, then address
// and peer-state plumbing, then element recovery, then the application
// callback — so that by the time the application learns of a death, stale
// frames are already being dropped and replacement elements are already
// queued for construction.
//
// preNotify (the coordinator's broadcast) runs after recovery but before
// OnChange: application traffic triggered by the change (e.g. a grant to
// a re-homed element) is only generated after the table's control frame
// is queued on each peer connection, so on any single connection the peer
// applies the table — arming its own recovery — before such traffic
// reaches it. It receives the nodes that just transitioned to Left so
// the broadcast can deliver them their own departure (the release their
// RequestDrain blocks on) exactly once.
func (m *Membership) applyLocked(t *MemberTable, preNotify func(freshLeft []int)) {
	m.mu.Lock()
	if t.Version <= m.tbl.Version {
		m.mu.Unlock()
		m.staleTables.Add(1)
		return
	}
	prev := m.tbl
	m.tbl = t.clone()
	m.mu.Unlock()

	// 1. Fence: any frame stamped with an older epoch is dropped by the
	// Reliable layer from this point on.
	m.cfg.Stack.SetEpoch(t.Epoch)

	// 2. Addresses (joiners) and peer teardown (dead / left nodes).
	var recoverNodes []int
	var freshLeft []int
	for _, mb := range t.Members {
		pi := prev.find(mb.Node)
		prevState := MemberState(255)
		if pi >= 0 {
			prevState = prev.Members[pi].State
		}
		if mb.Addr != "" && int(mb.Node) != m.cfg.Node {
			if pi < 0 || prev.Members[pi].Addr != mb.Addr {
				m.cfg.Stack.SetAddr(int(mb.Node), mb.Addr)
			}
		}
		if mb.State == prevState {
			continue
		}
		switch mb.State {
		case MemberDead:
			m.cfg.Stack.ForgetPeer(int(mb.Node))
			recoverNodes = append(recoverNodes, int(mb.Node))
		case MemberLeft:
			m.cfg.Stack.ForgetPeer(int(mb.Node))
			freshLeft = append(freshLeft, int(mb.Node))
		}
		if int(mb.Node) == m.cfg.Node {
			switch mb.State {
			case MemberActive:
				m.actOnce.Do(func() { close(m.activeCh) })
			case MemberLeft:
				m.leftOnce.Do(func() { close(m.leftCh) })
			}
		}
	}

	// 3. Element recovery. Dead nodes restore from checkpoint state where
	// available; drained nodes should already be empty (the LB evacuates
	// them), so re-homing the stragglers fresh is a safety net for
	// stateless arrays. Every process applies the identical deterministic
	// plan, so all location tables stay in agreement.
	if m.rt != nil {
		for _, node := range recoverNodes {
			var ck *Checkpoint
			if m.cfg.CheckpointFor != nil {
				ck = m.cfg.CheckpointFor(node)
			}
			n := m.rt.recoverNode(m.pesOf(node), m.alivePE(t), ck)
			m.evacuated.Add(int64(n))
			m.logf("membership: re-homed %d elements off dead node %d", n, node)
		}
		// The straggler safety net only runs without a load balancer. An
		// LB owns drain evacuation end to end: NotifyDrained fires only
		// after its barrier protocol emptied the node on every process,
		// while this table arrives on the control path and can overtake
		// in-flight LB round traffic — a plan computed here mid-round
		// would diverge between processes and corrupt the location tables.
		if m.rt.lbCfg == nil {
			for _, node := range freshLeft {
				n := m.rt.recoverNode(m.pesOf(node), m.alivePE(t), nil)
				m.evacuated.Add(int64(n))
				if n > 0 {
					m.logf("membership: re-homed %d straggler elements off drained node %d", n, node)
				}
			}
		}
	}

	if preNotify != nil {
		preNotify(freshLeft)
	}

	// 4. Application notification (worker-set changes).
	if m.cfg.OnChange != nil {
		m.cfg.OnChange(t.clone())
	}
}

// alivePE returns a predicate for PEs on Active members of t.
func (m *Membership) alivePE(t *MemberTable) func(pe int) bool {
	active := make(map[int]bool)
	for _, mb := range t.Members {
		if mb.State == MemberActive {
			active[int(mb.Node)] = true
		}
	}
	return func(pe int) bool { return active[m.cfg.NodeOf(pe)] }
}
