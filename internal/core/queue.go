package core

import (
	"container/heap"
	"sync"
)

// Queue is a PE's message queue: messages come out in priority order
// (smaller Prio first) with FIFO order among equal priorities — the
// "message queue in either FIFO or priority order" of the paper's §4.
//
// The implementation is a single binary heap ordered by (Prio, seq). The
// executor assigns monotonically increasing sequence numbers at enqueue
// time, which both provides the FIFO tie-break and makes ordering
// deterministic for the virtual-time executor.
//
// Queue is safe for concurrent use; Pop blocks until a message is
// available or the queue is closed. The virtual-time executor uses the
// non-blocking TryPop.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	h      msgHeap
	seq    uint64
	closed bool
}

// NewQueue builds an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Prio != h[j].Prio {
		return h[i].Prio < h[j].Prio
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Push enqueues a message, assigning its FIFO sequence number. Pushing to
// a closed queue is a no-op (shutdown races drop cleanly).
func (q *Queue) Push(m *Message) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.seq++
	m.seq = q.seq
	heap.Push(&q.h, m)
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop removes the highest-priority message, blocking while the queue is
// empty. It returns nil once the queue is closed and drained.
func (q *Queue) Pop() *Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Message)
}

// TryPop removes the highest-priority message without blocking, returning
// nil when the queue is empty.
func (q *Queue) TryPop() *Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Message)
}

// Len reports the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// Close marks the queue closed and wakes all blocked poppers. Messages
// already queued remain poppable via Pop/TryPop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
