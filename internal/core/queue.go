package core

import (
	"container/heap"
	"sync"
)

// Queue is a PE's message queue: messages come out in priority order
// (smaller Prio first) with FIFO order among equal priorities — the
// "message queue in either FIFO or priority order" of the paper's §4.
//
// The implementation is two lanes sharing one (Prio, seq) ordering
// contract. Default-priority messages — the overwhelming majority of
// application traffic — land in a ring-buffer FIFO lane that costs one
// index bump per push and pop; only prioritized and runtime protocol
// messages pay for a binary heap. A pop compares the lane heads under the
// shared (Prio, seq) order, so the observable ordering is identical to a
// single heap over all messages. The executor assigns monotonically
// increasing sequence numbers at enqueue time, which both provides the
// FIFO tie-break and makes ordering deterministic for the virtual-time
// executor.
//
// Queue is safe for concurrent use; Pop blocks until a message is
// available or the queue is closed, and PopBatch drains a burst under a
// single lock acquisition for the real-time scheduler. The virtual-time
// executor uses the non-blocking TryPop.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	fifo    msgRing // Prio == 0 lane
	h       msgHeap // Prio != 0 lane
	seq     uint64
	waiters int
	closed  bool
}

// NewQueue builds an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// msgRing is a growable circular FIFO of messages.
type msgRing struct {
	buf  []*Message
	head int // index of the front message
	n    int // number of queued messages
}

func (r *msgRing) push(m *Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

func (r *msgRing) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]*Message, newCap) // power-of-two capacity keeps index math a mask
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

func (r *msgRing) front() *Message { return r.buf[r.head] }

func (r *msgRing) pop() *Message {
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return m
}

type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Prio != h[j].Prio {
		return h[i].Prio < h[j].Prio
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Push enqueues a message, assigning its FIFO sequence number, and
// reports the resulting queue depth (0 if the push was dropped) so the
// caller can maintain a high-water mark without a second lock
// acquisition. Pushing to a closed queue is a no-op (shutdown races drop
// cleanly). A waiting popper is woken only when one exists; the common
// push-to-busy-PE case pays no futex call.
func (q *Queue) Push(m *Message) int {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0
	}
	q.seq++
	m.seq = q.seq
	if m.Prio == 0 {
		q.fifo.push(m)
	} else {
		heap.Push(&q.h, m)
	}
	depth := q.size()
	wake := q.waiters > 0
	q.mu.Unlock()
	if wake {
		q.cond.Signal()
	}
	return depth
}

// size reports the queued message count. Callers hold q.mu.
func (q *Queue) size() int { return q.fifo.n + len(q.h) }

// popLocked removes the (Prio, seq)-least message across both lanes.
// Callers hold q.mu and guarantee the queue is non-empty.
func (q *Queue) popLocked() *Message {
	if len(q.h) == 0 {
		return q.fifo.pop()
	}
	if q.fifo.n == 0 {
		return heap.Pop(&q.h).(*Message)
	}
	hp, fp := q.h[0], q.fifo.front()
	if hp.Prio < fp.Prio || (hp.Prio == fp.Prio && hp.seq < fp.seq) {
		return heap.Pop(&q.h).(*Message)
	}
	return q.fifo.pop()
}

// Pop removes the highest-priority message, blocking while the queue is
// empty. It returns nil once the queue is closed and drained.
func (q *Queue) Pop() *Message {
	q.mu.Lock()
	for q.size() == 0 && !q.closed {
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
	if q.size() == 0 {
		q.mu.Unlock()
		return nil
	}
	m := q.popLocked()
	q.mu.Unlock()
	return m
}

// PopBatch blocks like Pop for the first message, then drains further
// deliverable messages — in (Prio, seq) order — into the spare capacity of
// into, all under one lock acquisition. It appends to into and returns the
// extended slice; the result is empty only once the queue is closed and
// drained. Callers bound the burst with into's capacity.
func (q *Queue) PopBatch(into []*Message) []*Message {
	max := cap(into) - len(into)
	if max <= 0 {
		max = 1
	}
	q.mu.Lock()
	for q.size() == 0 && !q.closed {
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
	for i := 0; i < max && q.size() > 0; i++ {
		into = append(into, q.popLocked())
	}
	q.mu.Unlock()
	return into
}

// TryPop removes the highest-priority message without blocking, returning
// nil when the queue is empty.
func (q *Queue) TryPop() *Message {
	q.mu.Lock()
	if q.size() == 0 {
		q.mu.Unlock()
		return nil
	}
	m := q.popLocked()
	q.mu.Unlock()
	return m
}

// Len reports the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	n := q.size()
	q.mu.Unlock()
	return n
}

// Close marks the queue closed and wakes all blocked poppers. Messages
// already queued remain poppable via Pop/TryPop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
