package core

// PUP — pack/unpack — is the single serialization contract for element
// state. One visitor method written by the application serves three
// consumers: load-balancer migration (evict→arrive over the wire),
// checkpoint/restart (including restart on a different PE count), and
// AMPI rank migration. This mirrors the Charm++ PUP framework (§2.1 of
// the paper), where migration, checkpointing, and shrink/expand all ride
// the same pup() routine.
//
// A PUP runs in one of three modes over a flat byte buffer:
//
//   - sizing:    every call accumulates the encoded size; nothing is read
//     or written. PUPPack runs this pass first so buffers are allocated
//     exactly once and Bytes reported to the delay/bandwidth model are
//     honest.
//   - packing:   every call appends the value big-endian to the buffer.
//   - unpacking: every call reads the value back into the pointee.
//
// The same method body drives all three, so pack and unpack cannot drift
// apart. Applications branch on Unpacking() only for post-read fix-ups
// (rebuilding derived state, validating against the target program) and
// report validation failures with Errorf.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// PUPable is state that can be serialized through a PUP visitor. The
// method must traverse the same fields in the same order regardless of
// mode; helpers like PUPPack and PUPUnpack rely on that symmetry.
type PUPable interface {
	PUP(p *PUP)
}

// Migratable marks a chare whose state can move between PEs — the
// requirement for load-balancer migration and checkpointing. The PUP
// method replaces the former gob-based Pack scheme.
type Migratable interface {
	Chare
	PUPable
}

type pupMode uint8

const (
	pupSizing pupMode = iota
	pupPacking
	pupUnpacking
)

// PUP is the visitor passed to PUPable.PUP. The zero value is not
// usable; obtain one through PUPSize, PUPPack, or PUPUnpack.
type PUP struct {
	mode       pupMode
	checkpoint bool   // checkpoint/restart pass rather than live migration
	buf        []byte // packing: destination; unpacking: source
	off        int    // read/write cursor into buf
	size       int    // sizing: accumulated byte count
	err        error  // first error; all later calls are no-ops
}

// Sizing reports whether this pass only measures the encoded size.
func (p *PUP) Sizing() bool { return p.mode == pupSizing }

// Packing reports whether this pass writes state into the buffer.
func (p *PUP) Packing() bool { return p.mode == pupPacking }

// Unpacking reports whether this pass reads state out of the buffer.
// Applications use it to run post-read fix-ups and validation.
func (p *PUP) Unpacking() bool { return p.mode == pupUnpacking }

// Checkpointing reports whether this pass serves checkpoint/restart
// rather than a live migration — the analogue of Charm++'s pup_er flags.
// The byte layout must be identical either way (a checkpoint written on
// one run restores state a migration packed the same way); the flag only
// gates validation that applies to one consumer. A restored element joins
// a program whose reduction sequence starts from scratch, while a
// migrating element carries its reduction history with it, so a check
// like "the warmup round must still be ahead of us" is correct under
// Checkpointing and wrong during migration.
func (p *PUP) Checkpointing() bool { return p.checkpoint }

// Err returns the first error recorded on this visitor, if any.
func (p *PUP) Err() error { return p.err }

// Errorf records a failure (typically a validation failure during
// unpacking, e.g. a checkpoint whose geometry does not match the target
// program). The first error sticks; subsequent visitor calls become
// no-ops so the method body can return early or fall through safely.
func (p *PUP) Errorf(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

func (p *PUP) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// remaining returns how many bytes of the source buffer are unread.
func (p *PUP) remaining() int { return len(p.buf) - p.off }

// raw8 moves one 8-byte big-endian word through the visitor.
func (p *PUP) raw8(v *uint64) {
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += 8
	case pupPacking:
		p.buf = binary.BigEndian.AppendUint64(p.buf, *v)
	case pupUnpacking:
		if p.remaining() < 8 {
			p.fail(fmt.Errorf("pup: truncated buffer (need 8 bytes at offset %d, have %d)", p.off, p.remaining()))
			return
		}
		*v = binary.BigEndian.Uint64(p.buf[p.off:])
		p.off += 8
	}
}

// Int moves an int (encoded as 8 bytes so 32- and 64-bit builds agree).
func (p *PUP) Int(v *int) {
	u := uint64(int64(*v))
	p.raw8(&u)
	if p.mode == pupUnpacking && p.err == nil {
		*v = int(int64(u))
	}
}

// Int64 moves an int64.
func (p *PUP) Int64(v *int64) {
	u := uint64(*v)
	p.raw8(&u)
	if p.mode == pupUnpacking && p.err == nil {
		*v = int64(u)
	}
}

// Int32 moves an int32 (still 8 bytes on the wire, for uniformity).
func (p *PUP) Int32(v *int32) {
	u := uint64(int64(*v))
	p.raw8(&u)
	if p.mode == pupUnpacking && p.err == nil {
		w := int64(u)
		if w < math.MinInt32 || w > math.MaxInt32 {
			p.fail(fmt.Errorf("pup: value %d overflows int32 at offset %d", w, p.off-8))
			return
		}
		*v = int32(w)
	}
}

// Uint64 moves a uint64.
func (p *PUP) Uint64(v *uint64) { p.raw8(v) }

// Float64 moves a float64 bit-exactly.
func (p *PUP) Float64(v *float64) {
	u := math.Float64bits(*v)
	p.raw8(&u)
	if p.mode == pupUnpacking && p.err == nil {
		*v = math.Float64frombits(u)
	}
}

// Bool moves a bool (one byte).
func (p *PUP) Bool(v *bool) {
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size++
	case pupPacking:
		b := byte(0)
		if *v {
			b = 1
		}
		p.buf = append(p.buf, b)
	case pupUnpacking:
		if p.remaining() < 1 {
			p.fail(fmt.Errorf("pup: truncated buffer (need 1 byte at offset %d)", p.off))
			return
		}
		switch p.buf[p.off] {
		case 0:
			*v = false
		case 1:
			*v = true
		default:
			p.fail(fmt.Errorf("pup: invalid bool byte 0x%02x at offset %d", p.buf[p.off], p.off))
			return
		}
		p.off++
	}
}

// Duration moves a time.Duration.
func (p *PUP) Duration(v *time.Duration) {
	d := int64(*v)
	p.Int64(&d)
	if p.mode == pupUnpacking && p.err == nil {
		*v = time.Duration(d)
	}
}

// length moves a slice length prefix and, when unpacking, validates it
// against the bytes actually remaining (elemSize bytes per element) so a
// corrupt prefix cannot trigger a huge allocation.
func (p *PUP) length(n *int, elemSize int) {
	p.Int(n)
	if p.mode == pupUnpacking && p.err == nil {
		if *n < 0 || (elemSize > 0 && *n > p.remaining()/elemSize) {
			p.fail(fmt.Errorf("pup: implausible length %d at offset %d (%d bytes remain)", *n, p.off-8, p.remaining()))
		}
	}
}

// Bytes moves a byte slice with a length prefix. Unpacking replaces the
// pointee with a fresh copy (nil stays nil only for length 0... a zero
// length always unpacks as nil).
func (p *PUP) Bytes(v *[]byte) {
	n := len(*v)
	p.length(&n, 1)
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += n
	case pupPacking:
		p.buf = append(p.buf, *v...)
	case pupUnpacking:
		if n == 0 {
			*v = nil
			return
		}
		*v = append([]byte(nil), p.buf[p.off:p.off+n]...)
		p.off += n
	}
}

// String moves a string with a length prefix.
func (p *PUP) String(v *string) {
	n := len(*v)
	p.length(&n, 1)
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += n
	case pupPacking:
		p.buf = append(p.buf, *v...)
	case pupUnpacking:
		*v = string(p.buf[p.off : p.off+n])
		p.off += n
	}
}

// Float64s moves a []float64 with a length prefix. Unpacking reuses the
// pointee's backing array when its length already matches (the common
// restore-into-constructed-element case), so geometry validation against
// the target program can simply compare lengths before calling this.
func (p *PUP) Float64s(v *[]float64) {
	n := len(*v)
	p.length(&n, 8)
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += 8 * n
	case pupPacking:
		for _, f := range *v {
			p.buf = binary.BigEndian.AppendUint64(p.buf, math.Float64bits(f))
		}
	case pupUnpacking:
		s := *v
		if len(s) != n {
			s = make([]float64, n)
		}
		for i := range s {
			s[i] = math.Float64frombits(binary.BigEndian.Uint64(p.buf[p.off:]))
			p.off += 8
		}
		*v = s
	}
}

// Int32s moves a []int32 with a length prefix (8 bytes per element, for
// uniformity with the scalar encoding).
func (p *PUP) Int32s(v *[]int32) {
	n := len(*v)
	p.length(&n, 8)
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += 8 * n
	case pupPacking:
		for _, x := range *v {
			p.buf = binary.BigEndian.AppendUint64(p.buf, uint64(int64(x)))
		}
	case pupUnpacking:
		s := *v
		if len(s) != n {
			s = make([]int32, n)
		}
		for i := range s {
			s[i] = int32(int64(binary.BigEndian.Uint64(p.buf[p.off:])))
			p.off += 8
		}
		*v = s
	}
}

// Ints moves a []int with a length prefix.
func (p *PUP) Ints(v *[]int) {
	n := len(*v)
	p.length(&n, 8)
	if p.err != nil {
		return
	}
	switch p.mode {
	case pupSizing:
		p.size += 8 * n
	case pupPacking:
		for _, x := range *v {
			p.buf = binary.BigEndian.AppendUint64(p.buf, uint64(int64(x)))
		}
	case pupUnpacking:
		s := *v
		if len(s) != n {
			s = make([]int, n)
		}
		for i := range s {
			s[i] = int(int64(binary.BigEndian.Uint64(p.buf[p.off:])))
			p.off += 8
		}
		*v = s
	}
}

// PUPSize runs a sizing pass and returns the exact encoded size.
func PUPSize(v PUPable) (int, error) {
	p := &PUP{mode: pupSizing}
	v.PUP(p)
	if p.err != nil {
		return 0, p.err
	}
	return p.size, nil
}

// PUPPack serializes v for a live migration: a sizing pass first, then a
// packing pass into an exactly-sized buffer. The sizing pass keeps
// allocation honest and its result is cross-checked against the bytes
// actually written, so an asymmetric PUP method is caught at pack time
// rather than as a corrupt unpack on the destination PE.
func PUPPack(v PUPable) ([]byte, error) { return pupPack(v, false) }

// PUPPackCheckpoint is PUPPack with the Checkpointing flag set.
func PUPPackCheckpoint(v PUPable) ([]byte, error) { return pupPack(v, true) }

func pupPack(v PUPable, checkpoint bool) ([]byte, error) {
	sz := &PUP{mode: pupSizing, checkpoint: checkpoint}
	v.PUP(sz)
	if sz.err != nil {
		return nil, sz.err
	}
	n := sz.size
	p := &PUP{mode: pupPacking, checkpoint: checkpoint, buf: make([]byte, 0, n)}
	v.PUP(p)
	if p.err != nil {
		return nil, p.err
	}
	if len(p.buf) != n {
		return nil, fmt.Errorf("pup: %T sized %d bytes but packed %d — PUP method is asymmetric", v, n, len(p.buf))
	}
	return p.buf, nil
}

// PUPUnpack restores v from data produced by PUPPack (a live migration).
// Every byte must be consumed; trailing garbage means the method or the
// data is wrong.
func PUPUnpack(v PUPable, data []byte) error { return pupUnpack(v, data, false) }

// PUPUnpackCheckpoint is PUPUnpack with the Checkpointing flag set, for
// restoring an element into a freshly started program.
func PUPUnpackCheckpoint(v PUPable, data []byte) error { return pupUnpack(v, data, true) }

func pupUnpack(v PUPable, data []byte, checkpoint bool) error {
	p := &PUP{mode: pupUnpacking, checkpoint: checkpoint, buf: data}
	v.PUP(p)
	if p.err != nil {
		return p.err
	}
	if p.off != len(data) {
		return fmt.Errorf("pup: %T left %d trailing bytes of %d", v, len(data)-p.off, len(data))
	}
	return nil
}
