package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gridmdo/internal/topology"
)

// This file implements the AtSync load-balancing protocol from the
// Charm++ model the paper relies on ("a suite of measurement-based load
// balancers ... the migration capability"). Elements opt in by calling
// Ctx.AtSync; when every participating element on a PE has synced, the PE
// reports measured per-element loads to PE 0; PE 0 runs a pluggable
// Strategy over the gathered statistics, orchestrates the migrations, and
// resumes every element via EntryResumeFromSync.
//
// Element state crosses the evict→arrive leg as PUP-packed bytes, so a
// migration between gridnode processes is just another KindLB message
// over the Reliable/TCP chain. The resume broadcast carries the round's
// validated moves; every PE applies them (idempotently) to its node's
// location table before resuming, so all nodes agree on ownership before
// application traffic restarts.
//
// Strategies themselves (greedy, refine, and the paper's grid-aware
// balancer) live in internal/balance.

// LBConfig enables load balancing for a program.
type LBConfig struct {
	// Arrays lists the chare arrays that participate in AtSync.
	Arrays []ArrayID
	// Strategy plans migrations from gathered statistics.
	Strategy Strategy
}

// ElemLoad is one element's measured statistics for a balancing round.
type ElemLoad struct {
	Ref     ElemRef
	PE      int
	Load    time.Duration // busy time since the previous round
	Msgs    int           // messages sent
	WanMsgs int           // messages sent across the WAN
}

// LBStats is the global view handed to a Strategy.
type LBStats struct {
	NumPE int
	Topo  *topology.Topology
	Elems []ElemLoad // sorted by (Array, Index) for determinism
}

// Move is one planned migration.
type Move struct {
	Ref  ElemRef
	ToPE int
}

// Strategy plans migrations. Implementations must be deterministic
// functions of their input.
type Strategy interface {
	Name() string
	Plan(stats *LBStats) []Move
}

// Evictable lets a chare release local resources (for AMPI, the parked
// rank goroutine) when the load balancer migrates it away. Evicted runs
// on the source PE after the element's state has been packed and the
// element removed from its host.
type Evictable interface {
	Evicted()
}

// lbPhase tags KindLB protocol messages.
type lbPhase uint8

const (
	lbStats  lbPhase = iota // PE -> root: local element statistics
	lbEvict                 // root -> source PE: migrate listed elements
	lbArrive                // source PE -> dest PE: element in flight
	lbAck                   // dest PE -> root: element installed
	lbResume                // root -> all PEs: apply moves, deliver ResumeFromSync
)

// lbMsg is the KindLB payload. It has a built-in binary wire codec
// (tagLB in codec.go), so no phase of the protocol falls back to gob.
type lbMsg struct {
	Phase lbPhase
	Stats []ElemLoad // lbStats
	Moves []Move     // lbEvict; lbResume (the round's validated moves)
	Elem  ElemRef    // lbArrive
	State []byte     // lbArrive: PUP-packed element state
	Meta  *elemMeta  // lbArrive
}

// lbMetaBytes is the wire size of a serialized elemMeta.
const lbMetaBytes = 33

// PayloadBytes implements Sizer. Unlike the old fixed formula, it counts
// the serialized element state, so the delay device, bandwidth model, and
// per-flow metrics see honest migration traffic.
func (m lbMsg) PayloadBytes() int {
	n := 32 + 48*len(m.Stats) + 16*len(m.Moves) + len(m.State)
	if m.Meta != nil {
		n += lbMetaBytes
	}
	return n
}

// LBMgr drives the protocol on one PE. All methods run on the PE's
// scheduler. The root-side state lives only on PE 0.
type LBMgr struct {
	pe   int
	cfg  *LBConfig
	topo *topology.Topology
	loc  *Locations
	host *PEHost
	prog *Program
	emit func(m *Message)
	mem  *Membership // nil without elastic membership (set by NewRuntime)

	// root state
	reports   []ElemLoad
	reported  map[int]bool
	expected  int
	pendAcks  int
	pendMoves []Move
	lastMoves int

	// counters read by metrics scrapers on other goroutines
	rounds     atomic.Int64
	totalMoves atomic.Int64
}

// NewLBMgr builds a load-balancing manager for pe. prog is needed to
// construct arriving elements before unpacking their migrated state.
func NewLBMgr(pe int, cfg *LBConfig, topo *topology.Topology, loc *Locations, host *PEHost, prog *Program, emit func(*Message)) *LBMgr {
	return &LBMgr{pe: pe, cfg: cfg, topo: topo, loc: loc, host: host, prog: prog, emit: emit, reported: make(map[int]bool)}
}

// Rounds reports how many balancing rounds have completed (root only).
// Safe to call from any goroutine.
func (l *LBMgr) Rounds() int { return int(l.rounds.Load()) }

// TotalMoves reports how many migrations all rounds performed in total
// (root only). Safe to call from any goroutine.
func (l *LBMgr) TotalMoves() int { return int(l.totalMoves.Load()) }

// LastMoves reports how many migrations the most recent round performed
// (root only).
func (l *LBMgr) LastMoves() int { return l.lastMoves }

// ElementAtSync is called by the backend each time a local element enters
// the barrier. When the whole PE is at sync, it reports statistics.
func (l *LBMgr) ElementAtSync() {
	if l.cfg == nil {
		return
	}
	if !l.host.AllAtSync(l.cfg.Arrays) {
		return
	}
	stats := l.host.StatsAndReset(l.cfg.Arrays)
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Ref.Array != stats[j].Ref.Array {
			return stats[i].Ref.Array < stats[j].Ref.Array
		}
		return stats[i].Ref.Index < stats[j].Ref.Index
	})
	l.emit(&Message{
		Kind: KindLB, SrcPE: int32(l.pe), DstPE: 0,
		Data:  lbMsg{Phase: lbStats, Stats: stats},
		Bytes: lbMsg{Stats: stats}.PayloadBytes(),
	})
}

// Handle processes a KindLB protocol message.
func (l *LBMgr) Handle(m *Message) error {
	p, ok := m.Data.(lbMsg)
	if !ok {
		return fmt.Errorf("core: KindLB message with payload %T", m.Data)
	}
	switch p.Phase {
	case lbStats:
		return l.rootCollect(int(m.SrcPE), p.Stats)
	case lbEvict:
		return l.evict(p.Moves)
	case lbArrive:
		return l.arrive(p)
	case lbAck:
		return l.rootAck()
	case lbResume:
		return l.resumeAll(p.Moves)
	}
	return fmt.Errorf("core: unknown LB phase %d", p.Phase)
}

func (l *LBMgr) participatingPEs() int {
	n := 0
	for pe := 0; pe < l.topo.NumPE(); pe++ {
		for _, a := range l.cfg.Arrays {
			if l.loc.LocalCount(a, pe) > 0 {
				n++
				break
			}
		}
	}
	return n
}

func (l *LBMgr) rootCollect(fromPE int, stats []ElemLoad) error {
	if l.pe != 0 {
		return fmt.Errorf("core: LB stats arrived at PE %d", l.pe)
	}
	if l.reported[fromPE] {
		return fmt.Errorf("core: duplicate LB report from PE %d", fromPE)
	}
	if len(l.reported) == 0 {
		l.expected = l.participatingPEs()
	}
	l.reported[fromPE] = true
	l.reports = append(l.reports, stats...)
	if len(l.reported) < l.expected {
		return nil
	}

	// Everyone is at sync: plan.
	sort.Slice(l.reports, func(i, j int) bool {
		if l.reports[i].Ref.Array != l.reports[j].Ref.Array {
			return l.reports[i].Ref.Array < l.reports[j].Ref.Array
		}
		return l.reports[i].Ref.Index < l.reports[j].Ref.Index
	})
	moves := l.cfg.Strategy.Plan(&LBStats{NumPE: l.topo.NumPE(), Topo: l.topo, Elems: l.reports})
	l.reports, l.reported = nil, make(map[int]bool)
	l.rounds.Add(1)

	// Drop no-op and invalid moves; under elastic membership also drop
	// moves targeting PEs whose node is not an Active member.
	valid := moves[:0]
	for _, mv := range moves {
		if mv.ToPE < 0 || mv.ToPE >= l.topo.NumPE() {
			continue
		}
		if int(l.loc.PEOf(mv.Ref)) == mv.ToPE {
			continue
		}
		if l.mem != nil && !l.mem.PlaceablePE(mv.ToPE) {
			continue
		}
		valid = append(valid, mv)
	}
	moves = valid
	moves = l.addDrainMoves(moves)
	l.lastMoves = len(moves)
	l.totalMoves.Add(int64(len(moves)))

	if len(moves) == 0 {
		return l.broadcastResume(nil)
	}
	l.pendAcks = len(moves)
	l.pendMoves = append([]Move(nil), moves...)
	// Group by source PE and dispatch evictions.
	bySrc := make(map[int32][]Move)
	var srcs []int32
	for _, mv := range moves {
		src := l.loc.PEOf(mv.Ref)
		if _, ok := bySrc[src]; !ok {
			srcs = append(srcs, src)
		}
		bySrc[src] = append(bySrc[src], mv)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		l.emit(&Message{
			Kind: KindLB, SrcPE: 0, DstPE: src,
			Data:  lbMsg{Phase: lbEvict, Moves: bySrc[src]},
			Bytes: lbMsg{Moves: bySrc[src]}.PayloadBytes(),
		})
	}
	return nil
}

// addDrainMoves augments a round's plan with evacuations off Draining
// members' PEs (elastic membership only), overriding any strategy move
// that touches an element currently on a draining PE — the drain planner
// must win or the element could land back on the node trying to leave.
func (l *LBMgr) addDrainMoves(moves []Move) []Move {
	if l.mem == nil {
		return moves
	}
	t := l.mem.Table()
	drainPE := make(map[int]bool)
	for _, mb := range t.Members {
		if mb.State == MemberDraining {
			for _, pe := range l.mem.pesOf(int(mb.Node)) {
				drainPE[pe] = true
			}
		}
	}
	if len(drainPE) == 0 {
		return moves
	}
	drain := PlanDrain(l.loc, l.cfg.Arrays, l.topo.NumPE(),
		func(pe int) bool { return drainPE[pe] }, l.mem.alivePE(&t))
	// The LB is the drain evacuator for balanced programs (membership's
	// straggler net stands down — see applyLocked), so the membership
	// evacuation counter is fed from here, where the moves are planned.
	l.mem.evacuated.Add(int64(len(drain)))
	kept := moves[:0]
	for _, mv := range moves {
		if !drainPE[int(l.loc.PEOf(mv.Ref))] {
			kept = append(kept, mv)
		}
	}
	return append(kept, drain...)
}

// reportDrained (root) tells the membership layer about Draining members
// whose PEs no longer hold any element — their evacuation is complete and
// they may leave. Runs after a round's moves are applied.
func (l *LBMgr) reportDrained() {
	t := l.mem.Table()
	for _, mb := range t.Members {
		if mb.State != MemberDraining {
			continue
		}
		empty := true
		for _, pe := range l.mem.pesOf(int(mb.Node)) {
			for ai := range l.prog.Arrays {
				if l.loc.LocalCount(l.prog.Arrays[ai].ID, pe) > 0 {
					empty = false
					break
				}
			}
			if !empty {
				break
			}
		}
		if empty {
			l.mem.NotifyDrained(int(mb.Node))
		}
	}
}

// evict packs and ships the listed elements. It validates and packs every
// move before mutating anything, so a bad plan (missing element,
// unpackable state, out-of-range destination) leaves the host and the
// location table untouched and returns one aggregated error.
func (l *LBMgr) evict(moves []Move) error {
	states := make([][]byte, len(moves))
	var errs []error
	for i, mv := range moves {
		ch, ok := l.host.liveOrHydrated(mv.Ref)
		if !ok {
			if cerr := l.host.ColdError(); cerr != nil {
				errs = append(errs, cerr)
			} else {
				errs = append(errs, fmt.Errorf("missing element %v", mv.Ref))
			}
			continue
		}
		if mv.ToPE < 0 || mv.ToPE >= l.topo.NumPE() {
			errs = append(errs, fmt.Errorf("element %v bound for out-of-range PE %d", mv.Ref, mv.ToPE))
			continue
		}
		m, ok := ch.(Migratable)
		if !ok {
			errs = append(errs, fmt.Errorf("element %v of type %T is not Migratable", mv.Ref, ch))
			continue
		}
		if n := l.host.ParkedMessages(mv.Ref); n > 0 {
			errs = append(errs, fmt.Errorf("element %v has %d undelivered buffered messages", mv.Ref, n))
			continue
		}
		state, err := PUPPack(m)
		if err != nil {
			errs = append(errs, fmt.Errorf("pack %v: %w", mv.Ref, err))
			continue
		}
		states[i] = state
	}
	if len(errs) > 0 {
		return fmt.Errorf("core: PE %d evict aborted, no elements migrated: %w", l.pe, errors.Join(errs...))
	}
	for i, mv := range moves {
		ch, meta, _ := l.host.removeElement(mv.Ref)
		if ev, ok := ch.(Evictable); ok {
			ev.Evicted()
		}
		if _, err := l.loc.Move(mv.Ref, mv.ToPE); err != nil {
			return err
		}
		msg := lbMsg{Phase: lbArrive, Elem: mv.Ref, State: states[i], Meta: meta}
		l.emit(&Message{
			Kind: KindLB, SrcPE: int32(l.pe), DstPE: int32(mv.ToPE),
			Data: msg, Bytes: msg.PayloadBytes(),
		})
	}
	return nil
}

// arrive rebuilds a migrated element from its PUP-packed state: the
// array's constructor makes a fresh element for the index, then the
// packed bytes are unpacked into it.
func (l *LBMgr) arrive(p lbMsg) error {
	a := int(p.Elem.Array)
	if a < 0 || a >= len(l.prog.Arrays) {
		return fmt.Errorf("core: arriving element %v names unknown array", p.Elem)
	}
	ch := l.prog.Arrays[a].New(p.Elem.Index)
	m, ok := ch.(Migratable)
	if !ok {
		return fmt.Errorf("core: arriving element %v constructed as non-Migratable %T", p.Elem, ch)
	}
	if err := PUPUnpack(m, p.State); err != nil {
		return fmt.Errorf("core: unpack arriving element %v: %w", p.Elem, err)
	}
	// Record the new owner in this node's table now; the resume broadcast
	// re-applies the same move idempotently on every other node.
	if _, err := l.loc.Move(p.Elem, l.pe); err != nil {
		return err
	}
	l.host.addElementWithMeta(p.Elem, ch, p.Meta)
	l.emit(&Message{
		Kind: KindLB, SrcPE: int32(l.pe), DstPE: 0,
		Data:  lbMsg{Phase: lbAck},
		Bytes: 32,
	})
	return nil
}

func (l *LBMgr) rootAck() error {
	l.pendAcks--
	if l.pendAcks > 0 {
		return nil
	}
	moves := l.pendMoves
	l.pendMoves = nil
	return l.broadcastResume(moves)
}

func (l *LBMgr) broadcastResume(moves []Move) error {
	for pe := 0; pe < l.topo.NumPE(); pe++ {
		if l.mem != nil && !l.mem.ReachablePE(pe) {
			continue
		}
		msg := lbMsg{Phase: lbResume, Moves: moves}
		l.emit(&Message{
			Kind: KindLB, SrcPE: 0, DstPE: int32(pe),
			Data: msg, Bytes: msg.PayloadBytes(),
		})
	}
	return nil
}

// resumeAll applies the round's moves to this node's location table —
// idempotent where the evict/arrive legs already did — then delivers
// ResumeFromSync to every local element. Applying moves before resuming
// means no PE restarts application traffic with a stale view of where
// the migrated elements live.
func (l *LBMgr) resumeAll(moves []Move) error {
	for _, mv := range moves {
		if _, err := l.loc.Move(mv.Ref, mv.ToPE); err != nil {
			return err
		}
	}
	if l.pe == 0 && l.mem != nil {
		l.reportDrained()
	}
	for _, a := range l.cfg.Arrays {
		for _, ref := range l.loc.ElementsOn(a, l.pe) {
			if err := l.host.ResumeFromSync(ref); err != nil {
				return err
			}
		}
	}
	return nil
}
