package core

import (
	"fmt"
	"sort"
	"time"

	"gridmdo/internal/topology"
)

// This file implements the AtSync load-balancing protocol from the
// Charm++ model the paper relies on ("a suite of measurement-based load
// balancers ... the migration capability"). Elements opt in by calling
// Ctx.AtSync; when every participating element on a PE has synced, the PE
// reports measured per-element loads to PE 0; PE 0 runs a pluggable
// Strategy over the gathered statistics, orchestrates the migrations, and
// resumes every element via EntryResumeFromSync.
//
// Strategies themselves (greedy, refine, and the paper's grid-aware
// balancer) live in internal/balance.

// LBConfig enables load balancing for a program.
type LBConfig struct {
	// Arrays lists the chare arrays that participate in AtSync.
	Arrays []ArrayID
	// Strategy plans migrations from gathered statistics.
	Strategy Strategy
}

// ElemLoad is one element's measured statistics for a balancing round.
type ElemLoad struct {
	Ref     ElemRef
	PE      int
	Load    time.Duration // busy time since the previous round
	Msgs    int           // messages sent
	WanMsgs int           // messages sent across the WAN
}

// LBStats is the global view handed to a Strategy.
type LBStats struct {
	NumPE int
	Topo  *topology.Topology
	Elems []ElemLoad // sorted by (Array, Index) for determinism
}

// Move is one planned migration.
type Move struct {
	Ref  ElemRef
	ToPE int
}

// Strategy plans migrations. Implementations must be deterministic
// functions of their input.
type Strategy interface {
	Name() string
	Plan(stats *LBStats) []Move
}

// lbPhase tags KindLB protocol messages.
type lbPhase uint8

const (
	lbStats  lbPhase = iota // PE -> root: local element statistics
	lbEvict                 // root -> source PE: migrate listed elements
	lbArrive                // source PE -> dest PE: element in flight
	lbAck                   // dest PE -> root: element installed
	lbResume                // root -> all PEs: deliver ResumeFromSync
)

// lbMsg is the KindLB payload.
type lbMsg struct {
	Phase lbPhase
	Stats []ElemLoad // lbStats
	Moves []Move     // lbEvict
	Elem  ElemRef    // lbArrive
	State Chare      // lbArrive (in-process transfer)
	Meta  *elemMeta  // lbArrive
}

// PayloadBytes implements Sizer.
func (m lbMsg) PayloadBytes() int { return 32 + 48*len(m.Stats) + 16*len(m.Moves) }

// LBMgr drives the protocol on one PE. All methods run on the PE's
// scheduler. The root-side state lives only on PE 0.
type LBMgr struct {
	pe   int
	cfg  *LBConfig
	topo *topology.Topology
	loc  *Locations
	host *PEHost
	emit func(m *Message)

	// root state
	reports   []ElemLoad
	reported  map[int]bool
	expected  int
	pendAcks  int
	rounds    int
	lastMoves int
}

// NewLBMgr builds a load-balancing manager for pe.
func NewLBMgr(pe int, cfg *LBConfig, topo *topology.Topology, loc *Locations, host *PEHost, emit func(*Message)) *LBMgr {
	return &LBMgr{pe: pe, cfg: cfg, topo: topo, loc: loc, host: host, emit: emit, reported: make(map[int]bool)}
}

// Rounds reports how many balancing rounds have completed (root only).
func (l *LBMgr) Rounds() int { return l.rounds }

// LastMoves reports how many migrations the most recent round performed
// (root only).
func (l *LBMgr) LastMoves() int { return l.lastMoves }

// ElementAtSync is called by the backend each time a local element enters
// the barrier. When the whole PE is at sync, it reports statistics.
func (l *LBMgr) ElementAtSync() {
	if l.cfg == nil {
		return
	}
	if !l.host.AllAtSync(l.cfg.Arrays) {
		return
	}
	stats := l.host.StatsAndReset(l.cfg.Arrays)
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Ref.Array != stats[j].Ref.Array {
			return stats[i].Ref.Array < stats[j].Ref.Array
		}
		return stats[i].Ref.Index < stats[j].Ref.Index
	})
	l.emit(&Message{
		Kind: KindLB, SrcPE: int32(l.pe), DstPE: 0,
		Data:  lbMsg{Phase: lbStats, Stats: stats},
		Bytes: lbMsg{Stats: stats}.PayloadBytes(),
	})
}

// Handle processes a KindLB protocol message.
func (l *LBMgr) Handle(m *Message) error {
	p, ok := m.Data.(lbMsg)
	if !ok {
		return fmt.Errorf("core: KindLB message with payload %T", m.Data)
	}
	switch p.Phase {
	case lbStats:
		return l.rootCollect(int(m.SrcPE), p.Stats)
	case lbEvict:
		return l.evict(p.Moves)
	case lbArrive:
		return l.arrive(p)
	case lbAck:
		return l.rootAck()
	case lbResume:
		return l.resumeAll()
	}
	return fmt.Errorf("core: unknown LB phase %d", p.Phase)
}

func (l *LBMgr) participatingPEs() int {
	n := 0
	for pe := 0; pe < l.topo.NumPE(); pe++ {
		for _, a := range l.cfg.Arrays {
			if l.loc.LocalCount(a, pe) > 0 {
				n++
				break
			}
		}
	}
	return n
}

func (l *LBMgr) rootCollect(fromPE int, stats []ElemLoad) error {
	if l.pe != 0 {
		return fmt.Errorf("core: LB stats arrived at PE %d", l.pe)
	}
	if l.reported[fromPE] {
		return fmt.Errorf("core: duplicate LB report from PE %d", fromPE)
	}
	if len(l.reported) == 0 {
		l.expected = l.participatingPEs()
	}
	l.reported[fromPE] = true
	l.reports = append(l.reports, stats...)
	if len(l.reported) < l.expected {
		return nil
	}

	// Everyone is at sync: plan.
	sort.Slice(l.reports, func(i, j int) bool {
		if l.reports[i].Ref.Array != l.reports[j].Ref.Array {
			return l.reports[i].Ref.Array < l.reports[j].Ref.Array
		}
		return l.reports[i].Ref.Index < l.reports[j].Ref.Index
	})
	moves := l.cfg.Strategy.Plan(&LBStats{NumPE: l.topo.NumPE(), Topo: l.topo, Elems: l.reports})
	l.reports, l.reported = nil, make(map[int]bool)
	l.rounds++

	// Drop no-op and invalid moves.
	valid := moves[:0]
	for _, mv := range moves {
		if mv.ToPE < 0 || mv.ToPE >= l.topo.NumPE() {
			continue
		}
		if int(l.loc.PEOf(mv.Ref)) == mv.ToPE {
			continue
		}
		valid = append(valid, mv)
	}
	moves = valid
	l.lastMoves = len(moves)

	if len(moves) == 0 {
		return l.broadcastResume()
	}
	l.pendAcks = len(moves)
	// Group by source PE and dispatch evictions.
	bySrc := make(map[int32][]Move)
	var srcs []int32
	for _, mv := range moves {
		src := l.loc.PEOf(mv.Ref)
		if _, ok := bySrc[src]; !ok {
			srcs = append(srcs, src)
		}
		bySrc[src] = append(bySrc[src], mv)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		l.emit(&Message{
			Kind: KindLB, SrcPE: 0, DstPE: src,
			Data:  lbMsg{Phase: lbEvict, Moves: bySrc[src]},
			Bytes: lbMsg{Moves: bySrc[src]}.PayloadBytes(),
		})
	}
	return nil
}

func (l *LBMgr) evict(moves []Move) error {
	for _, mv := range moves {
		ch, meta, ok := l.host.removeElement(mv.Ref)
		if !ok {
			return fmt.Errorf("core: PE %d told to evict missing element %v", l.pe, mv.Ref)
		}
		if _, err := l.loc.Move(mv.Ref, mv.ToPE); err != nil {
			return err
		}
		l.emit(&Message{
			Kind: KindLB, SrcPE: int32(l.pe), DstPE: int32(mv.ToPE),
			Data:  lbMsg{Phase: lbArrive, Elem: mv.Ref, State: ch, Meta: meta},
			Bytes: 256,
		})
	}
	return nil
}

func (l *LBMgr) arrive(p lbMsg) error {
	l.host.addElementWithMeta(p.Elem, p.State, p.Meta)
	l.emit(&Message{
		Kind: KindLB, SrcPE: int32(l.pe), DstPE: 0,
		Data:  lbMsg{Phase: lbAck},
		Bytes: 32,
	})
	return nil
}

func (l *LBMgr) rootAck() error {
	l.pendAcks--
	if l.pendAcks > 0 {
		return nil
	}
	return l.broadcastResume()
}

func (l *LBMgr) broadcastResume() error {
	for pe := 0; pe < l.topo.NumPE(); pe++ {
		l.emit(&Message{
			Kind: KindLB, SrcPE: 0, DstPE: int32(pe),
			Data:  lbMsg{Phase: lbResume},
			Bytes: 16,
		})
	}
	return nil
}

func (l *LBMgr) resumeAll() error {
	for _, a := range l.cfg.Arrays {
		for _, ref := range l.loc.ElementsOn(a, l.pe) {
			if err := l.host.ResumeFromSync(ref); err != nil {
				return err
			}
		}
	}
	return nil
}
