package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// TestTwoNodeTCPRuntime wires two Runtimes (each hosting one PE of a
// two-cluster machine) through the real VMI TCP transport with the delay
// device injecting a 5ms WAN latency — the same pathway the Table 1/2
// "real latency" experiments use, compressed into one test process.
func TestTwoNodeTCPRuntime(t *testing.T) {
	const lat = 5 * time.Millisecond
	const rounds = 3
	topo, err := topology.TwoClusters(2, lat)
	if err != nil {
		t.Fatal(err)
	}
	RegisterPayload(int(0))

	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						n := data.(int)
						if n >= 2*rounds {
							// Ends on element 0 (node 0) because 2*rounds is even.
							ctx.ExitWith(n)
							return
						}
						ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
		}
	}

	nodeOf := func(pe int) int { return pe } // one PE per node
	routeFn := func(pe int32) int { return int(pe) }

	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{
		{0: "127.0.0.1:0", 1: ""},
		{0: "", 1: "127.0.0.1:0"},
	}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	for node := 0; node < 2; node++ {
		rt, err := NewRuntime(topo, mkProg(),
			WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}))
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}

	type result struct {
		v   any
		err error
	}
	res := make(chan result, 2)
	start := time.Now()
	go func() {
		v, err := rts[1].Run()
		res <- result{v, err}
	}()
	v0, err := rts[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if v0.(int) != 2*rounds {
		t.Errorf("coordinator result = %v, want %d", v0, 2*rounds)
	}
	// The exchange crossed the (delayed) TCP link 2*rounds times.
	if el := time.Since(start); el < time.Duration(2*rounds)*lat {
		t.Errorf("elapsed %v, want >= %v: WAN delay not applied on TCP path", el, time.Duration(2*rounds)*lat)
	}
	// Coordinator announces shutdown (as cmd/gridnode does).
	rts[1].Stop()
	select {
	case r := <-res:
		if r.err != nil {
			t.Errorf("worker node error: %v", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker node never stopped")
	}
}
