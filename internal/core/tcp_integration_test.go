package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// TestTwoNodeTCPRuntime wires two Runtimes (each hosting one PE of a
// two-cluster machine) through the real VMI TCP transport with the delay
// device injecting a 5ms WAN latency — the same pathway the Table 1/2
// "real latency" experiments use, compressed into one test process.
func TestTwoNodeTCPRuntime(t *testing.T) {
	const lat = 5 * time.Millisecond
	const rounds = 3
	topo, err := topology.TwoClusters(2, lat)
	if err != nil {
		t.Fatal(err)
	}
	RegisterPayload(int(0))

	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						n := data.(int)
						if n >= 2*rounds {
							// Ends on element 0 (node 0) because 2*rounds is even.
							ctx.ExitWith(n)
							return
						}
						ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
		}
	}

	nodeOf := func(pe int) int { return pe } // one PE per node
	routeFn := func(pe int32) int { return int(pe) }

	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{
		{0: "127.0.0.1:0", 1: ""},
		{0: "", 1: "127.0.0.1:0"},
	}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	for node := 0; node < 2; node++ {
		rt, err := NewRuntime(topo, mkProg(),
			WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}))
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}

	type result struct {
		v   any
		err error
	}
	res := make(chan result, 2)
	start := time.Now()
	go func() {
		v, err := rts[1].Run()
		res <- result{v, err}
	}()
	v0, err := rts[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if v0.(int) != 2*rounds {
		t.Errorf("coordinator result = %v, want %d", v0, 2*rounds)
	}
	// The exchange crossed the (delayed) TCP link 2*rounds times.
	if el := time.Since(start); el < time.Duration(2*rounds)*lat {
		t.Errorf("elapsed %v, want >= %v: WAN delay not applied on TCP path", el, time.Duration(2*rounds)*lat)
	}
	// Coordinator announces shutdown (as cmd/gridnode does).
	rts[1].Stop()
	select {
	case r := <-res:
		if r.err != nil {
			t.Errorf("worker node error: %v", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker node never stopped")
	}
}

// TestTwoNodeTCPCausality runs the same two-node ping-pong with a tracer on
// each node and checks that causal trace context survives the TCP hop: the
// enqueue and begin events recorded on the remote node carry the message ID
// the sending node assigned (node 0 seeds IDs with high bits 0, node 1 with
// node<<48, so provenance is visible in the ID itself).
func TestTwoNodeTCPCausality(t *testing.T) {
	const rounds = 3
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	RegisterPayload(int(0))

	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						n := data.(int)
						if n >= 2*rounds {
							ctx.ExitWith(n)
							return
						}
						ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
		}
	}

	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }

	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	var trs [2]*trace.Tracer
	addrs := []map[int]string{
		{0: "127.0.0.1:0", 1: ""},
		{0: "", 1: "127.0.0.1:0"},
	}
	for node := 0; node < 2; node++ {
		node := node
		trs[node] = trace.New(2)
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()
	defer tcps[1].Close()

	for node := 0; node < 2; node++ {
		rt, err := NewRuntime(topo, mkProg(),
			WithTrace(trs[node]),
			WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}))
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}

	done := make(chan error, 1)
	go func() {
		_, err := rts[1].Run()
		done <- err
	}()
	if _, err := rts[0].Run(); err != nil {
		t.Fatal(err)
	}
	rts[1].Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker node: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker node never stopped")
	}

	// IDs assigned on node 0 have high bits 0; on node 1, 1<<48.
	fromNode := func(id uint64) int { return int(id >> 48) }

	sent0 := map[uint64]bool{}
	for _, ev := range trs[0].Events() {
		if ev.Kind == trace.EvSend && ev.MsgID != 0 {
			sent0[ev.MsgID] = true
		}
	}
	if len(sent0) == 0 {
		t.Fatal("node 0 recorded no sends")
	}

	var remoteEnq, remoteBegin int
	for _, ev := range trs[1].Events() {
		if ev.MsgID == 0 || fromNode(ev.MsgID) != 0 {
			continue // locally assigned or untraced
		}
		switch ev.Kind {
		case trace.EvEnqueue:
			remoteEnq++
			if !sent0[ev.MsgID] {
				t.Errorf("remote enqueue carries ID %#x never sent by node 0", ev.MsgID)
			}
		case trace.EvBegin:
			remoteBegin++
			if !sent0[ev.MsgID] {
				t.Errorf("remote begin carries ID %#x never sent by node 0", ev.MsgID)
			}
		}
	}
	if remoteEnq < rounds || remoteBegin < rounds {
		t.Errorf("node 1 saw %d enqueues / %d begins with node-0 IDs, want >= %d each",
			remoteEnq, remoteBegin, rounds)
	}
}
