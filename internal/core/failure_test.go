package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// TestTransportFailureSurfaces injects one transport-layer fault per case
// into a two-node ping-pong — a dead peer (writer errors), wire garbage
// that breaks the VMI framing (reader errors), and per-frame payload
// corruption that breaks message decoding — and checks the surviving node
// reports an error instead of hanging or silently dropping work. This is
// the PR 1 fail-fast contract; the reliability layer's chaos tests
// (chaos_test.go) cover the opposite regime, where the same faults are
// absorbed and repaired.
func TestTransportFailureSurfaces(t *testing.T) {
	cases := []struct {
		name string
		// wireSend returns extra devices for a node's wire send chain.
		wireSend func(node int) []vmi.SendDevice
		// fault, if non-nil, is fired after the exchange is flowing —
		// unless preStart is set, in which case it fires before node 0
		// starts, so node 0's first remote send meets the fault head-on.
		fault    func(t *testing.T, tcps [2]*vmi.TCP, rts [2]*Runtime)
		preStart bool
	}{
		{
			// Node 1's process dies before node 0 ever talks to it: the
			// first remote send exhausts its dial attempts and fails the
			// run. (A chare quietly awaiting a reply from a dead peer is
			// a hang by design — the error must come from the send path.)
			name:     "peer transport death",
			preStart: true,
			fault: func(t *testing.T, tcps [2]*vmi.TCP, rts [2]*Runtime) {
				tcps[1].Close()
				rts[1].Stop()
			},
		},
		{
			// Garbage bytes in the TCP stream: node 0's frame reader hits
			// a bad magic and the connection is unrecoverable.
			name: "wire corruption breaks framing",
			fault: func(t *testing.T, tcps [2]*vmi.TCP, rts [2]*Runtime) {
				if err := tcps[1].CorruptWire(0); err != nil {
					t.Errorf("CorruptWire: %v", err)
				}
			},
		},
		{
			// Every frame node 1 sends has one body bit flipped (seeded,
			// deterministic): the message header or payload fails to
			// decode on node 0 within a few frames, surfacing through the
			// deliver error path. No explicit fault action needed.
			name: "frame corruption fails decode",
			wireSend: func(node int) []vmi.SendDevice {
				if node != 1 {
					return nil
				}
				return []vmi.SendDevice{vmi.NewFaultDevice(424242, vmi.FaultPlan{Corrupt: 1})}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := topology.TwoClusters(2, 5*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			// Endless ping-pong: the run can only end with an error.
			mkProg := func() *Program {
				return &Program{
					Arrays: []ArraySpec{{
						ID: 0, N: 2,
						New: func(i int) Chare {
							return funcChare(func(ctx *Ctx, entry EntryID, data any) {
								n := data.(int)
								ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
							})
						},
					}},
					Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
				}
			}
			nodeOf := func(pe int) int { return pe }
			routeFn := func(pe int32) int { return int(pe) }
			var rts [2]*Runtime
			var tcps [2]*vmi.TCP
			addrs := []map[int]string{{0: "127.0.0.1:0"}, {1: "127.0.0.1:0"}}
			for node := 0; node < 2; node++ {
				node := node
				tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
					return rts[node].InjectFrame(f)
				})
				tcps[node].DialAttempts = 2 // fail fast after the peer dies
			}
			a0, err := tcps[0].Listen()
			if err != nil {
				t.Fatal(err)
			}
			a1, err := tcps[1].Listen()
			if err != nil {
				t.Fatal(err)
			}
			tcps[0].SetAddr(1, a1)
			tcps[1].SetAddr(0, a0)
			defer tcps[0].Close()

			for node := 0; node < 2; node++ {
				var ws []vmi.SendDevice
				if tc.wireSend != nil {
					ws = tc.wireSend(node)
				}
				rt, err := NewRuntime(topo, mkProg(),
					WithCluster(ClusterConfig{Transport: tcps[node], NodeOf: nodeOf, Node: node, PELo: node, PEHi: node + 1}),
					WithWireDevices(ws, nil))
				if err != nil {
					t.Fatal(err)
				}
				rts[node] = rt
			}

			node1Done := make(chan struct{})
			go func() {
				_, _ = rts[1].Run()
				close(node1Done)
			}()

			res := make(chan error, 1)
			startNode0 := func() {
				go func() {
					_, err := rts[0].Run()
					res <- err
				}()
			}
			if tc.preStart {
				time.Sleep(60 * time.Millisecond)
				tc.fault(t, tcps, rts)
				startNode0()
			} else {
				startNode0()
				// Let a few rounds flow before firing the fault.
				if tc.fault != nil {
					time.Sleep(60 * time.Millisecond)
					tc.fault(t, tcps, rts)
				}
			}

			select {
			case err := <-res:
				if err == nil {
					t.Error("surviving node returned success after transport fault")
				} else {
					t.Logf("surfaced: %v", err)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("surviving node hung after transport fault")
			}
			rts[1].Stop()
			select {
			case <-node1Done:
			case <-time.After(10 * time.Second):
				t.Fatal("node 1 never stopped")
			}
			tcps[1].Close()
		})
	}
}
