package core

import (
	"testing"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// TestTransportFailureSurfaces kills one node's transport mid-run and
// checks the surviving node reports an error instead of hanging or
// silently dropping work.
func TestTransportFailureSurfaces(t *testing.T) {
	topo, err := topology.TwoClusters(2, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mkProg := func() *Program {
		return &Program{
			Arrays: []ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) Chare {
					return funcChare(func(ctx *Ctx, entry EntryID, data any) {
						n := data.(int)
						if n >= 1000 { // far more rounds than the test allows
							ctx.ExitWith(n)
							return
						}
						ctx.Send(ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
					})
				},
			}},
			Start: func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, 0) },
		}
	}
	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	var rts [2]*Runtime
	var tcps [2]*vmi.TCP
	addrs := []map[int]string{{0: "127.0.0.1:0"}, {1: "127.0.0.1:0"}}
	for node := 0; node < 2; node++ {
		node := node
		tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, func(f *vmi.Frame) error {
			return rts[node].InjectFrame(f)
		})
		tcps[node].DialAttempts = 2 // fail fast after the peer dies
	}
	a0, err := tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	tcps[0].SetAddr(1, a1)
	tcps[1].SetAddr(0, a0)
	defer tcps[0].Close()

	for node := 0; node < 2; node++ {
		rt, err := NewRuntime(topo, mkProg(), Options{
			Transport: tcps[node], NodeOf: nodeOf, Node: node,
			PELo: node, PEHi: node + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rts[node] = rt
	}

	node1Done := make(chan struct{})
	go func() {
		_, _ = rts[1].Run()
		close(node1Done)
	}()

	// Let a few rounds flow, then kill node 1's transport and stop its
	// runtime (simulating a crashed remote cluster allocation).
	time.Sleep(60 * time.Millisecond)
	tcps[1].Close()
	rts[1].Stop()

	res := make(chan error, 1)
	go func() {
		_, err := rts[0].Run()
		res <- err
	}()
	select {
	case err := <-res:
		if err == nil {
			t.Error("surviving node returned success after peer death")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("surviving node hung after peer death")
	}
	<-node1Done
}
