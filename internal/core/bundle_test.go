package core

import "testing"

func TestBundleEligibility(t *testing.T) {
	cases := []struct {
		m    Message
		want bool
	}{
		{Message{Kind: KindApp, Prio: 0, SrcPE: 0, DstPE: 1}, true},
		{Message{Kind: KindApp, Prio: -1, SrcPE: 0, DstPE: 1}, false}, // prioritized
		{Message{Kind: KindApp, Prio: 0, SrcPE: 2, DstPE: 2}, false},  // self
		{Message{Kind: KindReduce, Prio: 0, SrcPE: 0, DstPE: 1}, false},
		{Message{Kind: KindQD, Prio: 0, SrcPE: 0, DstPE: 1}, false},
	}
	for i, c := range cases {
		if got := BundleEligible(&c.m); got != c.want {
			t.Errorf("case %d: eligible = %v, want %v", i, got, c.want)
		}
	}
}

func TestPendingBundlesDrainOrder(t *testing.T) {
	p := NewPendingBundles()
	if !p.Empty() {
		t.Fatal("new accumulator not empty")
	}
	for _, dst := range []int32{5, 2, 5, 9, 2, 2} {
		p.Add(&Message{Kind: KindApp, DstPE: dst, Bytes: 10})
	}
	if p.Empty() || !p.Has(5) || p.Has(7) {
		t.Fatal("accumulator state wrong")
	}
	groups := p.Drain()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Ascending destination order, FIFO within a group.
	wantDst := []int32{2, 5, 9}
	wantLen := []int{3, 2, 1}
	for i, g := range groups {
		if g[0].DstPE != wantDst[i] || len(g) != wantLen[i] {
			t.Errorf("group %d: dst=%d len=%d", i, g[0].DstPE, len(g))
		}
	}
	if !p.Empty() {
		t.Error("drain did not reset")
	}
	if p.Drain() != nil {
		t.Error("drain of empty accumulator returned groups")
	}
}

func TestMakeBundle(t *testing.T) {
	single := []*Message{{Kind: KindApp, SrcPE: 1, DstPE: 2, Bytes: 100}}
	if got := MakeBundle(single); got != single[0] {
		t.Error("singleton group should pass through unchanged")
	}
	group := []*Message{
		{Kind: KindApp, SrcPE: 1, DstPE: 2, Bytes: 100},
		{Kind: KindApp, SrcPE: 1, DstPE: 2, Bytes: 50},
	}
	b := MakeBundle(group)
	if b.Kind != KindBundle || b.SrcPE != 1 || b.DstPE != 2 {
		t.Errorf("bundle header wrong: %+v", b)
	}
	if b.Bytes != 100+50+2*bundleHeaderBytes {
		t.Errorf("bundle bytes = %d", b.Bytes)
	}
	subs := BundleMessages(b)
	if len(subs) != 2 || subs[0].Bytes != 100 {
		t.Errorf("bundle contents wrong: %v", subs)
	}
}

// TestBundleOverTCP exercises the gob path for bundled frames between
// process-separated runtimes.
func TestBundleOverTCP(t *testing.T) {
	in := MakeBundle([]*Message{
		{Kind: KindApp, To: ElemRef{0, 1}, SrcPE: 0, DstPE: 1, Data: "a", Bytes: 10},
		{Kind: KindApp, To: ElemRef{0, 2}, SrcPE: 0, DstPE: 1, Data: "b", Bytes: 20},
	})
	enc, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindBundle {
		t.Fatalf("kind = %d", out.Kind)
	}
	subs := BundleMessages(out)
	if len(subs) != 2 || subs[0].Data != "a" || subs[1].Data != "b" {
		t.Errorf("decoded bundle contents: %v", subs)
	}
}
