package core

import (
	"fmt"
	"time"
)

// PEHost is the per-PE element container shared by both executors: it owns
// the chare instances living on one PE, their runtime metadata, and all
// handler dispatch (and therefore all Ctx construction). Executors feed it
// messages one at a time; PEHost itself is not goroutine-safe and must
// only be touched by its PE's scheduler (or the single simulator thread).
type PEHost struct {
	b     Backend
	pe    int
	elems map[ElemRef]Chare
	meta  map[ElemRef]*elemMeta

	// parked buffers application messages addressed to an element that is
	// at a load-balancing sync. Without this, an element whose neighbors
	// resume earlier (resume broadcasts race application traffic once
	// migration messages carry real payloads) can be driven past the sync
	// point before its own resume arrives, deadlocking the exchange.
	// Buffered messages replay in arrival order on ResumeFromSync.
	parked map[ElemRef][]*Message

	// MeasureWall, when set (real-time runtime), adds the wall-clock
	// duration of each handler to the element's measured load, in addition
	// to any explicitly charged time.
	MeasureWall bool

	// cold, when non-nil, bounds the constructed element set: idle
	// elements live as PUP-packed bytes and are hydrated on delivery.
	// See EnableColdStore.
	cold *coldStore
}

// NewPEHost builds an empty host for pe.
func NewPEHost(b Backend, pe int) *PEHost {
	return &PEHost{
		b:      b,
		pe:     pe,
		elems:  make(map[ElemRef]Chare),
		meta:   make(map[ElemRef]*elemMeta),
		parked: make(map[ElemRef][]*Message),
	}
}

// AddElement installs a chare as element ref.
func (h *PEHost) AddElement(ref ElemRef, ch Chare) {
	h.elems[ref] = ch
	h.meta[ref] = &elemMeta{}
	h.coldTouch(ref)
}

// addElementWithMeta reinstalls a migrated element, preserving metadata.
func (h *PEHost) addElementWithMeta(ref ElemRef, ch Chare, m *elemMeta) {
	h.elems[ref] = ch
	h.meta[ref] = m
	h.coldTouch(ref)
}

// removeElement evicts an element, returning its state and metadata. A
// cold (packed) element is hydrated first so the caller always gets a
// constructed chare.
func (h *PEHost) removeElement(ref ElemRef) (Chare, *elemMeta, bool) {
	ch, ok := h.liveOrHydrated(ref)
	if !ok {
		return nil, nil, false
	}
	m := h.meta[ref]
	delete(h.elems, ref)
	delete(h.meta, ref)
	delete(h.parked, ref)
	h.coldForget(ref)
	return ch, m, true
}

// NumElements reports how many elements live on this PE, constructed or
// PUP-packed.
func (h *PEHost) NumElements() int {
	n := len(h.elems)
	if h.cold != nil {
		n += len(h.cold.packed)
	}
	return n
}

// Has reports whether element ref lives on this PE (constructed or
// PUP-packed).
func (h *PEHost) Has(ref ElemRef) bool {
	if _, ok := h.elems[ref]; ok {
		return true
	}
	if h.cold != nil {
		_, ok := h.cold.packed[ref]
		return ok
	}
	return false
}

// DeliverApp dispatches an application message to its target element. A
// message for an element parked at a load-balancing sync is buffered and
// replays after the element resumes.
func (h *PEHost) DeliverApp(m *Message) error {
	ch, ok := h.liveOrHydrated(m.To)
	if !ok {
		if err := h.ColdError(); err != nil {
			return err
		}
		return fmt.Errorf("core: PE %d has no element %v (message %v)", h.pe, m.To, m)
	}
	meta := h.meta[m.To]
	if meta.atSync {
		h.parked[m.To] = append(h.parked[m.To], m)
		return nil
	}
	h.coldTouch(m.To)
	ctx := newCtx(h.b, h.pe, m.To, meta)
	ctx.msgID = m.ID
	h.invoke(ctx, meta, func() { ch.Recv(ctx, m.Entry, m.Data) })
	return h.ColdError()
}

// ParkedMessages reports how many application messages are buffered for
// an element parked at sync.
func (h *PEHost) ParkedMessages(ref ElemRef) int { return len(h.parked[ref]) }

// RunStart executes the program's Start handler (PE 0).
func (h *PEHost) RunStart(prog *Program) {
	ctx := newCtx(h.b, h.pe, NoElem, nil)
	prog.Start(ctx)
}

// RunReduction executes the program's reduction callback (PE 0).
func (h *PEHost) RunReduction(prog *Program, a ArrayID, seq int64, v any) {
	if prog.OnReduction == nil {
		return
	}
	ctx := newCtx(h.b, h.pe, NoElem, nil)
	prog.OnReduction(ctx, a, seq, v)
}

// ResumeFromSync clears an element's at-sync mark, delivers the
// EntryResumeFromSync entry, and then replays any application messages
// that were buffered while the element was parked, in arrival order. If
// the element re-enters sync during replay, the remainder stays parked.
func (h *PEHost) ResumeFromSync(ref ElemRef) error {
	ch, ok := h.liveOrHydrated(ref)
	if !ok {
		if err := h.ColdError(); err != nil {
			return err
		}
		return fmt.Errorf("core: PE %d cannot resume missing element %v", h.pe, ref)
	}
	meta := h.meta[ref]
	meta.atSync = false
	h.coldTouch(ref)
	ctx := newCtx(h.b, h.pe, ref, meta)
	h.invoke(ctx, meta, func() { ch.Recv(ctx, EntryResumeFromSync, nil) })
	for len(h.parked[ref]) > 0 && !meta.atSync {
		m := h.parked[ref][0]
		h.parked[ref] = h.parked[ref][1:]
		if err := h.DeliverApp(m); err != nil {
			return err
		}
	}
	if len(h.parked[ref]) == 0 {
		delete(h.parked, ref)
	}
	return nil
}

func (h *PEHost) invoke(ctx *Ctx, meta *elemMeta, fn func()) {
	if !h.MeasureWall {
		fn()
		return
	}
	start := time.Now()
	fn()
	meta.load += time.Since(start)
}

// AddLoad accounts measured or modeled execution time to an element. The
// virtual-time executor uses it to credit charged time after a handler.
func (h *PEHost) AddLoad(ref ElemRef, d time.Duration) {
	if m, ok := h.meta[ref]; ok {
		m.load += d
	}
}

// StatsAndReset snapshots per-element load statistics for a load-balancing
// round and resets the accumulators.
func (h *PEHost) StatsAndReset(arrays []ArrayID) []ElemLoad {
	want := make(map[ArrayID]bool, len(arrays))
	for _, a := range arrays {
		want[a] = true
	}
	var out []ElemLoad
	for ref, meta := range h.meta {
		if !want[ref.Array] {
			continue
		}
		out = append(out, ElemLoad{
			Ref:     ref,
			PE:      h.pe,
			Load:    meta.load,
			Msgs:    meta.msgs,
			WanMsgs: meta.wanMsg,
		})
		meta.load, meta.msgs, meta.wanMsg = 0, 0, 0
	}
	return out
}

// AllAtSync reports whether every element of the given arrays on this PE
// has called AtSync.
func (h *PEHost) AllAtSync(arrays []ArrayID) bool {
	want := make(map[ArrayID]bool, len(arrays))
	for _, a := range arrays {
		want[a] = true
	}
	for ref, meta := range h.meta {
		if want[ref.Array] && !meta.atSync {
			return false
		}
	}
	return true
}
