package core

// StepGate captures the dependence pattern at the heart of iterative
// message-driven applications (and of the paper's latency-masking
// argument): an object may advance to step s+1 only after receiving a
// fixed number of messages tagged with step s, while messages for future
// steps — which arrive early precisely because neighbors are allowed to
// run ahead — must be buffered, not dropped. It plays the role a
// structured-dagger "when" clause plays in Charm++.
//
// Usage, inside a chare's Recv:
//
//	if vals, ok := gate.Deliver(msg.Step, msg); ok {
//	    apply(vals...)
//	    for gate.Ready() {
//	        compute()
//	        for _, m := range gate.Advance() { apply(m) }
//	    }
//	}
//
// StepGate is not goroutine-safe; like all chare state it belongs to one
// element and is touched only by its scheduler.
type StepGate struct {
	step   int
	need   int
	got    int
	future map[int][]any
}

// NewStepGate builds a gate expecting need messages per step.
func NewStepGate(need int) *StepGate {
	return &StepGate{need: need, future: make(map[int][]any)}
}

// Step reports the current step.
func (g *StepGate) Step() int { return g.step }

// Got reports how many of the current step's messages have arrived.
func (g *StepGate) Got() int { return g.got }

// Deliver accepts one message tagged with its step. If the message is for
// the current step it is counted and returned (ok=true); a message for a
// future step is buffered (ok=false). Messages for past steps are a
// protocol error and panic loudly.
func (g *StepGate) Deliver(step int, m any) (any, bool) {
	switch {
	case step == g.step:
		g.got++
		return m, true
	case step > g.step:
		g.future[step] = append(g.future[step], m)
		return nil, false
	}
	panic("core: StepGate received a message for a completed step")
}

// Ready reports whether the current step has all its messages.
func (g *StepGate) Ready() bool { return g.got >= g.need }

// Advance moves to the next step and returns the messages that arrived
// early for it, in arrival order — each is already counted toward the new
// step. Call only when Ready.
func (g *StepGate) Advance() []any {
	if !g.Ready() {
		panic("core: StepGate.Advance before Ready")
	}
	g.step++
	g.got = 0
	pend := g.future[g.step]
	delete(g.future, g.step)
	g.got = len(pend)
	return pend
}

// JumpTo resets the gate to a given step with no messages pending —
// the state a checkpoint captures at a quiescent point.
func (g *StepGate) JumpTo(step int) {
	g.step = step
	g.got = 0
	g.future = make(map[int][]any)
}

// PendingFuture reports how many messages are buffered for future steps
// (useful for tests and invariant checks).
func (g *StepGate) PendingFuture() int {
	n := 0
	for _, ms := range g.future {
		n += len(ms)
	}
	return n
}
