package core

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"gridmdo/internal/topology"
)

// counterChare is a minimal migratable chare for checkpoint tests. Its
// state restores through the PUP auto-restore path (no Restore needed).
type counterChare struct{ n int64 }

func (c *counterChare) Recv(ctx *Ctx, entry EntryID, data any) {
	c.n++
	ctx.Contribute(float64(c.n), OpSum)
}

func (c *counterChare) PUP(p *PUP) { p.Int64(&c.n) }

func counterProgram(n int) *Program {
	return &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: n,
			New: func(int) Chare { return &counterChare{} },
		}},
		Start: func(ctx *Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(ElemRef{0, i}, 0, nil)
			}
		},
		OnReduction: func(ctx *Ctx, a ArrayID, seq int64, v any) { ctx.ExitWith(v) },
	}
}

func TestRuntimeCheckpointRoundTrip(t *testing.T) {
	topo := mustTopo(t, 4, 0)
	rt, err := NewRuntime(topo, counterProgram(6))
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 6 { // each of 6 counters at 1
		t.Fatalf("first run sum %v", v)
	}
	ck, err := rt.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Restart on a different PE count; counters continue from 1 to 2.
	prog2 := counterProgram(6)
	if err := ck2.Install(prog2); err != nil {
		t.Fatal(err)
	}
	topo2, err := topology.Single(2)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(topo2, prog2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rt2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v2.(float64) != 12 { // each counter now at 2
		t.Errorf("restarted sum %v, want 12", v2)
	}
}

func TestCheckpointRequiresMigratable(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	prog := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 1, New: func(int) Chare { return funcChare(func(ctx *Ctx, e EntryID, d any) { ctx.Exit() }) }}},
		Start:  func(ctx *Ctx) { ctx.Send(ElemRef{0, 0}, 0, nil) },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Checkpoint(); err == nil {
		t.Error("non-migratable elements checkpointed")
	}
}

func TestCheckpointInstallValidation(t *testing.T) {
	ck := &Checkpoint{Arrays: []ArrayState{{ID: 0, N: 3}}}
	wrongSize := counterProgram(5)
	if err := ck.Install(wrongSize); err == nil {
		t.Error("size mismatch accepted")
	}
	// With no Restore constructor the fallback is PUP auto-restore; a
	// chare type with neither surfaces as a construction error.
	hopeless := &Program{
		Arrays: []ArraySpec{{ID: 0, N: 3, New: func(int) Chare { return funcChare(func(*Ctx, EntryID, any) {}) }}},
		Start:  func(*Ctx) {},
	}
	ckFull := &Checkpoint{Arrays: []ArrayState{{ID: 0, N: 3, Elems: []ElemState{
		{Index: 0}, {Index: 1}, {Index: 2},
	}}}}
	if err := ckFull.Install(hopeless); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := NewRuntime(mustTopo(t, 2, 0), hopeless); err == nil {
		t.Error("restore of non-PUPable, Restore-less elements constructed")
	}
	// Arrays absent from the checkpoint keep their constructors.
	extra := &Program{
		Arrays: []ArraySpec{
			{ID: 0, N: 3, New: func(int) Chare { return &counterChare{} }},
			{ID: 1, N: 2, New: func(int) Chare { return &counterChare{} }},
		},
		Start: func(*Ctx) {},
	}
	ck2 := &Checkpoint{Arrays: []ArrayState{{ID: 0, N: 3, Elems: []ElemState{
		{Index: 0, Data: make([]byte, 8)},
		{Index: 1, Data: make([]byte, 8)},
		{Index: 2, Data: make([]byte, 8)},
	}}}}
	if err := ck2.Install(extra); err != nil {
		t.Errorf("install with extra array failed: %v", err)
	}
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage checkpoint decoded")
	}
}

func TestMergeCheckpoints(t *testing.T) {
	part := func(n int, idxs ...int) *Checkpoint {
		st := ArrayState{ID: 0, N: n}
		for _, i := range idxs {
			st.Elems = append(st.Elems, ElemState{Index: i, Data: []byte{byte(i)}})
		}
		return &Checkpoint{Arrays: []ArrayState{st}, Partial: true}
	}

	ck, err := MergeCheckpoints(part(4, 1, 3), part(4, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Partial {
		t.Error("merged checkpoint still marked partial")
	}
	if len(ck.Arrays) != 1 || len(ck.Arrays[0].Elems) != 4 {
		t.Fatalf("merged shape: %+v", ck)
	}
	for i, e := range ck.Arrays[0].Elems {
		if e.Index != i || e.Data[0] != byte(i) {
			t.Errorf("element %d merged as index %d data %v", i, e.Index, e.Data)
		}
	}

	if _, err := MergeCheckpoints(part(4, 0, 1), part(4, 1, 2)); err == nil {
		t.Error("duplicate element accepted")
	}
	if _, err := MergeCheckpoints(part(4, 0, 1), part(4, 2)); err == nil {
		t.Error("incomplete merge accepted")
	}
	if _, err := MergeCheckpoints(part(4, 0, 1), part(5, 2, 3)); err == nil {
		t.Error("conflicting array sizes accepted")
	}
	if _, err := MergeCheckpoints(); err == nil {
		t.Error("empty merge accepted")
	}

	// A partial checkpoint must not install.
	err = part(4, 0).Install(counterProgram(4))
	if err == nil || !strings.Contains(err.Error(), "partial") {
		t.Errorf("partial install: %v", err)
	}
}

func TestCtxAccessorsAndBroadcast(t *testing.T) {
	topo := mustTopo(t, 2, 0)
	var hits atomic.Int64
	prog := &Program{
		Arrays: []ArraySpec{{
			ID: 0, N: 4,
			New: func(i int) Chare {
				return funcChare(func(ctx *Ctx, e EntryID, d any) {
					n := hits.Add(1)
					if ctx.NumPE() != 2 {
						t.Errorf("NumPE = %d", ctx.NumPE())
					}
					if ctx.Topo() == nil {
						t.Error("nil Topo")
					}
					if ctx.ArrayN(0) != 4 {
						t.Errorf("ArrayN = %d", ctx.ArrayN(0))
					}
					ctx.Charge(0) // no-op on the real-time runtime
					if n == 4 {
						ctx.Exit()
					}
				})
			},
		}},
		Start: func(ctx *Ctx) { ctx.Broadcast(0, 0, "hello") },
	}
	rt, err := NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := rt.Run(); err != nil || v != nil {
		t.Fatalf("run: v=%v err=%v", v, err)
	}
	if hits.Load() != 4 {
		t.Errorf("broadcast reached %d elements", hits.Load())
	}
}

func TestReduceOpStrings(t *testing.T) {
	for _, op := range []ReduceOp{OpSum, OpMax, OpMin, ReduceOp(77)} {
		if op.String() == "" {
			t.Errorf("empty string for op %d", op)
		}
	}
}

func TestCombineMaxMinFloat(t *testing.T) {
	if Combine(OpMax, 1.0, 2.0).(float64) != 2.0 {
		t.Error("max wrong")
	}
	if Combine(OpMin, 1.0, 2.0).(float64) != 1.0 {
		t.Error("min wrong")
	}
	if Combine(OpMax, 5.0, 3.0).(float64) != 5.0 {
		t.Error("max order wrong")
	}
	if Combine(OpMin, 5.0, 3.0).(float64) != 3.0 {
		t.Error("min order wrong")
	}
}
