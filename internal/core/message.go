package core

import (
	"fmt"
	"time"
)

// Kind classifies messages flowing through an executor.
type Kind uint8

// Message kinds. Application messages target array elements; the others
// target PEs and carry runtime protocol payloads.
const (
	KindApp    Kind = iota // entry-method invocation on an array element
	KindStart              // run Program.Start on PE 0
	KindReduce             // reduction partial bound for the root PE
	KindLB                 // load-balancing protocol (stats, apply, resume)
	KindQD                 // quiescence-detection probe/reply
	KindBundle             // several same-destination app messages in one frame
	KindStop               // scheduler shutdown (real-time runtime only)
	KindMember             // membership recovery: (re)construct an element locally
)

// Message is the unit of work executors schedule. Exactly one of (To,
// Entry) — for KindApp — or DstPE is meaningful for routing; the router
// fills DstPE for app messages from the location table.
type Message struct {
	Kind  Kind
	To    ElemRef
	Entry EntryID
	Data  any

	// Prio orders delivery: smaller values are delivered first; equal
	// values are FIFO. Application default is 0.
	Prio int32

	// Bytes is the modeled payload size used by the link model.
	Bytes int

	SrcPE int32
	DstPE int32

	// ID identifies the message in the causal trace DAG. The executor
	// assigns it at routing time (node-unique: the runtime seeds the
	// counter with the node number in the high 16 bits) and the wire codec
	// carries it, so a remote enqueue still links to the local send.
	// Zero means untraced.
	ID uint64

	// Parent is the ID of the message whose handler sent this one — the
	// causal edge critical-path analysis walks. Zero at DAG roots (the
	// start message, sends from outside any handler).
	Parent uint64

	// EnqueuedAt is the executor time at which the message became
	// deliverable at the destination (set by executors; used for tracing).
	EnqueuedAt time.Duration

	seq uint64 // assigned by the executor for FIFO tie-breaking
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{kind=%d %v e%d prio=%d %d->%d}", m.Kind, m.To, m.Entry, m.Prio, m.SrcPE, m.DstPE)
}

// SendOpt customizes a single send.
type SendOpt func(*Message)

// WithPrio sets the delivery priority (smaller = sooner).
func WithPrio(p int32) SendOpt { return func(m *Message) { m.Prio = p } }

// WithBytes overrides the modeled payload size.
func WithBytes(n int) SendOpt { return func(m *Message) { m.Bytes = n } }

// payloadBytes models the wire size of a payload.
func payloadBytes(data any) int {
	if s, ok := data.(Sizer); ok {
		return s.PayloadBytes()
	}
	return DefaultPayloadBytes
}
