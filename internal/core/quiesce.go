package core

import (
	"sync/atomic"
	"time"
)

// Quiescence detection: a wave-based double-count protocol in the style
// of Charm++'s CkStartQD / Mattern's four-counter algorithm. The root
// (PE 0) periodically probes every PE; each PE replies — from its own
// scheduler, so the numbers are coherent with its message processing —
// with its cumulative sent and processed counts (QD traffic excluded).
// The system is quiescent when two consecutive waves observe the same
// totals with sent == processed: every message ever routed (including
// frames sitting in delay devices or on TCP links) has been processed,
// and nothing new happened between the waves.
//
// Because probes and replies are ordinary messages, the protocol works
// unchanged when PEs span OS processes.

// qdMsg is the KindQD payload.
type qdMsg struct {
	Probe     bool
	Wave      int64
	Sent      int64 // reply: messages this PE has routed
	Processed int64 // reply: non-QD messages this PE has completed
}

// PayloadBytes implements Sizer.
func (qdMsg) PayloadBytes() int { return 40 }

// qdRoot drives waves on PE 0.
type qdRoot struct {
	wave     int64
	replies  int
	sent     int64
	procd    int64
	prevSent int64
	prevProc int64
	havePrev bool
}

// qdWaveInterval paces waves so detection traffic stays negligible next
// to application traffic.
const qdWaveInterval = 300 * time.Microsecond

// startQDWave sends a probe to every PE (including PE 0 itself).
func (rt *Runtime) startQDWave() {
	rt.qd.wave++
	rt.qd.replies = 0
	rt.qd.sent = 0
	rt.qd.procd = 0
	for pe := 0; pe < rt.topo.NumPE(); pe++ {
		rt.Route(&Message{
			Kind:  KindQD,
			SrcPE: 0,
			DstPE: int32(pe),
			Data:  qdMsg{Probe: true, Wave: rt.qd.wave},
			Bytes: qdMsg{}.PayloadBytes(),
		})
	}
}

// handleQD processes a probe (any PE) or a reply (root).
func (rt *Runtime) handleQD(ps *peState, m *Message) error {
	q, ok := m.Data.(qdMsg)
	if !ok {
		return errBadQDPayload
	}
	if q.Probe {
		rt.Route(&Message{
			Kind:  KindQD,
			SrcPE: int32(ps.id),
			DstPE: 0,
			Data: qdMsg{
				Wave:      q.Wave,
				Sent:      rt.sentByPE[ps.id].Load(),
				Processed: rt.processedByPE[ps.id].Load(),
			},
			Bytes: qdMsg{}.PayloadBytes(),
		})
		return nil
	}
	// Reply at the root. Late replies from superseded waves are dropped.
	if q.Wave != rt.qd.wave {
		return nil
	}
	rt.qd.replies++
	rt.qd.sent += q.Sent
	rt.qd.procd += q.Processed
	if rt.qd.replies < rt.topo.NumPE() {
		return nil
	}
	quiet := rt.qd.sent == rt.qd.procd &&
		rt.qd.havePrev &&
		rt.qd.sent == rt.qd.prevSent &&
		rt.qd.procd == rt.qd.prevProc
	if quiet {
		rt.ExitWith(nil)
		return nil
	}
	rt.qd.prevSent, rt.qd.prevProc, rt.qd.havePrev = rt.qd.sent, rt.qd.procd, true
	// Pace the next wave; the timer goroutine routes the probes, which is
	// safe because Route is concurrency-safe in the real-time runtime.
	time.AfterFunc(qdWaveInterval, func() {
		select {
		case <-rt.exitCh:
		default:
			rt.startQDWave()
		}
	})
	return nil
}

var errBadQDPayload = qdError("core: KindQD message with unexpected payload")

type qdError string

func (e qdError) Error() string { return string(e) }

// qdCounters bundles the per-PE counters the protocol reads.
type qdCounters struct {
	sent      []atomic.Int64
	processed []atomic.Int64
}
