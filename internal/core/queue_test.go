package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFOWithinPriority(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(&Message{Entry: EntryID(i)})
	}
	for i := 0; i < 10; i++ {
		m := q.TryPop()
		if m == nil || m.Entry != EntryID(i) {
			t.Fatalf("pop %d: got %v", i, m)
		}
	}
	if q.TryPop() != nil {
		t.Fatal("pop from empty queue returned a message")
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue()
	q.Push(&Message{Prio: 0, Entry: 1})
	q.Push(&Message{Prio: -5, Entry: 2})
	q.Push(&Message{Prio: 3, Entry: 3})
	q.Push(&Message{Prio: -5, Entry: 4})
	want := []EntryID{2, 4, 1, 3}
	for i, w := range want {
		m := q.TryPop()
		if m.Entry != w {
			t.Fatalf("pop %d: entry %d, want %d", i, m.Entry, w)
		}
	}
}

// Property: for any sequence of priorities, popping yields priorities in
// non-decreasing order, and equal priorities preserve push order.
func TestQueueOrderProperty(t *testing.T) {
	prop := func(prios []int8) bool {
		q := NewQueue()
		for i, p := range prios {
			q.Push(&Message{Prio: int32(p), Entry: EntryID(i)})
		}
		var got []*Message
		for m := q.TryPop(); m != nil; m = q.TryPop() {
			got = append(got, m)
		}
		if len(got) != len(prios) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Prio < got[i-1].Prio {
				return false
			}
			if got[i].Prio == got[i-1].Prio && got[i].Entry < got[i-1].Entry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue()
	done := make(chan *Message, 1)
	go func() { done <- q.Pop() }()
	select {
	case <-done:
		t.Fatal("Pop returned without a message")
	case <-time.After(10 * time.Millisecond):
	}
	q.Push(&Message{Entry: 7})
	select {
	case m := <-done:
		if m.Entry != 7 {
			t.Fatalf("got entry %d", m.Entry)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never unblocked")
	}
}

func TestQueueCloseUnblocksAndDrains(t *testing.T) {
	q := NewQueue()
	q.Push(&Message{Entry: 1})
	q.Close()
	if m := q.Pop(); m == nil || m.Entry != 1 {
		t.Fatalf("closed queue did not drain: %v", m)
	}
	if m := q.Pop(); m != nil {
		t.Fatalf("pop after drain returned %v", m)
	}
	// Pushing to a closed queue is a silent no-op.
	q.Push(&Message{Entry: 2})
	if q.Len() != 0 {
		t.Error("push after close enqueued")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProducer; i++ {
				q.Push(&Message{Prio: int32(rng.Intn(5)), Entry: EntryID(p*perProducer + i)})
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[EntryID]bool)
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				m := q.Pop()
				if m == nil {
					return
				}
				mu.Lock()
				if seen[m.Entry] {
					t.Errorf("duplicate delivery of %d", m.Entry)
				}
				seen[m.Entry] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Errorf("delivered %d messages, want %d", len(seen), producers*perProducer)
	}
}

// TestQueuePopBatchOrdering: a batch drain observes the same global
// (Prio, seq) order as repeated single pops, merging both lanes.
func TestQueuePopBatchOrdering(t *testing.T) {
	q := NewQueue()
	q.Push(&Message{Prio: 0, Entry: 1})
	q.Push(&Message{Prio: -5, Entry: 2})
	q.Push(&Message{Prio: 0, Entry: 3})
	q.Push(&Message{Prio: 3, Entry: 4})
	q.Push(&Message{Prio: -5, Entry: 5})
	batch := q.PopBatch(make([]*Message, 0, 8))
	want := []EntryID{2, 5, 1, 3, 4}
	if len(batch) != len(want) {
		t.Fatalf("batch of %d, want %d", len(batch), len(want))
	}
	for i, w := range want {
		if batch[i].Entry != w {
			t.Fatalf("batch[%d]: entry %d, want %d", i, batch[i].Entry, w)
		}
	}
}

// TestQueuePopBatchCapacityBound: PopBatch never exceeds the spare
// capacity of into, and leaves the remainder queued.
func TestQueuePopBatchCapacityBound(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(&Message{Entry: EntryID(i)})
	}
	batch := q.PopBatch(make([]*Message, 0, 4))
	if len(batch) != 4 {
		t.Fatalf("batch of %d, want 4", len(batch))
	}
	if q.Len() != 6 {
		t.Fatalf("queue holds %d, want 6", q.Len())
	}
	for i, m := range batch {
		if m.Entry != EntryID(i) {
			t.Fatalf("batch[%d]: entry %d", i, m.Entry)
		}
	}
	// A full slice still yields one message so the scheduler always
	// makes progress.
	one := q.PopBatch(make([]*Message, 0))
	if len(one) != 1 || one[0].Entry != 4 {
		t.Fatalf("zero-capacity batch: %v", one)
	}
}

// TestQueuePopBatchBlocksAndCloses: PopBatch blocks on empty like Pop,
// wakes on push, and returns an empty slice once closed and drained.
func TestQueuePopBatchBlocksAndCloses(t *testing.T) {
	q := NewQueue()
	done := make(chan []*Message, 1)
	go func() { done <- q.PopBatch(make([]*Message, 0, 8)) }()
	select {
	case <-done:
		t.Fatal("PopBatch returned without a message")
	case <-time.After(10 * time.Millisecond):
	}
	q.Push(&Message{Entry: 9})
	select {
	case batch := <-done:
		if len(batch) != 1 || batch[0].Entry != 9 {
			t.Fatalf("got %v", batch)
		}
	case <-time.After(time.Second):
		t.Fatal("PopBatch never unblocked")
	}
	q.Close()
	if batch := q.PopBatch(make([]*Message, 0, 8)); len(batch) != 0 {
		t.Fatalf("closed+drained queue returned %v", batch)
	}
}

// Property: splitting a workload into arbitrary-size batch drains yields
// the same order as single pops.
func TestQueuePopBatchEquivalenceProperty(t *testing.T) {
	prop := func(prios []int8, caps []uint8) bool {
		single, batched := NewQueue(), NewQueue()
		for i, p := range prios {
			single.Push(&Message{Prio: int32(p), Entry: EntryID(i)})
			batched.Push(&Message{Prio: int32(p), Entry: EntryID(i)})
		}
		single.Close()
		batched.Close()
		var a, b []*Message
		for m := single.Pop(); m != nil; m = single.Pop() {
			a = append(a, m)
		}
		ci := 0
		for {
			c := 1
			if len(caps) > 0 {
				c = int(caps[ci%len(caps)])%8 + 1
				ci++
			}
			batch := batched.PopBatch(make([]*Message, 0, c))
			if len(batch) == 0 {
				break
			}
			b = append(b, batch...)
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Entry != b[i].Entry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockMapCoversAllPEs(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{16, 4}, {7, 3}, {64, 64}, {3, 8}} {
		counts := make([]int, tc.p)
		for i := 0; i < tc.n; i++ {
			pe := BlockMap(i, tc.n, tc.p)
			if pe < 0 || pe >= tc.p {
				t.Fatalf("BlockMap(%d,%d,%d) = %d out of range", i, tc.n, tc.p, pe)
			}
			counts[pe]++
		}
		// Block mapping is contiguous and monotone.
		last := 0
		for i := 0; i < tc.n; i++ {
			pe := BlockMap(i, tc.n, tc.p)
			if pe < last {
				t.Fatalf("BlockMap not monotone at %d", i)
			}
			last = pe
		}
		sort.Ints(counts)
		if tc.n >= tc.p && counts[0] == 0 {
			t.Errorf("n=%d p=%d: some PE got no elements", tc.n, tc.p)
		}
	}
}
