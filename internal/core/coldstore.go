package core

import (
	"container/list"
	"fmt"
)

// coldStore keeps most of a PE's chare state PUP-packed between events,
// so simulations of millions of elements fit in memory: only a small
// per-PE live set stays constructed, everything else lives as packed
// bytes. An element is hydrated (constructed fresh and unpacked, the same
// round-trip migration uses) when a message arrives for it, and the
// least-recently-used live element is packed back down when the live set
// overflows.
//
// Because PUP pack/unpack is an exact state round-trip (enforced by the
// pack-time symmetry check), a run with a cold store is event-for-event
// identical to one without: only the residency of idle elements changes.
type coldStore struct {
	capacity int
	rebuild  func(ElemRef) (Chare, error) // constructs an empty element (ArraySpec.New)

	packed map[ElemRef][]byte
	lru    *list.List // of ElemRef; front = most recently used live element
	pos    map[ElemRef]*list.Element

	// err is sticky: pack/hydrate failures surface on the next delivery
	// to keep the void-returning host entry points simple.
	err error

	packs    int64
	hydrates int64
	maxBytes int64 // high-water mark of packed bytes held
	bytes    int64
}

// EnableColdStore bounds this host's live element set to capacity
// constructed chares; rebuild must construct an empty element for a ref
// (typically the array spec's New). Every element of the host must
// implement Migratable. Enable before elements are added; construction
// then respects the bound too, so peak memory stays flat even while
// millions of elements are being built.
func (h *PEHost) EnableColdStore(capacity int, rebuild func(ElemRef) (Chare, error)) {
	if capacity < 1 {
		capacity = 1
	}
	h.cold = &coldStore{
		capacity: capacity,
		rebuild:  rebuild,
		packed:   make(map[ElemRef][]byte),
		lru:      list.New(),
		pos:      make(map[ElemRef]*list.Element),
	}
}

// ColdError reports the first pack or hydrate failure, if any. Executors
// check it after construction and after each handler.
func (h *PEHost) ColdError() error {
	if h.cold == nil {
		return nil
	}
	return h.cold.err
}

// ColdStats reports live and packed element counts, cumulative
// pack/hydrate operations, and the high-water mark of packed bytes.
func (h *PEHost) ColdStats() (live, packed int, packs, hydrates, maxBytes int64) {
	if h.cold == nil {
		return len(h.elems), 0, 0, 0, 0
	}
	return len(h.elems), len(h.cold.packed), h.cold.packs, h.cold.hydrates, h.cold.maxBytes
}

// coldTouch marks a live element as most recently used and packs LRU
// elements down to the live cap.
func (h *PEHost) coldTouch(ref ElemRef) {
	c := h.cold
	if c == nil {
		return
	}
	if e, ok := c.pos[ref]; ok {
		c.lru.MoveToFront(e)
	} else {
		c.pos[ref] = c.lru.PushFront(ref)
	}
	for len(h.elems) > c.capacity && c.lru.Len() > 1 {
		if !h.packColdest() {
			return
		}
	}
}

// coldForget drops LRU/packed bookkeeping for an element leaving the host.
func (h *PEHost) coldForget(ref ElemRef) {
	c := h.cold
	if c == nil {
		return
	}
	if e, ok := c.pos[ref]; ok {
		c.lru.Remove(e)
		delete(c.pos, ref)
	}
	if b, ok := c.packed[ref]; ok {
		c.bytes -= int64(len(b))
		delete(c.packed, ref)
	}
}

// packColdest PUP-packs the least-recently-used live element and drops
// the constructed instance. Reports whether an element was packed.
func (h *PEHost) packColdest() bool {
	c := h.cold
	back := c.lru.Back()
	if back == nil {
		return false
	}
	ref := back.Value.(ElemRef)
	ch, ok := h.elems[ref]
	if !ok {
		c.lru.Remove(back)
		delete(c.pos, ref)
		return true
	}
	m, ok := ch.(Migratable)
	if !ok {
		c.fail(fmt.Errorf("core: cold store on PE %d: element %v of type %T is not Migratable", h.pe, ref, ch))
		return false
	}
	data, err := PUPPack(m)
	if err != nil {
		c.fail(fmt.Errorf("core: cold store on PE %d: pack %v: %w", h.pe, ref, err))
		return false
	}
	c.packed[ref] = data
	c.bytes += int64(len(data))
	if c.bytes > c.maxBytes {
		c.maxBytes = c.bytes
	}
	c.packs++
	c.lru.Remove(back)
	delete(c.pos, ref)
	delete(h.elems, ref)
	return true
}

// hydrate restores a packed element into the live set: construct an empty
// instance, unpack the saved state into it, install it as MRU. Reports
// (chare, found); failures go to the sticky error.
func (h *PEHost) hydrate(ref ElemRef) (Chare, bool) {
	c := h.cold
	if c == nil {
		return nil, false
	}
	data, ok := c.packed[ref]
	if !ok {
		return nil, false
	}
	ch, err := c.rebuild(ref)
	if err != nil {
		c.fail(fmt.Errorf("core: cold store on PE %d: rebuild %v: %w", h.pe, ref, err))
		return nil, false
	}
	m, ok := ch.(Migratable)
	if !ok {
		c.fail(fmt.Errorf("core: cold store on PE %d: element %v rebuilt as non-Migratable %T", h.pe, ref, ch))
		return nil, false
	}
	if err := PUPUnpack(m, data); err != nil {
		c.fail(fmt.Errorf("core: cold store on PE %d: unpack %v: %w", h.pe, ref, err))
		return nil, false
	}
	c.bytes -= int64(len(data))
	delete(c.packed, ref)
	c.hydrates++
	h.elems[ref] = ch
	h.coldTouch(ref)
	return ch, true
}

// liveOrHydrated returns a constructed chare for ref whether it is
// currently live or packed.
func (h *PEHost) liveOrHydrated(ref ElemRef) (Chare, bool) {
	if ch, ok := h.elems[ref]; ok {
		return ch, true
	}
	return h.hydrate(ref)
}

// peekCold rebuilds a packed element transiently — without installing it
// in the live set — for read-only walks like checkpointing.
func (h *PEHost) peekCold(ref ElemRef) (Chare, bool) {
	c := h.cold
	if c == nil {
		return nil, false
	}
	data, ok := c.packed[ref]
	if !ok {
		return nil, false
	}
	ch, err := c.rebuild(ref)
	if err != nil {
		c.fail(fmt.Errorf("core: cold store on PE %d: rebuild %v: %w", h.pe, ref, err))
		return nil, false
	}
	m, ok := ch.(Migratable)
	if !ok {
		c.fail(fmt.Errorf("core: cold store on PE %d: element %v rebuilt as non-Migratable %T", h.pe, ref, ch))
		return nil, false
	}
	if err := PUPUnpack(m, data); err != nil {
		c.fail(fmt.Errorf("core: cold store on PE %d: unpack %v: %w", h.pe, ref, err))
		return nil, false
	}
	return ch, true
}

func (c *coldStore) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}
