package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
	"gridmdo/internal/vmi"
)

// Transport carries frames to PEs hosted by other OS processes. The VMI
// TCP device satisfies it.
type Transport interface {
	Send(f *vmi.Frame) error
}

// Runtime is the real-time executor: one scheduler goroutine per hosted
// PE, VMI delay devices injecting the configured inter-cluster latencies,
// and an optional TCP transport for PEs in other processes. It implements
// Backend.
type Runtime struct {
	topo  *topology.Topology
	prog  *Program
	opts  Options
	lbCfg *LBConfig // effective LB config: Options.LB override or prog.LB
	loc   *Locations
	pes   []*peState
	dly   *vmi.DelayDevice

	// sink receives every scheduler event — the tracer, the metrics
	// adapter, and any extra sinks teed into one. nil when nothing is
	// configured.
	sink trace.Sink
	met  *coreMetrics // nil unless Options.Metrics is set

	// Per-PE cumulative counters (QD traffic excluded), read by the
	// quiescence protocol from each PE's own scheduler.
	sentByPE      []atomic.Int64
	processedByPE []atomic.Int64
	qd            qdRoot

	// msgSeq assigns causal trace IDs at routing time. Seeded with the
	// node number in the high 16 bits so IDs from different gridnode
	// processes never collide when their snapshots are merged.
	msgSeq atomic.Uint64

	exitOnce sync.Once
	exitCh   chan struct{}
	exitVal  any

	errMu  sync.Mutex
	runErr error

	// arriving buffers app messages addressed to elements that membership
	// recovery has re-homed onto a local PE but whose KindMember
	// construction has not run yet (see recovery.go).
	arrMu    sync.Mutex
	arriving map[ElemRef][]*Message

	wireSend vmi.SendFunc
	wireRecv vmi.RecvFunc

	start time.Time
	wg    sync.WaitGroup
}

type peState struct {
	id      int
	q       *Queue
	host    *PEHost
	reduce  *ReduceMgr
	lb      *LBMgr
	idle    atomic.Bool
	pending *PendingBundles // owned by this PE's execution context

	// curMsg is the causal ID of the message whose handler is executing on
	// this PE (0 between dispatches). Routes triggered from the handler
	// read it as the child's Parent; it is atomic because timer goroutines
	// (QD waves) route concurrently with the scheduler.
	curMsg atomic.Uint64
}

// NewRuntime builds a real-time runtime for prog on topo, configured by
// functional options (WithTrace, WithMetrics, WithCluster, …). All
// construction knobs — tracer, metrics registry, transport, failure hook —
// bind here; there are no post-construction setters.
func NewRuntime(topo *topology.Topology, prog *Program, options ...Option) (*Runtime, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	var opts Options
	for _, o := range options {
		if o != nil {
			o(&opts)
		}
	}
	lbCfg := prog.LB
	if opts.LB != nil {
		lbCfg = opts.LB
		if err := validateLB(lbCfg, len(prog.Arrays)); err != nil {
			return nil, err
		}
	}
	if opts.Transport == nil {
		opts.PELo, opts.PEHi, opts.Node = 0, topo.NumPE(), 0
		opts.NodeOf = func(int) int { return 0 }
	} else {
		if opts.NodeOf == nil {
			return nil, fmt.Errorf("core: multi-process runtime needs NodeOf")
		}
		if opts.PELo < 0 || opts.PEHi > topo.NumPE() || opts.PELo >= opts.PEHi {
			return nil, fmt.Errorf("core: bad local PE range [%d,%d)", opts.PELo, opts.PEHi)
		}
	}
	rt := &Runtime{
		topo:   topo,
		prog:   prog,
		opts:   opts,
		lbCfg:  lbCfg,
		loc:    NewLocations(prog, topo.NumPE()),
		exitCh: make(chan struct{}),
		// The clock starts at construction so that transport goroutines
		// may observe it before Run is entered.
		start:         time.Now(),
		sentByPE:      make([]atomic.Int64, topo.NumPE()),
		processedByPE: make([]atomic.Int64, topo.NumPE()),
	}
	rt.msgSeq.Store(uint64(opts.Node) << 48)
	latencyFor := opts.LatencyFor
	if latencyFor == nil {
		latencyFor = func(src, dst int32) time.Duration {
			return topo.Latency(int(src), int(dst))
		}
	}
	rt.dly = vmi.NewDelayDevice(latencyFor)
	rt.pes = make([]*peState, opts.PEHi-opts.PELo)
	for i := range rt.pes {
		pe := opts.PELo + i
		ps := &peState{id: pe, q: NewQueue()}
		if opts.Bundle {
			ps.pending = NewPendingBundles()
		}
		ps.host = NewPEHost(rt, pe)
		ps.host.MeasureWall = true
		ps.reduce = NewReduceMgr(pe,
			func(a ArrayID) int { return rt.loc.LocalCount(a, pe) },
			func(a ArrayID) int { return rt.prog.Arrays[a].N },
			rt.Route,
			func(a ArrayID, seq int64, v any) { ps.host.RunReduction(rt.prog, a, seq, v) },
		)
		if lbCfg != nil {
			ps.lb = NewLBMgr(pe, lbCfg, topo, rt.loc, ps.host, prog, rt.Route)
		}
		rt.pes[i] = ps
	}
	// Element construction, deterministic order.
	if err := ConstructElements(prog, rt.loc, opts.PELo, opts.PEHi, func(pe int) *PEHost {
		return rt.pes[pe-opts.PELo].host
	}); err != nil {
		return nil, err
	}
	if lbCfg != nil {
		// Fail fast: every element of a balanced array must be able to
		// serialize through PUP, or a mid-run eviction (possibly bound for
		// another process over the wire) would fail long after start. The
		// error names the offending concrete type.
		if err := auditMigratable(lbCfg, rt.loc, opts.PELo, opts.PEHi, func(pe int) *PEHost {
			return rt.pes[pe-opts.PELo].host
		}); err != nil {
			return nil, err
		}
	}
	if opts.Membership != nil {
		// Bind before transport wiring: a table broadcast may arrive (and
		// trigger recovery) as soon as frames can be delivered.
		opts.Membership.bind(rt)
		for _, ps := range rt.pes {
			if ps.lb != nil {
				ps.lb.mem = opts.Membership
			}
		}
	}
	// Instrumentation before transport wiring: a bound transport may start
	// delivering frames (and hence emitting events) immediately.
	sinks := append([]trace.Sink{opts.Trace}, opts.Sinks...)
	sinks = append(sinks, rt.instrument(opts.Metrics))
	rt.sink = trace.Tee(sinks...)
	if opts.Transport != nil {
		rt.wireSend = vmi.BuildSendChain(opts.Transport.Send, opts.WireSend...)
		rt.wireRecv = vmi.BuildRecvChain(rt.injectDecoded, opts.WireRecv...)
		// The transport's write path is asynchronous (coalesced); errors it
		// can no longer return from Send must fail the run, or a dead peer
		// leaves the surviving node waiting forever for messages that were
		// acknowledged into a doomed buffer. Stacks built by
		// vmi.NewChainBuilder complete both directions through Bind; plain
		// transports fall back to the legacy error-handler contract.
		switch tr := opts.Transport.(type) {
		case binder:
			tr.Bind(rt.InjectFrame, rt.fail)
		case legacyErrHandler:
			tr.SetErrHandler(rt.fail)
		}
	}
	return rt, nil
}

// validateLB checks an LB configuration supplied as a runtime override
// (program-carried configs are checked by Program.Validate).
func validateLB(cfg *LBConfig, numArrays int) error {
	if cfg.Strategy == nil {
		return fmt.Errorf("core: LB config has no strategy")
	}
	if len(cfg.Arrays) == 0 {
		return fmt.Errorf("core: LB config lists no arrays")
	}
	for _, id := range cfg.Arrays {
		if int(id) < 0 || int(id) >= numArrays {
			return fmt.Errorf("core: LB config references unknown array %d", id)
		}
	}
	return nil
}

// auditMigratable checks that every locally hosted element of every
// load-balanced array implements Migratable (i.e. has a PUP method), so
// migration failures surface at construction instead of mid-run. It is
// used by NewRuntime and exported executors via AuditMigratable.
func auditMigratable(cfg *LBConfig, loc *Locations, peLo, peHi int, hostOf func(pe int) *PEHost) error {
	for _, a := range cfg.Arrays {
		for pe := peLo; pe < peHi; pe++ {
			for _, ref := range loc.ElementsOn(a, pe) {
				ch, ok := hostOf(pe).elems[ref]
				if !ok {
					continue
				}
				if _, ok := ch.(Migratable); !ok {
					return fmt.Errorf("core: load-balanced element %v has type %T, which does not implement core.Migratable — add a PUP method so its state can be serialized for migration", ref, ch)
				}
			}
		}
	}
	return nil
}

// ConstructElements builds every element placed in [peLo, peHi) on its
// host, converting constructor panics (e.g. checkpoint-restore failures)
// into errors. It is exported for executor implementations.
func ConstructElements(prog *Program, loc *Locations, peLo, peHi int, hostOf func(pe int) *PEHost) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: element construction panicked: %v", r)
		}
	}()
	for ai := range prog.Arrays {
		spec := &prog.Arrays[ai]
		for idx := 0; idx < spec.N; idx++ {
			ref := ElemRef{Array: spec.ID, Index: idx}
			pe := int(loc.PEOf(ref))
			if pe >= peLo && pe < peHi {
				hostOf(pe).AddElement(ref, spec.New(idx))
			}
		}
	}
	return nil
}

// Backend implementation ---------------------------------------------------

// Route implements Backend: resolve the destination, apply WAN priority
// policy, and hand the message to the delay device (and, past it, either a
// local queue or the transport).
func (rt *Runtime) Route(m *Message) {
	if m.Kind == KindApp {
		m.DstPE = rt.loc.PEOf(m.To)
	}
	if rt.opts.PrioritizeWAN && m.Prio == 0 && rt.topo.CrossesWAN(int(m.SrcPE), int(m.DstPE)) {
		m.Prio = -1
	}
	if m.Kind != KindQD {
		rt.sentByPE[m.SrcPE].Add(1)
	}
	// Causal trace context: every routed message gets a node-unique ID;
	// its parent is whatever message the sending PE is currently
	// executing (0 for out-of-handler sends — timers, Run itself).
	if m.ID == 0 {
		m.ID = rt.msgSeq.Add(1)
	}
	if m.Parent == 0 {
		if src := int(m.SrcPE); src >= rt.opts.PELo && src < rt.opts.PEHi {
			m.Parent = rt.pes[src-rt.opts.PELo].curMsg.Load()
		}
	}
	rt.record(trace.Event{PE: int(m.SrcPE), Kind: trace.EvSend, At: rt.Now(), MsgID: m.ID, Parent: m.Parent, MsgKind: byte(m.Kind), Arg1: int64(m.DstPE), Arg2: int64(m.Bytes)})

	if rt.opts.Bundle && BundleEligible(m) {
		if src := int(m.SrcPE); src >= rt.opts.PELo && src < rt.opts.PEHi {
			// Held until the current handler completes; the scheduler
			// flushes after each dispatch.
			rt.pes[src-rt.opts.PELo].pending.Add(m)
			return
		}
	}
	rt.transmit(m)
}

// Post injects an application message from outside any handler — the
// entry point membership notifiers and the gateway's job submitter use.
// It is safe from any goroutine: it never touches the scheduler-owned
// bundle accumulators. A local destination is attributed to its own PE
// so the quiescence counters balance on that PE; a remote destination is
// attributed to this node's first PE — the frame must carry a truthful
// source, because the reliability layer routes acks by the frame's Src
// and a Src equal to the remote destination would bounce them back to
// the receiver itself (and a sent-count on a PE this node doesn't host
// would be invisible to that PE's quiescence probe reply).
func (rt *Runtime) Post(to ElemRef, entry EntryID, data any) {
	rt.PostTraced(to, entry, data, 0)
}

// PostTraced is Post with an explicit causal parent: the message's trace
// Parent is set to parent (0 means no parent, i.e. plain Post) and the
// assigned message ID is returned, so an external span — a gateway job's
// trace root, say — can adopt the injected message as a child and every
// handler it triggers links back through the injection. The ID is
// node-unique (high bits carry the node number), matching the IDs the
// scheduler assigns in-handler.
func (rt *Runtime) PostTraced(to ElemRef, entry EntryID, data any, parent uint64) uint64 {
	m := &Message{
		Kind:   KindApp,
		To:     to,
		Entry:  entry,
		Data:   data,
		Bytes:  payloadBytes(data),
		Parent: parent,
	}
	m.DstPE = rt.loc.PEOf(to)
	m.SrcPE = m.DstPE
	if dst := int(m.DstPE); dst < rt.opts.PELo || dst >= rt.opts.PEHi {
		m.SrcPE = int32(rt.opts.PELo)
	}
	rt.sentByPE[m.SrcPE].Add(1)
	m.ID = rt.msgSeq.Add(1)
	rt.record(trace.Event{PE: int(m.SrcPE), Kind: trace.EvSend, At: rt.Now(), MsgID: m.ID, Parent: m.Parent, MsgKind: byte(m.Kind), Arg1: int64(m.DstPE), Arg2: int64(m.Bytes)})
	rt.transmit(m)
	return m.ID
}

// transmit hands a resolved message to the delay device.
func (rt *Runtime) transmit(m *Message) {
	f := &vmi.Frame{
		Src:   m.SrcPE,
		Dst:   m.DstPE,
		Prio:  m.Prio,
		Trace: m.ID,
		Obj:   m,
	}
	if m.Kind != KindApp {
		f.Class = vmi.ClassSystem
	}
	if err := rt.dly.Send(f, rt.pastDelay); err != nil {
		rt.fail(err)
	}
}

// flushBundles ships the messages the just-completed handler produced,
// one (possibly bundled) frame per destination PE.
func (rt *Runtime) flushBundles(ps *peState) {
	if ps.pending == nil || ps.pending.Empty() {
		return
	}
	for _, group := range ps.pending.Drain() {
		rt.transmit(MakeBundle(group))
	}
}

// pastDelay is the delivery stage after the delay device: local enqueue or
// wire transport.
func (rt *Runtime) pastDelay(f *vmi.Frame) error {
	dst := int(f.Dst)
	if dst >= rt.opts.PELo && dst < rt.opts.PEHi {
		rt.enqueueLocal(f.Obj.(*Message))
		return nil
	}
	m := f.Obj.(*Message)
	if rt.Err() != nil {
		// The runtime is already failing; frames drained out of the delay
		// device during shutdown would each pay a full dial-retry cycle
		// against a possibly-dead peer, stalling Run's cleanup.
		return nil
	}
	// Serialize into a pooled buffer. The TCP device copies the body into
	// its coalescing buffer before Send returns (and transform devices
	// that reallocate the body drop this one), so it can be recycled as
	// soon as the send chain hands the frame back.
	buf := vmi.GetBuf(msgHeaderLen + m.Bytes)
	body, err := AppendMessage(buf[:0], m)
	if err != nil {
		vmi.PutBuf(buf)
		rt.fail(err)
		return err
	}
	f.Body = body
	f.Obj = nil
	err = rt.wireSend(f)
	vmi.PutBuf(body)
	if err != nil {
		rt.fail(err)
		return err
	}
	return nil
}

func (rt *Runtime) enqueueLocal(m *Message) {
	if m.Kind == KindBundle {
		// A bundle's messages share an arrival; enqueue them in order.
		for _, sub := range BundleMessages(m) {
			rt.enqueueLocal(sub)
		}
		return
	}
	m.EnqueuedAt = rt.Now()
	rt.record(trace.Event{PE: int(m.DstPE), Kind: trace.EvEnqueue, At: m.EnqueuedAt, MsgID: m.ID, Parent: m.Parent, MsgKind: byte(m.Kind), Arg1: int64(m.SrcPE)})
	i := int(m.DstPE) - rt.opts.PELo
	depth := rt.pes[i].q.Push(m)
	if rt.met != nil {
		rt.met.qDepthHW[i].SetMax(int64(depth))
	}
}

// record emits an event to the configured sink (tracer, metrics adapter,
// extra sinks). One predicted branch when nothing is configured.
func (rt *Runtime) record(ev trace.Event) {
	if rt.sink != nil {
		rt.sink.Record(ev)
	}
}

// Record implements Backend: libraries layered on the scheduler (AMPI
// block/wake, application step marks via Ctx) emit into the same sink the
// scheduler uses.
func (rt *Runtime) Record(ev trace.Event) { rt.record(ev) }

// InjectFrame delivers a frame received from the transport into the local
// runtime, passing it through the configured wire receive chain first.
func (rt *Runtime) InjectFrame(f *vmi.Frame) error {
	if rt.wireRecv == nil {
		return rt.injectDecoded(f)
	}
	return rt.wireRecv(f)
}

// injectDecoded is the terminal of the wire receive chain.
func (rt *Runtime) injectDecoded(f *vmi.Frame) error {
	m, err := DecodeMessage(f.Body)
	if err != nil {
		rt.fail(err)
		return err
	}
	if int(m.DstPE) < rt.opts.PELo || int(m.DstPE) >= rt.opts.PEHi {
		err := fmt.Errorf("core: frame for PE %d arrived at node %d", m.DstPE, rt.opts.Node)
		rt.fail(err)
		return err
	}
	rt.enqueueLocal(m)
	return nil
}

// Now implements Backend: wall time since Run began.
func (rt *Runtime) Now() time.Duration { return time.Since(rt.start) }

// Epoch reports the wall-clock instant trace timestamps are relative to.
// Multi-process deployments record it in their trace snapshots so the
// analyzer can re-base events from different processes onto one axis.
func (rt *Runtime) Epoch() time.Time { return rt.start }

// SetEpoch re-bases the runtime clock. In-process multi-runtime harnesses
// call it with one shared instant after constructing every node, so that
// cross-node trace timestamps share a time base — element construction
// happens inside NewRuntime and would otherwise skew each node's epoch by
// its construction cost. Must be called before Run and before any frame
// is injected.
func (rt *Runtime) SetEpoch(t time.Time) { rt.start = t }

// Charge implements Backend. The real-time runtime measures handler wall
// time directly, so modeled charges are a no-op here.
func (rt *Runtime) Charge(time.Duration) {}

// NumPE implements Backend.
func (rt *Runtime) NumPE() int { return rt.topo.NumPE() }

// Topo implements Backend.
func (rt *Runtime) Topo() *topology.Topology { return rt.topo }

// ArrayN implements Backend.
func (rt *Runtime) ArrayN(a ArrayID) int { return rt.prog.Arrays[a].N }

// Locations exposes the runtime's location table. Every node of a
// multi-process run maintains a full copy (load-balancing rounds update
// all of them), so tests and tools can check where an element ended up —
// and that separate processes agree — after the run completes.
func (rt *Runtime) Locations() *Locations { return rt.loc }

// ExitWith implements Backend.
func (rt *Runtime) ExitWith(v any) {
	rt.exitOnce.Do(func() {
		rt.exitVal = v
		close(rt.exitCh)
	})
}

// Contribute implements Backend.
func (rt *Runtime) Contribute(_ ElemRef, pe int, a ArrayID, seq int64, v any, op ReduceOp) {
	rt.pes[pe-rt.opts.PELo].reduce.Contribute(a, seq, v, op)
}

// AtSync implements Backend.
func (rt *Runtime) AtSync(_ ElemRef, pe int) {
	ps := rt.pes[pe-rt.opts.PELo]
	if ps.lb == nil {
		panic("core: AtSync without an LB configuration")
	}
	ps.lb.ElementAtSync()
}

// Run -----------------------------------------------------------------------

func (rt *Runtime) fail(err error) {
	if err == nil {
		return
	}
	rt.errMu.Lock()
	first := rt.runErr == nil
	if first {
		rt.runErr = err
	}
	rt.errMu.Unlock()
	if first && rt.opts.FailureHook != nil {
		rt.opts.FailureHook(err)
	}
	rt.ExitWith(nil)
}

// Stop ends the run from outside (used by multi-process workers when the
// coordinator announces shutdown).
func (rt *Runtime) Stop() { rt.ExitWith(nil) }

// Err returns the first runtime error, if any.
func (rt *Runtime) Err() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.runErr
}

// Counters reports (sent, processed) message counts summed over this
// process's PEs, excluding quiescence-detection traffic.
func (rt *Runtime) Counters() (sent, processed int64) {
	for pe := range rt.sentByPE {
		sent += rt.sentByPE[pe].Load()
		processed += rt.processedByPE[pe].Load()
	}
	return sent, processed
}

// Run executes the program and returns the value passed to ExitWith. With
// RunToQuiescence it returns once no work remains. Run may only be called
// once.
func (rt *Runtime) Run() (any, error) {
	for _, ps := range rt.pes {
		rt.wg.Add(1)
		go rt.schedule(ps)
	}
	if rt.opts.Lifecycle.OnStart != nil {
		rt.opts.Lifecycle.OnStart()
	}
	if rt.opts.Node == 0 && rt.opts.PELo == 0 {
		rt.sentByPE[0].Add(1)
		rt.enqueueLocal(&Message{Kind: KindStart, SrcPE: 0, DstPE: 0, ID: rt.msgSeq.Add(1)})
		if rt.opts.RunToQuiescence {
			// Begin probing once the program has had a moment to start.
			time.AfterFunc(qdWaveInterval, func() {
				select {
				case <-rt.exitCh:
				default:
					rt.startQDWave()
				}
			})
		}
	}
	<-rt.exitCh

	// Shutdown: release delayed frames, then stop the schedulers.
	rt.dly.Close()
	for _, ps := range rt.pes {
		ps.q.Push(&Message{Kind: KindStop, Prio: math.MinInt32, DstPE: int32(ps.id)})
		ps.q.Close()
	}
	rt.wg.Wait()
	if rt.opts.Lifecycle.OnExit != nil {
		rt.opts.Lifecycle.OnExit(rt.exitVal, rt.Err())
	}
	return rt.exitVal, rt.Err()
}

// schedBatchSize bounds how many messages a scheduler drains per queue
// lock acquisition. Large enough to amortize the lock across a burst
// (e.g. a bundle's worth of ghost exchanges), small enough that a
// late-arriving prioritized message preempts within one batch.
const schedBatchSize = 32

// idleRecordMin is the smallest scheduler-idle gap worth a trace event:
// shorter waits are queue-lock noise, not comm-wait, and recording them
// would fill the rings with micro-idles.
const idleRecordMin = 50 * time.Microsecond

func (rt *Runtime) schedule(ps *peState) {
	defer rt.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			rt.fail(fmt.Errorf("core: PE %d handler panicked: %v", ps.id, r))
		}
	}()
	batch := make([]*Message, 0, schedBatchSize)
	idleCtr := rt.met.idleCounter(ps.id - rt.opts.PELo) // nil when metrics are off
	traceIdle := rt.sink != nil
	for {
		var idleFrom time.Time
		if idleCtr != nil || traceIdle {
			idleFrom = time.Now()
		}
		ps.idle.Store(true)
		batch = ps.q.PopBatch(batch[:0])
		ps.idle.Store(false)
		if idleCtr != nil || traceIdle {
			d := time.Since(idleFrom)
			if idleCtr != nil {
				idleCtr.Add(d.Nanoseconds())
			}
			if traceIdle && d >= idleRecordMin {
				rt.record(trace.Event{PE: ps.id, Kind: trace.EvIdle, At: idleFrom.Sub(rt.start), Arg1: d.Nanoseconds()})
			}
		}
		if len(batch) == 0 {
			return
		}
		for _, m := range batch {
			if m.Kind == KindStop {
				return
			}
			ps.curMsg.Store(m.ID)
			rt.record(trace.Event{PE: ps.id, Kind: trace.EvBegin, At: rt.Now(), MsgID: m.ID, MsgKind: byte(m.Kind), Arg1: int64(m.To.Array), Arg2: int64(m.To.Index)})
			var err error
			switch m.Kind {
			case KindApp:
				if !rt.parkIfArriving(ps, m) {
					err = ps.host.DeliverApp(m)
				}
			case KindStart:
				ps.host.RunStart(rt.prog)
			case KindReduce:
				err = ps.reduce.HandlePartial(m)
			case KindLB:
				if ps.lb == nil {
					err = fmt.Errorf("core: PE %d received LB message without LB config", ps.id)
				} else {
					err = ps.lb.Handle(m)
				}
			case KindQD:
				err = rt.handleQD(ps, m)
			case KindMember:
				err = rt.handleMember(ps, m)
			default:
				err = fmt.Errorf("core: PE %d received unknown message kind %d", ps.id, m.Kind)
			}
			rt.flushBundles(ps)
			rt.record(trace.Event{PE: ps.id, Kind: trace.EvEnd, At: rt.Now(), MsgID: m.ID, MsgKind: byte(m.Kind)})
			ps.curMsg.Store(0)
			if m.Kind != KindQD {
				rt.processedByPE[ps.id].Add(1)
			}
			if err != nil {
				rt.fail(err)
				return
			}
		}
	}
}
