package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire serialization for messages that cross OS-process boundaries (the
// TCP transport). In-process messages are never serialized — the paper's
// intra-cluster fast path. Payload types that travel between processes
// must be registered with RegisterPayload in every participating process,
// in the same way gob requires.

// RegisterPayload registers a concrete payload type for wire transport.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	// Runtime protocol payloads that may cross process boundaries, and the
	// concrete types carried inside reduction values.
	RegisterPayload(ReducePartial{})
	RegisterPayload(qdMsg{})
	RegisterPayload([]*Message(nil)) // bundle contents
	RegisterPayload(float64(0))
	RegisterPayload(int64(0))
	RegisterPayload(int(0))
	RegisterPayload([]float64(nil))
}

// wireMessage is the gob envelope. Only fields needed on the far side are
// carried.
type wireMessage struct {
	Kind  Kind
	To    ElemRef
	Entry EntryID
	Prio  int32
	Bytes int
	SrcPE int32
	DstPE int32
	Data  any
}

// EncodeMessage serializes a message for the TCP transport.
func EncodeMessage(m *Message) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	w := wireMessage{
		Kind: m.Kind, To: m.To, Entry: m.Entry, Prio: m.Prio,
		Bytes: m.Bytes, SrcPE: m.SrcPE, DstPE: m.DstPE, Data: m.Data,
	}
	if err := enc.Encode(&w); err != nil {
		return nil, fmt.Errorf("core: encode message %v: %w", m, err)
	}
	return buf.Bytes(), nil
}

// DecodeMessage reverses EncodeMessage.
func DecodeMessage(b []byte) (*Message, error) {
	var w wireMessage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: decode message: %w", err)
	}
	return &Message{
		Kind: w.Kind, To: w.To, Entry: w.Entry, Prio: w.Prio,
		Bytes: w.Bytes, SrcPE: w.SrcPE, DstPE: w.DstPE, Data: w.Data,
	}, nil
}
