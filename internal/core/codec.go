package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"
)

// Wire serialization for messages that cross OS-process boundaries (the
// TCP transport). In-process messages are never serialized — the paper's
// intra-cluster fast path.
//
// The codec is a hand-rolled binary format: a fixed 57-byte header
// (magic, version, Kind, To, Entry, Prio, Bytes, SrcPE, DstPE, and the
// causal trace context ID/Parent) followed by
// a tagged payload. A payload codec registry provides allocation-light
// fast paths for every payload type the runtime itself sends (ints,
// floats, []float64, strings, byte slices, ReducePartial, quiescence
// probes, and bundle contents, which encode recursively) plus any type an
// application registers with RegisterPayloadCodec. Unregistered types fall
// back to gob.
//
// Compatibility note — why the gob fallback is self-contained: a gob
// stream sends a type descriptor once per *encoder*, so the cheapest
// scheme would keep one pooled encoder/decoder pair per TCP connection
// and amortize descriptors across messages. That requires the decode
// order to match the encode order exactly, which this runtime cannot
// guarantee: messages are encoded before the wire send chain runs, frames
// from many PEs interleave onto per-destination connections, and
// DecodeMessage must also accept standalone byte strings (checkpoints,
// fuzzing, frames replayed out of context). Each fallback payload is
// therefore a self-contained gob stream — descriptors are re-sent per
// message — and the encoder's scratch buffer is pooled instead, so the
// fallback costs allocations, not correctness. The fix for a *hot*
// payload type is not a stateful stream but RegisterPayloadCodec, which
// removes gob from its path entirely; every runtime protocol type already
// has one. Types that keep the gob fallback must be registered with
// RegisterPayload in every participating process, as gob requires.

// Message wire layout (big-endian):
//
//	off len field
//	  0   2  magic 0x474D ("GM")
//	  2   1  version (2)
//	  3   1  Kind
//	  4   4  To.Array (int32)
//	  8   8  To.Index (int64)
//	 16   4  Entry (int32)
//	 20   4  Prio (int32)
//	 24   8  Bytes (int64)
//	 32   4  SrcPE (int32)
//	 36   4  DstPE (int32)
//	 40   8  ID (uint64, causal trace context)
//	 48   8  Parent (uint64, causal trace context)
//	 56   1  payload tag
//	 57   …  payload (tag-specific)
//
// Version 2 added the 16-byte trace context (ID, Parent) so causality
// survives the TCP hop; version 1 frames are rejected.
const (
	wireMagic    uint16 = 0x474D
	wireVersion  byte   = 2
	msgHeaderLen        = 57
)

// Payload tags. Tags 0–63 are reserved for the runtime's built-in fast
// paths; 64–254 are available to applications via RegisterPayloadCodec;
// 255 marks the gob fallback.
const (
	tagNil      byte = 0
	tagInt      byte = 1
	tagInt64    byte = 2
	tagFloat64  byte = 3
	tagF64Slice byte = 4
	tagString   byte = 5
	tagBytes    byte = 6
	tagBool     byte = 7
	tagReduce   byte = 8
	tagQD       byte = 9
	tagBundle   byte = 10
	tagLB       byte = 11

	minAppTag byte = 64
	tagGob    byte = 255
)

// ErrBadWire is wrapped by all structural decode failures.
var ErrBadWire = errors.New("core: malformed wire message")

// RegisterPayload registers a concrete payload type for the gob fallback
// path of the wire codec. Hot payload types should prefer
// RegisterPayloadCodec, which bypasses gob entirely.
func RegisterPayload(v any) { gob.Register(v) }

// PayloadCodec is a binary fast path for one concrete payload type.
// Append serializes v (which is always of the registered type) onto dst;
// Decode parses one value from the front of b and returns the remainder.
// Decode must copy everything it keeps: b aliases a pooled transport
// buffer.
type PayloadCodec struct {
	Append func(dst []byte, v any) ([]byte, error)
	Decode func(b []byte) (v any, rest []byte, err error)
}

var (
	payloadMu     sync.RWMutex
	payloadByType = map[reflect.Type]byte{}
	payloadByTag  = map[byte]PayloadCodec{}
)

// RegisterPayloadCodec installs a binary fast path for the payload type of
// sample under the given tag (which must be in [64, 255)). Both sides of a
// connection must register identical codecs. Registration is typically
// done from init functions; it panics on tag or type conflicts.
func RegisterPayloadCodec(tag byte, sample any, c PayloadCodec) {
	if tag < minAppTag || tag == tagGob {
		panic(fmt.Sprintf("core: payload tag %d outside application range [%d,255)", tag, minAppTag))
	}
	if c.Append == nil || c.Decode == nil {
		panic("core: payload codec needs both Append and Decode")
	}
	t := reflect.TypeOf(sample)
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if _, dup := payloadByTag[tag]; dup {
		panic(fmt.Sprintf("core: payload tag %d registered twice", tag))
	}
	if _, dup := payloadByType[t]; dup {
		panic(fmt.Sprintf("core: payload type %v registered twice", t))
	}
	payloadByTag[tag] = c
	payloadByType[t] = tag
}

func init() {
	// Concrete types carried inside reduction values and bundles still
	// need gob registration: they may appear nested under a fallback
	// payload that an application routes through gob.
	RegisterPayload(ReducePartial{})
	RegisterPayload([]*Message(nil))
	RegisterPayload(float64(0))
	RegisterPayload(int64(0))
	RegisterPayload(int(0))
	RegisterPayload([]float64(nil))
}

// EncodeMessage serializes a message for the TCP transport.
func EncodeMessage(m *Message) ([]byte, error) {
	return AppendMessage(nil, m)
}

// AppendMessage appends m's wire encoding to dst and returns the extended
// slice. The transport path calls it with pooled buffers so steady-state
// sends do not allocate.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, wireMagic)
	dst = append(dst, wireVersion, byte(m.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To.Array))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.To.Index)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Entry))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Prio))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.Bytes)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.SrcPE))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.DstPE))
	dst = binary.BigEndian.AppendUint64(dst, m.ID)
	dst = binary.BigEndian.AppendUint64(dst, m.Parent)
	dst, err := appendPayload(dst, m.Data)
	if err != nil {
		return nil, fmt.Errorf("core: encode message %v: %w", m, err)
	}
	return dst, nil
}

// DecodeMessage reverses EncodeMessage. The input must contain exactly one
// message; nothing in the result aliases b, so callers may recycle it.
func DecodeMessage(b []byte) (*Message, error) {
	m, rest, err := decodeMessage(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(rest))
	}
	return m, nil
}

func decodeMessage(b []byte) (*Message, []byte, error) {
	if len(b) < msgHeaderLen {
		return nil, b, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadWire, len(b))
	}
	if binary.BigEndian.Uint16(b[0:]) != wireMagic {
		return nil, b, fmt.Errorf("%w: bad magic", ErrBadWire)
	}
	if b[2] != wireVersion {
		return nil, b, fmt.Errorf("%w: version %d, want %d", ErrBadWire, b[2], wireVersion)
	}
	m := &Message{
		Kind:   Kind(b[3]),
		To:     ElemRef{Array: ArrayID(int32(binary.BigEndian.Uint32(b[4:]))), Index: int(int64(binary.BigEndian.Uint64(b[8:])))},
		Entry:  EntryID(int32(binary.BigEndian.Uint32(b[16:]))),
		Prio:   int32(binary.BigEndian.Uint32(b[20:])),
		Bytes:  int(int64(binary.BigEndian.Uint64(b[24:]))),
		SrcPE:  int32(binary.BigEndian.Uint32(b[32:])),
		DstPE:  int32(binary.BigEndian.Uint32(b[36:])),
		ID:     binary.BigEndian.Uint64(b[40:]),
		Parent: binary.BigEndian.Uint64(b[48:]),
	}
	data, rest, err := decodePayload(b[56], b[msgHeaderLen:])
	if err != nil {
		return nil, b, err
	}
	m.Data = data
	return m, rest, nil
}

// appendPayload writes the tag byte and tag-specific encoding of v.
func appendPayload(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case int:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(int64(x))), nil
	case int64:
		dst = append(dst, tagInt64)
		return binary.BigEndian.AppendUint64(dst, uint64(x)), nil
	case float64:
		dst = append(dst, tagFloat64)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case []float64:
		dst = append(dst, tagF64Slice)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		for _, f := range x {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
		}
		return dst, nil
	case string:
		dst = append(dst, tagString)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		return append(dst, x...), nil
	case []byte:
		dst = append(dst, tagBytes)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		return append(dst, x...), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, tagBool, b), nil
	case ReducePartial:
		dst = append(dst, tagReduce)
		dst = binary.BigEndian.AppendUint32(dst, uint32(x.Array))
		dst = binary.BigEndian.AppendUint64(dst, uint64(x.Seq))
		dst = append(dst, byte(x.Op))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(x.Contribs)))
		return appendPayload(dst, x.Value)
	case qdMsg:
		probe := byte(0)
		if x.Probe {
			probe = 1
		}
		dst = append(dst, tagQD, probe)
		dst = binary.BigEndian.AppendUint64(dst, uint64(x.Wave))
		dst = binary.BigEndian.AppendUint64(dst, uint64(x.Sent))
		return binary.BigEndian.AppendUint64(dst, uint64(x.Processed)), nil
	case lbMsg:
		return appendLBMsg(append(dst, tagLB), x), nil
	case []*Message:
		dst = append(dst, tagBundle)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		var err error
		for _, sub := range x {
			if dst, err = AppendMessage(dst, sub); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		payloadMu.RLock()
		tag, ok := payloadByType[reflect.TypeOf(v)]
		c := payloadByTag[tag]
		payloadMu.RUnlock()
		if ok {
			return c.Append(append(dst, tag), v)
		}
		return appendGob(dst, v)
	}
}

// decodePayload parses one tagged payload body. Everything returned is
// freshly allocated — nothing aliases b.
func decodePayload(tag byte, b []byte) (any, []byte, error) {
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagInt:
		if len(b) < 8 {
			return nil, b, truncErr("int")
		}
		return int(int64(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagInt64:
		if len(b) < 8 {
			return nil, b, truncErr("int64")
		}
		return int64(binary.BigEndian.Uint64(b)), b[8:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, b, truncErr("float64")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
	case tagF64Slice:
		if len(b) < 4 {
			return nil, b, truncErr("[]float64")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > len(b)/8 {
			return nil, b, truncErr("[]float64")
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
		}
		return out, b[8*n:], nil
	case tagString:
		if len(b) < 4 {
			return nil, b, truncErr("string")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > len(b) {
			return nil, b, truncErr("string")
		}
		return string(b[:n]), b[n:], nil
	case tagBytes:
		if len(b) < 4 {
			return nil, b, truncErr("[]byte")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > len(b) {
			return nil, b, truncErr("[]byte")
		}
		return append([]byte(nil), b[:n]...), b[n:], nil
	case tagBool:
		if len(b) < 1 {
			return nil, b, truncErr("bool")
		}
		return b[0] != 0, b[1:], nil
	case tagReduce:
		// Fixed prefix (reducePartialHeaderLen bytes) plus at least the
		// nested payload's tag byte.
		if len(b) < reducePartialHeaderLen+1 {
			return nil, b, truncErr("ReducePartial")
		}
		p := ReducePartial{
			Array:    ArrayID(int32(binary.BigEndian.Uint32(b))),
			Seq:      int64(binary.BigEndian.Uint64(b[4:])),
			Op:       ReduceOp(b[12]),
			Contribs: int(int64(binary.BigEndian.Uint64(b[13:]))),
		}
		v, rest, err := decodePayload(b[21], b[22:])
		if err != nil {
			return nil, b, err
		}
		p.Value = v
		return p, rest, nil
	case tagQD:
		if len(b) < 25 {
			return nil, b, truncErr("qdMsg")
		}
		return qdMsg{
			Probe:     b[0] != 0,
			Wave:      int64(binary.BigEndian.Uint64(b[1:])),
			Sent:      int64(binary.BigEndian.Uint64(b[9:])),
			Processed: int64(binary.BigEndian.Uint64(b[17:])),
		}, b[25:], nil
	case tagLB:
		return decodeLBMsg(b)
	case tagBundle:
		if len(b) < 4 {
			return nil, b, truncErr("bundle")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		// Each sub-message needs at least a header; reject counts the
		// remaining bytes cannot possibly satisfy before allocating.
		if n > len(b)/msgHeaderLen {
			return nil, b, truncErr("bundle")
		}
		subs := make([]*Message, n)
		for i := range subs {
			var err error
			if subs[i], b, err = decodeMessage(b); err != nil {
				return nil, b, err
			}
		}
		return subs, b, nil
	case tagGob:
		return decodeGob(b)
	default:
		payloadMu.RLock()
		c, ok := payloadByTag[tag]
		payloadMu.RUnlock()
		if !ok {
			return nil, b, fmt.Errorf("%w: unknown payload tag %d", ErrBadWire, tag)
		}
		return c.Decode(b)
	}
}

func truncErr(what string) error {
	return fmt.Errorf("%w: truncated %s payload", ErrBadWire, what)
}

// appendLBMsg is the built-in fast path for KindLB payloads. Having it in
// the runtime (rather than the app-tag registry) guarantees that every
// phase of the load-balancing protocol — including an evicted element's
// PUP-packed state — crosses process boundaries without touching gob, so
// there is no per-app RegisterPayload obligation for migrations.
//
// Layout after the tag byte (big-endian): phase (1) · stats count (4) +
// 40 bytes each (Array 4, Index 8, PE 4, Load 8, Msgs 8, WanMsgs 8) ·
// moves count (4) + 16 bytes each (Array 4, Index 8, ToPE 4) · Elem
// (Array 4, Index 8) · state length (4) + bytes · meta presence (1) and,
// if present, lbMetaBytes of elemMeta (redSeq 8, load 8, wanMsg 8,
// msgs 8, atSync 1).
func appendLBMsg(dst []byte, m lbMsg) []byte {
	dst = append(dst, byte(m.Phase))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Stats)))
	for _, s := range m.Stats {
		dst = binary.BigEndian.AppendUint32(dst, uint32(s.Ref.Array))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(s.Ref.Index)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(s.PE))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(s.Load)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(s.Msgs)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(s.WanMsgs)))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Moves)))
	for _, mv := range m.Moves {
		dst = binary.BigEndian.AppendUint32(dst, uint32(mv.Ref.Array))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(mv.Ref.Index)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(mv.ToPE))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Elem.Array))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.Elem.Index)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.State)))
	dst = append(dst, m.State...)
	if m.Meta == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Meta.redSeq))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.Meta.load)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.Meta.wanMsg)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(m.Meta.msgs)))
	a := byte(0)
	if m.Meta.atSync {
		a = 1
	}
	return append(dst, a)
}

func decodeLBMsg(b []byte) (any, []byte, error) {
	if len(b) < 5 {
		return nil, b, truncErr("lbMsg")
	}
	m := lbMsg{Phase: lbPhase(b[0])}
	n := int(binary.BigEndian.Uint32(b[1:]))
	b = b[5:]
	if n > len(b)/40 {
		return nil, b, truncErr("lbMsg stats")
	}
	if n > 0 {
		m.Stats = make([]ElemLoad, n)
		for i := range m.Stats {
			m.Stats[i] = ElemLoad{
				Ref:     ElemRef{Array: ArrayID(int32(binary.BigEndian.Uint32(b))), Index: int(int64(binary.BigEndian.Uint64(b[4:])))},
				PE:      int(int32(binary.BigEndian.Uint32(b[12:]))),
				Load:    time.Duration(int64(binary.BigEndian.Uint64(b[16:]))),
				Msgs:    int(int64(binary.BigEndian.Uint64(b[24:]))),
				WanMsgs: int(int64(binary.BigEndian.Uint64(b[32:]))),
			}
			b = b[40:]
		}
	}
	if len(b) < 4 {
		return nil, b, truncErr("lbMsg")
	}
	n = int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b)/16 {
		return nil, b, truncErr("lbMsg moves")
	}
	if n > 0 {
		m.Moves = make([]Move, n)
		for i := range m.Moves {
			m.Moves[i] = Move{
				Ref:  ElemRef{Array: ArrayID(int32(binary.BigEndian.Uint32(b))), Index: int(int64(binary.BigEndian.Uint64(b[4:])))},
				ToPE: int(int32(binary.BigEndian.Uint32(b[12:]))),
			}
			b = b[16:]
		}
	}
	if len(b) < 16 {
		return nil, b, truncErr("lbMsg")
	}
	m.Elem = ElemRef{Array: ArrayID(int32(binary.BigEndian.Uint32(b))), Index: int(int64(binary.BigEndian.Uint64(b[4:])))}
	n = int(binary.BigEndian.Uint32(b[12:]))
	b = b[16:]
	if n > len(b) {
		return nil, b, truncErr("lbMsg state")
	}
	if n > 0 {
		m.State = append([]byte(nil), b[:n]...)
	}
	b = b[n:]
	if len(b) < 1 {
		return nil, b, truncErr("lbMsg")
	}
	present := b[0]
	b = b[1:]
	if present != 0 {
		if len(b) < lbMetaBytes {
			return nil, b, truncErr("lbMsg meta")
		}
		m.Meta = &elemMeta{
			redSeq: int64(binary.BigEndian.Uint64(b)),
			load:   time.Duration(int64(binary.BigEndian.Uint64(b[8:]))),
			wanMsg: int(int64(binary.BigEndian.Uint64(b[16:]))),
			msgs:   int(int64(binary.BigEndian.Uint64(b[24:]))),
			atSync: b[32] != 0,
		}
		b = b[lbMetaBytes:]
	}
	return m, b, nil
}

// reducePartialHeaderLen documents the fixed prefix decoded above: Array
// (4) + Seq (8) + Op (1) + Contribs (8), followed by a nested payload.
const reducePartialHeaderLen = 21

// gobPayload is the envelope of the fallback path; the indirection through
// an interface field is what lets gob carry arbitrary registered types.
type gobPayload struct {
	V any
}

// gobBufPool recycles the encoder scratch buffers of the fallback path.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func appendGob(dst []byte, v any) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&gobPayload{V: v}); err != nil {
		return nil, fmt.Errorf("gob payload %T: %w", v, err)
	}
	dst = append(dst, tagGob)
	dst = binary.BigEndian.AppendUint32(dst, uint32(buf.Len()))
	return append(dst, buf.Bytes()...), nil
}

func decodeGob(b []byte) (any, []byte, error) {
	if len(b) < 4 {
		return nil, b, truncErr("gob")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b) {
		return nil, b, truncErr("gob")
	}
	var p gobPayload
	if err := gob.NewDecoder(bytes.NewReader(b[:n])).Decode(&p); err != nil {
		return nil, b, fmt.Errorf("core: decode gob payload: %w", err)
	}
	return p.V, b[n:], nil
}
