package core_test

import (
	"reflect"
	"testing"

	"gridmdo/internal/core"
)

// FuzzMembershipWire: the member-table and membership-message codecs
// must never panic, whatever they accept must survive a re-encode
// round-trip structurally intact, and any accepted encoding with bytes
// appended must be rejected (the decoders are strict about trailing
// garbage — a half-applied control frame is worse than a dropped one).
func FuzzMembershipWire(f *testing.F) {
	tbl := &core.MemberTable{Version: 7, Epoch: 3, Members: []core.Member{
		{Node: 0, State: core.MemberActive, Addr: "127.0.0.1:9000"},
		{Node: 1, State: core.MemberDraining, Addr: ""},
		{Node: 5, State: core.MemberDead, Addr: "[::1]:1"},
	}}
	f.Add(core.AppendMemberTable(nil, tbl))
	f.Add(core.AppendMemberTable(nil, &core.MemberTable{Version: 1, Epoch: 1}))
	// The op type is unexported, so valid message seeds are made by
	// patching the op byte (offset 3: magic, magic, version, op) of a
	// zero-op encoding.
	join := core.AppendMembershipMsg(nil, &core.MembershipMsg{From: 3, Node: 3, Addr: "127.0.0.1:0"})
	join[3] = 1 // join op
	f.Add(join)
	table := core.AppendMembershipMsg(nil, &core.MembershipMsg{From: 0, Tbl: tbl})
	table[3] = 2 // table op
	f.Add(table)
	f.Add([]byte{})
	f.Add([]byte{'M', 'T', 1})
	f.Add([]byte{'M', 'M', 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if tb, err := core.DecodeMemberTable(data); err == nil {
			re := core.AppendMemberTable(nil, tb)
			tb2, err := core.DecodeMemberTable(re)
			if err != nil {
				t.Fatalf("re-decode of accepted table failed: %v", err)
			}
			if !reflect.DeepEqual(tb, tb2) {
				t.Fatalf("table round trip not stable: %+v vs %+v", tb, tb2)
			}
			if _, err := core.DecodeMemberTable(append(re, 0)); err == nil {
				t.Fatal("table decoder accepted trailing bytes")
			}
		}
		if m, err := core.DecodeMembershipMsg(data); err == nil {
			re := core.AppendMembershipMsg(nil, m)
			m2, err := core.DecodeMembershipMsg(re)
			if err != nil {
				t.Fatalf("re-decode of accepted message failed: %v", err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("message round trip not stable: %+v vs %+v", m, m2)
			}
			if _, err := core.DecodeMembershipMsg(append(re, 0)); err == nil {
				t.Fatal("message decoder accepted trailing bytes")
			}
		}
	})
}
