package core_test

import (
	"math"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// End-to-end chaos acceptance tests: real programs (the stencil benchmark,
// a ping-pong exchange) over two runtimes joined by the real TCP
// transport, with seeded faults injected below the reliability layer and a
// forced mid-run disconnect. The assertions are outcome invariants —
// exactly-once, in-order delivery and bit-identical results versus a
// fault-free run — which hold for any interleaving of the same seeded
// fault schedule; the schedule itself is seed-deterministic (see
// vmi.TestChaosSameSeedSameFaultSchedule).

// coreChaosSeed mirrors vmi's chaos seed plumbing: GRIDMDO_CHAOS_SEED
// replays a schedule, and the seed in use is always logged.
func coreChaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("GRIDMDO_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GRIDMDO_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (set GRIDMDO_CHAOS_SEED=%d to replay)", seed, seed)
	return seed
}

// twoNodeHarness is one two-process run: a pair of TCP transports on
// loopback, optionally wrapped in reliability layers, hosting one PE each.
type twoNodeHarness struct {
	tcps [2]*vmi.TCP
	rels [2]*vmi.Reliable
	rts  [2]*core.Runtime
}

// buildTwoNodes wires transports and runtimes for a two-PE topology.
// relCfg non-nil interposes a reliability layer per node (relCfg[node]
// carrying that node's fault devices); nil runs bare TCP with faults, if
// any, in the wire send chain (where PR 1 left them: above the transport,
// unrecoverable).
func buildTwoNodes(t *testing.T, topo *topology.Topology, mkProg func() *core.Program,
	relCfg *[2]vmi.ReliableConfig, bareFaults [2][]vmi.SendDevice) *twoNodeHarness {
	t.Helper()
	h := &twoNodeHarness{}
	routeFn := func(pe int32) int { return int(pe) }
	addrs := []map[int]string{
		{0: "127.0.0.1:0", 1: ""},
		{0: "", 1: "127.0.0.1:0"},
	}
	for node := 0; node < 2; node++ {
		node := node
		inject := func(f *vmi.Frame) error { return h.rts[node].InjectFrame(f) }
		h.tcps[node] = vmi.NewTCP(node, addrs[node], routeFn, inject)
		if relCfg != nil {
			h.rels[node] = vmi.NewReliable(h.tcps[node], inject, relCfg[node])
		}
	}
	a0, err := h.tcps[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := h.tcps[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	h.tcps[0].SetAddr(1, a1)
	h.tcps[1].SetAddr(0, a0)

	for node := 0; node < 2; node++ {
		var tr core.Transport = h.tcps[node]
		if h.rels[node] != nil {
			tr = h.rels[node]
		}
		rt, err := core.NewRuntime(topo, mkProg(), core.Options{
			Transport: tr,
			NodeOf:    func(pe int) int { return pe },
			Node:      node,
			PELo:      node,
			PEHi:      node + 1,
			WireSend:  bareFaults[node],
		})
		if err != nil {
			t.Fatal(err)
		}
		h.rts[node] = rt
	}
	t.Cleanup(func() {
		for node := 0; node < 2; node++ {
			if h.rels[node] != nil {
				h.rels[node].Close()
			}
			h.tcps[node].Close()
		}
	})
	return h
}

// run executes both runtimes (node 0 as coordinator) and returns node 0's
// result. The worker node is stopped once the coordinator finishes, as
// cmd/gridnode's coordinator shutdown announcement does.
func (h *twoNodeHarness) run(t *testing.T, timeout time.Duration) (any, error) {
	t.Helper()
	workerDone := make(chan error, 1)
	go func() {
		_, err := h.rts[1].Run()
		workerDone <- err
	}()
	type result struct {
		v   any
		err error
	}
	coord := make(chan result, 1)
	go func() {
		v, err := h.rts[0].Run()
		coord <- result{v, err}
	}()
	var r result
	select {
	case r = <-coord:
	case <-time.After(timeout):
		t.Fatal("coordinator did not finish within timeout")
	}
	h.rts[1].Stop()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker node never stopped")
	}
	return r.v, r.err
}

// dropConnSoon severs the node0→node1 connection as soon as one exists
// (polling, since the transport dials lazily) and reports whether it
// managed to within the window.
func dropConnSoon(h *twoNodeHarness, window time.Duration) <-chan bool {
	done := make(chan bool, 1)
	go func() {
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			if h.tcps[0].DropConn(1) {
				done <- true
				return
			}
			time.Sleep(time.Millisecond)
		}
		done <- false
	}()
	return done
}

func stencilParams() *stencil.Params {
	// 30 steps over a 2ms WAN keeps the run alive for tens of
	// milliseconds, so the forced disconnect (fired as soon as the first
	// ghost exchange dials the link) lands mid-run, with plenty of later
	// traffic to repair.
	return &stencil.Params{Width: 64, Height: 64, VX: 2, VY: 2, Steps: 30, Warmup: 0}
}

func stencilProg(t *testing.T) func() *core.Program {
	return func() *core.Program {
		prog, err := stencil.BuildProgram(stencilParams())
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
}

// TestChaosStencilBitIdentical is the acceptance run: a stencil over
// TwoClusters with 5% seeded drop on both send paths plus one forced TCP
// disconnect completes and produces a checksum bit-identical to the
// fault-free run. (All reduction fold points combine at most two
// contributions, and IEEE-754 addition is commutative, so the checksum is
// independent of message arrival order — any bit difference means frames
// were lost, duplicated, or corrupted.)
func TestChaosStencilBitIdentical(t *testing.T) {
	seed := coreChaosSeed(t)
	topoFor := func() *topology.Topology {
		topo, err := topology.TwoClusters(2, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}

	// Fault-free baseline: same wiring, reliability on, no faults.
	base := buildTwoNodes(t, topoFor(), stencilProg(t), &[2]vmi.ReliableConfig{}, [2][]vmi.SendDevice{})
	bv, err := base.run(t, 30*time.Second)
	if err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	baseRes, ok := bv.(*stencil.Result)
	if !ok {
		t.Fatalf("fault-free result = %T, want *stencil.Result", bv)
	}

	// Chaos run: 5% drop under the reliability layer on both nodes, plus a
	// forced disconnect as soon as the WAN link is up.
	fd0 := vmi.NewFaultDevice(seed, vmi.FaultPlan{Drop: 0.05})
	fd1 := vmi.NewFaultDevice(seed+1, vmi.FaultPlan{Drop: 0.05})
	defer fd0.Close()
	defer fd1.Close()
	cfg := [2]vmi.ReliableConfig{
		{RTO: 5 * time.Millisecond, SendFaults: []vmi.SendDevice{fd0}},
		{RTO: 5 * time.Millisecond, SendFaults: []vmi.SendDevice{fd1}},
	}
	chaos := buildTwoNodes(t, topoFor(), stencilProg(t), &cfg, [2][]vmi.SendDevice{})
	dropped := dropConnSoon(chaos, 10*time.Second)
	cv, err := chaos.run(t, 60*time.Second)
	if err != nil {
		t.Fatalf("chaos run failed (seed %d): %v", seed, err)
	}
	if !<-dropped {
		t.Fatal("forced disconnect never found a live connection to sever")
	}
	chaosRes, ok := cv.(*stencil.Result)
	if !ok {
		t.Fatalf("chaos result = %T, want *stencil.Result", cv)
	}

	if math.Float64bits(chaosRes.Checksum) != math.Float64bits(baseRes.Checksum) {
		t.Errorf("checksum diverged under chaos (seed %d): %x (%.17g) vs fault-free %x (%.17g)",
			seed, math.Float64bits(chaosRes.Checksum), chaosRes.Checksum,
			math.Float64bits(baseRes.Checksum), baseRes.Checksum)
	}
	if fd0.Stats().Dropped == 0 && fd1.Stats().Dropped == 0 {
		t.Error("chaos run dropped no frames; the schedule never exercised the reliability layer")
	}
	relStats := [2]vmi.ReliableStats{chaos.rels[0].Stats(), chaos.rels[1].Stats()}
	if relStats[0].Retransmits+relStats[1].Retransmits == 0 {
		t.Error("drops and a disconnect produced zero retransmits; the reliability layer never repaired anything")
	}
	if relStats[0].TransportErrs == 0 {
		t.Error("forced disconnect was not absorbed as a transport error on node 0")
	}
	t.Logf("faults 0→1: %+v, 1→0: %+v", fd0.Stats(), fd1.Stats())
	t.Logf("repairs node 0: %+v, node 1: %+v", relStats[0], relStats[1])
}

// TestChaosStencilFailsWithoutReliability: the same fault schedule with the
// reliability layer disabled does not complete — the forced disconnect
// surfaces as a run error through the transport's fail-fast error handler
// (and the 5% drops, living above the transport in PR 1's wire chain, are
// simply lost).
func TestChaosStencilFailsWithoutReliability(t *testing.T) {
	seed := coreChaosSeed(t)
	topo, err := topology.TwoClusters(2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fd0 := vmi.NewFaultDevice(seed, vmi.FaultPlan{Drop: 0.05})
	fd1 := vmi.NewFaultDevice(seed+1, vmi.FaultPlan{Drop: 0.05})
	defer fd0.Close()
	defer fd1.Close()
	h := buildTwoNodes(t, topo, stencilProg(t), nil, [2][]vmi.SendDevice{
		{fd0}, {fd1},
	})
	for node := 0; node < 2; node++ {
		h.tcps[node].DialAttempts = 2 // fail fast once the link is severed
	}

	workerDone := make(chan struct{})
	go func() {
		_, _ = h.rts[1].Run()
		close(workerDone)
	}()
	dropped := dropConnSoon(h, 10*time.Second)
	res := make(chan error, 1)
	go func() {
		_, err := h.rts[0].Run()
		res <- err
	}()
	select {
	case err := <-res:
		if err == nil {
			t.Errorf("run succeeded despite drops and a severed connection without reliability (seed %d)", seed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("unreliable chaos run neither failed nor finished")
	}
	if !<-dropped {
		t.Fatal("forced disconnect never found a live connection to sever")
	}
	h.rts[1].Stop()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker node never stopped")
	}
}

// pingChare bounces a counter between two elements, recording every value
// it receives so the test can check exactly-once, in-order delivery at the
// application layer.
type pingChare struct {
	rec   *pingRecorder
	limit int
}

type pingRecorder struct {
	mu   sync.Mutex
	seen map[int][]int // element index -> values received, in order
}

func (c *pingChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	n := data.(int)
	idx := ctx.Elem().Index
	c.rec.mu.Lock()
	c.rec.seen[idx] = append(c.rec.seen[idx], n)
	c.rec.mu.Unlock()
	if n >= c.limit {
		ctx.ExitWith(n)
		return
	}
	ctx.Send(core.ElemRef{Array: 0, Index: 1 - idx}, 0, n+1)
}

// TestChaosPingPongExactlyOnce: a ping-pong over a fully faulty link
// (drops, duplicates, reordering, corruption) still delivers each message
// exactly once and in order — any duplicate or out-of-order delivery
// would break the strict value sequences each element records.
func TestChaosPingPongExactlyOnce(t *testing.T) {
	seed := coreChaosSeed(t)
	core.RegisterPayload(int(0))
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 60 // even: the exchange ends on element 0 (node 0)
	rec := &pingRecorder{seen: make(map[int][]int)}
	mkProg := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) core.Chare { return &pingChare{rec: rec, limit: limit} },
			}},
			Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 0) },
		}
	}
	plan := vmi.FaultPlan{Drop: 0.1, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1}
	fd0 := vmi.NewFaultDevice(seed, plan)
	fd1 := vmi.NewFaultDevice(seed+1, plan)
	defer fd0.Close()
	defer fd1.Close()
	cfg := [2]vmi.ReliableConfig{
		{RTO: 5 * time.Millisecond, SendFaults: []vmi.SendDevice{fd0}},
		{RTO: 5 * time.Millisecond, SendFaults: []vmi.SendDevice{fd1}},
	}
	h := buildTwoNodes(t, topo, mkProg, &cfg, [2][]vmi.SendDevice{})
	v, err := h.run(t, 60*time.Second)
	if err != nil {
		t.Fatalf("chaos ping-pong failed (seed %d): %v", seed, err)
	}
	if v.(int) != limit {
		t.Errorf("final value = %v, want %d", v, limit)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	// Element 0 must have seen exactly 0,2,4,...,limit; element 1 exactly
	// 1,3,...,limit-1. A lost message would stall the exchange, a
	// duplicate would repeat a value, reordering would break monotonicity.
	for idx, first := range map[int]int{0: 0, 1: 1} {
		var want []int
		for v := first; v <= limit; v += 2 {
			want = append(want, v)
		}
		got := rec.seen[idx]
		if len(got) != len(want) {
			t.Fatalf("element %d received %d values, want %d (seed %d): %v", idx, len(got), len(want), seed, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("element %d value %d = %d, want %d (seed %d)", idx, i, got[i], want[i], seed)
			}
		}
	}
	if s := fd0.Stats(); s.Dropped+s.Duplicated+s.Reordered+s.Corrupted == 0 {
		t.Error("fault schedule injected nothing; the run proved nothing")
	}
}
