package core_test

import (
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// End-to-end chaos acceptance tests: real programs (the stencil benchmark,
// a ping-pong exchange) over two runtimes joined by the real TCP
// transport, with seeded faults injected below the reliability layer and a
// forced mid-run disconnect. The assertions are outcome invariants —
// exactly-once, in-order delivery and bit-identical results versus a
// fault-free run — which hold for any interleaving of the same seeded
// fault schedule; the schedule itself is seed-deterministic (see
// vmi.TestChaosSameSeedSameFaultSchedule).

// coreChaosSeed mirrors vmi's chaos seed plumbing: GRIDMDO_CHAOS_SEED
// replays a schedule, and the seed in use is always logged.
func coreChaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("GRIDMDO_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GRIDMDO_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (set GRIDMDO_CHAOS_SEED=%d to replay)", seed, seed)
	return seed
}

// twoNodeHarness is one two-process run: a pair of ChainBuilder stacks on
// loopback, optionally carrying reliability layers, hosting one PE each.
type twoNodeHarness struct {
	stacks [2]*vmi.Stack
	regs   [2]*metrics.Registry
	rts    [2]*core.Runtime
}

// buildTwoNodes wires stacks and runtimes for a two-PE topology through
// the ChainBuilder. relCfg non-nil interposes a reliability layer per
// node; faults[node] sits below it (inside the repair envelope) or, with
// relCfg nil, directly above the socket — unrecoverable. Each node gets
// its own metrics registry, shared between the stack and the runtime, so
// chaos runs double as end-to-end observability checks.
func buildTwoNodes(t *testing.T, topo *topology.Topology, mkProg func() *core.Program,
	relCfg *[2]vmi.ReliableConfig, faults [2][]vmi.SendDevice) *twoNodeHarness {
	t.Helper()
	h := &twoNodeHarness{}
	routeFn := func(pe int32) int { return int(pe) }
	addrs := []map[int]string{
		{0: "127.0.0.1:0", 1: ""},
		{0: "", 1: "127.0.0.1:0"},
	}
	for node := 0; node < 2; node++ {
		h.regs[node] = metrics.NewRegistry()
		b := vmi.NewChainBuilder(node, addrs[node], routeFn).
			Metrics(h.regs[node]).
			Faults(faults[node], nil)
		if relCfg != nil {
			b = b.Reliable(relCfg[node])
		}
		st, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		h.stacks[node] = st
	}
	a0, err := h.stacks[0].Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := h.stacks[1].Listen()
	if err != nil {
		t.Fatal(err)
	}
	h.stacks[0].SetAddr(1, a1)
	h.stacks[1].SetAddr(0, a0)

	for node := 0; node < 2; node++ {
		rt, err := core.NewRuntime(topo, mkProg(),
			core.WithCluster(core.ClusterConfig{
				Transport: h.stacks[node],
				NodeOf:    func(pe int) int { return pe },
				Node:      node,
				PELo:      node,
				PEHi:      node + 1,
			}),
			core.WithMetrics(h.regs[node]))
		if err != nil {
			t.Fatal(err)
		}
		h.rts[node] = rt
	}
	t.Cleanup(func() {
		for node := 0; node < 2; node++ {
			h.stacks[node].Close()
		}
	})
	return h
}

// run executes both runtimes (node 0 as coordinator) and returns node 0's
// result. The worker node is stopped once the coordinator finishes, as
// cmd/gridnode's coordinator shutdown announcement does.
func (h *twoNodeHarness) run(t *testing.T, timeout time.Duration) (any, error) {
	t.Helper()
	workerDone := make(chan error, 1)
	go func() {
		_, err := h.rts[1].Run()
		workerDone <- err
	}()
	type result struct {
		v   any
		err error
	}
	coord := make(chan result, 1)
	go func() {
		v, err := h.rts[0].Run()
		coord <- result{v, err}
	}()
	var r result
	select {
	case r = <-coord:
	case <-time.After(timeout):
		t.Fatal("coordinator did not finish within timeout")
	}
	h.rts[1].Stop()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker node never stopped")
	}
	return r.v, r.err
}

// dropConnSoon severs the node0→node1 connection as soon as one exists
// (polling, since the transport dials lazily) and reports whether it
// managed to within the window.
func dropConnSoon(h *twoNodeHarness, window time.Duration) <-chan bool {
	done := make(chan bool, 1)
	go func() {
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			if h.stacks[0].TCP().DropConn(1) {
				done <- true
				return
			}
			time.Sleep(time.Millisecond)
		}
		done <- false
	}()
	return done
}

func stencilParams() *stencil.Params {
	// 30 steps over a 2ms WAN keeps the run alive for tens of
	// milliseconds, so the forced disconnect (fired as soon as the first
	// ghost exchange dials the link) lands mid-run, with plenty of later
	// traffic to repair.
	return &stencil.Params{Width: 64, Height: 64, VX: 2, VY: 2, Steps: 30, Warmup: 0}
}

func stencilProg(t *testing.T) func() *core.Program {
	return func() *core.Program {
		prog, err := stencil.BuildProgram(stencilParams())
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
}

// TestChaosStencilBitIdentical is the acceptance run: a stencil over
// TwoClusters with 5% seeded drop on both send paths plus one forced TCP
// disconnect completes and produces a checksum bit-identical to the
// fault-free run. (All reduction fold points combine at most two
// contributions, and IEEE-754 addition is commutative, so the checksum is
// independent of message arrival order — any bit difference means frames
// were lost, duplicated, or corrupted.)
func TestChaosStencilBitIdentical(t *testing.T) {
	seed := coreChaosSeed(t)
	topoFor := func() *topology.Topology {
		topo, err := topology.TwoClusters(2, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}

	// Fault-free baseline: same wiring, reliability on, no faults.
	base := buildTwoNodes(t, topoFor(), stencilProg(t), &[2]vmi.ReliableConfig{}, [2][]vmi.SendDevice{})
	bv, err := base.run(t, 30*time.Second)
	if err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	baseRes, ok := bv.(*stencil.Result)
	if !ok {
		t.Fatalf("fault-free result = %T, want *stencil.Result", bv)
	}

	// Chaos run: 5% drop under the reliability layer on both nodes, plus a
	// forced disconnect as soon as the WAN link is up.
	fd0 := vmi.NewFaultDevice(seed, vmi.FaultPlan{Drop: 0.05})
	fd1 := vmi.NewFaultDevice(seed+1, vmi.FaultPlan{Drop: 0.05})
	defer fd0.Close()
	defer fd1.Close()
	cfg := [2]vmi.ReliableConfig{
		{RTO: 5 * time.Millisecond},
		{RTO: 5 * time.Millisecond},
	}
	chaos := buildTwoNodes(t, topoFor(), stencilProg(t), &cfg,
		[2][]vmi.SendDevice{{fd0}, {fd1}})
	dropped := dropConnSoon(chaos, 10*time.Second)
	cv, err := chaos.run(t, 60*time.Second)
	if err != nil {
		t.Fatalf("chaos run failed (seed %d): %v", seed, err)
	}
	if !<-dropped {
		t.Fatal("forced disconnect never found a live connection to sever")
	}
	chaosRes, ok := cv.(*stencil.Result)
	if !ok {
		t.Fatalf("chaos result = %T, want *stencil.Result", cv)
	}

	if math.Float64bits(chaosRes.Checksum) != math.Float64bits(baseRes.Checksum) {
		t.Errorf("checksum diverged under chaos (seed %d): %x (%.17g) vs fault-free %x (%.17g)",
			seed, math.Float64bits(chaosRes.Checksum), chaosRes.Checksum,
			math.Float64bits(baseRes.Checksum), baseRes.Checksum)
	}
	if fd0.Stats().Dropped == 0 && fd1.Stats().Dropped == 0 {
		t.Error("chaos run dropped no frames; the schedule never exercised the reliability layer")
	}
	relStats := [2]vmi.ReliableStats{chaos.stacks[0].Reliable().Stats(), chaos.stacks[1].Reliable().Stats()}
	if relStats[0].Retransmits+relStats[1].Retransmits == 0 {
		t.Error("drops and a disconnect produced zero retransmits; the reliability layer never repaired anything")
	}
	if relStats[0].TransportErrs == 0 {
		t.Error("forced disconnect was not absorbed as a transport error on node 0")
	}
	t.Logf("faults 0→1: %+v, 1→0: %+v", fd0.Stats(), fd1.Stats())
	t.Logf("repairs node 0: %+v, node 1: %+v", relStats[0], relStats[1])
}

// TestChaosStencilFailsWithoutReliability: the same fault schedule with the
// reliability layer disabled does not complete — the forced disconnect
// surfaces as a run error through the stack's bound failure hook (and the
// 5% drops, with no reliability layer above them, are simply lost).
func TestChaosStencilFailsWithoutReliability(t *testing.T) {
	seed := coreChaosSeed(t)
	topo, err := topology.TwoClusters(2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fd0 := vmi.NewFaultDevice(seed, vmi.FaultPlan{Drop: 0.05})
	fd1 := vmi.NewFaultDevice(seed+1, vmi.FaultPlan{Drop: 0.05})
	defer fd0.Close()
	defer fd1.Close()
	h := buildTwoNodes(t, topo, stencilProg(t), nil, [2][]vmi.SendDevice{
		{fd0}, {fd1},
	})
	for node := 0; node < 2; node++ {
		h.stacks[node].TCP().DialAttempts = 2 // fail fast once the link is severed
	}

	workerDone := make(chan struct{})
	go func() {
		_, _ = h.rts[1].Run()
		close(workerDone)
	}()
	dropped := dropConnSoon(h, 10*time.Second)
	res := make(chan error, 1)
	go func() {
		_, err := h.rts[0].Run()
		res <- err
	}()
	select {
	case err := <-res:
		if err == nil {
			t.Errorf("run succeeded despite drops and a severed connection without reliability (seed %d)", seed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("unreliable chaos run neither failed nor finished")
	}
	if !<-dropped {
		t.Fatal("forced disconnect never found a live connection to sever")
	}
	h.rts[1].Stop()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker node never stopped")
	}
}

// pingChare bounces a counter between two elements, recording every value
// it receives so the test can check exactly-once, in-order delivery at the
// application layer.
type pingChare struct {
	rec   *pingRecorder
	limit int
}

type pingRecorder struct {
	mu   sync.Mutex
	seen map[int][]int // element index -> values received, in order
}

func (c *pingChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	n := data.(int)
	idx := ctx.Elem().Index
	c.rec.mu.Lock()
	c.rec.seen[idx] = append(c.rec.seen[idx], n)
	c.rec.mu.Unlock()
	if n >= c.limit {
		ctx.ExitWith(n)
		return
	}
	ctx.Send(core.ElemRef{Array: 0, Index: 1 - idx}, 0, n+1)
}

// TestChaosPingPongExactlyOnce: a ping-pong over a fully faulty link
// (drops, duplicates, reordering, corruption) still delivers each message
// exactly once and in order — any duplicate or out-of-order delivery
// would break the strict value sequences each element records.
func TestChaosPingPongExactlyOnce(t *testing.T) {
	seed := coreChaosSeed(t)
	core.RegisterPayload(int(0))
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 60 // even: the exchange ends on element 0 (node 0)
	rec := &pingRecorder{seen: make(map[int][]int)}
	mkProg := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) core.Chare { return &pingChare{rec: rec, limit: limit} },
			}},
			Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 0) },
		}
	}
	plan := vmi.FaultPlan{Drop: 0.1, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1}
	fd0 := vmi.NewFaultDevice(seed, plan)
	fd1 := vmi.NewFaultDevice(seed+1, plan)
	defer fd0.Close()
	defer fd1.Close()
	cfg := [2]vmi.ReliableConfig{
		{RTO: 5 * time.Millisecond},
		{RTO: 5 * time.Millisecond},
	}
	h := buildTwoNodes(t, topo, mkProg, &cfg, [2][]vmi.SendDevice{{fd0}, {fd1}})
	v, err := h.run(t, 60*time.Second)
	if err != nil {
		t.Fatalf("chaos ping-pong failed (seed %d): %v", seed, err)
	}
	if v.(int) != limit {
		t.Errorf("final value = %v, want %d", v, limit)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	// Element 0 must have seen exactly 0,2,4,...,limit; element 1 exactly
	// 1,3,...,limit-1. A lost message would stall the exchange, a
	// duplicate would repeat a value, reordering would break monotonicity.
	for idx, first := range map[int]int{0: 0, 1: 1} {
		var want []int
		for v := first; v <= limit; v += 2 {
			want = append(want, v)
		}
		got := rec.seen[idx]
		if len(got) != len(want) {
			t.Fatalf("element %d received %d values, want %d (seed %d): %v", idx, len(got), len(want), seed, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("element %d value %d = %d, want %d (seed %d)", idx, i, got[i], want[i], seed)
			}
		}
	}
	if s := fd0.Stats(); s.Dropped+s.Duplicated+s.Reordered+s.Corrupted == 0 {
		t.Error("fault schedule injected nothing; the run proved nothing")
	}
}

// swapStrategy moves every element to the other PE of a two-PE machine —
// the smallest plan in which both evict→arrive legs cross the process
// boundary (and, on TwoClusters(2), the WAN).
type swapStrategy struct{}

func (swapStrategy) Name() string { return "swap" }
func (swapStrategy) Plan(stats *core.LBStats) []core.Move {
	var moves []core.Move
	for _, e := range stats.Elems {
		moves = append(moves, core.Move{Ref: e.Ref, ToPE: 1 - e.PE})
	}
	return moves
}

// migPing is a migratable ping-pong element: the counter exchange of
// pingChare plus an AtSync barrier at syncVal, after which the balancer
// swaps both elements across the node boundary. Pending — the value to
// send when the balancing round resumes — is the element's only PUP
// state; the recorder tracks values and PEs for the test's assertions.
type migPing struct {
	rec            *migPingRecorder
	limit, syncVal int
	Pending        int // value to send at ResumeFromSync; -1 = none
}

type migPingRecorder struct {
	mu   sync.Mutex
	vals map[int][]int // element index -> values received, in order
	pes  map[int][]int // element index -> PE that processed each value
}

func (c *migPing) PUP(p *core.PUP) { p.Int(&c.Pending) }

func (c *migPing) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	idx := ctx.Elem().Index
	if entry == core.EntryResumeFromSync {
		if c.Pending >= 0 {
			v := c.Pending
			c.Pending = -1
			ctx.Send(core.ElemRef{Array: 0, Index: 1 - idx}, 0, v)
		}
		return
	}
	n := data.(int)
	c.rec.mu.Lock()
	c.rec.vals[idx] = append(c.rec.vals[idx], n)
	c.rec.pes[idx] = append(c.rec.pes[idx], ctx.PE())
	c.rec.mu.Unlock()
	switch {
	case n >= c.limit:
		ctx.ExitWith(n)
	case n == c.syncVal:
		// Hold the reply across the balancing round; everything sent to
		// this element has been received, so it is safe to pack.
		c.Pending = n + 1
		ctx.AtSync()
	default:
		ctx.Send(core.ElemRef{Array: 0, Index: 1 - idx}, 0, n+1)
		if n+1 == c.syncVal {
			// This element's part of the exchange is done until the round
			// completes: enter the barrier with nothing pending.
			ctx.AtSync()
		}
	}
}

// TestChaosLBMigrationExactlyOnce is the migration acceptance run: a
// balancing round that swaps both elements across the two-process (and
// WAN) boundary completes under seeded drops repaired by the reliability
// layer, every message before and after the swap is delivered exactly
// once and in order, and both nodes' location tables agree on the new
// placement.
func TestChaosLBMigrationExactlyOnce(t *testing.T) {
	seed := coreChaosSeed(t)
	core.RegisterPayload(int(0))
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// limit odd: the final value lands on element 1, which the swap moved
	// to PE 0, so the exchange ends on the coordinator node. syncVal odd
	// for the same reason — element 1 receives it and holds the reply.
	const limit, syncVal = 41, 21
	rec := &migPingRecorder{vals: make(map[int][]int), pes: make(map[int][]int)}
	mkProg := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 2,
				New: func(i int) core.Chare {
					return &migPing{rec: rec, limit: limit, syncVal: syncVal, Pending: -1}
				},
			}},
			Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 0) },
			LB:    &core.LBConfig{Arrays: []core.ArrayID{0}, Strategy: swapStrategy{}},
		}
	}
	fd0 := vmi.NewFaultDevice(seed, vmi.FaultPlan{Drop: 0.1})
	fd1 := vmi.NewFaultDevice(seed+1, vmi.FaultPlan{Drop: 0.1})
	defer fd0.Close()
	defer fd1.Close()
	cfg := [2]vmi.ReliableConfig{
		{RTO: 5 * time.Millisecond},
		{RTO: 5 * time.Millisecond},
	}
	h := buildTwoNodes(t, topo, mkProg, &cfg, [2][]vmi.SendDevice{{fd0}, {fd1}})
	v, err := h.run(t, 60*time.Second)
	if err != nil {
		t.Fatalf("chaos LB migration run failed (seed %d): %v", seed, err)
	}
	if v.(int) != limit {
		t.Errorf("final value = %v, want %d", v, limit)
	}

	// Exactly-once, in-order delivery around the migration: element 0 saw
	// exactly 0,2,...,40, element 1 exactly 1,3,...,41, and each element's
	// processing PE flipped exactly once, at the balancing round.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for idx, first := range map[int]int{0: 0, 1: 1} {
		var want []int
		for v := first; v <= limit; v += 2 {
			want = append(want, v)
		}
		got := rec.vals[idx]
		if len(got) != len(want) {
			t.Fatalf("element %d received %d values, want %d (seed %d): %v", idx, len(got), len(want), seed, got)
		}
		flips := 0
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("element %d value %d = %d, want %d (seed %d)", idx, i, got[i], want[i], seed)
			}
			if got[i] <= syncVal && rec.pes[idx][i] != idx {
				t.Errorf("element %d processed pre-sync value %d on PE %d, want %d", idx, got[i], rec.pes[idx][i], idx)
			}
			if got[i] > syncVal+1 && rec.pes[idx][i] != 1-idx {
				t.Errorf("element %d processed post-sync value %d on PE %d, want %d", idx, got[i], rec.pes[idx][i], 1-idx)
			}
			if i > 0 && rec.pes[idx][i] != rec.pes[idx][i-1] {
				flips++
			}
		}
		if flips != 1 {
			t.Errorf("element %d changed PE %d times, want exactly once: %v", idx, flips, rec.pes[idx])
		}
	}

	// Both processes agree the elements swapped.
	for i := 0; i < 2; i++ {
		ref := core.ElemRef{Array: 0, Index: i}
		pe0, pe1 := h.rts[0].Locations().PEOf(ref), h.rts[1].Locations().PEOf(ref)
		if pe0 != pe1 {
			t.Errorf("element %d: node 0 places it on PE %d, node 1 on PE %d", i, pe0, pe1)
		}
		if int(pe0) != 1-i {
			t.Errorf("element %d on PE %d after the swap, want PE %d", i, pe0, 1-i)
		}
	}

	// The counters prove one round with two migrations, repaired drops
	// underneath.
	if v := h.regs[0].Snapshot().Value("core_lb_rounds_total"); v != 1 {
		t.Errorf("core_lb_rounds_total = %d, want 1", v)
	}
	if v := h.regs[0].Snapshot().Value("core_lb_moves_total"); v != 2 {
		t.Errorf("core_lb_moves_total = %d, want 2", v)
	}
	if fd0.Stats().Dropped+fd1.Stats().Dropped == 0 {
		t.Error("chaos schedule dropped nothing; the run proved nothing")
	}
	rel := [2]vmi.ReliableStats{h.stacks[0].Reliable().Stats(), h.stacks[1].Reliable().Stats()}
	if rel[0].Retransmits+rel[1].Retransmits == 0 {
		t.Error("drops produced zero retransmits; the reliability layer never repaired anything")
	}
	t.Logf("faults 0→1: %+v, 1→0: %+v; repairs: %+v / %+v", fd0.Stats(), fd1.Stats(), rel[0], rel[1])
}

// sinkChare counts one-directional deliveries for the metrics
// consistency run.
type sinkChare struct{ got *atomic.Int64 }

func (c *sinkChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) { c.got.Add(1) }

// TestChaosMetricsConsistent drives strictly one-directional traffic
// (node 0 → node 1, so the faulty send path carries only data frames,
// never acks) through seeded faults and checks that the metrics balance:
// every wire transmission — original, retransmission, or fault-injected
// duplicate — is either dropped by the fault device or arrives at the
// receiver, where it is delivered exactly once or suppressed as a
// duplicate —
//
//	DataSent + Retransmits + Duplicated − Dropped == Delivered + DupDropped
//
// and that the registries both nodes share with their stacks report the
// same numbers as the device stats.
func TestChaosMetricsConsistent(t *testing.T) {
	seed := coreChaosSeed(t)
	core.RegisterPayload(int(0))
	const n = 80

	runCase := func(t *testing.T, plan vmi.FaultPlan, rto time.Duration) (vmi.FaultStats, vmi.ReliableStats, vmi.ReliableStats, *twoNodeHarness) {
		t.Helper()
		topo, err := topology.TwoClusters(2, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var got atomic.Int64
		mkProg := func() *core.Program {
			return &core.Program{
				Arrays: []core.ArraySpec{{
					ID: 0, N: 2,
					New: func(i int) core.Chare { return &sinkChare{got: &got} },
				}},
				Start: func(ctx *core.Ctx) {
					for i := 0; i < n; i++ {
						ctx.Send(core.ElemRef{Array: 0, Index: 1}, 0, i)
					}
				},
			}
		}
		fd := vmi.NewFaultDevice(seed, plan)
		t.Cleanup(fd.Close)
		cfg := [2]vmi.ReliableConfig{{RTO: rto}, {RTO: rto}}
		h := buildTwoNodes(t, topo, mkProg, &cfg, [2][]vmi.SendDevice{{fd}, nil})
		errs := make(chan error, 2)
		for node := 0; node < 2; node++ {
			node := node
			go func() {
				_, err := h.rts[node].Run()
				errs <- err
			}()
		}
		rel0, rel1 := h.stacks[0].Reliable(), h.stacks[1].Reliable()
		deadline := time.Now().Add(30 * time.Second)
		for {
			s0, s1 := rel0.Stats(), rel1.Stats()
			fs := fd.Stats()
			if got.Load() == n && rel0.Outstanding(1) == 0 &&
				s0.DataSent+s0.Retransmits+fs.Duplicated-fs.Dropped == s1.Delivered+s1.DupDropped {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("metrics never converged (seed %d): faults %+v, sender %+v, receiver %+v, delivered %d/%d",
					seed, fd.Stats(), s0, s1, got.Load(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
		h.rts[0].Stop()
		h.rts[1].Stop()
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("run failed (seed %d): %v", seed, err)
			}
		}
		return fd.Stats(), rel0.Stats(), rel1.Stats(), h
	}

	// seriesValue reads one labeled series out of a snapshot.
	seriesValue := func(t *testing.T, reg *metrics.Registry, name, labelSub string) int64 {
		t.Helper()
		for _, s := range reg.Snapshot().Series {
			if s.Name == name && strings.Contains(s.Labels, labelSub) {
				return s.Value
			}
		}
		t.Fatalf("series %s{%s} not in snapshot", name, labelSub)
		return 0
	}

	t.Run("duplicates", func(t *testing.T) {
		// A long RTO keeps retransmits out of the picture, so every
		// duplicate the fault device injects must surface as exactly one
		// dup-drop at the receiver.
		fault, send, recv, h := runCase(t, vmi.FaultPlan{Duplicate: 0.2}, 2*time.Second)
		if fault.Duplicated == 0 {
			t.Fatalf("fault schedule duplicated nothing (seed %d); the run proved nothing", seed)
		}
		if send.Retransmits != 0 {
			t.Fatalf("spurious retransmits (%d) with a 2s RTO (seed %d)", send.Retransmits, seed)
		}
		if recv.DupDropped != fault.Duplicated {
			t.Errorf("receiver dropped %d duplicates, fault device injected %d (seed %d)",
				recv.DupDropped, fault.Duplicated, seed)
		}
		if send.DataSent != n || recv.Delivered != n {
			t.Errorf("sent %d / delivered %d, want %d exactly-once (seed %d)", send.DataSent, recv.Delivered, n, seed)
		}
		// Registry series must agree with the device stats they expose.
		if v := h.regs[1].Snapshot().Value("vmi_rel_dup_dropped_total"); v != recv.DupDropped {
			t.Errorf("registry vmi_rel_dup_dropped_total = %d, stats say %d", v, recv.DupDropped)
		}
		if v := seriesValue(t, h.regs[0], "vmi_fault_injected_total", `kind="duplicate"`); v != fault.Duplicated {
			t.Errorf("registry vmi_fault_injected_total{kind=duplicate} = %d, stats say %d", v, fault.Duplicated)
		}
		if v := h.regs[1].Snapshot().Value("core_msgs_processed_total"); v != n {
			t.Errorf("registry core_msgs_processed_total on receiver = %d, want %d", v, n)
		}
	})

	t.Run("drops", func(t *testing.T) {
		fault, send, recv, h := runCase(t, vmi.FaultPlan{Drop: 0.1}, 5*time.Millisecond)
		if fault.Dropped == 0 {
			t.Fatalf("fault schedule dropped nothing (seed %d); the run proved nothing", seed)
		}
		if send.Retransmits < fault.Dropped {
			t.Errorf("%d retransmits cannot have repaired %d drops (seed %d)", send.Retransmits, fault.Dropped, seed)
		}
		if send.DataSent != n || recv.Delivered != n {
			t.Errorf("sent %d / delivered %d, want %d exactly-once (seed %d)", send.DataSent, recv.Delivered, n, seed)
		}
		if v := h.regs[0].Snapshot().Value("vmi_rel_retransmits_total"); v != send.Retransmits {
			t.Errorf("registry vmi_rel_retransmits_total = %d, stats say %d", v, send.Retransmits)
		}
		if v := seriesValue(t, h.regs[0], "vmi_fault_injected_total", `kind="drop"`); v != fault.Dropped {
			t.Errorf("registry vmi_fault_injected_total{kind=drop} = %d, stats say %d", v, fault.Dropped)
		}
	})
}
