// Package appflags consolidates the command-line surface shared by the
// repo's long-running commands (cmd/gridnode, cmd/gridgate). Each struct
// groups one concern's flags, registers them on a caller-supplied
// flag.FlagSet, and knows how to build the corresponding application
// Params — so the two binaries that must agree on a program shape
// (every process in a run builds the identical chare array) parse and
// validate it through the same code instead of two drifting copies.
package appflags

import (
	"errors"
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"gridmdo/internal/balance"
	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/metrics"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// Cluster is the multi-process deployment surface: which node this
// process is, where everyone listens, and how the PE space maps onto
// the two-cluster topology.
type Cluster struct {
	Node       int
	Addrs      string
	Procs      int
	Latency    time.Duration
	Split      int
	Reliable   bool
	Membership bool
	Joiners    string
}

// Register installs the cluster flags on fs under their historical
// names (-node, -addrs, ...).
func (c *Cluster) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Node, "node", 0, "this process's node index")
	fs.StringVar(&c.Addrs, "addrs", "", "comma-separated listen addresses, one per node")
	fs.IntVar(&c.Procs, "procs", 4, "total PEs across all nodes")
	fs.DurationVar(&c.Latency, "latency", 1725*time.Microsecond, "one-way inter-cluster latency")
	fs.IntVar(&c.Split, "split", 0, "PE index where cluster 1 begins (unequal co-allocations; 0 = procs/2)")
	fs.BoolVar(&c.Reliable, "reliable", false, "interpose the end-to-end reliability layer over TCP")
	fs.BoolVar(&c.Membership, "membership", false, "elastic cluster membership: join/drain/death handling (implies -reliable; node 0 coordinates)")
	fs.StringVar(&c.Joiners, "joiners", "", "comma-separated node indices that start outside the member set and join mid-run (identical on every process)")
}

// Layout is the resolved cluster geometry every process derives
// identically from its Cluster flags.
type Layout struct {
	Addrs   []string
	AddrMap map[int]string
	Nodes   int
	PerNode int
	Split   int
	Topo    *topology.Topology
}

// NodeOf maps a PE to the node hosting it.
func (l *Layout) NodeOf(pe int) int { return pe / l.PerNode }

// PELo and PEHi bound the contiguous PE range node hosts.
func (l *Layout) PELo(node int) int { return node * l.PerNode }
func (l *Layout) PEHi(node int) int { return (node + 1) * l.PerNode }

// Resolve validates the cluster flags and builds the shared geometry:
// the address table, the even PE split across processes, and the
// two-cluster topology with the injected wide-area latency.
func (c *Cluster) Resolve() (*Layout, error) {
	addrs := strings.Split(c.Addrs, ",")
	nodes := len(addrs)
	if c.Addrs == "" || nodes < 2 {
		return nil, fmt.Errorf("need -addrs with at least two addresses")
	}
	if c.Node < 0 || c.Node >= nodes {
		return nil, fmt.Errorf("node %d out of range for %d addresses", c.Node, nodes)
	}
	if c.Procs%nodes != 0 {
		return nil, fmt.Errorf("procs=%d not divisible by %d nodes", c.Procs, nodes)
	}
	split := c.Split
	if split == 0 {
		split = c.Procs / 2
	}
	if split <= 0 || split >= c.Procs {
		return nil, fmt.Errorf("split=%d out of range for %d PEs", split, c.Procs)
	}
	topo, err := topology.New([]int{split, c.Procs - split}, topology.WithInterLatency(c.Latency))
	if err != nil {
		return nil, err
	}
	addrMap := make(map[int]string, nodes)
	for i, a := range addrs {
		addrMap[i] = a
	}
	return &Layout{
		Addrs: addrs, AddrMap: addrMap,
		Nodes: nodes, PerNode: c.Procs / nodes,
		Split: split, Topo: topo,
	}, nil
}

// JoinerSet parses -joiners against the resolved node count.
func (c *Cluster) JoinerSet(nodes int) (map[int]bool, error) {
	joiner := make(map[int]bool)
	if c.Joiners == "" {
		return joiner, nil
	}
	for _, s := range strings.Split(c.Joiners, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 || n >= nodes {
			return nil, fmt.Errorf("bad -joiners entry %q (want node indices in [1,%d))", s, nodes)
		}
		joiner[n] = true
	}
	return joiner, nil
}

// Engine groups the virtual-time engine's execution flags: which event
// executor runs the program (-engine), how many workers drive the
// parallel one (-sim-workers), the machine itself as a synthetic
// topology spec (-topo), and the cold-store live-set bound (-pack-cold).
type Engine struct {
	Engine   string
	Workers  int
	Topo     string
	PackCold int
}

func (e *Engine) Register(fs *flag.FlagSet) {
	fs.StringVar(&e.Engine, "engine", "seq", "virtual-time event executor: seq (single-threaded) or par (sharded conservative parallel)")
	fs.IntVar(&e.Workers, "sim-workers", runtime.GOMAXPROCS(0), "parallel engine worker goroutines (-engine par)")
	fs.StringVar(&e.Topo, "topo", "", `synthetic topology spec, e.g. "8x128,4x64@0.5;wan=5ms;mesh=rand:7:2ms:20ms" (empty: command default)`)
	fs.IntVar(&e.PackCold, "pack-cold", 0, "bound live chares per PE; idle state is PUP-packed between events (0 = unbounded)")
}

// Validate aggregates every configuration error rather than stopping at
// the first, the same contract as taskfarm.Params.Validate: a bad
// command line reports all of its problems in one pass.
func (e *Engine) Validate() error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("engine: "+format, args...))
	}
	switch e.Engine {
	case "seq", "par":
	default:
		add("unknown -engine %q (want seq or par)", e.Engine)
	}
	if e.Engine == "par" && e.Workers < 1 {
		add("-sim-workers %d (parallel engine needs >= 1)", e.Workers)
	}
	if e.PackCold < 0 {
		add("-pack-cold %d (want 0 = unbounded, or a positive live-set cap)", e.PackCold)
	}
	if e.Topo != "" {
		if _, err := topology.ParseSpec(e.Topo); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Topology builds -topo when set, or falls back to the command default.
func (e *Engine) Topology(def func() (*topology.Topology, error)) (*topology.Topology, error) {
	if e.Topo == "" {
		return def()
	}
	s, err := topology.ParseSpec(e.Topo)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// New constructs the configured engine over topo and prog. The parallel
// engine refuses zero-lookahead topologies; the error carries the fix
// (a cross-PE latency), so it is surfaced as-is.
func (e *Engine) New(topo *topology.Topology, prog *core.Program, opts sim.Options) (*sim.Engine, error) {
	if e.PackCold > 0 {
		opts.PackCold = e.PackCold
	}
	if e.Engine == "par" {
		return sim.NewParallel(topo, prog, opts, e.Workers)
	}
	return sim.New(topo, prog, opts)
}

// Sim carries the step counts shared by the time-stepped applications.
type Sim struct {
	Steps  int
	Warmup int
}

func (s *Sim) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.Steps, "steps", 10, "time steps")
	fs.IntVar(&s.Warmup, "warmup", 3, "warmup steps")
}

// Stencil groups the 5-point stencil application's flags.
type Stencil struct {
	Objects  int
	Width    int
	LB       string
	LBPeriod int
}

func (st *Stencil) Register(fs *flag.FlagSet) {
	fs.IntVar(&st.Objects, "objects", 64, "stencil: virtualization degree (perfect square)")
	fs.IntVar(&st.Width, "width", 1024, "stencil: mesh width and height")
	fs.StringVar(&st.LB, "lb", "", "AtSync load balancing: greedy|refine|grid (stencil only)")
	fs.IntVar(&st.LBPeriod, "lb-period", 0, "balance every N steps (0: one round at steps/2)")
}

// strategyByName resolves a -lb flag value to a balancing strategy.
func strategyByName(name string) (core.Strategy, error) {
	switch name {
	case "greedy":
		return balance.Greedy{}, nil
	case "refine":
		return balance.Refine{}, nil
	case "grid":
		return balance.Grid{}, nil
	default:
		return nil, fmt.Errorf("unknown -lb strategy %q (want greedy, refine, or grid)", name)
	}
}

// Params builds the stencil parameters. With elastic set (-membership),
// initial placement is confined to the founding nodes' PEs.
func (st *Stencil) Params(sim Sim, elastic *taskfarm.ElasticConfig) (*stencil.Params, error) {
	v := 1
	for v*v < st.Objects {
		v++
	}
	if v*v != st.Objects {
		return nil, fmt.Errorf("objects=%d is not a perfect square", st.Objects)
	}
	p := &stencil.Params{
		Width: st.Width, Height: st.Width, VX: v, VY: v,
		Steps: sim.Steps, Warmup: sim.Warmup,
	}
	if st.LB != "" {
		s, err := strategyByName(st.LB)
		if err != nil {
			return nil, err
		}
		p.LB = s
		if st.LBPeriod > 0 {
			p.LBEvery = st.LBPeriod
		} else {
			p.LBAtStep = sim.Steps / 2
		}
	}
	if elastic != nil {
		nObj := v * v
		p.InitialMap = func(i, numPE int) int {
			var act []int
			for pe := 0; pe < numPE; pe++ {
				if elastic.ActiveNode(elastic.NodeOf(pe)) {
					act = append(act, pe)
				}
			}
			if len(act) == 0 {
				return 0
			}
			return act[core.BlockMap(i, nObj, len(act))]
		}
	}
	return p, nil
}

// LeanMD groups the molecular-dynamics application's flags.
type LeanMD struct {
	Cells int
	Atoms int
}

func (l *LeanMD) Register(fs *flag.FlagSet) {
	fs.IntVar(&l.Cells, "cells", 4, "leanmd: cells per axis")
	fs.IntVar(&l.Atoms, "atoms", 8, "leanmd: atoms per cell")
}

// Params builds the leanmd parameters.
func (l *LeanMD) Params(sim Sim) *leanmd.Params {
	p := leanmd.DefaultParams()
	p.NX, p.NY, p.NZ = l.Cells, l.Cells, l.Cells
	p.AtomsPerCell = l.Atoms
	p.Steps, p.Warmup = sim.Steps, sim.Warmup
	return p
}

// Farm groups the taskfarm application's flags, including -serve: the
// open-ended backend mode where tasks arrive from a gateway at runtime
// instead of being enumerated up front.
type Farm struct {
	Tasks    int
	Shards   int
	Batch    int
	Steal    bool
	Prefetch int
	Spin     int
	Skew     float64
	Serve    bool
}

func (f *Farm) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Tasks, "tasks", 2000, "taskfarm: task count")
	fs.IntVar(&f.Shards, "shards", 1, "taskfarm: dispatcher shard count (1 = single master)")
	fs.IntVar(&f.Batch, "batch", 16, "taskfarm: grant batch cap (sharded only)")
	fs.BoolVar(&f.Steal, "steal", false, "taskfarm: enable randomized work stealing between shards")
	fs.IntVar(&f.Prefetch, "prefetch", 2, "taskfarm: per-worker prefetch depth")
	fs.IntVar(&f.Spin, "spin", 20000, "taskfarm: wall-clock spin iterations per task")
	fs.Float64Var(&f.Skew, "skew", 1, "taskfarm: per-task cost ramp 1x..skew-x across the task space")
	fs.BoolVar(&f.Serve, "serve", false, "taskfarm: run as an open-ended service backend (tasks arrive from a gateway; requires -shards >= 1)")
}

// Params builds the taskfarm parameters. In serve mode the enumerated
// task count is ignored (the farm's task space is open-ended) and at
// least one shard is forced, since serve mode rides the sharded build.
func (f *Farm) Params(workers int, reg *metrics.Registry, elastic *taskfarm.ElasticConfig) *taskfarm.Params {
	p := &taskfarm.Params{
		Tasks: f.Tasks, Workers: workers,
		Prefetch: f.Prefetch, Spin: f.Spin,
		Shards: f.Shards, Batch: f.Batch, Steal: f.Steal,
		CostSkew: f.Skew, Seed: 1,
		Metrics: reg,
		Elastic: elastic,
	}
	if f.Serve {
		p.Serve = true
		p.Tasks = 0
		if p.Shards < 1 {
			p.Shards = 1
		}
	}
	return p
}

// Obs groups the observability artifact flags.
type Obs struct {
	MetricsAddr string
	MetricsOut  string
	TraceOut    string
	TraceCap    int

	Pprof             bool
	Telemetry         bool
	TelemetryInterval time.Duration
}

// Register installs the observability flags; traceCapDefault keeps the
// historical default (trace.DefaultCapacity) without importing trace
// here on behalf of commands that don't trace. Pass 0 to default
// -trace-cap to auto sizing (see TraceRingCap).
func (o *Obs) Register(fs *flag.FlagSet, traceCapDefault int) {
	fs.StringVar(&o.MetricsAddr, "metrics", "", "serve the metrics registry over HTTP on this address (e.g. 127.0.0.1:9300)")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file when the run completes")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write this node's causal trace snapshot (for cmd/gridtrace) to this file")
	fs.IntVar(&o.TraceCap, "trace-cap", traceCapDefault, "per-PE trace ring capacity (events; rounded up to a power of two; 0 = auto: full ring for -trace-out, small drained ring for -telemetry alone)")
	fs.BoolVar(&o.Pprof, "pprof", false, "mount net/http/pprof on the diagnostics HTTP server (needs -metrics or -listen)")
	fs.BoolVar(&o.Telemetry, "telemetry", false, "run a telemetry agent shipping metric deltas and trace digests to the cluster collector over the control path")
	fs.DurationVar(&o.TelemetryInterval, "telemetry-interval", 500*time.Millisecond, "telemetry agent reporting period")
}

// TraceRingCap resolves the per-PE trace ring capacity for this
// configuration. An explicit -trace-cap wins. Otherwise the ring is
// sized to its consumer: -trace-out keeps the whole run for a
// post-mortem snapshot (trace.DefaultCapacity), while a -telemetry-only
// tracer is drained every reporting interval and gets the small
// GC-friendly ring (trace.DrainedCapacity) — ring slots are
// pointer-bearing, so resident ring size is GC scan work on every
// cycle, not just memory.
func (o *Obs) TraceRingCap() int {
	if o.TraceCap > 0 {
		return o.TraceCap
	}
	if o.TraceOut != "" {
		return trace.DefaultCapacity
	}
	return trace.DrainedCapacity
}
