package appflags

import (
	"flag"
	"strings"
	"testing"
	"time"
)

func TestClusterResolve(t *testing.T) {
	c := Cluster{Node: 1, Addrs: "a:1,b:2", Procs: 4, Latency: time.Millisecond}
	lay, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if lay.Nodes != 2 || lay.PerNode != 2 || lay.Split != 2 {
		t.Errorf("layout %+v", lay)
	}
	if lay.NodeOf(3) != 1 || lay.PELo(1) != 2 || lay.PEHi(1) != 4 {
		t.Error("PE mapping wrong")
	}
	if lay.AddrMap[1] != "b:2" {
		t.Errorf("addr map %v", lay.AddrMap)
	}

	bad := []Cluster{
		{Addrs: "", Procs: 4},                  // no addresses
		{Addrs: "a:1", Procs: 4},               // single node
		{Addrs: "a:1,b:2", Procs: 3},           // indivisible
		{Addrs: "a:1,b:2", Procs: 4, Node: 2},  // node out of range
		{Addrs: "a:1,b:2", Procs: 4, Split: 9}, // split out of range
	}
	for i, c := range bad {
		if _, err := c.Resolve(); err == nil {
			t.Errorf("case %d: bad cluster %+v resolved", i, c)
		}
	}
}

func TestJoinerSet(t *testing.T) {
	c := Cluster{Joiners: "1, 2"}
	j, err := c.JoinerSet(3)
	if err != nil || !j[1] || !j[2] || j[0] {
		t.Fatalf("joiners %v, err %v", j, err)
	}
	for _, bad := range []string{"0", "3", "x"} {
		c.Joiners = bad
		if _, err := c.JoinerSet(3); err == nil {
			t.Errorf("joiners %q accepted", bad)
		}
	}
}

func TestFarmParamsServe(t *testing.T) {
	f := Farm{Tasks: 500, Shards: 0, Batch: 8, Prefetch: 2, Skew: 1, Serve: true}
	p := f.Params(4, nil, nil)
	if !p.Serve || p.Tasks != 0 || p.Shards != 1 {
		t.Errorf("serve params %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("serve params invalid: %v", err)
	}
	f.Serve = false
	if p := f.Params(4, nil, nil); p.Serve || p.Tasks != 500 {
		t.Errorf("batch params %+v", p)
	}
}

func TestStencilParams(t *testing.T) {
	st := Stencil{Objects: 5, Width: 64}
	if _, err := st.Params(Sim{Steps: 4}, nil); err == nil || !strings.Contains(err.Error(), "perfect square") {
		t.Errorf("objects=5 err %v", err)
	}
	st.Objects = 16
	p, err := st.Params(Sim{Steps: 4, Warmup: 1}, nil)
	if err != nil || p.VX != 4 || p.Steps != 4 {
		t.Errorf("params %+v err %v", p, err)
	}
	st.LB = "bogus"
	if _, err := st.Params(Sim{Steps: 4}, nil); err == nil {
		t.Error("bogus -lb accepted")
	}
}

// TestRegisterNamesStable pins the flag-name contract: the CI scripts
// and docs address these exact names.
func TestRegisterNamesStable(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var c Cluster
	var s Sim
	var st Stencil
	var l LeanMD
	var f Farm
	var o Obs
	c.Register(fs)
	s.Register(fs)
	st.Register(fs)
	l.Register(fs)
	f.Register(fs)
	o.Register(fs, 1024)
	for _, name := range []string{
		"node", "addrs", "procs", "latency", "split", "reliable", "membership", "joiners",
		"steps", "warmup", "objects", "width", "lb", "lb-period", "cells", "atoms",
		"tasks", "shards", "batch", "steal", "prefetch", "spin", "skew", "serve",
		"metrics", "metrics-out", "trace-out", "trace-cap",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s missing", name)
		}
	}
}
