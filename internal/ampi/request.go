package ampi

// Nonblocking operations. GridMDO sends are always asynchronous, so Isend
// completes immediately; Irecv posts a receive that Wait (or Waitall)
// completes later. As in MPI, two outstanding Irecvs with overlapping
// matching criteria complete in posting order only if waited in posting
// order; disjoint tags are always safe.

import "gridmdo/internal/trace"

// Request is the handle of a nonblocking operation.
type Request struct {
	c        *Comm
	src, tag int
	done     bool
	val      any
	status   Status
}

// Isend starts a send. Sends are asynchronous in this runtime, so the
// returned request is already complete; it exists for MPI-shaped code.
func (c *Comm) Isend(dst, tag int, data any) *Request {
	c.Send(dst, tag, data)
	return &Request{c: c, done: true}
}

// Irecv posts a nonblocking receive. If a matching message is already in
// the unexpected queue it is claimed immediately; otherwise the match
// happens inside Wait.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{c: c, src: src, tag: tag}
	req := recvReq{src: src, tag: tag}
	for i, p := range c.inbox {
		if req.matches(p) {
			c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
			c.met.unexpected.Add(-1)
			r.done = true
			r.val = p.Data
			r.status = Status{Source: p.Src, Tag: p.Tag}
			break
		}
	}
	return r
}

// Test reports whether the request has completed, claiming a matching
// queued message if one has arrived since posting. It never blocks — and
// therefore never yields the PE: a busy loop around Test starves the
// scheduler that would deliver the message. Poll with Test only between
// blocking calls; otherwise use Wait.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	req := recvReq{src: r.src, tag: r.tag}
	for i, p := range r.c.inbox {
		if req.matches(p) {
			r.c.inbox = append(r.c.inbox[:i], r.c.inbox[i+1:]...)
			r.c.met.unexpected.Add(-1)
			r.done = true
			r.val = p.Data
			r.status = Status{Source: p.Src, Tag: p.Tag}
			return true
		}
	}
	return false
}

// Wait blocks until the request completes and returns its payload and
// status. Completed requests return immediately.
func (r *Request) Wait() (any, Status) {
	if !r.Test() {
		r.val, r.status = r.c.Recv(r.src, r.tag)
		r.done = true
	}
	return r.val, r.status
}

// Waitall waits for every request, in order.
func Waitall(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Probe blocks until a message matching (src, tag) is available without
// receiving it, and reports its envelope.
func (c *Comm) Probe(src, tag int) Status {
	req := recvReq{src: src, tag: tag}
	for {
		for _, p := range c.inbox {
			if req.matches(p) {
				return Status{Source: p.Src, Tag: p.Tag}
			}
		}
		// Suspend until the next message arrives for this rank, then
		// recheck. We wait for *any* message and requeue it if it does
		// not match the probe.
		c.waiting = &recvReq{src: AnySource, tag: AnyTag}
		c.met.blocked.Add(1)
		t0 := c.ctx.Time()
		c.ctx.Record(trace.EvBlock, int64(c.rank), 0)
		c.yield <- yBlocked
		p := <-c.resume
		c.met.blocked.Add(-1)
		c.ctx.Record(trace.EvWake, int64(c.rank), int64(c.ctx.Time()-t0))
		c.inbox = append(c.inbox, p)
		c.met.unexpected.Add(1)
	}
}

// Iprobe reports whether a matching message is queued, without blocking.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	req := recvReq{src: src, tag: tag}
	for _, p := range c.inbox {
		if req.matches(p) {
			return Status{Source: p.Src, Tag: p.Tag}, true
		}
	}
	return Status{}, false
}
