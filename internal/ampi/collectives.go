package ampi

import (
	"fmt"

	"gridmdo/internal/core"
)

// Collective operations, implemented over point-to-point messages with
// reserved negative tags (so application AnyTag receives never intercept
// them). All ranks must call each collective in the same order.

// Reserved internal tags.
const (
	tagBarrierUp = -2
	tagBarrierDn = -3
	tagBcast     = -4
	tagReduce    = -5
	tagGather    = -6
	tagAllgather = -7
	tagScatter   = -8
	tagAlltoall  = -9
	tagScan      = -10
)

// binomial tree helpers rooted at 0 (rank relabeling handles other roots).
func relabel(rank, root, size int) int   { return (rank - root + size) % size }
func unrelabel(rank, root, size int) int { return (rank + root) % size }

// treeChildren yields the children of relabeled rank r in a binomial tree.
func treeChildren(r, size int) []int {
	var out []int
	for bit := 1; bit < size; bit <<= 1 {
		if r&bit != 0 {
			break
		}
		child := r | bit
		if child < size {
			out = append(out, child)
		}
	}
	return out
}

// treeParent yields the parent of relabeled rank r (r != 0).
func treeParent(r int) int {
	bit := 1
	for r&bit == 0 {
		bit <<= 1
	}
	return r &^ bit
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	if c.size == 1 {
		return
	}
	r := c.rank
	// Reduce-to-0 then broadcast, both over binomial trees.
	for _, child := range treeChildren(r, c.size) {
		c.Recv(child, tagBarrierUp)
		c.met.fanin.Inc()
	}
	if r != 0 {
		c.Send(treeParent(r), tagBarrierUp, nil)
		c.Recv(treeParent(r), tagBarrierDn)
	}
	for _, child := range treeChildren(r, c.size) {
		c.Send(child, tagBarrierDn, nil)
	}
}

// Bcast distributes root's value to every rank and returns it.
func (c *Comm) Bcast(root int, data any) any {
	if c.size == 1 {
		return data
	}
	r := relabel(c.rank, root, c.size)
	if r != 0 {
		data, _ = c.Recv(unrelabel(treeParent(r), root, c.size), tagBcast)
	}
	for _, child := range treeChildren(r, c.size) {
		c.Send(unrelabel(child, root, c.size), tagBcast, data)
	}
	return data
}

// Reduce folds every rank's value with op; the combined value is returned
// at root (other ranks get the zero value and false).
func (c *Comm) Reduce(root int, v any, op core.ReduceOp) (any, bool) {
	r := relabel(c.rank, root, c.size)
	acc := v
	for _, child := range treeChildren(r, c.size) {
		cv, _ := c.Recv(unrelabel(child, root, c.size), tagReduce)
		c.met.fanin.Inc()
		acc = core.Combine(op, acc, cv)
	}
	if r != 0 {
		c.Send(unrelabel(treeParent(r), root, c.size), tagReduce, acc)
		return nil, false
	}
	return acc, true
}

// Allreduce folds every rank's value and returns the result everywhere.
func (c *Comm) Allreduce(v any, op core.ReduceOp) any {
	acc, ok := c.Reduce(0, v, op)
	if !ok {
		acc = nil
	}
	return c.Bcast(0, acc)
}

// Gather collects every rank's value at root, indexed by rank. Non-root
// ranks receive nil.
func (c *Comm) Gather(root int, v any) []any {
	if c.rank != root {
		c.Send(root, tagGather, v)
		return nil
	}
	out := make([]any, c.size)
	seen := make([]bool, c.size)
	out[root], seen[root] = v, true
	for i := 0; i < c.size-1; i++ {
		p, st := c.recvInternal(AnySource, tagGather)
		c.met.fanin.Inc()
		if seen[st.Source] {
			panic(fmt.Sprintf("ampi: duplicate gather contribution from %d", st.Source))
		}
		out[st.Source], seen[st.Source] = p, true
	}
	return out
}

// Allgather collects every rank's value everywhere.
func (c *Comm) Allgather(v any) []any {
	res := c.Gather(0, v)
	got := c.Bcast(0, any(res))
	return got.([]any)
}

// Scatter distributes vals[i] from root to rank i and returns this rank's
// element. Only root's vals argument is consulted; it must have Size
// entries.
func (c *Comm) Scatter(root int, vals []any) any {
	if c.rank == root {
		if len(vals) != c.size {
			panic(fmt.Sprintf("ampi: scatter of %d values over %d ranks", len(vals), c.size))
		}
		for dst := 0; dst < c.size; dst++ {
			if dst != root {
				c.Send(dst, tagScatter, vals[dst])
			}
		}
		return vals[root]
	}
	v, _ := c.recvInternal(root, tagScatter)
	return v
}

// Alltoall sends vals[j] to rank j for every j and returns the values
// received, indexed by source rank. vals must have Size entries.
func (c *Comm) Alltoall(vals []any) []any {
	if len(vals) != c.size {
		panic(fmt.Sprintf("ampi: alltoall of %d values over %d ranks", len(vals), c.size))
	}
	for dst := 0; dst < c.size; dst++ {
		if dst != c.rank {
			c.Send(dst, tagAlltoall, vals[dst])
		}
	}
	out := make([]any, c.size)
	out[c.rank] = vals[c.rank]
	for i := 0; i < c.size-1; i++ {
		p, st := c.recvInternal(AnySource, tagAlltoall)
		c.met.fanin.Inc()
		out[st.Source] = p
	}
	return out
}

// Scan returns the inclusive prefix reduction over ranks 0..Rank.
func (c *Comm) Scan(v any, op core.ReduceOp) any {
	acc := v
	if c.rank > 0 {
		prev, _ := c.recvInternal(c.rank-1, tagScan)
		acc = core.Combine(op, prev, v)
	}
	if c.rank < c.size-1 {
		c.Send(c.rank+1, tagScan, acc)
	}
	return acc
}

// recvInternal is Recv that may match reserved tags (used by collectives
// needing AnySource on internal traffic).
func (c *Comm) recvInternal(src, tag int) (any, Status) {
	req := recvReq{src: src, tag: tag}
	for i, p := range c.inbox {
		if (req.src == AnySource || req.src == p.Src) && p.Tag == tag {
			c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
			c.met.unexpected.Add(-1)
			return p.Data, Status{Source: p.Src, Tag: p.Tag}
		}
	}
	c.waiting = &req
	c.met.blocked.Add(1)
	c.yield <- yBlocked
	p := <-c.resume
	c.met.blocked.Add(-1)
	return p.Data, Status{Source: p.Src, Tag: p.Tag}
}
