package ampi

import (
	"math"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

// runRealtime executes an AMPI main on the real-time runtime.
func runRealtime(t *testing.T, procs, ranks int, lat time.Duration, main func(*Comm)) {
	t.Helper()
	prog, err := BuildProgram(ranks, main)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

// runSim executes an AMPI main on the virtual-time engine, returning the
// final virtual time.
func runSim(t *testing.T, procs, ranks int, lat time.Duration, main func(*Comm)) time.Duration {
	t.Helper()
	prog, err := BuildProgram(ranks, main)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(procs, lat)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	_, final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return final
}

func TestBuildProgramValidation(t *testing.T) {
	if _, err := BuildProgram(0, func(*Comm) {}); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := BuildProgram(4, nil); err == nil {
		t.Error("nil main accepted")
	}
}

func TestPointToPoint(t *testing.T) {
	var mu sync.Mutex
	got := map[int]int{}
	runRealtime(t, 2, 4, time.Millisecond, func(c *Comm) {
		if c.Rank() == 0 {
			for dst := 1; dst < c.Size(); dst++ {
				c.Send(dst, 7, dst*100)
			}
			return
		}
		v, st := c.Recv(0, 7)
		mu.Lock()
		got[c.Rank()] = v.(int)
		mu.Unlock()
		if st.Source != 0 || st.Tag != 7 {
			t.Errorf("status = %+v", st)
		}
	})
	for r := 1; r < 4; r++ {
		if got[r] != r*100 {
			t.Errorf("rank %d got %d", r, got[r])
		}
	}
}

func TestRecvWildcardsAndOrdering(t *testing.T) {
	var order []int
	runRealtime(t, 2, 2, 0, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 5, 1)
			c.Send(1, 6, 2)
			c.Send(1, 5, 3)
		case 1:
			// Tag-specific first: must match the earliest tag-5 message
			// even though a tag-6 message may already be queued.
			v1, _ := c.Recv(AnySource, 5)
			v2, _ := c.Recv(0, AnyTag)
			v3, _ := c.Recv(AnySource, AnyTag)
			order = append(order, v1.(int), v2.(int), v3.(int))
		}
	})
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
	// The two wildcard receives drain the remaining messages in
	// arrival order.
	if order[1] != 2 || order[2] != 3 {
		t.Errorf("wildcard order = %v, want [1 2 3]", order)
	}
}

func TestSendrecvExchange(t *testing.T) {
	var mu sync.Mutex
	vals := map[int]int{}
	runRealtime(t, 2, 2, 2*time.Millisecond, func(c *Comm) {
		other := 1 - c.Rank()
		v, _ := c.Sendrecv(other, 3, c.Rank()+10, other, 3)
		mu.Lock()
		vals[c.Rank()] = v.(int)
		mu.Unlock()
	})
	if vals[0] != 11 || vals[1] != 10 {
		t.Errorf("exchange = %v", vals)
	}
}

func TestBarrier(t *testing.T) {
	const ranks = 8
	var mu sync.Mutex
	phase := make(map[int]int)
	runRealtime(t, 4, ranks, time.Millisecond, func(c *Comm) {
		mu.Lock()
		phase[c.Rank()] = 1
		mu.Unlock()
		c.Barrier()
		// After the barrier, every rank must have reached phase 1.
		mu.Lock()
		for r := 0; r < ranks; r++ {
			if phase[r] < 1 {
				t.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), r)
			}
		}
		phase[c.Rank()] = 2
		mu.Unlock()
	})
}

func TestCollectives(t *testing.T) {
	const ranks = 7 // non-power-of-two exercises tree edge cases
	var mu sync.Mutex
	sums := map[int]float64{}
	runRealtime(t, 2, ranks, time.Millisecond, func(c *Comm) {
		r := float64(c.Rank())

		// Bcast from a non-zero root.
		v := c.Bcast(3, any("hello-"+string(rune('0'+c.Rank()%10))))
		if c.Rank() != 3 && v.(string) != "hello-3" {
			t.Errorf("rank %d bcast got %v", c.Rank(), v)
		}

		// Reduce to root 2.
		sum, ok := c.Reduce(2, r, core.OpSum)
		if ok != (c.Rank() == 2) {
			t.Errorf("rank %d reduce ok=%v", c.Rank(), ok)
		}
		if ok && sum.(float64) != 21 { // 0+..+6
			t.Errorf("reduce sum = %v", sum)
		}

		// Allreduce max.
		m := c.Allreduce(r, core.OpMax)
		mu.Lock()
		sums[c.Rank()] = m.(float64)
		mu.Unlock()

		// Gather at 1 and Allgather.
		g := c.Gather(1, c.Rank()*2)
		if c.Rank() == 1 {
			for i, x := range g {
				if x.(int) != i*2 {
					t.Errorf("gather[%d] = %v", i, x)
				}
			}
		}
		ag := c.Allgather(c.Rank())
		for i, x := range ag {
			if x.(int) != i {
				t.Errorf("rank %d allgather[%d] = %v", c.Rank(), i, x)
			}
		}
	})
	for r := 0; r < ranks; r++ {
		if sums[r] != 6 {
			t.Errorf("rank %d allreduce max = %v, want 6", r, sums[r])
		}
	}
}

// TestAMPIOverlapAcrossRanks shows the AMPI payoff on virtual time: with
// two ranks per PE, a rank blocked on a WAN receive leaves the PE free to
// run its co-resident rank.
func TestAMPIOverlapAcrossRanks(t *testing.T) {
	const lat = 20 * time.Millisecond
	const work = 2 * time.Millisecond
	// Ranks 0,1 on PE 0 (cluster 0); ranks 2,3 on PE 1 (cluster 1).
	// Rank 0 ping-pongs with rank 2 across the WAN; ranks 1 and 3 grind
	// local compute.
	final := runSim(t, 2, 4, lat, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 3; i++ {
				c.Send(2, 1, i)
				c.Recv(2, 1)
			}
		case 2:
			for i := 0; i < 3; i++ {
				c.Recv(0, 1)
				c.Send(0, 1, i)
			}
		default:
			for i := 0; i < 50; i++ {
				c.Charge(work)
			}
		}
	})
	rtts := 6 * lat // 3 round trips
	serial := rtts + 100*work
	if final < rtts {
		t.Errorf("finished before the WAN traffic could: %v < %v", final, rtts)
	}
	if final >= serial {
		t.Errorf("no overlap between blocked rank and co-resident rank: %v >= %v", final, serial)
	}
}

// TestAMPIStencilMatchesChareStencil runs a 1-D Jacobi relaxation written
// against the AMPI API and checks it against the same relaxation done
// serially — demonstrating an unmodified MPI-style code on the runtime.
func TestAMPIStencilMatchesChareStencil(t *testing.T) {
	const n = 64    // cells
	const ranks = 4 // 16 cells each
	const steps = 10
	per := n / ranks

	results := make([][]float64, ranks)
	var mu sync.Mutex

	runRealtime(t, 2, ranks, time.Millisecond, func(c *Comm) {
		r := c.Rank()
		cur := make([]float64, per+2) // with ghosts
		next := make([]float64, per+2)
		for i := 0; i < per; i++ {
			cur[i+1] = stencil.Init(r*per+i, 0)
		}
		for s := 0; s < steps; s++ {
			// Exchange ghosts with neighbors (boundary ranks hold edges fixed).
			if r > 0 {
				v, _ := c.Sendrecv(r-1, s, cur[1], r-1, s)
				cur[0] = v.(float64)
			}
			if r < c.Size()-1 {
				v, _ := c.Sendrecv(r+1, s, cur[per], r+1, s)
				cur[per+1] = v.(float64)
			}
			for i := 1; i <= per; i++ {
				g := r*per + i - 1
				if g == 0 || g == n-1 {
					next[i] = cur[i]
					continue
				}
				next[i] = 0.5 * (cur[i-1] + cur[i+1])
			}
			cur, next = next, cur
		}
		mu.Lock()
		results[r] = append([]float64(nil), cur[1:per+1]...)
		mu.Unlock()
	})

	// Serial reference.
	ref := make([]float64, n)
	tmp := make([]float64, n)
	for i := range ref {
		ref[i] = stencil.Init(i, 0)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			if i == 0 || i == n-1 {
				tmp[i] = ref[i]
				continue
			}
			tmp[i] = 0.5 * (ref[i-1] + ref[i+1])
		}
		ref, tmp = tmp, ref
	}
	for r := 0; r < ranks; r++ {
		for i, v := range results[r] {
			if want := ref[r*per+i]; math.Abs(v-want) > 1e-14 {
				t.Fatalf("rank %d cell %d = %v, want %v", r, i, v, want)
			}
		}
	}
}

func TestCommAccessors(t *testing.T) {
	runRealtime(t, 2, 2, 0, func(c *Comm) {
		if c.Wtime() < 0 {
			t.Error("negative Wtime")
		}
		if c.PE() < 0 || c.PE() >= 2 {
			t.Errorf("PE = %d", c.PE())
		}
		c.Charge(0)
		if c.Rank() == 0 {
			c.SendBytes(1, 4, "big", 1<<20)
		} else {
			v, _ := c.Recv(0, 4)
			if v.(string) != "big" {
				t.Errorf("got %v", v)
			}
		}
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	runRealtime(t, 2, 2, 0, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("send to out-of-range rank did not panic")
			}
		}()
		c.Send(99, 0, nil)
	})
}

func TestAMPIOnSimDeterministic(t *testing.T) {
	run := func() time.Duration {
		return runSim(t, 2, 4, 3*time.Millisecond, func(c *Comm) {
			v := c.Allreduce(float64(c.Rank()), core.OpSum)
			if v.(float64) != 6 {
				t.Errorf("allreduce = %v", v)
			}
			c.Barrier()
		})
	}
	if t1, t2 := run(), run(); t1 != t2 {
		t.Errorf("AMPI on sim not deterministic: %v vs %v", t1, t2)
	}
}

// TestAMPIMetrics checks the layer's series over a run with collectives
// and unexpected traffic: sends are counted, tree fan-in matches the
// binomial-tree contribution count, and both gauges return to zero once
// every rank finishes.
func TestAMPIMetrics(t *testing.T) {
	const ranks = 8
	reg := metrics.NewRegistry()
	prog, err := BuildProgram(ranks, func(c *Comm) {
		v := c.Allreduce(float64(c.Rank()), core.OpSum)
		if v.(float64) != 28 {
			t.Errorf("rank %d: allreduce = %v", c.Rank(), v)
		}
		c.Barrier()
	}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Reduce and Barrier-up each fold ranks-1 contributions across the
	// tree; Bcast and Barrier-down are fan-out and do not count.
	if got := snap.Value("ampi_collective_fanin_total"); got != 2*(ranks-1) {
		t.Errorf("fan-in = %d, want %d", got, 2*(ranks-1))
	}
	if got := snap.Value("ampi_msgs_sent_total"); got <= 0 {
		t.Errorf("sends = %d, want > 0", got)
	}
	for _, g := range []string{"ampi_ranks_blocked", "ampi_unexpected_msgs"} {
		if got := snap.Value(g); got != 0 {
			t.Errorf("%s = %d after completion, want 0", g, got)
		}
	}
}
