package ampi

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

// moveAll is a test strategy that migrates every element to the next PE,
// so a single round is guaranteed to move every rank.
type moveAll struct{}

func (moveAll) Name() string { return "move-all" }
func (moveAll) Plan(s *core.LBStats) []core.Move {
	var out []core.Move
	for _, e := range s.Elems {
		out = append(out, core.Move{Ref: e.Ref, ToPE: (e.PE + 1) % s.NumPE})
	}
	return out
}

// jacobiState is the migratable rank state for the 1-D Jacobi tests: the
// step counter and this rank's interior cells (ghosts are re-exchanged
// every step and need not move).
type jacobiState struct {
	Step int
	Cur  []float64
}

func (s *jacobiState) PUP(p *core.PUP) {
	p.Int(&s.Step)
	p.Float64s(&s.Cur)
}

// jacobiMain builds a migratable 1-D Jacobi over n cells that enters the
// load-balancing barrier after syncStep steps. Each completed step is
// recorded in the state before AtSync, so a migrated rank re-enters Run
// at exactly the next step.
func jacobiMain(n, steps, syncStep int) MigratableMain {
	return MigratableMain{
		NewState: func(rank, size int) core.PUPable {
			per := n / size
			st := &jacobiState{Cur: make([]float64, per)}
			for i := range st.Cur {
				st.Cur[i] = stencil.Init(rank*per+i, 0)
			}
			return st
		},
		Run: func(c *Comm, stAny core.PUPable) {
			st := stAny.(*jacobiState)
			r, per := c.Rank(), n/c.Size()
			for st.Step < steps {
				s := st.Step
				cur := make([]float64, per+2)
				copy(cur[1:], st.Cur)
				if r > 0 {
					v, _ := c.Sendrecv(r-1, s, cur[1], r-1, s)
					cur[0] = v.(float64)
				}
				if r < c.Size()-1 {
					v, _ := c.Sendrecv(r+1, s, cur[per], r+1, s)
					cur[per+1] = v.(float64)
				}
				next := make([]float64, per)
				for i := 1; i <= per; i++ {
					g := r*per + i - 1
					if g == 0 || g == n-1 {
						next[i-1] = cur[i]
						continue
					}
					next[i-1] = 0.5 * (cur[i-1] + cur[i+1])
				}
				st.Cur = next
				st.Step++
				if st.Step == syncStep {
					c.AtSync()
				}
			}
		},
	}
}

// serialJacobi computes the reference relaxation.
func serialJacobi(n, steps int) []float64 {
	ref := make([]float64, n)
	tmp := make([]float64, n)
	for i := range ref {
		ref[i] = stencil.Init(i, 0)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			if i == 0 || i == n-1 {
				tmp[i] = ref[i]
				continue
			}
			tmp[i] = 0.5 * (ref[i-1] + ref[i+1])
		}
		ref, tmp = tmp, ref
	}
	return ref
}

// TestAMPIMigrationPreservesJacobi migrates every rank mid-run and checks
// the relaxation still matches the serial reference bit for bit — the
// rank state, including the field, moved intact, and the re-entered Run
// resumed at exactly the right step.
func TestAMPIMigrationPreservesJacobi(t *testing.T) {
	const n, ranks, steps, syncStep = 64, 4, 8, 4

	var mu sync.Mutex
	prePE := map[int]int{}
	postPE := map[int]int{}
	results := map[int][]float64{}

	main := jacobiMain(n, steps, syncStep)
	inner := main.Run
	main.Run = func(c *Comm, st core.PUPable) {
		if st.(*jacobiState).Step < syncStep {
			mu.Lock()
			prePE[c.Rank()] = c.PE()
			mu.Unlock()
		}
		inner(c, st)
		mu.Lock()
		postPE[c.Rank()] = c.PE()
		results[c.Rank()] = append([]float64(nil), st.(*jacobiState).Cur...)
		mu.Unlock()
	}

	prog, err := BuildMigratableProgram(ranks, main, WithLB(moveAll{}))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	ref := serialJacobi(n, steps)
	per := n / ranks
	for r := 0; r < ranks; r++ {
		if len(results[r]) != per {
			t.Fatalf("rank %d produced %d cells", r, len(results[r]))
		}
		for i, v := range results[r] {
			if want := ref[r*per+i]; math.Abs(v-want) > 0 {
				t.Fatalf("rank %d cell %d = %v, want %v", r, i, v, want)
			}
		}
	}
	for r := 0; r < ranks; r++ {
		if prePE[r] == postPE[r] {
			t.Errorf("rank %d stayed on PE %d; move-all strategy should have migrated it", r, prePE[r])
		}
	}
}

// TestAMPIMigrationCarriesUnexpectedQueue parks a message in a rank's
// unexpected queue before the sync, migrates the rank, and receives the
// message on the destination PE: the queue crossed the wire with the
// state.
func TestAMPIMigrationCarriesUnexpectedQueue(t *testing.T) {
	var got any
	var gotPE int
	main := MigratableMain{
		NewState: func(rank, size int) core.PUPable {
			return &phaseState{}
		},
		Run: func(c *Comm, stAny core.PUPable) {
			st := stAny.(*phaseState)
			if st.Phase == 0 {
				if c.Rank() == 1 {
					c.Send(0, 99, "carried across")
					c.Send(0, 5, 1)
				} else {
					// Hold until the tag-99 message is queued (Probe does
					// not consume it), then drain tag 5 so nothing is in
					// flight toward this rank at the sync point.
					c.Probe(1, 99)
					c.Recv(1, 5)
				}
				st.Phase = 1
				c.AtSync()
			}
			if c.Rank() == 0 {
				v, stat := c.Recv(1, 99)
				got, gotPE = v, c.PE()
				if stat.Source != 1 || stat.Tag != 99 {
					t.Errorf("status = %+v", stat)
				}
			}
		},
	}

	prog, err := BuildMigratableProgram(2, main, WithLB(moveAll{}))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "carried across" {
		t.Errorf("post-migration receive = %v", got)
	}
	if gotPE < 0 || gotPE > 1 {
		t.Errorf("received on PE %d", gotPE)
	}
}

// phaseState is a minimal migratable state for protocol-shaped tests.
type phaseState struct{ Phase int }

func (s *phaseState) PUP(p *core.PUP) { p.Int(&s.Phase) }

// TestAMPIMigrationOnSimDeterministic runs a migrating program on the
// virtual-time engine twice and demands identical final times.
func TestAMPIMigrationOnSimDeterministic(t *testing.T) {
	run := func() time.Duration {
		prog, err := BuildMigratableProgram(8, jacobiMain(64, 6, 3), WithLB(moveAll{}))
		if err != nil {
			t.Fatal(err)
		}
		topo, err := topology.TwoClusters(4, 3*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(topo, prog, sim.Options{MaxEvents: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		_, final, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return final
	}
	if t1, t2 := run(), run(); t1 != t2 {
		t.Errorf("migrating AMPI program not deterministic on sim: %v vs %v", t1, t2)
	}
}

// TestRankPUPRoundTrip packs a migratable rank directly — state plus a
// mixed unexpected queue — and restores it into a freshly constructed
// rank, as the arrive leg does.
func TestRankPUPRoundTrip(t *testing.T) {
	main := jacobiMain(16, 4, 2)
	met := newAMPIMetrics(nil)

	src := &rankChare{mig: &main, st: main.NewState(1, 4), comm: newComm(1, 4, met)}
	src.comm.migratable = true
	src.st.(*jacobiState).Step = 2
	src.comm.inbox = []*pkt{
		{Src: 3, Tag: 9, Data: 3.5, Bytes: 77},
		{Src: 0, Tag: 2, Data: nil},
		{Src: 2, Tag: -4, Data: "bcast"},
	}

	blob, err := core.PUPPack(src)
	if err != nil {
		t.Fatal(err)
	}

	dst := &rankChare{mig: &main, st: main.NewState(1, 4), comm: newComm(1, 4, met)}
	dst.comm.migratable = true
	if err := core.PUPUnpack(dst, blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.st.(*jacobiState); got.Step != 2 || len(got.Cur) != 4 {
		t.Errorf("restored state = %+v", got)
	}
	if len(dst.comm.inbox) != 3 {
		t.Fatalf("restored inbox has %d packets", len(dst.comm.inbox))
	}
	q := dst.comm.inbox[0]
	if q.Src != 3 || q.Tag != 9 || q.Bytes != 77 || q.Data != 3.5 {
		t.Errorf("packet 0 = %+v", q)
	}
	if dst.comm.inbox[1].Data != nil {
		t.Errorf("nil payload did not survive: %+v", dst.comm.inbox[1])
	}
	if dst.comm.inbox[2].Data != "bcast" {
		t.Errorf("packet 2 = %+v", dst.comm.inbox[2])
	}

	// Repack must be byte-identical.
	blob2, err := core.PUPPack(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Error("repack differs from original pack")
	}

	// Junk must be rejected, not crash.
	junk := append([]byte(nil), blob...)
	if err := core.PUPUnpack(&rankChare{mig: &main, st: main.NewState(1, 4), comm: newComm(1, 4, met)}, junk[:len(junk)-3]); err == nil {
		t.Error("truncated rank blob accepted")
	}
}

// TestRankPUPRefusals covers the two states a rank cannot be packed in.
func TestRankPUPRefusals(t *testing.T) {
	met := newAMPIMetrics(nil)

	// A plain (BuildProgram) rank is not migratable.
	plain := &rankChare{main: func(*Comm) {}, comm: newComm(0, 2, met)}
	if _, err := core.PUPPack(plain); err == nil || !strings.Contains(err.Error(), "BuildMigratableProgram") {
		t.Errorf("plain rank pack error = %v", err)
	}

	// A rank blocked in a receive has live stack state the pack cannot
	// capture.
	main := jacobiMain(16, 4, 2)
	blocked := &rankChare{mig: &main, st: main.NewState(0, 4), comm: newComm(0, 4, met)}
	blocked.comm.waiting = &recvReq{src: 1, tag: 5}
	if _, err := core.PUPPack(blocked); err == nil || !strings.Contains(err.Error(), "blocked in a receive") {
		t.Errorf("blocked rank pack error = %v", err)
	}
}

// TestBuildMigratableProgramValidation checks constructor errors.
func TestBuildMigratableProgramValidation(t *testing.T) {
	ok := jacobiMain(16, 4, 2)
	if _, err := BuildMigratableProgram(0, ok); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := BuildMigratableProgram(4, MigratableMain{Run: ok.Run}); err == nil {
		t.Error("missing NewState accepted")
	}
	if _, err := BuildMigratableProgram(4, MigratableMain{NewState: ok.NewState}); err == nil {
		t.Error("missing Run accepted")
	}
}

// TestAtSyncOnPlainRankPanics pins the guard that keeps BuildProgram
// ranks out of the barrier they cannot be packed for.
func TestAtSyncOnPlainRankPanics(t *testing.T) {
	c := newComm(0, 1, newAMPIMetrics(nil))
	defer func() {
		if recover() == nil {
			t.Error("AtSync on a plain rank did not panic")
		}
	}()
	c.AtSync()
}
