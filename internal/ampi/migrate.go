package ampi

// AMPI rank migration. In Charm++, AMPI thread stacks migrate with their
// element via isomalloc; Go offers no way to serialize a goroutine stack.
// The honest adaptation is a restartable-loop contract: all of a rank's
// progress lives in an explicit state value serialized through the same
// PUP visitor every other migratable chare uses, and after a migration the
// rank body is re-entered from the top on the destination PE with the
// unpacked state. What crosses the wire is exactly what the rank cannot
// rebuild: the user state and the unexpected-message queue.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"

	"gridmdo/internal/core"
)

// MigratableMain is an MPI-style program whose ranks can migrate between
// PEs at AtSync points. Run must derive all progress from the state value:
// after a migration it is re-entered from the top with the PUP-restored
// state, so advance the state past a sync point *before* calling AtSync
// and re-entry never repeats completed work:
//
//	for st.Step < steps {
//		// ... exchange and compute step st.Step ...
//		st.Step++
//		if st.Step%syncEvery == 0 {
//			c.AtSync()
//		}
//	}
//
// Enter AtSync only after receiving every message already sent to this
// rank (a symmetric exchange or barrier does this naturally); a rank with
// messages still in flight toward it cannot be packed and aborts the
// balancing round.
type MigratableMain struct {
	// NewState builds rank's initial state. It also runs on the
	// destination PE of a migration to construct the value the packed
	// bytes are unpacked into, so it must not itself perform work that
	// Run would repeat.
	NewState func(rank, size int) core.PUPable
	// Run is the rank body.
	Run func(c *Comm, st core.PUPable)
}

// BuildMigratableProgram is BuildProgram for ranks that participate in
// AtSync load balancing. Pair it with WithLB (or set the program's LB
// config directly) to enable migration.
func BuildMigratableProgram(n int, main MigratableMain, opts ...Option) (*core.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ampi: %d ranks", n)
	}
	if main.NewState == nil || main.Run == nil {
		return nil, fmt.Errorf("ampi: MigratableMain needs both NewState and Run")
	}
	return buildProgram(n, func(i int, met *ampiMetrics) *rankChare {
		st := main.NewState(i, n)
		if st == nil {
			panic(fmt.Sprintf("ampi: NewState returned nil for rank %d", i))
		}
		c := newComm(i, n, met)
		c.migratable = true
		return &rankChare{mig: &main, st: st, comm: c}
	}, opts)
}

// AtSync enters the load-balancing barrier, handing the PE back to the
// scheduler until the round completes. For a rank that stays put, AtSync
// returns in place. For a rank the balancer migrates, AtSync never
// returns: the goroutine exits here (its deferred functions run, and must
// not touch the Comm), and the destination PE re-enters Run from the top
// with the migrated state. Only ranks built with BuildMigratableProgram
// may call AtSync.
func (c *Comm) AtSync() {
	if !c.migratable {
		panic("ampi: AtSync on a rank built with BuildProgram — migration needs BuildMigratableProgram")
	}
	c.ctx.AtSync()
	c.yield <- ySync
	select {
	case <-c.resumeSync:
		// Resumed on this PE; the entry handler refreshed c.ctx.
	case <-c.evicted:
		runtime.Goexit()
	}
}

// PUP implements core.Migratable: the user state, the completion flag,
// and the unexpected-message queue move; the goroutine does not (see
// MigratableMain). Ranks built with BuildProgram refuse to pack, which
// surfaces as the load balancer's aggregated evict error.
func (r *rankChare) PUP(p *core.PUP) {
	if r.mig == nil {
		p.Errorf("ampi: rank %d was built with BuildProgram; migration needs BuildMigratableProgram", r.comm.rank)
		return
	}
	if !p.Unpacking() && r.comm.waiting != nil {
		p.Errorf("ampi: rank %d is blocked in a receive and cannot be packed", r.comm.rank)
		return
	}
	p.Bool(&r.done)
	r.st.PUP(p)
	n := len(r.comm.inbox)
	p.Int(&n)
	if p.Err() != nil {
		return
	}
	if p.Unpacking() {
		if n < 0 || n > 1<<20 {
			p.Errorf("ampi: implausible unexpected-queue length %d", n)
			return
		}
		r.comm.inbox = make([]*pkt, n)
		for i := range r.comm.inbox {
			r.comm.inbox[i] = &pkt{}
		}
	}
	for _, q := range r.comm.inbox {
		q.pup(p)
	}
}

// Evicted implements core.Evictable: when the balancer migrates this rank
// away, wake the goroutine parked in AtSync so its stack is released. The
// state was packed before eviction, so whatever the dying goroutine's
// deferred functions do to it no longer matters.
func (r *rankChare) Evicted() {
	if r.parked {
		r.parked = false
		close(r.comm.evicted)
	}
}

// pup moves one queued packet. The envelope is flat; the payload crosses
// as a gob blob — the same registry core.RegisterPayload feeds for the
// inter-node transport, so anything a rank can send between processes it
// can also carry through a migration.
func (q *pkt) pup(p *core.PUP) {
	p.Int(&q.Src)
	p.Int(&q.Tag)
	p.Int(&q.Bytes)
	has := q.Data != nil
	p.Bool(&has)
	if !has {
		if p.Unpacking() {
			q.Data = nil
		}
		return
	}
	var blob []byte
	if !p.Unpacking() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&q.Data); err != nil {
			p.Errorf("ampi: queued message (src %d, tag %d) payload %T is not serializable: %v", q.Src, q.Tag, q.Data, err)
			return
		}
		blob = buf.Bytes()
	}
	p.Bytes(&blob)
	if p.Unpacking() {
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&q.Data); err != nil {
			p.Errorf("ampi: decode queued message (src %d, tag %d): %v", q.Src, q.Tag, err)
		}
	}
}

var (
	_ core.Migratable = (*rankChare)(nil)
	_ core.Evictable  = (*rankChare)(nil)
)
