package ampi

import (
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
)

func TestIsendIrecvWait(t *testing.T) {
	var got any
	runRealtime(t, 2, 2, time.Millisecond, func(c *Comm) {
		switch c.Rank() {
		case 0:
			r := c.Isend(1, 3, "payload")
			if !r.Test() {
				t.Error("Isend request not immediately complete")
			}
			r.Wait() // idempotent
		case 1:
			r := c.Irecv(0, 3)
			v, st := r.Wait()
			got = v
			if st.Source != 0 || st.Tag != 3 {
				t.Errorf("status %+v", st)
			}
			// Waiting again returns the same value without blocking.
			if v2, _ := r.Wait(); v2 != v {
				t.Error("second Wait returned different value")
			}
		}
	})
	if got != "payload" {
		t.Errorf("got %v", got)
	}
}

func TestIrecvMatchesAlreadyQueued(t *testing.T) {
	runRealtime(t, 2, 2, 0, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, 10)
			c.Send(1, 2, 20)
		case 1:
			// Force both messages into the unexpected queue first.
			v, _ := c.Recv(0, 1)
			if v.(int) != 10 {
				t.Errorf("first recv %v", v)
			}
			r := c.Irecv(0, 2)
			if !r.done && !r.Test() {
				// The message may not have arrived yet; Wait covers it.
				t.Log("tag-2 message not yet queued; waiting")
			}
			v2, _ := r.Wait()
			if v2.(int) != 20 {
				t.Errorf("irecv got %v", v2)
			}
		}
	})
}

func TestWaitallAndOverlap(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	sums := map[int]int{}
	runRealtime(t, 2, n, time.Millisecond, func(c *Comm) {
		// Everyone posts Irecvs from all peers, then sends — the classic
		// nonblocking exchange that would deadlock with blocking calls.
		var reqs []*Request
		for src := 0; src < n; src++ {
			if src != c.Rank() {
				reqs = append(reqs, c.Irecv(src, 9))
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst != c.Rank() {
				c.Send(dst, 9, c.Rank()+1)
			}
		}
		Waitall(reqs...)
		total := 0
		for _, r := range reqs {
			v, _ := r.Wait()
			total += v.(int)
		}
		mu.Lock()
		sums[c.Rank()] = total
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		want := 10 - (r + 1) // 1+2+3+4 minus own
		if sums[r] != want {
			t.Errorf("rank %d sum %d, want %d", r, sums[r], want)
		}
	}
}

func TestProbeAndIprobe(t *testing.T) {
	runRealtime(t, 2, 2, time.Millisecond, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 5, "hello")
		case 1:
			if _, ok := c.Iprobe(0, 99); ok {
				t.Error("Iprobe matched a message that was never sent")
			}
			st := c.Probe(0, 5)
			if st.Source != 0 || st.Tag != 5 {
				t.Errorf("probe status %+v", st)
			}
			// The message is still receivable after the probe.
			v, _ := c.Recv(0, 5)
			if v.(string) != "hello" {
				t.Errorf("recv after probe: %v", v)
			}
			if _, ok := c.Iprobe(0, 5); ok {
				t.Error("Iprobe matched an already-received message")
			}
		}
	})
}

func TestScatterAlltoallScan(t *testing.T) {
	const n = 5
	var mu sync.Mutex
	scans := map[int]float64{}
	runRealtime(t, 2, n, time.Millisecond, func(c *Comm) {
		// Scatter from rank 2.
		var vals []any
		if c.Rank() == 2 {
			for i := 0; i < n; i++ {
				vals = append(vals, i*11)
			}
		}
		v := c.Scatter(2, vals)
		if v.(int) != c.Rank()*11 {
			t.Errorf("rank %d scatter got %v", c.Rank(), v)
		}

		// Alltoall: send rank*10+dst to each dst.
		out := make([]any, n)
		for d := 0; d < n; d++ {
			out[d] = c.Rank()*10 + d
		}
		in := c.Alltoall(out)
		for src, x := range in {
			if x.(int) != src*10+c.Rank() {
				t.Errorf("rank %d alltoall[%d] = %v", c.Rank(), src, x)
			}
		}

		// Inclusive prefix sum of rank values.
		s := c.Scan(float64(c.Rank()), core.OpSum)
		mu.Lock()
		scans[c.Rank()] = s.(float64)
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		want := float64(r * (r + 1) / 2)
		if scans[r] != want {
			t.Errorf("rank %d scan = %v, want %v", r, scans[r], want)
		}
	}
}
