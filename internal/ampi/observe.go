package ampi

import (
	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
)

// Option configures BuildProgram, mirroring the runtime's functional
// construction options.
type Option func(*options)

type options struct {
	reg *metrics.Registry
	lb  core.Strategy
}

// WithMetrics registers the AMPI layer's series on reg: ranks blocked in
// a receive, unexpected-queue occupancy, collective fan-in, and messages
// sent. All ranks of the program share one handle set.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithLB enables AtSync load balancing of the rank array under the given
// strategy. Meaningful only with BuildMigratableProgram, whose ranks can
// reach the barrier (via Comm.AtSync) and be packed for migration.
func WithLB(s core.Strategy) Option {
	return func(o *options) { o.lb = s }
}

// ampiMetrics is the layer's shared handle set. The zero value (all nil
// handles) is a valid no-op: every handle method is nil-safe, so an
// uninstrumented program pays one branch per update.
type ampiMetrics struct {
	blocked    *metrics.Gauge   // ranks suspended in Recv/Probe awaiting a match
	unexpected *metrics.Gauge   // packets parked in unexpected-message queues
	fanin      *metrics.Counter // child contributions folded in tree collectives
	sends      *metrics.Counter // point-to-point packets sent (collectives included)
}

func newAMPIMetrics(reg *metrics.Registry) *ampiMetrics {
	m := &ampiMetrics{}
	if reg == nil {
		return m
	}
	m.blocked = reg.Gauge("ampi_ranks_blocked")
	m.unexpected = reg.Gauge("ampi_unexpected_msgs")
	m.fanin = reg.Counter("ampi_collective_fanin_total")
	m.sends = reg.Counter("ampi_msgs_sent_total")
	return m
}
