// Package ampi is GridMDO's Adaptive MPI layer: an MPI-flavored
// programming model in which each rank is a user-level thread (a
// goroutine) embedded in a message-driven array element, exactly as AMPI
// embeds MPI processes in Charm++ objects. Blocking operations (Recv,
// collectives) suspend the rank thread and return control to the PE's
// scheduler, so other objects — or other ranks mapped to the same PE —
// keep the processor busy; this is how "any MPI application can take
// advantage of" the paper's latency-masking technique without changes.
//
// Exactly one entity executes per PE at any instant: the scheduler hands
// execution to a rank thread through a channel handshake and waits until
// the rank blocks or finishes before dispatching the next message.
package ampi

import (
	"fmt"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/trace"
)

// Wildcards for Recv. AnyTag matches only application tags (>= 0);
// collective-internal traffic uses reserved negative tags.
const (
	AnySource = -1
	AnyTag    = -1
)

// Entry methods of the rank array.
const (
	entryBoot core.EntryID = 0
	entryMsg  core.EntryID = 1
)

// pkt is one rank-to-rank message.
type pkt struct {
	Src, Tag int
	Data     any
	Bytes    int
}

// PayloadBytes implements core.Sizer.
func (p pkt) PayloadBytes() int {
	if p.Bytes > 0 {
		return p.Bytes
	}
	return core.DefaultPayloadBytes
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

type recvReq struct {
	src, tag int
}

func (r recvReq) matches(p *pkt) bool {
	if r.src != AnySource && r.src != p.Src {
		return false
	}
	if r.tag == AnyTag {
		return p.Tag >= 0 // wildcards never capture collective traffic
	}
	return r.tag == p.Tag
}

type yieldKind uint8

const (
	yBlocked yieldKind = iota
	yDone
	ySync // parked in Comm.AtSync awaiting the load-balancing round
)

// Comm is a rank's communicator handle. It is valid only within the
// rank's main function (and on the rank's goroutine).
type Comm struct {
	rank, size int
	migratable bool // built with BuildMigratableProgram

	ctx     *core.Ctx // valid while this rank holds the execution slot
	inbox   []*pkt
	waiting *recvReq

	resume chan *pkt
	yield  chan yieldKind

	resumeSync chan struct{} // local resume after an AtSync round
	evicted    chan struct{} // closed when the balancer migrates this rank away

	met *ampiMetrics // shared across the program's ranks; never nil
}

// newComm builds a rank's communicator handle.
func newComm(rank, size int, met *ampiMetrics) *Comm {
	return &Comm{
		rank: rank, size: size,
		resume:     make(chan *pkt),
		yield:      make(chan yieldKind),
		resumeSync: make(chan struct{}),
		evicted:    make(chan struct{}),
		met:        met,
	}
}

// Rank reports this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks.
func (c *Comm) Size() int { return c.size }

// Wtime returns the executor clock (virtual or wall).
func (c *Comm) Wtime() time.Duration { return c.ctx.Time() }

// PE reports the processor currently executing this rank.
func (c *Comm) PE() int { return c.ctx.PE() }

// Charge accounts modeled compute time (virtual-time executor).
func (c *Comm) Charge(d time.Duration) { c.ctx.Charge(d) }

// Send delivers data to (dst, tag) asynchronously.
func (c *Comm) Send(dst, tag int, data any) {
	c.sendPkt(dst, tag, data, 0)
}

// SendBytes is Send with an explicit modeled payload size.
func (c *Comm) SendBytes(dst, tag int, data any, bytes int) {
	c.sendPkt(dst, tag, data, bytes)
}

func (c *Comm) sendPkt(dst, tag int, data any, bytes int) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("ampi: send to rank %d of %d", dst, c.size))
	}
	c.met.sends.Inc()
	c.ctx.Send(core.ElemRef{Array: 0, Index: dst}, entryMsg,
		pkt{Src: c.rank, Tag: tag, Data: data, Bytes: bytes})
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be AnySource and tag AnyTag.
func (c *Comm) Recv(src, tag int) (any, Status) {
	req := recvReq{src: src, tag: tag}
	// Unexpected-message queue first (MPI ordering: earliest match wins).
	for i, p := range c.inbox {
		if req.matches(p) {
			c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
			c.met.unexpected.Add(-1)
			return p.Data, Status{Source: p.Src, Tag: p.Tag}
		}
	}
	// Suspend: hand the PE back to the scheduler until a match arrives.
	c.waiting = &req
	c.met.blocked.Add(1)
	t0 := c.ctx.Time()
	c.ctx.Record(trace.EvBlock, int64(c.rank), 0)
	c.yield <- yBlocked
	p := <-c.resume
	c.met.blocked.Add(-1)
	// The entry handler refreshed c.ctx before resuming us, so the wake
	// event carries the waking message's causal ID.
	c.ctx.Record(trace.EvWake, int64(c.rank), int64(c.ctx.Time()-t0))
	return p.Data, Status{Source: p.Src, Tag: p.Tag}
}

// Sendrecv sends to dst and then receives from src; the send is
// asynchronous, so the exchange cannot deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, data any, src, recvTag int) (any, Status) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// rankChare is the array element hosting one rank thread.
type rankChare struct {
	comm *Comm
	main func(*Comm)     // plain rank body (BuildProgram)
	mig  *MigratableMain // migratable rank body; nil for plain programs
	st   core.PUPable    // user rank state (migratable programs only)

	done   bool
	parked bool // rank goroutine suspended in AtSync on this PE
}

// Recv implements core.Chare: it runs on the scheduler and trampolines
// execution into the rank goroutine.
func (r *rankChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	c := r.comm
	c.ctx = ctx // the Ctx is handler-scoped; refresh it each delivery
	switch entry {
	case entryBoot:
		r.boot()
	case core.EntryResumeFromSync:
		if r.parked {
			// The rank stayed put: wake the goroutine inside AtSync.
			r.parked = false
			c.resumeSync <- struct{}{}
			r.wait()
			return
		}
		// Freshly migrated in: no goroutine exists on this PE. Re-enter
		// the rank body from the top with the unpacked state.
		r.boot()
	case entryMsg:
		p := data.(pkt)
		if r.done {
			return
		}
		if c.waiting != nil && c.waiting.matches(&p) {
			c.waiting = nil
			c.resume <- &p
			r.wait()
			return
		}
		c.inbox = append(c.inbox, &p)
		c.met.unexpected.Add(1)
	default:
		panic(fmt.Sprintf("ampi: unknown entry %d", entry))
	}
}

// boot launches the rank goroutine and parks the scheduler until it
// blocks, syncs, or finishes. A migratable rank may boot more than once
// over the array element's logical lifetime: once at program start and
// once on each PE it migrates to, re-entering Run with the restored state.
func (r *rankChare) boot() {
	c := r.comm
	go func() {
		if r.mig != nil {
			r.mig.Run(c, r.st)
		} else {
			r.main(c)
		}
		// Completion: contribute to the finalize reduction while the
		// rank still holds the execution slot, then release it.
		c.ctx.Contribute(1.0, core.OpSum)
		c.yield <- yDone
	}()
	r.wait()
}

// wait parks the scheduler until the rank blocks, syncs, or finishes.
func (r *rankChare) wait() {
	switch <-r.comm.yield {
	case yDone:
		r.done = true
	case ySync:
		r.parked = true
	}
}

// BuildProgram wraps an MPI-style main into a runnable core.Program with
// n ranks. The program exits (with nil) when every rank's main returns.
// Options (e.g. WithMetrics) configure the layer for the whole program.
// Ranks built this way cannot migrate; see BuildMigratableProgram.
func BuildProgram(n int, main func(*Comm), opts ...Option) (*core.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ampi: %d ranks", n)
	}
	if main == nil {
		return nil, fmt.Errorf("ampi: nil main")
	}
	return buildProgram(n, func(i int, met *ampiMetrics) *rankChare {
		return &rankChare{main: main, comm: newComm(i, n, met)}
	}, opts)
}

// buildProgram assembles the rank array shared by both program builders.
func buildProgram(n int, newRank func(i int, met *ampiMetrics) *rankChare, opts []Option) (*core.Program, error) {
	var o options
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	met := newAMPIMetrics(o.reg)
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare { return newRank(i, met) },
		}},
		Start: func(ctx *core.Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, entryBoot, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			ctx.ExitWith(v)
		},
	}
	if o.lb != nil {
		prog.LB = &core.LBConfig{Arrays: []core.ArrayID{0}, Strategy: o.lb}
	}
	return prog, nil
}

func init() {
	core.RegisterPayload(pkt{})
}
