package telemetry

import (
	"testing"
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
)

// testAgent builds an agent wired straight into a collector, returning
// the agent, its registry, its tracer, and a switch to drop reports.
func testAgent(t *testing.T, node int, coll *Collector, drop *bool) (*Agent, *metrics.Registry, *trace.Tracer) {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := trace.New(2)
	a, err := NewAgent(AgentConfig{
		Node:     node,
		Registry: reg,
		Tracer:   tr,
		Epoch:    time.Unix(1_700_000_000+int64(node), 0), // distinct epochs per node
		NumPE:    2,
		Send: func(b []byte) error {
			if drop != nil && *drop {
				return nil // silently lost, like a dropped control frame
			}
			return coll.Ingest(b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, reg, tr
}

func TestAgentFullAndDeltaConverge(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	a, reg, _ := testAgent(t, 0, coll, nil)
	c := reg.Counter("work_total")
	g := reg.Gauge("depth")

	c.Add(5)
	g.Set(3)
	if err := a.ReportOnce(); err != nil { // seq 1: full
		t.Fatal(err)
	}
	if got := coll.ClusterMetrics().Value("work_total"); got != 5 {
		t.Fatalf("after full: work_total = %d, want 5", got)
	}

	c.Add(2)
	g.Set(9)
	if err := a.ReportOnce(); err != nil { // seq 2: delta
		t.Fatal(err)
	}
	snap := coll.ClusterMetrics()
	if got := snap.Value("work_total"); got != 7 {
		t.Fatalf("after delta: work_total = %d, want 7", got)
	}
	if got := snap.Value("depth"); got != 9 {
		t.Fatalf("after delta: gauge = %d, want 9 (replaced, not added)", got)
	}

	// A delta with no changes still advances the chain.
	if err := a.ReportOnce(); err != nil { // seq 3
		t.Fatal(err)
	}
	if got := coll.ClusterMetrics().Value("work_total"); got != 7 {
		t.Fatalf("idle delta changed the view: %d", got)
	}
}

func TestCollectorToleratesDroppedReports(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	drop := false
	a, reg, _ := testAgent(t, 0, coll, &drop)
	c := reg.Counter("work_total")

	c.Add(10)
	_ = a.ReportOnce() // seq 1: full, delivered

	c.Add(1)
	drop = true
	_ = a.ReportOnce() // seq 2: delta, LOST
	drop = false

	c.Add(1)
	_ = a.ReportOnce() // seq 3: delta arrives with a broken chain
	// The collector must NOT have applied seq 3 (it would silently miss
	// seq 2's increment); it holds the stale value and counts a gap.
	if got := coll.ClusterMetrics().Value("work_total"); got != 10 {
		t.Fatalf("broken-chain delta applied: %d, want stale 10", got)
	}
	nodes := coll.Nodes()
	if len(nodes) != 1 || nodes[0].Gaps != 1 || nodes[0].MetricsFresh {
		t.Fatalf("gap not recorded: %+v", nodes)
	}

	// The next full snapshot (seq 5 with FullEvery=4) self-heals.
	c.Add(1)
	_ = a.ReportOnce() // seq 4: delta, still gapped
	_ = a.ReportOnce() // seq 5: full
	if got := coll.ClusterMetrics().Value("work_total"); got != 13 {
		t.Fatalf("full snapshot did not heal the view: %d, want 13", got)
	}
	if nodes := coll.Nodes(); !nodes[0].MetricsFresh {
		t.Fatalf("chain not marked fresh after full: %+v", nodes)
	}
}

func TestClusterMetricsSumAcrossNodes(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	a0, r0, _ := testAgent(t, 0, coll, nil)
	a1, r1, _ := testAgent(t, 1, coll, nil)
	r0.Counter("tasks_total").Add(30)
	r1.Counter("tasks_total").Add(12)
	r0.Gauge("queue_depth").Set(4)
	r1.Gauge("queue_depth").Set(6)
	_ = a0.ReportOnce()
	_ = a1.ReportOnce()
	snap := coll.ClusterMetrics()
	if got := snap.Value("tasks_total"); got != 42 {
		t.Fatalf("cluster counter sum = %d, want 42", got)
	}
	// Gauges on independent nodes sum in the cluster view.
	if got := snap.Value("queue_depth"); got != 10 {
		t.Fatalf("cluster gauge sum = %d, want 10", got)
	}
}

func TestSpanMergeAcrossNodes(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	a0, _, tr0 := testAgent(t, 0, coll, nil)
	a1, _, tr1 := testAgent(t, 1, coll, nil)

	// Node 0 sends message 100 (child of 99); node 1 enqueues and runs it.
	tr0.Record(trace.Event{PE: 0, Kind: trace.EvSend, At: 10 * time.Millisecond, MsgID: 100, Parent: 99, MsgKind: 1})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvEnqueue, At: 14 * time.Millisecond, MsgID: 100})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvBegin, At: 15 * time.Millisecond, MsgID: 100, MsgKind: 1})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvEnd, At: 17 * time.Millisecond, MsgID: 100})
	_ = a0.ReportOnce()
	_ = a1.ReportOnce()

	coll.mu.Lock()
	rec := coll.spans[100]
	coll.mu.Unlock()
	if rec == nil {
		t.Fatal("span 100 not stored")
	}
	if rec.Parent != 99 {
		t.Errorf("parent = %d, want 99", rec.Parent)
	}
	if rec.Node != 1 {
		t.Errorf("span attributed to node %d, want 1 (execution side)", rec.Node)
	}
	// Times re-based onto each reporting node's epoch (epochs differ by 1s).
	wantSend := time.Unix(1_700_000_000, 0).UnixNano() + int64(10*time.Millisecond)
	wantBegin := time.Unix(1_700_000_001, 0).UnixNano() + int64(15*time.Millisecond)
	if rec.SendUnixNs != wantSend || rec.BeginUnixNs != wantBegin {
		t.Errorf("rebase: send=%d begin=%d, want %d/%d", rec.SendUnixNs, rec.BeginUnixNs, wantSend, wantBegin)
	}
	if rec.EndUnixNs == 0 {
		t.Error("end not merged")
	}
}

func TestJobTraceWalk(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	a0, _, tr0 := testAgent(t, 0, coll, nil)
	a1, _, tr1 := testAgent(t, 1, coll, nil)

	root := coll.JobAdmitted("job-1", "acme")
	if root&rootIDBase != rootIDBase {
		t.Fatalf("root %x lacks the root prefix", root)
	}
	// The gateway's pump injects message 200 carrying the job; the shard
	// grant (201) executes on node 1.
	coll.JobInjected(root, 200)
	coll.JobInjected(root, 200) // idempotent
	tr0.Record(trace.Event{PE: 0, Kind: trace.EvSend, At: 1 * time.Millisecond, MsgID: 200, Parent: root})
	tr0.Record(trace.Event{PE: 0, Kind: trace.EvBegin, At: 2 * time.Millisecond, MsgID: 200})
	tr0.Record(trace.Event{PE: 0, Kind: trace.EvSend, At: 3 * time.Millisecond, MsgID: 201, Parent: 200})
	tr0.Record(trace.Event{PE: 0, Kind: trace.EvEnd, At: 3 * time.Millisecond, MsgID: 200})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvEnqueue, At: 8 * time.Millisecond, MsgID: 201})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvBegin, At: 9 * time.Millisecond, MsgID: 201})
	tr1.Record(trace.Event{PE: 1, Kind: trace.EvEnd, At: 12 * time.Millisecond, MsgID: 201})
	_ = a0.ReportOnce()
	_ = a1.ReportOnce()
	coll.JobDone("job-1", root, "acme", 15*time.Millisecond, false)

	doc, ok := coll.JobTrace("job-1")
	if !ok {
		t.Fatal("job-1 unknown")
	}
	if len(doc.Spans) != 3 { // root + injection + grant
		t.Fatalf("trace has %d spans, want 3: %+v", len(doc.Spans), doc.Spans)
	}
	if len(doc.Nodes) != 2 || doc.Nodes[0] != 0 || doc.Nodes[1] != 1 {
		t.Fatalf("trace nodes = %v, want [0 1]", doc.Nodes)
	}
	if !doc.Complete {
		t.Fatalf("trace not complete: %+v", doc)
	}
	// Every non-root span's parent is inside the tree — no broken links.
	inTree := map[uint64]bool{}
	for _, s := range doc.Spans {
		inTree[s.ID] = true
	}
	for _, s := range doc.Spans {
		if s.ID != root && s.Parent != 0 && !inTree[s.Parent] {
			t.Errorf("span %x has parent %x outside the tree", s.ID, s.Parent)
		}
	}

	if _, ok := coll.JobTrace("nope"); ok {
		t.Error("unknown job returned a trace")
	}
}

func TestStepOverlapAggregation(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	mk := func(node int) (*Agent, *trace.Tracer) {
		a, _, tr := testAgent(t, node, coll, nil)
		return a, tr
	}
	a0, tr0 := mk(0)
	a1, tr1 := mk(1)

	// Each node: one step mark, a flight masked by handler work.
	for i, tr := range []*trace.Tracer{tr0, tr1} {
		base := time.Duration(0)
		tr.Record(trace.Event{PE: 0, Kind: trace.EvNote, Note: "step", Arg1: 1, At: base})
		tr.Record(trace.Event{PE: 0, Kind: trace.EvSend, At: base + 1*time.Millisecond, MsgID: uint64(1000 + i)})
		tr.Record(trace.Event{PE: 1, Kind: trace.EvBegin, At: base + 1*time.Millisecond, MsgID: uint64(2000 + i)})
		tr.Record(trace.Event{PE: 1, Kind: trace.EvEnd, At: base + 5*time.Millisecond, MsgID: uint64(2000 + i)})
		tr.Record(trace.Event{PE: 1, Kind: trace.EvEnqueue, At: base + 4*time.Millisecond, MsgID: uint64(1000 + i)})
	}
	_ = a0.ReportOnce()
	_ = a1.ReportOnce()

	steps := coll.ClusterOverlap()
	if len(steps) != 1 || steps[0].Step != 1 {
		t.Fatalf("cluster overlap rows: %+v", steps)
	}
	if steps[0].Nodes != 2 {
		t.Fatalf("step 1 aggregated %d nodes, want 2", steps[0].Nodes)
	}
	// Flight 1ms→4ms toward PE 1 which was busy 1ms→5ms: fully masked.
	if steps[0].MaskedNs <= 0 || steps[0].ExposedNs != 0 {
		t.Fatalf("masked/exposed = %d/%d, want all masked", steps[0].MaskedNs, steps[0].ExposedNs)
	}
	if steps[0].MaskedFrac != 1 {
		t.Fatalf("masked fraction %v, want 1", steps[0].MaskedFrac)
	}

	// Re-reporting the same step replaces, not doubles.
	_ = a0.ReportOnce()
	steps = coll.ClusterOverlap()
	if steps[0].Nodes != 2 {
		t.Fatalf("replace semantics broken: %+v", steps)
	}
}

func TestAgentSpanEviction(t *testing.T) {
	coll := NewCollector(CollectorConfig{})
	reg := metrics.NewRegistry()
	tr := trace.New(1)
	a, err := NewAgent(AgentConfig{
		Node: 0, Registry: reg, Tracer: tr, NumPE: 1, MaxSpans: 4,
		Send: func(b []byte) error { return coll.Ingest(b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 open spans (no End): the agent must bound its map at 4.
	for i := 1; i <= 10; i++ {
		tr.Record(trace.Event{PE: 0, Kind: trace.EvSend, At: time.Duration(i), MsgID: uint64(i)})
	}
	_ = a.ReportOnce()
	a.mu.Lock()
	n := len(a.spans)
	a.mu.Unlock()
	if n > 4 {
		t.Fatalf("agent holds %d spans, bound is 4", n)
	}
	// Completed spans leave the map once fully resent.
	tr.Record(trace.Event{PE: 0, Kind: trace.EvEnd, At: 100, MsgID: 10})
	_ = a.ReportOnce()
	_ = a.ReportOnce()
	a.mu.Lock()
	_, still := a.spans[10]
	a.mu.Unlock()
	if still {
		t.Error("completed, fully-resent span not evicted")
	}
}

func TestHealthConditions(t *testing.T) {
	h := NewHealth()
	if p := h.Problems(); len(p) != 0 {
		t.Fatalf("fresh health has problems: %v", p)
	}
	h.Set("draining", "SIGTERM received")
	if p := h.Problems(); len(p) != 1 {
		t.Fatalf("condition not raised: %v", p)
	}
	h.Set("draining", "")
	if p := h.Problems(); len(p) != 0 {
		t.Fatalf("condition not cleared: %v", p)
	}
	bad := false
	h.AddCheck("membership", func() error {
		if bad {
			return errTest
		}
		return nil
	})
	if p := h.Problems(); len(p) != 0 {
		t.Fatalf("passing check reported: %v", p)
	}
	bad = true
	if p := h.Problems(); len(p) != 1 {
		t.Fatalf("failing check not reported: %v", p)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "not active" }
