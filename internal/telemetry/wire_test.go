package telemetry

import (
	"testing"

	"gridmdo/internal/metrics"
)

func sampleReport() *Report {
	return &Report{
		Node:        3,
		Seq:         17,
		Full:        true,
		EpochUnixNs: 1_700_000_000_000_000_000,
		HorizonNs:   2_500_000_000,
		Dropped:     4,
		Metrics: []metrics.Sample{
			{Name: "a_total", Kind: "counter", Value: 42},
			{Name: "depth", Labels: `{tenant="x"}`, Kind: "gauge", Value: -7},
			{Name: "lat", Kind: "histogram", Count: 9, Sum: 123,
				Bucket: []metrics.Bucket{{LE: 10, Count: 3}, {LE: 100, Count: 9}}},
		},
		Spans: []Span{
			{ID: 0x0003_0000_0000_0001, Parent: 0xFFFE_0000_0000_0001, PE: 2, Kind: 1,
				SendNs: 100, EnqueueNs: 4_100_000, BeginNs: 4_200_000, EndNs: 4_900_000},
			{ID: 0x0003_0000_0000_0002, SendNs: 500},
		},
		Steps: []StepOverlap{
			{Step: 0, ComputeNs: 9_000_000, MaskedNs: 3_000_000, ExposedNs: 1_000_000},
			{Step: 1, ComputeNs: 9_100_000, MaskedNs: 3_500_000, ExposedNs: 500_000},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	want := sampleReport()
	buf, err := AppendReport(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Node != want.Node || got.Seq != want.Seq || got.Full != want.Full ||
		got.EpochUnixNs != want.EpochUnixNs || got.HorizonNs != want.HorizonNs ||
		got.Dropped != want.Dropped {
		t.Errorf("header round trip: got %+v", got)
	}
	if len(got.Metrics) != 3 || got.Metrics[1].Value != -7 || got.Metrics[2].Bucket[1].Count != 9 {
		t.Errorf("metrics round trip: %+v", got.Metrics)
	}
	if got.Metrics[1].Labels != `{tenant="x"}` {
		t.Errorf("labels round trip: %q", got.Metrics[1].Labels)
	}
	if len(got.Spans) != 2 || got.Spans[0] != want.Spans[0] || got.Spans[1] != want.Spans[1] {
		t.Errorf("spans round trip: %+v", got.Spans)
	}
	if len(got.Steps) != 2 || got.Steps[1] != want.Steps[1] {
		t.Errorf("steps round trip: %+v", got.Steps)
	}
}

func TestReportEmptySections(t *testing.T) {
	buf, err := AppendReport(nil, &Report{Node: 0, Seq: 1, Full: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != 0 || len(got.Spans) != 0 || len(got.Steps) != 0 {
		t.Errorf("empty report decoded with content: %+v", got)
	}
}

func TestDecodeReportStrict(t *testing.T) {
	good, err := AppendReport(nil, sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad magic", []byte{'X', 'Y', 1, 0}},
		{"bad version", []byte{'T', 'L', 99, 0}},
		{"truncated", good[:len(good)/2]},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeReport(tc.b); err == nil {
				t.Fatalf("decoded %s without error", tc.name)
			}
		})
	}

	// Truncation at EVERY prefix length must error, never panic or
	// succeed (the trailing-byte check catches accidental short parses).
	for n := 0; n < len(good); n++ {
		if _, err := DecodeReport(good[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(good))
		}
	}
}

func TestDecodeReportBadKind(t *testing.T) {
	r := sampleReport()
	buf, err := AppendReport(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	// Encoding an unknown sample kind must fail up front.
	r.Metrics[0].Kind = "exotic"
	if _, err := AppendReport(nil, r); err == nil {
		t.Error("encoded unknown sample kind")
	}
	_ = buf
}
