// Package telemetry is the cluster's live observability plane: a
// per-process Agent periodically ships compact metric deltas, trace-span
// digests, and per-step overlap summaries over the vmi control path
// (ControlTelemetry frames), and a Collector — embedded in gridgate or a
// standalone gridnode -collector — merges the reports into one
// continuously updating cluster view: aggregated metrics, per-step
// masked/exposed fractions across all nodes, end-to-end job traces, and
// SLO burn rates.
//
// Reports ride raw control frames, deliberately *below* the Reliable
// layer: telemetry must never compete with application retransmits for
// a congested link, so a lossy link degrades the cluster view instead
// of the computation. The protocol is built for that: every report is
// either a full snapshot or a delta chained to the previous sequence
// number, the collector applies deltas only on an unbroken chain and
// otherwise waits for the next full snapshot, span digests are resent
// until complete, and per-step overlap rows replace rather than add.
// Losing frames therefore costs freshness, never correctness.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gridmdo/internal/metrics"
)

// ErrBadWire is wrapped by all telemetry decode failures, mirroring the
// core codec convention: a malformed control frame is dropped whole, not
// half-applied.
var ErrBadWire = errors.New("telemetry: bad wire data")

const (
	wireMagic0  = 'T'
	wireMagic1  = 'L'
	wireVersion = 1

	// Defensive decode caps: a corrupted length prefix must not balloon
	// an allocation. Far above anything the agent actually sends.
	maxWireSeries = 1 << 16
	maxWireSpans  = 1 << 16
	maxWireSteps  = 1 << 12
	maxWireStr    = 1 << 10
)

// Span is a trace-span digest: the per-message lifecycle of one runtime
// message, folded from EvSend/EvEnqueue/EvBegin/EvEnd events. The agent
// ships spans incrementally (a span may arrive with only its send half;
// the execution half follows from the node that ran the handler), and
// the collector merges by ID with nonzero-wins per field. Times are
// node-local nanoseconds since that node's runtime epoch; the collector
// re-bases them onto wall time using the report's EpochUnixNs.
type Span struct {
	ID     uint64 // node-unique message ID (node number in the high bits)
	Parent uint64 // causal parent message ID, 0 at a root
	PE     int32  // executing PE (from Begin), else enqueue PE
	Kind   byte   // runtime message kind (core.Kind)

	SendNs    int64 // EvSend time, 0 if not observed
	EnqueueNs int64 // EvEnqueue time, 0 if not observed
	BeginNs   int64 // handler start, 0 if not observed
	EndNs     int64 // handler end, 0 if not observed
}

// StepOverlap is one application step's latency accounting on one node:
// how much communication wait overlapped with useful compute (masked)
// versus stalled a PE (exposed) — the paper's headline quantity, shipped
// live instead of post-mortem. Values are summed PE-nanoseconds.
type StepOverlap struct {
	Step      int64
	ComputeNs int64
	MaskedNs  int64
	ExposedNs int64
}

// Report is one telemetry shipment from one node's agent.
type Report struct {
	Node int32  // reporting node
	Seq  uint64 // per-agent sequence number, 1-based, increments every report

	// Full marks a complete metrics snapshot; otherwise Metrics is a
	// delta relative to the agent's report Seq-1 and the collector must
	// only apply it on an unbroken chain.
	Full bool

	EpochUnixNs int64  // the node's runtime epoch as wall time (UnixNano)
	HorizonNs   int64  // node-local time of this report (ns since epoch)
	Dropped     uint64 // trace events lost to ring wrap or agent backlog

	Metrics []metrics.Sample
	Spans   []Span
	Steps   []StepOverlap
}

// sample kind codes on the wire.
const (
	wireKindCounter   = 0
	wireKindGauge     = 1
	wireKindHistogram = 2
)

func kindCode(kind string) (byte, error) {
	switch kind {
	case metrics.KindCounter.String():
		return wireKindCounter, nil
	case metrics.KindGauge.String():
		return wireKindGauge, nil
	case metrics.KindHistogram.String():
		return wireKindHistogram, nil
	}
	return 0, fmt.Errorf("%w: sample kind %q", ErrBadWire, kind)
}

func kindName(code byte) (string, error) {
	switch code {
	case wireKindCounter:
		return metrics.KindCounter.String(), nil
	case wireKindGauge:
		return metrics.KindGauge.String(), nil
	case wireKindHistogram:
		return metrics.KindHistogram.String(), nil
	}
	return "", fmt.Errorf("%w: sample kind code %d", ErrBadWire, code)
}

// AppendReport appends r in wire form: magic, version, varint fields,
// length-prefixed sections. The layout matches the membership codec's
// conventions so both control-frame payloads decode with the same
// strictness.
func AppendReport(dst []byte, r *Report) ([]byte, error) {
	dst = append(dst, wireMagic0, wireMagic1, wireVersion)
	dst = binary.AppendVarint(dst, int64(r.Node))
	dst = binary.AppendUvarint(dst, r.Seq)
	if r.Full {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendVarint(dst, r.EpochUnixNs)
	dst = binary.AppendVarint(dst, r.HorizonNs)
	dst = binary.AppendUvarint(dst, r.Dropped)

	dst = binary.AppendUvarint(dst, uint64(len(r.Metrics)))
	for _, s := range r.Metrics {
		code, err := kindCode(s.Kind)
		if err != nil {
			return nil, err
		}
		dst = appendString(dst, s.Name)
		dst = appendString(dst, s.Labels)
		dst = append(dst, code)
		dst = binary.AppendVarint(dst, s.Value)
		dst = binary.AppendVarint(dst, s.Count)
		dst = binary.AppendVarint(dst, s.Sum)
		dst = binary.AppendUvarint(dst, uint64(len(s.Bucket)))
		for _, b := range s.Bucket {
			dst = binary.AppendVarint(dst, b.LE)
			dst = binary.AppendVarint(dst, b.Count)
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(r.Spans)))
	for _, sp := range r.Spans {
		dst = binary.AppendUvarint(dst, sp.ID)
		dst = binary.AppendUvarint(dst, sp.Parent)
		dst = binary.AppendVarint(dst, int64(sp.PE))
		dst = append(dst, sp.Kind)
		dst = binary.AppendVarint(dst, sp.SendNs)
		dst = binary.AppendVarint(dst, sp.EnqueueNs)
		dst = binary.AppendVarint(dst, sp.BeginNs)
		dst = binary.AppendVarint(dst, sp.EndNs)
	}

	dst = binary.AppendUvarint(dst, uint64(len(r.Steps)))
	for _, st := range r.Steps {
		dst = binary.AppendVarint(dst, st.Step)
		dst = binary.AppendVarint(dst, st.ComputeNs)
		dst = binary.AppendVarint(dst, st.MaskedNs)
		dst = binary.AppendVarint(dst, st.ExposedNs)
	}
	return dst, nil
}

// DecodeReport parses a wire-form report. Strict: bad magic, unknown
// version, truncated input, oversized counts, and trailing bytes all
// fail, so a corrupted control frame is rejected whole.
func DecodeReport(b []byte) (*Report, error) {
	if len(b) < 3 || b[0] != wireMagic0 || b[1] != wireMagic1 {
		return nil, fmt.Errorf("%w: bad report magic", ErrBadWire)
	}
	if b[2] != wireVersion {
		return nil, fmt.Errorf("%w: report version %d", ErrBadWire, b[2])
	}
	b = b[3:]
	var r Report
	var sv int64
	var uv uint64
	var err error
	if sv, b, err = consumeVarint(b); err != nil {
		return nil, err
	}
	r.Node = int32(sv)
	if r.Seq, b, err = consumeUvarint(b); err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: truncated full flag", ErrBadWire)
	}
	if b[0] > 1 {
		return nil, fmt.Errorf("%w: full flag %d", ErrBadWire, b[0])
	}
	r.Full = b[0] == 1
	b = b[1:]
	if r.EpochUnixNs, b, err = consumeVarint(b); err != nil {
		return nil, err
	}
	if r.HorizonNs, b, err = consumeVarint(b); err != nil {
		return nil, err
	}
	if r.Dropped, b, err = consumeUvarint(b); err != nil {
		return nil, err
	}

	if uv, b, err = consumeUvarint(b); err != nil {
		return nil, err
	}
	if uv > maxWireSeries {
		return nil, fmt.Errorf("%w: %d metric series", ErrBadWire, uv)
	}
	if uv > 0 {
		r.Metrics = make([]metrics.Sample, 0, uv)
	}
	for i := uint64(0); i < uv; i++ {
		var s metrics.Sample
		if s.Name, b, err = consumeString(b); err != nil {
			return nil, err
		}
		if s.Labels, b, err = consumeString(b); err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated sample kind", ErrBadWire)
		}
		if s.Kind, err = kindName(b[0]); err != nil {
			return nil, err
		}
		b = b[1:]
		if s.Value, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if s.Count, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if s.Sum, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		var nb uint64
		if nb, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if nb > maxWireSeries {
			return nil, fmt.Errorf("%w: %d histogram buckets", ErrBadWire, nb)
		}
		if nb > 0 {
			s.Bucket = make([]metrics.Bucket, 0, nb)
		}
		for j := uint64(0); j < nb; j++ {
			var bk metrics.Bucket
			if bk.LE, b, err = consumeVarint(b); err != nil {
				return nil, err
			}
			if bk.Count, b, err = consumeVarint(b); err != nil {
				return nil, err
			}
			s.Bucket = append(s.Bucket, bk)
		}
		r.Metrics = append(r.Metrics, s)
	}

	if uv, b, err = consumeUvarint(b); err != nil {
		return nil, err
	}
	if uv > maxWireSpans {
		return nil, fmt.Errorf("%w: %d spans", ErrBadWire, uv)
	}
	if uv > 0 {
		r.Spans = make([]Span, 0, uv)
	}
	for i := uint64(0); i < uv; i++ {
		var sp Span
		if sp.ID, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if sp.Parent, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if sv, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		sp.PE = int32(sv)
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated span kind", ErrBadWire)
		}
		sp.Kind = b[0]
		b = b[1:]
		if sp.SendNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if sp.EnqueueNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if sp.BeginNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if sp.EndNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		r.Spans = append(r.Spans, sp)
	}

	if uv, b, err = consumeUvarint(b); err != nil {
		return nil, err
	}
	if uv > maxWireSteps {
		return nil, fmt.Errorf("%w: %d steps", ErrBadWire, uv)
	}
	if uv > 0 {
		r.Steps = make([]StepOverlap, 0, uv)
	}
	for i := uint64(0); i < uv; i++ {
		var st StepOverlap
		if st.Step, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if st.ComputeNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if st.MaskedNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		if st.ExposedNs, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		r.Steps = append(r.Steps, st)
	}

	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after report", ErrBadWire, len(b))
	}
	return &r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func consumeString(b []byte) (string, []byte, error) {
	n, b, err := consumeUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > maxWireStr || n > uint64(len(b)) {
		return "", b, fmt.Errorf("%w: truncated string", ErrBadWire)
	}
	return string(b[:n]), b[n:], nil
}

func consumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad uvarint", ErrBadWire)
	}
	return v, b[n:], nil
}

func consumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad varint", ErrBadWire)
	}
	return v, b[n:], nil
}
