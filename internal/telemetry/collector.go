package telemetry

import (
	"sort"
	"sync"
	"time"

	"gridmdo/internal/metrics"
)

// Collector defaults.
const (
	DefaultMaxStoredSpans = 1 << 17
	DefaultMaxJobRoots    = 1 << 16

	// maxTraceSpans caps one job-trace walk, so a pathological span graph
	// cannot make the HTTP endpoint allocate without bound.
	maxTraceSpans = 4096

	// rootIDBase is the high-bits prefix of collector-allocated job-root
	// span IDs. Runtime message IDs carry their node number in the high
	// 16 bits; 0xFFFE is far above any real node, so roots can never
	// collide with a message.
	rootIDBase = uint64(0xFFFE) << 48
)

// CollectorConfig configures a collector. All fields are optional.
type CollectorConfig struct {
	SLO            *SLOTracker // job latencies feed it when set
	MaxStoredSpans int         // span store bound; DefaultMaxStoredSpans if 0
	MaxJobRoots    int         // job-id → root map bound; DefaultMaxJobRoots if 0

	// Now overrides the wall clock (job-root span stamps, staleness).
	// Defaults to time.Now; the bench injects a virtual clock.
	Now func() time.Time
}

// nodeState is the collector's view of one reporting agent.
type nodeState struct {
	snap        metrics.Snapshot
	lastSeq     uint64
	haveFull    bool // a full snapshot arrived and the delta chain is unbroken
	gaps        uint64
	epochUnixNs int64
	horizonNs   int64
	dropped     uint64
	lastReport  time.Time
	reports     uint64
}

// SpanRecord is one merged span in the collector's store. Times are wall
// clock (UnixNano), re-based from each report's node epoch, so spans
// from different processes share one time base (up to OS clock sync).
// Node is the node that executed the handler (the report carrying
// BeginNs), -1 until an execution half arrives.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Node   int32  `json:"node"`
	PE     int32  `json:"pe"`
	Kind   byte   `json:"kind"`

	SendUnixNs    int64 `json:"send_ns,omitempty"`
	EnqueueUnixNs int64 `json:"enqueue_ns,omitempty"`
	BeginUnixNs   int64 `json:"begin_ns,omitempty"`
	EndUnixNs     int64 `json:"end_ns,omitempty"`
}

// NodeStatus is one node's liveness row in the cluster health view.
type NodeStatus struct {
	Node         int32  `json:"node"`
	Reports      uint64 `json:"reports"`
	LastSeq      uint64 `json:"last_seq"`
	Gaps         uint64 `json:"gaps"`    // delta-chain breaks observed (dropped control frames)
	Dropped      uint64 `json:"dropped"` // trace events the agent itself lost
	AgeMs        int64  `json:"age_ms"`  // since the last report arrived
	HorizonMs    int64  `json:"horizon_ms"`
	MetricsFresh bool   `json:"metrics_fresh"` // delta chain intact since the last full
}

// JobTraceDoc is the span tree of one gateway job, walked from its
// admission root.
type JobTraceDoc struct {
	JobID string       `json:"job_id"`
	Root  uint64       `json:"root"`
	Spans []SpanRecord `json:"spans"`
	Nodes []int        `json:"nodes"` // distinct executing nodes, sorted

	// Complete: the root has ended, the tree extends beyond the root, and
	// every span in it has been observed to finish. Under control-frame
	// drops a tree can be retrieved while still partial; the bench's
	// completeness ratio counts this flag.
	Complete bool `json:"complete"`
}

// Collector merges agents' telemetry reports into a live cluster view.
// One collector per cluster; all methods are safe for concurrent use.
// It also implements the gateway's trace-observer hooks (JobAdmitted,
// JobInjected, JobDone), stitching HTTP-side job roots onto the runtime
// span stream.
type Collector struct {
	cfg CollectorConfig

	mu        sync.Mutex
	nodes     map[int32]*nodeState
	spans     map[uint64]*SpanRecord
	spanOrder []uint64
	children  map[uint64][]uint64
	steps     map[int32]map[int64]StepOverlap // per node, per step; replace on arrival
	jobRoots  map[string]uint64
	jobOrder  []string
	rootSeq   uint64
	badWire   uint64
}

// NewCollector builds a collector.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.MaxStoredSpans <= 0 {
		cfg.MaxStoredSpans = DefaultMaxStoredSpans
	}
	if cfg.MaxJobRoots <= 0 {
		cfg.MaxJobRoots = DefaultMaxJobRoots
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Collector{
		cfg:      cfg,
		nodes:    make(map[int32]*nodeState),
		spans:    make(map[uint64]*SpanRecord),
		children: make(map[uint64][]uint64),
		steps:    make(map[int32]map[int64]StepOverlap),
		jobRoots: make(map[string]uint64),
	}
}

// SLO exposes the tracker (nil when SLO tracking is off).
func (c *Collector) SLO() *SLOTracker { return c.cfg.SLO }

// Ingest decodes and applies one wire report. Malformed input is counted
// and rejected whole. Safe to call from a transport read goroutine — it
// only takes the collector lock.
func (c *Collector) Ingest(b []byte) error {
	r, err := DecodeReport(b)
	if err != nil {
		c.mu.Lock()
		c.badWire++
		c.mu.Unlock()
		return err
	}
	c.Apply(r)
	return nil
}

// Apply merges one decoded report.
func (c *Collector) Apply(r *Report) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	ns := c.nodes[r.Node]
	if ns == nil {
		ns = &nodeState{}
		c.nodes[r.Node] = ns
	}
	if r.Seq <= ns.lastSeq && ns.reports > 0 {
		// Duplicate or reordered frame; the metrics chain can't use it,
		// but spans and steps merge idempotently.
		c.applySpans(r)
		c.applySteps(r)
		return
	}

	switch {
	case r.Full:
		ns.snap = metrics.Snapshot{Series: r.Metrics}
		ns.haveFull = true
	case ns.haveFull && r.Seq == ns.lastSeq+1:
		ns.snap = ns.snap.Merge(metrics.Snapshot{Series: r.Metrics})
	default:
		// Broken delta chain: at least one report was lost. Hold the
		// stale snapshot and wait for the next full one.
		ns.gaps++
		ns.haveFull = false
	}
	ns.lastSeq = r.Seq
	ns.epochUnixNs = r.EpochUnixNs
	ns.horizonNs = r.HorizonNs
	ns.dropped = r.Dropped
	ns.lastReport = now
	ns.reports++

	c.applySpans(r)
	c.applySteps(r)
}

// applySpans merges a report's span digests (caller holds the lock).
// Nonzero-wins per field makes the merge idempotent, so resent digests
// and duplicate frames are harmless.
func (c *Collector) applySpans(r *Report) {
	for _, sp := range r.Spans {
		rec := c.spans[sp.ID]
		if rec == nil {
			if len(c.spans) >= c.cfg.MaxStoredSpans {
				c.evictOldestSpan()
			}
			rec = &SpanRecord{ID: sp.ID, Node: -1}
			c.spans[sp.ID] = rec
			c.spanOrder = append(c.spanOrder, sp.ID)
		}
		if sp.Parent != 0 && rec.Parent == 0 {
			rec.Parent = sp.Parent
			c.children[sp.Parent] = append(c.children[sp.Parent], sp.ID)
		}
		if sp.Kind != 0 && rec.Kind == 0 {
			rec.Kind = sp.Kind
		}
		rebase := func(ns int64) int64 {
			if ns == 0 {
				return 0
			}
			return r.EpochUnixNs + ns
		}
		if sp.SendNs != 0 && rec.SendUnixNs == 0 {
			rec.SendUnixNs = rebase(sp.SendNs)
		}
		if sp.EnqueueNs != 0 && rec.EnqueueUnixNs == 0 {
			rec.EnqueueUnixNs = rebase(sp.EnqueueNs)
		}
		if sp.BeginNs != 0 && rec.BeginUnixNs == 0 {
			rec.BeginUnixNs = rebase(sp.BeginNs)
			// The execution half comes from the node that ran the
			// handler; that is the span's home for attribution.
			rec.Node = r.Node
			rec.PE = sp.PE
		}
		if sp.EndNs != 0 && rec.EndUnixNs == 0 {
			rec.EndUnixNs = rebase(sp.EndNs)
		}
	}
}

// applySteps stores a report's per-step overlap rows, replacing earlier
// rows for the same (node, step) — a step reprofiled with more of its
// events in view supersedes the partial row (caller holds the lock).
func (c *Collector) applySteps(r *Report) {
	if len(r.Steps) == 0 {
		return
	}
	m := c.steps[r.Node]
	if m == nil {
		m = make(map[int64]StepOverlap)
		c.steps[r.Node] = m
	}
	for _, st := range r.Steps {
		m[st.Step] = st
	}
}

// evictOldestSpan drops the oldest stored span (caller holds the lock).
func (c *Collector) evictOldestSpan() {
	for len(c.spanOrder) > 0 {
		id := c.spanOrder[0]
		c.spanOrder = c.spanOrder[1:]
		rec, ok := c.spans[id]
		if !ok {
			continue
		}
		delete(c.spans, id)
		if rec.Parent != 0 {
			c.children[rec.Parent] = removeID(c.children[rec.Parent], id)
			if len(c.children[rec.Parent]) == 0 {
				delete(c.children, rec.Parent)
			}
		}
		delete(c.children, id)
		return
	}
}

func removeID(ids []uint64, id uint64) []uint64 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// ClusterMetrics aggregates every node's current snapshot into one
// cluster view: counters and histograms sum across nodes (each node
// counted its own share of the work), and gauges sum too — a gauge like
// queue depth on independent node instances adds to the cluster total.
// This is deliberately not metrics.Merge, whose gauge-replace semantics
// apply deltas from ONE source over time; here the sources are distinct.
func (c *Collector) ClusterMetrics() metrics.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	type key struct{ name, labels string }
	idx := make(map[key]int)
	var out metrics.Snapshot
	nodeIDs := sortedNodes(c.nodes)
	for _, n := range nodeIDs {
		for _, s := range c.nodes[n].snap.Series {
			k := key{s.Name, s.Labels}
			i, ok := idx[k]
			if !ok {
				idx[k] = len(out.Series)
				cp := s
				cp.Bucket = append([]metrics.Bucket(nil), s.Bucket...)
				out.Series = append(out.Series, cp)
				continue
			}
			dst := &out.Series[i]
			if dst.Kind != s.Kind {
				continue // conflicting registration across nodes; first wins
			}
			dst.Value += s.Value
			dst.Count += s.Count
			dst.Sum += s.Sum
			if len(dst.Bucket) == len(s.Bucket) {
				for j := range dst.Bucket {
					dst.Bucket[j].Count += s.Bucket[j].Count
				}
			}
		}
	}
	sort.Slice(out.Series, func(i, j int) bool {
		a, b := out.Series[i], out.Series[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return out
}

// ClusterStep is one application step summed across every node.
type ClusterStep struct {
	Step       int64   `json:"step"`
	ComputeNs  int64   `json:"compute_ns"`
	MaskedNs   int64   `json:"masked_ns"`
	ExposedNs  int64   `json:"exposed_ns"`
	MaskedFrac float64 `json:"masked_frac"` // masked / (masked+exposed), 0 if nothing in flight
	Nodes      int     `json:"nodes"`       // nodes that reported this step
}

// ClusterOverlap sums the per-step masked/exposed accounting across all
// nodes — the paper's headline number, live. Rows sort by step.
func (c *Collector) ClusterOverlap() []ClusterStep {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[int64]*ClusterStep)
	for _, m := range c.steps {
		for step, st := range m {
			a := agg[step]
			if a == nil {
				a = &ClusterStep{Step: step}
				agg[step] = a
			}
			a.ComputeNs += st.ComputeNs
			a.MaskedNs += st.MaskedNs
			a.ExposedNs += st.ExposedNs
			a.Nodes++
		}
	}
	out := make([]ClusterStep, 0, len(agg))
	for _, a := range agg {
		if t := a.MaskedNs + a.ExposedNs; t > 0 {
			a.MaskedFrac = float64(a.MaskedNs) / float64(t)
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Nodes reports one status row per reporting node, sorted by node.
func (c *Collector) Nodes() []NodeStatus {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.nodes))
	for _, n := range sortedNodes(c.nodes) {
		ns := c.nodes[n]
		out = append(out, NodeStatus{
			Node:         n,
			Reports:      ns.reports,
			LastSeq:      ns.lastSeq,
			Gaps:         ns.gaps,
			Dropped:      ns.dropped,
			AgeMs:        now.Sub(ns.lastReport).Milliseconds(),
			HorizonMs:    ns.horizonNs / int64(time.Millisecond),
			MetricsFresh: ns.haveFull,
		})
	}
	return out
}

// BadWire reports how many ingested payloads failed to decode.
func (c *Collector) BadWire() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.badWire
}

// JobAdmitted implements the gateway's observer hook: it allocates a
// root span for a newly admitted job, stamped with the wall-clock
// admission time. Runs under the gateway's lock — cheap by design.
func (c *Collector) JobAdmitted(jobID, tenant string) uint64 {
	now := c.cfg.Now().UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rootSeq++
	root := rootIDBase | c.rootSeq
	if len(c.spans) >= c.cfg.MaxStoredSpans {
		c.evictOldestSpan()
	}
	c.spans[root] = &SpanRecord{ID: root, Node: -1, BeginUnixNs: now}
	c.spanOrder = append(c.spanOrder, root)
	for len(c.jobRoots) >= c.cfg.MaxJobRoots && len(c.jobOrder) > 0 {
		delete(c.jobRoots, c.jobOrder[0])
		c.jobOrder = c.jobOrder[1:]
	}
	c.jobRoots[jobID] = root
	c.jobOrder = append(c.jobOrder, jobID)
	return root
}

// JobInjected links the runtime message that carried a job into the farm
// under the job's root span. Several jobs batch into one injection
// message, so several roots may adopt the same message as a child.
func (c *Collector) JobInjected(root, msgID uint64) {
	if root == 0 || msgID == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.children[root] {
		if id == msgID {
			return
		}
	}
	c.children[root] = append(c.children[root], msgID)
}

// JobDone closes a job's root span and feeds the SLO tracker.
func (c *Collector) JobDone(jobID string, root uint64, tenant string, latency time.Duration, failed bool) {
	now := c.cfg.Now()
	c.mu.Lock()
	if rec := c.spans[root]; rec != nil && rec.EndUnixNs == 0 {
		rec.EndUnixNs = now.UnixNano()
	}
	c.mu.Unlock()
	c.cfg.SLO.Record(tenant, now, latency, failed)
}

// JobTrace walks a job's span tree from its admission root. The second
// result is false when the job is unknown (never admitted here, or its
// root aged out).
func (c *Collector) JobTrace(jobID string) (*JobTraceDoc, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	root, ok := c.jobRoots[jobID]
	if !ok {
		return nil, false
	}
	doc := &JobTraceDoc{JobID: jobID, Root: root}
	seen := make(map[uint64]bool)
	queue := []uint64{root}
	nodes := make(map[int]bool)
	allEnded := true
	for len(queue) > 0 && len(doc.Spans) < maxTraceSpans {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		if rec := c.spans[id]; rec != nil {
			doc.Spans = append(doc.Spans, *rec)
			if rec.Node >= 0 {
				nodes[int(rec.Node)] = true
			}
			if rec.EndUnixNs == 0 {
				allEnded = false
			}
		} else if id != root {
			// A child edge points at a span we never received (dropped
			// frames): the tree is incomplete but still walkable.
			allEnded = false
		}
		queue = append(queue, c.children[id]...)
	}
	doc.Nodes = make([]int, 0, len(nodes))
	for n := range nodes {
		doc.Nodes = append(doc.Nodes, n)
	}
	sort.Ints(doc.Nodes)
	doc.Complete = allEnded && len(doc.Spans) > 1
	sort.Slice(doc.Spans, func(i, j int) bool { return spanStart(doc.Spans[i]) < spanStart(doc.Spans[j]) })
	return doc, true
}

// spanStart is a span's earliest observed instant, for display ordering.
func spanStart(s SpanRecord) int64 {
	for _, t := range []int64{s.SendUnixNs, s.EnqueueUnixNs, s.BeginUnixNs, s.EndUnixNs} {
		if t != 0 {
			return t
		}
	}
	return 0
}

// SpanCount reports the number of spans currently stored.
func (c *Collector) SpanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

func sortedNodes(m map[int32]*nodeState) []int32 {
	out := make([]int32, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
