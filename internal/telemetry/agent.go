package telemetry

import (
	"fmt"
	"sync"
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
)

// Agent defaults.
const (
	DefaultInterval    = 500 * time.Millisecond
	DefaultFullEvery   = 4
	DefaultRetainSteps = 8
	DefaultMaxSpans    = 8192

	// maxSpansPerReport bounds one report's span section so a burst of
	// trace activity spreads across ticks instead of producing one huge
	// control frame.
	maxSpansPerReport = 512

	// maxRetainedEvents bounds the agent's overlap event buffer for
	// workloads that never emit step marks (the taskfarm, say) — without
	// marks nothing would ever trim the buffer.
	maxRetainedEvents = 1 << 15

	// maxMarklessEvents is the tighter bound used when the buffer holds
	// no step marks at all: the single rolling-window row such a buffer
	// produces is an approximation either way, and profiling is O(buffer)
	// per recomputation.
	maxMarklessEvents = 1 << 13
)

// AgentConfig configures a telemetry agent. Registry and Send are
// required; everything else has a useful default or may be absent.
type AgentConfig struct {
	Node     int
	Registry *metrics.Registry
	Tracer   *trace.Tracer // nil: no span digests or overlap rows
	Epoch    time.Time     // the runtime's epoch (rt.Epoch()); trace times are relative to it
	NumPE    int           // PEs this process hosts (overlap profiling width)

	Interval    time.Duration // reporting period; DefaultInterval if 0
	FullEvery   int           // every n-th report is a full metrics snapshot; DefaultFullEvery if 0
	RetainSteps int           // step-overlap rows kept and shipped; DefaultRetainSteps if 0
	MaxSpans    int           // span-digest map bound; DefaultMaxSpans if 0

	// Send ships one encoded report. It runs on the agent goroutine (or
	// the ReportOnce caller) and should be cheap; the vmi control path's
	// SendControl qualifies. A send error is counted and the report
	// dropped — telemetry is lossy by design.
	Send func([]byte) error

	// SpanFilter, when set, limits which trace events feed the span
	// digests (return false to drop). Overlap profiling always sees every
	// event. Embedders use it to keep infrastructure chatter (quiescence
	// probes, stop messages) out of the span stream without this package
	// importing the runtime's kind table.
	SpanFilter func(trace.Event) bool

	// Now, when set, overrides the report clock (ns since Epoch) — the
	// bench harness injects a virtual clock. Defaults to wall time.
	Now func() time.Duration
}

// spanState is a span digest being accumulated. dirty counts how many
// more reports should carry the span: it is set to resendFactor whenever
// an event lands, so each change is shipped on a couple of consecutive
// reports and survives a dropped control frame or two.
type spanState struct {
	span  Span
	dirty int
}

const resendFactor = 2

// Agent periodically folds the process's registry and tracer into
// compact reports and hands them to Send. One agent per process; all
// methods are safe for concurrent use.
type Agent struct {
	cfg AgentConfig

	mu       sync.Mutex
	seq      uint64
	lastSnap metrics.Snapshot
	cursor   *trace.Cursor
	spans    map[uint64]*spanState
	order    []uint64      // span insertion order, for oldest-first eviction
	events   []trace.Event // retained for step-overlap profiling
	readBuf  []trace.Event // scratch for cursor drains, reused across ticks
	sendErrs uint64

	// Step-overlap rows are cached per step so each tick only profiles
	// the events still in the buffer — the open step plus one completed
	// step of flight context — instead of re-profiling RetainSteps' worth
	// of history. Without the cache, StepOverlaps over a full retained
	// buffer dominated the tick (measured ~9 ms and ~13 MB per tick at
	// stencil event rates; see BenchmarkAgentTick).
	stepCache map[int64]StepOverlap
	stepOrder []int64 // ascending step numbers still cached
	hasMarks  bool    // buffer currently holds at least one step mark

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewAgent builds an agent. The tracer cursor starts at the tracer's
// current tail, so an agent attached mid-run reports only new activity.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: agent needs a metrics registry")
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("telemetry: agent needs a Send function")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = DefaultFullEvery
	}
	if cfg.RetainSteps <= 0 {
		cfg.RetainSteps = DefaultRetainSteps
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.Now == nil {
		epoch := cfg.Epoch
		cfg.Now = func() time.Duration { return time.Since(epoch) }
	}
	return &Agent{
		cfg:       cfg,
		cursor:    cfg.Tracer.NewCursor(),
		spans:     make(map[uint64]*spanState),
		stepCache: make(map[int64]StepOverlap),
		stop:      make(chan struct{}),
	}, nil
}

// Start launches the reporting ticker. Stop flushes one final report and
// waits for the goroutine.
func (a *Agent) Start() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		tick := time.NewTicker(a.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				_ = a.ReportOnce()
			case <-a.stop:
				_ = a.ReportOnce()
				return
			}
		}
	}()
}

// Stop flushes a final report and stops the ticker goroutine. Safe to
// call once, whether or not Start ran.
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.wg.Wait()
}

// SendErrs reports how many reports Send rejected (and were dropped).
func (a *Agent) SendErrs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sendErrs
}

// ReportOnce builds and sends one report immediately: full metrics
// snapshot on the first and every FullEvery-th report, a trimmed delta
// otherwise, plus dirty span digests and the recent step-overlap rows.
// The ticker calls it; tests and the bench harness drive it manually.
func (a *Agent) ReportOnce() error {
	a.mu.Lock()
	defer a.mu.Unlock()

	a.seq++
	full := (a.seq-1)%uint64(a.cfg.FullEvery) == 0
	snap := a.cfg.Registry.Snapshot()
	var series []metrics.Sample
	if full {
		series = snap.Series
	} else {
		series = trimDelta(snap.Sub(a.lastSnap), a.lastSnap)
	}
	a.lastSnap = snap

	a.foldNewEvents()
	spans := a.takeDirtySpans()
	now := a.cfg.Now()
	steps := a.stepRows(now, full)

	r := &Report{
		Node:        int32(a.cfg.Node),
		Seq:         a.seq,
		Full:        full,
		EpochUnixNs: a.cfg.Epoch.UnixNano(),
		HorizonNs:   int64(now),
		Dropped:     a.cfg.Tracer.Dropped() + a.cursor.Skipped(),
		Metrics:     series,
		Spans:       spans,
		Steps:       steps,
	}
	buf, err := AppendReport(nil, r)
	if err != nil {
		return err
	}
	if err := a.cfg.Send(buf); err != nil {
		a.sendErrs++
		return err
	}
	return nil
}

// trimDelta drops series a delta does not need to carry: counters and
// histograms that did not move, and gauges whose reading matches what
// the collector already holds. The collector's chained-delta protocol
// makes the omission safe — an unchanged series stays correct on its
// side, and any gap forces a wait for the next full snapshot anyway.
func trimDelta(delta, prev metrics.Snapshot) []metrics.Sample {
	type key struct{ name, labels string }
	prevGauge := make(map[key]int64)
	for _, s := range prev.Series {
		if s.Kind == metrics.KindGauge.String() {
			prevGauge[key{s.Name, s.Labels}] = s.Value
		}
	}
	out := delta.Series[:0]
	for _, s := range delta.Series {
		if s.Kind == metrics.KindGauge.String() {
			if v, ok := prevGauge[key{s.Name, s.Labels}]; ok && v == s.Value {
				continue
			}
		} else if s.Value == 0 && s.Count == 0 && s.Sum == 0 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// foldNewEvents drains the tracer cursor, folds message-lifecycle events
// into span digests, and appends everything to the overlap buffer.
func (a *Agent) foldNewEvents() {
	if a.cfg.Tracer == nil {
		return
	}
	a.readBuf = a.cursor.ReadNew(a.readBuf[:0])
	for _, ev := range a.readBuf {
		a.foldSpan(ev)
	}
	a.events = append(a.events, a.readBuf...)
	a.trimEvents()
}

// foldSpan merges one trace event into its span digest.
func (a *Agent) foldSpan(ev trace.Event) {
	if ev.MsgID == 0 {
		return
	}
	switch ev.Kind {
	case trace.EvSend, trace.EvEnqueue, trace.EvBegin, trace.EvEnd:
	default:
		return
	}
	if a.cfg.SpanFilter != nil && !a.cfg.SpanFilter(ev) {
		return
	}
	st := a.spans[ev.MsgID]
	if st == nil {
		if len(a.spans) >= a.cfg.MaxSpans {
			a.evictOldestSpan()
		}
		st = &spanState{span: Span{ID: ev.MsgID}}
		a.spans[ev.MsgID] = st
		a.order = append(a.order, ev.MsgID)
	}
	sp := &st.span
	switch ev.Kind {
	case trace.EvSend:
		sp.SendNs = int64(ev.At)
		if ev.Parent != 0 {
			sp.Parent = ev.Parent
		}
		sp.Kind = ev.MsgKind
	case trace.EvEnqueue:
		sp.EnqueueNs = int64(ev.At)
		if ev.Parent != 0 && sp.Parent == 0 {
			sp.Parent = ev.Parent
		}
		if sp.BeginNs == 0 {
			sp.PE = int32(ev.PE)
		}
	case trace.EvBegin:
		sp.BeginNs = int64(ev.At)
		sp.PE = int32(ev.PE)
		if sp.Kind == 0 {
			sp.Kind = ev.MsgKind
		}
	case trace.EvEnd:
		sp.EndNs = int64(ev.At)
	}
	st.dirty = resendFactor
}

// evictOldestSpan drops the oldest span still tracked, compacting the
// order list past already-evicted IDs.
func (a *Agent) evictOldestSpan() {
	for len(a.order) > 0 {
		id := a.order[0]
		a.order = a.order[1:]
		if _, ok := a.spans[id]; ok {
			delete(a.spans, id)
			return
		}
	}
}

// takeDirtySpans collects up to maxSpansPerReport dirty digests,
// decrements their resend budget, and evicts digests that are both
// complete and fully resent.
func (a *Agent) takeDirtySpans() []Span {
	var out []Span
	kept := a.order[:0]
	for _, id := range a.order {
		st, ok := a.spans[id]
		if !ok {
			continue
		}
		if st.dirty > 0 && len(out) < maxSpansPerReport {
			out = append(out, st.span)
			st.dirty--
		}
		if st.dirty == 0 && st.span.EndNs != 0 {
			delete(a.spans, id)
			continue
		}
		kept = append(kept, id)
	}
	a.order = kept
	return out
}

// trimEvents bounds the overlap buffer: keep the open step plus one
// completed step of history (flights sent late in a step land in the
// next one, so the completed step's final profile needs its
// predecessor's sends), and never more than maxRetainedEvents. Older
// steps live on as cached rows in stepCache, not as events.
func (a *Agent) trimEvents() {
	var markAts []time.Duration
	for _, ev := range a.events {
		if ev.Kind == trace.EvNote && ev.Note == "step" {
			markAts = append(markAts, ev.At)
		}
	}
	a.hasMarks = len(markAts) > 0
	if n := len(markAts); n >= 2 {
		cut := markAts[n-2]
		kept := a.events[:0]
		for _, ev := range a.events {
			if ev.At >= cut {
				kept = append(kept, ev)
			}
		}
		a.events = kept
	}
	bound := maxRetainedEvents
	if !a.hasMarks {
		bound = maxMarklessEvents
	}
	if len(a.events) > bound {
		a.events = append(a.events[:0], a.events[len(a.events)-bound:]...)
	}
}

// stepRows profiles the retained events, folds the rows into the
// per-step cache, and returns the newest RetainSteps rows. Rows are
// replace-on-arrival at the collector and a step is re-profiled on
// every tick until the buffer trims past it, so a partially complete
// step's row is self-correcting and its last recomputation — with a
// full step of flight context still in the buffer — is the one that
// sticks.
// Markless buffers yield one rolling-window row; that approximation is
// recomputed only on full reports (the marked path is cheap, the
// markless one is O(buffer) with nothing to cache against).
func (a *Agent) stepRows(now time.Duration, full bool) []StepOverlap {
	if a.cfg.Tracer == nil || a.cfg.NumPE <= 0 {
		return nil
	}
	if len(a.events) > 0 && (a.hasMarks || full) {
		for _, r := range trace.StepOverlaps(a.events, a.cfg.NumPE, now) {
			t := r.Totals()
			if _, seen := a.stepCache[r.Step]; !seen {
				a.stepOrder = append(a.stepOrder, r.Step)
			}
			a.stepCache[r.Step] = StepOverlap{
				Step:      r.Step,
				ComputeNs: int64(t.Busy),
				MaskedNs:  int64(t.Masked),
				ExposedNs: int64(t.Exposed),
			}
		}
	}
	if n := len(a.stepOrder); n > a.cfg.RetainSteps {
		for _, s := range a.stepOrder[:n-a.cfg.RetainSteps] {
			delete(a.stepCache, s)
		}
		a.stepOrder = append(a.stepOrder[:0], a.stepOrder[n-a.cfg.RetainSteps:]...)
	}
	if len(a.stepOrder) == 0 {
		return nil
	}
	out := make([]StepOverlap, 0, len(a.stepOrder))
	for _, s := range a.stepOrder {
		out = append(out, a.stepCache[s])
	}
	return out
}
