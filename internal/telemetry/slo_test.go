package telemetry

import (
	"testing"
	"time"
)

// benchSLO mirrors the bench experiment's configuration: 8ms objective,
// 10% budget, 2s/8s windows, 2x threshold.
func benchSLO() *SLOTracker {
	return NewSLOTracker(SLOConfig{
		Objective:     8 * time.Millisecond,
		Budget:        0.1,
		FastWindow:    2 * time.Second,
		SlowWindow:    8 * time.Second,
		BurnThreshold: 2,
	})
}

func TestSLOBurnStepFiresAndClears(t *testing.T) {
	tr := benchSLO()
	base := time.Unix(1_700_000_000, 0)

	// 10 seconds of healthy traffic: 4ms latency, well under the 8ms
	// objective. No alert.
	at := base
	for s := 0; s < 10; s++ {
		for i := 0; i < 50; i++ {
			tr.Record("acme", at, 4*time.Millisecond, false)
		}
		at = at.Add(time.Second)
		for _, st := range tr.Evaluate(at) {
			if st.Firing {
				t.Fatalf("alert fired on healthy traffic at +%ds: %+v", s, st)
			}
		}
	}

	// Latency step to 32ms: every request is now bad, burn = 1/0.1 = 10x.
	// The alert must fire within two fast windows (4s).
	fired := -1
	for s := 0; s < 4; s++ {
		for i := 0; i < 50; i++ {
			tr.Record("acme", at, 32*time.Millisecond, false)
		}
		at = at.Add(time.Second)
		for _, st := range tr.Evaluate(at) {
			if st.Firing && fired < 0 {
				fired = s
			}
		}
	}
	if fired < 0 {
		t.Fatal("burn alert never fired under the latency step")
	}
	if fired >= 4 {
		t.Fatalf("alert fired after %ds, want within two 2s windows", fired+1)
	}

	// Step reverts; the fast window drains and the alert clears.
	cleared := false
	for s := 0; s < 6 && !cleared; s++ {
		for i := 0; i < 50; i++ {
			tr.Record("acme", at, 4*time.Millisecond, false)
		}
		at = at.Add(time.Second)
		for _, st := range tr.Evaluate(at) {
			if !st.Firing {
				cleared = true
			}
			if st.Trips != 1 {
				t.Fatalf("trips = %d, want exactly 1 activation", st.Trips)
			}
		}
	}
	if !cleared {
		t.Fatal("alert did not clear after the step reverted")
	}
}

func TestSLOFailuresCountAsBad(t *testing.T) {
	tr := benchSLO()
	at := time.Unix(1_700_000_100, 0)
	for i := 0; i < 10; i++ {
		tr.Record("t", at, time.Millisecond, i%2 == 0) // half fail fast
	}
	st := tr.Evaluate(at.Add(time.Second))
	if len(st) != 1 || st[0].FastBad != 5 {
		t.Fatalf("failed requests not counted bad: %+v", st)
	}
}

func TestSLOQuietTenantDoesNotBurn(t *testing.T) {
	tr := benchSLO()
	at := time.Unix(1_700_000_200, 0)
	tr.Record("quiet", at, time.Millisecond, false)
	// Evaluate far in the future: all buckets out of window, burn 0.
	st := tr.Evaluate(at.Add(time.Minute))
	if len(st) != 1 || st[0].FastBurn != 0 || st[0].SlowBurn != 0 || st[0].Firing {
		t.Fatalf("stale traffic still burning: %+v", st)
	}
}

func TestSLONilTracker(t *testing.T) {
	var tr *SLOTracker
	tr.Record("x", time.Now(), time.Second, true) // must not panic
	if got := tr.Evaluate(time.Now()); got != nil {
		t.Fatalf("nil tracker evaluated to %+v", got)
	}
}

func TestSLOSlowWindowHoldsAlertContext(t *testing.T) {
	// A single bad second inside an otherwise healthy slow window must
	// NOT fire: the fast window burns but the slow one does not — the
	// two-window AND is exactly what suppresses blips.
	tr := benchSLO()
	base := time.Unix(1_700_000_300, 0)
	at := base
	for s := 0; s < 7; s++ {
		for i := 0; i < 100; i++ {
			tr.Record("acme", at, time.Millisecond, false)
		}
		at = at.Add(time.Second)
	}
	for i := 0; i < 10; i++ {
		tr.Record("acme", at, 50*time.Millisecond, false) // one bad second
	}
	at = at.Add(time.Second)
	for _, st := range tr.Evaluate(at) {
		if st.Firing {
			t.Fatalf("one bad second fired the alert: %+v", st)
		}
	}
}
