package telemetry

import (
	"sort"
	"sync"
	"time"
)

// SLO tracking: rolling-window latency/error objectives per tenant with
// multi-window burn-rate alerting, in the SRE-workbook style. A request
// is "bad" when it failed or exceeded the latency objective. The burn
// rate over a window is the fraction of bad requests divided by the
// error budget — burn 1.0 spends the budget exactly at the sustainable
// rate; burn 2.0 exhausts it in half the window. The alert fires only
// when BOTH the fast and the slow window burn past the threshold: the
// fast window gives detection latency, the slow window keeps one latency
// blip from paging, and requiring both is what makes the alert reset
// quickly once the cause reverts (the fast window drains first).
//
// All methods take explicit timestamps, so the bench harness can drive a
// virtual clock deterministically; live callers pass time.Now().

// SLOConfig sets the objective and the evaluation windows.
type SLOConfig struct {
	Objective     time.Duration // per-request latency objective
	Budget        float64       // tolerated bad fraction (0.001 = 99.9% target)
	FastWindow    time.Duration // detection window
	SlowWindow    time.Duration // sustain window (also the retention horizon)
	BurnThreshold float64       // both windows must burn at or past this to fire
}

// DefaultSLOConfig is a reasonable interactive-service starting point:
// 100ms objective, 99% target, 1m/5m windows, 2x burn threshold.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Objective:     100 * time.Millisecond,
		Budget:        0.01,
		FastWindow:    time.Minute,
		SlowWindow:    5 * time.Minute,
		BurnThreshold: 2,
	}
}

// sloBucket accumulates one second of one tenant's traffic.
type sloBucket struct {
	sec        int64 // unix second this bucket currently holds; 0 = empty
	total, bad int64
}

// sloSeries is one tenant's ring of per-second buckets plus alert state.
type sloSeries struct {
	buckets []sloBucket
	firing  bool
	trips   uint64 // transitions into firing
}

// SLOStatus is one tenant's evaluation result.
type SLOStatus struct {
	Tenant    string  `json:"tenant"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	FastBad   int64   `json:"fast_bad"`
	FastTotal int64   `json:"fast_total"`
	SlowBad   int64   `json:"slow_bad"`
	SlowTotal int64   `json:"slow_total"`
	Firing    bool    `json:"firing"`
	Trips     uint64  `json:"trips"` // lifetime alert activations
}

// SLOTracker evaluates per-tenant SLO burn. Safe for concurrent use.
type SLOTracker struct {
	mu      sync.Mutex
	cfg     SLOConfig
	tenants map[string]*sloSeries
}

// NewSLOTracker builds a tracker; zero config fields take defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	def := DefaultSLOConfig()
	if cfg.Objective <= 0 {
		cfg.Objective = def.Objective
	}
	if cfg.Budget <= 0 {
		cfg.Budget = def.Budget
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = def.FastWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = def.SlowWindow
		if cfg.SlowWindow < cfg.FastWindow {
			cfg.SlowWindow = 5 * cfg.FastWindow
		}
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = def.BurnThreshold
	}
	return &SLOTracker{cfg: cfg, tenants: make(map[string]*sloSeries)}
}

// Config reports the resolved configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// windowSecs returns the two windows in whole seconds, minimum 1.
func (t *SLOTracker) windowSecs() (fast, slow int64) {
	fast = int64(t.cfg.FastWindow / time.Second)
	if fast < 1 {
		fast = 1
	}
	slow = int64(t.cfg.SlowWindow / time.Second)
	if slow < fast {
		slow = fast
	}
	return fast, slow
}

// Record accounts one finished request. Nil-safe: a nil tracker records
// nothing, so callers without SLO tracking skip the branch.
func (t *SLOTracker) Record(tenant string, at time.Time, latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.tenants[tenant]
	if s == nil {
		_, slow := t.windowSecs()
		s = &sloSeries{buckets: make([]sloBucket, slow)}
		t.tenants[tenant] = s
	}
	sec := at.Unix()
	b := &s.buckets[sec%int64(len(s.buckets))]
	if b.sec != sec {
		// The ring lapped: this slot holds a second now outside the slow
		// window. Reuse it for the current second.
		*b = sloBucket{sec: sec}
	}
	b.total++
	if failed || latency > t.cfg.Objective {
		b.bad++
	}
}

// Evaluate computes burn rates for every tenant seen so far, as of the
// given instant, and updates alert state: an alert fires when both
// windows burn at or past the threshold and clears when the fast window
// drops back below it. Results are sorted by tenant. Nil-safe.
func (t *SLOTracker) Evaluate(at time.Time) []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fast, slow := t.windowSecs()
	now := at.Unix()
	out := make([]SLOStatus, 0, len(t.tenants))
	for name, s := range t.tenants {
		st := SLOStatus{Tenant: name}
		for i := range s.buckets {
			b := &s.buckets[i]
			if b.sec == 0 || b.sec > now || now-b.sec >= slow {
				continue
			}
			st.SlowTotal += b.total
			st.SlowBad += b.bad
			if now-b.sec < fast {
				st.FastTotal += b.total
				st.FastBad += b.bad
			}
		}
		st.FastBurn = burnRate(st.FastBad, st.FastTotal, t.cfg.Budget)
		st.SlowBurn = burnRate(st.SlowBad, st.SlowTotal, t.cfg.Budget)
		if !s.firing && st.FastBurn >= t.cfg.BurnThreshold && st.SlowBurn >= t.cfg.BurnThreshold {
			s.firing = true
			s.trips++
		} else if s.firing && st.FastBurn < t.cfg.BurnThreshold {
			s.firing = false
		}
		st.Firing = s.firing
		st.Trips = s.trips
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// burnRate is (bad/total)/budget, 0 when the window saw no traffic.
func burnRate(bad, total int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}
