package telemetry

import (
	"testing"
	"time"

	"gridmdo/internal/metrics"
	"gridmdo/internal/trace"
)

// benchAgentTick measures one ReportOnce over one reporting interval's
// worth of stencil-rate traffic (~1400 messages, 4 lifecycle events
// each), with or without per-step marks in the stream. The marked path
// must stay cheap regardless of how long the agent has been running —
// the step-row cache exists so a tick profiles only the open step, not
// RetainSteps' worth of history.
func benchAgentTick(b *testing.B, marks bool) {
	tr := trace.NewWithCapacity(8, 1<<12)
	coll := NewCollector(CollectorConfig{})
	a, err := NewAgent(AgentConfig{
		Node: 0, Registry: metrics.NewRegistry(), Tracer: tr,
		Epoch: time.Now(), NumPE: 8, Interval: time.Hour,
		Send: func(buf []byte) error { return coll.Ingest(buf) },
	})
	if err != nil {
		b.Fatal(err)
	}
	var id uint64
	step := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// 100 ms of the paper-scale stencil: ~8 steps of ~175 messages.
		for s := 0; s < 8; s++ {
			if marks {
				step++
				tr.Record(trace.Event{PE: 0, Kind: trace.EvNote, Note: "step",
					Arg1: int64(step), At: time.Duration(id)})
			}
			for m := 0; m < 175; m++ {
				id++
				pe := int(id % 8)
				at := time.Duration(id)
				tr.Record(trace.Event{PE: pe, Kind: trace.EvSend, MsgID: id, MsgKind: 1, At: at})
				tr.Record(trace.Event{PE: pe, Kind: trace.EvEnqueue, MsgID: id, At: at + 1})
				tr.Record(trace.Event{PE: pe, Kind: trace.EvBegin, MsgID: id, At: at + 2})
				tr.Record(trace.Event{PE: pe, Kind: trace.EvEnd, MsgID: id, At: at + 3})
			}
		}
		b.StartTimer()
		if err := a.ReportOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentTickSteps(b *testing.B)    { benchAgentTick(b, true) }
func BenchmarkAgentTickMarkless(b *testing.B) { benchAgentTick(b, false) }
