package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"gridmdo/internal/metrics"
)

// HTTP exposition for the cluster view. The collector's endpoints mount
// under /v1/cluster/ (plus the per-job trace endpoint); the embedding
// command wires them into its mux alongside its own routes:
//
//	GET /v1/cluster/metrics  — aggregated snapshot, prom or json
//	GET /v1/cluster/overlap  — per-step masked/exposed across all nodes
//	GET /v1/cluster/health   — per-node report liveness and gap counts
//	GET /v1/cluster/slo      — per-tenant burn-rate evaluation
//	GET /v1/jobs/{id}/trace  — one job's cross-process span tree

// writeJSON mirrors the gate package's helper: indented JSON with an
// explicit status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// MetricsHandler serves the aggregated cluster snapshot in the standard
// negotiated formats (Prometheus text or JSON).
func (c *Collector) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		metrics.ServeSnapshot(w, req, c.ClusterMetrics())
	})
}

// OverlapHandler serves the live per-step overlap rows.
func (c *Collector) OverlapHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"steps": c.ClusterOverlap()})
	})
}

// HealthHandler serves the per-node report-liveness view. stale_after_ms
// bounds how old a node's last report may be before the view flags it.
func (c *Collector) HealthHandler(staleAfter time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		nodes := c.Nodes()
		stale := 0
		for _, n := range nodes {
			if n.AgeMs > staleAfter.Milliseconds() {
				stale++
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"nodes":          nodes,
			"stale":          stale,
			"stale_after_ms": staleAfter.Milliseconds(),
			"bad_wire":       c.BadWire(),
		})
	})
}

// SLOHandler evaluates every tenant's burn rates as of now.
func (c *Collector) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		t := c.SLO()
		if t == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "slo tracking disabled"})
			return
		}
		cfg := t.Config()
		writeJSON(w, http.StatusOK, map[string]any{
			"objective_ms":   cfg.Objective.Milliseconds(),
			"budget":         cfg.Budget,
			"fast_window_ms": cfg.FastWindow.Milliseconds(),
			"slow_window_ms": cfg.SlowWindow.Milliseconds(),
			"burn_threshold": cfg.BurnThreshold,
			"tenants":        t.Evaluate(time.Now()),
		})
	})
}

// JobTraceHandler serves GET /v1/jobs/{id}/trace. It extracts the job ID
// from the penultimate path segment, so it can be mounted on the literal
// pattern "/v1/jobs/" alongside the gateway's own job routes (the
// gateway's handler owns the non-/trace paths).
func (c *Collector) JobTraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		parts := strings.Split(strings.Trim(req.URL.Path, "/"), "/")
		// .../v1/jobs/{id}/trace
		if len(parts) < 2 || parts[len(parts)-1] != "trace" {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "not found"})
			return
		}
		id := parts[len(parts)-2]
		doc, ok := c.JobTrace(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job (not admitted here, or trace aged out)"})
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
}

// MountPprof attaches net/http/pprof's handlers onto mux. The default
// registration rides http.DefaultServeMux, which the commands here never
// serve — they each build their own mux — so the profile routes have to
// be mounted explicitly, and only when the operator asked (-pprof).
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Mount attaches the cluster endpoints onto mux. staleAfter parameterizes
// the health view; pass roughly 3x the agents' reporting interval.
func (c *Collector) Mount(mux *http.ServeMux, staleAfter time.Duration) {
	mux.Handle("GET /v1/cluster/metrics", c.MetricsHandler())
	mux.Handle("GET /v1/cluster/overlap", c.OverlapHandler())
	mux.Handle("GET /v1/cluster/health", c.HealthHandler(staleAfter))
	mux.Handle("GET /v1/cluster/slo", c.SLOHandler())
}
