package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health tracks a process's readiness as a set of named conditions plus
// registered checks, serving the conventional probe pair: /healthz
// answers "is the process alive" (always 200 — reaching the handler is
// the proof), /readyz answers "should traffic be routed here" (503 with
// the failing conditions while any is set). A draining node flips
// readiness long before the process exits, which is what lets an
// orchestrator or load balancer stop routing before SIGTERM completes.
type Health struct {
	mu     sync.Mutex
	conds  map[string]string       // condition name -> problem ("" cleared)
	checks map[string]func() error // evaluated on every probe
}

// NewHealth builds an empty (ready) health tracker.
func NewHealth() *Health {
	return &Health{conds: make(map[string]string), checks: make(map[string]func() error)}
}

// Set raises or clears a named condition: a non-empty problem marks the
// process unready with that reason; "" clears it. Nil-safe.
func (h *Health) Set(name, problem string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if problem == "" {
		delete(h.conds, name)
		return
	}
	h.conds[name] = problem
}

// AddCheck registers a probe-time check: a non-nil error marks the
// process unready with that reason. Checks must be cheap and must not
// block — they run on every /readyz hit.
func (h *Health) AddCheck(name string, fn func() error) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = fn
}

// Problems returns every failing condition as name: problem, sorted.
func (h *Health) Problems() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	conds := make(map[string]string, len(h.conds))
	for k, v := range h.conds {
		conds[k] = v
	}
	checks := make(map[string]func() error, len(h.checks))
	for k, v := range h.checks {
		checks[k] = v
	}
	h.mu.Unlock()
	// Checks run outside the lock so a slow check cannot wedge Set.
	for name, fn := range checks {
		if err := fn(); err != nil {
			conds[name] = err.Error()
		}
	}
	out := make([]string, 0, len(conds))
	for name, problem := range conds {
		out = append(out, name+": "+problem)
	}
	sort.Strings(out)
	return out
}

// Healthz is the liveness handler: always 200.
func (h *Health) Healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// Readyz is the readiness handler: 200 when no condition fails, 503
// listing the failures otherwise.
func (h *Health) Readyz(w http.ResponseWriter, _ *http.Request) {
	problems := h.Problems()
	w.Header().Set("Content-Type", "application/json")
	if len(problems) == 0 {
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": true})
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "problems": problems})
}
