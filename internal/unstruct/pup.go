package unstruct

import (
	"gridmdo/internal/core"
)

// PUP implements core.Migratable. The step counter and the vertex-value
// map (owned plus halo) travel as sorted (key, value) columns so packing
// is deterministic and pack→unpack→pack is byte-identical; mesh,
// partition, and gate wiring rebuild from Params on the destination.
func (c *chunk) PUP(p *core.PUP) {
	if !p.Unpacking() && c.gate.PendingFuture() > 0 {
		p.Errorf("unstruct: pack chunk %d with %d buffered future halos", c.id, c.gate.PendingFuture())
		return
	}
	step := c.gate.Step()
	p.Int(&step)
	var keys []int32
	var vals []float64
	if !p.Unpacking() {
		keys = make([]int32, 0, len(c.val))
		for v := range c.val {
			keys = append(keys, v)
		}
		sortInt32s(keys)
		vals = make([]float64, len(keys))
		for i, v := range keys {
			vals[i] = c.val[v]
		}
	}
	p.Int32s(&keys)
	p.Float64s(&vals)
	if p.Unpacking() {
		if len(keys) != len(vals) {
			p.Errorf("unstruct: restore chunk %d: %d keys but %d values", c.id, len(keys), len(vals))
			return
		}
		if len(keys) != len(c.val) {
			p.Errorf("unstruct: restore chunk %d: %d vertex values, partition wants %d", c.id, len(keys), len(c.val))
			return
		}
		for i, v := range keys {
			if _, ok := c.val[v]; !ok {
				p.Errorf("unstruct: restore chunk %d: vertex %d is not owned or haloed here", c.id, v)
				return
			}
			c.val[v] = vals[i]
		}
		c.gate.JumpTo(step)
		c.done = step >= c.p.Steps
	}
}

var _ core.Migratable = (*chunk)(nil)
