// Package unstruct implements iterative relaxation over an *irregular*
// mesh, demonstrating the paper's generality claim: "because the
// technique is encapsulated within the runtime layer, it can be applied
// to a wide variety of problem decomposition strategies, such as regular
// and irregular mesh decomposition ... without requiring modification of
// application software."
//
// The mesh is a deterministic random geometric graph: seeded points in
// the unit square, each connected to its k nearest neighbors
// (symmetrized). The graph is partitioned geometrically into chunks of
// contiguous vertical strips; chunks exchange halo values with every
// chunk they share an edge with — an irregular communication graph with
// varying neighbor counts and halo sizes, unlike the stencil's fixed
// four-neighbor pattern. The relaxation itself is Jacobi: each vertex
// moves toward the mean of its neighbors.
package unstruct

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mesh is the immutable irregular graph shared by all chunks.
type Mesh struct {
	X, Y []float64 // vertex positions
	Adj  [][]int32 // sorted adjacency lists
}

// NewMesh builds a deterministic random geometric mesh with n vertices,
// each linked to its k nearest neighbors (symmetrized).
func NewMesh(n, k int, seed int64) (*Mesh, error) {
	if n < 2 || k < 1 || k >= n {
		return nil, fmt.Errorf("unstruct: bad mesh n=%d k=%d", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Mesh{X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.X[i] = rng.Float64()
		m.Y[i] = rng.Float64()
	}

	// k-nearest neighbors via a uniform bucket grid: candidates come from
	// expanding rings of buckets around each point, so construction is
	// near-linear in n instead of quadratic.
	side := int(math.Sqrt(float64(n) / float64(k+1)))
	if side < 1 {
		side = 1
	}
	bucketOf := func(x, y float64) (int, int) {
		bx := int(x * float64(side))
		by := int(y * float64(side))
		if bx >= side {
			bx = side - 1
		}
		if by >= side {
			by = side - 1
		}
		return bx, by
	}
	buckets := make([][]int32, side*side)
	for i := 0; i < n; i++ {
		bx, by := bucketOf(m.X[i], m.Y[i])
		buckets[by*side+bx] = append(buckets[by*side+bx], int32(i))
	}

	type distIdx struct {
		d float64
		i int32
	}
	nbrs := make([]map[int32]bool, n)
	for i := range nbrs {
		nbrs[i] = make(map[int32]bool, 2*k)
	}
	var cand []distIdx
	for i := 0; i < n; i++ {
		bx, by := bucketOf(m.X[i], m.Y[i])
		cand = cand[:0]
		// Expand rings of buckets until the k-th best candidate provably
		// (up to one bucket width — good enough for generating a
		// deterministic irregular graph) beats anything outside the
		// searched radius.
		for r := 0; r < side; r++ {
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if absInt(dx) != r && absInt(dy) != r {
						continue // interior already visited
					}
					gx, gy := bx+dx, by+dy
					if gx < 0 || gx >= side || gy < 0 || gy >= side {
						continue
					}
					for _, j := range buckets[gy*side+gx] {
						if int(j) == i {
							continue
						}
						ddx, ddy := m.X[i]-m.X[j], m.Y[i]-m.Y[j]
						cand = append(cand, distIdx{d: ddx*ddx + ddy*ddy, i: j})
					}
				}
			}
			if len(cand) >= k {
				sort.Slice(cand, func(a, b int) bool {
					if cand[a].d != cand[b].d {
						return cand[a].d < cand[b].d
					}
					return cand[a].i < cand[b].i
				})
				safe := float64(r) / float64(side)
				if cand[k-1].d <= safe*safe {
					break
				}
			}
		}
		if len(cand) < k {
			return nil, fmt.Errorf("unstruct: could not find %d neighbors for vertex %d", k, i)
		}
		sort.Slice(cand, func(a, b int) bool {
			if cand[a].d != cand[b].d {
				return cand[a].d < cand[b].d
			}
			return cand[a].i < cand[b].i
		})
		for _, c := range cand[:k] {
			nbrs[i][c.i] = true
			nbrs[c.i][int32(i)] = true // symmetrize
		}
	}
	m.Adj = make([][]int32, n)
	for i, set := range nbrs {
		for j := range set {
			m.Adj[i] = append(m.Adj[i], j)
		}
		sort.Slice(m.Adj[i], func(a, b int) bool { return m.Adj[i][a] < m.Adj[i][b] })
	}
	return m, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NumVertices reports the vertex count.
func (m *Mesh) NumVertices() int { return len(m.X) }

// InitValue is the deterministic initial vertex value.
func (m *Mesh) InitValue(i int) float64 {
	return math.Sin(7*m.X[i]) + math.Cos(11*m.Y[i])
}

// Partition assigns vertices to nchunks chunks by x-coordinate strips of
// equal population — a simple geometric partitioner. The resulting
// chunk-to-chunk communication graph is irregular: strip widths, edge
// cuts, and neighbor counts all vary.
type Partition struct {
	ChunkOf []int32   // vertex -> chunk
	Verts   [][]int32 // chunk -> owned vertices (sorted)

	// Halo communication structure, per chunk:
	// SendTo[c] maps a destination chunk to the (sorted) list of c's own
	// vertices whose values that destination needs.
	SendTo []map[int32][]int32
	// NeedFrom[c] maps a source chunk to the vertices c reads from it.
	NeedFrom []map[int32][]int32
}

// NewPartition splits the mesh into nchunks strips.
func NewPartition(m *Mesh, nchunks int) (*Partition, error) {
	n := m.NumVertices()
	if nchunks < 1 || nchunks > n {
		return nil, fmt.Errorf("unstruct: %d chunks for %d vertices", nchunks, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if m.X[order[a]] != m.X[order[b]] {
			return m.X[order[a]] < m.X[order[b]]
		}
		return order[a] < order[b]
	})
	p := &Partition{
		ChunkOf:  make([]int32, n),
		Verts:    make([][]int32, nchunks),
		SendTo:   make([]map[int32][]int32, nchunks),
		NeedFrom: make([]map[int32][]int32, nchunks),
	}
	for c := 0; c < nchunks; c++ {
		lo := c * n / nchunks
		hi := (c + 1) * n / nchunks
		for _, v := range order[lo:hi] {
			p.ChunkOf[v] = int32(c)
			p.Verts[c] = append(p.Verts[c], int32(v))
		}
		sort.Slice(p.Verts[c], func(a, b int) bool { return p.Verts[c][a] < p.Verts[c][b] })
		p.SendTo[c] = make(map[int32][]int32)
		p.NeedFrom[c] = make(map[int32][]int32)
	}
	// Halo structure from cut edges.
	for v := 0; v < n; v++ {
		cv := p.ChunkOf[v]
		for _, u := range m.Adj[v] {
			cu := p.ChunkOf[u]
			if cu == cv {
				continue
			}
			// v (owned by cv) is read by chunk cu.
			appendUnique(&p.SendTo[cv], cu, int32(v))
			appendUnique(&p.NeedFrom[cu], cv, int32(v))
		}
	}
	return p, nil
}

func appendUnique(m *map[int32][]int32, key int32, v int32) {
	list := (*m)[key]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i < len(list) && list[i] == v {
		return
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	(*m)[key] = list
}

// Neighbors reports the chunks chunk c exchanges halos with (sorted).
func (p *Partition) Neighbors(c int) []int32 {
	seen := make(map[int32]bool)
	for d := range p.SendTo[c] {
		seen[d] = true
	}
	for d := range p.NeedFrom[c] {
		seen[d] = true
	}
	out := make([]int32, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
