package unstruct

import (
	"fmt"
	"time"

	"gridmdo/internal/core"
)

// Entry methods of the chunk array.
const (
	EntryKick core.EntryID = 0
	EntryHalo core.EntryID = 1
)

// relaxOmega is the Jacobi damping factor.
const relaxOmega = 0.5

// Params configures an irregular-relaxation run.
type Params struct {
	Vertices int   // mesh size
	Degree   int   // k-nearest connectivity
	Seed     int64 // mesh seed
	Chunks   int   // decomposition degree (objects)
	Steps    int
	Warmup   int
	Model    *CostModel
	Collect  func(chunk int, verts []int32, vals []float64)
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.Vertices < 2 || p.Degree < 1 {
		return fmt.Errorf("unstruct: bad mesh params v=%d k=%d", p.Vertices, p.Degree)
	}
	if p.Chunks < 1 || p.Chunks > p.Vertices {
		return fmt.Errorf("unstruct: %d chunks", p.Chunks)
	}
	if p.Steps <= 0 || p.Warmup < 0 || p.Warmup >= p.Steps {
		return fmt.Errorf("unstruct: bad steps=%d warmup=%d", p.Steps, p.Warmup)
	}
	return nil
}

// CostModel charges modeled time per relaxation sweep of a chunk.
type CostModel struct {
	PerEdgeNS   float64
	PerVertexNS float64
}

// DefaultModel uses era-plausible per-edge costs.
func DefaultModel() *CostModel {
	return &CostModel{PerEdgeNS: 12, PerVertexNS: 20}
}

// SweepCost models one relaxation of a chunk with v vertices and e edge
// traversals.
func (m *CostModel) SweepCost(v, e int) time.Duration {
	return time.Duration(float64(v)*m.PerVertexNS+float64(e)*m.PerEdgeNS) * time.Nanosecond
}

// haloMsg carries the boundary values one chunk owes another for a step.
// The vertex identities are implied by the partition's shared, sorted cut
// list for the (sender, receiver) pair.
type haloMsg struct {
	From int32
	Step int
	Vals []float64
}

// PayloadBytes implements core.Sizer.
func (h haloMsg) PayloadBytes() int { return 16 + 8*len(h.Vals) }

// Result is the run outcome.
type Result struct {
	Checksum float64
	PerStep  time.Duration
	Total    time.Duration
	Steps    int
	Chunks   int
	CutEdges int
	WarmupAt time.Duration
	FinishAt time.Duration
}

// chunk is one irregular-mesh chare.
type chunk struct {
	p    *Params
	m    *Mesh
	part *Partition
	id   int

	val   map[int32]float64 // owned + halo vertex values (previous step)
	next  map[int32]float64 // owned values being computed
	edges int               // edge traversals per sweep (for the cost model)
	gate  *core.StepGate
	done  bool
}

func newChunk(p *Params, m *Mesh, part *Partition, id int) *chunk {
	c := &chunk{
		p: p, m: m, part: part, id: id,
		val:  make(map[int32]float64),
		next: make(map[int32]float64),
		gate: core.NewStepGate(len(part.NeedFrom[id])),
	}
	for _, v := range part.Verts[id] {
		c.val[v] = m.InitValue(int(v))
		c.edges += len(m.Adj[v])
	}
	for _, list := range part.NeedFrom[id] {
		for _, v := range list {
			c.val[v] = m.InitValue(int(v))
		}
	}
	return c
}

func (c *chunk) sendHalos(ctx *core.Ctx) {
	// Sorted destination order keeps the virtual-time executor
	// deterministic (map iteration order is not).
	dsts := make([]int32, 0, len(c.part.SendTo[c.id]))
	for dst := range c.part.SendTo[c.id] {
		dsts = append(dsts, dst)
	}
	sortInt32s(dsts)
	for _, dst := range dsts {
		verts := c.part.SendTo[c.id][dst]
		vals := make([]float64, len(verts))
		for i, v := range verts {
			vals[i] = c.val[v]
		}
		ctx.Send(core.ElemRef{Array: 0, Index: int(dst)}, EntryHalo,
			haloMsg{From: int32(c.id), Step: c.gate.Step(), Vals: vals})
	}
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (c *chunk) applyHalo(h haloMsg) {
	verts := c.part.NeedFrom[c.id][h.From]
	for i, v := range verts {
		c.val[v] = h.Vals[i]
	}
}

func (c *chunk) relax(ctx *core.Ctx) {
	for _, v := range c.part.Verts[c.id] {
		adj := c.m.Adj[v]
		var sum float64
		for _, u := range adj {
			sum += c.val[u]
		}
		mean := sum / float64(len(adj))
		c.next[v] = (1-relaxOmega)*c.val[v] + relaxOmega*mean
	}
	for v, x := range c.next {
		c.val[v] = x
	}
	if c.p.Model != nil {
		ctx.Charge(c.p.Model.SweepCost(len(c.part.Verts[c.id]), c.edges))
	}
}

func (c *chunk) checksum() float64 {
	var s float64
	for _, v := range c.part.Verts[c.id] {
		s += c.val[v]
	}
	return s
}

// Recv implements core.Chare.
func (c *chunk) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case EntryKick:
		c.sendHalos(ctx)
		c.tryAdvance(ctx)
	case EntryHalo:
		h := data.(haloMsg)
		if c.done {
			return
		}
		if _, ok := c.gate.Deliver(h.Step, h); ok {
			c.applyHalo(h)
			c.tryAdvance(ctx)
		}
	default:
		panic(fmt.Sprintf("unstruct: unknown entry %d", entry))
	}
}

func (c *chunk) tryAdvance(ctx *core.Ctx) {
	for c.gate.Ready() && !c.done {
		c.relax(ctx)
		pend := c.gate.Advance()
		step := c.gate.Step()
		if step == c.p.Warmup && c.p.Warmup > 0 {
			ctx.Contribute(0.0, core.OpSum)
		}
		if step == c.p.Steps {
			c.done = true
			if c.p.Collect != nil {
				verts := c.part.Verts[c.id]
				vals := make([]float64, len(verts))
				for i, v := range verts {
					vals[i] = c.val[v]
				}
				c.p.Collect(c.id, verts, vals)
			}
			ctx.Contribute(c.checksum(), core.OpSum)
			return
		}
		c.sendHalos(ctx)
		for _, m := range pend {
			c.applyHalo(m.(haloMsg))
		}
	}
}

// BuildProgram assembles the irregular relaxation as a core.Program. The
// program exits with a *Result.
func BuildProgram(p *Params) (*core.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := NewMesh(p.Vertices, p.Degree, p.Seed)
	if err != nil {
		return nil, err
	}
	part, err := NewPartition(m, p.Chunks)
	if err != nil {
		return nil, err
	}
	cut := 0
	for c := 0; c < p.Chunks; c++ {
		for _, vs := range part.SendTo[c] {
			cut += len(vs)
		}
	}
	res := &Result{Steps: p.Steps, Chunks: p.Chunks, CutEdges: cut}
	var startAt time.Duration
	finalRound := int64(1)
	if p.Warmup > 0 {
		finalRound = 2
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: p.Chunks,
			New: func(i int) core.Chare { return newChunk(p, m, part, i) },
		}},
		Start: func(ctx *core.Ctx) {
			startAt = ctx.Time()
			for i := 0; i < p.Chunks; i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, EntryKick, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			switch seq {
			case finalRound:
				res.Checksum = v.(float64)
				res.FinishAt = ctx.Time()
				res.Total = res.FinishAt - startAt
				if p.Warmup > 0 {
					res.PerStep = (res.FinishAt - res.WarmupAt) / time.Duration(p.Steps-p.Warmup)
				} else {
					res.PerStep = res.Total / time.Duration(p.Steps)
				}
				ctx.ExitWith(res)
			default:
				res.WarmupAt = ctx.Time()
			}
		},
	}
	return prog, nil
}

// RunSequential computes the reference solution serially.
func RunSequential(p *Params) ([]float64, error) {
	m, err := NewMesh(p.Vertices, p.Degree, p.Seed)
	if err != nil {
		return nil, err
	}
	cur := make([]float64, m.NumVertices())
	next := make([]float64, m.NumVertices())
	for i := range cur {
		cur[i] = m.InitValue(i)
	}
	for s := 0; s < p.Steps; s++ {
		for v := range cur {
			adj := m.Adj[v]
			var sum float64
			for _, u := range adj {
				sum += cur[u]
			}
			mean := sum / float64(len(adj))
			next[v] = (1-relaxOmega)*cur[v] + relaxOmega*mean
		}
		cur, next = next, cur
	}
	return cur, nil
}

func init() {
	core.RegisterPayload(haloMsg{})
}
