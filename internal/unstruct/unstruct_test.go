package unstruct

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func TestMeshConstruction(t *testing.T) {
	m, err := NewMesh(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() != 100 {
		t.Fatalf("vertices = %d", m.NumVertices())
	}
	for v, adj := range m.Adj {
		if len(adj) < 4 {
			t.Fatalf("vertex %d has degree %d < k", v, len(adj))
		}
		for i, u := range adj {
			if int(u) == v {
				t.Fatalf("self-loop at %d", v)
			}
			if i > 0 && adj[i-1] >= u {
				t.Fatalf("adjacency of %d not sorted/unique", v)
			}
			// Symmetry.
			found := false
			for _, w := range m.Adj[u] {
				if int(w) == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", v, u)
			}
		}
	}
	if _, err := NewMesh(1, 1, 0); err == nil {
		t.Error("degenerate mesh accepted")
	}
	if _, err := NewMesh(10, 10, 0); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestMeshDeterministic(t *testing.T) {
	a, err := NewMesh(60, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMesh(60, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Adj {
		if a.X[v] != b.X[v] || len(a.Adj[v]) != len(b.Adj[v]) {
			t.Fatal("mesh not deterministic")
		}
	}
}

// Property: every partition is an exact cover, and halo lists agree
// between sender and receiver.
func TestPartitionInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		n := 40 + int(uint64(seed)%60)
		m, err := NewMesh(n, 3, seed)
		if err != nil {
			return false
		}
		chunks := 2 + int(uint64(seed)%6)
		p, err := NewPartition(m, chunks)
		if err != nil {
			return false
		}
		owned := 0
		for c := 0; c < chunks; c++ {
			owned += len(p.Verts[c])
			for _, v := range p.Verts[c] {
				if p.ChunkOf[v] != int32(c) {
					return false
				}
			}
			// Sender and receiver views of each cut must be identical.
			for dst, list := range p.SendTo[c] {
				peer := p.NeedFrom[dst][int32(c)]
				if len(peer) != len(list) {
					return false
				}
				for i := range list {
					if list[i] != peer[i] {
						return false
					}
				}
			}
		}
		return owned == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func runUnstructSim(t *testing.T, p *Params, procs int, lat time.Duration) *Result {
	t.Helper()
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v.(*Result)
}

func TestMatchesSequentialBitwise(t *testing.T) {
	p := &Params{Vertices: 300, Degree: 4, Seed: 3, Chunks: 12, Steps: 9}
	got := make([]float64, p.Vertices)
	var mu sync.Mutex
	p.Collect = func(chunk int, verts []int32, vals []float64) {
		mu.Lock()
		defer mu.Unlock()
		for i, v := range verts {
			got[v] = vals[i]
		}
	}
	res := runUnstructSim(t, p, 4, 3*time.Millisecond)
	want, err := RunSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d = %v, want %v (bitwise)", v, got[v], want[v])
		}
	}
	var sum float64
	for _, x := range want {
		sum += x
	}
	if rel := math.Abs(res.Checksum-sum) / math.Abs(sum); rel > 1e-12 {
		t.Errorf("checksum rel err %v", rel)
	}
	if res.CutEdges == 0 {
		t.Error("partition produced no cut edges")
	}
}

// TestIrregularLatencyMasking extends the paper's generality claim: the
// same runtime masks latency under an irregular decomposition too.
func TestIrregularLatencyMasking(t *testing.T) {
	mk := func(chunks int, lat time.Duration) time.Duration {
		p := &Params{
			Vertices: 2000, Degree: 5, Seed: 11,
			Chunks: chunks, Steps: 20, Warmup: 6,
			Model: DefaultModel(),
		}
		return runUnstructSim(t, p, 4, lat).PerStep
	}
	// More chunks per PE extends the flat region, as with the stencil.
	const lat = 500 * time.Microsecond
	low := mk(4, lat)   // one chunk per PE: no overlap material
	high := mk(32, lat) // eight chunks per PE
	if high >= low {
		t.Errorf("virtualization did not help the irregular mesh: %v vs %v", high, low)
	}
	// And per-step time is monotone in latency.
	if a, b := mk(32, 0), mk(32, 8*time.Millisecond); b < a {
		t.Errorf("per-step decreased with latency: %v -> %v", a, b)
	}
}

func TestRealtimeIrregular(t *testing.T) {
	p := &Params{Vertices: 200, Degree: 3, Seed: 5, Chunks: 8, Steps: 6}
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*Result)
	want, err := RunSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range want {
		sum += x
	}
	if rel := math.Abs(res.Checksum-sum) / math.Abs(sum); rel > 1e-12 {
		t.Errorf("realtime checksum rel err %v", rel)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []*Params{
		{Vertices: 1, Degree: 1, Chunks: 1, Steps: 1},
		{Vertices: 10, Degree: 0, Chunks: 1, Steps: 1},
		{Vertices: 10, Degree: 2, Chunks: 0, Steps: 1},
		{Vertices: 10, Degree: 2, Chunks: 11, Steps: 1},
		{Vertices: 10, Degree: 2, Chunks: 2, Steps: 0},
		{Vertices: 10, Degree: 2, Chunks: 2, Steps: 2, Warmup: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestSweepCost(t *testing.T) {
	m := DefaultModel()
	if m.SweepCost(10, 40) <= 0 {
		t.Error("non-positive sweep cost")
	}
	if m.SweepCost(10, 40) <= m.SweepCost(10, 4) {
		t.Error("cost not increasing in edges")
	}
}
