package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTwoClustersLayout(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		topo, err := TwoClusters(p, 4*time.Millisecond)
		if err != nil {
			t.Fatalf("TwoClusters(%d): %v", p, err)
		}
		if topo.NumPE() != p {
			t.Fatalf("NumPE = %d, want %d", topo.NumPE(), p)
		}
		if topo.NumClusters() != 2 {
			t.Fatalf("NumClusters = %d, want 2", topo.NumClusters())
		}
		if got := len(topo.PEs(0)); got != p/2 {
			t.Fatalf("cluster 0 size = %d, want %d", got, p/2)
		}
		if got := len(topo.PEs(1)); got != p/2 {
			t.Fatalf("cluster 1 size = %d, want %d", got, p/2)
		}
		// PEs are numbered contiguously per cluster.
		for i := 0; i < p/2; i++ {
			if topo.Cluster(i) != 0 {
				t.Fatalf("PE %d in cluster %d, want 0", i, topo.Cluster(i))
			}
			if topo.Cluster(p/2+i) != 1 {
				t.Fatalf("PE %d in cluster %d, want 1", p/2+i, topo.Cluster(p/2+i))
			}
		}
	}
}

func TestTwoClustersRejectsOddAndNonPositive(t *testing.T) {
	for _, p := range []int{-2, 0, 1, 3, 7} {
		if _, err := TwoClusters(p, 0); err == nil {
			t.Errorf("TwoClusters(%d) accepted, want error", p)
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) accepted, want error")
	}
	if _, err := New([]int{4, 0}); err == nil {
		t.Error("New with zero-size cluster accepted, want error")
	}
}

func TestLatencyClasses(t *testing.T) {
	wan := 10 * time.Millisecond
	topo, err := TwoClusters(8, wan)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Latency(0, 1); got != 0 {
		t.Errorf("intra latency = %v, want 0", got)
	}
	if got := topo.Latency(0, 4); got != wan {
		t.Errorf("inter latency = %v, want %v", got, wan)
	}
	if !topo.CrossesWAN(3, 4) {
		t.Error("CrossesWAN(3,4) = false, want true")
	}
	if topo.CrossesWAN(4, 7) {
		t.Error("CrossesWAN(4,7) = true, want false")
	}
	if topo.InterLatency() != wan {
		t.Errorf("InterLatency = %v, want %v", topo.InterLatency(), wan)
	}
}

func TestPairOverride(t *testing.T) {
	topo, err := TwoClusters(4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	topo.SetPairLatency(0, 3, 50*time.Millisecond)
	if got := topo.Latency(0, 3); got != 50*time.Millisecond {
		t.Errorf("override latency = %v, want 50ms", got)
	}
	if got := topo.Latency(3, 0); got != 50*time.Millisecond {
		t.Errorf("override is not symmetric: %v", got)
	}
	// Other pairs keep the class default.
	if got := topo.Latency(0, 2); got != 2*time.Millisecond {
		t.Errorf("non-overridden pair latency = %v, want 2ms", got)
	}
}

func TestSelfLinkIsCheap(t *testing.T) {
	topo, err := TwoClusters(4, 8*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l := topo.LinkBetween(2, 2)
	if l.Latency != 0 {
		t.Errorf("self link latency = %v, want 0", l.Latency)
	}
	if l.Delay(1<<20) > 10*time.Microsecond {
		t.Errorf("self link delay for 1MiB = %v, want tiny", l.Delay(1<<20))
	}
}

func TestLinkDelay(t *testing.T) {
	l := Link{Latency: time.Millisecond, Overhead: 10 * time.Microsecond, Bandwidth: 1e6}
	// 1000 bytes at 1 MB/s = 1 ms serialization.
	got := l.Delay(1000)
	want := time.Millisecond + 10*time.Microsecond + time.Millisecond
	if got != want {
		t.Errorf("Delay(1000) = %v, want %v", got, want)
	}
	// Infinite bandwidth ignores size.
	l.Bandwidth = 0
	if got := l.Delay(1 << 30); got != time.Millisecond+10*time.Microsecond {
		t.Errorf("Delay with infinite bandwidth = %v", got)
	}
}

// Property: latency is symmetric in cluster class for every pair, and
// every PE belongs to exactly one cluster whose member list contains it.
func TestTopologyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(8)
		}
		topo, err := New(sizes, WithInterLatency(time.Duration(rng.Intn(100))*time.Millisecond))
		if err != nil {
			return false
		}
		for a := 0; a < topo.NumPE(); a++ {
			found := false
			for _, pe := range topo.PEs(topo.Cluster(a)) {
				if pe == a {
					found = true
				}
			}
			if !found {
				return false
			}
			for b := 0; b < topo.NumPE(); b++ {
				if topo.Latency(a, b) != topo.Latency(b, a) {
					return false
				}
				if topo.SameCluster(a, b) == topo.CrossesWAN(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinkOptions(t *testing.T) {
	intra := Link{Latency: time.Microsecond, Overhead: time.Microsecond, Bandwidth: 1e9}
	inter := Link{Latency: 7 * time.Millisecond, Overhead: 50 * time.Microsecond, Bandwidth: 1e7}
	topo, err := TwoClusters(4, 0, WithIntraLink(intra), WithInterLink(inter))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.LinkBetween(0, 1); got != intra {
		t.Errorf("intra link = %+v", got)
	}
	if got := topo.LinkBetween(0, 2); got != inter {
		t.Errorf("inter link = %+v", got)
	}
}

func TestSpeedFactors(t *testing.T) {
	topo, err := TwoClusters(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetPESpeed(2, 0.5); err != nil {
		t.Fatal(err)
	}
	if topo.PESpeed(2) != 0.5 || topo.PESpeed(0) != 1 {
		t.Errorf("speeds: %v %v", topo.PESpeed(2), topo.PESpeed(0))
	}
	if err := topo.SetClusterSpeed(0, 2); err != nil {
		t.Fatal(err)
	}
	if topo.PESpeed(0) != 2 || topo.PESpeed(1) != 2 {
		t.Error("cluster speed not applied")
	}
	if err := topo.SetPESpeed(-1, 1); err == nil {
		t.Error("negative PE accepted")
	}
	if err := topo.SetPESpeed(0, 0); err == nil {
		t.Error("zero speed accepted")
	}
	if err := topo.SetClusterSpeed(5, 1); err == nil {
		t.Error("unknown cluster accepted")
	}
}

func TestStringForms(t *testing.T) {
	one, _ := Single(4)
	if one.String() == "" {
		t.Error("empty String for single cluster")
	}
	two, _ := TwoClusters(4, time.Millisecond)
	if two.String() == "" {
		t.Error("empty String for two clusters")
	}
}
