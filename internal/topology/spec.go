package topology

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Spec is a declarative description of a synthetic grid machine, beyond
// the paper's fixed two-cluster pair: N clusters in groups of identical
// shape, per-cluster relative speeds, an optional heterogeneous
// cluster-pair latency mesh, and an optional hierarchical WAN (clusters
// grouped into sites, with extra latency between sites). It round-trips
// through a compact string form (see ParseSpec) so topologies can be
// passed on the gridsim command line and recorded in benchmark artifacts.
//
// The grammar is
//
//	spec   := group ("," group)* (";" option)*
//	group  := [COUNT "x"] PES ["@" SPEED]
//	option := "wan=" DUR | "intra=" DUR
//	        | "mesh=rand:" SEED ":" DURMIN ":" DURMAX
//	        | "site=" SIZE ":" DUR
//
// e.g. "8x128,4x64@0.5;wan=5ms;mesh=rand:7:2ms:20ms;site=4:30ms" is
// twelve clusters — eight of 128 full-speed PEs and four of 64 half-speed
// PEs — whose pairwise one-way latencies are drawn deterministically from
// [2ms, 20ms) (seed 7), plus 30ms between clusters in different groups of
// four.
type Spec struct {
	Groups []GroupSpec

	// WAN is the base inter-cluster one-way latency (the knob the paper
	// sweeps); Intra, when positive, adds wire latency inside clusters.
	WAN   time.Duration
	Intra time.Duration

	// Mesh, when non-nil, replaces the uniform WAN latency with a
	// deterministic per-cluster-pair draw from [Min, Max).
	Mesh *MeshSpec

	// SiteSize, when positive, groups consecutive clusters into sites of
	// that many clusters; pairs in different sites pay SiteExtra on top of
	// their base latency (hierarchical WAN: campus vs cross-country).
	SiteSize  int
	SiteExtra time.Duration
}

// GroupSpec describes Count identical clusters of PEs processors each,
// running at Speed relative to the reference machine.
type GroupSpec struct {
	Count int
	PEs   int
	Speed float64
}

// MeshSpec seeds the heterogeneous latency mesh.
type MeshSpec struct {
	Seed     uint64
	Min, Max time.Duration
}

const (
	// maxMeshClusters bounds the cluster-pair override table a mesh or
	// site layout may allocate (entries grow as clusters²).
	maxMeshClusters = 1024

	// maxSpecPEs bounds the machines a spec may describe, so a malformed
	// or adversarial spec string fails validation instead of attempting a
	// multi-gigabyte allocation.
	maxSpecPEs = 1 << 22

	// maxSpecLatency keeps composed latencies (mesh draw + site extra)
	// far from time.Duration overflow.
	maxSpecLatency = time.Hour
)

// NumClusters reports how many clusters the spec expands to (saturating
// at maxSpecPEs+1 for out-of-range specs).
func (s *Spec) NumClusters() int {
	n := 0
	for _, g := range s.Groups {
		if g.Count <= 0 || g.Count > maxSpecPEs-n {
			return maxSpecPEs + 1
		}
		n += g.Count
	}
	return n
}

// NumPE reports the total processor count the spec expands to (saturating
// at maxSpecPEs+1 for out-of-range specs).
func (s *Spec) NumPE() int {
	n := 0
	for _, g := range s.Groups {
		if g.Count <= 0 || g.PEs <= 0 || g.PEs > (maxSpecPEs-n)/g.Count {
			return maxSpecPEs + 1
		}
		n += g.Count * g.PEs
	}
	return n
}

// Validate checks the spec and returns every problem at once.
func (s *Spec) Validate() error {
	var errs []error
	if len(s.Groups) == 0 {
		errs = append(errs, fmt.Errorf("no cluster groups"))
	}
	for i, g := range s.Groups {
		if g.Count <= 0 {
			errs = append(errs, fmt.Errorf("group %d: non-positive cluster count %d", i, g.Count))
		}
		if g.PEs <= 0 {
			errs = append(errs, fmt.Errorf("group %d: non-positive PE count %d", i, g.PEs))
		}
		if !(g.Speed > 0) { // also rejects NaN
			errs = append(errs, fmt.Errorf("group %d: non-positive speed %v", i, g.Speed))
		}
	}
	lat := func(name string, d time.Duration) {
		if d < 0 {
			errs = append(errs, fmt.Errorf("negative %s latency %v", name, d))
		}
		if d > maxSpecLatency {
			errs = append(errs, fmt.Errorf("%s latency %v above the %v limit", name, d, maxSpecLatency))
		}
	}
	lat("wan", s.WAN)
	lat("intra", s.Intra)
	if m := s.Mesh; m != nil {
		lat("mesh minimum", m.Min)
		lat("mesh maximum", m.Max)
		if m.Max < m.Min {
			errs = append(errs, fmt.Errorf("mesh: maximum latency %v below minimum %v", m.Max, m.Min))
		}
	}
	if s.SiteSize < 0 {
		errs = append(errs, fmt.Errorf("negative site size %d", s.SiteSize))
	}
	lat("site extra", s.SiteExtra)
	if s.SiteExtra > 0 && s.SiteSize == 0 {
		errs = append(errs, fmt.Errorf("site extra latency %v without a site size", s.SiteExtra))
	}
	if (s.Mesh != nil || s.SiteSize > 0) && s.NumClusters() > maxMeshClusters {
		errs = append(errs, fmt.Errorf("mesh/site layouts support at most %d clusters", maxMeshClusters))
	}
	if s.NumPE() > maxSpecPEs {
		errs = append(errs, fmt.Errorf("spec exceeds the %d-PE limit", maxSpecPEs))
	}
	if len(errs) > 0 {
		return fmt.Errorf("topology: invalid spec: %w", errors.Join(errs...))
	}
	return nil
}

// Build expands the spec into a Topology.
func (s *Spec) Build() (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var sizes []int
	for _, g := range s.Groups {
		for i := 0; i < g.Count; i++ {
			sizes = append(sizes, g.PEs)
		}
	}
	opts := []Option{WithInterLatency(s.WAN)}
	if s.Intra > 0 {
		opts = append(opts, WithIntraLink(Link{
			Latency: s.Intra, Overhead: DefaultIntraOverhead, Bandwidth: DefaultIntraBandwidth,
		}))
	}
	t, err := New(sizes, opts...)
	if err != nil {
		return nil, err
	}
	c := 0
	for _, g := range s.Groups {
		for i := 0; i < g.Count; i++ {
			if g.Speed != 1 {
				if err := t.SetClusterSpeed(ClusterID(c), g.Speed); err != nil {
					return nil, err
				}
			}
			c++
		}
	}
	if s.Mesh != nil || s.SiteSize > 0 {
		n := t.NumClusters()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				d := s.WAN
				if s.Mesh != nil {
					d = s.Mesh.pairLatency(a, b)
				}
				if s.SiteSize > 0 && a/s.SiteSize != b/s.SiteSize {
					d += s.SiteExtra
				}
				if err := t.SetClusterPairLatency(ClusterID(a), ClusterID(b), d); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// pairLatency draws the mesh latency for cluster pair (a, b), a < b,
// deterministically from the seed: the same spec always builds the same
// machine, on any host.
func (m *MeshSpec) pairLatency(a, b int) time.Duration {
	h := splitmix64(m.Seed ^ splitmix64(uint64(a)<<32|uint64(uint32(b))))
	if span := m.Max - m.Min; span > 0 {
		frac := float64(h>>11) / float64(uint64(1)<<53)
		return m.Min + time.Duration(frac*float64(span))
	}
	return m.Min
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// String renders the spec in the canonical form accepted by ParseSpec;
// ParseSpec(s.String()) reproduces s exactly for any valid spec.
func (s *Spec) String() string {
	var b strings.Builder
	for i, g := range s.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		if g.Count != 1 {
			fmt.Fprintf(&b, "%dx", g.Count)
		}
		fmt.Fprintf(&b, "%d", g.PEs)
		if g.Speed != 1 {
			fmt.Fprintf(&b, "@%s", strconv.FormatFloat(g.Speed, 'g', -1, 64))
		}
	}
	if s.WAN != 0 {
		fmt.Fprintf(&b, ";wan=%v", s.WAN)
	}
	if s.Intra != 0 {
		fmt.Fprintf(&b, ";intra=%v", s.Intra)
	}
	if s.Mesh != nil {
		fmt.Fprintf(&b, ";mesh=rand:%d:%v:%v", s.Mesh.Seed, s.Mesh.Min, s.Mesh.Max)
	}
	if s.SiteSize != 0 {
		fmt.Fprintf(&b, ";site=%d:%v", s.SiteSize, s.SiteExtra)
	}
	return b.String()
}

// ParseSpec parses the compact topology grammar documented on Spec. All
// syntax and validation problems are reported together.
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{}
	var errs []error
	parts := strings.Split(text, ";")
	for _, raw := range strings.Split(parts[0], ",") {
		g, err := parseGroup(strings.TrimSpace(raw))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.Groups = append(s.Groups, g)
	}
	for _, raw := range parts[1:] {
		opt := strings.TrimSpace(raw)
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			errs = append(errs, fmt.Errorf("option %q is not key=value", opt))
			continue
		}
		switch key {
		case "wan":
			d, err := parseLatency(val)
			if err != nil {
				errs = append(errs, fmt.Errorf("wan: %w", err))
				continue
			}
			s.WAN = d
		case "intra":
			d, err := parseLatency(val)
			if err != nil {
				errs = append(errs, fmt.Errorf("intra: %w", err))
				continue
			}
			s.Intra = d
		case "mesh":
			m, err := parseMesh(val)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			s.Mesh = m
		case "site":
			size, extra, err := parseSite(val)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			s.SiteSize, s.SiteExtra = size, extra
		default:
			errs = append(errs, fmt.Errorf("unknown option %q", key))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("topology: bad spec %q: %w", text, errors.Join(errs...))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseGroup(text string) (GroupSpec, error) {
	g := GroupSpec{Count: 1, Speed: 1}
	rest := text
	if pre, post, ok := strings.Cut(rest, "x"); ok {
		n, err := strconv.Atoi(pre)
		if err != nil {
			return g, fmt.Errorf("group %q: bad cluster count %q", text, pre)
		}
		g.Count = n
		rest = post
	}
	if pre, post, ok := strings.Cut(rest, "@"); ok {
		sp, err := strconv.ParseFloat(post, 64)
		if err != nil {
			return g, fmt.Errorf("group %q: bad speed %q", text, post)
		}
		g.Speed = sp
		rest = pre
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return g, fmt.Errorf("group %q: bad PE count %q", text, rest)
	}
	g.PEs = n
	return g, nil
}

func parseLatency(text string) (time.Duration, error) {
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", text)
	}
	return d, nil
}

func parseMesh(text string) (*MeshSpec, error) {
	fields := strings.Split(text, ":")
	if len(fields) != 4 || fields[0] != "rand" {
		return nil, fmt.Errorf("mesh %q: want rand:SEED:MIN:MAX", text)
	}
	seed, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("mesh %q: bad seed %q", text, fields[1])
	}
	min, err := parseLatency(fields[2])
	if err != nil {
		return nil, fmt.Errorf("mesh %q: %w", text, err)
	}
	max, err := parseLatency(fields[3])
	if err != nil {
		return nil, fmt.Errorf("mesh %q: %w", text, err)
	}
	return &MeshSpec{Seed: seed, Min: min, Max: max}, nil
}

func parseSite(text string) (int, time.Duration, error) {
	pre, post, ok := strings.Cut(text, ":")
	if !ok {
		return 0, 0, fmt.Errorf("site %q: want SIZE:EXTRA", text)
	}
	size, err := strconv.Atoi(pre)
	if err != nil {
		return 0, 0, fmt.Errorf("site %q: bad size %q", text, pre)
	}
	extra, err := parseLatency(post)
	if err != nil {
		return 0, 0, fmt.Errorf("site %q: %w", text, err)
	}
	return size, extra, nil
}
