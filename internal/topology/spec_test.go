package topology

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// randomSpec draws a valid canonical spec (the form ParseSpec produces:
// Count >= 1, Speed explicit) from rng.
func randomSpec(rng *rand.Rand) *Spec {
	s := &Spec{}
	groups := 1 + rng.Intn(3)
	for i := 0; i < groups; i++ {
		g := GroupSpec{Count: 1 + rng.Intn(4), PEs: 1 + rng.Intn(16), Speed: 1}
		if rng.Intn(2) == 0 {
			g.Speed = float64(1+rng.Intn(8)) / 4
		}
		s.Groups = append(s.Groups, g)
	}
	if rng.Intn(2) == 0 {
		s.WAN = time.Duration(1+rng.Intn(50)) * time.Millisecond
	}
	if rng.Intn(3) == 0 {
		s.Intra = time.Duration(1+rng.Intn(90)) * time.Microsecond
	}
	if rng.Intn(2) == 0 {
		min := time.Duration(1+rng.Intn(5)) * time.Millisecond
		s.Mesh = &MeshSpec{Seed: rng.Uint64() % 1000, Min: min, Max: min + time.Duration(rng.Intn(20))*time.Millisecond}
	}
	if rng.Intn(3) == 0 {
		s.SiteSize = 1 + rng.Intn(3)
		s.SiteExtra = time.Duration(rng.Intn(40)) * time.Millisecond
	}
	return s
}

// TestSpecRoundTrip: ParseSpec(s.String()) == s for random valid specs.
func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := randomSpec(rng)
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("spec %q failed to reparse: %v", s, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip changed spec:\n in: %#v (%q)\nout: %#v (%q)", s, s, got, got)
		}
	}
}

// TestSpecBuildProperties: every topology built from a valid spec has
// symmetric links, positive lookahead, and the declared shape.
func TestSpecBuildProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := randomSpec(rng)
		topo, err := s.Build()
		if err != nil {
			t.Fatalf("spec %q failed to build: %v", s, err)
		}
		if topo.NumPE() != s.NumPE() {
			t.Fatalf("spec %q: built %d PEs, want %d", s, topo.NumPE(), s.NumPE())
		}
		if topo.NumClusters() != s.NumClusters() {
			t.Fatalf("spec %q: built %d clusters, want %d", s, topo.NumClusters(), s.NumClusters())
		}
		if la := topo.Lookahead(); topo.NumPE() > 1 && la <= 0 {
			t.Fatalf("spec %q: non-positive lookahead %v", s, la)
		}
		// Symmetry over sampled PE pairs (all pairs when small).
		for trial := 0; trial < 64; trial++ {
			a, b := rng.Intn(topo.NumPE()), rng.Intn(topo.NumPE())
			la, lb := topo.LinkBetween(a, b), topo.LinkBetween(b, a)
			if la != lb {
				t.Fatalf("spec %q: asymmetric link %d<->%d: %+v vs %+v", s, a, b, la, lb)
			}
			if a != b && la.Delay(0) < topo.Lookahead() {
				t.Fatalf("spec %q: link %d->%d delay %v below lookahead %v", s, a, b, la.Delay(0), topo.Lookahead())
			}
		}
		// Speeds land on the right clusters.
		pe := 0
		for _, g := range s.Groups {
			for c := 0; c < g.Count; c++ {
				if got := topo.PESpeed(pe); got != g.Speed {
					t.Fatalf("spec %q: PE %d speed %v, want %v", s, pe, got, g.Speed)
				}
				pe += g.PEs
			}
		}
	}
}

// TestSpecDeterministicMesh: the same spec string always builds the same
// machine — mesh draws depend only on the seed, never on host state.
func TestSpecDeterministicMesh(t *testing.T) {
	const text = "3x4,2x2@0.5;wan=5ms;mesh=rand:9:2ms:20ms;site=2:30ms"
	s1, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := ParseSpec(text)
	t1, err := s1.Build()
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := s2.Build()
	for a := 0; a < t1.NumPE(); a++ {
		for b := 0; b < t1.NumPE(); b++ {
			if t1.LinkBetween(a, b) != t2.LinkBetween(a, b) {
				t.Fatalf("link %d->%d differs across identical builds", a, b)
			}
		}
	}
	// Mesh latencies stay inside [Min, Max + SiteExtra).
	for a := 0; a < t1.NumPE(); a++ {
		for b := 0; b < t1.NumPE(); b++ {
			if t1.SameCluster(a, b) {
				continue
			}
			lat := t1.LinkBetween(a, b).Latency
			if lat < 2*time.Millisecond || lat >= 50*time.Millisecond {
				t.Fatalf("mesh latency %v for %d->%d outside [2ms, 20ms+30ms)", lat, a, b)
			}
		}
	}
}

// TestSpecValidationAggregates: a spec with several problems reports all
// of them in one error.
func TestSpecValidationAggregates(t *testing.T) {
	_, err := ParseSpec("0x8@-1;wan=-5ms;site=0:1ms")
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"cluster count", "speed", "wan", "site"} {
		if !containsAll(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func containsAll(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// FuzzParseSpec: arbitrary inputs never panic; anything that parses must
// round-trip through String and build a symmetric machine with positive
// lookahead.
func FuzzParseSpec(f *testing.F) {
	f.Add("8")
	f.Add("2x4")
	f.Add("8x128,4x64@0.5;wan=5ms;mesh=rand:7:2ms:20ms;site=4:30ms")
	f.Add("1;intra=50us")
	f.Add("3@0.25,3@4;wan=1ms")
	f.Add("0x0;mesh=rand:0:0s:0s")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q failed to reparse: %v", s, text, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed spec %q: %#v vs %#v", text, s, back)
		}
		if s.NumPE() > 1<<14 {
			return // valid but big; skip the build to keep fuzzing fast
		}
		topo, err := s.Build()
		if err != nil {
			t.Fatalf("validated spec %q failed to build: %v", s, err)
		}
		n := topo.NumPE()
		for i := 0; i < 32; i++ {
			a, b := int(splitmix64(uint64(i))%uint64(n)), int(splitmix64(uint64(i)+99)%uint64(n))
			if topo.LinkBetween(a, b) != topo.LinkBetween(b, a) {
				t.Fatalf("spec %q: asymmetric link %d<->%d", s, a, b)
			}
		}
		if n > 1 && topo.Lookahead() <= 0 {
			t.Fatalf("spec %q: non-positive lookahead", s)
		}
	})
}
