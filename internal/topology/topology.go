// Package topology models the physical machine a GridMDO program runs on:
// a set of processing elements (PEs) grouped into clusters, with a link
// model (latency, bandwidth, per-message software overhead) between every
// pair of PEs.
//
// The paper's experimental setup — two clusters with half the processors
// each, joined by a high-latency wide-area link — is produced by
// TwoClusters. Arbitrary cluster layouts and per-pair latency overrides
// (the "delay device between arbitrary pairs of nodes" capability of VMI)
// are supported through New and SetPairLatency.
package topology

import (
	"fmt"
	"time"
)

// ClusterID identifies one cluster within a Topology.
type ClusterID int

// Link describes the communication characteristics between a pair of PEs.
// The modeled delivery time of an n-byte message over a Link is
//
//	Overhead + Latency + n/Bandwidth
//
// Overhead is the per-message software cost (host side), Latency is the
// one-way wire flight time, and Bandwidth is in bytes per second.
//
// SendCPU, when non-zero, additionally charges the *sending processor*
// that much serialized execution time per message frame — the part of
// messaging cost that occupies the CPU rather than the wire, and the part
// that message bundling amortizes. It defaults to zero so that analyses
// that do not study per-message CPU cost are unaffected.
type Link struct {
	Latency   time.Duration
	Overhead  time.Duration
	Bandwidth float64 // bytes per second; <= 0 means infinite
	SendCPU   time.Duration
}

// Delay returns the modeled one-way delivery time for a message of n bytes.
func (l Link) Delay(n int) time.Duration {
	d := l.Overhead + l.Latency
	if l.Bandwidth > 0 && n > 0 {
		d += time.Duration(float64(n) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Era-typical defaults used throughout the reproduction: a Myrinet-class
// intra-cluster fabric and a wide-area TCP path (see DESIGN.md §5).
const (
	DefaultIntraOverhead = 10 * time.Microsecond
	DefaultInterOverhead = 60 * time.Microsecond
)

const (
	DefaultIntraBandwidth = 250e6 // bytes/s
	DefaultInterBandwidth = 30e6  // bytes/s
)

// Topology is an immutable-after-construction description of the machine.
// All methods are safe for concurrent use once the topology is built.
type Topology struct {
	numPE    int
	cluster  []ClusterID // per-PE cluster assignment
	clusters [][]int     // member PEs per cluster

	intra Link
	inter Link

	// pairwise overrides, keyed by pairKey(a, b); nil when unused
	overrides map[int64]Link

	// clusterLinks overrides the inter link per cluster pair, keyed by
	// pairKey(a, b) over cluster IDs; nil when unused. It makes
	// heterogeneous WAN meshes affordable at thousands of PEs where per-PE
	// pair overrides would need O(P²) entries.
	clusterLinks map[int64]Link

	// speed holds per-PE relative compute speed factors; nil means all 1.0
	speed []float64
}

func pairKey(a, b int) int64 { return int64(a)<<32 | int64(uint32(b)) }

// Option configures topology construction.
type Option func(*Topology)

// WithIntraLink overrides the default intra-cluster link model.
func WithIntraLink(l Link) Option { return func(t *Topology) { t.intra = l } }

// WithInterLink overrides the default inter-cluster link model.
func WithInterLink(l Link) Option { return func(t *Topology) { t.inter = l } }

// WithInterLatency sets only the inter-cluster one-way latency, keeping the
// default overhead and bandwidth. This is the knob the paper sweeps.
func WithInterLatency(d time.Duration) Option {
	return func(t *Topology) { t.inter.Latency = d }
}

// New builds a topology from explicit cluster sizes. PEs are numbered
// contiguously: cluster 0 holds PEs [0, sizes[0]), cluster 1 the next
// sizes[1] PEs, and so on.
func New(sizes []int, opts ...Option) (*Topology, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("topology: need at least one cluster")
	}
	t := &Topology{
		intra: Link{Latency: 0, Overhead: DefaultIntraOverhead, Bandwidth: DefaultIntraBandwidth},
		inter: Link{Latency: 0, Overhead: DefaultInterOverhead, Bandwidth: DefaultInterBandwidth},
	}
	for c, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("topology: cluster %d has non-positive size %d", c, n)
		}
		members := make([]int, 0, n)
		for i := 0; i < n; i++ {
			t.cluster = append(t.cluster, ClusterID(c))
			members = append(members, t.numPE)
			t.numPE++
		}
		t.clusters = append(t.clusters, members)
	}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// TwoClusters builds the paper's standard environment: p PEs split evenly
// between two clusters (p must be even and positive), with the given
// one-way inter-cluster latency.
func TwoClusters(p int, interLatency time.Duration, opts ...Option) (*Topology, error) {
	if p <= 0 || p%2 != 0 {
		return nil, fmt.Errorf("topology: TwoClusters needs a positive even PE count, got %d", p)
	}
	opts = append([]Option{WithInterLatency(interLatency)}, opts...)
	return New([]int{p / 2, p / 2}, opts...)
}

// Single builds a one-cluster machine with p PEs (used for the paper's
// single-processor baselines and for unit tests).
func Single(p int, opts ...Option) (*Topology, error) {
	if p <= 0 {
		return nil, fmt.Errorf("topology: need a positive PE count, got %d", p)
	}
	return New([]int{p}, opts...)
}

// SetPairLatency overrides the one-way latency between a specific ordered
// pair of PEs, in both directions. It reproduces VMI's ability to "inject
// pre-defined latencies between arbitrary pairs of nodes". It must be
// called before the topology is shared across goroutines.
func (t *Topology) SetPairLatency(a, b int, d time.Duration) {
	if t.overrides == nil {
		t.overrides = make(map[int64]Link)
	}
	base := t.baseLink(a, b)
	base.Latency = d
	t.overrides[pairKey(a, b)] = base
	t.overrides[pairKey(b, a)] = base
}

// SetClusterPairLatency overrides the one-way latency between every PE of
// cluster a and every PE of cluster b (both directions), keeping the inter
// link's overhead and bandwidth. It is the scalable form of SetPairLatency
// for heterogeneous WAN meshes: one entry per cluster pair instead of one
// per PE pair. It must be called before the topology is shared across
// goroutines.
func (t *Topology) SetClusterPairLatency(a, b ClusterID, d time.Duration) error {
	l := t.inter
	l.Latency = d
	return t.SetClusterPairLink(a, b, l)
}

// SetClusterPairLink overrides the whole link model between a specific
// pair of clusters, in both directions.
func (t *Topology) SetClusterPairLink(a, b ClusterID, l Link) error {
	if int(a) < 0 || int(a) >= len(t.clusters) || int(b) < 0 || int(b) >= len(t.clusters) {
		return fmt.Errorf("topology: cluster pair (%d,%d) out of range [0,%d)", a, b, len(t.clusters))
	}
	if a == b {
		return fmt.Errorf("topology: cluster pair link needs two distinct clusters, got (%d,%d)", a, b)
	}
	if t.clusterLinks == nil {
		t.clusterLinks = make(map[int64]Link)
	}
	t.clusterLinks[pairKey(int(a), int(b))] = l
	t.clusterLinks[pairKey(int(b), int(a))] = l
	return nil
}

func (t *Topology) baseLink(a, b int) Link {
	ca, cb := t.cluster[a], t.cluster[b]
	if ca == cb {
		return t.intra
	}
	if t.clusterLinks != nil {
		if l, ok := t.clusterLinks[pairKey(int(ca), int(cb))]; ok {
			return l
		}
	}
	return t.inter
}

// SetPESpeed sets a PE's relative compute speed (1.0 = the reference
// machine; 0.5 = half speed, i.e. work charges twice the time). It models
// heterogeneous co-allocations — e.g. one cluster a generation older than
// the other. It must be called before the topology is shared across
// goroutines. Non-positive values are rejected.
func (t *Topology) SetPESpeed(pe int, speed float64) error {
	if pe < 0 || pe >= t.numPE {
		return fmt.Errorf("topology: SetPESpeed of unknown PE %d", pe)
	}
	if speed <= 0 {
		return fmt.Errorf("topology: non-positive speed %v for PE %d", speed, pe)
	}
	if t.speed == nil {
		t.speed = make([]float64, t.numPE)
		for i := range t.speed {
			t.speed[i] = 1
		}
	}
	t.speed[pe] = speed
	return nil
}

// SetClusterSpeed sets the speed factor for every PE of a cluster.
func (t *Topology) SetClusterSpeed(c ClusterID, speed float64) error {
	if int(c) < 0 || int(c) >= len(t.clusters) {
		return fmt.Errorf("topology: SetClusterSpeed of unknown cluster %d", c)
	}
	for _, pe := range t.clusters[c] {
		if err := t.SetPESpeed(pe, speed); err != nil {
			return err
		}
	}
	return nil
}

// PESpeed reports a PE's relative compute speed factor.
func (t *Topology) PESpeed(pe int) float64 {
	if t.speed == nil {
		return 1
	}
	return t.speed[pe]
}

// NumPE reports the total number of processing elements.
func (t *Topology) NumPE() int { return t.numPE }

// NumClusters reports the number of clusters.
func (t *Topology) NumClusters() int { return len(t.clusters) }

// Cluster reports which cluster PE p belongs to.
func (t *Topology) Cluster(p int) ClusterID { return t.cluster[p] }

// PEs returns the member PEs of cluster c. The returned slice must not be
// modified.
func (t *Topology) PEs(c ClusterID) []int { return t.clusters[c] }

// SameCluster reports whether two PEs are in the same cluster.
func (t *Topology) SameCluster(a, b int) bool { return t.cluster[a] == t.cluster[b] }

// CrossesWAN reports whether a message from a to b traverses the
// inter-cluster link.
func (t *Topology) CrossesWAN(a, b int) bool { return t.cluster[a] != t.cluster[b] }

// LinkBetween returns the link model used for messages from a to b,
// honoring per-pair overrides.
func (t *Topology) LinkBetween(a, b int) Link {
	if t.overrides != nil {
		if l, ok := t.overrides[pairKey(a, b)]; ok {
			return l
		}
	}
	if a == b {
		// Self-sends skip the network entirely; keep a nominal scheduler
		// hand-off cost so virtual-time runs are not unrealistically free.
		return Link{Overhead: time.Microsecond, Bandwidth: 0}
	}
	return t.baseLink(a, b)
}

// Lookahead reports the minimum zero-byte delivery delay over every link
// that can carry a message between two *distinct* PEs. It is the
// conservative synchronization horizon of the parallel virtual-time
// engine: any cross-PE message sent at time t arrives no earlier than
// t + Lookahead(), regardless of which PEs are involved, so PE shards may
// run Lookahead() of virtual time without coordinating. Self-send links
// are excluded (they never cross shards). The result is 0 when the
// machine has a single PE (no cross-PE links exist) or when some link has
// no delay at all.
func (t *Topology) Lookahead() time.Duration {
	if t.numPE <= 1 {
		return 0
	}
	la := time.Duration(-1)
	consider := func(l Link) {
		if d := l.Delay(0); la < 0 || d < la {
			la = d
		}
	}
	intraPairs := false
	for _, members := range t.clusters {
		if len(members) > 1 {
			intraPairs = true
			break
		}
	}
	if intraPairs {
		consider(t.intra)
	}
	if c := len(t.clusters); c > 1 {
		// The base inter link applies unless every cluster pair is
		// overridden; each override contributes its own delay.
		if len(t.clusterLinks) < c*(c-1) {
			consider(t.inter)
		}
		for _, l := range t.clusterLinks {
			consider(l)
		}
	}
	for k, l := range t.overrides {
		if a, b := int(k>>32), int(uint32(k)); a != b {
			consider(l)
		}
	}
	if la < 0 {
		return 0
	}
	return la
}

// Latency is shorthand for LinkBetween(a, b).Latency.
func (t *Topology) Latency(a, b int) time.Duration { return t.LinkBetween(a, b).Latency }

// InterLatency reports the configured inter-cluster one-way latency.
func (t *Topology) InterLatency() time.Duration { return t.inter.Latency }

// String summarizes the machine, e.g. "2 clusters × 8 PEs, WAN 4ms".
func (t *Topology) String() string {
	if len(t.clusters) == 1 {
		return fmt.Sprintf("1 cluster × %d PEs", t.numPE)
	}
	return fmt.Sprintf("%d clusters, %d PEs total, WAN %v", len(t.clusters), t.numPE, t.inter.Latency)
}
