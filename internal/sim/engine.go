// Package sim is GridMDO's virtual-time executor: a deterministic
// discrete-event simulator that runs unmodified core.Programs against a
// modeled machine. It plays the role Charm++'s BigSim emulator plays for
// the real Charm++ runtime — handlers execute real Go code (so
// application numerics are exact), but time advances according to a cost
// model: handlers charge modeled execution time via Ctx.Charge, and
// message delivery times come from the topology's link model
// (per-message overhead + latency + size/bandwidth).
//
// Because the simulated machine's speed is configured rather than
// inherited from the host, the engine reproduces the paper's 2–64
// Itanium-processor experiments faithfully on any development machine,
// and two runs of the same program are event-for-event identical.
//
// Two executors share one event model. New builds the sequential engine:
// a single event queue popped in order, the reference semantics.
// NewParallel builds the conservative parallel engine: PEs are divided
// into shards, each with its own event heap, executed by a worker pool in
// time windows bounded by the topology's lookahead (the minimum cross-PE
// link delay — every cross-PE interaction is a modeled message with
// nonzero delay, so within one window the shards cannot affect each
// other). Both engines order events by the same deterministic
// (time, kind, key) comparator, where keys are drawn from per-PE
// counters, so the parallel engine replays the identical per-PE event
// sequence and produces bit-identical results — see DESIGN.md §13.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Trace, if non-nil, receives events stamped with virtual time.
	Trace *trace.Tracer

	// PrioritizeWAN applies the paper's §6 cross-cluster priority policy.
	PrioritizeWAN bool

	// Bundle combines each handler's default-priority application
	// messages per destination PE into one modeled frame, paying the
	// per-message link overhead once (see core/bundle.go).
	Bundle bool

	// MaxVirtual aborts runs whose virtual clock passes this bound
	// (guards against runaway programs). Zero means no bound.
	MaxVirtual time.Duration

	// MaxEvents aborts runs that process more than this many events.
	// Zero means no bound.
	MaxEvents int64

	// PackCold, when positive, bounds each PE's constructed element set
	// to that many chares: idle elements are kept PUP-packed between
	// events and hydrated on delivery, so simulations of millions of
	// chares fit in memory. Every element must implement core.Migratable.
	// Results are unaffected — PUP round-trips state exactly.
	PackCold int
}

type evKind uint8

const (
	evDeliver evKind = iota // message arrives at a PE's queue
	evExec                  // PE begins executing its next queued message
)

// event ordering is fully deterministic: (at, kind, key), with deliveries
// before executions at the same instant. Deliver keys come from per-PE
// send counters (each PE's execution sequence is deterministic, so the
// keys are too, independent of shard interleaving); exec keys are the PE
// id (at most one exec event per PE is pending at a time). This replaces
// a global push-order tie-break, which only a sequential executor could
// reproduce.
type event struct {
	at   time.Duration
	key  uint64
	kind evKind
	pe   int32
	m    *core.Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].key < h[j].key
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ordKey is an event's position in the global deterministic order, used
// to compare stop candidates (exit, error) across shards.
type ordKey struct {
	at   time.Duration
	kind evKind
	key  uint64
}

func (k ordKey) less(o ordKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	if k.kind != o.kind {
		return k.kind < o.kind
	}
	return k.key < o.key
}

func (k ordKey) greater(o ordKey) bool { return o.less(k) }

type simPE struct {
	id          int
	q           *core.Queue
	host        *core.PEHost
	reduce      *core.ReduceMgr
	lb          *core.LBMgr
	busyUntil   time.Duration
	execPending bool
	busyTotal   time.Duration
	processed   int64

	// sendSeq drives this PE's deterministic event keys and message IDs;
	// only the shard owning the PE ever touches it.
	sendSeq uint64

	pending *core.PendingBundles
}

// rewindRec snapshots the engine state an event is about to mutate, so a
// parallel window that raced past an exit (or error) can restore the
// exact per-PE clocks and counters the sequential engine would have
// stopped with. One record is appended per event; records are discarded
// at each window barrier.
type rewindRec struct {
	key                  ordKey
	pe                   int32
	now                  time.Duration
	busyUntil, busyTotal time.Duration
	processed            int64
	sendSeq              uint64
	events, msgs, frames int64
}

// shard owns a contiguous range of PEs: their event heap, queues, hosts,
// and the execution state of whichever handler is running. It implements
// core.Backend, so each PE's host routes sends and reads the clock
// through its own shard without any cross-shard locking on the hot path.
// The sequential engine is the one-shard special case.
type shard struct {
	eng        *Engine
	id         int
	peLo, peHi int

	events eventHeap
	now    time.Duration

	// current handler execution state
	inHandler bool
	curPE     int
	execStart time.Duration
	charged   time.Duration
	curMsg    uint64 // causal ID of the message being executed (0 between)
	curKey    ordKey // deterministic order key of the event being processed

	// parallel-mode state: cross-shard sends buffered until the window
	// barrier, trace events staged so a stop can filter raced-past
	// history, and the rewind log (see rewindRec).
	outbox     []event
	staged     []trace.Event
	stagedKeys []ordKey
	rewind     []rewindRec

	eventCount int64
	msgCount   int64
	frameCount int64
}

// Engine is the virtual-time executor. Run may only be called once; after
// it returns the engine is quiescent and Stats/Checkpoint may be used.
type Engine struct {
	topo *topology.Topology
	prog *core.Program
	opts Options
	loc  *core.Locations
	pes  []*simPE

	shards    []*shard
	shardOf   []int32 // PE -> owning shard
	parallel  bool
	workers   int
	lookahead time.Duration

	// bootSeq keys events originated outside any PE (the start message).
	bootSeq uint64

	now time.Duration

	// Stop candidates: the first (in deterministic event order) exit and
	// error seen. Shards race to offer candidates under stopMu; the
	// smallest key wins, exactly as if the sequential engine had stopped
	// there. stopFlag makes the common no-stop check a cheap atomic load.
	stopMu   sync.Mutex
	stopFlag atomic.Bool
	exitCand struct {
		have bool
		key  ordKey
		val  any
	}
	errCand struct {
		have bool
		key  ordKey
		err  error
	}

	exited  bool
	exitVal any
	err     error
}

// New builds the sequential virtual-time engine for prog on topo.
func New(topo *topology.Topology, prog *core.Program, opts Options) (*Engine, error) {
	return newEngine(topo, prog, opts, 1, false)
}

// NewParallel builds the conservative parallel engine: workers goroutines
// execute PE shards in lookahead-bounded time windows. Results (exit
// value, virtual times, checksums, traces) are bit-identical to the
// sequential engine's. The topology must have positive lookahead — some
// modeled delay on every cross-PE link — unless it has a single PE.
func NewParallel(topo *topology.Topology, prog *core.Program, opts Options, workers int) (*Engine, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sim: NewParallel needs at least one worker, got %d", workers)
	}
	return newEngine(topo, prog, opts, workers, true)
}

func newEngine(topo *topology.Topology, prog *core.Program, opts Options, workers int, parallel bool) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		topo:     topo,
		prog:     prog,
		opts:     opts,
		loc:      core.NewLocations(prog, topo.NumPE()),
		parallel: parallel,
		workers:  workers,
	}
	numPE := topo.NumPE()
	numShards := 1
	if parallel {
		e.lookahead = topo.Lookahead()
		if numPE > 1 && e.lookahead <= 0 {
			return nil, fmt.Errorf("sim: parallel execution needs positive lookahead, but topology %v has a zero-delay cross-PE link; give every link some latency or overhead", topo)
		}
		// More shards than workers keeps the per-shard heaps small and
		// lets the pool balance uneven windows; beyond ~4× there is only
		// bookkeeping.
		numShards = 4 * workers
		if numShards < 16 {
			numShards = 16
		}
		if numShards > numPE {
			numShards = numPE
		}
	}
	e.shards = make([]*shard, numShards)
	e.shardOf = make([]int32, numPE)
	base, rem := numPE/numShards, numPE%numShards
	lo := 0
	for i := 0; i < numShards; i++ {
		n := base
		if i < rem {
			n++
		}
		s := &shard{eng: e, id: i, peLo: lo, peHi: lo + n}
		if parallel {
			s.outbox = make([]event, 0, 16)
		}
		e.shards[i] = s
		for pe := lo; pe < lo+n; pe++ {
			e.shardOf[pe] = int32(i)
		}
		lo += n
	}
	e.pes = make([]*simPE, numPE)
	for pe := 0; pe < numPE; pe++ {
		sh := e.shards[e.shardOf[pe]]
		ps := &simPE{id: pe, q: core.NewQueue()}
		if opts.Bundle {
			ps.pending = core.NewPendingBundles()
		}
		ps.host = core.NewPEHost(sh, pe)
		if opts.PackCold > 0 {
			ps.host.EnableColdStore(opts.PackCold, func(ref core.ElemRef) (core.Chare, error) {
				if int(ref.Array) < 0 || int(ref.Array) >= len(prog.Arrays) {
					return nil, fmt.Errorf("sim: cold rebuild of element %v in unknown array", ref)
				}
				return prog.Arrays[ref.Array].New(ref.Index), nil
			})
		}
		pe := pe
		ps.reduce = core.NewReduceMgr(pe,
			func(a core.ArrayID) int { return e.loc.LocalCount(a, pe) },
			func(a core.ArrayID) int { return e.prog.Arrays[a].N },
			sh.Route,
			func(a core.ArrayID, seq int64, v any) { ps.host.RunReduction(e.prog, a, seq, v) },
		)
		if prog.LB != nil {
			ps.lb = core.NewLBMgr(pe, prog.LB, topo, e.loc, ps.host, prog, sh.Route)
		}
		e.pes[pe] = ps
	}
	if err := core.ConstructElements(prog, e.loc, 0, numPE, func(pe int) *core.PEHost {
		return e.pes[pe].host
	}); err != nil {
		return nil, err
	}
	if opts.PackCold > 0 {
		for _, ps := range e.pes {
			if err := ps.host.ColdError(); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// nextKey draws the next deterministic event key (and message ID) for a
// send originated by pe; pe < 0 is the engine itself (the start message).
// Only the shard owning pe may call this for it, so no synchronization is
// needed and the sequence each PE draws is identical in both engines.
func (e *Engine) nextKey(pe int) uint64 {
	if pe < 0 {
		e.bootSeq++
		return e.bootSeq
	}
	ps := e.pes[pe]
	ps.sendSeq++
	return uint64(pe+1)<<40 | ps.sendSeq
}

func (s *shard) owns(pe int32) bool { return int(pe) >= s.peLo && int(pe) < s.peHi }

// Backend implementation ---------------------------------------------------

// Route implements core.Backend: deliveries are scheduled at
// send-time + link delay, where send time is the virtual instant within
// the running handler at which the send occurs (execution start plus time
// charged so far).
func (s *shard) Route(m *core.Message) {
	e := s.eng
	if m.Kind == core.KindApp {
		m.DstPE = e.loc.PEOf(m.To)
	}
	if e.opts.PrioritizeWAN && m.Prio == 0 && e.topo.CrossesWAN(int(m.SrcPE), int(m.DstPE)) {
		m.Prio = -1
	}
	s.msgCount++
	src := int(m.SrcPE)
	if s.inHandler {
		src = s.curPE
	}
	if m.ID == 0 {
		m.ID = e.nextKey(src)
	}
	if m.Parent == 0 && s.inHandler {
		m.Parent = s.curMsg
	}
	s.record(trace.Event{PE: int(m.SrcPE), Kind: trace.EvSend, At: s.Now(), MsgID: m.ID, Parent: m.Parent, MsgKind: byte(m.Kind), Arg1: int64(m.DstPE), Arg2: int64(m.Bytes)})
	if e.opts.Bundle && core.BundleEligible(m) && s.inHandler {
		// Held until the running handler completes; exec flushes the
		// per-destination groups as single modeled frames. The sender pays
		// full per-frame CPU only for the first message to a destination;
		// later messages into the same bundle cost a quarter (marshal
		// without the frame setup).
		pend := e.pes[s.curPE].pending
		cpu := e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE)).SendCPU
		if pend.Has(m.DstPE) {
			cpu /= 4
		}
		s.Charge(cpu)
		pend.Add(m)
		return
	}
	if s.inHandler {
		s.Charge(e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE)).SendCPU)
	}
	s.transmit(m, s.Now(), src)
}

// transmit schedules a resolved message's delivery at sendAt plus the
// link's modeled delay. src is the PE whose key counter stamps the event
// (the PE doing the sending; < 0 for the bootstrap message).
func (s *shard) transmit(m *core.Message, sendAt time.Duration, src int) {
	e := s.eng
	link := e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE))
	s.push(event{at: sendAt + link.Delay(m.Bytes), key: e.nextKey(src), kind: evDeliver, pe: m.DstPE, m: m})
}

// push routes an event to its PE's shard: onto the local heap, or — for
// another shard, in parallel mode — into the outbox to be distributed at
// the window barrier. Cross-shard events always carry at least the
// lookahead of delay, so they land beyond the current window and the
// deferred hand-off cannot reorder anything.
func (s *shard) push(ev event) {
	if !s.eng.parallel || s.owns(ev.pe) {
		heap.Push(&s.events, ev)
		return
	}
	s.outbox = append(s.outbox, ev)
}

// Now implements core.Backend: virtual time at the current execution
// point.
func (s *shard) Now() time.Duration {
	if s.inHandler {
		return s.execStart + s.charged
	}
	return s.now
}

// Charge implements core.Backend: modeled execution time accumulates into
// the running handler and advances the PE's clock when it completes.
// Charged durations are expressed for the reference machine and scaled by
// the executing PE's speed factor, so heterogeneous clusters run the same
// application code at different rates.
func (s *shard) Charge(d time.Duration) {
	if s.inHandler && d > 0 {
		if sp := s.eng.topo.PESpeed(s.curPE); sp != 1 {
			d = time.Duration(float64(d) / sp)
		}
		s.charged += d
	}
}

// NumPE implements core.Backend.
func (s *shard) NumPE() int { return s.eng.topo.NumPE() }

// Topo implements core.Backend.
func (s *shard) Topo() *topology.Topology { return s.eng.topo }

// ArrayN implements core.Backend.
func (s *shard) ArrayN(a core.ArrayID) int { return s.eng.prog.Arrays[a].N }

// ExitWith implements core.Backend. In a parallel run several shards may
// reach exits within one window; the one earliest in deterministic event
// order wins, exactly as if the sequential engine had stopped there.
func (s *shard) ExitWith(v any) {
	s.eng.offerExit(s.curKey, v)
}

// Contribute implements core.Backend.
func (s *shard) Contribute(_ core.ElemRef, pe int, a core.ArrayID, seq int64, v any, op core.ReduceOp) {
	s.eng.pes[pe].reduce.Contribute(a, seq, v, op)
}

// AtSync implements core.Backend.
func (s *shard) AtSync(_ core.ElemRef, pe int) {
	if s.eng.pes[pe].lb == nil {
		panic("sim: AtSync without an LB configuration")
	}
	s.eng.pes[pe].lb.ElementAtSync()
}

// Record implements core.Backend: events from libraries and applications
// (step marks, AMPI block/wake) land in the same tracer as scheduler
// events, stamped with virtual time by the caller.
func (s *shard) Record(ev trace.Event) { s.record(ev) }

// record emits a trace event. The sequential engine writes straight into
// the tracer; a parallel shard stages events with the key of the event
// being processed, and the barrier flushes them — dropping any recorded
// by events that raced past a stop — so the per-PE trace streams are
// bit-identical to a sequential run's.
func (s *shard) record(ev trace.Event) {
	e := s.eng
	if e.opts.Trace == nil {
		return
	}
	if !e.parallel {
		e.opts.Trace.Record(ev)
		return
	}
	s.staged = append(s.staged, ev)
	s.stagedKeys = append(s.stagedKeys, s.curKey)
}

// Stop candidates -----------------------------------------------------------

func (e *Engine) offerExit(k ordKey, v any) {
	e.stopMu.Lock()
	if !e.exitCand.have || k.less(e.exitCand.key) {
		e.exitCand.have, e.exitCand.key, e.exitCand.val = true, k, v
	}
	e.stopMu.Unlock()
	e.stopFlag.Store(true)
}

func (e *Engine) offerErr(k ordKey, err error) {
	e.stopMu.Lock()
	if !e.errCand.have || k.less(e.errCand.key) {
		e.errCand.have, e.errCand.key, e.errCand.err = true, k, err
	}
	e.stopMu.Unlock()
	e.stopFlag.Store(true)
}

// stopKeySnapshot reports the earliest stop candidate so far, if any.
func (e *Engine) stopKeySnapshot() (ordKey, bool) {
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	switch {
	case e.exitCand.have && e.errCand.have:
		if e.errCand.key.less(e.exitCand.key) {
			return e.errCand.key, true
		}
		return e.exitCand.key, true
	case e.exitCand.have:
		return e.exitCand.key, true
	case e.errCand.have:
		return e.errCand.key, true
	}
	return ordKey{}, false
}

// resolveStop finalizes exited/exitVal/err from the candidates: only
// candidates at or before the earliest stop survive (an error after the
// winning exit never happened, and vice versa). A candidate pair from the
// same event keeps both, matching the sequential engine's behavior when
// one handler both exits and fails.
func (e *Engine) resolveStop() {
	stop, ok := e.stopKeySnapshot()
	if !ok {
		return
	}
	if e.exitCand.have && !e.exitCand.key.greater(stop) {
		e.exited, e.exitVal = true, e.exitCand.val
	}
	if e.errCand.have && !e.errCand.key.greater(stop) && e.err == nil {
		e.err = e.errCand.err
	}
}

// Event loop ----------------------------------------------------------------

// Run executes the program to completion: until ExitWith is called, an
// error or budget stops the run, or no events remain (natural
// quiescence). It returns the exit value and the virtual time at which
// the run ended.
func (e *Engine) Run() (any, time.Duration, error) {
	startKey := e.nextKey(-1)
	s0 := e.shards[e.shardOf[0]]
	heap.Push(&s0.events, event{at: 0, key: startKey, kind: evDeliver, pe: 0, m: &core.Message{Kind: core.KindStart, ID: startKey}})
	if e.parallel {
		e.runParallel()
	} else {
		e.runSequential()
	}
	e.resolveStop()
	// The run ends when the last handler's charged time elapses, which may
	// be after the final event was dequeued.
	for _, s := range e.shards {
		if s.now > e.now {
			e.now = s.now
		}
	}
	for _, ps := range e.pes {
		if ps.busyUntil > e.now {
			e.now = ps.busyUntil
		}
	}
	return e.exitVal, e.now, e.err
}

func (e *Engine) runSequential() {
	s := e.shards[0]
	for len(s.events) > 0 && !e.stopFlag.Load() {
		ev := heap.Pop(&s.events).(event)
		s.now = ev.at
		s.curKey = ordKey{at: ev.at, kind: ev.kind, key: ev.key}
		s.eventCount++
		if e.opts.MaxEvents > 0 && s.eventCount > e.opts.MaxEvents {
			e.offerErr(s.curKey, fmt.Errorf("sim: event budget %d exhausted at t=%v", e.opts.MaxEvents, s.now))
			break
		}
		if e.opts.MaxVirtual > 0 && s.now > e.opts.MaxVirtual {
			e.offerErr(s.curKey, fmt.Errorf("sim: virtual time bound %v exceeded", e.opts.MaxVirtual))
			break
		}
		s.dispatch(ev)
	}
}

func (s *shard) dispatch(ev event) {
	switch ev.kind {
	case evDeliver:
		s.deliver(ev)
	case evExec:
		s.exec(ev)
	}
}

func (s *shard) deliver(ev event) {
	s.frameCount++
	e := s.eng
	ps := e.pes[ev.pe]
	if ev.m.Kind == core.KindBundle {
		// A bundle's messages share the arrival instant; enqueue in order.
		for _, sub := range core.BundleMessages(ev.m) {
			sub.EnqueuedAt = s.now
			ps.q.Push(sub)
			s.record(trace.Event{PE: int(ev.pe), Kind: trace.EvEnqueue, At: s.now, MsgID: sub.ID, Parent: sub.Parent, MsgKind: byte(sub.Kind), Arg1: int64(sub.SrcPE)})
		}
	} else {
		ev.m.EnqueuedAt = s.now
		ps.q.Push(ev.m)
		s.record(trace.Event{PE: int(ev.pe), Kind: trace.EvEnqueue, At: s.now, MsgID: ev.m.ID, Parent: ev.m.Parent, MsgKind: byte(ev.m.Kind), Arg1: int64(ev.m.SrcPE)})
	}
	if !ps.execPending {
		at := s.now
		if ps.busyUntil > at {
			at = ps.busyUntil
		}
		ps.execPending = true
		s.push(event{at: at, key: uint64(ev.pe), kind: evExec, pe: ev.pe})
	}
}

func (s *shard) exec(ev event) {
	e := s.eng
	ps := e.pes[ev.pe]
	ps.execPending = false
	m := ps.q.TryPop()
	if m == nil {
		return
	}
	s.inHandler = true
	s.curPE = ps.id
	s.execStart = s.now
	s.charged = 0
	s.curMsg = m.ID
	s.record(trace.Event{PE: ps.id, Kind: trace.EvBegin, At: s.now, MsgID: m.ID, MsgKind: byte(m.Kind), Arg1: int64(m.To.Array), Arg2: int64(m.To.Index)})

	var err error
	switch m.Kind {
	case core.KindApp:
		err = ps.host.DeliverApp(m)
	case core.KindStart:
		ps.host.RunStart(e.prog)
	case core.KindReduce:
		err = ps.reduce.HandlePartial(m)
	case core.KindLB:
		if ps.lb == nil {
			err = fmt.Errorf("sim: PE %d received LB message without LB config", ps.id)
		} else {
			err = ps.lb.Handle(m)
		}
	default:
		err = fmt.Errorf("sim: PE %d received unknown message kind %d", ps.id, m.Kind)
	}

	cost := s.charged
	s.inHandler = false
	s.curMsg = 0
	if m.Kind == core.KindApp {
		ps.host.AddLoad(m.To, cost)
	}
	ps.busyUntil = s.now + cost
	ps.busyTotal += cost
	ps.processed++
	if ps.pending != nil && !ps.pending.Empty() {
		// Bundled messages leave when the handler completes.
		for _, group := range ps.pending.Drain() {
			s.transmit(core.MakeBundle(group), ps.busyUntil, ps.id)
		}
	}
	s.record(trace.Event{PE: ps.id, Kind: trace.EvEnd, At: ps.busyUntil, MsgID: m.ID, MsgKind: byte(m.Kind)})
	if err != nil {
		e.offerErr(s.curKey, err)
		return
	}
	if ps.q.Len() > 0 {
		ps.execPending = true
		s.push(event{at: ps.busyUntil, key: uint64(ps.id), kind: evExec, pe: int32(ps.id)})
	}
}

// Checkpoint snapshots all array elements (including PUP-packed cold
// ones). It must be called after Run has returned. After a parallel run
// that ended via ExitWith, element state on other shards may include
// effects of events that were rewound (clocks, counters, and traces are
// exact; chare memory is not rolled back) — checkpoint at natural
// quiescence, or from the sequential engine, when that matters.
func (e *Engine) Checkpoint() (*core.Checkpoint, error) {
	hosts := make([]*core.PEHost, len(e.pes))
	for i, ps := range e.pes {
		hosts[i] = ps.host
	}
	return core.BuildCheckpoint(e.prog, hosts)
}

// Stats ----------------------------------------------------------------------

// Stats summarizes a completed run.
type Stats struct {
	VirtualTime time.Duration   // final virtual clock
	Events      int64           // events processed
	Messages    int64           // messages routed
	Frames      int64           // transport frames delivered (bundles count once)
	PEBusy      []time.Duration // charged execution time per PE
	Processed   []int64         // handlers executed per PE

	Shards    int           // event shards (1 = sequential)
	Workers   int           // worker goroutines (1 = sequential)
	Lookahead time.Duration // synchronization window (0 = sequential)

	ColdPacks    int64 // cold-store pack operations (PackCold runs)
	ColdHydrates int64 // cold-store hydrate operations
	ColdBytes    int64 // high-water mark of packed cold bytes, summed over PEs
}

// Stats reports run statistics; call after Run.
func (e *Engine) Stats() Stats {
	s := Stats{
		VirtualTime: e.now,
		PEBusy:      make([]time.Duration, len(e.pes)),
		Processed:   make([]int64, len(e.pes)),
		Shards:      len(e.shards),
		Workers:     e.workers,
		Lookahead:   e.lookahead,
	}
	for _, sh := range e.shards {
		s.Events += sh.eventCount
		s.Messages += sh.msgCount
		s.Frames += sh.frameCount
	}
	for i, ps := range e.pes {
		s.PEBusy[i] = ps.busyTotal
		s.Processed[i] = ps.processed
		if e.opts.PackCold > 0 {
			_, _, packs, hydrates, maxBytes := ps.host.ColdStats()
			s.ColdPacks += packs
			s.ColdHydrates += hydrates
			s.ColdBytes += maxBytes
		}
	}
	return s
}

// Utilization reports the mean busy fraction across PEs at the final
// virtual time.
func (s Stats) Utilization() float64 {
	if s.VirtualTime <= 0 || len(s.PEBusy) == 0 {
		return 0
	}
	var sum time.Duration
	for _, b := range s.PEBusy {
		sum += b
	}
	return float64(sum) / float64(s.VirtualTime) / float64(len(s.PEBusy))
}
