// Package sim is GridMDO's virtual-time executor: a deterministic,
// sequential discrete-event simulator that runs unmodified core.Programs
// against a modeled machine. It plays the role Charm++'s BigSim emulator
// plays for the real Charm++ runtime — handlers execute real Go code (so
// application numerics are exact), but time advances according to a cost
// model: handlers charge modeled execution time via Ctx.Charge, and
// message delivery times come from the topology's link model
// (per-message overhead + latency + size/bandwidth).
//
// Because the simulated machine's speed is configured rather than
// inherited from the host, the engine reproduces the paper's 2–64
// Itanium-processor experiments faithfully on any development machine,
// and two runs of the same program are event-for-event identical.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Trace, if non-nil, receives events stamped with virtual time.
	Trace *trace.Tracer

	// PrioritizeWAN applies the paper's §6 cross-cluster priority policy.
	PrioritizeWAN bool

	// Bundle combines each handler's default-priority application
	// messages per destination PE into one modeled frame, paying the
	// per-message link overhead once (see core/bundle.go).
	Bundle bool

	// MaxVirtual aborts runs whose virtual clock passes this bound
	// (guards against runaway programs). Zero means no bound.
	MaxVirtual time.Duration

	// MaxEvents aborts runs that process more than this many events.
	// Zero means no bound.
	MaxEvents int64
}

type evKind uint8

const (
	evDeliver evKind = iota // message arrives at a PE's queue
	evExec                  // PE begins executing its next queued message
)

type event struct {
	at   time.Duration
	seq  uint64
	kind evKind
	pe   int32
	m    *core.Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type simPE struct {
	id          int
	q           *core.Queue
	host        *core.PEHost
	reduce      *core.ReduceMgr
	lb          *core.LBMgr
	busyUntil   time.Duration
	execPending bool
	busyTotal   time.Duration
	processed   int64
	pending     *core.PendingBundles
}

// Engine is the virtual-time executor. It implements core.Backend. An
// Engine runs in a single goroutine; none of its methods are safe for
// concurrent use.
type Engine struct {
	topo *topology.Topology
	prog *core.Program
	opts Options
	loc  *core.Locations
	pes  []*simPE

	events eventHeap
	seq    uint64
	now    time.Duration

	// current handler execution state
	inHandler bool
	curPE     int
	execStart time.Duration
	charged   time.Duration
	curMsg    uint64 // causal ID of the message being executed (0 between)

	// msgSeq assigns causal trace IDs at routing time (single-threaded,
	// so a plain counter suffices; node 0 namespace).
	msgSeq uint64

	exited  bool
	exitVal any
	err     error

	eventCount int64
	msgCount   int64
	frameCount int64
}

// New builds a virtual-time engine for prog on topo.
func New(topo *topology.Topology, prog *core.Program, opts Options) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		topo: topo,
		prog: prog,
		opts: opts,
		loc:  core.NewLocations(prog, topo.NumPE()),
	}
	e.pes = make([]*simPE, topo.NumPE())
	for pe := 0; pe < topo.NumPE(); pe++ {
		ps := &simPE{id: pe, q: core.NewQueue()}
		if opts.Bundle {
			ps.pending = core.NewPendingBundles()
		}
		ps.host = core.NewPEHost(e, pe)
		pe := pe
		ps.reduce = core.NewReduceMgr(pe,
			func(a core.ArrayID) int { return e.loc.LocalCount(a, pe) },
			func(a core.ArrayID) int { return e.prog.Arrays[a].N },
			e.Route,
			func(a core.ArrayID, seq int64, v any) { ps.host.RunReduction(e.prog, a, seq, v) },
		)
		if prog.LB != nil {
			ps.lb = core.NewLBMgr(pe, prog.LB, topo, e.loc, ps.host, prog, e.Route)
		}
		e.pes[pe] = ps
	}
	if err := core.ConstructElements(prog, e.loc, 0, topo.NumPE(), func(pe int) *core.PEHost {
		return e.pes[pe].host
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// Backend implementation ---------------------------------------------------

// Route implements core.Backend: deliveries are scheduled at
// send-time + link delay, where send time is the virtual instant within
// the running handler at which the send occurs (execution start plus time
// charged so far).
func (e *Engine) Route(m *core.Message) {
	if m.Kind == core.KindApp {
		m.DstPE = e.loc.PEOf(m.To)
	}
	if e.opts.PrioritizeWAN && m.Prio == 0 && e.topo.CrossesWAN(int(m.SrcPE), int(m.DstPE)) {
		m.Prio = -1
	}
	e.msgCount++
	if m.ID == 0 {
		e.msgSeq++
		m.ID = e.msgSeq
	}
	if m.Parent == 0 && e.inHandler {
		m.Parent = e.curMsg
	}
	e.opts.Trace.Record(trace.Event{PE: int(m.SrcPE), Kind: trace.EvSend, At: e.Now(), MsgID: m.ID, Parent: m.Parent, MsgKind: byte(m.Kind), Arg1: int64(m.DstPE), Arg2: int64(m.Bytes)})
	if e.opts.Bundle && core.BundleEligible(m) && e.inHandler {
		// Held until the running handler completes; exec flushes the
		// per-destination groups as single modeled frames. The sender pays
		// full per-frame CPU only for the first message to a destination;
		// later messages into the same bundle cost a quarter (marshal
		// without the frame setup).
		pend := e.pes[e.curPE].pending
		cpu := e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE)).SendCPU
		if pend.Has(m.DstPE) {
			cpu /= 4
		}
		e.Charge(cpu)
		pend.Add(m)
		return
	}
	if e.inHandler {
		e.Charge(e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE)).SendCPU)
	}
	e.transmit(m, e.Now())
}

// transmit schedules a resolved message's delivery at sendAt plus the
// link's modeled delay.
func (e *Engine) transmit(m *core.Message, sendAt time.Duration) {
	link := e.topo.LinkBetween(int(m.SrcPE), int(m.DstPE))
	e.push(event{at: sendAt + link.Delay(m.Bytes), kind: evDeliver, pe: m.DstPE, m: m})
}

// Now implements core.Backend: virtual time at the current execution
// point.
func (e *Engine) Now() time.Duration {
	if e.inHandler {
		return e.execStart + e.charged
	}
	return e.now
}

// Charge implements core.Backend: modeled execution time accumulates into
// the running handler and advances the PE's clock when it completes.
// Charged durations are expressed for the reference machine and scaled by
// the executing PE's speed factor, so heterogeneous clusters run the same
// application code at different rates.
func (e *Engine) Charge(d time.Duration) {
	if e.inHandler && d > 0 {
		if s := e.topo.PESpeed(e.curPE); s != 1 {
			d = time.Duration(float64(d) / s)
		}
		e.charged += d
	}
}

// NumPE implements core.Backend.
func (e *Engine) NumPE() int { return e.topo.NumPE() }

// Topo implements core.Backend.
func (e *Engine) Topo() *topology.Topology { return e.topo }

// ArrayN implements core.Backend.
func (e *Engine) ArrayN(a core.ArrayID) int { return e.prog.Arrays[a].N }

// ExitWith implements core.Backend.
func (e *Engine) ExitWith(v any) {
	if !e.exited {
		e.exited = true
		e.exitVal = v
	}
}

// Contribute implements core.Backend.
func (e *Engine) Contribute(_ core.ElemRef, pe int, a core.ArrayID, seq int64, v any, op core.ReduceOp) {
	e.pes[pe].reduce.Contribute(a, seq, v, op)
}

// AtSync implements core.Backend.
func (e *Engine) AtSync(_ core.ElemRef, pe int) {
	if e.pes[pe].lb == nil {
		panic("sim: AtSync without an LB configuration")
	}
	e.pes[pe].lb.ElementAtSync()
}

// Record implements core.Backend: events from libraries and applications
// (step marks, AMPI block/wake) land in the same tracer as scheduler
// events, stamped with virtual time by the caller.
func (e *Engine) Record(ev trace.Event) { e.opts.Trace.Record(ev) }

// Event loop ----------------------------------------------------------------

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// Run executes the program to completion: until ExitWith is called or no
// events remain (natural quiescence). It returns the exit value and the
// virtual time at which the run ended.
func (e *Engine) Run() (any, time.Duration, error) {
	e.msgSeq++
	e.push(event{at: 0, kind: evDeliver, pe: 0, m: &core.Message{Kind: core.KindStart, ID: e.msgSeq}})
	for len(e.events) > 0 && !e.exited && e.err == nil {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.eventCount++
		if e.opts.MaxEvents > 0 && e.eventCount > e.opts.MaxEvents {
			e.err = fmt.Errorf("sim: event budget %d exhausted at t=%v", e.opts.MaxEvents, e.now)
			break
		}
		if e.opts.MaxVirtual > 0 && e.now > e.opts.MaxVirtual {
			e.err = fmt.Errorf("sim: virtual time bound %v exceeded", e.opts.MaxVirtual)
			break
		}
		switch ev.kind {
		case evDeliver:
			e.deliver(ev)
		case evExec:
			e.exec(ev)
		}
	}
	// The run ends when the last handler's charged time elapses, which may
	// be after the final event was dequeued.
	for _, ps := range e.pes {
		if ps.busyUntil > e.now {
			e.now = ps.busyUntil
		}
	}
	return e.exitVal, e.now, e.err
}

func (e *Engine) deliver(ev event) {
	e.frameCount++
	ps := e.pes[ev.pe]
	if ev.m.Kind == core.KindBundle {
		// A bundle's messages share the arrival instant; enqueue in order.
		for _, sub := range core.BundleMessages(ev.m) {
			sub.EnqueuedAt = e.now
			ps.q.Push(sub)
			e.opts.Trace.Record(trace.Event{PE: int(ev.pe), Kind: trace.EvEnqueue, At: e.now, MsgID: sub.ID, Parent: sub.Parent, MsgKind: byte(sub.Kind), Arg1: int64(sub.SrcPE)})
		}
	} else {
		ev.m.EnqueuedAt = e.now
		ps.q.Push(ev.m)
		e.opts.Trace.Record(trace.Event{PE: int(ev.pe), Kind: trace.EvEnqueue, At: e.now, MsgID: ev.m.ID, Parent: ev.m.Parent, MsgKind: byte(ev.m.Kind), Arg1: int64(ev.m.SrcPE)})
	}
	if !ps.execPending {
		at := e.now
		if ps.busyUntil > at {
			at = ps.busyUntil
		}
		ps.execPending = true
		e.push(event{at: at, kind: evExec, pe: ev.pe})
	}
}

func (e *Engine) exec(ev event) {
	ps := e.pes[ev.pe]
	ps.execPending = false
	m := ps.q.TryPop()
	if m == nil {
		return
	}
	e.inHandler = true
	e.curPE = ps.id
	e.execStart = e.now
	e.charged = 0
	e.curMsg = m.ID
	e.opts.Trace.Record(trace.Event{PE: ps.id, Kind: trace.EvBegin, At: e.now, MsgID: m.ID, MsgKind: byte(m.Kind), Arg1: int64(m.To.Array), Arg2: int64(m.To.Index)})

	var err error
	switch m.Kind {
	case core.KindApp:
		err = ps.host.DeliverApp(m)
	case core.KindStart:
		ps.host.RunStart(e.prog)
	case core.KindReduce:
		err = ps.reduce.HandlePartial(m)
	case core.KindLB:
		if ps.lb == nil {
			err = fmt.Errorf("sim: PE %d received LB message without LB config", ps.id)
		} else {
			err = ps.lb.Handle(m)
		}
	default:
		err = fmt.Errorf("sim: PE %d received unknown message kind %d", ps.id, m.Kind)
	}

	cost := e.charged
	e.inHandler = false
	e.curMsg = 0
	if m.Kind == core.KindApp {
		ps.host.AddLoad(m.To, cost)
	}
	ps.busyUntil = e.now + cost
	ps.busyTotal += cost
	ps.processed++
	if ps.pending != nil && !ps.pending.Empty() {
		// Bundled messages leave when the handler completes.
		for _, group := range ps.pending.Drain() {
			e.transmit(core.MakeBundle(group), ps.busyUntil)
		}
	}
	e.opts.Trace.Record(trace.Event{PE: ps.id, Kind: trace.EvEnd, At: ps.busyUntil, MsgID: m.ID, MsgKind: byte(m.Kind)})
	if err != nil {
		e.err = err
		return
	}
	if ps.q.Len() > 0 {
		ps.execPending = true
		e.push(event{at: ps.busyUntil, kind: evExec, pe: int32(ps.id)})
	}
}

// Checkpoint snapshots all array elements. It must be called after Run
// has returned (a quiescent point).
func (e *Engine) Checkpoint() (*core.Checkpoint, error) {
	hosts := make([]*core.PEHost, len(e.pes))
	for i, ps := range e.pes {
		hosts[i] = ps.host
	}
	return core.BuildCheckpoint(e.prog, hosts)
}

// Stats ----------------------------------------------------------------------

// Stats summarizes a completed run.
type Stats struct {
	VirtualTime time.Duration   // final virtual clock
	Events      int64           // events processed
	Messages    int64           // messages routed
	Frames      int64           // transport frames delivered (bundles count once)
	PEBusy      []time.Duration // charged execution time per PE
	Processed   []int64         // handlers executed per PE
}

// Stats reports run statistics; call after Run.
func (e *Engine) Stats() Stats {
	s := Stats{
		VirtualTime: e.now,
		Events:      e.eventCount,
		Messages:    e.msgCount,
		Frames:      e.frameCount,
		PEBusy:      make([]time.Duration, len(e.pes)),
		Processed:   make([]int64, len(e.pes)),
	}
	for i, ps := range e.pes {
		s.PEBusy[i] = ps.busyTotal
		s.Processed[i] = ps.processed
	}
	return s
}

// Utilization reports the mean busy fraction across PEs at the final
// virtual time.
func (s Stats) Utilization() float64 {
	if s.VirtualTime <= 0 || len(s.PEBusy) == 0 {
		return 0
	}
	var sum time.Duration
	for _, b := range s.PEBusy {
		sum += b
	}
	return float64(sum) / float64(s.VirtualTime) / float64(len(s.PEBusy))
}
