package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

// Cross-executor conformance: a randomly generated (but deterministic,
// per seed) message-driven program must produce identical observable
// results — handler invocation counts per element and the final reduction
// value — on the virtual-time engine and on the real-time runtime. This
// pins the shared semantics the whole reproduction rests on: the two
// executors may schedule differently in time, but never in effect.

// confChare forwards tokens around a seeded pseudo-random graph. Each
// token carries a hop budget; on arrival the chare burns one hop,
// accumulates a value, and forwards to a seed-determined next element.
// When a token dies the chare contributes its accumulated value.
type confChare struct {
	n       int
	idx     int
	acc     float64
	tokens  int // tokens this element must see die before contributing
	deaths  int
	counter *invocationCounter
}

type invocationCounter struct {
	mu     sync.Mutex
	counts map[int]int
}

func (ic *invocationCounter) bump(idx int) {
	ic.mu.Lock()
	ic.counts[idx]++
	ic.mu.Unlock()
}

type confToken struct {
	Hops int
	Rng  int64 // evolving per-token seed: next destination = f(Rng)
	Val  float64
}

func (c *confChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	if entry == 1 {
		// No token dies here: contribute the (possibly zero) pass-through
		// accumulation right away.
		ctx.Contribute(c.acc, core.OpSum)
		return
	}
	c.counter.bump(c.idx)
	t := data.(confToken)
	if t.Hops <= 0 {
		// Only terminal values accumulate: pass-through contributions
		// would race with the entry-1 kick and differ across executors.
		c.acc += t.Val
		c.deaths++
		if c.deaths == c.tokens {
			ctx.Contribute(c.acc, core.OpSum)
		}
		return
	}
	// Deterministic next hop and value evolution.
	next := int(uint64(t.Rng) % uint64(c.n))
	ctx.Send(core.ElemRef{Array: 0, Index: next}, 0, confToken{
		Hops: t.Hops - 1,
		Rng:  t.Rng*6364136223846793005 + 1442695040888963407,
		Val:  t.Val * 0.99,
	}, core.WithPrio(int32(t.Rng%3-1)))
}

// buildConformance creates the program for a seed. Token death counts per
// element are precomputed by replaying the deterministic walk.
func buildConformance(seed int64, n, tokens, hops int, counter *invocationCounter) *core.Program {
	// Replay the walks to know how many tokens die at each element.
	deaths := make(map[int]int)
	rng := rand.New(rand.NewSource(seed))
	starts := make([]confToken, tokens)
	startIdx := make([]int, tokens)
	for i := range starts {
		starts[i] = confToken{Hops: hops, Rng: rng.Int63(), Val: 1}
		startIdx[i] = rng.Intn(n)
	}
	for i, t := range starts {
		cur := startIdx[i]
		for t.Hops > 0 {
			cur = int(uint64(t.Rng) % uint64(n))
			t.Rng = t.Rng*6364136223846793005 + 1442695040888963407
			t.Hops--
		}
		deaths[cur]++
	}
	return &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare {
				return &confChare{n: n, idx: i, tokens: deaths[i], counter: counter}
			},
		}},
		Start: func(ctx *core.Ctx) {
			for i := range starts {
				ctx.Send(core.ElemRef{Array: 0, Index: startIdx[i]}, 0, starts[i])
			}
			// Elements where no token dies contribute immediately.
			for i := 0; i < n; i++ {
				if deaths[i] == 0 {
					ctx.Send(core.ElemRef{Array: 0, Index: i}, 1, nil)
				}
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			ctx.ExitWith(v)
		},
	}
}

func TestCrossExecutorConformance(t *testing.T) {
	for _, bundle := range []bool{false, true} {
		for _, seed := range []int64{1, 7, 42, 1234} {
			bundle, seed := bundle, seed
			t.Run(fmt.Sprintf("bundle=%v/seed=%d", bundle, seed), func(t *testing.T) {
				runConformance(t, seed, bundle)
			})
		}
	}
}

// rtOpts maps the table's bundle flag onto real-time runtime options.
func rtOpts(bundle bool) []core.Option {
	if bundle {
		return []core.Option{core.WithBundling()}
	}
	return nil
}

func runConformance(t *testing.T, seed int64, bundle bool) {
	const n, tokens, hops = 24, 10, 60
	topo, err := topology.TwoClusters(6, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	simCounter := &invocationCounter{counts: make(map[int]int)}
	e, err := New(topo, buildConformance(seed, n, tokens, hops, simCounter), Options{MaxEvents: 10_000_000, Bundle: bundle})
	if err != nil {
		t.Fatal(err)
	}
	simV, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	rtCounter := &invocationCounter{counts: make(map[int]int)}
	rt, err := core.NewRuntime(topo, buildConformance(seed, n, tokens, hops, rtCounter), rtOpts(bundle)...)
	if err != nil {
		t.Fatal(err)
	}
	rtV, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The reduction value must agree (sum of token value decay is
	// order-independent up to float association; the walks are
	// identical, so the per-element sums are identical too).
	sv, rv := simV.(float64), rtV.(float64)
	if diff := sv - rv; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reduction differs: sim=%v realtime=%v", sv, rv)
	}
	// Handler invocation counts per element must match exactly.
	for i := 0; i < n; i++ {
		if simCounter.counts[i] != rtCounter.counts[i] {
			t.Errorf("element %d: sim %d invocations, realtime %d",
				i, simCounter.counts[i], rtCounter.counts[i])
		}
	}
}
