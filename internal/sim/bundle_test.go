package sim

import (
	"sync"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
)

// TestBundlingPreservesStencilNumerics: with bundling on, the parallel
// stencil still matches the sequential reference bit-for-bit.
func TestBundlingPreservesStencilNumerics(t *testing.T) {
	const W, H, steps = 32, 24, 7
	grid := make([]float64, W*H)
	var mu sync.Mutex
	p := &stencil.Params{
		Width: W, Height: H, VX: 4, VY: 3, Steps: steps,
		Collect: func(bx, by, x0, y0, w, h int, vals []float64) {
			mu.Lock()
			defer mu.Unlock()
			for y := 0; y < h; y++ {
				copy(grid[(y0+y)*W+x0:(y0+y)*W+x0+w], vals[y*w:(y+1)*w])
			}
		},
	}
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(topo, prog, Options{Bundle: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := stencil.RunSequential(W, H, steps)
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid[%d] = %v, want %v under bundling", i, grid[i], want[i])
		}
	}
}

// TestBundlingReducesLeanMDOverhead: a LeanMD cell multicasts 27
// coordinate messages per step, landing on few PEs — bundling pays the
// per-message link overhead once per destination and must lower the
// virtual per-step time (and never change the physics).
func TestBundlingReducesLeanMDOverhead(t *testing.T) {
	run := func(bundle bool) (*leanmd.Result, map[int][]leanmd.Vec3, Stats) {
		p := leanmd.DefaultParams()
		p.NX, p.NY, p.NZ = 3, 3, 3
		p.AtomsPerCell = 6
		p.Steps, p.Warmup = 6, 2
		p.Model = leanmd.DefaultModel()
		final := make(map[int][]leanmd.Vec3)
		p.Collect = func(cell int, pos, vel []leanmd.Vec3) { final[cell] = pos }
		prog, _, err := leanmd.BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		// Per-message sender CPU is what bundling amortizes; give the
		// links explicit software costs.
		topo, err := topology.TwoClusters(4, 1725*time.Microsecond,
			topology.WithIntraLink(topology.Link{
				Overhead: topology.DefaultIntraOverhead, Bandwidth: topology.DefaultIntraBandwidth,
				SendCPU: 5 * time.Microsecond,
			}),
			topology.WithInterLink(topology.Link{
				Latency:  1725 * time.Microsecond,
				Overhead: topology.DefaultInterOverhead, Bandwidth: topology.DefaultInterBandwidth,
				SendCPU: 25 * time.Microsecond,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(topo, prog, Options{Bundle: bundle, MaxEvents: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return v.(*leanmd.Result), final, e.Stats()
	}
	off, posOff, statsOff := run(false)
	on, posOn, statsOn := run(true)

	// The win bundling always delivers: far fewer transport frames (each
	// cell's 27 coordinate messages collapse to one frame per destination
	// PE). Whether that moves the per-step time depends on how
	// messaging-bound the workload is; here pair compute dominates, so we
	// assert the frame reduction and that timing is not worsened.
	if statsOn.Frames >= statsOff.Frames {
		t.Errorf("bundling did not reduce frame count: %d vs %d", statsOn.Frames, statsOff.Frames)
	}
	if statsOn.Messages != statsOff.Messages {
		t.Errorf("bundling changed the message count: %d vs %d", statsOn.Messages, statsOff.Messages)
	}
	if float64(on.PerStep) > 1.05*float64(off.PerStep) {
		t.Errorf("bundling worsened per-step: %v (on) vs %v (off)", on.PerStep, off.PerStep)
	}
	// Physics identical: same messages in the same per-step rounds, only
	// packed differently on the wire.
	for c, ps := range posOff {
		for i := range ps {
			if posOn[c][i] != ps[i] {
				t.Fatalf("cell %d atom %d position differs under bundling", c, i)
			}
		}
	}
	if on.EFinal != off.EFinal {
		t.Errorf("final energy differs: %v vs %v", on.EFinal, off.EFinal)
	}
}

// TestBundlingConformance reuses the cross-executor harness with bundling
// enabled on the real-time side too.
func TestBundlingRealtimeChecksum(t *testing.T) {
	const W, H, steps = 24, 24, 5
	p := &stencil.Params{Width: W, Height: H, VX: 4, VY: 4, Steps: steps}
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog, core.WithBundling())
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*stencil.Result).Checksum
	want := stencil.Checksum(stencil.RunSequential(W, H, steps))
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("realtime bundled checksum %v, want %v", got, want)
	}
}
