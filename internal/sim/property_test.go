package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// Engine invariants, checked over randomly generated programs:
//
//  1. per-PE charged busy time never exceeds the final virtual clock;
//  2. handler begin times are non-decreasing per PE (a PE executes one
//     thing at a time, in order);
//  3. no message is delivered before its send time plus the minimum link
//     latency for its (src, dst) class;
//  4. the run is deterministic: re-running the same seed reproduces the
//     exact Stats.
func TestEngineInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pes := 2 * (1 + rng.Intn(3))
		n := pes + rng.Intn(3*pes)
		lat := time.Duration(rng.Intn(8)) * time.Millisecond
		hops := 1 + rng.Intn(40)

		topo, err := topology.TwoClusters(pes, lat)
		if err != nil {
			return false
		}
		build := func() *core.Program {
			return &core.Program{
				Arrays: []core.ArraySpec{{
					ID: 0, N: n,
					New: func(i int) core.Chare {
						r := rand.New(rand.NewSource(seed ^ int64(i)))
						return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
							h := d.(int)
							ctx.Charge(time.Duration(r.Intn(500)) * time.Microsecond)
							if h > 0 {
								ctx.Send(core.ElemRef{Array: 0, Index: r.Intn(n)}, 0, h-1,
									core.WithBytes(r.Intn(4096)))
							}
						})
					},
				}},
				Start: func(ctx *core.Ctx) {
					for i := 0; i < pes; i++ {
						ctx.Send(core.ElemRef{Array: 0, Index: i % n}, 0, hops)
					}
				},
			}
		}
		run := func() (Stats, bool) {
			e, err := New(topo, build(), Options{MaxEvents: 5_000_000})
			if err != nil {
				return Stats{}, false
			}
			if _, _, err := e.Run(); err != nil {
				return Stats{}, false
			}
			return e.Stats(), true
		}
		s1, ok := run()
		if !ok {
			return false
		}
		// (1) busy <= virtual time per PE.
		for _, b := range s1.PEBusy {
			if b > s1.VirtualTime {
				return false
			}
		}
		// (4) determinism.
		s2, ok := run()
		if !ok {
			return false
		}
		if s1.VirtualTime != s2.VirtualTime || s1.Events != s2.Events ||
			s1.Messages != s2.Messages || s1.Frames != s2.Frames {
			return false
		}
		for i := range s1.PEBusy {
			if s1.PEBusy[i] != s2.PEBusy[i] || s1.Processed[i] != s2.Processed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHandlerBeginMonotonePerPE checks invariant (2) with tracing, and
// (3) for the WAN latency floor, on one representative random program.
func TestHandlerBeginMonotonePerPE(t *testing.T) {
	const pes, n = 4, 12
	lat := 3 * time.Millisecond
	topo, err := topology.TwoClusters(pes, lat)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(pes)
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare {
				r := rand.New(rand.NewSource(int64(i)))
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					h := d.(int)
					ctx.Charge(200 * time.Microsecond)
					if h > 0 {
						ctx.Send(core.ElemRef{Array: 0, Index: r.Intn(n)}, 0, h-1)
					}
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 50)
			ctx.Send(core.ElemRef{Array: 0, Index: n - 1}, 0, 50)
		},
	}
	e, err := New(topo, prog, Options{Trace: tr, MaxEvents: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	last := make([]time.Duration, pes)
	for i := range last {
		last[i] = -1
	}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvBegin {
			if ev.At < last[ev.PE] {
				t.Fatalf("PE %d handler began at %v after one at %v", ev.PE, ev.At, last[ev.PE])
			}
			last[ev.PE] = ev.At
		}
	}
}
