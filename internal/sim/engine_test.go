package sim

import (
	"reflect"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

type funcChare func(ctx *core.Ctx, entry core.EntryID, data any)

func (f funcChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) { f(ctx, entry, data) }

// PUP implements core.Migratable with no state, so LB tests can migrate
// funcChare elements (the handler itself rebuilds from the constructor).
func (f funcChare) PUP(*core.PUP) {}

// cleanTopo builds a two-cluster topology with exactly-L inter-cluster
// latency and no overhead/bandwidth terms, so tests can assert exact
// virtual times.
func cleanTopo(t *testing.T, p int, l time.Duration) *topology.Topology {
	t.Helper()
	topo, err := topology.TwoClusters(p, l,
		topology.WithIntraLink(topology.Link{}),
		topology.WithInterLink(topology.Link{Latency: l}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestVirtualTimePingPongExact(t *testing.T) {
	const rounds = 3
	const lat = 5 * time.Millisecond
	const work = time.Millisecond
	topo := cleanTopo(t, 2, lat)

	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, entry core.EntryID, data any) {
					n := data.(int)
					if n >= 2*rounds {
						ctx.ExitWith(ctx.Time())
						return
					}
					ctx.Charge(work)
					ctx.Send(core.ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n+1)
				})
			},
		}},
		Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 0) },
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Start→elem0 over the self link (1µs), then 2*rounds hops of
	// (1ms work + 5ms flight).
	want := time.Microsecond + 2*rounds*(work+lat)
	if got := v.(time.Duration); got != want {
		t.Errorf("exit virtual time = %v, want %v", got, want)
	}
	if final != want {
		t.Errorf("final clock = %v, want %v", final, want)
	}
}

// TestOverlapMasksLatency verifies the paper's central mechanism: a PE
// waiting on a WAN round trip keeps executing other objects, so total time
// is max(local work, RTT), not their sum.
func TestOverlapMasksLatency(t *testing.T) {
	const lat = 10 * time.Millisecond
	const chainLen = 15 // 15 × 1ms of local work
	topo := cleanTopo(t, 2, lat)

	const (
		aMain      = 0 // coordinator element 0 on PE 0
		aWaiter    = 1
		aResponder = 2
		aWorker    = 3
	)
	done := 0
	prog := &core.Program{
		Arrays: []core.ArraySpec{
			{ID: aMain, N: 1, New: func(int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					done++
					if done == 2 {
						ctx.ExitWith(ctx.Time())
					}
				})
			}},
			{ID: aWaiter, N: 1, Map: func(int, int) int { return 0 }, New: func(int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					switch e {
					case 0: // kick: ask the remote responder
						ctx.Send(core.ElemRef{Array: aResponder, Index: 0}, 0, nil)
					case 1: // reply arrived
						ctx.Send(core.ElemRef{Array: aMain, Index: 0}, 0, nil)
					}
				})
			}},
			{ID: aResponder, N: 1, Map: func(int, int) int { return 1 }, New: func(int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Send(core.ElemRef{Array: aWaiter, Index: 0}, 1, nil)
				})
			}},
			{ID: aWorker, N: 1, Map: func(int, int) int { return 0 }, New: func(int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					n := d.(int)
					ctx.Charge(time.Millisecond)
					if n == chainLen {
						ctx.Send(core.ElemRef{Array: aMain, Index: 0}, 0, nil)
						return
					}
					ctx.Send(core.ElemRef{Array: aWorker, Index: 0}, 0, n+1)
				})
			}},
		},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: aWaiter, Index: 0}, 0, nil)
			ctx.Send(core.ElemRef{Array: aWorker, Index: 0}, 0, 1)
		},
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(time.Duration)
	rtt := 2 * lat
	sum := rtt + chainLen*time.Millisecond
	if got < rtt {
		t.Errorf("finished before the WAN round trip: %v < %v", got, rtt)
	}
	if got >= sum {
		t.Errorf("no overlap: %v >= serial time %v", got, sum)
	}
	// With perfect overlap the run ends just after the RTT.
	if got > rtt+2*time.Millisecond {
		t.Errorf("overlap imperfect: %v, want <= %v", got, rtt+2*time.Millisecond)
	}
}

func TestBandwidthModel(t *testing.T) {
	// 1 MB at 1 MB/s should take ~1s of virtual time.
	topo, err := topology.TwoClusters(2, 0,
		topology.WithIntraLink(topology.Link{}),
		topology.WithInterLink(topology.Link{Bandwidth: 1e6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.ExitWith(ctx.Time())
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: 0, Index: 1}, 0, nil, core.WithBytes(1_000_000))
		},
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(time.Duration); got != time.Second {
		t.Errorf("1MB over 1MB/s arrived at %v, want 1s", got)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 16,
				New: func(i int) core.Chare {
					return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
						n := d.(int)
						ctx.Charge(time.Duration(100+ctx.Elem().Index) * time.Microsecond)
						if n <= 0 {
							ctx.Contribute(float64(ctx.Elem().Index), core.OpSum)
							return
						}
						i := ctx.Elem().Index
						ctx.Send(core.ElemRef{Array: 0, Index: (i*7 + 3) % 16}, 0, n-1, core.WithPrio(int32(i%3-1)))
						ctx.Send(core.ElemRef{Array: 0, Index: (i*5 + 1) % 16}, 0, 0)
					})
				},
			}},
			Start: func(ctx *core.Ctx) {
				for i := 0; i < 16; i++ {
					ctx.Send(core.ElemRef{Array: 0, Index: i}, 0, 3)
				}
			},
		}
	}
	run := func() (time.Duration, Stats) {
		topo := cleanTopo(t, 8, 3*time.Millisecond)
		e, err := New(topo, build(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, final, err := e.Run(); err != nil {
			t.Fatal(err)
		} else {
			return final, e.Stats()
		}
		return 0, Stats{}
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Errorf("virtual end times differ: %v vs %v", t1, t2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ:\n%+v\n%+v", s1, s2)
	}
	if s1.Events == 0 || s1.Messages == 0 {
		t.Error("no activity recorded")
	}
}

func TestReductionInSim(t *testing.T) {
	topo := cleanTopo(t, 4, time.Millisecond)
	const n = 9
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Contribute(1.0, core.OpSum)
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, 0, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) { ctx.ExitWith(v) },
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != n {
		t.Errorf("reduction = %v, want %d", v, n)
	}
	// Partials from cluster 1 cross the WAN once: at least 1ms of virtual
	// time must have passed.
	if final < time.Millisecond {
		t.Errorf("reduction completed in %v, faster than the WAN latency", final)
	}
}

func TestNaturalQuiescence(t *testing.T) {
	topo := cleanTopo(t, 2, time.Millisecond)
	count := 0
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					count++
					if n := d.(int); n > 0 {
						ctx.Send(core.ElemRef{Array: 0, Index: 1 - ctx.Elem().Index}, 0, n-1)
					}
				})
			},
		}},
		Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, 6) },
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("exit value = %v without ExitWith", v)
	}
	if count != 7 {
		t.Errorf("handlers ran %d times, want 7", count)
	}
}

func TestEventBudgetGuard(t *testing.T) {
	topo := cleanTopo(t, 2, 0)
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 1,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil) // forever
				})
			},
		}},
		Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil) },
	}
	e, err := New(topo, prog, Options{MaxEvents: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err == nil {
		t.Error("runaway program not stopped by event budget")
	}

	e2, err := New(topo, &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 1,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Charge(time.Second)
					ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil)
				})
			},
		}},
		Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil) },
	}, Options{MaxVirtual: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.Run(); err == nil {
		t.Error("runaway program not stopped by virtual time bound")
	}
}

// moveAllTo mirrors the core test strategy.
type moveAllTo int

func (moveAllTo) Name() string { return "move-all" }
func (m moveAllTo) Plan(s *core.LBStats) []core.Move {
	var out []core.Move
	for _, el := range s.Elems {
		out = append(out, core.Move{Ref: el.Ref, ToPE: int(m)})
	}
	return out
}

func TestLoadBalancingInSim(t *testing.T) {
	topo := cleanTopo(t, 2, time.Millisecond)
	const n = 6
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					switch e {
					case 0:
						ctx.Charge(time.Duration(ctx.Elem().Index) * time.Millisecond)
						ctx.AtSync()
					case core.EntryResumeFromSync:
						ctx.Contribute(float64(ctx.PE()), core.OpSum)
					}
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, 0, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) { ctx.ExitWith(v) },
		LB:          &core.LBConfig{Arrays: []core.ArrayID{0}, Strategy: moveAllTo(0)},
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 0 {
		t.Errorf("post-LB PE sum = %v, want 0 (all on PE 0)", v)
	}
}

func TestStatsUtilization(t *testing.T) {
	topo := cleanTopo(t, 2, 0)
	ran := 0
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Charge(10 * time.Millisecond)
					if ran++; ran == 2 {
						ctx.ExitWith(nil)
					}
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil)
			ctx.Send(core.ElemRef{Array: 0, Index: 1}, 0, nil)
		},
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PEBusy[0] != 10*time.Millisecond || s.PEBusy[1] != 10*time.Millisecond {
		t.Errorf("PEBusy = %v", s.PEBusy)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if s.Processed[0] == 0 {
		t.Error("processed count missing")
	}
}
