package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gridmdo/internal/balance"
	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/stencil"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// The parallel engine's contract is bit-identical replay: same exit
// checksums, same virtual times, same statistics, same traces as the
// sequential engine, for any worker count. These tests sweep three
// topology-generator seeds × {stencil, taskfarm, leanmd} × several
// engine arms (worker counts, PUP-packed cold state), all with tracing
// enabled, and are run under -race by the sim-scale-smoke CI job.

// confApp builds a fresh program for one run and extracts the app
// checksum bits from the exit value.
type confApp struct {
	name  string
	build func(t *testing.T, numPE int) *core.Program
	sum   func(v any) uint64
}

func confApps() []confApp {
	return []confApp{
		{
			name: "stencil",
			build: func(t *testing.T, _ int) *core.Program {
				p := &stencil.Params{Width: 32, Height: 32, VX: 4, VY: 4, Steps: 5, Warmup: 1}
				prog, err := stencil.BuildProgram(p)
				if err != nil {
					t.Fatal(err)
				}
				return prog
			},
			sum: func(v any) uint64 { return math.Float64bits(v.(*stencil.Result).Checksum) },
		},
		{
			name: "taskfarm",
			build: func(t *testing.T, numPE int) *core.Program {
				p := &taskfarm.Params{
					Tasks: 160, Prefetch: 2, TaskCost: 200 * time.Microsecond,
					TaskBytes: 256, AssignCost: 5 * time.Microsecond,
					Shards: 2, Batch: 2, Steal: true, Seed: 11,
					CostSkew: 3,
				}
				prog, err := taskfarm.BuildProgramFor(p, numPE)
				if err != nil {
					t.Fatal(err)
				}
				return prog
			},
			sum: func(v any) uint64 { return v.(*taskfarm.Result).Checksum },
		},
		{
			name: "leanmd",
			build: func(t *testing.T, _ int) *core.Program {
				p := leanmd.DefaultParams()
				p.NX, p.NY, p.NZ = 2, 2, 2
				p.AtomsPerCell = 4
				p.Steps, p.Warmup = 4, 1
				p.Model = leanmd.DefaultModel()
				prog, _, err := leanmd.BuildProgram(p)
				if err != nil {
					t.Fatal(err)
				}
				return prog
			},
			sum: func(v any) uint64 { return math.Float64bits(v.(*leanmd.Result).EFinal) },
		},
	}
}

// Three generator seeds: a plain two-cluster pair, a heterogeneous
// latency mesh, and a hierarchical-WAN layout with slow clusters.
var confSpecs = []string{
	"2x4;wan=2ms",
	"4x2;wan=1ms;mesh=rand:5:500us:3ms",
	"2x3@0.5,2x1;wan=4ms;site=2:10ms",
}

type confRun struct {
	sum    uint64
	vt     time.Duration
	stats  Stats
	events []trace.Event
}

func runConf(t *testing.T, spec string, app confApp, opts Options, workers int) confRun {
	t.Helper()
	s, err := topology.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog := app.build(t, topo.NumPE())
	opts.Trace = trace.New(topo.NumPE())
	opts.MaxEvents = 50_000_000
	var e *Engine
	if workers == 0 {
		e, err = New(topo, prog, opts)
	} else {
		e, err = NewParallel(topo, prog, opts, workers)
	}
	if err != nil {
		t.Fatal(err)
	}
	v, vt, err := e.Run()
	if err != nil {
		t.Fatalf("%s on %q (workers=%d): %v", app.name, spec, workers, err)
	}
	return confRun{sum: app.sum(v), vt: vt, stats: e.Stats(), events: opts.Trace.Events()}
}

func compareConf(t *testing.T, label string, ref, got confRun) {
	t.Helper()
	if got.sum != ref.sum {
		t.Errorf("%s: checksum bits %#x, want %#x", label, got.sum, ref.sum)
	}
	if got.vt != ref.vt {
		t.Errorf("%s: virtual time %v, want %v", label, got.vt, ref.vt)
	}
	if got.stats.Events != ref.stats.Events || got.stats.Messages != ref.stats.Messages || got.stats.Frames != ref.stats.Frames {
		t.Errorf("%s: counters (events=%d msgs=%d frames=%d), want (%d %d %d)",
			label, got.stats.Events, got.stats.Messages, got.stats.Frames,
			ref.stats.Events, ref.stats.Messages, ref.stats.Frames)
	}
	if !reflect.DeepEqual(got.stats.PEBusy, ref.stats.PEBusy) {
		t.Errorf("%s: per-PE busy times differ", label)
	}
	if !reflect.DeepEqual(got.stats.Processed, ref.stats.Processed) {
		t.Errorf("%s: per-PE processed counts differ", label)
	}
	if !reflect.DeepEqual(got.events, ref.events) {
		n := len(got.events)
		if len(ref.events) < n {
			n = len(ref.events)
		}
		for i := 0; i < n; i++ {
			if got.events[i] != ref.events[i] {
				t.Errorf("%s: trace diverges at event %d: got %+v, want %+v", label, i, got.events[i], ref.events[i])
				return
			}
		}
		t.Errorf("%s: trace length %d, want %d", label, len(got.events), len(ref.events))
	}
}

// TestParallelConformance: every app × topology seed × worker count
// replays the sequential run bit-for-bit, traces included.
func TestParallelConformance(t *testing.T) {
	for _, app := range confApps() {
		for _, spec := range confSpecs {
			ref := runConf(t, spec, app, Options{}, 0)
			for _, workers := range []int{1, 2, 4} {
				got := runConf(t, spec, app, Options{}, workers)
				compareConf(t, app.name+"/"+spec+"/par"+string(rune('0'+workers)), ref, got)
			}
		}
	}
}

// TestParallelConformanceColdState: PUP-packing cold chare state between
// events changes memory residency, never results — sequential and
// parallel cold-store runs both match the plain sequential reference.
// stencil and leanmd are excluded: their chares buffer in-flight ghosts
// and reduction coordinates between steps, and their PUP methods
// correctly refuse to pack that transient state mid-run.
func TestParallelConformanceColdState(t *testing.T) {
	for _, app := range confApps() {
		if app.name == "leanmd" || app.name == "stencil" {
			continue
		}
		spec := confSpecs[0]
		ref := runConf(t, spec, app, Options{}, 0)
		seqCold := runConf(t, spec, app, Options{PackCold: 1}, 0)
		compareConf(t, app.name+"/seq-cold", ref, seqCold)
		if seqCold.stats.ColdPacks == 0 {
			t.Errorf("%s: cold store enabled but never packed", app.name)
		}
		parCold := runConf(t, spec, app, Options{PackCold: 1}, 4)
		compareConf(t, app.name+"/par-cold", ref, parCold)
	}
}

// TestParallelConformancePolicies: the paper's WAN-priority and bundling
// policies ride through the parallel engine unchanged.
func TestParallelConformancePolicies(t *testing.T) {
	for _, opts := range []Options{{PrioritizeWAN: true}, {Bundle: true}} {
		for _, app := range confApps() {
			ref := runConf(t, confSpecs[1], app, opts, 0)
			got := runConf(t, confSpecs[1], app, opts, 3)
			compareConf(t, app.name+"/policies", ref, got)
		}
	}
}

// TestParallelConformanceLB: AtSync load balancing — stats collection,
// eviction, migration, resume — replays identically in parallel.
func TestParallelConformanceLB(t *testing.T) {
	app := confApp{
		name: "stencil-lb",
		build: func(t *testing.T, _ int) *core.Program {
			p := &stencil.Params{
				Width: 32, Height: 32, VX: 4, VY: 4, Steps: 6, Warmup: 1,
				LB: balance.Greedy{}, LBAtStep: 3,
			}
			prog, err := stencil.BuildProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			return prog
		},
		sum: func(v any) uint64 { return math.Float64bits(v.(*stencil.Result).Checksum) },
	}
	for _, spec := range confSpecs {
		ref := runConf(t, spec, app, Options{}, 0)
		for _, workers := range []int{1, 4} {
			got := runConf(t, spec, app, Options{}, workers)
			compareConf(t, "stencil-lb/"+spec, ref, got)
		}
	}
}

// TestParallelRejectsZeroLookahead: a topology with a zero-delay
// cross-PE link cannot bound windows; construction must fail loudly.
func TestParallelRejectsZeroLookahead(t *testing.T) {
	topo := cleanTopo(t, 4, 0)
	prog := pingPongProgram(t)
	if _, err := NewParallel(topo, prog, Options{}, 2); err == nil {
		t.Fatal("NewParallel accepted a zero-lookahead topology")
	}
	if _, err := New(topo, prog, Options{}); err != nil {
		t.Fatalf("sequential engine must still accept it: %v", err)
	}
}

// pingPongProgram is a minimal two-element program used by constructor
// tests; it exits after one round trip.
func pingPongProgram(t *testing.T) *core.Program {
	t.Helper()
	a := core.ElemRef{Array: 0, Index: 0}
	b := core.ElemRef{Array: 0, Index: 1}
	return &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, entry core.EntryID, data any) {
					if ctx.Elem() == b {
						ctx.Send(a, 0, nil)
					} else if data != nil {
						ctx.ExitWith("done")
					}
				})
			},
			Map: func(i, numPE int) int { return i % numPE },
		}},
		Start: func(ctx *core.Ctx) { ctx.Send(b, 0, "go") },
	}
}

// TestParallelNaturalQuiescence: a program that never exits drains to
// quiescence at the same virtual time in both engines.
func TestParallelNaturalQuiescence(t *testing.T) {
	build := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 8,
				New: func(i int) core.Chare {
					hops := 0
					return funcChare(func(ctx *core.Ctx, entry core.EntryID, data any) {
						ctx.Charge(50 * time.Microsecond)
						hops++
						if hops < 4 {
							ctx.Send(core.ElemRef{Array: 0, Index: (ctx.Elem().Index + 3) % 8}, 0, hops)
						}
					})
				},
				Map: func(i, numPE int) int { return i % numPE },
			}},
			Start: func(ctx *core.Ctx) {
				for i := 0; i < 8; i++ {
					ctx.Send(core.ElemRef{Array: 0, Index: i}, 0, nil)
				}
			},
		}
	}
	spec, err := topology.ParseSpec("2x4;wan=3ms")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (time.Duration, Stats) {
		topo, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		var e *Engine
		if workers == 0 {
			e, err = New(topo, build(), Options{})
		} else {
			e, err = NewParallel(topo, build(), Options{}, workers)
		}
		if err != nil {
			t.Fatal(err)
		}
		v, vt, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			t.Fatalf("unexpected exit value %v", v)
		}
		return vt, e.Stats()
	}
	refVT, refStats := run(0)
	for _, w := range []int{1, 3} {
		vt, stats := run(w)
		if vt != refVT {
			t.Errorf("workers=%d: quiescence at %v, want %v", w, vt, refVT)
		}
		if stats.Events != refStats.Events {
			t.Errorf("workers=%d: %d events, want %d", w, stats.Events, refStats.Events)
		}
	}
}

// TestParallelMaxVirtualMatchesSequential: the virtual-time budget stops
// both engines at the same first offending event with the same error.
func TestParallelMaxVirtualMatchesSequential(t *testing.T) {
	spec, err := topology.ParseSpec("2x4;wan=2ms")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *core.Program {
		return &core.Program{
			Arrays: []core.ArraySpec{{
				ID: 0, N: 4,
				New: func(i int) core.Chare {
					return funcChare(func(ctx *core.Ctx, entry core.EntryID, data any) {
						ctx.Charge(time.Millisecond)
						ctx.Send(core.ElemRef{Array: 0, Index: (ctx.Elem().Index + 1) % 4}, 0, nil)
					})
				},
				Map: func(i, numPE int) int { return i % numPE },
			}},
			Start: func(ctx *core.Ctx) { ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil) },
		}
	}
	opts := Options{MaxVirtual: 40 * time.Millisecond}
	topo, _ := spec.Build()
	eSeq, err := New(topo, build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, seqVT, seqErr := eSeq.Run()
	if seqErr == nil {
		t.Fatal("sequential run did not hit the virtual-time bound")
	}
	topo, _ = spec.Build()
	ePar, err := NewParallel(topo, build(), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, parVT, parErr := ePar.Run()
	if parErr == nil {
		t.Fatal("parallel run did not hit the virtual-time bound")
	}
	if parErr.Error() != seqErr.Error() {
		t.Errorf("errors differ: %q vs %q", parErr, seqErr)
	}
	if parVT != seqVT {
		t.Errorf("stop time %v, want %v", parVT, seqVT)
	}
	if es, ps := eSeq.Stats(), ePar.Stats(); es.Events != ps.Events {
		t.Errorf("events at stop: %d, want %d", ps.Events, es.Events)
	}
}
