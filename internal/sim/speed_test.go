package sim

import (
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

// TestPESpeedScalesCharges: the same charged work takes proportionally
// longer on a slower PE.
func TestPESpeedScalesCharges(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0,
		topology.WithIntraLink(topology.Link{}),
		topology.WithInterLink(topology.Link{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetPESpeed(1, 0.5); err != nil {
		t.Fatal(err)
	}

	var fastDone, slowDone time.Duration
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: 2,
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, e core.EntryID, d any) {
					ctx.Charge(10 * time.Millisecond)
					if ctx.PE() == 0 {
						fastDone = ctx.Time() + 10*time.Millisecond
					} else {
						slowDone = ctx.Time() + 20*time.Millisecond
					}
					ctx.Contribute(1.0, core.OpSum)
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			ctx.Send(core.ElemRef{Array: 0, Index: 0}, 0, nil)
			ctx.Send(core.ElemRef{Array: 0, Index: 1}, 0, nil)
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) { ctx.ExitWith(nil) },
	}
	e, err := New(topo, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// PE 0 (speed 1) charged 10ms; PE 1 (speed 0.5) charged 20ms.
	if s.PEBusy[0] != 10*time.Millisecond {
		t.Errorf("fast PE busy %v, want 10ms", s.PEBusy[0])
	}
	if s.PEBusy[1] != 20*time.Millisecond {
		t.Errorf("slow PE busy %v, want 20ms", s.PEBusy[1])
	}
	_ = fastDone
	_ = slowDone
}

func TestSetPESpeedValidation(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetPESpeed(5, 1); err == nil {
		t.Error("out-of-range PE accepted")
	}
	if err := topo.SetPESpeed(0, 0); err == nil {
		t.Error("zero speed accepted")
	}
	if err := topo.SetPESpeed(0, -1); err == nil {
		t.Error("negative speed accepted")
	}
	if err := topo.SetClusterSpeed(topology.ClusterID(9), 1); err == nil {
		t.Error("unknown cluster accepted")
	}
	if got := topo.PESpeed(0); got != 1 {
		t.Errorf("default speed %v", got)
	}
	if err := topo.SetClusterSpeed(1, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := topo.PESpeed(1); got != 0.25 {
		t.Errorf("cluster speed %v", got)
	}
	if got := topo.PESpeed(0); got != 1 {
		t.Errorf("other cluster affected: %v", got)
	}
}
