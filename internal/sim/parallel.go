package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Conservative parallel execution. The engine repeats, until quiescence
// or a stop:
//
//  1. Find W, the earliest pending event time across all shards.
//  2. Let every shard with events before Wend = W + lookahead process
//     them, concurrently. Cross-PE messages carry at least the lookahead
//     of modeled delay, so nothing a shard does in [W, Wend) can schedule
//     work for another shard inside the same window — the shards are
//     provably independent until the barrier.
//  3. Barrier: hand buffered cross-shard deliveries to their target
//     heaps, flush staged trace events, and settle any stop candidates.
//
// Within a shard, events run in the same deterministic (at, kind, key)
// order the sequential engine uses globally, and event keys are drawn
// from per-PE counters owned by the executing shard, so every PE
// observes the identical event sequence regardless of the number of
// shards or workers. The one wrinkle is stopping: a shard may reach
// ExitWith (or an error) while sibling shards, unaware, process events
// that come later in the deterministic order. Those shards rewind —
// every event appends a rewindRec snapshot, and the barrier restores
// per-PE clocks and counters for events ordered after the stop — and
// their staged trace events are dropped, so the externally visible state
// (exit value, virtual times, statistics, traces) is exactly the
// sequential engine's. (Chare memory mutated by rewound events is not
// restored; see Engine.Checkpoint.)

func (e *Engine) runParallel() {
	var pool *workerPool
	if e.workers > 1 {
		pool = newWorkerPool(e.workers)
		defer pool.close()
	}
	active := make([]*shard, 0, len(e.shards))
	for {
		// Find the earliest pending event and the shards with work near it.
		w := time.Duration(-1)
		nonEmpty := 0
		for _, s := range e.shards {
			if len(s.events) == 0 {
				continue
			}
			nonEmpty++
			if w < 0 || s.events[0].at < w {
				w = s.events[0].at
			}
		}
		if w < 0 {
			return // natural quiescence: no events anywhere
		}
		var wend time.Duration
		switch {
		case len(e.shards) == 1:
			wend = maxDuration // one shard: nothing to synchronize with
		case nonEmpty == 1:
			// Only one shard holds events: every other shard's earliest
			// possible event is a delivery from this window, at ≥ w +
			// lookahead — so the lone shard can safely run one lookahead
			// further before a response could reach it.
			wend = w + 2*e.lookahead
		default:
			wend = w + e.lookahead
		}
		if wend < w {
			wend = maxDuration // overflow far in virtual time
		}
		active = active[:0]
		for _, s := range e.shards {
			if len(s.events) > 0 && s.events[0].at < wend {
				active = append(active, s)
			}
		}
		if pool == nil || len(active) == 1 {
			for _, s := range active {
				s.runWindow(wend)
			}
		} else {
			pool.run(active, wend)
		}
		// Barrier. Settle stops first: once a stop candidate exists, no
		// event ordered before it remains unprocessed (shards only skip
		// events ordered at or after a candidate), and all later windows
		// only move forward in time — so the earliest candidate is final.
		if stopK, stopped := e.stopKeySnapshot(); stopped {
			for _, s := range e.shards {
				s.rewindTo(stopK)
				s.flushStaged(stopK, true)
			}
			return
		}
		for _, s := range e.shards {
			s.flushStaged(ordKey{}, false)
			s.rewind = s.rewind[:0]
			for _, ev := range s.outbox {
				t := e.shards[e.shardOf[ev.pe]]
				heap.Push(&t.events, ev)
			}
			s.outbox = s.outbox[:0]
		}
		if e.opts.MaxEvents > 0 {
			var total int64
			for _, s := range e.shards {
				total += s.eventCount
			}
			if total > e.opts.MaxEvents {
				// Checked at window granularity; the sequential engine
				// stops mid-window, so the parallel engine may process a
				// bounded overshoot before noticing. It is a runaway
				// guard, not a reproducible cut.
				e.stopMu.Lock()
				if !e.errCand.have {
					e.errCand.have = true
					e.errCand.key = ordKey{at: w}
					e.errCand.err = fmt.Errorf("sim: event budget %d exhausted at t=%v", e.opts.MaxEvents, w)
				}
				e.stopMu.Unlock()
				e.stopFlag.Store(true)
				return
			}
		}
	}
}

const maxDuration = time.Duration(1<<63 - 1)

// runWindow processes this shard's events strictly before wend, in
// deterministic order. When a stop candidate appears anywhere in the
// engine, the shard stops short of events ordered at or after it —
// candidates only ever move earlier, so anything skipped is ordered
// after the final stop and would be rewound anyway.
func (s *shard) runWindow(wend time.Duration) {
	e := s.eng
	for len(s.events) > 0 {
		top := &s.events[0]
		if top.at >= wend {
			return
		}
		if e.stopFlag.Load() {
			k := ordKey{at: top.at, kind: top.kind, key: top.key}
			if stopK, ok := e.stopKeySnapshot(); ok && !k.less(stopK) {
				return
			}
		}
		ev := heap.Pop(&s.events).(event)
		s.processEvent(ev)
	}
}

// processEvent is the parallel-mode event step: snapshot for rewind,
// advance the clock, enforce the virtual-time budget, dispatch.
func (s *shard) processEvent(ev event) {
	e := s.eng
	ps := e.pes[ev.pe]
	s.rewind = append(s.rewind, rewindRec{
		key:       ordKey{at: ev.at, kind: ev.kind, key: ev.key},
		pe:        ev.pe,
		now:       s.now,
		busyUntil: ps.busyUntil,
		busyTotal: ps.busyTotal,
		processed: ps.processed,
		sendSeq:   ps.sendSeq,
		events:    s.eventCount,
		msgs:      s.msgCount,
		frames:    s.frameCount,
	})
	s.now = ev.at
	s.curKey = ordKey{at: ev.at, kind: ev.kind, key: ev.key}
	s.eventCount++
	if e.opts.MaxVirtual > 0 && ev.at > e.opts.MaxVirtual {
		// The first event past the bound, in deterministic order, wins
		// the error — identical to the sequential engine. The event
		// itself is counted but not dispatched, also identical.
		e.offerErr(s.curKey, fmt.Errorf("sim: virtual time bound %v exceeded", e.opts.MaxVirtual))
		return
	}
	s.dispatch(ev)
}

// rewindTo undoes the per-PE clocks and shard counters of every event
// ordered after the stop, walking the rewind log backwards so the oldest
// record's snapshot wins.
func (s *shard) rewindTo(stopK ordKey) {
	e := s.eng
	for i := len(s.rewind) - 1; i >= 0; i-- {
		rec := &s.rewind[i]
		if !rec.key.greater(stopK) {
			break
		}
		ps := e.pes[rec.pe]
		ps.busyUntil = rec.busyUntil
		ps.busyTotal = rec.busyTotal
		ps.processed = rec.processed
		ps.sendSeq = rec.sendSeq
		s.now = rec.now
		s.eventCount = rec.events
		s.msgCount = rec.msgs
		s.frameCount = rec.frames
	}
	s.rewind = s.rewind[:0]
}

// flushStaged writes this window's staged trace events into the tracer,
// dropping (when stopped) any recorded by events ordered after the stop.
// The flush happens on the barrier goroutine, one shard at a time, and
// staged order is deterministic per shard, so the tracer's per-PE rings
// end up bit-identical to a sequential run's.
func (s *shard) flushStaged(stopK ordKey, stopped bool) {
	e := s.eng
	if e.opts.Trace == nil {
		return
	}
	for i, ev := range s.staged {
		if stopped && s.stagedKeys[i].greater(stopK) {
			continue
		}
		e.opts.Trace.Record(ev)
	}
	s.staged = s.staged[:0]
	s.stagedKeys = s.stagedKeys[:0]
}

// workerPool runs shard windows on a fixed set of goroutines.
type workerPool struct {
	jobs chan poolJob
	wg   sync.WaitGroup
}

type poolJob struct {
	s    *shard
	wend time.Duration
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan poolJob, n)}
	for i := 0; i < n; i++ {
		go func() {
			for job := range p.jobs {
				job.s.runWindow(job.wend)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes one window across the active shards and waits for all of
// them — the barrier that makes the next window's hand-offs safe.
func (p *workerPool) run(active []*shard, wend time.Duration) {
	p.wg.Add(len(active))
	for _, s := range active {
		p.jobs <- poolJob{s: s, wend: wend}
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.jobs) }
