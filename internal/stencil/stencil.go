// Package stencil implements the paper's first evaluation application: a
// five-point stencil (Jacobi) relaxation over a two-dimensional mesh,
// decomposed into VX×VY message-driven objects. Each object owns a
// rectangular block of the mesh and exchanges one ghost row/column with
// each of its (up to) four neighbors per time step — "four discrete
// communication events per cell [block] for each time-step".
//
// The degree of virtualization is the paper's experimental knob: a
// 2048×2048 mesh split into 4, 16, 64, 256, or 1024 objects. Because
// there is no global barrier, objects waiting for ghost data from across
// the wide-area link leave the PE free to advance other objects; the delay
// wave pipelines inward one block per step, which is exactly the latency
// tolerance the paper measures.
package stencil

import (
	"fmt"
	"math"
	"time"

	"gridmdo/internal/core"
)

// Entry methods of the block array.
const (
	EntryKick  core.EntryID = 0 // begin time-stepping
	EntryGhost core.EntryID = 1 // a neighbor's boundary vector
)

// Directions for ghost exchange.
const (
	dirLeft = iota
	dirRight
	dirUp
	dirDown
	numDirs
)

var opposite = [numDirs]int{dirRight, dirLeft, dirDown, dirUp}

// Params configures one stencil run.
type Params struct {
	Width, Height int // mesh dimensions in cells
	VX, VY        int // object grid; VX*VY objects
	Steps         int // total time steps
	Warmup        int // steps before steady-state timing begins (< Steps)

	// Model, if non-nil, charges modeled execution time per block update
	// (used by the virtual-time executor).
	Model *CostModel

	// Collect, if non-nil, is called by each block with its final interior
	// values (in-process verification hook; must be safe for concurrent
	// use under the real-time runtime).
	Collect func(bx, by, x0, y0, w, h int, vals []float64)

	// LB, if non-nil, enables AtSync load-balancing: one round after step
	// LBAtStep, or — when LBEvery is set — a round every LBEvery steps
	// (the gridnode -lb-period flag). The sync point — immediately after
	// a step's compute, before its borders are sent — is
	// application-quiescent: no ghost message can be in flight, so blocks
	// migrate safely.
	LB       core.Strategy
	LBAtStep int
	LBEvery  int

	// InitialMap optionally overrides the default block placement
	// (contiguous column strips); used by the load-balancing ablation to
	// start from a deliberately skewed layout.
	InitialMap func(i, numPE int) int
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.Width < 3 || p.Height < 3 {
		return fmt.Errorf("stencil: mesh %dx%d too small", p.Width, p.Height)
	}
	if p.VX <= 0 || p.VY <= 0 {
		return fmt.Errorf("stencil: object grid %dx%d invalid", p.VX, p.VY)
	}
	if p.VX > p.Width || p.VY > p.Height {
		return fmt.Errorf("stencil: more objects (%dx%d) than cells (%dx%d)", p.VX, p.VY, p.Width, p.Height)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("stencil: %d steps", p.Steps)
	}
	if p.Warmup < 0 || p.Warmup >= p.Steps {
		return fmt.Errorf("stencil: warmup %d must be in [0, steps=%d)", p.Warmup, p.Steps)
	}
	if p.LBEvery < 0 {
		return fmt.Errorf("stencil: LBEvery %d must be >= 0", p.LBEvery)
	}
	if p.LB != nil && p.LBEvery == 0 && (p.LBAtStep <= 0 || p.LBAtStep >= p.Steps) {
		return fmt.Errorf("stencil: LBAtStep %d must be in (0, steps=%d)", p.LBAtStep, p.Steps)
	}
	return nil
}

// syncAt reports whether a balancing round runs after the given step.
func (p *Params) syncAt(step int) bool {
	if p.LB == nil || step <= 0 || step >= p.Steps {
		return false
	}
	if p.LBEvery > 0 {
		return step%p.LBEvery == 0
	}
	return step == p.LBAtStep
}

// NumObjects reports the virtualization degree VX*VY.
func (p *Params) NumObjects() int { return p.VX * p.VY }

// blockIndex linearizes object coordinates column-major, so that the
// default block placement gives each PE a contiguous strip of columns and
// the two-cluster cut is a single vertical line through the object grid.
func (p *Params) blockIndex(bx, by int) int { return bx*p.VY + by }

// blockCoords inverts blockIndex.
func (p *Params) blockCoords(i int) (bx, by int) { return i / p.VY, i % p.VY }

// span splits n cells over k blocks: block i gets [offset, offset+size).
func span(n, k, i int) (offset, size int) {
	base, rem := n/k, n%k
	size = base
	if i < rem {
		size++
		offset = i * (base + 1)
	} else {
		offset = rem*(base+1) + (i-rem)*base
	}
	return offset, size
}

// Init is the deterministic initial condition: a smooth field over the
// mesh. Boundary cells keep their initial value for the whole run
// (Dirichlet boundary).
func Init(x, y int) float64 {
	return math.Sin(float64(x)*0.013) + math.Cos(float64(y)*0.017)
}

// ghostMsg carries one boundary vector.
type ghostMsg struct {
	Dir  int // direction the message travels (receiver applies on opposite side)
	Step int
	Vals []float64
}

// PayloadBytes implements core.Sizer: the paper's 256×1 vectors of cells.
func (g ghostMsg) PayloadBytes() int { return 16 + 8*len(g.Vals) }

// Result is the run outcome delivered through ExitWith.
type Result struct {
	Checksum  float64       // sum of all interior cells after the run
	PerStep   time.Duration // steady-state time per step
	Total     time.Duration // time from start to final reduction
	Steps     int
	Warmup    int
	Objects   int
	WarmupAt  time.Duration // time of the warmup reduction
	FinishAt  time.Duration // time of the final reduction
	MaxMemory int           // cells resident across all blocks (sanity)
}

// block is one stencil chare.
type block struct {
	p      *Params
	bx, by int
	x0, y0 int // global position of interior cell (0,0)
	w, h   int

	cur, next []float64 // (w+2)×(h+2) including ghost ring
	gate      *core.StepGate
	done      bool
}

func newBlock(p *Params, idx int) *block {
	bx, by := p.blockCoords(idx)
	x0, w := span(p.Width, p.VX, bx)
	y0, h := span(p.Height, p.VY, by)
	b := &block{
		p: p, bx: bx, by: by, x0: x0, y0: y0, w: w, h: h,
		cur:  make([]float64, (w+2)*(h+2)),
		next: make([]float64, (w+2)*(h+2)),
	}
	// Fill interior and ghost ring from the initial condition. Ghost cells
	// that correspond to real mesh cells will be overwritten by neighbor
	// data each step; ghosts beyond the mesh edge keep the boundary value.
	for gy := 0; gy < h+2; gy++ {
		for gx := 0; gx < w+2; gx++ {
			x := clamp(x0+gx-1, 0, p.Width-1)
			y := clamp(y0+gy-1, 0, p.Height-1)
			b.cur[gy*(w+2)+gx] = Init(x, y)
		}
	}
	copy(b.next, b.cur)
	need := 0
	for d := 0; d < numDirs; d++ {
		if _, ok := b.neighbor(d); ok {
			need++
		}
	}
	b.gate = core.NewStepGate(need)
	return b
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// neighbor reports the array index of the block in direction d, if any.
func (b *block) neighbor(d int) (int, bool) {
	bx, by := b.bx, b.by
	switch d {
	case dirLeft:
		bx--
	case dirRight:
		bx++
	case dirUp:
		by--
	case dirDown:
		by++
	}
	if bx < 0 || bx >= b.p.VX || by < 0 || by >= b.p.VY {
		return 0, false
	}
	return b.p.blockIndex(bx, by), true
}

// border extracts the interior boundary vector facing direction d.
func (b *block) border(d int) []float64 {
	w, h := b.w, b.h
	stride := w + 2
	switch d {
	case dirLeft:
		out := make([]float64, h)
		for y := 0; y < h; y++ {
			out[y] = b.cur[(y+1)*stride+1]
		}
		return out
	case dirRight:
		out := make([]float64, h)
		for y := 0; y < h; y++ {
			out[y] = b.cur[(y+1)*stride+w]
		}
		return out
	case dirUp:
		out := make([]float64, w)
		for x := 0; x < w; x++ {
			out[x] = b.cur[1*stride+x+1]
		}
		return out
	case dirDown:
		out := make([]float64, w)
		for x := 0; x < w; x++ {
			out[x] = b.cur[h*stride+x+1]
		}
		return out
	}
	panic("stencil: bad direction")
}

// applyGhost installs a received boundary vector into the ghost ring. The
// message traveled in direction g.Dir, so it lands on this block's
// opposite side.
func (b *block) applyGhost(g ghostMsg) {
	w, h := b.w, b.h
	stride := w + 2
	switch g.Dir {
	case dirRight: // came from the left neighbor: our left ghost column
		for y := 0; y < h; y++ {
			b.cur[(y+1)*stride] = g.Vals[y]
		}
	case dirLeft: // from the right neighbor
		for y := 0; y < h; y++ {
			b.cur[(y+1)*stride+w+1] = g.Vals[y]
		}
	case dirDown: // from the upper neighbor: our top ghost row
		for x := 0; x < w; x++ {
			b.cur[x+1] = g.Vals[x]
		}
	case dirUp: // from the lower neighbor
		for x := 0; x < w; x++ {
			b.cur[(h+1)*stride+x+1] = g.Vals[x]
		}
	}
}

// sendBorders ships this block's current boundaries for the current step.
func (b *block) sendBorders(ctx *core.Ctx) {
	for d := 0; d < numDirs; d++ {
		if n, ok := b.neighbor(d); ok {
			ctx.Send(core.ElemRef{Array: 0, Index: n}, EntryGhost,
				ghostMsg{Dir: d, Step: b.gate.Step(), Vals: b.border(d)})
		}
	}
}

// compute performs one Jacobi update over the interior, honoring the
// global Dirichlet boundary, and charges the modeled cost.
func (b *block) compute(ctx *core.Ctx) {
	w, h := b.w, b.h
	stride := w + 2
	for y := 0; y < h; y++ {
		gy := b.y0 + y
		row := (y + 1) * stride
		for x := 0; x < w; x++ {
			gx := b.x0 + x
			i := row + x + 1
			if gx == 0 || gy == 0 || gx == b.p.Width-1 || gy == b.p.Height-1 {
				b.next[i] = b.cur[i] // fixed boundary
				continue
			}
			b.next[i] = 0.25 * (b.cur[i-1] + b.cur[i+1] + b.cur[i-stride] + b.cur[i+stride])
		}
	}
	b.cur, b.next = b.next, b.cur
	if m := b.p.Model; m != nil {
		ctx.Charge(m.BlockCost(b.w, b.h))
	}
}

// checksum sums the interior cells.
func (b *block) checksum() float64 {
	stride := b.w + 2
	var s float64
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			s += b.cur[(y+1)*stride+x+1]
		}
	}
	return s
}

// Recv implements core.Chare.
func (b *block) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case EntryKick:
		if b.done {
			// Restored from a checkpoint that had already completed this
			// program's step count: report completion immediately.
			ctx.Contribute(b.checksum(), core.OpSum)
			return
		}
		b.sendBorders(ctx)
		b.tryAdvance(ctx)
	case core.EntryResumeFromSync:
		// Back from a load-balancing round (possibly on a new PE): emit
		// the borders for the step the sync interrupted.
		b.sendBorders(ctx)
		b.tryAdvance(ctx)
	case EntryGhost:
		g := data.(ghostMsg)
		if b.done {
			return
		}
		if _, ok := b.gate.Deliver(g.Step, g); ok {
			b.applyGhost(g)
			b.tryAdvance(ctx)
		} else {
		}
	default:
		panic(fmt.Sprintf("stencil: unknown entry %d", entry))
	}
}

// tryAdvance runs as many steps as buffered data allows.
func (b *block) tryAdvance(ctx *core.Ctx) {
	for b.gate.Ready() && !b.done {
		if b.bx == 0 && b.by == 0 {
			// One block marks step boundaries so the overlap profiler can
			// segment the trace into per-step windows.
			ctx.Mark("step", int64(b.gate.Step()), 0)
		}
		b.compute(ctx)
		pend := b.gate.Advance()
		step := b.gate.Step()

		if step == b.p.Warmup && b.p.Warmup > 0 {
			// Steady-state timing marker (round 1 when warmup enabled).
			ctx.Contribute(0.0, core.OpSum)
		}
		if step == b.p.Steps {
			b.done = true
			if b.p.Collect != nil {
				stride := b.w + 2
				vals := make([]float64, b.w*b.h)
				for y := 0; y < b.h; y++ {
					copy(vals[y*b.w:(y+1)*b.w], b.cur[(y+1)*stride+1:(y+1)*stride+1+b.w])
				}
				b.p.Collect(b.bx, b.by, b.x0, b.y0, b.w, b.h, vals)
			}
			ctx.Contribute(b.checksum(), core.OpSum)
			return
		}
		if b.p.syncAt(step) {
			// Application-quiescent point: every ghost this block is owed
			// has been consumed and none for this step have been sent.
			ctx.AtSync()
			return
		}
		b.sendBorders(ctx)
		// Apply any ghosts that arrived early for the new step.
		for _, m := range pend {
			b.applyGhost(m.(ghostMsg))
		}
	}
}

// BuildProgram assembles the stencil as a runnable core.Program. The
// program exits with a *Result.
func BuildProgram(p *Params) (*core.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Steps: p.Steps, Warmup: p.Warmup, Objects: p.NumObjects()}
	var startAt time.Duration
	finalRound := int64(1)
	if p.Warmup > 0 {
		finalRound = 2
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: p.NumObjects(),
			// No Restore: checkpointed blocks rebuild through New + PUP.
			New: func(i int) core.Chare { return newBlock(p, i) },
			Map: p.InitialMap,
		}},
		Start: func(ctx *core.Ctx) {
			startAt = ctx.Time()
			for i := 0; i < p.NumObjects(); i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, EntryKick, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			switch seq {
			case finalRound:
				res.Checksum = v.(float64)
				res.FinishAt = ctx.Time()
				res.Total = res.FinishAt - startAt
				if p.Warmup > 0 {
					res.PerStep = (res.FinishAt - res.WarmupAt) / time.Duration(p.Steps-p.Warmup)
				} else {
					res.PerStep = res.Total / time.Duration(p.Steps)
				}
				ctx.ExitWith(res)
			default: // warmup marker
				res.WarmupAt = ctx.Time()
			}
		},
	}
	if p.LB != nil {
		prog.LB = &core.LBConfig{Arrays: []core.ArrayID{0}, Strategy: p.LB}
	}
	return prog, nil
}

func init() {
	core.RegisterPayload(ghostMsg{})
}
