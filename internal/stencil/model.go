package stencil

import "time"

// CostModel charges virtual execution time for one block update on the
// modeled machine (the paper's 1.5 GHz Itanium 2 nodes). The cost is
// per-cell work scaled by a cache-pressure factor: once a block's working
// set (two float64 grids) no longer fits in the 6 MB L3, the per-cell
// cost rises. This reproduces the paper's §5.2 observation that the
// lowest virtualization degrees are "markedly worse ... due to improved
// cache performance because of smaller grainsize" at higher degrees.
type CostModel struct {
	// PerCellNS is the base per-cell update cost in nanoseconds.
	PerCellNS float64
	// L3Bytes is the modeled last-level cache size.
	L3Bytes int
	// MaxPenalty is the asymptotic cost multiplier for blocks whose
	// working set far exceeds the cache.
	MaxPenalty float64
	// PerStepOverheadNS is fixed per-block-update scheduling overhead.
	PerStepOverheadNS float64
}

// DefaultModel is calibrated so the paper's Table 1 absolute step times
// land in the right ballpark (e.g. 4 PEs × 16 objects ≈ 35 ms/step on a
// 2048×2048 mesh) — see EXPERIMENTS.md for the calibration notes.
func DefaultModel() *CostModel {
	return &CostModel{
		PerCellNS:         33,
		L3Bytes:           6 << 20, // Itanium 2 Madison 6MB L3
		MaxPenalty:        2.4,
		PerStepOverheadNS: 30000,
	}
}

// cacheFactor interpolates the penalty: 1.0 while the working set fits
// comfortably (≤ L3/3), rising linearly to MaxPenalty at 2×L3 and flat
// beyond.
func (m *CostModel) cacheFactor(workingSet int) float64 {
	lo := float64(m.L3Bytes) / 3
	hi := float64(m.L3Bytes) * 2
	ws := float64(workingSet)
	switch {
	case ws <= lo:
		return 1
	case ws >= hi:
		return m.MaxPenalty
	default:
		return 1 + (m.MaxPenalty-1)*(ws-lo)/(hi-lo)
	}
}

// BlockCost models one Jacobi update of a w×h block.
func (m *CostModel) BlockCost(w, h int) time.Duration {
	ws := w * h * 16 // two float64 grids
	ns := float64(w*h)*m.PerCellNS*m.cacheFactor(ws) + m.PerStepOverheadNS
	return time.Duration(ns) * time.Nanosecond
}
