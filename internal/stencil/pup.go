package stencil

import (
	"gridmdo/internal/core"
)

// PUP implements core.Migratable: one visitor serves load-balancer
// migration, checkpoint/restart (including restart on a different PE
// count), and the pack→unpack→pack byte-identity the fuzz tests pin.
//
// Only the step counter, the block shape, and the current grid travel;
// everything else (neighbor topology, gate need, next buffer) is derived
// from Params by newBlock on the destination, and the unpacking branch
// validates the packed shape against that target program.
func (b *block) PUP(p *core.PUP) {
	if !p.Unpacking() && b.gate.PendingFuture() > 0 {
		// A block parked at AtSync or a post-run quiescent point owns no
		// buffered future ghosts; anything else is not a safe point to move.
		p.Errorf("stencil: pack block (%d,%d) with %d buffered future ghosts", b.bx, b.by, b.gate.PendingFuture())
		return
	}
	step, w, h := b.gate.Step(), b.w, b.h
	p.Int(&step)
	p.Int(&w)
	p.Int(&h)
	if p.Unpacking() {
		if w != b.w || h != b.h {
			p.Errorf("stencil: restore block (%d,%d): checkpoint is %dx%d, program wants %dx%d",
				b.bx, b.by, w, h, b.w, b.h)
			return
		}
		if p.Checkpointing() && b.p.Warmup > 0 && b.p.Warmup <= step {
			// On a checkpoint restore the warmup reduction round would never
			// fire, desynchronizing the reduction sequence; continued runs
			// must time from scratch. A live migration is different: the
			// element's reduction history moved with it, so a block past its
			// warmup step is fine.
			p.Errorf("stencil: restore block (%d,%d): warmup %d not after restored step %d (use Warmup=0 or > %d)",
				b.bx, b.by, b.p.Warmup, step, step)
			return
		}
	}
	p.Float64s(&b.cur)
	if p.Unpacking() {
		if len(b.cur) != (b.w+2)*(b.h+2) {
			p.Errorf("stencil: restore block (%d,%d): grid length %d, want %d",
				b.bx, b.by, len(b.cur), (b.w+2)*(b.h+2))
			return
		}
		copy(b.next, b.cur)
		b.gate.JumpTo(step)
		b.done = step >= b.p.Steps
	}
}

// interface check: blocks are migratable (needed by the load balancers
// and checkpointing).
var _ core.Migratable = (*block)(nil)
