package stencil

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func TestSpanExactCover(t *testing.T) {
	prop := func(n16, k16 uint16) bool {
		n := int(n16%5000) + 1
		k := int(k16%64) + 1
		if k > n {
			k = n
		}
		next := 0
		total := 0
		for i := 0; i < k; i++ {
			off, size := span(n, k, i)
			if off != next || size <= 0 {
				return false
			}
			next = off + size
			total += size
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockIndexRoundTrip(t *testing.T) {
	p := &Params{Width: 64, Height: 64, VX: 5, VY: 7, Steps: 1}
	seen := make(map[int]bool)
	for bx := 0; bx < p.VX; bx++ {
		for by := 0; by < p.VY; by++ {
			i := p.blockIndex(bx, by)
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
			gx, gy := p.blockCoords(i)
			if gx != bx || gy != by {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", bx, by, i, gx, gy)
			}
		}
	}
	if len(seen) != p.NumObjects() {
		t.Fatalf("covered %d indices, want %d", len(seen), p.NumObjects())
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Width: 32, Height: 32, VX: 4, VY: 4, Steps: 3, Warmup: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Width: 2, Height: 32, VX: 1, VY: 1, Steps: 1},
		{Width: 32, Height: 32, VX: 0, VY: 1, Steps: 1},
		{Width: 32, Height: 32, VX: 64, VY: 1, Steps: 1},
		{Width: 32, Height: 32, VX: 1, VY: 1, Steps: 0},
		{Width: 32, Height: 32, VX: 1, VY: 1, Steps: 2, Warmup: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// collectGrid reassembles block outputs into a full mesh.
type collectGrid struct {
	mu   sync.Mutex
	grid []float64
	w    int
}

func newCollect(w, h int) *collectGrid {
	return &collectGrid{grid: make([]float64, w*h), w: w}
}

func (c *collectGrid) fn(bx, by, x0, y0, w, h int, vals []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for y := 0; y < h; y++ {
		copy(c.grid[(y0+y)*c.w+x0:(y0+y)*c.w+x0+w], vals[y*w:(y+1)*w])
	}
}

func runSim(t *testing.T, p *Params, procs int, lat time.Duration) *Result {
	t.Helper()
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v.(*Result)
}

func TestSimMatchesSequentialBitwise(t *testing.T) {
	const W, H, steps = 32, 24, 7
	for _, tc := range []struct {
		vx, vy, procs int
		lat           time.Duration
	}{
		{1, 1, 1, 0},
		{4, 3, 1, 0},
		{4, 3, 4, 5 * time.Millisecond},
		{8, 8, 2, 2 * time.Millisecond},
	} {
		c := newCollect(W, H)
		p := &Params{Width: W, Height: H, VX: tc.vx, VY: tc.vy, Steps: steps, Collect: c.fn}
		res := runSim(t, p, tc.procs, tc.lat)
		want := RunSequential(W, H, steps)
		for i := range want {
			if c.grid[i] != want[i] {
				t.Fatalf("v=%dx%d p=%d: grid[%d] = %v, want %v (bitwise)",
					tc.vx, tc.vy, tc.procs, i, c.grid[i], want[i])
			}
		}
		if rel := math.Abs(res.Checksum-Checksum(want)) / math.Abs(Checksum(want)); rel > 1e-12 {
			t.Errorf("checksum relative error %v", rel)
		}
	}
}

func TestRealtimeMatchesSequential(t *testing.T) {
	const W, H, steps = 24, 24, 5
	c := newCollect(W, H)
	p := &Params{Width: W, Height: H, VX: 4, VY: 4, Steps: steps, Collect: c.fn}
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*Result)
	want := RunSequential(W, H, steps)
	for i := range want {
		if c.grid[i] != want[i] {
			t.Fatalf("grid[%d] = %v, want %v", i, c.grid[i], want[i])
		}
	}
	if res.Total <= 0 || res.PerStep <= 0 {
		t.Errorf("timing not recorded: %+v", res)
	}
}

// TestVirtualizationImprovesLatencyTolerance is the paper's headline
// claim in miniature: at a WAN latency comparable to the per-step compute
// time, higher virtualization yields a lower per-step time.
func TestVirtualizationImprovesLatencyTolerance(t *testing.T) {
	const W, H, steps, warmup = 256, 256, 24, 8
	const lat = 4 * time.Millisecond
	model := DefaultModel()
	run := func(v int) time.Duration {
		p := &Params{Width: W, Height: H, VX: v, VY: v, Steps: steps, Warmup: warmup, Model: model}
		res := runSim(t, p, 4, lat)
		return res.PerStep
	}
	low := run(2)  // 4 objects on 4 PEs: no overlap material
	high := run(8) // 64 objects on 4 PEs
	if high >= low {
		t.Errorf("virtualization did not help: V=64 %v >= V=4 %v at latency %v", high, low, lat)
	}
	// With 4 objects on 4 PEs every object borders the WAN; per-step time
	// must be at least the one-way latency.
	if low < lat {
		t.Errorf("V=4 per-step %v below one-way latency %v: impossible", low, lat)
	}
}

// TestLatencySweepShape: per-step time is (a) non-decreasing in latency
// and (b) flat (within tolerance) while latency is small relative to
// compute, for a well-virtualized configuration.
func TestLatencySweepShape(t *testing.T) {
	const W, H, steps, warmup = 256, 256, 20, 6
	model := DefaultModel()
	perStep := func(lat time.Duration) time.Duration {
		p := &Params{Width: W, Height: H, VX: 8, VY: 8, Steps: steps, Warmup: warmup, Model: model}
		return runSim(t, p, 4, lat).PerStep
	}
	base := perStep(0)
	if base <= 0 {
		t.Fatal("zero baseline")
	}
	small := perStep(100 * time.Microsecond)
	if float64(small) > 1.25*float64(base) {
		t.Errorf("small latency not masked: %v vs baseline %v", small, base)
	}
	big := perStep(64 * time.Millisecond)
	if big < small {
		t.Errorf("per-step time decreased with latency: %v < %v", big, small)
	}
	if big < 10*time.Millisecond {
		t.Errorf("64ms latency fully hidden on 64 objects/4 PEs: %v — delay wave model broken", big)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultModel()
	small := m.BlockCost(64, 64)
	big := m.BlockCost(1024, 1024)
	if small <= 0 || big <= 0 {
		t.Fatal("non-positive cost")
	}
	// Per-cell cost must be higher for the cache-thrashing block.
	perSmall := float64(small) / (64 * 64)
	perBig := float64(big) / (1024 * 1024)
	if perBig <= perSmall {
		t.Errorf("cache penalty missing: %v ns/cell (big) <= %v ns/cell (small)", perBig, perSmall)
	}
	if f := m.cacheFactor(1); f != 1 {
		t.Errorf("tiny working set factor = %v", f)
	}
	if f := m.cacheFactor(1 << 30); f != m.MaxPenalty {
		t.Errorf("huge working set factor = %v, want %v", f, m.MaxPenalty)
	}
	// Monotone in working set.
	prev := 0.0
	for ws := 1 << 10; ws <= 1<<26; ws *= 2 {
		f := m.cacheFactor(ws)
		if f < prev {
			t.Fatalf("cacheFactor not monotone at %d", ws)
		}
		prev = f
	}
}

func TestGhostMsgSizer(t *testing.T) {
	g := ghostMsg{Vals: make([]float64, 256)}
	if g.PayloadBytes() != 16+8*256 {
		t.Errorf("PayloadBytes = %d", g.PayloadBytes())
	}
}
