package stencil

// RunSequential computes the reference solution: the same mesh, initial
// condition, Dirichlet boundary, and Jacobi update, executed serially.
// Because each cell's update is a pure function of the previous grid, the
// parallel decomposition must reproduce this result bit-for-bit.
func RunSequential(width, height, steps int) []float64 {
	cur := make([]float64, width*height)
	next := make([]float64, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			cur[y*width+x] = Init(x, y)
		}
	}
	for s := 0; s < steps; s++ {
		for y := 0; y < height; y++ {
			for x := 0; x < width; x++ {
				i := y*width + x
				if x == 0 || y == 0 || x == width-1 || y == height-1 {
					next[i] = cur[i]
					continue
				}
				next[i] = 0.25 * (cur[i-1] + cur[i+1] + cur[i-width] + cur[i+width])
			}
		}
		cur, next = next, cur
	}
	return cur
}

// Checksum sums a grid (matching the per-block checksum reduction up to
// floating-point association order).
func Checksum(grid []float64) float64 {
	var s float64
	for _, v := range grid {
		s += v
	}
	return s
}
