package stencil

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

// runEngine runs a stencil on the virtual-time engine and returns the
// engine for checkpointing.
func runEngine(t *testing.T, p *Params, procs int, lat time.Duration) *sim.Engine {
	t.Helper()
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCheckpointRestartContinuesExactly runs 4 steps, checkpoints,
// restarts into a 10-step program on a different PE count, and compares
// the final grid bitwise against an uninterrupted 10-step run.
func TestCheckpointRestartContinuesExactly(t *testing.T) {
	const W, H = 32, 24

	// Phase 1: 4 steps on 4 PEs.
	p1 := &Params{Width: W, Height: H, VX: 4, VY: 3, Steps: 4}
	e1 := runEngine(t, p1, 4, 2*time.Millisecond)
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize through the wire format, as a restart from disk would.
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := core.DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: continue to step 10 on 2 PEs (shrink), collecting the grid.
	c := newCollect(W, H)
	p2 := &Params{Width: W, Height: H, VX: 4, VY: 3, Steps: 10, Collect: c.fn}
	prog2, err := BuildProgram(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.Install(prog2); err != nil {
		t.Fatal(err)
	}
	topo2, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sim.New(topo2, prog2, sim.Options{MaxEvents: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}

	want := RunSequential(W, H, 10)
	for i := range want {
		if c.grid[i] != want[i] {
			t.Fatalf("grid[%d] = %v, want %v: restart diverged from uninterrupted run", i, c.grid[i], want[i])
		}
	}
}

// TestCheckpointOfCompletedRunReportsImmediately restores a finished
// checkpoint into a program with the same step count: every block
// contributes right away and the result matches.
func TestCheckpointOfCompletedRun(t *testing.T) {
	const W, H = 16, 16
	p1 := &Params{Width: W, Height: H, VX: 2, VY: 2, Steps: 5}
	e1 := runEngine(t, p1, 2, 0)
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Params{Width: W, Height: H, VX: 2, VY: 2, Steps: 5}
	prog2, err := BuildProgram(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Install(prog2); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Single(1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sim.New(topo, prog2, sim.Options{MaxEvents: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := Checksum(RunSequential(W, H, 5))
	got := v.(*Result).Checksum
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("restored checksum %v, want %v", got, want)
	}
}

func TestRestoreValidation(t *testing.T) {
	p1 := &Params{Width: 16, Height: 16, VX: 2, VY: 2, Steps: 3}
	e1 := runEngine(t, p1, 2, 0)
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Mismatched decomposition is rejected at install time (element count).
	pBad := &Params{Width: 16, Height: 16, VX: 4, VY: 4, Steps: 6}
	progBad, err := BuildProgram(pBad)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Install(progBad); err == nil {
		t.Error("mismatched element count accepted")
	}

	// A warmup inside the restored step range is rejected when the block
	// unpacks during element construction.
	pWarm := &Params{Width: 16, Height: 16, VX: 2, VY: 2, Steps: 6, Warmup: 2}
	progWarm, err := BuildProgram(pWarm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Install(progWarm); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Single(1)
	if err != nil {
		t.Fatal(err)
	}
	// The PUP auto-restore wrapper panics during element construction;
	// executors convert that into a constructor error.
	if _, err := sim.New(topo, progWarm, sim.Options{}); err == nil {
		t.Error("warmup inside restored step range accepted")
	}
}

// TestBlockPUPRoundTrip pins the migration invariant directly:
// pack→unpack→pack is byte-identical, and a freshly constructed block
// adopts the packed step and grid.
func TestBlockPUPRoundTrip(t *testing.T) {
	p := &Params{Width: 24, Height: 24, VX: 3, VY: 3, Steps: 4}
	b := newBlock(p, 4)
	b.gate.JumpTo(2)
	for i := range b.cur {
		b.cur[i] = float64(i) * 0.5
	}
	data, err := core.PUPPack(b)
	if err != nil {
		t.Fatal(err)
	}
	rb := newBlock(p, 4)
	if err := core.PUPUnpack(rb, data); err != nil {
		t.Fatal(err)
	}
	if rb.gate.Step() != 2 || rb.w != b.w || rb.h != b.h {
		t.Errorf("restored shape/step mismatch: step=%d w=%d h=%d", rb.gate.Step(), rb.w, rb.h)
	}
	for i := range b.cur {
		if rb.cur[i] != b.cur[i] {
			t.Fatalf("grid mismatch at %d", i)
		}
	}
	data2, err := core.PUPPack(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("pack→unpack→pack not byte-identical")
	}
	if err := core.PUPUnpack(newBlock(p, 4), []byte("junk")); err == nil {
		t.Error("junk restored")
	}

	// A block from a different decomposition refuses the state.
	pOther := &Params{Width: 24, Height: 24, VX: 3, VY: 6, Steps: 4}
	err = core.PUPUnpack(newBlock(pOther, 4), data)
	if err == nil || !strings.Contains(err.Error(), "checkpoint is") {
		t.Errorf("shape mismatch: %v", err)
	}
}

// TestBlockPUPRefusesMidStep ensures a block holding buffered future
// ghosts cannot be packed: that is not a safe migration point.
func TestBlockPUPRefusesMidStep(t *testing.T) {
	p := &Params{Width: 16, Height: 16, VX: 2, VY: 2, Steps: 4}
	b := newBlock(p, 0)
	b.gate.Deliver(1, ghostMsg{Dir: 0, Step: 1, Vals: make([]float64, b.h)})
	if b.gate.PendingFuture() == 0 {
		t.Fatal("test setup: no buffered future ghost")
	}
	_, err := core.PUPPack(b)
	if err == nil || !strings.Contains(err.Error(), "future ghosts") {
		t.Errorf("mid-step pack: %v", err)
	}
}
