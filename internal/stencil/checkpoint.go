package stencil

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gridmdo/internal/core"
)

// blockState is the serialized form of a block for migration and
// checkpoint/restart.
type blockState struct {
	Step int
	W, H int
	Cur  []float64
}

// Pack implements core.Migratable.
func (b *block) Pack() ([]byte, error) {
	var buf bytes.Buffer
	st := blockState{Step: b.gate.Step(), W: b.w, H: b.h, Cur: b.cur}
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("stencil: pack block (%d,%d): %w", b.bx, b.by, err)
	}
	return buf.Bytes(), nil
}

// restoreBlock rebuilds element i of a (possibly re-parameterized)
// program from packed state. The mesh and object-grid shape must match
// the checkpointing program; Steps may differ, which is how a run is
// continued after restart — including on a different PE count.
func restoreBlock(p *Params, i int, data []byte) (core.Chare, error) {
	var st blockState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("stencil: restore block %d: %w", i, err)
	}
	b := newBlock(p, i)
	if st.W != b.w || st.H != b.h {
		return nil, fmt.Errorf("stencil: restore block %d: checkpoint is %dx%d, program wants %dx%d",
			i, st.W, st.H, b.w, b.h)
	}
	if len(st.Cur) != len(b.cur) {
		return nil, fmt.Errorf("stencil: restore block %d: grid length %d, want %d", i, len(st.Cur), len(b.cur))
	}
	if p.Warmup > 0 && p.Warmup <= st.Step {
		// The warmup reduction round would never fire, desynchronizing
		// the reduction sequence; continued runs must time from scratch.
		return nil, fmt.Errorf("stencil: restore block %d: warmup %d not after restored step %d (use Warmup=0 or > %d)",
			i, p.Warmup, st.Step, st.Step)
	}
	b.cur = st.Cur
	copy(b.next, b.cur)
	b.gate.JumpTo(st.Step)
	b.done = st.Step >= p.Steps
	return b, nil
}

// interface check: blocks are migratable (needed by the load balancers
// and checkpointing).
var _ core.Migratable = (*block)(nil)
