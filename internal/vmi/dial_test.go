package vmi

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestDialBackoffSchedule pins the retry wait table: 50ms doubling per
// attempt, capped at 2s, including attempts past the shift-overflow range.
func TestDialBackoffSchedule(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second},
		{7, 2 * time.Second},
		{63, 2 * time.Second},
		{1000, 2 * time.Second},
	}
	for _, tc := range cases {
		if got := dialBackoff(tc.attempt); got != tc.want {
			t.Errorf("dialBackoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

// deadAddr returns a loopback address nothing is listening on, so dials
// fail fast with connection-refused rather than timing out.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialRetryAbortsMidBackoff: closing the done channel while dialRetry
// is sitting out a backoff wait returns net.ErrClosed promptly instead of
// sleeping out the remaining schedule (~15s at 10 attempts).
func TestDialRetryAbortsMidBackoff(t *testing.T) {
	addr := deadAddr(t)
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := dialRetry(addr, 10, done)
		errc <- err
	}()
	// Let the first dial fail and the backoff wait begin, then abort.
	time.Sleep(20 * time.Millisecond)
	close(done)
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dialRetry kept backing off after done closed")
	}
}

// TestDialRetryAbortsBeforeFirstDial: a done channel closed up front wins
// over the dial loop entirely.
func TestDialRetryAbortsBeforeFirstDial(t *testing.T) {
	done := make(chan struct{})
	close(done)
	if _, err := dialRetry(deadAddr(t), 10, done); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want net.ErrClosed", err)
	}
}

// TestDialRetryReturnsDialError: with done open, exhausting the attempts
// returns the last dial error, and the final failure does not sit out a
// pointless trailing backoff.
func TestDialRetryReturnsDialError(t *testing.T) {
	addr := deadAddr(t)
	start := time.Now()
	_, err := dialRetry(addr, 2, make(chan struct{}))
	if err == nil || errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want the dial failure", err)
	}
	// Two refused dials separated by one 50ms backoff; anything near the
	// second backoff (100ms) means we slept after the final attempt.
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("dialRetry took %v for 2 fast-fail attempts", elapsed)
	}
}

// TestDialRetrySucceeds: a listener that exists on the first attempt
// connects without consuming the backoff schedule.
func TestDialRetrySucceeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := dialRetry(ln.Addr().String(), 1, make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestTCPCloseAbortsPendingDial: Close while connTo is mid-backoff against
// an unreachable peer unblocks the dial instead of waiting out the
// schedule.
func TestTCPCloseAbortsPendingDial(t *testing.T) {
	route := func(pe int32) int {
		if pe < 2 {
			return 0
		}
		return 1
	}
	tr := NewTCP(0, map[int]string{0: "127.0.0.1:0", 1: deadAddr(t)}, route, func(*Frame) error { return nil })
	if _, err := tr.Listen(); err != nil {
		t.Fatal(err)
	}
	tr.DialAttempts = 10
	errc := make(chan error, 1)
	go func() {
		errc <- tr.Send(&Frame{Src: 0, Dst: 2, Body: []byte("x")})
	}()
	time.Sleep(20 * time.Millisecond)
	tr.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("send to unreachable peer succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send stayed blocked in dial backoff after Close")
	}
}
