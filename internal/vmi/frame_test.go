package vmi

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	in := &Frame{
		Src: 3, Dst: 17, Prio: -5, Class: ClassSystem, Flags: FlagChecksummed,
		Seq: 123456789, Trace: 0x0001_0000_0000_002a, Body: []byte("hello, grid"),
	}
	var buf bytes.Buffer
	if err := in.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != in.EncodedLen() {
		t.Errorf("EncodedLen = %d, wrote %d", in.EncodedLen(), buf.Len())
	}
	var out Frame
	if err := out.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	in.Obj = nil
	if !reflect.DeepEqual(*in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", *in, out)
	}
}

func TestFrameRoundTripEmptyBody(t *testing.T) {
	in := &Frame{Src: 1, Dst: 2, Seq: 9}
	var buf bytes.Buffer
	if err := in.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	var out Frame
	if err := out.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Body != nil {
		t.Errorf("empty body decoded as %v", out.Body)
	}
	if out.Src != 1 || out.Dst != 2 || out.Seq != 9 {
		t.Errorf("header mismatch: %+v", out)
	}
}

// Property: encode/decode is the identity on header fields and body for
// arbitrary frames.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(src, dst, prio int32, class uint8, flags uint16, seq, tr uint64, body []byte) bool {
		in := &Frame{Src: src, Dst: dst, Prio: prio, Class: Class(class), Flags: flags, Seq: seq, Trace: tr, Body: body}
		var buf bytes.Buffer
		if err := in.EncodeTo(&buf); err != nil {
			return false
		}
		var out Frame
		if err := out.DecodeFrom(&buf); err != nil {
			return false
		}
		if len(body) == 0 {
			// nil and empty both decode to nil
			return out.Src == src && out.Dst == dst && out.Prio == prio &&
				out.Class == Class(class) && out.Flags == flags && out.Seq == seq &&
				out.Trace == tr && out.Body == nil
		}
		in.Obj = nil
		return reflect.DeepEqual(*in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	var out Frame
	buf := bytes.Repeat([]byte{0xAB}, headerLen)
	if err := out.DecodeFrom(bytes.NewReader(buf)); err != ErrBadMagic {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeOversizedBody(t *testing.T) {
	in := &Frame{Src: 1, Dst: 2, Body: []byte("x")}
	var buf bytes.Buffer
	if err := in.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the length field to something enormous.
	b[36], b[37], b[38], b[39] = 0xFF, 0xFF, 0xFF, 0xFF
	var out Frame
	if err := out.DecodeFrom(bytes.NewReader(b)); err != ErrFrameTooLarge {
		t.Errorf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameClone(t *testing.T) {
	in := &Frame{Src: 1, Dst: 2, Body: []byte{1, 2, 3}}
	c := in.Clone()
	c.Body[0] = 99
	if in.Body[0] != 1 {
		t.Error("Clone shares body storage")
	}
}

func TestFrameStringNonEmpty(t *testing.T) {
	f := &Frame{Src: 1, Dst: 2, Body: []byte{0}}
	if f.String() == "" {
		t.Error("empty String()")
	}
	_ = encodeUint64(rand.Uint64()) // keep helper exercised
}
