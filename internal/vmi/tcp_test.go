package vmi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// twoNodes builds a pair of TCP transports on loopback with dynamic ports.
// PEs 0..1 live on node 0, PEs 2..3 on node 1.
func twoNodes(t *testing.T) (*TCP, *TCP, func() []*Frame, func()) {
	t.Helper()
	route := func(pe int32) int {
		if pe < 2 {
			return 0
		}
		return 1
	}
	var mu sync.Mutex
	var got []*Frame
	sink := func(f *Frame) error {
		mu.Lock()
		got = append(got, f.Clone())
		mu.Unlock()
		return nil
	}
	addrs0 := map[int]string{0: "127.0.0.1:0", 1: ""}
	addrs1 := map[int]string{0: "", 1: "127.0.0.1:0"}
	n0 := NewTCP(0, addrs0, route, func(f *Frame) error { return nil })
	n1 := NewTCP(1, addrs1, route, sink)
	a0, err := n0.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n0.SetAddr(1, a1)
	n1.SetAddr(0, a0)
	frames := func() []*Frame {
		mu.Lock()
		defer mu.Unlock()
		return append([]*Frame(nil), got...)
	}
	cleanup := func() { n0.Close(); n1.Close() }
	return n0, n1, frames, cleanup
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPSendBetweenNodes(t *testing.T) {
	n0, _, frames, cleanup := twoNodes(t)
	defer cleanup()

	for i := 0; i < 10; i++ {
		f := &Frame{Src: 0, Dst: 2, Seq: uint64(i), Body: []byte(fmt.Sprintf("msg-%d", i))}
		if err := n0.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "10 frames", func() bool { return len(frames()) == 10 })
	for i, f := range frames() {
		if f.Seq != uint64(i) {
			t.Fatalf("out of order at %d: seq=%d", i, f.Seq)
		}
		if want := fmt.Sprintf("msg-%d", i); string(f.Body) != want {
			t.Fatalf("body = %q, want %q", f.Body, want)
		}
	}
}

func TestTCPBidirectionalOnSingleDial(t *testing.T) {
	n0, n1, frames, cleanup := twoNodes(t)
	defer cleanup()

	var mu sync.Mutex
	var back []*Frame
	n0.onRecv = func(f *Frame) error {
		mu.Lock()
		back = append(back, f.Clone())
		mu.Unlock()
		return nil
	}

	if err := n0.Send(&Frame{Src: 0, Dst: 3, Body: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ping", func() bool { return len(frames()) == 1 })

	// Node 1 replies; this should reuse the accepted connection.
	if err := n1.Send(&Frame{Src: 3, Dst: 0, Body: []byte("pong")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pong", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(back) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if string(back[0].Body) != "pong" {
		t.Errorf("reply body = %q", back[0].Body)
	}
}

func TestTCPSelfSendShortCircuits(t *testing.T) {
	var got *Frame
	n := NewTCP(0, map[int]string{0: "127.0.0.1:0"}, func(int32) int { return 0 },
		func(f *Frame) error { got = f; return nil })
	// No Listen needed: self-sends never touch the network.
	if err := n.Send(&Frame{Src: 0, Dst: 1, Body: []byte("loop")}); err != nil {
		t.Fatal(err)
	}
	if got == nil || string(got.Body) != "loop" {
		t.Errorf("self-send not delivered locally: %v", got)
	}
}

func TestTCPUnserializedPayloadRejected(t *testing.T) {
	n0, _, _, cleanup := twoNodes(t)
	defer cleanup()
	err := n0.Send(&Frame{Src: 0, Dst: 2, Obj: struct{}{}})
	if err == nil {
		t.Error("frame with Obj and no Body accepted for wire transport")
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	n0, _, _, cleanup := twoNodes(t)
	cleanup()
	if err := n0.Send(&Frame{Src: 0, Dst: 2, Body: []byte("x")}); err == nil {
		t.Error("send after close succeeded")
	}
}

func TestTCPUnknownNode(t *testing.T) {
	n := NewTCP(0, map[int]string{0: "127.0.0.1:0"}, func(int32) int { return 7 }, func(*Frame) error { return nil })
	if err := n.Send(&Frame{Src: 0, Dst: 9, Body: []byte("x")}); err == nil {
		t.Error("send to unknown node succeeded")
	}
}

func TestTCPWithTransformChain(t *testing.T) {
	// Full stack over real sockets: compress+checksum on send,
	// verify+decompress on receive.
	route := func(pe int32) int {
		if pe == 0 {
			return 0
		}
		return 1
	}
	var mu sync.Mutex
	var got []*Frame
	cd := &CompressDevice{}
	cs := ChecksumDevice{}
	recvChain := BuildRecvChain(func(f *Frame) error {
		mu.Lock()
		got = append(got, f.Clone())
		mu.Unlock()
		return nil
	}, cs, cd)

	n0 := NewTCP(0, map[int]string{0: "127.0.0.1:0"}, route, func(*Frame) error { return nil })
	n1 := NewTCP(1, map[int]string{1: "127.0.0.1:0"}, route, recvChain)
	a0, err := n0.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n0.SetAddr(1, a1)
	n1.SetAddr(0, a0)
	defer n0.Close()
	defer n1.Close()

	sendChain := BuildSendChain(n0.Send, cd, cs)
	body := bytes.Repeat([]byte("stencil ghost row "), 200)
	if err := sendChain(&Frame{Src: 0, Dst: 1, Seq: 7, Body: append([]byte(nil), body...)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "transformed frame", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got[0].Body, body) {
		t.Error("body corrupted across transform+TCP stack")
	}
	if got[0].Flags != 0 {
		t.Errorf("flags not cleared: %x", got[0].Flags)
	}
}
