package vmi

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/metrics"
)

// stackPair joins two built stacks over loopback TCP, capturing frames
// delivered on node 1. PEs 0..1 live on node 0, PEs 2..3 on node 1.
type stackPair struct {
	s0, s1 *Stack

	mu   sync.Mutex
	got1 []*Frame
}

func newStackPair(t *testing.T, mod0, mod1 func(*ChainBuilder) *ChainBuilder) *stackPair {
	t.Helper()
	route := func(pe int32) int {
		if pe < 2 {
			return 0
		}
		return 1
	}
	p := &stackPair{}
	build := func(node int) *Stack {
		b := NewChainBuilder(node, map[int]string{node: "127.0.0.1:0"}, route)
		if node == 0 && mod0 != nil {
			b = mod0(b)
		}
		if node == 1 && mod1 != nil {
			b = mod1(b)
		}
		s, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	p.s0, p.s1 = build(0), build(1)
	p.s0.Bind(func(*Frame) error { return nil }, func(err error) { t.Errorf("node 0: %v", err) })
	p.s1.Bind(func(f *Frame) error {
		p.mu.Lock()
		p.got1 = append(p.got1, f.Clone())
		p.mu.Unlock()
		return nil
	}, func(err error) { t.Errorf("node 1: %v", err) })
	a0, err := p.s0.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.s1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	p.s0.SetAddr(1, a1)
	p.s1.SetAddr(0, a0)
	t.Cleanup(func() {
		p.s0.Close()
		p.s1.Close()
	})
	return p
}

func (p *stackPair) at1() []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Frame(nil), p.got1...)
}

func waitPair(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChainBuilderMirrorsTransforms pins the mirror invariant with an
// order-sensitive pair: the checksum is computed over the ciphertext, so
// the receive side must verify before deciphering. If the receive chain
// were not the exact reverse of the send chain, the CRC check would run
// on the wrong bytes and every frame would be rejected.
func TestChainBuilderMirrorsTransforms(t *testing.T) {
	key := []byte("0123456789abcdef")
	mod := func(b *ChainBuilder) *ChainBuilder {
		cd, err := NewCipherDevice(key)
		if err != nil {
			t.Fatal(err)
		}
		return b.Transform(cd, ChecksumDevice{})
	}
	p := newStackPair(t, mod, mod)
	const n = 20
	for i := 0; i < n; i++ {
		body := []byte(fmt.Sprintf("payload-%d: some compressible text text text", i))
		if err := p.s0.Send(&Frame{Src: 0, Dst: 2, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	waitPair(t, "all frames", func() bool { return len(p.at1()) == n })
	for i, f := range p.at1() {
		want := fmt.Sprintf("payload-%d: some compressible text text text", i)
		if string(f.Body) != want {
			t.Errorf("frame %d body = %q, want %q", i, f.Body, want)
		}
		if f.Flags&(FlagEncrypted|FlagChecksummed) != 0 {
			t.Errorf("frame %d still carries transform flags %x", i, f.Flags)
		}
	}
}

// TestChainBuilderFaultsInsideReliable pins fault placement: fault
// devices declared on the builder sit below the reliability layer, inside
// its repair envelope, so a lossy link is repaired by retransmission and
// the application sees exactly-once in-order delivery.
func TestChainBuilderFaultsInsideReliable(t *testing.T) {
	fd := NewFaultDevice(5, FaultPlan{Drop: 0.3})
	defer fd.Close()
	p := newStackPair(t,
		func(b *ChainBuilder) *ChainBuilder {
			return b.Faults([]SendDevice{fd}, nil).Reliable(ReliableConfig{RTO: 5 * time.Millisecond})
		},
		func(b *ChainBuilder) *ChainBuilder {
			return b.Reliable(ReliableConfig{RTO: 5 * time.Millisecond})
		})
	const n = 50
	for i := 0; i < n; i++ {
		if err := p.s0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitPair(t, "repaired delivery", func() bool { return len(p.at1()) == n })
	for i, f := range p.at1() {
		if want := fmt.Sprintf("msg-%d", i); string(f.Body) != want {
			t.Fatalf("frame %d = %q, want %q (order broken)", i, f.Body, want)
		}
	}
	if fd.Stats().Dropped == 0 {
		t.Error("30% drop plan dropped nothing")
	}
	if p.s0.Reliable().Stats().Retransmits == 0 {
		t.Error("drops were never repaired by retransmission")
	}
}

// TestChainBuilderInstrumentedSeries checks that building with a registry
// wires the generic per-device flow counters plus each device's own
// series, and that Stack exposes its parts.
func TestChainBuilderInstrumentedSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	fd := NewFaultDevice(9, FaultPlan{Drop: 0.1})
	defer fd.Close()
	p := newStackPair(t,
		func(b *ChainBuilder) *ChainBuilder {
			return b.Metrics(reg).Transform(ChecksumDevice{}).
				Faults([]SendDevice{fd}, nil).
				Reliable(ReliableConfig{RTO: 5 * time.Millisecond})
		},
		func(b *ChainBuilder) *ChainBuilder {
			return b.Transform(ChecksumDevice{}).Reliable(ReliableConfig{RTO: 5 * time.Millisecond})
		})
	if p.s0.Metrics() != reg || p.s1.Metrics() != nil {
		t.Error("Stack.Metrics does not report the build registry")
	}
	if p.s0.TCP() == nil || p.s0.Reliable() == nil {
		t.Error("Stack accessors lost the terminal devices")
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := p.s0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("m-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitPair(t, "delivery", func() bool { return len(p.at1()) == n })
	snap := reg.Snapshot()
	for _, name := range []string{
		"vmi_device_frames_total",
		"vmi_device_bytes_total",
		"vmi_fault_frames_total",
		"vmi_tcp_frames_out_total",
		"vmi_rel_data_sent_total",
		"vmi_rel_delivered_total",
	} {
		if !snap.Has(name) {
			t.Errorf("series %s missing from built-with-metrics stack", name)
		}
	}
	if got := snap.Value("vmi_rel_data_sent_total"); got < n {
		t.Errorf("vmi_rel_data_sent_total = %d, want >= %d", got, n)
	}
	// The flow counter for the send-side checksum device saw every frame.
	var found bool
	for _, s := range snap.Series {
		if s.Name == "vmi_device_frames_total" &&
			strings.Contains(s.Labels, `device="crc32c`) &&
			strings.Contains(s.Labels, `dir="send"`) {
			found = true
			if s.Value < n {
				t.Errorf("checksum send flow counter = %d, want >= %d", s.Value, n)
			}
		}
	}
	if !found {
		t.Error("no flow counter for the send-side checksum device")
	}
}

// TestChainBuilderErrors covers construction-time validation.
func TestChainBuilderErrors(t *testing.T) {
	if _, err := NewChainBuilder(0, nil, nil).Build(); err == nil {
		t.Error("nil route accepted")
	}
	b := NewChainBuilder(0, map[int]string{0: "127.0.0.1:0"}, func(int32) int { return 0 }).
		Reliable(ReliableConfig{}).
		Reliable(ReliableConfig{})
	if _, err := b.Build(); err == nil {
		t.Error("double Reliable accepted")
	}
}
