package vmi

import (
	"fmt"
	"sync/atomic"

	"gridmdo/internal/metrics"
)

// ChainBuilder assembles a node's whole transport stack — transform
// devices, the optional reliability layer, fault-injection devices, and
// the TCP terminal — from one declarative description, replacing the
// positional wiring that previously spread across NewTCP, NewReliable,
// SetRecv, SetErrHandler, and core.Options.WireSend/WireRecv:
//
//	runtime → transforms → Reliable → faults → TCP ⇢ socket
//	runtime ← transforms ← Reliable ← faults ← TCP ⇠ socket
//
// Transform devices are declared once in send order and mirrored
// automatically on the receive side (a compress-then-checksum sender
// implies a checksum-then-decompress receiver), so the two directions can
// no longer drift apart. Fault devices sit below the reliability layer,
// inside its repair envelope, exactly as the chaos harness requires.
//
// The builder is also the one place per-device metrics attach: with a
// registry configured, every device in the chain is wrapped with
// frames/bytes flow counters, and devices that expose internal state
// (FaultDevice, PartitionDevice, Reliable, TCP) register their own series
// too.
//
// Build returns a *Stack, which implements core.Transport. The runtime
// completes the stack at its own construction through Stack.Bind —
// attaching its frame-delivery entry and failure hook in one call — so no
// post-hoc setter survives in the public wiring.
type ChainBuilder struct {
	self  int
	addrs map[int]string
	route func(pe int32) int

	reg           *metrics.Registry
	transformSend []SendDevice
	transformRecv []RecvDevice
	relCfg        *ReliableConfig
	faultSend     []SendDevice
	faultRecv     []RecvDevice
	dialAttempts  int
	onControl     func(*Frame)
	err           error
}

// Device is a symmetric chain stage: one value serving as both the send
// and receive half of a transform (CompressDevice, ChecksumDevice,
// CipherDevice, FaultDevice, PartitionDevice all qualify).
type Device interface {
	SendDevice
	RecvDevice
}

// Instrumentable is implemented by devices that register their own metric
// series beyond the generic flow counters.
type Instrumentable interface {
	Instrument(reg *metrics.Registry, labels ...metrics.Label)
}

// NewChainBuilder starts a stack description for node self. addrs maps
// node IDs to listen addresses and route maps a destination PE to its
// owning node, exactly as for NewTCP.
func NewChainBuilder(self int, addrs map[int]string, route func(pe int32) int) *ChainBuilder {
	return &ChainBuilder{self: self, addrs: addrs, route: route}
}

// Metrics attaches a registry; every stage added (before or after this
// call) is instrumented at Build. A nil registry leaves the stack
// uninstrumented.
func (b *ChainBuilder) Metrics(reg *metrics.Registry) *ChainBuilder {
	b.reg = reg
	return b
}

// Transform appends symmetric transform devices in send order; the
// receive chain applies them in reverse automatically.
func (b *ChainBuilder) Transform(devs ...Device) *ChainBuilder {
	for _, d := range devs {
		b.transformSend = append(b.transformSend, d)
		// Mirror: the device added last on the send side runs first on the
		// receive side.
		b.transformRecv = append([]RecvDevice{d}, b.transformRecv...)
	}
	return b
}

// TransformPair appends an asymmetric transform stage: send and recv are
// two halves of one device (either may be nil for a one-directional
// stage). The recv half is prepended, preserving the mirror invariant.
func (b *ChainBuilder) TransformPair(send SendDevice, recv RecvDevice) *ChainBuilder {
	if send != nil {
		b.transformSend = append(b.transformSend, send)
	}
	if recv != nil {
		b.transformRecv = append([]RecvDevice{recv}, b.transformRecv...)
	}
	return b
}

// Reliable interposes the end-to-end reliability layer between the
// transforms and the fault devices. Fault chains configured on the
// builder override cfg.SendFaults/RecvFaults; declare them via Faults.
func (b *ChainBuilder) Reliable(cfg ReliableConfig) *ChainBuilder {
	if b.relCfg != nil {
		b.fail(fmt.Errorf("vmi: chain builder: Reliable declared twice"))
		return b
	}
	b.relCfg = &cfg
	return b
}

// Faults appends fault-injection devices below the reliability layer (or
// directly above TCP when no reliability layer is configured). Symmetric
// devices (FaultDevice, PartitionDevice) usually appear on one side only:
// a send-side fault models an outbound-lossy link.
func (b *ChainBuilder) Faults(send []SendDevice, recv []RecvDevice) *ChainBuilder {
	b.faultSend = append(b.faultSend, send...)
	b.faultRecv = append(b.faultRecv, recv...)
	return b
}

// DialAttempts bounds the transport's connection retries (see
// TCP.DialAttempts).
func (b *ChainBuilder) DialAttempts(n int) *ChainBuilder {
	b.dialAttempts = n
	return b
}

// OnControl installs the control-frame handler (coordinator shutdown
// announcements and the like).
func (b *ChainBuilder) OnControl(fn func(*Frame)) *ChainBuilder {
	b.onControl = fn
	return b
}

func (b *ChainBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// instrumentSend wraps a send stage with flow counters when a registry is
// configured, and lets the device register its own series.
func (b *ChainBuilder) instrumentSend(d SendDevice, pos int) SendDevice {
	if b.reg == nil {
		return d
	}
	labels := b.deviceLabels(d.Name(), "send", pos)
	if in, ok := d.(Instrumentable); ok {
		in.Instrument(b.reg, b.deviceLabels(d.Name(), "send", pos)[:2]...)
	}
	frames := b.reg.Counter("vmi_device_frames_total", labels...)
	bytes := b.reg.Counter("vmi_device_bytes_total", labels...)
	return SendDeviceFunc{DeviceName: d.Name(), Fn: func(f *Frame, next SendFunc) error {
		frames.Inc()
		bytes.Add(int64(len(f.Body)))
		return d.Send(f, next)
	}}
}

// instrumentRecv mirrors instrumentSend for receive stages.
func (b *ChainBuilder) instrumentRecv(d RecvDevice, pos int) RecvDevice {
	if b.reg == nil {
		return d
	}
	labels := b.deviceLabels(d.Name(), "recv", pos)
	if in, ok := d.(Instrumentable); ok {
		in.Instrument(b.reg, b.deviceLabels(d.Name(), "recv", pos)[:2]...)
	}
	frames := b.reg.Counter("vmi_device_frames_total", labels...)
	bytes := b.reg.Counter("vmi_device_bytes_total", labels...)
	return RecvDeviceFunc{DeviceName: d.Name(), Fn: func(f *Frame, next RecvFunc) error {
		frames.Inc()
		bytes.Add(int64(len(f.Body)))
		return d.Recv(f, next)
	}}
}

// deviceLabels builds the identity labels of one chain position. The
// first two (node, device) also label a device's internal series; dir and
// pos complete the flow-counter identity.
func (b *ChainBuilder) deviceLabels(name, dir string, pos int) []metrics.Label {
	return []metrics.Label{
		metrics.L("node", fmt.Sprint(b.self)),
		metrics.L("device", fmt.Sprintf("%s%d", name, pos)),
		metrics.L("dir", dir),
	}
}

// Build assembles the stack. The TCP device is created and configured but
// not yet listening; call Stack.Listen (and Stack.Bind, usually via
// core.NewRuntime) before traffic flows.
func (b *ChainBuilder) Build() (*Stack, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.route == nil {
		return nil, fmt.Errorf("vmi: chain builder needs a route function")
	}
	s := &Stack{reg: b.reg}
	s.tcp = NewTCP(b.self, b.addrs, b.route, nil)
	s.tcp.DialAttempts = b.dialAttempts
	s.tcp.OnControl = b.onControl
	s.tcp.Instrument(b.reg)

	faultSend := make([]SendDevice, len(b.faultSend))
	for i, d := range b.faultSend {
		faultSend[i] = b.instrumentSend(d, i)
	}
	faultRecv := make([]RecvDevice, len(b.faultRecv))
	for i, d := range b.faultRecv {
		faultRecv[i] = b.instrumentRecv(d, i)
	}

	// Wire side: reliability (with faults inside its envelope) or bare
	// faults directly above the socket.
	var wireTerminal SendFunc
	if b.relCfg != nil {
		cfg := *b.relCfg
		cfg.SendFaults = faultSend
		cfg.RecvFaults = faultRecv
		s.rel = NewReliable(s.tcp, s.deliverUp, cfg)
		s.rel.Instrument(b.reg, metrics.L("node", fmt.Sprint(b.self)))
		wireTerminal = s.rel.Send
	} else {
		s.tcp.SetRecv(BuildRecvChain(s.deliverUp, faultRecv...))
		wireTerminal = BuildSendChain(s.tcp.Send, faultSend...)
	}

	// Transform side, mirrored: the upward deliverUp entry applies the
	// receive transforms before handing the frame to the bound deliver
	// function.
	tSend := make([]SendDevice, len(b.transformSend))
	for i, d := range b.transformSend {
		tSend[i] = b.instrumentSend(d, len(b.faultSend)+i)
	}
	tRecv := make([]RecvDevice, len(b.transformRecv))
	for i, d := range b.transformRecv {
		tRecv[i] = b.instrumentRecv(d, len(b.faultRecv)+i)
	}
	s.send = BuildSendChain(wireTerminal, tSend...)
	s.recv = BuildRecvChain(s.deliverBound, tRecv...)
	return s, nil
}

// Stack is a built transport stack: the core.Transport the runtime sends
// through, plus lifecycle management for the devices inside it. Complete
// it with Bind (core.NewRuntime does this for stacks passed as its
// transport) before frames arrive.
type Stack struct {
	tcp  *TCP
	rel  *Reliable
	send SendFunc // full send chain entry
	recv RecvFunc // receive transforms, ending at the bound deliver

	deliver atomic.Pointer[RecvFunc]
	reg     *metrics.Registry
}

// deliverUp is the terminal of the wire-side receive path: frames that
// cleared TCP, faults, and reliability enter the receive transforms here.
func (s *Stack) deliverUp(f *Frame) error { return s.recv(f) }

// deliverBound hands a fully unwrapped frame to the bound runtime.
func (s *Stack) deliverBound(f *Frame) error {
	d := s.deliver.Load()
	if d == nil {
		return fmt.Errorf("vmi: stack received frame before Bind")
	}
	return (*d)(f)
}

// Bind attaches the runtime's frame-delivery entry and asynchronous
// failure hook, completing the stack. With a reliability layer the hook
// fires only on retransmit-budget exhaustion; otherwise every transport
// error reaches it. core.NewRuntime calls Bind on transports that
// implement it.
func (s *Stack) Bind(deliver RecvFunc, onErr func(error)) {
	s.deliver.Store(&deliver)
	if s.rel != nil {
		s.rel.setErrHandler(onErr)
	} else {
		s.tcp.setErrHandler(onErr)
	}
}

// Send implements core.Transport: frames enter the transform chain and
// continue to the wire.
func (s *Stack) Send(f *Frame) error { return s.send(f) }

// Listen starts the TCP terminal accepting connections and returns the
// bound address.
func (s *Stack) Listen() (string, error) { return s.tcp.Listen() }

// Addr returns the bound listen address, or "" before Listen.
func (s *Stack) Addr() string { return s.tcp.Addr() }

// SetAddr updates a peer node's address (dynamic port exchange). A new
// address means a new incarnation, so any reliability dedup tombstone
// left by a forgotten predecessor under the same node number is cleared.
func (s *Stack) SetAddr(node int, addr string) {
	if s.rel != nil {
		s.rel.ResetPeer(node)
	}
	s.tcp.SetAddr(node, addr)
}

// SendControl sends a control frame directly to a node.
func (s *Stack) SendControl(node int, f *Frame) error { return s.tcp.SendControl(node, f) }

// SetEpoch advances the membership epoch stamped on reliable frames; a
// no-op for stacks without a reliability layer (nothing fences without
// one).
func (s *Stack) SetEpoch(e uint32) {
	if s.rel != nil {
		s.rel.SetEpoch(e)
	}
}

// Epoch returns the stack's current membership epoch (0 when no
// reliability layer is configured).
func (s *Stack) Epoch() uint32 {
	if s.rel != nil {
		return s.rel.Epoch()
	}
	return 0
}

// SetDialGate installs the membership dial gate on the TCP terminal.
func (s *Stack) SetDialGate(fn func(node int) bool) { s.tcp.SetDialGate(fn) }

// ForgetPeer drops reliability state for node (no-op without a
// reliability layer).
func (s *Stack) ForgetPeer(node int) {
	if s.rel != nil {
		s.rel.ForgetPeer(node)
	}
}

// TCP exposes the terminal device (fault injection helpers like DropConn
// and CorruptWire live there).
func (s *Stack) TCP() *TCP { return s.tcp }

// Reliable exposes the reliability layer, or nil when none is configured.
func (s *Stack) Reliable() *Reliable { return s.rel }

// Metrics returns the registry the stack was built with, or nil.
func (s *Stack) Metrics() *metrics.Registry { return s.reg }

// Close shuts the stack down: the reliability layer's goroutines first,
// then the TCP device and its connections.
func (s *Stack) Close() error {
	if s.rel != nil {
		s.rel.Close()
	}
	return s.tcp.Close()
}
