// Package vmi is a Go rendition of the Virtual Machine Interface message
// layer the paper builds on: a low-level frame transport whose behavior is
// composed from chains of devices. A device may deliver a frame, transform
// it (compress, checksum, encrypt), split it across lanes (stripe), hold it
// for a configured time (the "delay device" used to inject artificial
// wide-area latencies), or simply pass it to the next device in the chain.
//
// Frames carry either an in-process payload (Obj) — used when source and
// destination PEs share an address space, avoiding serialization — or a
// serialized Body, required by devices that touch bytes (TCP, compression,
// striping, ciphers).
package vmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Class partitions frames by role so schedulers can treat runtime-internal
// traffic differently from application traffic.
type Class uint8

// Frame classes.
const (
	ClassApp     Class = iota // application entry-method message
	ClassSystem               // runtime protocol (reductions, QD, LB)
	ClassControl              // transport control (hello, shutdown)
)

// Flag bits recorded in a frame header by transform devices.
const (
	FlagCompressed uint16 = 1 << iota
	FlagChecksummed
	FlagEncrypted
	FlagStriped
	FlagReliable // body carries a reliability header (see reliable.go)
)

// Frame is the unit VMI devices operate on.
type Frame struct {
	Src, Dst int32  // source and destination PE
	Prio     int32  // delivery priority; smaller is more urgent
	Class    Class  // app / system / control
	Flags    uint16 // transform bookkeeping
	Seq      uint64 // per-source sequence number (FIFO tie-break)
	Trace    uint64 // causal trace ID of the carried message (0 = untraced)

	// Body is the serialized payload; required for byte-level devices.
	Body []byte
	// Obj is the in-process payload; valid only within one address space.
	Obj any
}

const (
	frameMagic   = 0x564d4931 // "VMI1"
	headerLen    = 40
	maxFrameBody = 64 << 20 // defensive cap for decoding
)

// ErrFrameTooLarge is returned when decoding a frame whose declared body
// length exceeds the defensive cap.
var ErrFrameTooLarge = errors.New("vmi: frame body exceeds limit")

// ErrBadMagic is returned when a decoded header does not start with the
// VMI frame magic.
var ErrBadMagic = errors.New("vmi: bad frame magic")

// EncodedLen reports the number of bytes EncodeTo will write.
func (f *Frame) EncodedLen() int { return headerLen + len(f.Body) }

// EncodeTo writes the frame header and body to w. Obj is not serialized;
// callers that need wire transport must populate Body first.
func (f *Frame) EncodeTo(w io.Writer) error {
	var h [headerLen]byte
	binary.BigEndian.PutUint32(h[0:], frameMagic)
	h[4] = byte(f.Class)
	// h[5] reserved
	binary.BigEndian.PutUint16(h[6:], f.Flags)
	binary.BigEndian.PutUint32(h[8:], uint32(f.Src))
	binary.BigEndian.PutUint32(h[12:], uint32(f.Dst))
	binary.BigEndian.PutUint32(h[16:], uint32(f.Prio))
	binary.BigEndian.PutUint64(h[20:], f.Seq)
	binary.BigEndian.PutUint64(h[28:], f.Trace)
	binary.BigEndian.PutUint32(h[36:], uint32(len(f.Body)))
	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("vmi: write header: %w", err)
	}
	if len(f.Body) > 0 {
		if _, err := w.Write(f.Body); err != nil {
			return fmt.Errorf("vmi: write body: %w", err)
		}
	}
	return nil
}

// AppendEncode appends the frame's wire encoding (header and body) to dst
// and returns the extended slice. It is the allocation-free counterpart of
// EncodeTo used by the TCP write coalescer.
func (f *Frame) AppendEncode(dst []byte) []byte {
	var h [headerLen]byte
	binary.BigEndian.PutUint32(h[0:], frameMagic)
	h[4] = byte(f.Class)
	// h[5] reserved
	binary.BigEndian.PutUint16(h[6:], f.Flags)
	binary.BigEndian.PutUint32(h[8:], uint32(f.Src))
	binary.BigEndian.PutUint32(h[12:], uint32(f.Dst))
	binary.BigEndian.PutUint32(h[16:], uint32(f.Prio))
	binary.BigEndian.PutUint64(h[20:], f.Seq)
	binary.BigEndian.PutUint64(h[28:], f.Trace)
	binary.BigEndian.PutUint32(h[36:], uint32(len(f.Body)))
	dst = append(dst, h[:]...)
	return append(dst, f.Body...)
}

// DecodeBytes parses one frame from the front of b, replacing f's fields,
// and returns the remainder of b. Body aliases b — no copy is made — so
// the frame is only valid while the caller keeps b intact; retainers must
// Clone. An incomplete frame returns io.ErrUnexpectedEOF.
func (f *Frame) DecodeBytes(b []byte) ([]byte, error) {
	if len(b) < headerLen {
		return b, io.ErrUnexpectedEOF
	}
	if binary.BigEndian.Uint32(b[0:]) != frameMagic {
		return b, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(b[36:])
	if n > maxFrameBody {
		return b, ErrFrameTooLarge
	}
	if uint32(len(b)-headerLen) < n {
		return b, io.ErrUnexpectedEOF
	}
	f.Class = Class(b[4])
	f.Flags = binary.BigEndian.Uint16(b[6:])
	f.Src = int32(binary.BigEndian.Uint32(b[8:]))
	f.Dst = int32(binary.BigEndian.Uint32(b[12:]))
	f.Prio = int32(binary.BigEndian.Uint32(b[16:]))
	f.Seq = binary.BigEndian.Uint64(b[20:])
	f.Trace = binary.BigEndian.Uint64(b[28:])
	f.Obj = nil
	if n == 0 {
		f.Body = nil
	} else {
		f.Body = b[headerLen : headerLen+int(n) : headerLen+int(n)]
	}
	return b[headerLen+int(n):], nil
}

// frameReader decodes a stream of frames with block reads and zero-copy
// bodies: it fills a single reusable buffer with as many bytes as each
// Read returns and parses frames out of it in place. A decoded frame's
// Body aliases the buffer and is valid only until the next Next call;
// consumers that retain bodies must copy (Frame.Clone does).
type frameReader struct {
	r        io.Reader
	buf      []byte
	pos, end int
}

// frameReaderBufSize is the initial block size; it grows (to at most the
// frame body cap) when a larger frame arrives.
const frameReaderBufSize = 64 << 10

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r, buf: GetBuf(frameReaderBufSize)}
}

// release returns the reader's block buffer to the pool. No frame decoded
// by this reader may be referenced afterwards.
func (fr *frameReader) release() {
	PutBuf(fr.buf)
	fr.buf = nil
}

// fill ensures at least need unparsed bytes are buffered, compacting and
// growing the block as required. It reports io.EOF only at a clean frame
// boundary (no partial data), matching DecodeFrom's stream semantics.
func (fr *frameReader) fill(need int) error {
	if fr.pos > 0 {
		copy(fr.buf, fr.buf[fr.pos:fr.end])
		fr.end -= fr.pos
		fr.pos = 0
	}
	if need > len(fr.buf) {
		grown := GetBuf(need)
		copy(grown, fr.buf[:fr.end])
		PutBuf(fr.buf)
		fr.buf = grown
	}
	for fr.end < need {
		n, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += n
		if err != nil {
			if fr.end >= need {
				return nil
			}
			if err == io.EOF && fr.end > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Next decodes the next frame from the stream into f. The frame's Body is
// only valid until the following Next (or release) call.
func (fr *frameReader) Next(f *Frame) error {
	if fr.end-fr.pos < headerLen {
		if err := fr.fill(headerLen); err != nil {
			return err
		}
	}
	h := fr.buf[fr.pos:]
	if binary.BigEndian.Uint32(h[0:]) != frameMagic {
		return ErrBadMagic
	}
	n := binary.BigEndian.Uint32(h[36:])
	if n > maxFrameBody {
		return ErrFrameTooLarge
	}
	total := headerLen + int(n)
	if fr.end-fr.pos < total {
		if err := fr.fill(total); err != nil {
			return err
		}
	}
	rest, err := f.DecodeBytes(fr.buf[fr.pos:fr.end])
	if err != nil {
		return err
	}
	fr.pos = fr.end - len(rest)
	return nil
}

// DecodeFrom reads one frame from r, replacing f's fields. Obj is left nil.
func (f *Frame) DecodeFrom(r io.Reader) error {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return err // io.EOF propagates cleanly for connection shutdown
	}
	if binary.BigEndian.Uint32(h[0:]) != frameMagic {
		return ErrBadMagic
	}
	f.Class = Class(h[4])
	f.Flags = binary.BigEndian.Uint16(h[6:])
	f.Src = int32(binary.BigEndian.Uint32(h[8:]))
	f.Dst = int32(binary.BigEndian.Uint32(h[12:]))
	f.Prio = int32(binary.BigEndian.Uint32(h[16:]))
	f.Seq = binary.BigEndian.Uint64(h[20:])
	f.Trace = binary.BigEndian.Uint64(h[28:])
	n := binary.BigEndian.Uint32(h[36:])
	if n > maxFrameBody {
		return ErrFrameTooLarge
	}
	f.Obj = nil
	if n == 0 {
		f.Body = nil
		return nil
	}
	f.Body = make([]byte, n)
	if _, err := io.ReadFull(r, f.Body); err != nil {
		return fmt.Errorf("vmi: read body: %w", err)
	}
	return nil
}

// Clone returns a shallow copy of the frame with its own Body slice.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Body != nil {
		g.Body = append([]byte(nil), f.Body...)
	}
	return &g
}

func (f *Frame) String() string {
	return fmt.Sprintf("frame{%d->%d class=%d prio=%d seq=%d body=%dB obj=%v}",
		f.Src, f.Dst, f.Class, f.Prio, f.Seq, len(f.Body), f.Obj != nil)
}
