// Package vmi is a Go rendition of the Virtual Machine Interface message
// layer the paper builds on: a low-level frame transport whose behavior is
// composed from chains of devices. A device may deliver a frame, transform
// it (compress, checksum, encrypt), split it across lanes (stripe), hold it
// for a configured time (the "delay device" used to inject artificial
// wide-area latencies), or simply pass it to the next device in the chain.
//
// Frames carry either an in-process payload (Obj) — used when source and
// destination PEs share an address space, avoiding serialization — or a
// serialized Body, required by devices that touch bytes (TCP, compression,
// striping, ciphers).
package vmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Class partitions frames by role so schedulers can treat runtime-internal
// traffic differently from application traffic.
type Class uint8

// Frame classes.
const (
	ClassApp     Class = iota // application entry-method message
	ClassSystem               // runtime protocol (reductions, QD, LB)
	ClassControl              // transport control (hello, shutdown)
)

// Flag bits recorded in a frame header by transform devices.
const (
	FlagCompressed uint16 = 1 << iota
	FlagChecksummed
	FlagEncrypted
	FlagStriped
)

// Frame is the unit VMI devices operate on.
type Frame struct {
	Src, Dst int32  // source and destination PE
	Prio     int32  // delivery priority; smaller is more urgent
	Class    Class  // app / system / control
	Flags    uint16 // transform bookkeeping
	Seq      uint64 // per-source sequence number (FIFO tie-break)

	// Body is the serialized payload; required for byte-level devices.
	Body []byte
	// Obj is the in-process payload; valid only within one address space.
	Obj any
}

const (
	frameMagic   = 0x564d4931 // "VMI1"
	headerLen    = 32
	maxFrameBody = 64 << 20 // defensive cap for decoding
)

// ErrFrameTooLarge is returned when decoding a frame whose declared body
// length exceeds the defensive cap.
var ErrFrameTooLarge = errors.New("vmi: frame body exceeds limit")

// ErrBadMagic is returned when a decoded header does not start with the
// VMI frame magic.
var ErrBadMagic = errors.New("vmi: bad frame magic")

// EncodedLen reports the number of bytes EncodeTo will write.
func (f *Frame) EncodedLen() int { return headerLen + len(f.Body) }

// EncodeTo writes the frame header and body to w. Obj is not serialized;
// callers that need wire transport must populate Body first.
func (f *Frame) EncodeTo(w io.Writer) error {
	var h [headerLen]byte
	binary.BigEndian.PutUint32(h[0:], frameMagic)
	h[4] = byte(f.Class)
	// h[5] reserved
	binary.BigEndian.PutUint16(h[6:], f.Flags)
	binary.BigEndian.PutUint32(h[8:], uint32(f.Src))
	binary.BigEndian.PutUint32(h[12:], uint32(f.Dst))
	binary.BigEndian.PutUint32(h[16:], uint32(f.Prio))
	binary.BigEndian.PutUint64(h[20:], f.Seq)
	binary.BigEndian.PutUint32(h[28:], uint32(len(f.Body)))
	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("vmi: write header: %w", err)
	}
	if len(f.Body) > 0 {
		if _, err := w.Write(f.Body); err != nil {
			return fmt.Errorf("vmi: write body: %w", err)
		}
	}
	return nil
}

// DecodeFrom reads one frame from r, replacing f's fields. Obj is left nil.
func (f *Frame) DecodeFrom(r io.Reader) error {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return err // io.EOF propagates cleanly for connection shutdown
	}
	if binary.BigEndian.Uint32(h[0:]) != frameMagic {
		return ErrBadMagic
	}
	f.Class = Class(h[4])
	f.Flags = binary.BigEndian.Uint16(h[6:])
	f.Src = int32(binary.BigEndian.Uint32(h[8:]))
	f.Dst = int32(binary.BigEndian.Uint32(h[12:]))
	f.Prio = int32(binary.BigEndian.Uint32(h[16:]))
	f.Seq = binary.BigEndian.Uint64(h[20:])
	n := binary.BigEndian.Uint32(h[28:])
	if n > maxFrameBody {
		return ErrFrameTooLarge
	}
	f.Obj = nil
	if n == 0 {
		f.Body = nil
		return nil
	}
	f.Body = make([]byte, n)
	if _, err := io.ReadFull(r, f.Body); err != nil {
		return fmt.Errorf("vmi: read body: %w", err)
	}
	return nil
}

// Clone returns a shallow copy of the frame with its own Body slice.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Body != nil {
		g.Body = append([]byte(nil), f.Body...)
	}
	return &g
}

func (f *Frame) String() string {
	return fmt.Sprintf("frame{%d->%d class=%d prio=%d seq=%d body=%dB obj=%v}",
		f.Src, f.Dst, f.Class, f.Prio, f.Seq, len(f.Body), f.Obj != nil)
}
