package vmi

import (
	"sync"
	"testing"
	"time"
)

func TestJitteredLatencyBounds(t *testing.T) {
	base := func(src, dst int32) time.Duration {
		if src == dst {
			return 0
		}
		return 10 * time.Millisecond
	}
	j := JitteredLatency(base, 0.2, 42)
	for i := 0; i < 200; i++ {
		d := j(0, 1)
		if d < 8*time.Millisecond || d > 12*time.Millisecond {
			t.Fatalf("jittered latency %v outside [8ms,12ms]", d)
		}
	}
	// Zero base stays zero.
	if d := j(3, 3); d != 0 {
		t.Errorf("zero base jittered to %v", d)
	}
	// Deterministic for a given seed.
	a := JitteredLatency(base, 0.5, 7)
	b := JitteredLatency(base, 0.5, 7)
	for i := 0; i < 50; i++ {
		if a(0, 1) != b(0, 1) {
			t.Fatal("jitter not deterministic per seed")
		}
	}
	// Negative fraction is clamped; zero fraction passes through.
	c := JitteredLatency(base, -1, 1)
	if c(0, 1) != 10*time.Millisecond {
		t.Error("negative fraction not clamped")
	}
}

func TestJitteredLatencyConcurrentSafe(t *testing.T) {
	j := JitteredLatency(func(int32, int32) time.Duration { return time.Millisecond }, 0.3, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = j(0, 1)
			}
		}()
	}
	wg.Wait()
}

func TestPacerDeviceThrottles(t *testing.T) {
	// 100 KB/s: ten 1KB-ish frames should take roughly 100ms to drain.
	p := NewPacerDevice(100_000)
	defer p.Close()

	var mu sync.Mutex
	var done int
	var last time.Time
	next := func(*Frame) error {
		mu.Lock()
		done++
		last = time.Now()
		mu.Unlock()
		return nil
	}
	start := time.Now()
	body := make([]byte, 1000-headerLen)
	for i := 0; i < 10; i++ {
		f := &Frame{Src: 0, Dst: 1, Seq: uint64(i), Body: body}
		if err := p.Send(f, next); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		d := done
		mu.Unlock()
		if d == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/10 frames released", d)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := last.Sub(start)
	// 10 KB at 100 KB/s = 100 ms minimum (first frame also pays its tx time).
	if elapsed < 80*time.Millisecond {
		t.Errorf("10KB drained in %v at 100KB/s: pacing not applied", elapsed)
	}
	if elapsed > time.Second {
		t.Errorf("pacing far too slow: %v", elapsed)
	}
}

func TestPacerDeviceZeroRatePassesThrough(t *testing.T) {
	p := NewPacerDevice(0)
	defer p.Close()
	var hit bool
	if err := p.Send(&Frame{Body: []byte("x")}, func(*Frame) error { hit = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("zero-rate pacer did not pass through synchronously")
	}
	if p.Pending() != 0 {
		t.Error("zero-rate pacer held a frame")
	}
}

func TestDelayDeviceHoldExplicit(t *testing.T) {
	d := NewDelayDevice(func(int32, int32) time.Duration { return time.Hour })
	defer d.Close()
	var hit bool
	// Hold with zero delay bypasses the (huge) configured latency.
	if err := d.Hold(&Frame{}, func(*Frame) error { hit = true; return nil }, 0); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("zero-delay Hold did not deliver synchronously")
	}
}
