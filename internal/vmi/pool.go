package vmi

import (
	"math/bits"
	"sync"
)

// Size-classed byte-buffer pool shared by the device chain: frame bodies
// decoded off the wire, serialized message bodies on their way to the
// transport, and the TCP write coalescing buffers all recycle through it,
// so the steady-state messaging path allocates nothing per frame.
//
// Buffers are binned by power-of-two capacity. A buffer obtained from
// class c always has capacity >= 1<<c, so GetBuf(n) never returns a
// buffer shorter than n. Oversized buffers (above maxBufBits) are not
// pooled: they are rare (bulk checkpoints, pathological payloads) and
// would pin large allocations.

const (
	minBufBits = 6  // smallest pooled class: 64 B
	maxBufBits = 20 // largest pooled class: 1 MiB
)

var bufPools [maxBufBits + 1]sync.Pool

// GetBuf returns a byte slice of length n, drawn from the pool when a
// suitably sized buffer is available. The contents are unspecified.
func GetBuf(n int) []byte {
	c := bufClass(n)
	if c > maxBufBits {
		return make([]byte, n)
	}
	if p, _ := bufPools[c].Get().(*[]byte); p != nil {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBuf returns a buffer to the pool. The caller must not use b (or any
// slice aliasing its backing array) after the call. Buffers of any origin
// are accepted; undersized or oversized ones are simply dropped.
func PutBuf(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 // floor(log2(cap)): every pooled Get from class c sees cap >= 1<<c
	if c < minBufBits || c > maxBufBits {
		return
	}
	b = b[:0]
	bufPools[c].Put(&b)
}

// bufClass is the smallest class whose buffers hold n bytes.
func bufClass(n int) int {
	if n <= 1<<minBufBits {
		return minBufBits
	}
	return bits.Len(uint(n - 1))
}
